// Benchmarks that regenerate the paper's evaluation: one benchmark per
// table and figure (DESIGN.md §4 maps each to its experiment). Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark prints its reproduced table once and reports headline
// metrics (speedups, reductions) via b.ReportMetric, so bench output is a
// paper-vs-measured record. Results are memoised within the shared harness:
// figures that reuse design points (14/16/17/18) pay for them once.
package skybyte_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"skybyte"
	"skybyte/internal/experiments"
	"skybyte/internal/system"
	"skybyte/internal/trace"
)

var (
	harnessOnce sync.Once
	harness     *experiments.Harness
	printed     = map[string]bool{}
	printedMu   sync.Mutex
)

func bench(b *testing.B, f func(h *experiments.Harness) experiments.Table) experiments.Table {
	b.Helper()
	harnessOnce.Do(func() { harness = experiments.NewHarness(experiments.DefaultOptions()) })
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = f(harness)
	}
	printedMu.Lock()
	if !printed[tab.ID] {
		printed[tab.ID] = true
		fmt.Fprintln(os.Stdout, tab.String())
	}
	printedMu.Unlock()
	return tab
}

func BenchmarkTable1WorkloadCharacteristics(b *testing.B) {
	bench(b, (*experiments.Harness).Table1)
}

func BenchmarkFig02ExecTimeDRAMvsCXLSSD(b *testing.B) {
	bench(b, (*experiments.Harness).Fig02)
}

func BenchmarkFig03LatencyCDF(b *testing.B) {
	bench(b, (*experiments.Harness).Fig03)
}

func BenchmarkFig04Boundedness(b *testing.B) {
	bench(b, (*experiments.Harness).Fig04)
}

func BenchmarkFig05ReadLocalityCDF(b *testing.B) {
	bench(b, (*experiments.Harness).Fig05)
}

func BenchmarkFig06WriteLocalityCDF(b *testing.B) {
	bench(b, (*experiments.Harness).Fig06)
}

func BenchmarkFig09ThresholdSweep(b *testing.B) {
	bench(b, (*experiments.Harness).Fig09)
}

func BenchmarkFig10SchedulingPolicies(b *testing.B) {
	bench(b, (*experiments.Harness).Fig10)
}

func BenchmarkFig14OverallSpeedup(b *testing.B) {
	tab := bench(b, (*experiments.Harness).Fig14)
	// The last row is the geometric mean; the SkyByte-Full column carries
	// the headline normalized execution time (paper: 1/6.11 ≈ 0.164).
	if n := len(tab.Rows); n > 0 {
		geo := tab.Rows[n-1]
		for i, hd := range tab.Header {
			if hd == string(system.SkyByteFull) && i < len(geo) {
				var norm float64
				fmt.Sscanf(geo[i], "%f", &norm)
				if norm > 0 {
					b.ReportMetric(1/norm, "x-speedup-full")
				}
			}
		}
	}
}

func BenchmarkFig15ThreadScaling(b *testing.B) {
	bench(b, (*experiments.Harness).Fig15)
}

func BenchmarkFig16RequestBreakdown(b *testing.B) {
	bench(b, (*experiments.Harness).Fig16)
}

func BenchmarkFig17AMAT(b *testing.B) {
	bench(b, (*experiments.Harness).Fig17)
}

func BenchmarkFig18FlashWriteTraffic(b *testing.B) {
	bench(b, (*experiments.Harness).Fig18)
}

func BenchmarkFig19WriteLogSizePerf(b *testing.B) {
	bench(b, (*experiments.Harness).Fig19)
}

func BenchmarkFig20WriteLogSizeTraffic(b *testing.B) {
	bench(b, (*experiments.Harness).Fig20)
}

func BenchmarkFig21CacheSizeSweep(b *testing.B) {
	bench(b, (*experiments.Harness).Fig21)
}

func BenchmarkFig22FlashLatency(b *testing.B) {
	bench(b, (*experiments.Harness).Fig22)
}

func BenchmarkFig23MigrationMechanisms(b *testing.B) {
	bench(b, (*experiments.Harness).Fig23)
}

func BenchmarkTable3FlashReadLatency(b *testing.B) {
	bench(b, (*experiments.Harness).Table3)
}

func BenchmarkCostEffectiveness(b *testing.B) {
	bench(b, (*experiments.Harness).CostEffectiveness)
}

func BenchmarkFigExtExtensionScenarios(b *testing.B) {
	bench(b, (*experiments.Harness).FigExt)
}

func BenchmarkWriteLogIndexFootprint(b *testing.B) {
	bench(b, (*experiments.Harness).WriteLogStats)
}

// BenchmarkAblationFreeMSHROnSquash measures the §III-A default (freeing
// MSHRs of squashed requests immediately) against holding them until data
// arrives.
func BenchmarkAblationFreeMSHROnSquash(b *testing.B) {
	w, err := skybyte.WorkloadByName("bfs-dense")
	if err != nil {
		b.Fatal(err)
	}
	var on, off float64
	for i := 0; i < b.N; i++ {
		cfgOn := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
		rOn := skybyte.Run(cfgOn, w, 24, 8000, 1)
		cfgOff := cfgOn
		cfgOff.CPU.FreeMSHROnSquash = false
		rOff := skybyte.Run(cfgOff, w, 24, 8000, 1)
		on, off = rOn.ExecTime.Seconds(), rOff.ExecTime.Seconds()
	}
	b.ReportMetric(off/on, "x-slowdown-holding-MSHRs")
}

// BenchmarkAblationPrefetch measures Base-CSSD's next-page prefetch.
func BenchmarkAblationPrefetch(b *testing.B) {
	w, err := skybyte.WorkloadByName("radix")
	if err != nil {
		b.Fatal(err)
	}
	var on, off float64
	for i := 0; i < b.N; i++ {
		cfgOn := skybyte.ScaledConfig().WithVariant(skybyte.BaseCSSD)
		rOn := skybyte.Run(cfgOn, w, 8, 24000, 1)
		cfgOff := cfgOn
		cfgOff.PrefetchNext = false
		rOff := skybyte.Run(cfgOff, w, 8, 24000, 1)
		on, off = rOn.ExecTime.Seconds(), rOff.ExecTime.Seconds()
	}
	b.ReportMetric(off/on, "x-slowdown-without-prefetch")
}

// BenchmarkSimulatorThroughput reports raw simulation speed (simulated
// instructions per wall second) — the engineering figure of merit.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := skybyte.WorkloadByName("ycsb")
	if err != nil {
		b.Fatal(err)
	}
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
	var instr uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := skybyte.Run(cfg, w, 24, 8000, uint64(i+1))
		instr += r.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkCampaignThroughput measures the whole-sweep wall-clock of the
// plan/execute campaign runner at parallelism 1 vs GOMAXPROCS, reporting
// simulation runs per wall second. The sub-benchmarks share options but
// never a harness, so every iteration pays for its runs; ns/op is the
// full-sweep wall-clock at that parallelism, and runs/s the pool
// throughput (on a multi-core host the GOMAXPROCS variant should
// approach a linear multiple of the sequential one).
//
// The store=cold/store=warm pair measures the persistent result store:
// cold pays every simulation plus the store writes; warm re-renders the
// same campaign from the store alone — zero simulations, pure decode —
// and its runs/s (design points recalled per wall second) is the
// engineering figure of merit for amortized sweeps: it bounds how fast
// any shard-merge or CI re-render can go.
func BenchmarkCampaignThroughput(b *testing.B) {
	opt := experiments.DefaultOptions()
	opt.Workloads = []string{"bc", "srad", "ycsb"}
	opt.TotalInstr = 96_000
	opt.SweepInstr = 48_000
	levels := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		levels = append(levels, n)
	}
	for _, par := range levels {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			var runs atomic.Int64
			for i := 0; i < b.N; i++ {
				o := opt
				o.Parallelism = par
				h := experiments.NewHarness(o)
				h.Verbose = func(string, *system.Result) { runs.Add(1) }
				h.All()
			}
			b.ReportMetric(float64(runs.Load())/b.Elapsed().Seconds(), "runs/s")
		})
	}

	b.Run("store=cold", func(b *testing.B) {
		b.ReportAllocs()
		var runs atomic.Int64
		for i := 0; i < b.N; i++ {
			o := opt
			o.CacheDir = b.TempDir() // fresh store every iteration
			h := experiments.NewHarness(o)
			h.Verbose = func(string, *system.Result) { runs.Add(1) }
			h.All()
		}
		b.ReportMetric(float64(runs.Load())/b.Elapsed().Seconds(), "runs/s")
	})

	b.Run("store=warm", func(b *testing.B) {
		o := opt
		o.CacheDir = b.TempDir()
		experiments.NewHarness(o).All() // populate once, untimed
		var recalls, sims atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := experiments.NewHarness(o)
			h.Verbose = func(string, *system.Result) { sims.Add(1) }
			h.Opt.Progress = func(done, total int, key string) { recalls.Add(1) }
			h.All()
		}
		if sims.Load() != 0 {
			b.Fatalf("warm campaign ran %d simulations, want 0", sims.Load())
		}
		b.ReportMetric(float64(recalls.Load())/b.Elapsed().Seconds(), "runs/s")
	})
}

// BenchmarkTraceStreamingReplay measures the v2 trace container on a
// sizeable recording: decode=cold materializes the whole file the way
// v1 replay had to; decode=streamed replays through the block reader
// with O(block) memory. Reported alongside: the v2/v1 size ratio of
// the same records (the compression report the container exists for —
// WORKLOADS.md tabulates the per-workload ratios).
func BenchmarkTraceStreamingReplay(b *testing.B) {
	w, err := skybyte.WorkloadByName("ycsb")
	if err != nil {
		b.Fatal(err)
	}
	tr := &trace.Trace{Meta: trace.Meta{
		Workload: w.Name, Seed: 1, FootprintPages: w.FootprintPages, WriteRatio: w.WriteRatio,
	}}
	const threads, perThread = 4, 250_000
	for t := 0; t < threads; t++ {
		tr.Threads = append(tr.Threads, trace.RecordStream(w.Stream(t, 1), perThread))
	}
	v1, err := trace.EncodeTraceVersion(tr, 1)
	if err != nil {
		b.Fatal(err)
	}
	v2, err := trace.EncodeTraceVersion(tr, 2)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.trc")
	if err := os.WriteFile(path, v2, 0o644); err != nil {
		b.Fatal(err)
	}
	total := float64(tr.Records())
	ratio := float64(len(v2)) / float64(len(v1))

	drainAll := func(src trace.Source) uint64 {
		var n uint64
		for t := 0; t < threads; t++ {
			st := src.Stream(t)
			for {
				if _, ok := st.Next(); !ok {
					break
				}
				n++
			}
		}
		return n
	}

	b.Run("decode=cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := os.ReadFile(path)
			if err != nil {
				b.Fatal(err)
			}
			dec, err := trace.DecodeTrace(data)
			if err != nil {
				b.Fatal(err)
			}
			if drainAll(dec) != uint64(total) {
				b.Fatal("short replay")
			}
		}
		b.ReportMetric(total*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		b.ReportMetric(100*ratio, "v2size%")
	})

	b.Run("decode=streamed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := trace.OpenFile(path)
			if err != nil {
				b.Fatal(err)
			}
			if drainAll(r) != uint64(total) {
				b.Fatal("short replay")
			}
			r.Close()
		}
		b.ReportMetric(total*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		b.ReportMetric(100*ratio, "v2size%")
	})
}
