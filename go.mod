module skybyte

go 1.24
