// skybyte-sim runs a single simulation — the equivalent of the artifact's
// ./macsim invocation: one workload, one design variant, with the paper's
// configuration knobs exposed as flags.
//
// Example:
//
//	skybyte-sim -workload ycsb -variant SkyByte-Full -threads 24 -instr 16000
//	skybyte-sim -workload srad -variant Base-CSSD -cs-threshold 10us
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"skybyte"
	"skybyte/internal/osched"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
)

func main() {
	var (
		workload  = flag.String("workload", "ycsb", "benchmark: bc, bfs-dense, dlrm, radix, srad, tpcc, ycsb")
		variant   = flag.String("variant", "SkyByte-Full", "design variant (Base-CSSD, SkyByte-{C,P,W,CP,WP,Full,CT,WCT}, AstriFlash-CXL, DRAM-Only)")
		threads   = flag.Int("threads", 0, "software threads (0 = paper default: 24 with context switch, 8 otherwise)")
		instr     = flag.Uint64("instr", 16000, "instructions per thread")
		seed      = flag.Uint64("seed", 1, "workload seed")
		threshold = flag.Duration("cs-threshold", 2*time.Microsecond, "context-switch trigger threshold (artifact knob cs_threshold)")
		policy    = flag.String("policy", "FAIRNESS", "scheduling policy: RR, RANDOM, FAIRNESS (artifact knob t_policy)")
		cacheMB   = flag.Int("ssd-dram-mb", 0, "override total SSD DRAM size in MiB (artifact knob ssd_cache_size_byte)")
		logKB     = flag.Int("write-log-kb", 0, "override write log size in KiB")
		paper     = flag.Bool("paper-scale", false, "use Table II capacities verbatim instead of the 1/64 scaled machine")
	)
	flag.Parse()

	w, err := skybyte.WorkloadByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := skybyte.ScaledConfig()
	if *paper {
		cfg = skybyte.PaperConfig()
	}
	cfg = cfg.WithVariant(skybyte.Variant(*variant))
	cfg.HintThreshold = sim.Time(threshold.Nanoseconds()) * sim.Nanosecond
	cfg.Policy = osched.PolicyKind(*policy)
	if *cacheMB > 0 {
		cfg.SSDDRAMBytes = *cacheMB << 20
	}
	if *logKB > 0 {
		cfg.WriteLogBytes = *logKB << 10
	}
	n := *threads
	if n == 0 {
		n = 8
		if cfg.CtxSwitchEnabled {
			n = 24
		}
	}

	start := time.Now()
	res := skybyte.Run(cfg, w, n, *instr, *seed)
	wall := time.Since(start)

	fmt.Printf("workload        %s (%s footprint, paper MPKI %.1f)\n", w.Name, stats.FormatGB(w.FootprintBytes()), w.PaperMPKI)
	fmt.Printf("variant         %s, %d threads on %d cores\n", res.Variant, n, cfg.Cores)
	fmt.Printf("exec time       %v   (%.1fM instr, %.0f MIPS simulated; wall %v)\n",
		res.ExecTime, float64(res.Instructions)/1e6, res.IPS()/1e6, wall.Round(time.Millisecond))
	fmt.Printf("boundedness     compute %.1f%%  memory %.1f%%  ctx-switch %.1f%%\n",
		100*res.Bound.ComputeFrac(), 100*res.Bound.MemFrac(), 100*res.Bound.CtxFrac())
	fmt.Printf("AMAT            %v (host %v | protocol %v | index %v | ssdDRAM %v | flash %v)\n",
		res.AMAT.Mean(),
		res.AMAT.MeanOf(stats.AMATHostDRAM), res.AMAT.MeanOf(stats.AMATCXLProtocol),
		res.AMAT.MeanOf(stats.AMATIndexing), res.AMAT.MeanOf(stats.AMATSSDDRAM), res.AMAT.MeanOf(stats.AMATFlash))
	fmt.Printf("read latency    p50 %v  p99 %v  max %v\n",
		res.ReadLat.Percentile(50), res.ReadLat.Percentile(99), res.ReadLat.Max())
	fmt.Printf("requests        H-R/W %.1f%%  S-R-H %.1f%%  S-R-M %.1f%%  S-W %.1f%%\n",
		100*res.Breakdown.Frac(stats.HostRW), 100*res.Breakdown.Frac(stats.SSDReadHit),
		100*res.Breakdown.Frac(stats.SSDReadMiss), 100*res.Breakdown.Frac(stats.SSDWrite))
	fmt.Printf("flash           reads %d  programs %d (user %d, compact %d, GC %d, demote %d)  erases %d\n",
		res.Traffic.TotalReads(), res.Traffic.TotalPrograms(), res.Traffic.HostPrograms,
		res.Traffic.CompactWrites, res.Traffic.GCPrograms, res.Traffic.DemoteWrites, res.Traffic.Erases)
	fmt.Printf("MPKI            %.1f   LLC misses %d\n", res.MPKI, res.LLCMisses)
	if res.HintsSent > 0 {
		fmt.Printf("SkyByte-Delay   hints %d  switches %d (hint-triggered %d)\n", res.HintsSent, res.CtxSwitches, res.HintSwitches)
	}
	if res.Compaction.Count > 0 {
		fmt.Printf("compaction      %d runs, mean %v, %d pages; peak log index %s\n",
			res.Compaction.Count, res.Compaction.Mean(), res.Compaction.Pages, stats.FormatGB(uint64(res.LogIndexPeak)))
	}
	if res.Migration.Promotions > 0 {
		fmt.Printf("migration       %d promotions, %d demotions\n", res.Migration.Promotions, res.Migration.Demotions)
	}
	fmt.Printf("SSD bandwidth   %.2f GB/s over CXL; flash die utilization %.1f%%\n",
		res.SSDBandwidthBps/1e9, 100*res.FlashUtilization)
}
