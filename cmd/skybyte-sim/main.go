// skybyte-sim runs a single simulation — the equivalent of the artifact's
// ./macsim invocation: one workload, one design variant, with the paper's
// configuration knobs exposed as flags.
//
// Example:
//
//	skybyte-sim -workload ycsb -variant SkyByte-Full -threads 24 -instr 16000
//	skybyte-sim -workload srad -variant Base-CSSD -cs-threshold 10us
//	skybyte-sim -workload-file my-workload.json -variant SkyByte-Full
//	skybyte-sim -workload-file recorded.trc -variants Base-CSSD,SkyByte-Full
//	skybyte-sim -mix graph-vs-log -variant SkyByte-Full       # multi-tenant run
//	skybyte-sim -mix-file mix.json -variant Base-CSSD         # file-defined mix
//	skybyte-sim -arrival open-steady -arrival-scale 2         # open-loop run
//	skybyte-sim -arrival-file traffic.json -variant SkyByte-C # file-defined arrival spec
//
// With -variants (plural), several design points run concurrently over
// the shared worker pool and print as one comparison:
//
//	skybyte-sim -workload tpcc -variants Base-CSSD,SkyByte-W,SkyByte-Full
//
// With -cache-dir, completed runs persist in the content-addressed
// result store and later invocations (same workload, variant, knobs,
// and seed) recall them instead of re-simulating. A comparison can be
// split across machines sharing a store and merged without simulating:
//
//	skybyte-sim -workload tpcc -variants Base-CSSD,SkyByte-Full -cache-dir .c -shard 0/2
//	skybyte-sim -workload tpcc -variants Base-CSSD,SkyByte-Full -cache-dir .c -shard 1/2
//	skybyte-sim -workload tpcc -variants Base-CSSD,SkyByte-Full -cache-dir .c -from-cache
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"skybyte"
	"skybyte/internal/fleet"
	"skybyte/internal/osched"
	"skybyte/internal/runner"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/store"
	"skybyte/internal/system"
	"skybyte/internal/telemetry"
)

func main() {
	var (
		workload  = flag.String("workload", "ycsb", "workload name; any of skybyte.WorkloadNames() — Table I, the extension scenarios, or a file-registered workload")
		wfile     = flag.String("workload-file", "", "load the workload from a file (declarative JSON definition or recorded trace; see WORKLOADS.md) and run it")
		impSpec   = flag.String("import", "", "convert and run an external trace, <format>:<path> (formats: champsim, damon, cachegrind; see WORKLOADS.md)")
		mixName   = flag.String("mix", "", "run a multi-tenant mix instead of -workload: each tenant group replays its own workload (any of skybyte.MixNames()); prints per-tenant accounting")
		mixFile   = flag.String("mix-file", "", "load a multi-tenant mix from a JSON file (see WORKLOADS.md) and run it")
		arrName   = flag.String("arrival", "", "run an open-loop arrival spec instead of -workload: client cohorts offer requests at sampled instants (any of skybyte.ArrivalNames()); prints per-SLO-class percentiles")
		arrFile   = flag.String("arrival-file", "", "load an arrival spec from a JSON file (see WORKLOADS.md) and run it")
		arrScale  = flag.Float64("arrival-scale", 1, "with -arrival: multiply every cohort rate by this offered-intensity scale")
		variant   = flag.String("variant", "SkyByte-Full", "design variant (Base-CSSD, SkyByte-{C,P,W,CP,WP,Full,CT,WCT}, AstriFlash-CXL, DRAM-Only)")
		variants  = flag.String("variants", "", "comma-separated variants to compare; they run in parallel and print one table")
		parallel  = flag.Int("parallel", 0, "with -variants: simulations in flight at once (0 = GOMAXPROCS)")
		threads   = flag.Int("threads", 0, "software threads (0 = paper default: 24 with context switch, 8 otherwise)")
		instr     = flag.Uint64("instr", 16000, "instructions per thread")
		seed      = flag.Uint64("seed", 1, "workload seed")
		devices   = flag.Int("devices", 0, "wire a fleet of this many CXL-SSDs behind the placement layer (0 = the single-device machine; max 16); prints per-device fleet-dev rows")
		placement = flag.String("placement", "", "with -devices >= 2: fleet placement policy (striped, capacity, hotcold; default striped)")
		threshold = flag.Duration("cs-threshold", 2*time.Microsecond, "context-switch trigger threshold (artifact knob cs_threshold)")
		policy    = flag.String("policy", "FAIRNESS", "scheduling policy: RR, RANDOM, FAIRNESS (artifact knob t_policy)")
		cacheMB   = flag.Int("ssd-dram-mb", 0, "override total SSD DRAM size in MiB (artifact knob ssd_cache_size_byte)")
		logKB     = flag.Int("write-log-kb", 0, "override write log size in KiB")
		paper     = flag.Bool("paper-scale", false, "use Table II capacities verbatim instead of the 1/64 scaled machine")
		telDur    = flag.Duration("telemetry", 0, "sample in-simulator probes (write-log occupancy, queue depths, per-class p99, ...) every this much simulated time; the time-series ride in the result (0 = off, zero cost)")
		timeline  = flag.String("timeline", "", "with -telemetry: also record the request-lifecycle timeline and write it to this file as Chrome trace-event JSON (load in Perfetto or chrome://tracing)")
		cacheDir  = flag.String("cache-dir", "", "persist results in the content-addressed store rooted here; identical runs are recalled, not re-simulated")
		shardSpec = flag.String("shard", "", "with -variants and -cache-dir: execute only slice i of n (format i/n) of the comparison")
		fromCache = flag.Bool("from-cache", false, "with -variants and -cache-dir: render from the store only; a missing run is an error")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Validate every name before anything simulates: a typo must list
	// the valid values and change nothing. A -workload-file (or
	// -mix-file) both registers its definition (so the runner's
	// source-folded spec keys reflect it exactly) and selects it for
	// this run.
	if *wfile != "" {
		loaded, err := skybyte.WorkloadFromFile(*wfile)
		if err != nil {
			fail(err)
		}
		*workload = loaded.Name
	}
	if *impSpec != "" {
		loaded, err := skybyte.ImportTrace(*impSpec)
		if err != nil {
			fail(err)
		}
		*workload = loaded.Name
	}
	if *mixFile != "" {
		loaded, err := skybyte.MixFromFile(*mixFile)
		if err != nil {
			fail(err)
		}
		*mixName = loaded.Name
	}
	var mix skybyte.Mix
	if *mixName != "" {
		var err error
		if mix, err = skybyte.MixByName(*mixName); err != nil {
			fail(err)
		}
		if *variants != "" {
			fail(fmt.Errorf("-mix runs one design point at a time; it cannot be combined with -variants"))
		}
		if *threads != 0 {
			fail(fmt.Errorf("-mix declares its own thread counts; -threads does not apply"))
		}
	}
	if *arrFile != "" {
		loaded, err := skybyte.ArrivalFromFile(*arrFile)
		if err != nil {
			fail(err)
		}
		*arrName = loaded.Name
	}
	var arr skybyte.Arrival
	if *arrName != "" {
		var err error
		if arr, err = skybyte.ArrivalByName(*arrName); err != nil {
			fail(err)
		}
		// Resolve cohort references now: an arrival spec naming an
		// unknown workload or mix must list the valid set and change
		// nothing, before any simulation starts.
		if err := arr.Resolve(); err != nil {
			fail(err)
		}
		if *mixName != "" {
			fail(fmt.Errorf("-arrival paces its own cohorts; it cannot be combined with -mix"))
		}
		if *variants != "" {
			fail(fmt.Errorf("-arrival runs one design point at a time; it cannot be combined with -variants"))
		}
		if *threads != 0 {
			fail(fmt.Errorf("-arrival declares its own cohort thread counts; -threads does not apply"))
		}
	}
	w, err := skybyte.WorkloadByName(*workload)
	if err != nil {
		fail(err)
	}
	var variantList []system.Variant
	if *variants != "" {
		for _, name := range strings.Split(*variants, ",") {
			v, err := system.ParseVariant(strings.TrimSpace(name))
			if err != nil {
				fail(err)
			}
			variantList = append(variantList, v)
		}
	} else if _, err := system.ParseVariant(*variant); err != nil {
		fail(err)
	}
	// Fleet flags reject unknown values upfront, listing the valid set
	// (the same convention as -variant), before anything simulates.
	if *devices != 0 {
		if err := fleet.Validate(*devices, *placement); err != nil {
			fail(err)
		}
	} else if *placement != "" {
		fail(fmt.Errorf("-placement %q requires -devices >= 2 (valid policies: %s)", *placement, strings.Join(fleet.PolicyNames(), ", ")))
	}
	if *placement != "" && *devices < 2 {
		fail(fmt.Errorf("-placement %q needs a fleet to place across; use -devices 2..%d", *placement, fleet.MaxDevices))
	}
	if *timeline != "" && *telDur <= 0 {
		fail(fmt.Errorf("-timeline records spans on the telemetry sampler; it requires -telemetry <cadence>"))
	}
	if *timeline != "" && *variants != "" {
		fail(fmt.Errorf("-timeline writes one run's timeline; it cannot be combined with -variants"))
	}
	if (*shardSpec != "" || *fromCache) && *cacheDir == "" {
		fail(fmt.Errorf("-shard and -from-cache require -cache-dir"))
	}
	if (*shardSpec != "" || *fromCache) && *variants == "" {
		fail(fmt.Errorf("-shard and -from-cache apply to the -variants comparison"))
	}
	shardI, shardN := 0, 1
	if *shardSpec != "" {
		var err error
		if shardI, shardN, err = runner.ParseShard(*shardSpec); err != nil {
			fail(fmt.Errorf("-shard: %w", err))
		}
	}

	base := skybyte.ScaledConfig()
	if *paper {
		base = skybyte.PaperConfig()
	}
	// Workload and mix definitions reach the store identity through the
	// runner's source-folded spec keys (DESIGN.md §2.1): an edited file
	// or re-recorded trace re-keys exactly the runs that use it.
	// knobs applies the CLI overrides on top of a variant config; the
	// runner paths reuse it as the spec's config mutation. knobTag
	// folds the knob values into the spec identity, so runs with
	// different CLI settings never collide in a persistent store
	// (mutations are excluded from Spec.Key by design; the tag carries
	// them).
	knobs := func(c *skybyte.Config) {
		c.HintThreshold = sim.Time(threshold.Nanoseconds()) * sim.Nanosecond
		c.Policy = osched.PolicyKind(*policy)
		if *cacheMB > 0 {
			c.SSDDRAMBytes = *cacheMB << 20
		}
		if *logKB > 0 {
			c.WriteLogBytes = *logKB << 10
		}
		if *telDur > 0 {
			c.TelemetryCadence = sim.Time(telDur.Nanoseconds()) * sim.Nanosecond
			c.TelemetryTimeline = *timeline != ""
		}
	}
	knobTag := fmt.Sprintf("cli|thr=%v|pol=%s|dram=%dMB|log=%dKB|tel=%v|tl=%t",
		*threshold, *policy, *cacheMB, *logKB, *telDur, *timeline != "")

	newRunner := func(parallelism int) *runner.Runner {
		r := runner.New(base, *seed, parallelism)
		if *cacheDir != "" {
			disk, err := store.Open(*cacheDir, store.Fingerprint(base, *seed))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			r.Store = disk
			r.CacheOnly = *fromCache
		}
		return r
	}

	// Devices/Placement are spec identity, not knob-tag material: the
	// runner folds them into the store key (DESIGN.md §9), so they ride
	// on every Spec below rather than in knobTag.
	flt := fleetFlags{devices: *devices, placement: *placement}

	if *variants != "" {
		compareVariants(newRunner(*parallel), base, w, variantList, *threads, *instr, knobTag, knobs, flt, shardI, shardN, *shardSpec != "")
		return
	}

	if *mixName != "" {
		runMix(newRunner(1), base, mix, skybyte.Variant(*variant), *instr, *seed, *cacheDir != "", knobTag, knobs, flt, *timeline)
		return
	}

	if *arrName != "" {
		runArrival(newRunner(1), base, arr, skybyte.Variant(*variant), *instr, *seed, *arrScale, *cacheDir != "", knobTag, knobs, flt, *timeline)
		return
	}

	cfg := base.WithVariant(skybyte.Variant(*variant))
	knobs(&cfg)
	flt.apply(&cfg)
	n := *threads
	if n == 0 {
		// Same paper default as the comparison path, so both modes
		// measure — and, with -cache-dir, share — the same design point.
		n = runner.ThreadsFor(cfg)
	}

	start := time.Now()
	var res *skybyte.Result
	if *cacheDir == "" {
		res = skybyte.Run(cfg, w, n, *instr, *seed)
	} else {
		// Route through the runner so the store is consulted and fed.
		r := newRunner(1)
		res, err = r.Run(context.Background(), runner.Spec{
			Workload:   w.Name,
			Variant:    skybyte.Variant(*variant),
			TotalInstr: *instr * uint64(n),
			Threads:    n,
			Devices:    flt.devices,
			Placement:  flt.placement,
			Tag:        knobTag,
			Mutate:     knobs,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	wall := time.Since(start)

	fmt.Printf("workload        %s (%s footprint, paper MPKI %.1f)\n", w.Name, stats.FormatGB(w.FootprintBytes()), w.PaperMPKI)
	fmt.Printf("variant         %s, %d threads on %d cores\n", res.Variant, n, cfg.Cores)
	fmt.Printf("exec time       %v   (%.1fM instr, %.0f MIPS simulated; wall %v)\n",
		res.ExecTime, float64(res.Instructions)/1e6, res.IPS()/1e6, wall.Round(time.Millisecond))
	fmt.Printf("boundedness     compute %.1f%%  memory %.1f%%  ctx-switch %.1f%%\n",
		100*res.Bound.ComputeFrac(), 100*res.Bound.MemFrac(), 100*res.Bound.CtxFrac())
	fmt.Printf("AMAT            %v (host %v | protocol %v | index %v | ssdDRAM %v | flash %v)\n",
		res.AMAT.Mean(),
		res.AMAT.MeanOf(stats.AMATHostDRAM), res.AMAT.MeanOf(stats.AMATCXLProtocol),
		res.AMAT.MeanOf(stats.AMATIndexing), res.AMAT.MeanOf(stats.AMATSSDDRAM), res.AMAT.MeanOf(stats.AMATFlash))
	fmt.Printf("read latency    p50 %v  p99 %v  max %v\n",
		res.ReadLat.Percentile(50), res.ReadLat.Percentile(99), res.ReadLat.Max())
	fmt.Printf("requests        H-R/W %.1f%%  S-R-H %.1f%%  S-R-M %.1f%%  S-W %.1f%%\n",
		100*res.Breakdown.Frac(stats.HostRW), 100*res.Breakdown.Frac(stats.SSDReadHit),
		100*res.Breakdown.Frac(stats.SSDReadMiss), 100*res.Breakdown.Frac(stats.SSDWrite))
	fmt.Printf("flash           reads %d  programs %d (user %d, compact %d, GC %d, demote %d)  erases %d\n",
		res.Traffic.TotalReads(), res.Traffic.TotalPrograms(), res.Traffic.HostPrograms,
		res.Traffic.CompactWrites, res.Traffic.GCPrograms, res.Traffic.DemoteWrites, res.Traffic.Erases)
	fmt.Printf("MPKI            %.1f   LLC misses %d\n", res.MPKI, res.LLCMisses)
	if res.HintsSent > 0 {
		fmt.Printf("SkyByte-Delay   hints %d  switches %d (hint-triggered %d)\n", res.HintsSent, res.CtxSwitches, res.HintSwitches)
	}
	if res.Compaction.Count > 0 {
		fmt.Printf("compaction      %d runs, mean %v, %d pages; peak log index %s\n",
			res.Compaction.Count, res.Compaction.Mean(), res.Compaction.Pages, stats.FormatGB(uint64(res.LogIndexPeak)))
	}
	if res.Migration.Promotions > 0 {
		fmt.Printf("migration       %d promotions, %d demotions\n", res.Migration.Promotions, res.Migration.Demotions)
	}
	fmt.Printf("SSD bandwidth   %.2f GB/s over CXL; flash die utilization %.1f%%\n",
		res.SSDBandwidthBps/1e9, 100*res.FlashUtilization)
	emitFleet(res)
	emitTelemetry(res, *timeline)
}

// fleetFlags carries the -devices/-placement pair to each run path:
// apply sets them on a config for the direct (storeless) paths; the
// runner paths put them on the Spec instead, where they fold into the
// store key.
type fleetFlags struct {
	devices   int
	placement string
}

func (f fleetFlags) apply(c *skybyte.Config) {
	c.Devices = f.devices
	c.Placement = f.placement
}

// emitFleet prints the per-device split of a fleet run: one fleet-dev
// row per device, then a fleet-total row carrying the run's summed
// totals in the same space-separated columns (device, flash reads,
// flash programs, owned pages, inbound accesses) so scripted consumers
// can assert the splits reconcile against the totals. Non-fleet runs
// print nothing.
func emitFleet(res *skybyte.Result) {
	if len(res.Devices) == 0 {
		return
	}
	fmt.Printf("fleet           %d devices, %s placement, %d migrations\n",
		len(res.Devices), res.Placement, res.FleetMigrations)
	var pages, inbound uint64
	for _, d := range res.Devices {
		fmt.Printf("fleet-dev %d %d %d %d %d util %.1f%%\n",
			d.Device, d.Traffic.TotalReads(), d.Traffic.TotalPrograms(),
			d.Pages, d.Inbound, 100*d.FlashUtilization)
		pages += d.Pages
		inbound += d.Inbound
	}
	fmt.Printf("fleet-total all %d %d %d %d\n",
		res.Traffic.TotalReads(), res.Traffic.TotalPrograms(), pages, inbound)
}

// emitTelemetry prints the telemetry summary lines of a run that
// carried a sampled section, and writes the request-lifecycle timeline
// when a path was given. Output lines are prefixed "telemetry" so
// scripted consumers keyed on the existing row prefixes never see them.
func emitTelemetry(res *skybyte.Result, timelinePath string) {
	tel := res.Telemetry
	if tel == nil {
		return
	}
	fmt.Printf("telemetry       %d samples every %v across %d series\n",
		tel.Samples, tel.Cadence, len(tel.Series))
	if occ := tel.SeriesByName("writelog.occupancy"); occ != nil && len(occ.Points) > 0 {
		fmt.Printf("telemetry       write-log occupancy mean %.1f%%  peak %.1f%%\n",
			100*occ.Mean(0, res.ExecTime+1), 100*occ.Max(0, res.ExecTime+1))
	}
	if timelinePath == "" {
		return
	}
	f, err := os.Create(timelinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := telemetry.WriteChromeTrace(f, tel); err == nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("telemetry       timeline: %d spans -> %s (load in Perfetto or chrome://tracing)\n",
		len(tel.Spans), timelinePath)
	if tel.DroppedSpans > 0 {
		fmt.Printf("telemetry       warning: %d spans beyond the recorder capacity were dropped\n", tel.DroppedSpans)
	}
}

// runMix executes one multi-tenant design point and prints the
// per-tenant accounting: who got what share of the machine, who paid
// for context switches, and who filled the write log. instrPerThread
// matches the solo path's -instr semantics (an intensity-1 tenant's
// threads each replay that many instructions). With -cache-dir the run
// routes through the runner so identical mixed runs recall from the
// store.
func runMix(r *runner.Runner, base skybyte.Config, m skybyte.Mix, v skybyte.Variant, instrPerThread, seed uint64, useStore bool, knobTag string, knobs func(*skybyte.Config), flt fleetFlags, timelinePath string) {
	cfg := base.WithVariant(v)
	knobs(&cfg)
	flt.apply(&cfg)
	total := instrPerThread * uint64(m.TotalThreads())

	start := time.Now()
	var res *skybyte.Result
	var err error
	if useStore {
		res, err = r.Run(context.Background(), runner.Spec{
			Mix:        m.Name,
			Variant:    v,
			TotalInstr: total,
			Threads:    m.TotalThreads(),
			Devices:    flt.devices,
			Placement:  flt.placement,
			Tag:        knobTag,
			Mutate:     knobs,
		})
	} else {
		res, err = skybyte.RunMix(cfg, m, total, seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start)

	fmt.Printf("mix             %s (%d tenants, %d threads on %d cores)\n",
		m.Name, len(m.Tenants), m.TotalThreads(), cfg.Cores)
	fmt.Printf("variant         %s\n", res.Variant)
	fmt.Printf("exec time       %v   (%.1fM instr total; wall %v)\n",
		res.ExecTime, float64(res.Instructions)/1e6, wall.Round(time.Millisecond))
	fmt.Printf("boundedness     compute %.1f%%  memory %.1f%%  ctx-switch %.1f%%\n\n",
		100*res.Bound.ComputeFrac(), 100*res.Bound.MemFrac(), 100*res.Bound.CtxFrac())

	fmt.Printf("%-10s %-12s %7s %10s %12s %8s %8s %10s %8s %10s %8s\n",
		"tenant", "workload", "threads", "instr", "exec", "mem%", "ctx", "p99 read", "MPKI", "log lines", "stalls")
	ips := make([]float64, 0, len(res.Tenants))
	for _, tr := range res.Tenants {
		fmt.Printf("%-10s %-12s %7d %10d %12v %7.1f%% %8d %10v %8.1f %10d %8d\n",
			tr.Name, tr.Workload, tr.Threads, tr.Instructions, tr.ExecTime,
			100*tr.Bound.MemFrac(), tr.CtxSwitches, tr.ReadLat.Percentile(99), tr.MPKI,
			tr.Log.LinesAbsorbed, tr.Log.StalledWrites)
		ips = append(ips, tr.IPS())
	}
	fmt.Printf("\nfairness        Jain index %.3f over per-tenant progress rates (max/min %.2f)\n",
		stats.JainIndex(ips), stats.MaxMinRatio(ips))
	emitFleet(res)
	emitTelemetry(res, timelinePath)
}

// runArrival executes one open-loop design point and prints the
// per-SLO-class accounting: offered vs delivered request rate, the
// sojourn-latency percentiles, and the queueing share of the sojourn.
// instrPerThread matches the solo path's -instr semantics. With
// -cache-dir the run routes through the runner so identical open-loop
// runs recall from the store.
func runArrival(r *runner.Runner, base skybyte.Config, a skybyte.Arrival, v skybyte.Variant, instrPerThread, seed uint64, scale float64, useStore bool, knobTag string, knobs func(*skybyte.Config), flt fleetFlags, timelinePath string) {
	cfg := base.WithVariant(v)
	knobs(&cfg)
	flt.apply(&cfg)
	nThreads, err := a.TotalThreads()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	total := instrPerThread * uint64(nThreads)

	start := time.Now()
	var res *skybyte.Result
	if useStore {
		res, err = r.Run(context.Background(), runner.Spec{
			Arrival:      a.Name,
			ArrivalScale: scale,
			Variant:      v,
			TotalInstr:   total,
			Devices:      flt.devices,
			Placement:    flt.placement,
			Tag:          knobTag,
			Mutate:       knobs,
		})
	} else {
		res, err = skybyte.RunArrival(cfg, a, total, seed, scale)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start)

	fmt.Printf("arrival         %s x%g (%d cohorts, %d threads on %d cores)\n",
		a.Name, scale, len(a.Cohorts), nThreads, cfg.Cores)
	fmt.Printf("variant         %s\n", res.Variant)
	fmt.Printf("exec time       %v   (%.1fM instr total; wall %v)\n",
		res.ExecTime, float64(res.Instructions)/1e6, wall.Round(time.Millisecond))
	fmt.Printf("boundedness     compute %.1f%%  memory %.1f%%  ctx-switch %.1f%%\n\n",
		100*res.Bound.ComputeFrac(), 100*res.Bound.MemFrac(), 100*res.Bound.CtxFrac())

	if res.OpenLoop == nil {
		fmt.Println("no open-loop accounting recorded")
		return
	}
	fmt.Printf("%-10s %12s %12s %10s %10s %10s %10s %10s %12s\n",
		"class", "offered rps", "goodput rps", "p50", "p95", "p99", "p99.9", "max", "mean qdelay")
	for _, cl := range res.OpenLoop.Classes {
		fmt.Printf("%-10s %12.0f %12.0f %10v %10v %10v %10v %10v %12v\n",
			cl.Name, cl.OfferedRPS, cl.Stats.GoodputRPS(),
			cl.Stats.Latency.Percentile(50), cl.Stats.Latency.Percentile(95),
			cl.Stats.Latency.Percentile(99), cl.Stats.Latency.Percentile(99.9),
			cl.Stats.Latency.Max(), cl.Stats.QueueDelay.Mean())
	}
	tot := &res.OpenLoop.Total
	fmt.Printf("\ntotal           %d admitted, %d completed (%.0f rps goodput)\n",
		tot.Admitted, tot.Completed, tot.GoodputRPS())
	emitFleet(res)
	emitTelemetry(res, timelinePath)
}

// compareVariants runs one workload across several design points on the
// shared worker pool and prints them side by side (execution time
// normalized to the first variant listed). Every thread receives the
// same per-thread instruction budget, so variants with different paper
// thread defaults still execute comparable program sections per thread.
// With sharding, only the i-th of n slices executes (populating the
// store) and no table prints; -from-cache later renders the full
// comparison without simulating.
func compareVariants(r *runner.Runner, base skybyte.Config, w skybyte.Workload, vs []system.Variant, threads int, instrPerThread uint64, knobTag string, knobs func(*skybyte.Config), flt fleetFlags, shardI, shardN int, sharded bool) {
	specs := make([]runner.Spec, len(vs))
	for i, v := range vs {
		n := threads
		if n == 0 {
			vcfg := base.WithVariant(v)
			knobs(&vcfg)
			n = runner.ThreadsFor(vcfg)
		}
		specs[i] = runner.Spec{
			Workload:   w.Name,
			Variant:    v,
			TotalInstr: instrPerThread * uint64(n),
			Threads:    n,
			Devices:    flt.devices,
			Placement:  flt.placement,
			Tag:        knobTag,
			Mutate:     knobs,
		}
	}
	run := specs
	if sharded {
		run = runner.ShardSpecs(specs, shardI, shardN)
	}
	var sims atomic.Int64
	r.OnEvent = func(ev runner.Event) {
		if !ev.Cached {
			sims.Add(1)
		}
	}
	start := time.Now()
	results, err := r.RunAll(context.Background(), run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start)

	if sharded {
		fmt.Printf("shard %d/%d: %d of %d %s design points in the store (%d simulated, %d recalled; wall %v)\n",
			shardI, shardN, len(run), len(specs), w.Name, sims.Load(), int64(len(run))-sims.Load(), wall.Round(time.Millisecond))
		return
	}
	fmt.Printf("workload %s, %d instr/thread, %d workers (wall %v)\n\n",
		w.Name, instrPerThread, r.Parallelism(), wall.Round(time.Millisecond))
	fmt.Printf("%-16s %8s %14s %8s %12s %10s %8s\n",
		"variant", "threads", "exec", "norm", "AMAT", "p99 read", "MPKI")
	ref := float64(results[0].ExecTime)
	for i, res := range results {
		fmt.Printf("%-16s %8d %14v %8.3f %12v %10v %8.1f\n",
			string(specs[i].Variant), specs[i].Threads, res.ExecTime,
			float64(res.ExecTime)/ref, res.AMAT.Mean(), res.ReadLat.Percentile(99), res.MPKI)
	}
}
