// skybyte-trace inspects the synthetic workload generators that stand in
// for the paper's PIN traces: it prints a sample of records and summarises
// the stream's characteristics against Table I.
//
// Example:
//
//	skybyte-trace -workload bc -n 200000
//	skybyte-trace -workload radix -dump 30
//	skybyte-trace -workload ycsb -nthreads 24        # all 24 streams, analysed in parallel
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"skybyte"
	"skybyte/internal/mem"
	"skybyte/internal/stats"
	"skybyte/internal/trace"
)

// summary is one thread stream's measured characteristics.
type summary struct {
	thread    int
	kinds     map[trace.Kind]uint64
	instrs    uint64
	pages     map[uint64]bool
	pageLines map[uint64]uint64 // page -> line bitmask
}

// analyze drains up to n records of one thread's stream. Streams are
// independent deterministic generators, so distinct threads may be
// analysed concurrently.
func analyze(w skybyte.Workload, thread int, seed uint64, n, dump int) summary {
	st := w.Stream(thread, seed)
	s := summary{
		thread:    thread,
		kinds:     map[trace.Kind]uint64{},
		pages:     map[uint64]bool{},
		pageLines: map[uint64]uint64{},
	}
	dumped := 0
	for i := 0; i < n; i++ {
		r, ok := st.Next()
		if !ok {
			break
		}
		if dumped < dump {
			fmt.Printf("%6d  %-8s", i, r.Kind)
			if r.Kind == trace.Compute {
				fmt.Printf("  n=%d\n", r.N)
			} else {
				fmt.Printf("  %#x (page %d, line %d)\n", uint64(r.Addr), r.Addr.PageNumber(), r.Addr.LineIndex())
			}
			dumped++
		}
		s.kinds[r.Kind]++
		s.instrs += r.Instructions()
		if r.Kind != trace.Compute {
			p := r.Addr.PageNumber()
			s.pages[p] = true
			s.pageLines[p] |= 1 << r.Addr.LineIndex()
		}
	}
	return s
}

func (s summary) memOps() uint64 {
	return s.kinds[trace.Load] + s.kinds[trace.LoadDep] + s.kinds[trace.Store]
}

func main() {
	var (
		workload = flag.String("workload", "ycsb", "benchmark name")
		n        = flag.Int("n", 100000, "records to analyse per thread")
		dump     = flag.Int("dump", 0, "records to print verbatim (single-thread mode only)")
		thread   = flag.Int("thread", 0, "thread id")
		nthreads = flag.Int("nthreads", 1, "analyse this many thread streams (ids 0..n-1) and aggregate")
		parallel = flag.Int("parallel", 0, "streams analysed concurrently (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	w, err := skybyte.WorkloadByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var sums []summary
	if *nthreads > 1 {
		// Fan the independent streams across a bounded worker pool;
		// results print in thread order regardless of completion order.
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		sums = make([]summary, *nthreads)
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for t := 0; t < *nthreads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				sem <- struct{}{}
				sums[t] = analyze(w, t, *seed, *n, 0)
				<-sem
			}(t)
		}
		wg.Wait()
	} else {
		sums = []summary{analyze(w, *thread, *seed, *n, *dump)}
	}

	fmt.Printf("\nworkload %s (%s, paper footprint %.2fGB, paper MPKI %.1f)\n",
		w.Name, w.Suite, w.PaperFootprintGB, w.PaperMPKI)
	if *nthreads > 1 {
		fmt.Printf("%-8s %12s %12s %10s %8s\n", "thread", "instrs", "mem ops", "stores", "pages")
		for _, s := range sums {
			fmt.Printf("%-8d %12d %12d %10d %8d\n", s.thread, s.instrs, s.memOps(), s.kinds[trace.Store], len(s.pages))
		}
	}

	// Aggregate across the analysed streams.
	var (
		kinds     = map[trace.Kind]uint64{}
		instrs    uint64
		pages     = map[uint64]bool{}
		pageLines = map[uint64]uint64{}
	)
	for _, s := range sums {
		for k, v := range s.kinds {
			kinds[k] += v
		}
		instrs += s.instrs
		for p := range s.pages {
			pages[p] = true
		}
		for p, mask := range s.pageLines {
			pageLines[p] |= mask
		}
	}

	memOps := kinds[trace.Load] + kinds[trace.LoadDep] + kinds[trace.Store]
	fmt.Printf("instructions     %d (%d records/thread, %d threads)\n", instrs, *n, len(sums))
	fmt.Printf("memory ops       %d (%.1f per 100 instr)\n", memOps, 100*float64(memOps)/float64(instrs))
	totalLoads := kinds[trace.Load] + kinds[trace.LoadDep]
	depFrac := 0.0
	if totalLoads > 0 {
		depFrac = float64(kinds[trace.LoadDep]) / float64(totalLoads)
	}
	fmt.Printf("  loads          %d (%.1f%% dependent/pointer-chasing)\n", totalLoads, 100*depFrac)
	fmt.Printf("  stores         %d (write ratio %.1f%%, Table I: %.0f%%)\n",
		kinds[trace.Store], 100*float64(kinds[trace.Store])/float64(memOps), 100*w.WriteRatio)
	fmt.Printf("pages touched    %d of %d footprint (%s)\n", len(pages), w.FootprintPages, stats.FormatGB(w.FootprintBytes()))

	// Spatial sparsity: the Fig. 5/6 style line-usage distribution.
	var dist stats.Distribution
	for _, mask := range pageLines {
		dist.Add(float64(popcount(mask)) / float64(mem.LinesPerPage))
	}
	fmt.Printf("line usage/page  mean %.1f%% of 64 lines; %.0f%% of pages use <=25%% of lines\n",
		100*dist.Mean(), 100*dist.FractionAtOrBelow(0.25))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
