// skybyte-trace inspects the workload generators that stand in for the
// paper's PIN traces: it prints a sample of records, summarises the
// stream's characteristics against Table I, records streams to the
// versioned on-disk trace format for later replay, and imports
// externally produced traces — ChampSim, DAMON, cachegrind — into the
// same format (WORKLOADS.md).
//
// Example:
//
//	skybyte-trace -workload bc -n 200000
//	skybyte-trace -workload radix -dump 30
//	skybyte-trace -workload ycsb -nthreads 24        # all 24 streams, analysed in parallel
//	skybyte-trace -workload-file my-workload.json -n 50000
//	skybyte-trace -mix graph-vs-log                  # per-tenant stream summary
//
// Record and replay: -record captures the deterministic streams to a
// file; the file then loads as a workload anywhere (-workload-file on
// any CLI, skybyte.WorkloadFromFile) and replays record for record —
// re-recording a replay reproduces the file bit for bit, and a replay
// cut at the same instruction budget reproduces a simulation's Result
// bit for bit:
//
//	skybyte-trace -workload ycsb -nthreads 24 -record-instr 16000 -record ycsb.trc
//	skybyte-sim -workload-file ycsb.trc -variant SkyByte-Full -threads 24 -instr 16000
//
// Files are written in the block-compressed v2 container by default;
// -trace-version 1 emits the flat legacy layout (both replay
// identically; v2 streams with bounded memory and is roughly a third
// of the size).
//
// Import: -import <format>:<path> converts an external trace and
// either records it (-record) or analyses it like any workload. A bare
// path works too when its extension names the format (unrecognized
// extensions fail loudly with the valid set — never a silent guess).
// For champsim, the path may be a directory or glob of per-CPU trace
// files; each file becomes one real thread stream. The converted file
// carries provenance meta (source name, sha256, converter revision)
// and loads as workload "trace:<format>:<source>":
//
//	skybyte-trace -import champsim:600.perlbench.bin -record perlbench.trc
//	skybyte-trace -import 'champsim:traces/cpu*.champsimtrace' -record perlbench-4cpu.trc
//	skybyte-sim -workload-file perlbench.trc -variant SkyByte-Full
//	skybyte-trace -import damon:damon-raw.txt          # analyse without recording
//
// -make-fixture <format>:<path> writes a tiny synthetic source file in
// an external format (the importer test/CI fixture generator, handy
// for trying the pipeline without a real trace).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"skybyte"
	"skybyte/internal/arrival"
	"skybyte/internal/mem"
	"skybyte/internal/stats"
	"skybyte/internal/telemetry"
	"skybyte/internal/trace"
	"skybyte/internal/traceimport"
)

// summary is one thread stream's measured characteristics.
type summary struct {
	thread    int
	kinds     map[trace.Kind]uint64
	instrs    uint64
	pages     map[uint64]bool
	pageLines map[uint64]uint64 // page -> line bitmask
}

// analyze drains up to n records of one thread's stream. Streams are
// independent deterministic generators, so distinct threads may be
// analysed concurrently.
func analyze(w skybyte.Workload, thread int, seed uint64, n, dump int) summary {
	st := w.Stream(thread, seed)
	s := summary{
		thread:    thread,
		kinds:     map[trace.Kind]uint64{},
		pages:     map[uint64]bool{},
		pageLines: map[uint64]uint64{},
	}
	dumped := 0
	for i := 0; i < n; i++ {
		r, ok := st.Next()
		if !ok {
			break
		}
		if dumped < dump {
			fmt.Printf("%6d  %-8s", i, r.Kind)
			if r.Kind == trace.Compute {
				fmt.Printf("  n=%d\n", r.N)
			} else {
				fmt.Printf("  %#x (page %d, line %d)\n", uint64(r.Addr), r.Addr.PageNumber(), r.Addr.LineIndex())
			}
			dumped++
		}
		s.kinds[r.Kind]++
		s.instrs += r.Instructions()
		if r.Kind != trace.Compute {
			p := r.Addr.PageNumber()
			s.pages[p] = true
			s.pageLines[p] |= 1 << r.Addr.LineIndex()
		}
	}
	return s
}

func (s summary) memOps() uint64 {
	return s.kinds[trace.Load] + s.kinds[trace.LoadDep] + s.kinds[trace.Store]
}

func main() {
	var (
		workload = flag.String("workload", "ycsb", "workload name (any of skybyte.WorkloadNames())")
		wfile    = flag.String("workload-file", "", "load the workload from a file (JSON definition or recorded trace) instead of -workload")
		mixName  = flag.String("mix", "", "analyse a multi-tenant mix instead of -workload: every tenant's streams, summarised per tenant (any of skybyte.MixNames())")
		mixFile  = flag.String("mix-file", "", "load the mix from a JSON file (see WORKLOADS.md) instead of -mix")
		arrName  = flag.String("arrival", "", "analyse an open-loop arrival spec instead of -workload: per-cohort process parameters and sampled interarrival statistics (any of skybyte.ArrivalNames())")
		arrFile  = flag.String("arrival-file", "", "load the arrival spec from a JSON file (see WORKLOADS.md) instead of -arrival")
		n        = flag.Int("n", 100000, "records to analyse (or record) per thread")
		dump     = flag.Int("dump", 0, "records to print verbatim (single-thread mode only)")
		thread   = flag.Int("thread", 0, "thread id")
		nthreads = flag.Int("nthreads", 1, "analyse (or record) this many thread streams (ids 0..n-1)")
		parallel = flag.Int("parallel", 0, "streams analysed concurrently (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		record   = flag.String("record", "", "record the streams to this trace file instead of analysing")
		recInstr = flag.Uint64("record-instr", 0, "with -record: cut each stream at this instruction budget (matching a simulation's -instr) instead of at -n records")
		recVer   = flag.Int("trace-version", trace.CodecVersion, "with -record: trace codec version to emit (1 = flat legacy, 2 = block-compressed streaming)")
		impSpec  = flag.String("import", "", "convert an external trace, <format>:<path> or a bare path with a recognized extension (formats: champsim, damon, cachegrind; champsim accepts a dir/glob of per-CPU files); records it with -record, analyses it otherwise")
		fixture  = flag.String("make-fixture", "", "write a tiny synthetic external-format source file, <format>:<path>, then exit (importer demo/CI fixture)")
		checkTL  = flag.String("check-timeline", "", "validate a Chrome trace-event timeline written by skybyte-sim -timeline (JSON shape and per-track span nesting), then exit; a violation is a non-zero exit")
	)
	flag.Parse()

	if *checkTL != "" {
		data, err := os.ReadFile(*checkTL)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spans, tracks, err := telemetry.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *checkTL, err)
			os.Exit(1)
		}
		fmt.Printf("timeline OK: %d spans across %d tracks, spans nest within every track\n", spans, tracks)
		return
	}

	if *fixture != "" {
		format, path, err := traceimport.ParseSpec(*fixture)
		if err == nil {
			err = traceimport.WriteFixture(format, path)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote synthetic %s fixture to %s\n", format, path)
		fmt.Printf("import with: skybyte-trace -import %s:%s -record %s.trc\n", format, path, path)
		return
	}

	if *impSpec != "" && *record != "" {
		// Convert an external trace straight to a .trc: the records
		// pass through verbatim (no cut), with provenance meta sealed
		// into the file. Cut flags would be silently meaningless here,
		// so refuse them — record the full conversion, then re-record
		// the .trc with -workload-file and the desired cut.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		for _, f := range []string{"n", "record-instr", "nthreads", "seed", "thread"} {
			if explicit[f] {
				fmt.Fprintf(os.Stderr, "-import -record writes the full conversion verbatim; -%s does not apply (record first, then re-record the .trc with -workload-file and your cut)\n", f)
				os.Exit(2)
			}
		}
		if err := recordImport(*impSpec, *record, *recVer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *arrFile != "" || *arrName != "" {
		var a skybyte.Arrival
		var err error
		if *arrFile != "" {
			a, err = skybyte.ArrivalFromFile(*arrFile)
		} else {
			a, err = skybyte.ArrivalByName(*arrName)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *record != "" {
			fmt.Fprintln(os.Stderr, "-record captures workload streams; an arrival spec paces them but generates no records")
			os.Exit(2)
		}
		analyzeArrival(a, *n, *seed)
		return
	}

	if *mixFile != "" || *mixName != "" {
		var m skybyte.Mix
		var err error
		if *mixFile != "" {
			m, err = skybyte.MixFromFile(*mixFile)
		} else {
			m, err = skybyte.MixByName(*mixName)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *record != "" {
			fmt.Fprintln(os.Stderr, "-record captures one workload's streams; record each tenant's workload separately")
			os.Exit(2)
		}
		analyzeMix(m, *n, *seed, *parallel)
		return
	}

	var w skybyte.Workload
	var err error
	switch {
	case *impSpec != "":
		// Analyse an import without recording it: the converted trace
		// registers as a workload and flows through the same summary.
		w, err = skybyte.ImportTrace(*impSpec)
	case *wfile != "":
		w, err = skybyte.WorkloadFromFile(*wfile)
	default:
		w, err = skybyte.WorkloadByName(*workload)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *record != "" {
		// Which cut flags were given explicitly matters for trace
		// re-recording: defaults mean "reproduce the source exactly".
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if err := recordTrace(w, *record, *nthreads, *n, *recInstr, *seed, *recVer, explicit); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var sums []summary
	if *nthreads > 1 {
		// Fan the independent streams across a bounded worker pool;
		// results print in thread order regardless of completion order.
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		sums = make([]summary, *nthreads)
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for t := 0; t < *nthreads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				sem <- struct{}{}
				sums[t] = analyze(w, t, *seed, *n, 0)
				<-sem
			}(t)
		}
		wg.Wait()
	} else {
		sums = []summary{analyze(w, *thread, *seed, *n, *dump)}
	}

	fmt.Printf("\nworkload %s (%s, paper footprint %.2fGB, paper MPKI %.1f)\n",
		w.Name, w.Suite, w.PaperFootprintGB, w.PaperMPKI)
	if *nthreads > 1 {
		fmt.Printf("%-8s %12s %12s %10s %8s\n", "thread", "instrs", "mem ops", "stores", "pages")
		for _, s := range sums {
			fmt.Printf("%-8d %12d %12d %10d %8d\n", s.thread, s.instrs, s.memOps(), s.kinds[trace.Store], len(s.pages))
		}
	}

	// Aggregate across the analysed streams.
	var (
		kinds     = map[trace.Kind]uint64{}
		instrs    uint64
		pages     = map[uint64]bool{}
		pageLines = map[uint64]uint64{}
	)
	for _, s := range sums {
		for k, v := range s.kinds {
			kinds[k] += v
		}
		instrs += s.instrs
		for p := range s.pages {
			pages[p] = true
		}
		for p, mask := range s.pageLines {
			pageLines[p] |= mask
		}
	}

	memOps := kinds[trace.Load] + kinds[trace.LoadDep] + kinds[trace.Store]
	fmt.Printf("instructions     %d (%d records/thread, %d threads)\n", instrs, *n, len(sums))
	fmt.Printf("memory ops       %d (%.1f per 100 instr)\n", memOps, 100*float64(memOps)/float64(instrs))
	totalLoads := kinds[trace.Load] + kinds[trace.LoadDep]
	depFrac := 0.0
	if totalLoads > 0 {
		depFrac = float64(kinds[trace.LoadDep]) / float64(totalLoads)
	}
	fmt.Printf("  loads          %d (%.1f%% dependent/pointer-chasing)\n", totalLoads, 100*depFrac)
	fmt.Printf("  stores         %d (write ratio %.1f%%, Table I: %.0f%%)\n",
		kinds[trace.Store], 100*float64(kinds[trace.Store])/float64(memOps), 100*w.WriteRatio)
	fmt.Printf("pages touched    %d of %d footprint (%s)\n", len(pages), w.FootprintPages, stats.FormatGB(w.FootprintBytes()))

	// Spatial sparsity: the Fig. 5/6 style line-usage distribution.
	var dist stats.Distribution
	for _, mask := range pageLines {
		dist.Add(float64(popcount(mask)) / float64(mem.LinesPerPage))
	}
	fmt.Printf("line usage/page  mean %.1f%% of 64 lines; %.0f%% of pages use <=25%% of lines\n",
		100*dist.Mean(), 100*dist.FractionAtOrBelow(0.25))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// analyzeMix summarises every tenant's streams of a multi-tenant mix:
// one aggregate row per tenant (its Threads streams at its thread
// count), so the interference study's inputs can be inspected before a
// simulation runs. Streams are analysed across a bounded worker pool;
// rows print in tenant order.
func analyzeMix(m skybyte.Mix, n int, seed uint64, parallel int) {
	workers := parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct{ tenant, thread int }
	var jobs []job
	specs := make([]skybyte.Workload, len(m.Tenants))
	for ti, td := range m.Tenants {
		w, err := skybyte.WorkloadByName(td.Workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs[ti] = w
		for k := 0; k < td.Threads; k++ {
			jobs = append(jobs, job{ti, k})
		}
	}
	sums := make([]summary, len(jobs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ji, j := range jobs {
		wg.Add(1)
		go func(ji int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			sums[ji] = analyze(specs[j.tenant], j.thread, seed, n, 0)
			<-sem
		}(ji, j)
	}
	wg.Wait()

	fmt.Printf("\nmix %s (%d tenants, %d threads, %d records/thread)\n",
		m.Name, len(m.Tenants), m.TotalThreads(), n)
	fmt.Printf("%-10s %-12s %8s %12s %12s %10s %8s %10s\n",
		"tenant", "workload", "threads", "instrs", "mem ops", "stores", "pages", "write%")
	cursor := 0
	for _, td := range m.Tenants {
		var instrs, memOps, stores uint64
		pages := map[uint64]bool{}
		for k := 0; k < td.Threads; k++ {
			s := sums[cursor]
			cursor++
			instrs += s.instrs
			memOps += s.memOps()
			stores += s.kinds[trace.Store]
			for p := range s.pages {
				pages[p] = true
			}
		}
		name := td.Name
		if name == "" {
			name = td.Workload
		}
		wr := 0.0
		if memOps > 0 {
			wr = float64(stores) / float64(memOps)
		}
		fmt.Printf("%-10s %-12s %8d %12d %12d %10d %8d %9.1f%%\n",
			name, td.Workload, td.Threads, instrs, memOps, stores, len(pages), 100*wr)
	}
}

// analyzeArrival summarises an open-loop arrival spec: each cohort's
// process parameters (rate, analytic CV, schedule shape) next to
// statistics measured from n sampled interarrival gaps of the cohort's
// first gate, so the traffic an open-loop run will offer can be
// inspected before any simulation.
func analyzeArrival(a skybyte.Arrival, n int, seed uint64) {
	if err := a.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := a.Resolve(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	threads, err := a.TotalThreads()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("\narrival %s (%d cohorts, %d threads, %d gaps sampled/cohort)\n",
		a.Name, len(a.Cohorts), threads, n)
	fmt.Printf("%-10s %-12s %8s %-8s %-14s %8s %10s %12s %12s %8s %8s\n",
		"cohort", "generator", "threads", "class", "process", "windows", "rps/thread", "mean gap", "sampled", "cv", "sampled")
	for _, c := range a.Cohorts {
		gen := c.Workload
		if c.Mix != "" {
			gen = "mix:" + c.Mix
		}
		proc := c.Process.Dist
		if c.Process.Shape != 0 {
			proc = fmt.Sprintf("%s(k=%g)", c.Process.Dist, c.Process.Shape)
		}
		g := arrival.NewGen(c.Process, c.Windows, 1, seed)
		var prev, sum, sumSq float64
		for i := 0; i < n; i++ {
			t := g.Next().Seconds()
			gap := t - prev
			prev = t
			sum += gap
			sumSq += gap * gap
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		cv := 0.0
		if mean > 0 && variance > 0 {
			cv = math.Sqrt(variance) / mean
		}
		eff := c.Process.Rate * arrival.MeanScale(c.Windows)
		fmt.Printf("%-10s %-12s %8d %-8s %-14s %8d %10.0f %12s %12s %8.2f %8.2f\n",
			c.Name, gen, c.Threads, c.Class, proc, len(c.Windows), eff,
			fmtSeconds(1/eff), fmtSeconds(mean), c.Process.CV(), cv)
	}
}

// fmtSeconds renders a duration given in seconds at µs resolution.
func fmtSeconds(s float64) string { return fmt.Sprintf("%.1fµs", s*1e6) }

// recordTrace captures nthreads deterministic streams and writes them
// in the versioned on-disk trace format. Streams are cut at maxRecords
// records, or — with a -record-instr budget — at exactly that many
// instructions per thread (the same trace.Limited clipping a
// simulation applies, so replaying the file at the same budget
// reproduces the run's Result bit for bit). Re-recording a trace-backed
// workload preserves the source metadata (including import
// provenance), and with -nthreads, -n, -record-instr, and
// -trace-version left at their defaults the source's thread count,
// cuts, and codec version are inherited too, so a plain re-record
// reproduces the source file bit for bit.
func recordTrace(w skybyte.Workload, path string, nthreads, maxRecords int, instrBudget, seed uint64, version int, explicit map[string]bool) error {
	tr := &trace.Trace{Meta: trace.Meta{
		Workload:       w.Name,
		Seed:           seed,
		FootprintPages: w.FootprintPages,
		WriteRatio:     w.WriteRatio,
		InstrPerThread: instrBudget,
	}}
	if w.Trace != nil {
		src := w.Trace.Data.TraceMeta()
		tr.Meta.Workload = src.Workload
		tr.Meta.Seed = src.Seed
		tr.Meta.Origin = src.Origin
		if !explicit["record-instr"] && !explicit["n"] {
			// No new cut at all: the source records pass through
			// verbatim (never truncate), so the source's recorded
			// budget still describes them. With an explicit -n the cut
			// is a record count and InstrPerThread correctly stays 0.
			tr.Meta.InstrPerThread = src.InstrPerThread
			maxRecords = math.MaxInt
		}
		if !explicit["nthreads"] {
			nthreads = w.Trace.Data.NumThreads()
		}
		if !explicit["trace-version"] && w.Trace.Data.FileVersion() != 0 {
			version = w.Trace.Data.FileVersion()
		}
	}
	for t := 0; t < nthreads; t++ {
		var st trace.Stream = w.Stream(t, seed)
		limit := maxRecords
		if instrBudget > 0 {
			st = &trace.Limited{Src: st, Budget: instrBudget}
			limit = math.MaxInt
		}
		tr.Threads = append(tr.Threads, trace.RecordStream(st, limit))
	}
	data, err := trace.EncodeTraceVersion(tr, version)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(path, data); err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d threads, %d records, %d bytes (%s)\n",
		path, len(tr.Threads), tr.Records(), len(data), trace.TraceDigest(data))
	fmt.Printf("replay with: skybyte-sim -workload-file %s\n", path)
	return nil
}

// recordImport converts an external trace (-import <format>:<path>)
// and writes the result as a .trc, provenance meta included. Records
// stream from the parser straight into the block writer, so importing
// a multi-gigabyte published trace needs memory for the encoded
// output, not for the record stream.
func recordImport(spec, out string, version int) error {
	format, src, err := traceimport.ParseSpec(spec)
	if err != nil {
		return err
	}
	enc, err := traceimport.ImportEncoded(format, src, version)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(out, enc.Data); err != nil {
		return err
	}
	o := enc.Meta.Origin
	fmt.Printf("imported %s %s: %d threads, %d records, %d pages touched\n",
		format, src, enc.Threads, enc.Records, enc.Meta.FootprintPages)
	fmt.Printf("recorded %s: %d bytes (%s; source sha256 %s)\n",
		out, len(enc.Data), trace.TraceDigest(enc.Data), o.SourceDigest[:16])
	fmt.Printf("replay with: skybyte-sim -workload-file %s\n", out)
	return nil
}

// writeFileAtomic writes data via a temp file and rename in the target
// directory — the internal/store convention — so a failed or
// interrupted record never leaves a stale partial .trc behind (a
// partial file would fail its checksum, but the loud failure belongs
// at record time, not at the next replay).
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "record-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	merr := tmp.Chmod(0o644)
	cerr := tmp.Close()
	if werr == nil && merr == nil && cerr == nil {
		if err := os.Rename(tmp.Name(), path); err == nil {
			return nil
		} else {
			werr = err
		}
	}
	os.Remove(tmp.Name())
	for _, e := range []error{werr, merr, cerr} {
		if e != nil {
			return fmt.Errorf("recording %s: %w", path, e)
		}
	}
	return nil
}
