// skybyte-trace inspects the synthetic workload generators that stand in
// for the paper's PIN traces: it prints a sample of records and summarises
// the stream's characteristics against Table I.
//
// Example:
//
//	skybyte-trace -workload bc -n 200000
//	skybyte-trace -workload radix -dump 30
package main

import (
	"flag"
	"fmt"
	"os"

	"skybyte"
	"skybyte/internal/mem"
	"skybyte/internal/stats"
	"skybyte/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "ycsb", "benchmark name")
		n        = flag.Int("n", 100000, "records to analyse")
		dump     = flag.Int("dump", 0, "records to print verbatim")
		thread   = flag.Int("thread", 0, "thread id")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	w, err := skybyte.WorkloadByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	st := w.Stream(*thread, *seed)

	var (
		kinds     = map[trace.Kind]uint64{}
		instrs    uint64
		pages     = map[uint64]bool{}
		pageLines = map[uint64]uint64{} // page -> line bitmask
		dumped    int
	)
	for i := 0; i < *n; i++ {
		r, ok := st.Next()
		if !ok {
			break
		}
		if dumped < *dump {
			fmt.Printf("%6d  %-8s", i, r.Kind)
			if r.Kind == trace.Compute {
				fmt.Printf("  n=%d\n", r.N)
			} else {
				fmt.Printf("  %#x (page %d, line %d)\n", uint64(r.Addr), r.Addr.PageNumber(), r.Addr.LineIndex())
			}
			dumped++
		}
		kinds[r.Kind]++
		instrs += r.Instructions()
		if r.Kind != trace.Compute {
			p := r.Addr.PageNumber()
			pages[p] = true
			pageLines[p] |= 1 << r.Addr.LineIndex()
		}
	}

	memOps := kinds[trace.Load] + kinds[trace.LoadDep] + kinds[trace.Store]
	fmt.Printf("\nworkload %s (%s, paper footprint %.2fGB, paper MPKI %.1f)\n",
		w.Name, w.Suite, w.PaperFootprintGB, w.PaperMPKI)
	fmt.Printf("instructions     %d (%d records)\n", instrs, *n)
	fmt.Printf("memory ops       %d (%.1f per 100 instr)\n", memOps, 100*float64(memOps)/float64(instrs))
	totalLoads := kinds[trace.Load] + kinds[trace.LoadDep]
	depFrac := 0.0
	if totalLoads > 0 {
		depFrac = float64(kinds[trace.LoadDep]) / float64(totalLoads)
	}
	fmt.Printf("  loads          %d (%.1f%% dependent/pointer-chasing)\n", totalLoads, 100*depFrac)
	fmt.Printf("  stores         %d (write ratio %.1f%%, Table I: %.0f%%)\n",
		kinds[trace.Store], 100*float64(kinds[trace.Store])/float64(memOps), 100*w.WriteRatio)
	fmt.Printf("pages touched    %d of %d footprint (%s)\n", len(pages), w.FootprintPages, stats.FormatGB(w.FootprintBytes()))

	// Spatial sparsity: the Fig. 5/6 style line-usage distribution.
	var dist stats.Distribution
	for _, mask := range pageLines {
		dist.Add(float64(popcount(mask)) / float64(mem.LinesPerPage))
	}
	fmt.Printf("line usage/page  mean %.1f%% of 64 lines; %.0f%% of pages use <=25%% of lines\n",
		100*dist.Mean(), 100*dist.FractionAtOrBelow(0.25))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
