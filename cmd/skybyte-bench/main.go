// skybyte-bench regenerates the paper's evaluation — every table and
// figure — the counterpart of the artifact's artifact_run.sh +
// artifact_draw_figs.sh pipeline.
//
// Examples:
//
//	skybyte-bench                      # everything, all cores, default budget
//	skybyte-bench -figure fig14        # just the headline comparison
//	skybyte-bench -parallel 1          # sequential (same bytes, slower)
//	skybyte-bench -workloads bc,ycsb -instr 200000
//	skybyte-bench -figure figext       # the extension scenarios (WORKLOADS.md)
//	skybyte-bench -figure figmix       # multi-tenant fairness/interference study
//	skybyte-bench -figure figmix -mix-file mix.json -mix my-mix
//	skybyte-bench -figure figopen      # open-loop traffic study (arrival processes)
//	skybyte-bench -figure figopen -arrival-file traffic.json -arrival my-traffic
//	skybyte-bench -figure figfleet     # cluster-scale fleet K-sweep (DESIGN.md §9)
//	skybyte-bench -figure figfleet -devices 1,4 -placement striped,hotcold
//	skybyte-bench -workload-file my.json          # file workload joins the campaign
//	skybyte-bench -workload-file my.json -workloads my-name -figure fig14
//	skybyte-bench -config              # print the Table II configurations
//
// With -cache-dir, executed design points persist in a
// content-addressed result store: a repeated invocation recalls them
// instead of re-simulating (zero simulations, identical bytes). The
// store also makes campaigns shardable across processes or machines:
//
//	skybyte-bench -cache-dir .cache -shard 0/2   # machine A
//	skybyte-bench -cache-dir .cache -shard 1/2   # machine B
//	skybyte-bench -cache-dir .cache -from-cache  # render, zero simulations
//
// -fingerprint prints the campaign's store identity (for external
// cache keys, e.g. CI's actions/cache).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"skybyte"
	"skybyte/internal/arrival"
	"skybyte/internal/experiments"
	"skybyte/internal/fleet"
	"skybyte/internal/runner"
	"skybyte/internal/stats"
	"skybyte/internal/system"
	"skybyte/internal/tenant"
	"skybyte/internal/workloads"
)

func main() {
	var wfiles []string
	flag.Func("workload-file", "load and register a workload file (JSON definition or recorded trace; repeatable); it joins the campaign unless -workloads selects a subset", func(path string) error {
		wfiles = append(wfiles, path)
		return nil
	})
	var imports []string
	flag.Func("import", "convert and register an external trace, <format>:<path> (champsim, damon, cachegrind; repeatable); it joins the campaign like a -workload-file", func(spec string) error {
		imports = append(imports, spec)
		return nil
	})
	var mixFiles []string
	flag.Func("mix-file", "load and register a multi-tenant mix file (JSON; repeatable); it joins the figmix mix set unless -mix selects a subset", func(path string) error {
		mixFiles = append(mixFiles, path)
		return nil
	})
	var arrFiles []string
	flag.Func("arrival-file", "load and register an open-loop arrival spec file (JSON; repeatable); it joins the figopen arrival set unless -arrival selects a subset", func(path string) error {
		arrFiles = append(arrFiles, path)
		return nil
	})
	var (
		mixCSV      = flag.String("mix", "", "comma-separated mix subset for the figmix fairness table (default: all built-in and -mix-file mixes)")
		devCSV      = flag.String("devices", "", "comma-separated device counts for the figfleet K-sweep (default: 1,2,4,8; each 1..16)")
		placeCSV    = flag.String("placement", "", "comma-separated placement-policy subset for the figfleet sweep (default: striped,capacity,hotcold)")
		arrCSV      = flag.String("arrival", "", "comma-separated arrival-spec subset for the figopen open-loop table (default: all built-in and -arrival-file specs)")
		tenantRows  = flag.Bool("tenant-rows", false, "extend figures 14/16/17 with per-tenant rows: each -mix runs co-located and every tenant contributes a mix/tenant row")
		telRows     = flag.Bool("telemetry", false, "time-resolved figopen: sample in-simulator probes during every open-loop run and report write-log occupancy and per-class windowed p99 per intensity window")
		figure      = flag.String("figure", "all", "experiment to run: all, "+strings.Join(experiments.IDs(), ", "))
		workloadCSV = flag.String("workloads", "", "comma-separated workload subset (default: all of Table I, plus any -workload-file)")
		instr       = flag.Uint64("instr", 0, "total instructions per run (default 384000)")
		parallel    = flag.Int("parallel", 0, "simulations in flight at once (0 = GOMAXPROCS, 1 = sequential; tables are identical either way)")
		progress    = flag.Bool("progress", false, "report batch progress as runs complete")
		verbose     = flag.Bool("v", false, "log each simulation as it completes")
		showCfg     = flag.Bool("config", false, "print the Table II configurations and exit")
		cacheDir    = flag.String("cache-dir", "", "persist results in a content-addressed store rooted here; cached design points are recalled, not re-simulated")
		shard       = flag.String("shard", "", "execute only slice i of n (format i/n, 0-based) of the campaign into -cache-dir; render later with -from-cache")
		fromCache   = flag.Bool("from-cache", false, "render exclusively from -cache-dir: a missing design point is an error, never a re-simulation")
		fingerprint = flag.Bool("fingerprint", false, "print the campaign's store fingerprint (config+seed identity) and exit")
	)
	flag.Parse()

	if *showCfg {
		printConfigs()
		return
	}

	// Register workload and mix files before anything resolves names or
	// computes spec keys: the runner's source-folded keys snapshot each
	// definition, which is what keeps a store warm across re-runs of the
	// same file and re-colds exactly the affected entries after an edit.
	var fileNames []string
	seenFile := map[string]string{}
	for _, path := range wfiles {
		w, err := workloads.RegisterFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Two files resolving to one name would silently replace each
		// other (traces from the same source all load as
		// "trace:<source>"): refuse, rather than run half the inputs.
		if prev, ok := seenFile[w.Name]; ok {
			fmt.Fprintf(os.Stderr, "workload files %s and %s both define %q; rename one (a definition's \"name\" field) or record traces from distinct sources\n", prev, path, w.Name)
			os.Exit(2)
		}
		seenFile[w.Name] = path
		fileNames = append(fileNames, w.Name)
	}
	for _, spec := range imports {
		w, err := skybyte.ImportTrace(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if prev, ok := seenFile[w.Name]; ok {
			fmt.Fprintf(os.Stderr, "workload inputs %s and %s both define %q; imports from the same source file collide\n", prev, spec, w.Name)
			os.Exit(2)
		}
		seenFile[w.Name] = spec
		fileNames = append(fileNames, w.Name)
	}
	seenMix := map[string]string{}
	for _, path := range mixFiles {
		m, err := tenant.RegisterFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if prev, ok := seenMix[m.Name]; ok {
			fmt.Fprintf(os.Stderr, "mix files %s and %s both define %q; rename one (the \"name\" field)\n", prev, path, m.Name)
			os.Exit(2)
		}
		seenMix[m.Name] = path
	}
	seenArr := map[string]string{}
	for _, path := range arrFiles {
		a, err := arrival.RegisterFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if prev, ok := seenArr[a.Name]; ok {
			fmt.Fprintf(os.Stderr, "arrival files %s and %s both define %q; rename one (the \"name\" field)\n", prev, path, a.Name)
			os.Exit(2)
		}
		seenArr[a.Name] = path
	}

	opt := experiments.DefaultOptions()
	if *instr > 0 {
		opt.TotalInstr = *instr
		opt.SweepInstr = *instr / 2
	}
	if *workloadCSV != "" {
		opt.Workloads = strings.Split(*workloadCSV, ",")
	} else {
		// File workloads join the default campaign: every figure runs
		// them next to the Table I seven.
		opt.Workloads = append(opt.Workloads, fileNames...)
	}
	if *mixCSV != "" {
		opt.Mixes = strings.Split(*mixCSV, ",")
	}
	if *arrCSV != "" {
		opt.Arrivals = strings.Split(*arrCSV, ",")
	}
	opt.TenantRows = *tenantRows
	opt.Telemetry = *telRows
	// The figfleet axes reject unknown values upfront listing the valid
	// set, like every other name flag: a typo must not leave a partially
	// executed campaign behind.
	if *devCSV != "" {
		opt.FleetDevices = nil
		for _, field := range strings.Split(*devCSV, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || k < 1 || k > fleet.MaxDevices {
				fmt.Fprintf(os.Stderr, "-devices: invalid device count %q (valid: 1..%d, comma-separated)\n", field, fleet.MaxDevices)
				os.Exit(2)
			}
			opt.FleetDevices = append(opt.FleetDevices, k)
		}
	}
	if *placeCSV != "" {
		opt.FleetPlacements = nil
		for _, field := range strings.Split(*placeCSV, ",") {
			p, err := fleet.ParsePolicy(strings.TrimSpace(field))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			opt.FleetPlacements = append(opt.FleetPlacements, string(p))
		}
	}
	// Validate every workload, mix, and figure name before any
	// simulation runs: a typo must not leave a partially executed
	// campaign behind.
	for _, name := range opt.Workloads {
		if _, err := workloads.ByName(name); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	for _, name := range opt.Mixes {
		if _, err := tenant.ByName(name); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	// Arrivals defaults to the full registry inside the harness; resolve
	// the effective set here either way — an arrival spec naming an
	// unknown cohort workload or mix must fail now, listing the valid
	// set, before any simulation runs.
	arrSet := opt.Arrivals
	if len(arrSet) == 0 {
		arrSet = arrival.Names()
	}
	for _, name := range arrSet {
		a, err := arrival.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := a.Resolve(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *figure != "all" && !validFigure(*figure) {
		fmt.Fprintf(os.Stderr, "unknown figure %q; one of: all %s\n", *figure, strings.Join(experiments.IDs(), " "))
		os.Exit(2)
	}
	opt.Parallelism = *parallel

	if *fingerprint {
		fmt.Println(skybyte.CampaignFingerprint(opt))
		return
	}

	opt.CacheDir = *cacheDir
	opt.FromCache = *fromCache
	if opt.FromCache && opt.CacheDir == "" {
		fmt.Fprintln(os.Stderr, "-from-cache requires -cache-dir")
		os.Exit(2)
	}
	if *shard != "" {
		if opt.CacheDir == "" {
			fmt.Fprintln(os.Stderr, "-shard requires -cache-dir (an unpersisted shard is wasted work)")
			os.Exit(2)
		}
		if opt.FromCache {
			fmt.Fprintln(os.Stderr, "-shard executes, -from-cache renders; use one at a time")
			os.Exit(2)
		}
		if *figure != "all" {
			fmt.Fprintln(os.Stderr, "-shard slices the full campaign; it cannot be combined with -figure")
			os.Exit(2)
		}
		var err error
		if opt.Shard, opt.ShardCount, err = runner.ParseShard(*shard); err != nil {
			fmt.Fprintf(os.Stderr, "-shard: %v\n", err)
			os.Exit(2)
		}
	}
	if opt.CacheDir != "" {
		if err := os.MkdirAll(opt.CacheDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cannot create -cache-dir: %v\n", err)
			os.Exit(1)
		}
	}

	if *progress {
		opt.Progress = func(done, total int, key string) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", done, total, key)
		}
	}
	h := experiments.NewHarness(opt)
	if *verbose {
		h.Verbose = func(key string, r *system.Result) {
			fmt.Fprintf(os.Stderr, "  ran %-60s exec=%v\n", key, r.ExecTime)
		}
	}

	start := time.Now()
	switch {
	case *shard != "":
		// Verbose fires once per actual simulation (store recalls are
		// silent), so the count distinguishes real work from a warm
		// no-op re-run of the shard.
		var sims atomic.Int64
		userVerbose := h.Verbose
		h.Verbose = func(key string, r *system.Result) {
			sims.Add(1)
			if userVerbose != nil {
				userVerbose(key, r)
			}
		}
		processed, total, err := h.RunShard(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("shard %d/%d: %d of %d design points into %s (%d simulated, %d recalled)\n",
			opt.Shard, opt.ShardCount, processed, total, opt.CacheDir, sims.Load(), int64(processed)-sims.Load())
	case *figure == "all":
		tables, err := h.AllErr(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
	default:
		tab, err := h.Render(context.Background(), *figure)
		if err != nil {
			// The id was validated upfront, so this is a runtime failure
			// (e.g. a store miss under -from-cache), not a usage error.
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(tab.String())
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "completed in %v (%d workers)\n", time.Since(start).Round(time.Millisecond), workers)
}

func validFigure(id string) bool {
	for _, known := range experiments.IDs() {
		if id == known {
			return true
		}
	}
	return false
}

func printConfigs() {
	for _, c := range []struct {
		name string
		cfg  skybyte.Config
	}{{"ScaledConfig (1/64, used by benches)", skybyte.ScaledConfig()}, {"PaperConfig (Table II verbatim)", skybyte.PaperConfig()}} {
		cfg := c.cfg
		fmt.Printf("%s:\n", c.name)
		fmt.Printf("  CPU        %d cores, %d-entry ROB, %d MSHRs; L1 %s/%dw L2 %s/%dw LLC %s/%dw\n",
			cfg.Cores, cfg.CPU.ROB, cfg.CPU.MLP,
			stats.FormatGB(uint64(cfg.L1Bytes)), cfg.L1Ways,
			stats.FormatGB(uint64(cfg.L2Bytes)), cfg.L2Ways,
			stats.FormatGB(uint64(cfg.LLCBytes)), cfg.LLCWays)
		fmt.Printf("  flash      %s (%d ch x %d chips x %d dies x %d blk x %d pg), tR=%v tProg=%v tBERS=%v\n",
			stats.FormatGB(cfg.Geometry.Bytes()), cfg.Geometry.Channels, cfg.Geometry.ChipsPerChan,
			cfg.Geometry.DiesPerChip, cfg.Geometry.BlocksPerPlane, cfg.Geometry.PagesPerBlock,
			cfg.Timing.Read, cfg.Timing.Program, cfg.Timing.Erase)
		fmt.Printf("  SSD DRAM   %s total (write log %s); host promotion budget %s\n",
			stats.FormatGB(uint64(cfg.SSDDRAMBytes)), stats.FormatGB(uint64(cfg.WriteLogBytes)),
			stats.FormatGB(uint64(cfg.PromotedMaxBytes)))
		fmt.Printf("  OS         policy %s, switch cost %v, trigger threshold %v\n\n",
			cfg.Policy, cfg.CtxSwitchCost, cfg.HintThreshold)
	}
}
