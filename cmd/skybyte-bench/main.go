// skybyte-bench regenerates the paper's evaluation — every table and
// figure — the counterpart of the artifact's artifact_run.sh +
// artifact_draw_figs.sh pipeline.
//
// Examples:
//
//	skybyte-bench                      # everything, all cores, default budget
//	skybyte-bench -figure fig14        # just the headline comparison
//	skybyte-bench -parallel 1          # sequential (same bytes, slower)
//	skybyte-bench -workloads bc,ycsb -instr 200000
//	skybyte-bench -config              # print the Table II configurations
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"skybyte"
	"skybyte/internal/experiments"
	"skybyte/internal/stats"
	"skybyte/internal/system"
)

func main() {
	var (
		figure    = flag.String("figure", "all", "experiment to run: all, table1, fig02..fig23, table3, cost, writelog")
		workloads = flag.String("workloads", "", "comma-separated benchmark subset (default: all of Table I)")
		instr     = flag.Uint64("instr", 0, "total instructions per run (default 384000)")
		parallel  = flag.Int("parallel", 0, "simulations in flight at once (0 = GOMAXPROCS, 1 = sequential; tables are identical either way)")
		progress  = flag.Bool("progress", false, "report batch progress as runs complete")
		verbose   = flag.Bool("v", false, "log each simulation as it completes")
		showCfg   = flag.Bool("config", false, "print the Table II configurations and exit")
	)
	flag.Parse()

	if *showCfg {
		printConfigs()
		return
	}

	opt := experiments.DefaultOptions()
	if *instr > 0 {
		opt.TotalInstr = *instr
		opt.SweepInstr = *instr / 2
	}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}
	opt.Parallelism = *parallel
	if *progress {
		opt.Progress = func(done, total int, key string) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", done, total, key)
		}
	}
	h := experiments.NewHarness(opt)
	if *verbose {
		h.Verbose = func(key string, r *system.Result) {
			fmt.Fprintf(os.Stderr, "  ran %-60s exec=%v\n", key, r.ExecTime)
		}
	}

	run := map[string]func() experiments.Table{
		"table1": h.Table1, "fig02": h.Fig02, "fig03": h.Fig03, "fig04": h.Fig04,
		"fig05": h.Fig05, "fig06": h.Fig06, "fig09": h.Fig09, "fig10": h.Fig10,
		"fig14": h.Fig14, "fig15": h.Fig15, "fig16": h.Fig16, "fig17": h.Fig17,
		"fig18": h.Fig18, "fig19": h.Fig19, "fig20": h.Fig20, "fig21": h.Fig21,
		"fig22": h.Fig22, "fig23": h.Fig23, "table3": h.Table3,
		"cost": h.CostEffectiveness, "writelog": h.WriteLogStats,
	}

	start := time.Now()
	if *figure == "all" {
		h.WriteAll(os.Stdout)
	} else {
		f, ok := run[*figure]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; one of: all table1 fig02 fig03 fig04 fig05 fig06 fig09 fig10 fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21 fig22 fig23 table3 cost writelog\n", *figure)
			os.Exit(2)
		}
		fmt.Println(f().String())
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "completed in %v (%d workers)\n", time.Since(start).Round(time.Millisecond), workers)
}

func printConfigs() {
	for _, c := range []struct {
		name string
		cfg  skybyte.Config
	}{{"ScaledConfig (1/64, used by benches)", skybyte.ScaledConfig()}, {"PaperConfig (Table II verbatim)", skybyte.PaperConfig()}} {
		cfg := c.cfg
		fmt.Printf("%s:\n", c.name)
		fmt.Printf("  CPU        %d cores, %d-entry ROB, %d MSHRs; L1 %s/%dw L2 %s/%dw LLC %s/%dw\n",
			cfg.Cores, cfg.CPU.ROB, cfg.CPU.MLP,
			stats.FormatGB(uint64(cfg.L1Bytes)), cfg.L1Ways,
			stats.FormatGB(uint64(cfg.L2Bytes)), cfg.L2Ways,
			stats.FormatGB(uint64(cfg.LLCBytes)), cfg.LLCWays)
		fmt.Printf("  flash      %s (%d ch x %d chips x %d dies x %d blk x %d pg), tR=%v tProg=%v tBERS=%v\n",
			stats.FormatGB(cfg.Geometry.Bytes()), cfg.Geometry.Channels, cfg.Geometry.ChipsPerChan,
			cfg.Geometry.DiesPerChip, cfg.Geometry.BlocksPerPlane, cfg.Geometry.PagesPerBlock,
			cfg.Timing.Read, cfg.Timing.Program, cfg.Timing.Erase)
		fmt.Printf("  SSD DRAM   %s total (write log %s); host promotion budget %s\n",
			stats.FormatGB(uint64(cfg.SSDDRAMBytes)), stats.FormatGB(uint64(cfg.WriteLogBytes)),
			stats.FormatGB(uint64(cfg.PromotedMaxBytes)))
		fmt.Printf("  OS         policy %s, switch cost %v, trigger threshold %v\n\n",
			cfg.Policy, cfg.CtxSwitchCost, cfg.HintThreshold)
	}
}
