// Command benchgate is the CI perf-regression gate. It runs the two
// gated throughput benchmarks (BenchmarkSimulatorThroughput and
// BenchmarkCampaignThroughput/store=cold) -count times via `go test`,
// aggregates each (min ns/op — shared-host noise only adds time — and
// median allocs/op), and compares against the pinned snapshot
// (BENCH_7.json by default):
//
//   - allocs/op gates strictly: allocation counts are deterministic
//     and hardware-independent, so anything beyond a small growth
//     allowance fails — this is the portable half of the gate (the
//     TestColdRunAllocsBudget test pins the same property in-process).
//   - ns/op gates through calibration: the snapshot records how long a
//     fixed pointer-chase kernel took on the recording machine, the
//     gate re-times that kernel locally, and the baseline ns/op is
//     scaled by the ratio before the tolerance band applies. The band
//     (default 1.15x) is sized so benchmark noise passes and an
//     injected >=20% slowdown fails on comparable hardware.
//
// Run from the module root (the subprocess `go test` resolves the
// package in the working directory). Refresh the snapshot after an
// intentional perf change with:
//
//	go run ./cmd/benchgate -update
//
// and commit the rewritten baseline alongside the change.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchPatterns selects exactly the gated benchmarks, one `go test`
// invocation each: -bench matches per slash-separated level, and a
// parent benchmark given a sub-level pattern is only enumerated, not
// timed — so a combined pattern would silently drop the sub-bench-free
// SimulatorThroughput.
var benchPatterns = []string{
	"^BenchmarkSimulatorThroughput$",
	"^BenchmarkCampaignThroughput$/^store=cold$",
}

// Baseline is the checked-in snapshot benchgate compares against.
type Baseline struct {
	// Go records the toolchain that took the snapshot (informational).
	Go string `json:"go"`
	// CalibrationNs is how long the calibration kernel took on the
	// recording machine; the local/recorded ratio rescales every ns/op
	// bound before the tolerance band applies.
	CalibrationNs float64 `json:"calibration_ns"`
	// Tolerance is the ns/op band: measured > baseline*scale*Tolerance
	// fails. AllocTolerance is the (much tighter) allocs/op band.
	Tolerance      float64 `json:"tolerance"`
	AllocTolerance float64 `json:"alloc_tolerance"`
	// Count and Benchtime record how the snapshot was taken, so a
	// refresh measures the same way by default.
	Count     int    `json:"count"`
	Benchtime string `json:"benchtime"`

	Benchmarks map[string]Bench `json:"benchmarks"`
}

// Bench is one benchmark's pinned measurements.
type Bench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_7.json", "pinned benchmark snapshot to gate against (or rewrite with -update)")
		update       = flag.Bool("update", false, "re-measure and rewrite -baseline instead of gating")
		count        = flag.Int("count", 0, "benchmark repetitions to aggregate over (0 = the snapshot's count, 5 for a fresh snapshot)")
		benchtime    = flag.String("benchtime", "", "per-repetition -benchtime (empty = the snapshot's, 3x for a fresh snapshot)")
		tolerance    = flag.Float64("tolerance", 0, "override the snapshot's ns/op tolerance band (0 = use the snapshot's)")
	)
	flag.Parse()

	prior, priorErr := readBaseline(*baselinePath)
	if !*update && priorErr != nil {
		fatalf("cannot gate: %v (generate the snapshot with -update)", priorErr)
	}

	n, bt := *count, *benchtime
	if n == 0 {
		if prior != nil && prior.Count > 0 {
			n = prior.Count
		} else {
			n = 5
		}
	}
	if bt == "" {
		if prior != nil && prior.Benchtime != "" {
			bt = prior.Benchtime
		} else {
			bt = "3x"
		}
	}

	fmt.Printf("benchgate: running %s, -count=%d -benchtime=%s\n", strings.Join(benchPatterns, " + "), n, bt)
	measured, err := runBenchmarks(n, bt)
	if err != nil {
		fatalf("%v", err)
	}
	cal := calibrate()
	fmt.Printf("benchgate: calibration kernel %.1fms locally\n", cal/1e6)

	if *update {
		b := &Baseline{
			Go:             runtime.Version(),
			CalibrationNs:  cal,
			Tolerance:      1.15,
			AllocTolerance: 1.10,
			Count:          n,
			Benchtime:      bt,
			Benchmarks:     measured,
		}
		if prior != nil {
			b.Tolerance = prior.Tolerance
			b.AllocTolerance = prior.AllocTolerance
		}
		if err := writeBaseline(*baselinePath, b); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks, calibration %.1fms)\n", *baselinePath, len(measured), cal/1e6)
		return
	}

	tol := prior.Tolerance
	if *tolerance > 0 {
		tol = *tolerance
	}
	scale := cal / prior.CalibrationNs
	fmt.Printf("benchgate: machine scale %.3f vs snapshot (%s), ns/op band %.2fx, allocs/op band %.2fx\n\n",
		scale, prior.Go, tol, prior.AllocTolerance)

	names := make([]string, 0, len(prior.Benchmarks))
	for name := range prior.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		base := prior.Benchmarks[name]
		got, ok := measured[name]
		if !ok {
			failed = true
			fmt.Printf("FAIL  %s: pinned in %s but not measured (renamed or deleted?)\n", name, *baselinePath)
			continue
		}
		scaledNs := base.NsPerOp * scale
		nsRatio := got.NsPerOp / scaledNs
		allocRatio := got.AllocsPerOp / base.AllocsPerOp
		verdict := "ok  "
		if nsRatio > tol || allocRatio > prior.AllocTolerance {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %s\n", verdict, name)
		fmt.Printf("      time:   %s measured vs %s scaled baseline (%s pinned x %.3f) -> %+.1f%% (limit %+.0f%%)\n",
			ms(got.NsPerOp), ms(scaledNs), ms(base.NsPerOp), scale, 100*(nsRatio-1), 100*(tol-1))
		fmt.Printf("      allocs: %.0f/op measured vs %.0f/op pinned -> %+.1f%% (limit %+.0f%%)\n",
			got.AllocsPerOp, base.AllocsPerOp, 100*(allocRatio-1), 100*(prior.AllocTolerance-1))
	}
	if failed {
		fmt.Printf("\nbenchgate: FAIL — if the regression is intentional, refresh with `go run ./cmd/benchgate -update` and commit %s\n", *baselinePath)
		os.Exit(1)
	}
	fmt.Println("\nbenchgate: PASS")
}

// runBenchmarks executes the gated benchmarks as `go test`
// subprocesses and returns the min ns/op and median allocs/op per
// benchmark (GOMAXPROCS suffix stripped).
func runBenchmarks(count int, benchtime string) (map[string]Bench, error) {
	var out bytes.Buffer
	for _, pattern := range benchPatterns {
		cmd := exec.Command("go", "test", "-run=^$",
			"-bench="+pattern, "-benchtime="+benchtime,
			fmt.Sprintf("-count=%d", count), ".")
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("benchgate: go test -bench=%s: %w\n%s", pattern, err, out.String())
		}
	}
	ns := map[string][]float64{}
	allocs := map[string][]float64{}
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				ns[name] = append(ns[name], v)
			case "allocs/op":
				allocs[name] = append(allocs[name], v)
			}
		}
	}
	got := map[string]Bench{}
	for name, samples := range ns {
		got[name] = Bench{NsPerOp: minOf(samples), AllocsPerOp: median(allocs[name])}
	}
	if len(got) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark lines in go test output:\n%s", out.String())
	}
	return got, nil
}

// minOf aggregates ns/op samples: noise on a shared host only ever
// adds time, so the minimum over repetitions estimates the machine's
// true cost far more stably than the median (allocs/op, which is
// deterministic up to map-growth timing, still uses the median).
func minOf(s []float64) float64 {
	best := math.MaxFloat64
	for _, v := range s {
		if v < best {
			best = v
		}
	}
	return best
}

func median(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	c := append([]float64(nil), s...)
	sort.Float64s(c)
	return c[len(c)/2]
}

// calSink defeats dead-code elimination of the calibration kernel.
var calSink uint64

// calibrate times a fixed single-threaded kernel — a dependent
// pointer-chase over a 256 KiB ring interleaved with xorshift
// arithmetic — and returns the best of five runs in nanoseconds. The
// ratio of this number across two machines rescales the pinned ns/op
// bounds, which is what lets one snapshot gate on heterogeneous
// hardware. The working set deliberately stays cache-resident: a
// DRAM-sized chase measures the moment's memory-bus contention more
// than the machine, and on shared CI hosts that ratio swings 2x
// between invocations; a cache-resident kernel tracks the stable part
// (clock speed, IPC, CPU steal) and leaves the rest to the tolerance
// band.
func calibrate() float64 {
	const n = 1 << 15 // 256 KiB of uint64: L2-resident on anything CI uses
	buf := make([]uint64, n)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = x
	}
	best := math.MaxFloat64
	for trial := 0; trial < 5; trial++ {
		start := time.Now()
		var idx, acc uint64
		for i := 0; i < 512*n; i++ {
			idx = buf[idx&(n-1)] + uint64(i)
			acc ^= idx
			acc ^= acc << 13
			acc ^= acc >> 7
		}
		calSink += acc
		if el := float64(time.Since(start).Nanoseconds()); el < best {
			best = el
		}
	}
	return best
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if b.CalibrationNs <= 0 || b.Tolerance <= 1 || b.AllocTolerance <= 1 || len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: %s: incomplete snapshot (need calibration_ns, tolerance bands > 1, and benchmarks)", path)
	}
	return &b, nil
}

func writeBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func ms(ns float64) string {
	return fmt.Sprintf("%.1fms", ns/1e6)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
