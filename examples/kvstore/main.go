// kvstore: a key-value-store capacity-planning study on a CXL-SSD.
//
// The scenario the paper's introduction motivates: a zipfian KV cache
// (YCSB-B) whose working set has outgrown DRAM. This example sweeps the
// SkyByte design space on that workload — which mechanism buys what — and
// inspects the write log's behaviour (the §III-B claims: coalescing, index
// footprint, compaction time).
package main

import (
	"fmt"
	"log"

	"skybyte"
)

func main() {
	w, err := skybyte.WorkloadByName("ycsb")
	if err != nil {
		log.Fatal(err)
	}
	cfg := skybyte.ScaledConfig()
	const totalInstr = 192_000

	fmt.Printf("YCSB-B on a CXL-SSD: %d pages of records, zipfian keys\n\n", w.FootprintPages)
	fmt.Printf("%-15s %-10s %-9s %-8s %-9s %-10s\n", "design", "exec", "AMAT", "hit%", "programs", "switches")

	var baseline *skybyte.Result
	for _, v := range skybyte.Variants() {
		threads := 8
		c := cfg.WithVariant(v)
		if c.CtxSwitchEnabled {
			threads = 24
		}
		r := skybyte.Run(c, w, threads, totalInstr/uint64(threads), 7)
		if v == skybyte.BaseCSSD {
			baseline = r
		}
		hits := r.CacheStats.Hits
		hitPct := 0.0
		if tot := hits + r.CacheStats.Misses; tot > 0 {
			hitPct = 100 * float64(hits) / float64(tot)
		}
		fmt.Printf("%-15s %-10v %-9v %-8.1f %-9d %-10d\n",
			v, r.ExecTime, r.AMAT.Mean(), hitPct, r.Traffic.TotalPrograms(), r.CtxSwitches)
	}

	// Write-log anatomy on the full design.
	full := skybyte.Run(cfg.WithVariant(skybyte.SkyByteFull), w, 24, totalInstr/24, 7)
	fmt.Printf("\nwrite log (%d KB total, double-buffered):\n", cfg.WriteLogBytes/1024)
	fmt.Printf("  lines absorbed      %d\n", full.Traffic.LinesAbsorbed)
	fmt.Printf("  compactions         %d (mean %v)\n", full.Compaction.Count, full.Compaction.Mean())
	fmt.Printf("  pages flushed       %d (coalescing %.1f lines/page)\n",
		full.Compaction.Pages, float64(full.Traffic.LinesCoalesced)/float64(max64(full.Compaction.Pages, 1)))
	fmt.Printf("  peak index footprint %d bytes (paper: ~5.6MB avg on a 64MB log)\n", full.LogIndexPeak)
	if baseline != nil {
		fmt.Printf("\nheadline: SkyByte-Full is %.2fx faster than Base-CSSD on this KV store\n", full.Speedup(baseline))
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
