// graphrank: graph analytics on memory larger than DRAM.
//
// Graph traversals are pointer chases — memory-level parallelism cannot
// hide a µs-scale flash miss behind a dependent load, which is exactly the
// case the paper's coordinated context switch targets. This example runs
// betweenness-centrality (bc) and dense BFS, scaling the thread count the
// way Fig. 15 does, and shows throughput and SSD bandwidth climbing with
// oversubscription.
package main

import (
	"fmt"
	"log"

	"skybyte"
)

func main() {
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
	const totalInstr = 192_000

	for _, name := range []string{"bc", "bfs-dense"} {
		w, err := skybyte.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s suite, %d-page graph):\n", w.Name, w.Suite, w.FootprintPages)
		fmt.Printf("  %-8s %-12s %-12s %-12s %-10s\n", "threads", "exec", "throughput", "bandwidth", "switches")
		var base float64
		for _, threads := range []int{8, 16, 24, 32} {
			r := skybyte.Run(cfg, w, threads, totalInstr/uint64(threads), 3)
			if threads == 8 {
				base = r.IPS()
			}
			fmt.Printf("  %-8d %-12v %-12s %-12s %-10d\n",
				threads, r.ExecTime,
				fmt.Sprintf("%.2fx", r.IPS()/base),
				fmt.Sprintf("%.2fGB/s", r.SSDBandwidthBps/1e9),
				r.HintSwitches)
		}
		fmt.Println()
	}
	fmt.Println("throughput scales with threads because SkyByte-Delay exceptions let")
	fmt.Println("blocked threads yield instead of stalling the core on flash reads (§VI-C).")
}
