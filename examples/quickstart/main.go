// Quickstart: run one workload on the baseline CXL-SSD and on SkyByte-Full
// and compare — the 30-second tour of the library.
package main

import (
	"fmt"
	"log"

	"skybyte"
)

func main() {
	workload, err := skybyte.WorkloadByName("ycsb")
	if err != nil {
		log.Fatal(err)
	}

	// The scaled machine: 1/64 of the paper's Table II capacities with
	// identical ratios (2 GB flash, 8 MB SSD DRAM, 8 cores).
	base := skybyte.ScaledConfig()

	// Baseline: a state-of-the-art CXL-SSD (page-granular RMW cache with
	// prefetching), 8 threads on 8 cores — stalling on every flash miss.
	baseline := skybyte.Run(base.WithVariant(skybyte.BaseCSSD), workload, 8, 24_000, 1)

	// SkyByte-Full: write log + adaptive migration + coordinated context
	// switch, 24 threads on the same 8 cores (the paper's §VI-A setup).
	full := skybyte.Run(base.WithVariant(skybyte.SkyByteFull), workload, 24, 8_000, 1)

	fmt.Printf("workload: %s (%d pages footprint)\n\n", workload.Name, workload.FootprintPages)
	fmt.Printf("%-14s exec %-10v AMAT %-9v memory-bound %4.1f%%\n",
		"Base-CSSD:", baseline.ExecTime, baseline.AMAT.Mean(), 100*baseline.Bound.MemFrac())
	fmt.Printf("%-14s exec %-10v AMAT %-9v memory-bound %4.1f%%  (%d hint-triggered switches)\n",
		"SkyByte-Full:", full.ExecTime, full.AMAT.Mean(), 100*full.Bound.MemFrac(), full.HintSwitches)
	fmt.Printf("\nspeedup: %.2fx (same total work)\n", full.Speedup(baseline))
}
