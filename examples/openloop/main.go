// Openloop: drive the simulated CXL-SSD machine with arrival-paced
// traffic instead of closed-loop replay — a latency-sensitive frontend
// cohort beside a bursty batch-report cohort — and read the per-class
// tail latencies as the two designs absorb the same offered load.
//
// The traffic is a JSON arrival spec (spec.json, schema in
// WORKLOADS.md): cohorts are data, not code. Each cohort's threads
// replay their workload as fixed-size requests released at sampled
// arrival instants (Poisson here for the frontend; a gamma process
// with a cyclic burst schedule for the reports), and the run's Result
// carries an OpenLoop section with per-SLO-class percentiles, goodput
// vs offered load, and queue-delay attribution.
//
// The JSON ships embedded so the example runs from any directory; in
// real use, point skybyte.ArrivalFromFile (or any CLI's -arrival-file
// flag) at a file on disk.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"skybyte"
)

//go:embed spec.json
var specJSON []byte

func main() {
	dir, err := os.MkdirTemp("", "skybyte-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, specJSON, 0o644); err != nil {
		log.Fatal(err)
	}

	// Loading registers the spec: it now resolves by name in
	// ArrivalByName, the figopen experiment's sweep set, and the CLIs'
	// -arrival flags.
	arr, err := skybyte.ArrivalFromFile(path)
	if err != nil {
		log.Fatal(err)
	}
	threads, err := arr.TotalThreads()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arrival %q: %d cohorts, %d threads\n\n", arr.Name, len(arr.Cohorts), threads)

	const totalInstr, seed = 144_000, 1

	// The same offered load against the baseline and the full design:
	// under pressure, the coordinated context switch converts time
	// blocked on flash into other cohorts' service time, and the tails
	// separate.
	for _, variant := range []skybyte.Variant{skybyte.BaseCSSD, skybyte.SkyByteFull} {
		cfg := skybyte.ScaledConfig().WithVariant(variant)
		res, err := skybyte.RunArrival(cfg, arr, totalInstr, seed, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (exec %v)\n", variant, res.ExecTime)
		fmt.Printf("  %-9s %11s %11s %10s %10s %10s %12s\n",
			"class", "offered", "goodput", "p50", "p99", "p99.9", "mean qdelay")
		for _, cl := range res.OpenLoop.Classes {
			fmt.Printf("  %-9s %9.0f/s %9.0f/s %10v %10v %10v %12v\n",
				cl.Name, cl.OfferedRPS, cl.Stats.GoodputRPS(),
				cl.Stats.Latency.Percentile(50), cl.Stats.Latency.Percentile(99),
				cl.Stats.Latency.Percentile(99.9), cl.Stats.QueueDelay.Mean())
		}
		fmt.Printf("  total: %d admitted, %d completed\n\n",
			res.OpenLoop.Total.Admitted, res.OpenLoop.Total.Completed)
	}

	// The same study, campaign-style: skybyte-bench -figure figopen
	// sweeps offered intensity x design points for every known arrival
	// spec, with results persisting in the -cache-dir store.
}
