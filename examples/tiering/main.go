// tiering: is a memory-semantic SSD worth it? The §VI-B cost argument.
//
// This example compares an all-DRAM machine against CXL-SSD designs on a
// transactional workload (tpcc), sweeps the SSD DRAM size (Fig. 21's
// question: how much controller DRAM do you actually need?), and computes
// the paper's cost-effectiveness metric with its quoted 2024 prices.
package main

import (
	"fmt"
	"log"

	"skybyte"
)

const (
	dramPerGB = 4.28 // paper: DDR5 street price, summer 2024
	ssdPerGB  = 0.27 // paper: ULL SSD street price, summer 2024
)

func main() {
	w, err := skybyte.WorkloadByName("tpcc")
	if err != nil {
		log.Fatal(err)
	}
	const totalInstr = 192_000

	dram := skybyte.Run(skybyte.ScaledConfig().WithVariant(skybyte.DRAMOnly), w, 8, totalInstr/8, 5)
	full := skybyte.Run(skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull), w, 24, totalInstr/24, 5)

	perf := float64(dram.ExecTime) / float64(full.ExecTime)
	costRatio := dramPerGB / ssdPerGB
	fmt.Printf("tpcc: SkyByte-Full reaches %.0f%% of all-DRAM performance\n", 100*perf)
	fmt.Printf("capacity cost ratio DRAM:SSD = %.1fx  =>  perf/$ advantage %.1fx\n", costRatio, perf*costRatio)
	fmt.Printf("(paper: 75%% of ideal, 15.9x cheaper, 11.8x better cost-effectiveness)\n\n")

	fmt.Println("SSD DRAM sizing (exec time, SkyByte-Full vs Base-CSSD):")
	fmt.Printf("  %-10s %-14s %-14s\n", "SSD DRAM", "Base-CSSD", "SkyByte-Full")
	for _, mb := range []int{2, 4, 8, 16} {
		resize := func(c skybyte.Config) skybyte.Config {
			c.SSDDRAMBytes = mb << 20
			c.WriteLogBytes = c.SSDDRAMBytes / 8
			c.PromotedMaxBytes = 4 * c.SSDDRAMBytes
			return c
		}
		b := skybyte.Run(resize(skybyte.ScaledConfig().WithVariant(skybyte.BaseCSSD)), w, 8, totalInstr/8, 5)
		f := skybyte.Run(resize(skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)), w, 24, totalInstr/24, 5)
		fmt.Printf("  %-10s %-14v %-14v\n", fmt.Sprintf("%dMB", mb), b.ExecTime, f.ExecTime)
	}
	fmt.Println("\nSkyByte's cacheline-granular log makes a small SSD DRAM behave like a")
	fmt.Println("much larger page cache (§VI-F), cutting device cost further.")
}
