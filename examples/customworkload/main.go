// Customworkload: define a brand-new scenario in a JSON file — no Go
// code — and run it across design points. The definition (a zipfian
// session store with an audit log, see workload.json) composes the
// declarative primitives documented in WORKLOADS.md: regions carve the
// footprint, weighted phases mix lookups, updates, and scans, and each
// op picks an access kernel (sequential, stride, uniform, zipf) over
// its region.
//
// The JSON ships embedded so the example runs from any directory; in
// real use, point skybyte.WorkloadFromFile (or any CLI's
// -workload-file flag) at a file on disk.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"skybyte"
)

//go:embed workload.json
var workloadJSON []byte

func main() {
	dir, err := os.MkdirTemp("", "skybyte-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "workload.json")
	if err := os.WriteFile(path, workloadJSON, 0o644); err != nil {
		log.Fatal(err)
	}

	// Loading registers the workload: it now resolves by name in
	// WorkloadByName, campaign Options.Workloads, and the CLIs.
	w, err := skybyte.WorkloadFromFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %q (%s): %d pages, declared write ratio %.0f%%\n\n",
		w.Name, w.Suite, w.FootprintPages, 100*w.WriteRatio)

	base := skybyte.ScaledConfig()
	baseline := skybyte.Run(base.WithVariant(skybyte.BaseCSSD), w, 8, 24_000, 1)
	full := skybyte.Run(base.WithVariant(skybyte.SkyByteFull), w, 24, 8_000, 1)

	fmt.Printf("%-14s exec %-10v AMAT %-9v memory-bound %4.1f%%\n",
		"Base-CSSD:", baseline.ExecTime, baseline.AMAT.Mean(), 100*baseline.Bound.MemFrac())
	fmt.Printf("%-14s exec %-10v AMAT %-9v memory-bound %4.1f%%\n",
		"SkyByte-Full:", full.ExecTime, full.AMAT.Mean(), 100*full.Bound.MemFrac())
	fmt.Printf("\nspeedup: %.2fx (same total work, zero lines of Go for the workload)\n", full.Speedup(baseline))
}
