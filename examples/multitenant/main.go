// Multitenant: co-locate three tenants — an analytics scanner, a
// key-value store, and a half-rate batch graph job — on one simulated
// CXL-SSD machine, then measure who pays for the consolidation.
//
// The mix is a JSON file (mix.json, schema in WORKLOADS.md): tenants
// are data, not code. Each tenant group gets a disjoint arena and its
// own thread range; the run's Result carries a per-tenant slice whose
// measurements sum exactly to the whole-system totals. The walkthrough
// computes the figmix-style fairness metrics by hand: per-tenant
// slowdown against a solo run of the same workload, thread count, and
// budget; the max/min slowdown disparity; and Jain's fairness index.
//
// The JSON ships embedded so the example runs from any directory; in
// real use, point skybyte.MixFromFile (or any CLI's -mix-file flag) at
// a file on disk.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"skybyte"
)

//go:embed mix.json
var mixJSON []byte

func main() {
	dir, err := os.MkdirTemp("", "skybyte-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "mix.json")
	if err := os.WriteFile(path, mixJSON, 0o644); err != nil {
		log.Fatal(err)
	}

	// Loading registers the mix: it now resolves by name in MixByName,
	// the figmix experiment's mix set, and the CLIs' -mix flags.
	mix, err := skybyte.MixFromFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mix %q: %d tenants, %d threads\n\n", mix.Name, len(mix.Tenants), mix.TotalThreads())

	const totalInstr, seed = 96_000, 1
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)

	// The co-located run: every tenant on one machine.
	mixed, err := skybyte.RunMix(cfg, mix, totalInstr, seed)
	if err != nil {
		log.Fatal(err)
	}

	// Each tenant's solo baseline: the same workload, thread count, and
	// per-thread budget, alone on an otherwise identical machine.
	fmt.Printf("%-10s %-11s %8s %12s %12s %10s %8s %10s\n",
		"tenant", "workload", "threads", "solo", "co-located", "slowdown", "ctx", "log lines")
	var slowdowns []float64
	for i, td := range mix.Tenants {
		w, err := skybyte.WorkloadByName(td.Workload)
		if err != nil {
			log.Fatal(err)
		}
		per := mix.PerThreadInstr(i, totalInstr)
		solo := skybyte.Run(cfg, w, td.Threads, per, seed)
		tr := mixed.Tenants[i]
		slowdown := float64(tr.ExecTime) / float64(solo.ExecTime)
		slowdowns = append(slowdowns, slowdown)
		fmt.Printf("%-10s %-11s %8d %12v %12v %9.2fx %8d %10d\n",
			tr.Name, tr.Workload, tr.Threads, solo.ExecTime, tr.ExecTime,
			slowdown, tr.CtxSwitches, tr.Log.LinesAbsorbed)
	}

	fmt.Printf("\nfairness: Jain index %.3f over slowdowns, max/min disparity %.2f\n",
		skybyte.JainIndex(slowdowns), skybyte.MaxMinRatio(slowdowns))
	fmt.Printf("system:   exec %v, %d ctx switches, %d log lines absorbed\n",
		mixed.ExecTime, mixed.CtxSwitches, mixed.Traffic.LinesAbsorbed)

	// The same study, campaign-style: skybyte-bench -figure figmix
	// renders solo vs co-located rows for every known mix across design
	// points, with results persisting in the -cache-dir store.
}
