// Allocation budget for the inner loop. The event engine, CPU, system,
// controller, and flash layers pool their event records and schedule
// through typed handlers, so a steady-state design point performs O(1)
// allocations per off-chip request, not O(events). This test pins that
// property: the pre-pooling engine spent ~274k allocations (~21 per
// request) on this exact run; the budgets below sit ~3x above today's
// measurement (~10.7k, 0.82/request) and ~8x below the old cost, so a
// regression that reintroduces per-event garbage fails loudly while
// normal drift does not. Allocation counts are hardware-independent,
// which makes this the portable half of the perf gate (BENCH_7.json and
// cmd/benchgate carry the wall-clock half).
package skybyte_test

import (
	"testing"

	"skybyte"
)

func TestColdRunAllocsBudget(t *testing.T) {
	w, err := skybyte.WorkloadByName("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
	if cfg.TelemetryCadence != 0 {
		t.Fatal("allocation budget must measure the telemetry-disabled path")
	}
	var reqs uint64
	allocs := testing.AllocsPerRun(3, func() {
		r := skybyte.Run(cfg, w, 24, 8000, 1)
		reqs = r.Breakdown.Total()
		if r.Telemetry != nil {
			t.Error("telemetry-disabled run carried a Telemetry section")
		}
	})
	if reqs == 0 {
		t.Fatal("run classified no requests")
	}
	const runBudget = 32_000
	if allocs > runBudget {
		t.Errorf("cold design point performed %.0f allocations; budget is %d (pre-pooling engine: ~274k)", allocs, runBudget)
	}
	perReq := allocs / float64(reqs)
	const perReqBudget = 2.5
	if perReq > perReqBudget {
		t.Errorf("%.2f allocations per off-chip request (%.0f allocs / %d requests); budget is %.1f (pre-pooling engine: ~21)",
			perReq, allocs, reqs, perReqBudget)
	}
}
