package skybyte_test

import (
	"os"
	"path/filepath"
	"testing"

	"skybyte"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
	w, err := skybyte.WorkloadByName("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	res := skybyte.Run(cfg, w, 8, 4000, 1)
	if res.ExecTime <= 0 || res.Instructions < 8*4000 {
		t.Fatalf("run incomplete: %v / %d instrs", res.ExecTime, res.Instructions)
	}
	if res.Variant != string(skybyte.SkyByteFull) {
		t.Fatalf("variant = %q", res.Variant)
	}
}

func TestVariantsExposed(t *testing.T) {
	vs := skybyte.Variants()
	if len(vs) != 8 {
		t.Fatalf("variants = %d, want the Fig. 14 set of 8", len(vs))
	}
	if vs[0] != skybyte.BaseCSSD || vs[len(vs)-1] != skybyte.DRAMOnly {
		t.Fatalf("variant order unexpected: %v", vs)
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if len(skybyte.Workloads()) != 7 {
		t.Fatal("Table I should have 7 workloads")
	}
	if _, err := skybyte.WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestManualSystemDrive(t *testing.T) {
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.BaseCSSD)
	sys := skybyte.NewSystem(cfg)
	w, _ := skybyte.WorkloadByName("tpcc")
	for i := 0; i < 4; i++ {
		sys.AddThread(w.Stream(i, 2), 3000)
	}
	res := sys.Run()
	if res.Breakdown.Total() == 0 {
		t.Fatal("no requests recorded")
	}
}

func TestExperimentsSmoke(t *testing.T) {
	opt := skybyte.DefaultExperimentOptions()
	opt.TotalInstr = 48_000
	opt.SweepInstr = 24_000
	opt.Workloads = []string{"ycsb"}
	h := skybyte.NewExperiments(opt)
	tab := h.Fig02()
	if tab.ID != "fig02" || len(tab.Rows) != 1 {
		t.Fatalf("fig02 shape wrong: %+v", tab)
	}
}

// TestShardedCampaignPublicAPI drives the persistence/sharding surface
// end to end the way two CI jobs and a merge machine would: shards
// split the campaign into one store, the merge renders from cache
// only, and the bytes match an unsharded run.
func TestShardedCampaignPublicAPI(t *testing.T) {
	opt := skybyte.DefaultExperimentOptions()
	opt.TotalInstr = 48_000
	opt.SweepInstr = 24_000
	opt.Workloads = []string{"ycsb"}

	fp := skybyte.CampaignFingerprint(opt)
	if fp == "" || fp != skybyte.CampaignFingerprint(opt) {
		t.Fatal("campaign fingerprint unstable")
	}

	direct := skybyte.RunAll(opt)

	opt.CacheDir = t.TempDir()
	opt.ShardCount = 2
	for i := 0; i < 2; i++ {
		opt.Shard = i
		executed, total, err := skybyte.RunShard(opt)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if executed == 0 || total == 0 {
			t.Fatalf("shard %d executed %d of %d", i, executed, total)
		}
	}
	merged, err := skybyte.RunAllFromCache(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(direct) {
		t.Fatalf("table counts differ: %d vs %d", len(merged), len(direct))
	}
	for i := range direct {
		if merged[i].String() != direct[i].String() {
			t.Errorf("table %s differs between direct and sharded runs", direct[i].ID)
		}
	}

	// A from-cache render against an empty store must fail, not simulate.
	opt.CacheDir = t.TempDir()
	if _, err := skybyte.RunAllFromCache(opt); err == nil {
		t.Fatal("render from an empty store succeeded")
	}
}

// TestBadCacheDirIsAnError: a CacheDir that cannot be created (a file
// sits at the path) surfaces as an error from the error-returning
// entry points, not a panic.
func TestBadCacheDirIsAnError(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	opt := skybyte.DefaultExperimentOptions()
	opt.Workloads = []string{"ycsb"}
	opt.CacheDir = bad
	if _, _, err := skybyte.RunShard(opt); err == nil {
		t.Fatal("RunShard with an unusable CacheDir succeeded")
	}
	if _, err := skybyte.RunAllFromCache(opt); err == nil {
		t.Fatal("RunAllFromCache with an unusable CacheDir succeeded")
	}
}
