package skybyte_test

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"skybyte"
	"skybyte/internal/system"
	"skybyte/internal/trace"
	"skybyte/internal/traceimport"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
	w, err := skybyte.WorkloadByName("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	res := skybyte.Run(cfg, w, 8, 4000, 1)
	if res.ExecTime <= 0 || res.Instructions < 8*4000 {
		t.Fatalf("run incomplete: %v / %d instrs", res.ExecTime, res.Instructions)
	}
	if res.Variant != string(skybyte.SkyByteFull) {
		t.Fatalf("variant = %q", res.Variant)
	}
}

func TestVariantsExposed(t *testing.T) {
	vs := skybyte.Variants()
	if len(vs) != 8 {
		t.Fatalf("variants = %d, want the Fig. 14 set of 8", len(vs))
	}
	if vs[0] != skybyte.BaseCSSD || vs[len(vs)-1] != skybyte.DRAMOnly {
		t.Fatalf("variant order unexpected: %v", vs)
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if len(skybyte.Workloads()) != 7 {
		t.Fatal("Table I should have 7 workloads")
	}
	if _, err := skybyte.WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestManualSystemDrive(t *testing.T) {
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.BaseCSSD)
	sys := skybyte.NewSystem(cfg)
	w, _ := skybyte.WorkloadByName("tpcc")
	for i := 0; i < 4; i++ {
		sys.AddThread(w.Stream(i, 2), 3000)
	}
	res := sys.Run()
	if res.Breakdown.Total() == 0 {
		t.Fatal("no requests recorded")
	}
}

func TestExperimentsSmoke(t *testing.T) {
	opt := skybyte.DefaultExperimentOptions()
	opt.TotalInstr = 48_000
	opt.SweepInstr = 24_000
	opt.Workloads = []string{"ycsb"}
	h := skybyte.NewExperiments(opt)
	tab := h.Fig02()
	if tab.ID != "fig02" || len(tab.Rows) != 1 {
		t.Fatalf("fig02 shape wrong: %+v", tab)
	}
}

// TestShardedCampaignPublicAPI drives the persistence/sharding surface
// end to end the way two CI jobs and a merge machine would: shards
// split the campaign into one store, the merge renders from cache
// only, and the bytes match an unsharded run.
func TestShardedCampaignPublicAPI(t *testing.T) {
	opt := skybyte.DefaultExperimentOptions()
	opt.TotalInstr = 48_000
	opt.SweepInstr = 24_000
	opt.Workloads = []string{"ycsb"}

	fp := skybyte.CampaignFingerprint(opt)
	if fp == "" || fp != skybyte.CampaignFingerprint(opt) {
		t.Fatal("campaign fingerprint unstable")
	}

	direct := skybyte.RunAll(opt)

	opt.CacheDir = t.TempDir()
	opt.ShardCount = 2
	for i := 0; i < 2; i++ {
		opt.Shard = i
		executed, total, err := skybyte.RunShard(opt)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if executed == 0 || total == 0 {
			t.Fatalf("shard %d executed %d of %d", i, executed, total)
		}
	}
	merged, err := skybyte.RunAllFromCache(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(direct) {
		t.Fatalf("table counts differ: %d vs %d", len(merged), len(direct))
	}
	for i := range direct {
		if merged[i].String() != direct[i].String() {
			t.Errorf("table %s differs between direct and sharded runs", direct[i].ID)
		}
	}

	// A from-cache render against an empty store must fail, not simulate.
	opt.CacheDir = t.TempDir()
	if _, err := skybyte.RunAllFromCache(opt); err == nil {
		t.Fatal("render from an empty store succeeded")
	}
}

// TestBadCacheDirIsAnError: a CacheDir that cannot be created (a file
// sits at the path) surfaces as an error from the error-returning
// entry points, not a panic.
func TestBadCacheDirIsAnError(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	opt := skybyte.DefaultExperimentOptions()
	opt.Workloads = []string{"ycsb"}
	opt.CacheDir = bad
	if _, _, err := skybyte.RunShard(opt); err == nil {
		t.Fatal("RunShard with an unusable CacheDir succeeded")
	}
	if _, err := skybyte.RunAllFromCache(opt); err == nil {
		t.Fatal("RunAllFromCache with an unusable CacheDir succeeded")
	}
}

// TestFileWorkloadCampaignEndToEnd is the PR-3 acceptance path: a
// workload defined only in a file (no Go code) runs through
// RunAll-style campaigns, its registration gives the campaign a store
// fingerprint distinct from a built-in-only process, a warm replay
// from the persistent store is byte-identical with zero simulations,
// and editing the file re-keys the store instead of serving stale
// results.
func TestFileWorkloadCampaignEndToEnd(t *testing.T) {
	def := `{
  "format": 1,
  "name": "filetest-mix",
  "footprint_pages": 4096,
  "write_ratio": 0.25,
  "regions": [
    {"name": "data", "start": 0, "size": 0.9},
    {"name": "out", "start": 0.9, "size": 0.1}
  ],
  "phases": [
    {"ops": [
      {"op": "load", "region": "data", "kernel": "zipf", "theta": 0.8},
      {"op": "compute", "min": 12, "max": 24},
      {"op": "load", "region": "data", "kernel": "sequential", "lines": 2},
      {"op": "store", "region": "out", "kernel": "uniform"}
    ]}
  ]
}`
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	if err := os.WriteFile(path, []byte(def), 0o644); err != nil {
		t.Fatal(err)
	}

	opt := skybyte.DefaultExperimentOptions()
	opt.TotalInstr = 24_000
	opt.SweepInstr = 12_000
	opt.Workloads = []string{"filetest-mix"}

	optNoFile := opt
	optNoFile.Workloads = []string{"ycsb"}
	fpBefore := skybyte.CampaignFingerprint(optNoFile)

	w, err := skybyte.WorkloadFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "filetest-mix" {
		t.Fatalf("loaded name %q", w.Name)
	}
	if fpV1 := skybyte.CampaignFingerprint(optNoFile); fpV1 == fpBefore {
		t.Fatal("registering a file workload did not change the campaign fingerprint")
	}

	// Direct run through the plain API.
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
	if res := skybyte.Run(cfg, w, 8, 3000, 1); res.Instructions < 8*3000 {
		t.Fatalf("file workload run incomplete: %+v", res.Instructions)
	}

	// Cold campaign into a persistent store.
	opt.CacheDir = filepath.Join(dir, "store")
	sims := 0
	h := skybyte.NewExperiments(opt)
	h.Verbose = func(string, *skybyte.Result) { sims++ }
	cold, err := h.AllErr(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sims == 0 {
		t.Fatal("cold campaign simulated nothing")
	}
	coldSims := sims

	// Warm replay: zero simulations, identical bytes.
	sims = 0
	h2 := skybyte.NewExperiments(opt)
	h2.Verbose = func(string, *skybyte.Result) { sims++ }
	warm, err := h2.AllErr(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sims != 0 {
		t.Fatalf("warm campaign re-simulated %d design points", sims)
	}
	if len(warm) != len(cold) {
		t.Fatalf("table counts differ: %d vs %d", len(warm), len(cold))
	}
	for i := range cold {
		if warm[i].String() != cold[i].String() {
			t.Fatalf("table %s differs between cold and warm runs", cold[i].ID)
		}
	}

	// Edit the definition: the campaign re-keys and re-simulates.
	edited := strings.Replace(def, `"theta": 0.8`, `"theta": 0.7`, 1)
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := skybyte.WorkloadFromFile(path); err != nil {
		t.Fatal(err)
	}
	sims = 0
	h3 := skybyte.NewExperiments(opt)
	h3.Verbose = func(string, *skybyte.Result) { sims++ }
	if _, err := h3.AllErr(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sims != coldSims {
		t.Fatalf("edited workload file re-simulated %d of %d design points; stale store entries served", sims, coldSims)
	}
}

// TestRunMixPublicAPI drives the multi-tenant surface end to end: a
// built-in mix resolves by name, a file mix registers and runs, and a
// mixed run attributes results per tenant.
func TestRunMixPublicAPI(t *testing.T) {
	if len(skybyte.MixNames()) < 2 {
		t.Fatalf("MixNames() = %v, want the built-in pairings", skybyte.MixNames())
	}
	m, err := skybyte.MixByName("graph-vs-log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := skybyte.MixByName("nope"); err == nil {
		t.Fatal("unknown mix accepted")
	}
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
	res, err := skybyte.RunMix(cfg, m, 16_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("tenants = %d, want 2", len(res.Tenants))
	}
	for _, tr := range res.Tenants {
		if tr.Instructions == 0 || tr.ExecTime == 0 {
			t.Fatalf("tenant %q made no progress", tr.Name)
		}
	}

	mixDef := `{
  "format": 1,
  "name": "api-file-mix",
  "tenants": [
    {"workload": "bc", "threads": 2},
    {"workload": "ycsb", "threads": 2}
  ]
}`
	path := filepath.Join(t.TempDir(), "mix.json")
	if err := os.WriteFile(path, []byte(mixDef), 0o644); err != nil {
		t.Fatal(err)
	}
	fm, err := skybyte.MixFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Name != "api-file-mix" {
		t.Fatalf("loaded mix named %q", fm.Name)
	}
	if _, err := skybyte.MixByName("api-file-mix"); err != nil {
		t.Fatal("file mix not resolvable by name after MixFromFile")
	}
}

// TestTenantStatsSumToSystemTotals is the per-tenant accounting
// contract: every split measurement — instructions, boundedness,
// request classes, read-latency samples, context switches, hints, LLC
// misses, log lines — sums exactly to the whole-system totals, on the
// fullest design point (context switches + write log + migration all
// active).
func TestTenantStatsSumToSystemTotals(t *testing.T) {
	m, err := skybyte.MixByName("graph-vs-log")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []skybyte.Variant{skybyte.BaseCSSD, skybyte.SkyByteFull} {
		cfg := skybyte.ScaledConfig().WithVariant(v)
		res, err := skybyte.RunMix(cfg, m, 128_000, 1)
		if err != nil {
			t.Fatal(err)
		}
		var (
			instr, ctx, hintSw, hints, llc, readN, logLines, stalls uint64
			bound                                                   = res.Bound
			breakdown                                               = res.Breakdown
		)
		for _, tr := range res.Tenants {
			instr += tr.Instructions
			ctx += tr.CtxSwitches
			hintSw += tr.HintSwitches
			hints += tr.HintsSent
			llc += tr.LLCMisses
			readN += tr.ReadLat.Count()
			logLines += tr.Log.LinesAbsorbed
			stalls += tr.Log.StalledWrites
			bound.Compute -= tr.Bound.Compute
			bound.MemStall -= tr.Bound.MemStall
			bound.CtxSwitch -= tr.Bound.CtxSwitch
			for c, n := range tr.Breakdown.Counts {
				breakdown.Counts[c] -= n
			}
		}
		if instr != res.Instructions {
			t.Errorf("%s: tenant instructions sum %d != system %d", v, instr, res.Instructions)
		}
		if ctx != res.CtxSwitches {
			t.Errorf("%s: tenant ctx switches sum %d != system %d", v, ctx, res.CtxSwitches)
		}
		if hintSw != res.HintSwitches {
			t.Errorf("%s: tenant hint switches sum %d != system %d", v, hintSw, res.HintSwitches)
		}
		if hints != res.HintsSent {
			t.Errorf("%s: tenant hints sum %d != system %d", v, hints, res.HintsSent)
		}
		if llc != res.LLCMisses {
			t.Errorf("%s: tenant LLC misses sum %d != system %d", v, llc, res.LLCMisses)
		}
		if readN != res.ReadLat.Count() {
			t.Errorf("%s: tenant read samples sum %d != system %d", v, readN, res.ReadLat.Count())
		}
		if logLines != res.Traffic.LinesAbsorbed {
			t.Errorf("%s: tenant log lines sum %d != system %d", v, logLines, res.Traffic.LinesAbsorbed)
		}
		if bound.Compute != 0 || bound.MemStall != 0 || bound.CtxSwitch != 0 {
			t.Errorf("%s: tenant boundedness does not sum to system totals (residual %+v)", v, bound)
		}
		for c, n := range breakdown.Counts {
			if n != 0 {
				t.Errorf("%s: request class %d residual %d after tenant subtraction", v, c, n)
			}
		}
		if v == skybyte.SkyByteFull && (res.CtxSwitches == 0 || res.Traffic.LinesAbsorbed == 0) {
			t.Errorf("%s: test exercised no switches/log activity (ctx=%d lines=%d)", v, res.CtxSwitches, res.Traffic.LinesAbsorbed)
		}
		_ = stalls // backpressure may legitimately be zero at this budget
	}
}

// TestTraceRecordReplayBitForBit is the record/replay acceptance: a
// stream recorded at a simulation's exact instruction budget, replayed
// through the trace workload kind, reproduces the original run's
// Result bit for bit.
func TestTraceRecordReplayBitForBit(t *testing.T) {
	w, err := skybyte.WorkloadByName("srad")
	if err != nil {
		t.Fatal(err)
	}
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
	const threads, per, seed = 8, 6000, 3

	live := skybyte.Run(cfg, w, threads, per, seed)

	tr := &trace.Trace{Meta: trace.Meta{
		Workload: w.Name, Seed: seed,
		FootprintPages: w.FootprintPages, WriteRatio: w.WriteRatio,
		InstrPerThread: per,
	}}
	for i := 0; i < threads; i++ {
		tr.Threads = append(tr.Threads,
			trace.RecordStream(&trace.Limited{Src: w.Stream(i, seed), Budget: per}, math.MaxInt))
	}
	data, err := trace.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "srad.trc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	replayW, err := skybyte.WorkloadFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if replayW.Name != "trace:srad" {
		t.Fatalf("trace workload named %q", replayW.Name)
	}
	// The replay seed is deliberately different: a trace is literal.
	replay := skybyte.Run(cfg, replayW, threads, per, seed+99)

	la, err := system.EncodeResult(live)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := system.EncodeResult(replay)
	if err != nil {
		t.Fatal(err)
	}
	if string(la) != string(ra) {
		t.Fatalf("replayed Result differs from the live run:\nlive:   %.200s\nreplay: %.200s", la, ra)
	}
}

// TestImportedTraceEndToEnd is the importer acceptance at the public
// API: a synthetic ChampSim trace imports to a registered workload,
// replays to byte-identical Results across goroutines (a campaign's
// parallelism must not be able to tell imported streams apart from
// generated ones), and the in-memory import fingerprints identically
// to the same conversion recorded to a .trc and loaded back — so a
// persistent store warms across the two entry paths.
func TestImportedTraceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "fixture.champsim")
	if err := traceimport.WriteFixture("champsim", src); err != nil {
		t.Fatal(err)
	}
	w, err := skybyte.ImportTrace("champsim:" + src)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "trace:champsim:fixture.champsim" {
		t.Fatalf("imported workload named %q", w.Name)
	}
	got, err := skybyte.WorkloadByName(w.Name)
	if err != nil || got.Trace == nil {
		t.Fatalf("imported workload does not resolve by name: %v", err)
	}

	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
	const threads, per = 4, 3000
	results := make([]*skybyte.Result, 3)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = skybyte.Run(cfg, w, threads, per, 1)
		}(i)
	}
	wg.Wait()
	first, err := system.EncodeResult(results[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		enc, err := system.EncodeResult(results[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(first) {
			t.Fatalf("concurrent replays of the imported trace diverged (run %d)", i)
		}
	}

	// Record the conversion and load the file: same records, same
	// source identity — the spec key (and so any cached result) is
	// shared between the -import and -workload-file entry paths.
	tr, err := traceimport.Import("champsim", src)
	if err != nil {
		t.Fatal(err)
	}
	data, err := trace.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	trc := filepath.Join(dir, "fixture.trc")
	if err := os.WriteFile(trc, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := skybyte.WorkloadFromFile(trc)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.SourceID() != w.SourceID() {
		t.Fatalf("source identity differs between import (%s) and file load (%s)", w.SourceID(), fromFile.SourceID())
	}
	fileRes := skybyte.Run(cfg, fromFile, threads, per, 7) // trace replay ignores the seed
	enc, err := system.EncodeResult(fileRes)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(first) {
		t.Fatal("replay through the recorded .trc differs from the in-memory import")
	}
	if skybyte.ImportFormats()[0] == "" || len(skybyte.ImportFormats()) != 3 {
		t.Fatalf("ImportFormats = %v", skybyte.ImportFormats())
	}
}
