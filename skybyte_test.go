package skybyte_test

import (
	"testing"

	"skybyte"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.SkyByteFull)
	w, err := skybyte.WorkloadByName("ycsb")
	if err != nil {
		t.Fatal(err)
	}
	res := skybyte.Run(cfg, w, 8, 4000, 1)
	if res.ExecTime <= 0 || res.Instructions < 8*4000 {
		t.Fatalf("run incomplete: %v / %d instrs", res.ExecTime, res.Instructions)
	}
	if res.Variant != string(skybyte.SkyByteFull) {
		t.Fatalf("variant = %q", res.Variant)
	}
}

func TestVariantsExposed(t *testing.T) {
	vs := skybyte.Variants()
	if len(vs) != 8 {
		t.Fatalf("variants = %d, want the Fig. 14 set of 8", len(vs))
	}
	if vs[0] != skybyte.BaseCSSD || vs[len(vs)-1] != skybyte.DRAMOnly {
		t.Fatalf("variant order unexpected: %v", vs)
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if len(skybyte.Workloads()) != 7 {
		t.Fatal("Table I should have 7 workloads")
	}
	if _, err := skybyte.WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestManualSystemDrive(t *testing.T) {
	cfg := skybyte.ScaledConfig().WithVariant(skybyte.BaseCSSD)
	sys := skybyte.NewSystem(cfg)
	w, _ := skybyte.WorkloadByName("tpcc")
	for i := 0; i < 4; i++ {
		sys.AddThread(w.Stream(i, 2), 3000)
	}
	res := sys.Run()
	if res.Breakdown.Total() == 0 {
		t.Fatal("no requests recorded")
	}
}

func TestExperimentsSmoke(t *testing.T) {
	opt := skybyte.DefaultExperimentOptions()
	opt.TotalInstr = 48_000
	opt.SweepInstr = 24_000
	opt.Workloads = []string{"ycsb"}
	h := skybyte.NewExperiments(opt)
	tab := h.Fig02()
	if tab.ID != "fig02" || len(tab.Rows) != 1 {
		t.Fatalf("fig02 shape wrong: %+v", tab)
	}
}
