package skybyte_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"unicode"
)

// mdLink matches inline markdown links: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// mdHeading matches ATX headings outside code fences.
var mdHeading = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*$`)

// slugify renders a heading the way GitHub derives its anchor id:
// lowercase, punctuation dropped, spaces to hyphens — so "§2.1 Result
// store & sharding" becomes "21-result-store--sharding" (each space
// maps to a hyphen; none collapse).
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// headingAnchors collects the anchor set of one markdown document:
// every ATX heading outside fenced code blocks, slugified, with
// GitHub's -1/-2 suffixes on duplicates.
func headingAnchors(data string) map[string]bool {
	out := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(data, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := mdHeading.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		if out[slug] {
			for i := 1; ; i++ {
				if cand := fmt.Sprintf("%s-%d", slug, i); !out[cand] {
					slug = cand
					break
				}
			}
		}
		out[slug] = true
	}
	return out
}

// TestDocLinks checks every intra-repo markdown link in the top-level
// documents: a renamed or deleted file — or a reworded heading behind a
// #fragment — must break CI's docs job, not a reader. External URLs are
// skipped; pure #anchors validate against the linking document's own
// headings, and anchors on relative .md links validate against the
// target document's headings.
func TestDocLinks(t *testing.T) {
	docs, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) < 5 {
		t.Fatalf("only %d top-level markdown files found; checker running in the wrong directory?", len(docs))
	}
	anchorCache := map[string]map[string]bool{}
	anchorsOf := func(path string) (map[string]bool, error) {
		if set, ok := anchorCache[path]; ok {
			return set, nil
		}
		data, err := os.ReadFile(filepath.FromSlash(path))
		if err != nil {
			return nil, err
		}
		set := headingAnchors(string(data))
		anchorCache[path] = set
		return set, nil
	}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		self := headingAnchors(string(data))
		anchorCache[doc] = self
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if frag, ok := strings.CutPrefix(target, "#"); ok {
				if !self[frag] {
					t.Errorf("%s: anchor %q does not match any heading in the same document", doc, target)
				}
				continue
			}
			file, frag, hasFrag := strings.Cut(target, "#")
			if file == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(file)); err != nil {
				t.Errorf("%s: broken link to %q", doc, m[1])
				continue
			}
			if hasFrag && strings.HasSuffix(file, ".md") {
				set, err := anchorsOf(file)
				if err != nil {
					t.Errorf("%s: cannot read link target %q: %v", doc, file, err)
					continue
				}
				if !set[frag] {
					t.Errorf("%s: anchor %q does not match any heading in %s", doc, m[1], file)
				}
			}
		}
	}
}

// TestSlugify pins the anchor derivation against hand-checked GitHub
// renderings, including the § and & stripping the design doc relies on.
func TestSlugify(t *testing.T) {
	for _, tc := range []struct{ heading, want string }{
		{"Fleet architecture", "fleet-architecture"},
		{"§2.1 Result store & sharding", "21-result-store--sharding"},
		{"A  double  space", "a--double--space"},
		{"`code` in heading", "code-in-heading"},
		{"Hot/cold tiering", "hotcold-tiering"},
	} {
		if got := slugify(tc.heading); got != tc.want {
			t.Errorf("slugify(%q) = %q, want %q", tc.heading, got, tc.want)
		}
	}
}
