package skybyte_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinks checks every intra-repo markdown link in the top-level
// documents: a renamed or deleted file must break CI's docs job, not a
// reader. External URLs and pure anchors are skipped; anchors on
// relative links are stripped before the existence check.
func TestDocLinks(t *testing.T) {
	docs, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) < 5 {
		t.Fatalf("only %d top-level markdown files found; checker running in the wrong directory?", len(docs))
	}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s: broken link to %q", doc, m[1])
			}
		}
	}
}
