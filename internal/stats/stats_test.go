package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"skybyte/internal/sim"
)

// TestLatencyHistJSONRoundTrip pins the histogram codec behind the
// persistent result store: samples, percentiles, and canonical bytes
// all survive marshal/unmarshal.
func TestLatencyHistJSONRoundTrip(t *testing.T) {
	var h LatencyHist
	for _, d := range []sim.Time{3 * sim.Nanosecond, 180 * sim.Nanosecond, 3 * sim.Microsecond, 2 * sim.Millisecond} {
		for i := 0; i < 5; i++ {
			h.Observe(d)
		}
	}
	a, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got LatencyHist
	if err := json.Unmarshal(a, &got); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatal("histogram did not round-trip")
	}
	if got.Percentile(99) != h.Percentile(99) || got.Mean() != h.Mean() || got.Max() != h.Max() || got.Count() != h.Count() {
		t.Fatal("histogram queries diverge after round-trip")
	}
	b, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding not canonical:\n%s\n%s", a, b)
	}
	var empty LatencyHist
	data, err := json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	var back LatencyHist
	if err := json.Unmarshal(data, &back); err != nil || back != empty {
		t.Fatalf("empty histogram round-trip: %v", err)
	}
}

func TestLatencyHistJSONRejectsBadBuckets(t *testing.T) {
	for _, bad := range []string{
		`{"buckets":{"-1":3},"count":3,"sum":1,"max":1}`,
		`{"buckets":{"100000":3},"count":3,"sum":1,"max":1}`,
		`{"buckets":{"x":3},"count":3,"sum":1,"max":1}`,
	} {
		var h LatencyHist
		if err := json.Unmarshal([]byte(bad), &h); err == nil {
			t.Errorf("accepted out-of-range bucket: %s", bad)
		}
	}
}

func TestLatencyHistBasics(t *testing.T) {
	var h LatencyHist
	h.Observe(100 * sim.Nanosecond)
	h.Observe(200 * sim.Nanosecond)
	h.Observe(300 * sim.Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 200*sim.Nanosecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 300*sim.Nanosecond {
		t.Fatalf("Max = %v", h.Max())
	}
	if h.Sum() != 600*sim.Nanosecond {
		t.Fatalf("Sum = %v", h.Sum())
	}
}

func TestLatencyHistPercentiles(t *testing.T) {
	var h LatencyHist
	// 90 fast samples, 10 slow samples: p50 should be fast, p99 slow.
	for i := 0; i < 90; i++ {
		h.Observe(100 * sim.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3 * sim.Microsecond)
	}
	p50 := h.Percentile(50)
	p99 := h.Percentile(99)
	if p50 > 200*sim.Nanosecond {
		t.Errorf("p50 = %v, want ~100ns", p50)
	}
	if p99 < sim.Microsecond {
		t.Errorf("p99 = %v, want >=1µs", p99)
	}
	if got := h.FractionBelow(sim.Microsecond); math.Abs(got-0.9) > 0.02 {
		t.Errorf("FractionBelow(1µs) = %v, want ~0.9", got)
	}
}

func TestLatencyHistCDFMonotone(t *testing.T) {
	f := func(samples []uint32) bool {
		var h LatencyHist
		for _, s := range samples {
			h.Observe(sim.Time(s) * sim.Nanosecond)
		}
		pts := h.CDFPoints()
		prevV, prevC := -1.0, 0.0
		for _, p := range pts {
			if p.Value <= prevV || p.Cum < prevC {
				return false
			}
			prevV, prevC = p.Value, p.Cum
		}
		if len(samples) > 0 && len(pts) > 0 && math.Abs(pts[len(pts)-1].Cum-1.0) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p and bounded by max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		var h LatencyHist
		for _, s := range samples {
			h.Observe(sim.Time(s) * sim.Nanosecond)
		}
		prev := sim.Time(0)
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(100) <= h.Max() || h.Count() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistReset(t *testing.T) {
	var h LatencyHist
	h.Observe(sim.Microsecond)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{2, 8})
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
	if GeoMean([]float64{0, -1}) != 0 {
		t.Error("GeoMean of non-positive values should be 0")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares: Jain = %v, want 1", got)
	}
	// One tenant gets everything: 1/n — starved tenants count, they do
	// not vanish from the index.
	if got := JainIndex([]float64{5, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("one-tenant-takes-all: Jain = %v, want 0.25", got)
	}
	got := JainIndex([]float64{1, 3})
	want := 16.0 / (2 * 10) // (1+3)² / (2·(1+9))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Jain(1,3) = %v, want %v", got, want)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, -2}) != 0 {
		t.Error("empty/all-zero input should yield 0")
	}
	// Negative values clamp to zero rather than poisoning the sums.
	if got := JainIndex([]float64{2, -2}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jain(2,-2) = %v, want 0.5", got)
	}
}

func TestMaxMinRatio(t *testing.T) {
	if got := MaxMinRatio([]float64{2, 2, 2}); got != 1 {
		t.Errorf("even values: ratio = %v, want 1", got)
	}
	if got := MaxMinRatio([]float64{0.5, 2, -1, 0}); got != 4 {
		t.Errorf("ratio = %v, want 4 (non-positive ignored)", got)
	}
	if MaxMinRatio(nil) != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestBoundedness(t *testing.T) {
	b := Boundedness{Compute: 25, MemStall: 50, CtxSwitch: 25}
	if b.Total() != 100 {
		t.Fatal("Total")
	}
	if b.MemFrac() != 0.5 || b.ComputeFrac() != 0.25 || b.CtxFrac() != 0.25 {
		t.Fatal("fractions wrong")
	}
	var zero Boundedness
	if zero.MemFrac() != 0 {
		t.Fatal("zero boundedness should have 0 fractions")
	}
	b.Add(Boundedness{Compute: 75})
	if b.Compute != 100 {
		t.Fatal("Add")
	}
}

func TestRequestBreakdown(t *testing.T) {
	var r RequestBreakdown
	r.Inc(HostRW)
	r.Inc(SSDReadHit)
	r.Inc(SSDReadHit)
	r.Inc(SSDWrite)
	if r.Total() != 4 {
		t.Fatalf("Total = %d", r.Total())
	}
	if r.Frac(SSDReadHit) != 0.5 {
		t.Fatalf("Frac = %v", r.Frac(SSDReadHit))
	}
	if HostRW.String() != "H-R/W" || SSDReadMiss.String() != "S-R-M" {
		t.Fatal("class labels wrong")
	}
}

func TestAMAT(t *testing.T) {
	var a AMAT
	a.AddAccess([5]sim.Time{70 * sim.Nanosecond, 0, 0, 0, 0})
	a.AddAccess([5]sim.Time{0, 40 * sim.Nanosecond, 72 * sim.Nanosecond, 50 * sim.Nanosecond, 3 * sim.Microsecond})
	if a.Accesses != 2 {
		t.Fatal("accesses")
	}
	want := (70*sim.Nanosecond + 40*sim.Nanosecond + 72*sim.Nanosecond + 50*sim.Nanosecond + 3*sim.Microsecond) / 2
	if a.Mean() != want {
		t.Fatalf("Mean = %v, want %v", a.Mean(), want)
	}
	if a.MeanOf(AMATHostDRAM) != 35*sim.Nanosecond {
		t.Fatalf("MeanOf(host) = %v", a.MeanOf(AMATHostDRAM))
	}
	if AMATFlash.String() != "Flash" || AMATIndexing.String() != "Indexing" {
		t.Fatal("labels")
	}
}

func TestFlashTraffic(t *testing.T) {
	f := FlashTraffic{HostPrograms: 1, CompactWrites: 2, GCPrograms: 3, DemoteWrites: 4,
		HostReads: 5, PrefetchReads: 6, CompactReads: 7, GCReads: 8}
	if f.TotalPrograms() != 10 {
		t.Fatalf("TotalPrograms = %d", f.TotalPrograms())
	}
	if f.TotalReads() != 26 {
		t.Fatalf("TotalReads = %d", f.TotalReads())
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	for _, v := range []float64{0.1, 0.5, 0.9, 0.3} {
		d.Add(v)
	}
	cdf := d.CDF()
	if len(cdf) != 4 {
		t.Fatal("cdf length")
	}
	if cdf[0].Value != 0.1 || cdf[3].Value != 0.9 || cdf[3].Cum != 1.0 {
		t.Fatalf("cdf = %+v", cdf)
	}
	if got := d.FractionAtOrBelow(0.4); got != 0.5 {
		t.Fatalf("FractionAtOrBelow = %v", got)
	}
	if math.Abs(d.Mean()-0.45) > 1e-12 {
		t.Fatalf("Mean = %v", d.Mean())
	}
}

func TestFormatGB(t *testing.T) {
	if FormatGB(1<<30) != "1.00GB" || FormatGB(512<<20) != "512.00MB" ||
		FormatGB(2048) != "2.00KB" || FormatGB(12) != "12B" {
		t.Fatal("FormatGB broken")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio broken")
	}
}
