package stats

import "skybyte/internal/sim"

// Boundedness accumulates where core time goes: executing instructions,
// stalled on memory, or context switching (Figs. 4 and 10). Times are summed
// across cores.
type Boundedness struct {
	Compute   sim.Time
	MemStall  sim.Time
	CtxSwitch sim.Time
}

// Total returns the sum of all accounted time.
func (b Boundedness) Total() sim.Time { return b.Compute + b.MemStall + b.CtxSwitch }

// MemFrac returns the fraction of time bounded by memory.
func (b Boundedness) MemFrac() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.MemStall) / float64(t)
}

// ComputeFrac returns the fraction of time bounded by compute.
func (b Boundedness) ComputeFrac() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Compute) / float64(t)
}

// CtxFrac returns the fraction of time spent context switching.
func (b Boundedness) CtxFrac() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.CtxSwitch) / float64(t)
}

// Add merges another accumulator into b.
func (b *Boundedness) Add(o Boundedness) {
	b.Compute += o.Compute
	b.MemStall += o.MemStall
	b.CtxSwitch += o.CtxSwitch
}

// RequestClass classifies an off-chip memory request the way Fig. 16 does.
type RequestClass int

// Request classes. HostRW covers reads and writes served by host DRAM
// (including promoted pages); SSDReadHit/Miss split CXL-SSD reads by whether
// the SSD DRAM (write log or data cache) held the line; SSDWrite covers all
// CXL-SSD writes (the paper does not split write hits/misses because with
// the write log every write appends).
const (
	HostRW RequestClass = iota
	SSDReadHit
	SSDReadMiss
	SSDWrite
	requestClassCount
)

// String names the class with the paper's Fig. 16 labels.
func (c RequestClass) String() string {
	switch c {
	case HostRW:
		return "H-R/W"
	case SSDReadHit:
		return "S-R-H"
	case SSDReadMiss:
		return "S-R-M"
	case SSDWrite:
		return "S-W"
	}
	return "?"
}

// RequestBreakdown counts off-chip requests per class.
type RequestBreakdown struct {
	Counts [requestClassCount]uint64
}

// Inc increments the count of class c.
func (r *RequestBreakdown) Inc(c RequestClass) { r.Counts[c]++ }

// Total returns the number of classified requests.
func (r *RequestBreakdown) Total() uint64 {
	var t uint64
	for _, c := range r.Counts {
		t += c
	}
	return t
}

// Frac returns the fraction of requests in class c.
func (r *RequestBreakdown) Frac(c RequestClass) float64 {
	t := r.Total()
	if t == 0 {
		return 0
	}
	return float64(r.Counts[c]) / float64(t)
}

// AMATComponent labels one layer of the three-level memory hierarchy AMAT
// model of Fig. 17.
type AMATComponent int

// AMAT components, in the paper's stacking order.
const (
	AMATHostDRAM AMATComponent = iota
	AMATCXLProtocol
	AMATIndexing
	AMATSSDDRAM
	AMATFlash
	amatComponentCount
)

// String names the component with the paper's Fig. 17 labels.
func (c AMATComponent) String() string {
	switch c {
	case AMATHostDRAM:
		return "Host DRAM"
	case AMATCXLProtocol:
		return "CXL Protocol"
	case AMATIndexing:
		return "Indexing"
	case AMATSSDDRAM:
		return "SSD DRAM"
	case AMATFlash:
		return "Flash"
	}
	return "?"
}

// AMAT accumulates per-component time over demand accesses. The average
// memory access time is Sum(components)/Accesses.
type AMAT struct {
	Time     [amatComponentCount]sim.Time
	Accesses uint64
}

// AddAccess records one demand access with its per-component latencies.
func (a *AMAT) AddAccess(parts [amatComponentCount]sim.Time) {
	for i, p := range parts {
		a.Time[i] += p
	}
	a.Accesses++
}

// Add accumulates time into one component without counting a new access
// (used when a single access has components recorded at different points).
func (a *AMAT) Add(c AMATComponent, d sim.Time) { a.Time[c] += d }

// CountAccess counts one access (pair with Add calls).
func (a *AMAT) CountAccess() { a.Accesses++ }

// Mean returns the average access time in picoseconds.
func (a *AMAT) Mean() sim.Time {
	if a.Accesses == 0 {
		return 0
	}
	var sum sim.Time
	for _, t := range a.Time {
		sum += t
	}
	return sum / sim.Time(a.Accesses)
}

// MeanOf returns the average per-access contribution of one component.
func (a *AMAT) MeanOf(c AMATComponent) sim.Time {
	if a.Accesses == 0 {
		return 0
	}
	return a.Time[c] / sim.Time(a.Accesses)
}

// ComponentCount returns the number of AMAT components.
func ComponentCount() int { return int(amatComponentCount) }

// FlashTraffic counts flash-level operations split by cause, supporting
// Fig. 18 (write traffic) and write-amplification analysis.
type FlashTraffic struct {
	HostReads      uint64 // page reads serving demand misses
	PrefetchReads  uint64 // page reads issued by Base-CSSD prefetch
	CompactReads   uint64 // page reads during log compaction (coalescing buffer fills)
	GCReads        uint64 // valid-page reads during garbage collection
	HostPrograms   uint64 // page programs from cache eviction / RMW writeback
	CompactWrites  uint64 // page programs during log compaction
	GCPrograms     uint64 // valid-page rewrites during garbage collection
	DemoteWrites   uint64 // page programs caused by demotion from host DRAM
	Erases         uint64
	GCInvocations  uint64
	LinesAbsorbed  uint64 // cacheline writes absorbed by the write log
	LinesCoalesced uint64 // logged lines dropped as stale during compaction
}

// TotalPrograms returns all page programs (the Fig. 18 metric).
func (f *FlashTraffic) TotalPrograms() uint64 {
	return f.HostPrograms + f.CompactWrites + f.GCPrograms + f.DemoteWrites
}

// TotalReads returns all flash page reads.
func (f *FlashTraffic) TotalReads() uint64 {
	return f.HostReads + f.PrefetchReads + f.CompactReads + f.GCReads
}
