// Package stats provides the measurement vocabulary for the simulator:
// latency histograms with percentile queries (Fig. 3), execution-time
// boundedness breakdowns (Figs. 4 and 10), memory-request breakdowns
// (Fig. 16), AMAT component accounting (Fig. 17), and flash-traffic counters
// (Figs. 18 and 20).
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"

	"skybyte/internal/sim"
)

// LatencyHist is a logarithmic histogram of latencies. Buckets are
// sub-divided powers of two between 1 ns and ~17 ms, which comfortably spans
// L1 hits through garbage-collection tails.
type LatencyHist struct {
	buckets [bucketCount]uint64
	count   uint64
	sum     sim.Time
	max     sim.Time
}

const (
	subBuckets  = 8 // sub-buckets per power of two
	maxExp      = 24
	bucketCount = maxExp * subBuckets
)

func bucketOf(d sim.Time) int {
	ns := d / sim.Nanosecond
	if ns < 1 {
		ns = 1
	}
	exp := 63 - leadingZeros(uint64(ns))
	if exp >= maxExp {
		return bucketCount - 1
	}
	frac := 0
	if exp > 0 {
		frac = int((uint64(ns) - 1<<uint(exp)) * subBuckets >> uint(exp))
	}
	return exp*subBuckets + frac
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLow returns the lower bound latency of bucket i.
func bucketLow(i int) sim.Time {
	exp := i / subBuckets
	frac := i % subBuckets
	base := sim.Time(1) << uint(exp)
	return (base + base*sim.Time(frac)/subBuckets) * sim.Nanosecond
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(d sim.Time) {
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() uint64 { return h.count }

// Mean returns the mean latency, or 0 with no samples.
func (h *LatencyHist) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Max returns the largest recorded sample.
func (h *LatencyHist) Max() sim.Time { return h.max }

// Sum returns the total of all samples.
func (h *LatencyHist) Sum() sim.Time { return h.sum }

// Percentile returns an estimate of the p-th percentile (0 < p <= 100).
func (h *LatencyHist) Percentile(p float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return bucketLow(i)
		}
	}
	return h.max
}

// FractionBelow returns the fraction of samples strictly in buckets whose
// lower bound is below d.
func (h *LatencyHist) FractionBelow(d sim.Time) float64 {
	if h.count == 0 {
		return 0
	}
	var below uint64
	for i, c := range h.buckets {
		if bucketLow(i) >= d {
			break
		}
		below += c
	}
	return float64(below) / float64(h.count)
}

// CDFPoints returns (latency, cumulative fraction) pairs for non-empty
// buckets, suitable for plotting Fig. 3-style distributions.
func (h *LatencyHist) CDFPoints() []CDFPoint {
	var out []CDFPoint
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, CDFPoint{Value: float64(bucketLow(i)) / float64(sim.Nanosecond), Cum: float64(cum) / float64(h.count)})
	}
	return out
}

// Reset clears all samples.
func (h *LatencyHist) Reset() { *h = LatencyHist{} }

// Merge adds every sample of other into h. Observing the union of two
// sample sets and merging two histograms over the halves produce
// identical state, which is what lets per-class open-loop splits be
// checked against the system total bucket for bucket.
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// latencyHistWire is the serialized form of LatencyHist. Buckets are
// sparse (index -> count) because most of the ~200 buckets are empty;
// encoding/json writes map keys sorted, so the encoding is canonical.
type latencyHistWire struct {
	Buckets map[string]uint64 `json:"buckets,omitempty"`
	Count   uint64            `json:"count"`
	Sum     sim.Time          `json:"sum"`
	Max     sim.Time          `json:"max"`
}

// MarshalJSON encodes the histogram canonically (identical samples in
// any order always produce identical bytes), which the persistent
// result store relies on for content addressing.
func (h LatencyHist) MarshalJSON() ([]byte, error) {
	w := latencyHistWire{Count: h.count, Sum: h.sum, Max: h.max}
	for i, c := range h.buckets {
		if c != 0 {
			if w.Buckets == nil {
				w.Buckets = make(map[string]uint64)
			}
			w.Buckets[fmt.Sprintf("%d", i)] = c
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores a histogram written by MarshalJSON. A bucket
// index outside the current layout is an error, so a histogram encoded
// under a different bucketing scheme cannot decode silently skewed.
func (h *LatencyHist) UnmarshalJSON(data []byte) error {
	var w latencyHistWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	h.Reset()
	h.count, h.sum, h.max = w.Count, w.Sum, w.Max
	for k, c := range w.Buckets {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || i >= bucketCount {
			return fmt.Errorf("stats: latency histogram bucket %q out of range", k)
		}
		h.buckets[i] = c
	}
	return nil
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value float64 // sample value (units depend on producer)
	Cum   float64 // cumulative fraction in (0,1]
}

// Ratio renders a/b with a guard for b == 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// JainIndex returns Jain's fairness index over xs:
// (Σx)² / (n·Σx²), in (0,1] — 1 when every value is equal, 1/n when a
// single tenant receives everything. Multi-tenant tables apply it to
// per-tenant slowdowns (or normalized throughputs). Zero shares count
// toward n — a fully starved tenant drives the index down, it does
// not vanish from it; negative values (which no rate can produce)
// clamp to zero. An all-zero or empty input returns 0.
func JainIndex(xs []float64) float64 {
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if len(xs) == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// MaxMinRatio returns max(xs)/min(xs) over the positive values — the
// worst-to-best disparity a co-located tenant experiences (1 = perfectly
// even). Returns 0 with no positive values.
func MaxMinRatio(xs []float64) float64 {
	lo, hi := math.Inf(1), 0.0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == 0 {
		return 0
	}
	return hi / lo
}

// GeoMean returns the geometric mean of xs (ignoring non-positive values),
// matching the paper's "geo. mean" columns.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Distribution summarises a set of float samples (used for per-page
// locality ratios in Figs. 5–6).
type Distribution struct {
	Samples []float64
}

// Add records one sample.
func (d *Distribution) Add(x float64) { d.Samples = append(d.Samples, x) }

// CDF returns the empirical CDF of the samples, sorted ascending.
func (d *Distribution) CDF() []CDFPoint {
	if len(d.Samples) == 0 {
		return nil
	}
	s := append([]float64(nil), d.Samples...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{Value: v, Cum: float64(i+1) / float64(len(s))}
	}
	return out
}

// FractionAtOrBelow returns the fraction of samples <= x.
func (d *Distribution) FractionAtOrBelow(x float64) float64 {
	if len(d.Samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range d.Samples {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(d.Samples))
}

// Mean returns the arithmetic mean of the samples.
func (d *Distribution) Mean() float64 {
	if len(d.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range d.Samples {
		sum += v
	}
	return sum / float64(len(d.Samples))
}

// FormatGB renders a byte count as "X.XXGB"-style text.
func FormatGB(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
