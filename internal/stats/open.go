package stats

import "skybyte/internal/sim"

// OpenStats accumulates one open-loop request population: how many
// requests the arrival process released (Admitted), how many ran to
// completion (Completed — at most Admitted; the in-service request at
// budget exhaustion counts only if it finishes), end-to-end sojourn
// latency measured from the arrival instant (so it includes the time a
// request queued behind a busy client thread), and that queueing
// component on its own (QueueDelay = service start − arrival). A System
// keeps one OpenStats per SLO class plus one grand total.
type OpenStats struct {
	Admitted   uint64
	Completed  uint64
	Latency    LatencyHist
	QueueDelay LatencyHist

	// FirstDone and LastDone bracket this population's completion span:
	// the instants of its first and last completed request. Goodput is
	// measured over this span — not the whole run — so one straggler
	// cohort (a heavy-tailed arrival process still draining) cannot
	// deflate every other class's delivered rate. Meaningless when
	// Completed == 0.
	FirstDone sim.Time
	LastDone  sim.Time
}

// Observe records one completed request at instant now: its sojourn
// latency and the queueing share of it.
func (o *OpenStats) Observe(now, latency, queueDelay sim.Time) {
	if o.Completed == 0 || now < o.FirstDone {
		o.FirstDone = now
	}
	if now > o.LastDone {
		o.LastDone = now
	}
	o.Completed++
	o.Latency.Observe(latency)
	o.QueueDelay.Observe(queueDelay)
}

// Merge folds other into o bucket for bucket, so per-class splits can
// be summed and compared against a total exactly.
func (o *OpenStats) Merge(other *OpenStats) {
	if other.Completed > 0 {
		if o.Completed == 0 || other.FirstDone < o.FirstDone {
			o.FirstDone = other.FirstDone
		}
		if other.LastDone > o.LastDone {
			o.LastDone = other.LastDone
		}
	}
	o.Admitted += other.Admitted
	o.Completed += other.Completed
	o.Latency.Merge(&other.Latency)
	o.QueueDelay.Merge(&other.QueueDelay)
}

// GoodputRPS returns completed requests per second over the population's
// own completion span (FirstDone..LastDone) — the delivered-rate
// companion to an arrival process's offered rate. The first completion
// anchors the span rather than counting toward the rate, so n requests
// over span s report (n−1)/s; fewer than two completions report 0.
func (o *OpenStats) GoodputRPS() float64 {
	if o.Completed < 2 {
		return 0
	}
	span := (o.LastDone - o.FirstDone).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(o.Completed-1) / span
}
