package stats

import (
	"math"
	"testing"

	"skybyte/internal/sim"
)

// TestOpenStatsObserve pins the request accounting: completion span
// endpoints track min/max completion instants and both histograms see
// every sample.
func TestOpenStatsObserve(t *testing.T) {
	var o OpenStats
	o.Admitted = 3
	o.Observe(10*sim.Microsecond, 2*sim.Microsecond, 1*sim.Microsecond)
	o.Observe(4*sim.Microsecond, 1*sim.Microsecond, 0)
	o.Observe(30*sim.Microsecond, 8*sim.Microsecond, 3*sim.Microsecond)
	if o.Completed != 3 {
		t.Fatalf("completed = %d", o.Completed)
	}
	if o.FirstDone != 4*sim.Microsecond || o.LastDone != 30*sim.Microsecond {
		t.Fatalf("span = [%v, %v], want [4us, 30us]", o.FirstDone, o.LastDone)
	}
	if o.Latency.Count() != 3 || o.QueueDelay.Count() != 3 {
		t.Fatal("histograms missed samples")
	}
	if got := o.Latency.Mean(); got != (2+1+8)*sim.Microsecond/3 {
		t.Fatalf("latency mean = %v", got)
	}
}

// TestOpenStatsGoodput pins the span-based estimator: N completions
// bracket N-1 inter-completion gaps, so goodput is (N-1)/span — and
// the degenerate shapes (no samples, one sample, zero span) all report
// 0 rather than dividing by nothing.
func TestOpenStatsGoodput(t *testing.T) {
	var o OpenStats
	if o.GoodputRPS() != 0 {
		t.Fatal("empty stats report nonzero goodput")
	}
	o.Observe(5*sim.Microsecond, sim.Microsecond, 0)
	if o.GoodputRPS() != 0 {
		t.Fatal("single completion reports nonzero goodput")
	}
	// Three completions at 5us, 10us, 25us: 2 gaps over 20us = 100k rps.
	o.Observe(10*sim.Microsecond, sim.Microsecond, 0)
	o.Observe(25*sim.Microsecond, sim.Microsecond, 0)
	if got := o.GoodputRPS(); math.Abs(got-100_000) > 1e-6 {
		t.Fatalf("goodput = %g, want 100000", got)
	}
	// Zero span (all completions at one instant) cannot divide.
	var z OpenStats
	z.Observe(7*sim.Microsecond, sim.Microsecond, 0)
	z.Observe(7*sim.Microsecond, sim.Microsecond, 0)
	if z.GoodputRPS() != 0 {
		t.Fatal("zero-span stats report nonzero goodput")
	}
}

// TestOpenStatsMerge: merging per-class splits must reproduce a
// whole-run accumulation exactly — counts add, spans take min/max, and
// an empty side never contributes its zero FirstDone.
func TestOpenStatsMerge(t *testing.T) {
	var a, b, whole OpenStats
	a.Admitted, b.Admitted = 2, 1
	for _, s := range []struct {
		dst             *OpenStats
		done, lat, qdel sim.Time
	}{
		{&a, 12 * sim.Microsecond, 3 * sim.Microsecond, sim.Microsecond},
		{&a, 40 * sim.Microsecond, 5 * sim.Microsecond, 0},
		{&b, 8 * sim.Microsecond, 2 * sim.Microsecond, 500 * sim.Nanosecond},
	} {
		s.dst.Observe(s.done, s.lat, s.qdel)
		whole.Observe(s.done, s.lat, s.qdel)
	}
	whole.Admitted = 3

	m := a
	m.Merge(&b)
	if m != whole {
		t.Fatalf("merge mismatch:\nmerged %+v\nwhole  %+v", m, whole)
	}
	if m.FirstDone != 8*sim.Microsecond || m.LastDone != 40*sim.Microsecond {
		t.Fatalf("merged span = [%v, %v]", m.FirstDone, m.LastDone)
	}

	// Merging an empty OpenStats is the identity.
	var empty OpenStats
	m2 := m
	m2.Merge(&empty)
	if m2 != m {
		t.Fatal("merging empty stats changed the accumulator")
	}
	// And merging INTO an empty one copies the span rather than
	// keeping the zero-valued FirstDone.
	var dst OpenStats
	dst.Merge(&b)
	if dst.FirstDone != 8*sim.Microsecond || dst.Completed != 1 {
		t.Fatalf("merge into empty: %+v", dst)
	}
}

// TestOpenStatsPercentiles pins the histogram quantization an
// open-loop report goes through: a 100 ns sample lands in the bucket
// whose lower bound is 96 ns, and that bound is what percentile
// queries return.
func TestOpenStatsPercentiles(t *testing.T) {
	var o OpenStats
	for i := 0; i < 99; i++ {
		o.Observe(sim.Time(i+1)*sim.Microsecond, 100*sim.Nanosecond, 0)
	}
	o.Observe(100*sim.Microsecond, 10*sim.Microsecond, 0)
	if got := o.Latency.Percentile(50); got != 96*sim.Nanosecond {
		t.Fatalf("p50 = %v, want 96ns (bucket floor of 100ns)", got)
	}
	if got := o.Latency.Percentile(99); got != 96*sim.Nanosecond {
		t.Fatalf("p99 = %v, want 96ns", got)
	}
	// The single 10us outlier is the top sample: p99.9 reaches its
	// bucket floor (10000 ns falls in the [9216, 10240) ns bucket).
	if got := o.Latency.Percentile(99.9); got != 9216*sim.Nanosecond {
		t.Fatalf("p99.9 = %v, want 9216ns", got)
	}
}
