// Package mem defines the address-space vocabulary shared by every memory
// component: cacheline and page geometry, address helpers, and the split
// between host DRAM and the CXL host-managed device memory (HDM) window.
package mem

// Addr is a physical (or, equivalently in this simulator, virtual) byte
// address. Workload arenas are mapped one-to-one, so a single address type
// suffices; the system package routes by address range and page table.
type Addr uint64

// Cacheline and flash-page geometry (Table II of the paper: 64 B lines,
// 4 KB flash pages, 64 lines per page).
const (
	LineBytes     = 64
	PageBytes     = 4096
	LinesPerPage  = PageBytes / LineBytes // 64
	LineShift     = 6
	PageShift     = 12
	LineInPageMsk = LinesPerPage - 1
)

// CXLBase is the start of the HDM window in the simulated physical address
// space. Everything below is host DRAM; everything at or above is backed by
// the CXL-SSD (unless the page has been promoted, which the system package
// tracks in its page table).
const CXLBase Addr = 1 << 40

// Line returns the address truncated to its cacheline.
func (a Addr) Line() Addr { return a &^ (LineBytes - 1) }

// Page returns the address truncated to its page.
func (a Addr) Page() Addr { return a &^ (PageBytes - 1) }

// LineIndex returns the index of the address's cacheline within its page
// (0..63).
func (a Addr) LineIndex() uint { return uint(a>>LineShift) & LineInPageMsk }

// PageNumber returns the page number (address / 4 KB).
func (a Addr) PageNumber() uint64 { return uint64(a) >> PageShift }

// LineNumber returns the line number (address / 64 B).
func (a Addr) LineNumber() uint64 { return uint64(a) >> LineShift }

// IsCXL reports whether the address falls in the HDM window.
func (a Addr) IsCXL() bool { return a >= CXLBase }

// KiB/MiB/GiB are convenience byte sizes for configuration literals.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)
