package mem

import (
	"testing"
	"testing/quick"
)

func TestLinePageHelpers(t *testing.T) {
	a := Addr(0x12345)
	if a.Line() != 0x12340 {
		t.Errorf("Line() = %#x, want 0x12340", a.Line())
	}
	if a.Page() != 0x12000 {
		t.Errorf("Page() = %#x, want 0x12000", a.Page())
	}
	if a.LineIndex() != (0x345 >> 6) {
		t.Errorf("LineIndex() = %d, want %d", a.LineIndex(), 0x345>>6)
	}
	if a.PageNumber() != 0x12 {
		t.Errorf("PageNumber() = %d, want 0x12", a.PageNumber())
	}
	if a.LineNumber() != 0x12345>>6 {
		t.Errorf("LineNumber() = %d", a.LineNumber())
	}
}

func TestIsCXL(t *testing.T) {
	if Addr(0).IsCXL() {
		t.Error("address 0 should be host DRAM")
	}
	if !CXLBase.IsCXL() {
		t.Error("CXLBase should be CXL")
	}
	if !(CXLBase + 123456).IsCXL() {
		t.Error("CXLBase+delta should be CXL")
	}
}

// Properties of the address decomposition: line/page truncation is
// idempotent, a line belongs to its page, and LineIndex is consistent with
// the line/page decomposition.
func TestAddrDecompositionProperties(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		if a.Line().Line() != a.Line() || a.Page().Page() != a.Page() {
			return false
		}
		if a.Line().Page() != a.Page() {
			return false
		}
		if a.Page()+Addr(a.LineIndex()*LineBytes) != a.Line() {
			return false
		}
		if a.LineNumber()*LineBytes != uint64(a.Line()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryConstants(t *testing.T) {
	if LinesPerPage != 64 {
		t.Fatalf("LinesPerPage = %d, want 64", LinesPerPage)
	}
	if 1<<LineShift != LineBytes || 1<<PageShift != PageBytes {
		t.Fatal("shift constants inconsistent with byte sizes")
	}
}
