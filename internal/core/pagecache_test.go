package core

import (
	"testing"
	"testing/quick"

	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

func TestPageCacheLookupInsert(t *testing.T) {
	pc := NewPageCache(8*mem.PageBytes, 4, false)
	if pc.Frames() != 8 || pc.SizeBytes() != 8*mem.PageBytes {
		t.Fatalf("geometry: %d frames, %d bytes", pc.Frames(), pc.SizeBytes())
	}
	if pc.Lookup(5) != nil {
		t.Fatal("cold lookup hit")
	}
	_, f, ok := pc.Insert(5)
	if !ok || f == nil || !f.Valid || f.LPA != 5 {
		t.Fatal("insert failed")
	}
	if pc.Lookup(5) == nil {
		t.Fatal("inserted page not found")
	}
	if pc.Stats.Hits != 1 || pc.Stats.Misses != 1 || pc.Stats.Inserts != 1 {
		t.Fatalf("stats = %+v", pc.Stats)
	}
}

func TestPageCacheLRUVictim(t *testing.T) {
	pc := NewPageCache(2*mem.PageBytes, 2, false) // one set, two ways
	pc.Insert(0)
	pc.Insert(2)
	pc.Lookup(0) // 2 becomes LRU
	victim, _, ok := pc.Insert(4)
	if !ok || !victim.Valid || victim.LPA != 2 {
		t.Fatalf("victim = %+v, want page 2", victim)
	}
}

func TestPageCachePinnedFramesSurvive(t *testing.T) {
	pc := NewPageCache(2*mem.PageBytes, 2, false)
	_, f0, _ := pc.Insert(0)
	f0.Migrating = true
	pc.Insert(2)
	// Both ways occupied; one pinned. The next insert must evict page 2.
	victim, _, ok := pc.Insert(4)
	if !ok || victim.LPA != 2 {
		t.Fatalf("eviction chose %+v; pinned frame must survive", victim)
	}
	// Pin the remaining evictable frame too: insert must now fail.
	pc.Peek(4).Migrating = true
	if _, _, ok := pc.Insert(6); ok {
		t.Fatal("insert succeeded with every candidate pinned")
	}
}

func TestPageFrameTouchMasksAndData(t *testing.T) {
	pc := NewPageCache(4*mem.PageBytes, 4, true)
	_, f, _ := pc.Insert(9)
	f.TouchRead(3)
	payload := make([]byte, mem.LineBytes)
	payload[0] = 0x5A
	f.TouchWrite(10, payload)
	if f.Accessed != (1<<3)|(1<<10) {
		t.Fatalf("accessed mask %b", f.Accessed)
	}
	if f.DirtyMsk != 1<<10 || !f.Dirty {
		t.Fatalf("dirty mask %b", f.DirtyMsk)
	}
	if f.Data[10*mem.LineBytes] != 0x5A {
		t.Fatal("payload not copied into frame")
	}
	if f.AccCount != 2 {
		t.Fatalf("AccCount = %d", f.AccCount)
	}
	f.ResetDirty()
	if f.Dirty || f.DirtyMsk != 0 {
		t.Fatal("ResetDirty incomplete")
	}
}

func TestPageCacheDrop(t *testing.T) {
	pc := NewPageCache(4*mem.PageBytes, 4, false)
	pc.Insert(7)
	was, present := pc.Drop(7)
	if !present || was.LPA != 7 {
		t.Fatal("drop of resident page failed")
	}
	if pc.Peek(7) != nil {
		t.Fatal("page still resident after drop")
	}
	if _, present := pc.Drop(7); present {
		t.Fatal("double drop reported presence")
	}
}

func TestPageCacheLocalitySamples(t *testing.T) {
	pc := NewPageCache(2*mem.PageBytes, 2, false)
	pc.TrackLocality = true
	_, f, _ := pc.Insert(0)
	for i := uint(0); i < 16; i++ {
		f.TouchRead(i)
	}
	pc.Insert(2)
	pc.Insert(4) // evicts page 0 (16/64 lines touched)
	if len(pc.ReadLocality.Samples) == 0 {
		t.Fatal("no locality sample on eviction")
	}
	if got := pc.ReadLocality.Samples[0]; got != 0.25 {
		t.Fatalf("sample = %v, want 0.25", got)
	}
}

// Property: residency matches a reference model under random
// insert/lookup/drop sequences, and occupancy never exceeds capacity.
func TestPageCacheAgainstModel(t *testing.T) {
	f := func(seed uint64) bool {
		pc := NewPageCache(8*mem.PageBytes, 4, false)
		rng := trace.NewRNG(seed)
		type entry struct {
			lpa   uint64
			stamp int
		}
		model := map[int][]entry{} // set -> entries
		stamp := 0
		setOf := func(lpa uint64) int { return int(lpa) % 2 } // 8 frames / 4 ways = 2 sets
		for op := 0; op < 2000; op++ {
			lpa := rng.Uint64n(24)
			set := setOf(lpa)
			switch rng.Intn(4) {
			case 0: // drop
				pc.Drop(lpa)
				es := model[set]
				for i := range es {
					if es[i].lpa == lpa {
						model[set] = append(es[:i], es[i+1:]...)
						break
					}
				}
			default: // lookup + insert on miss
				hit := pc.Lookup(lpa) != nil
				refHit := false
				es := model[set]
				for i := range es {
					if es[i].lpa == lpa {
						refHit = true
						stamp++
						es[i].stamp = stamp
						break
					}
				}
				if hit != refHit {
					return false
				}
				if !hit {
					if _, _, ok := pc.Insert(lpa); !ok {
						return false
					}
					stamp++
					if len(es) == 4 {
						lru := 0
						for i := range es {
							if es[i].stamp < es[lru].stamp {
								lru = i
							}
						}
						es = append(es[:lru], es[lru+1:]...)
					}
					model[set] = append(es, entry{lpa: lpa, stamp: stamp})
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
