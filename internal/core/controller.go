package core

import (
	"skybyte/internal/dram"
	"skybyte/internal/flash"
	"skybyte/internal/ftl"
	"skybyte/internal/mem"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/writelog"
)

// Config parameterises the controller. The knob names mirror the paper's
// artifact (write_log_enable, device_triggered_ctx_swt, cs_threshold,
// ssd_cache_size_byte, ssd_cache_way, promotion_enable).
type Config struct {
	// WriteLogEnabled turns on SkyByte's CXL-aware SSD DRAM management
	// (§III-B). Off = Base-CSSD page-granular RMW cache.
	WriteLogEnabled bool
	// WriteLogBytes is the total double-buffered log capacity (Table II:
	// 64 MB); each half holds WriteLogBytes/2.
	WriteLogBytes int
	// CacheBytes / CacheWays size the page-granular data cache (Table II:
	// 448 MB with the log, 512 MB without).
	CacheBytes int
	CacheWays  int

	// HintEnabled turns on the SkyByte-Delay NDR path (§III-A).
	HintEnabled bool
	// HintThreshold is the context-switch trigger threshold of Algorithm 1
	// (Table II: 2 µs).
	HintThreshold sim.Time

	// PrefetchNext enables Base-CSSD's next-page prefetch on read miss.
	PrefetchNext bool

	// LogIndexLatency / CacheIndexLatency are the FPGA-measured lookup
	// latencies (§V: 72 ns / 49 ns); parallel probing charges the max.
	LogIndexLatency   sim.Time
	CacheIndexLatency sim.Time

	// MigrationEnabled turns on hot-page promotion candidate tracking;
	// MigrationThreshold is the access count that nominates a page. Counts
	// are per flash page and persist across cache residencies (§III-C:
	// "the SSD controller tracks the access count of flash pages"), with a
	// lazy epoch decay so stale heat fades.
	MigrationEnabled   bool
	MigrationThreshold uint32
	// MigrationMinResidency additionally requires the page to have been
	// cached this long before nomination, filtering single-sweep streams.
	MigrationMinResidency sim.Time
	// HeatDecayInterval is the epoch length after which page heat halves.
	HeatDecayInterval sim.Time

	// CompactWavePerChannel bounds how many compaction page-writes are in
	// flight per flash channel, so background compaction cannot monopolise
	// the FIFO queues ahead of demand reads.
	CompactWavePerChannel int

	// TrackData enables the functional byte path end to end.
	TrackData bool
	// TrackLocality collects the Figs. 5–6 per-page line-usage CDFs.
	TrackLocality bool
}

// DefaultConfig returns SkyByte-Full controller defaults at Table II scale.
func DefaultConfig() Config {
	return Config{
		WriteLogEnabled:       true,
		WriteLogBytes:         64 * mem.MiB,
		CacheBytes:            448 * mem.MiB,
		CacheWays:             16,
		HintEnabled:           true,
		HintThreshold:         2 * sim.Microsecond,
		LogIndexLatency:       72 * sim.Nanosecond,
		CacheIndexLatency:     49 * sim.Nanosecond,
		MigrationEnabled:      false,
		MigrationThreshold:    32,
		MigrationMinResidency: 5 * sim.Microsecond,
		HeatDecayInterval:     200 * sim.Microsecond,
		CompactWavePerChannel: 4,
	}
}

// ReadMeta describes how a read was served, for system-level AMAT and
// request-class accounting (Figs. 16–17).
type ReadMeta struct {
	Class   stats.RequestClass // SSDReadHit or SSDReadMiss
	Index   sim.Time           // SSD DRAM index lookup time
	SSDDRAM sim.Time           // SSD DRAM array access time
	Flash   sim.Time           // flash wait (zero on hits)
	Data    []byte             // 64 B payload when tracking data
}

// TenantLogStats splits write-path activity by tenant group, so
// multi-tenant runs can show who fills the write log (and therefore
// who forces its compaction drains) and who eats backpressure stalls.
type TenantLogStats struct {
	// LinesAbsorbed counts cacheline writes the tenant appended to the
	// write log (SkyByte-W path).
	LinesAbsorbed uint64
	// StalledWrites counts the tenant's writes backpressured because
	// both log halves were full while compaction drained.
	StalledWrites uint64
	// RMWFetches counts Base-CSSD write-miss page fetches (the
	// read-modify-write path taken with the log disabled).
	RMWFetches uint64
}

// CompactionStats summarises write-log compactions.
type CompactionStats struct {
	Count     uint64
	TotalTime sim.Time
	Pages     uint64 // pages flushed across all compactions
}

// Mean returns the average compaction duration (the paper reports 146 µs).
func (c CompactionStats) Mean() sim.Time {
	if c.Count == 0 {
		return 0
	}
	return c.TotalTime / sim.Time(c.Count)
}

type fetchWaiter struct {
	t0       sim.Time
	idxLat   sim.Time
	off      uint64
	record   bool
	isWrite  bool
	pageOnly bool   // FetchPage waiter: fires accept once the page lands
	data     []byte // payload for RMW write waiters
	respond  func(ReadMeta)
	accept   func()
}

// fetchState tracks one in-flight page fetch. States are pooled on the
// controller: the flash-completion closure binds once at first allocation
// and survives reuse, and the waiter slice keeps its capacity, so
// steady-state misses don't allocate. A state recycles at the end of
// fetchDone, after it has left the fetches map and every waiter has been
// scheduled.
type fetchState struct {
	next         *fetchState
	lpa          uint64
	issuedAt     sim.Time
	expectedDone sim.Time
	waiters      []fetchWaiter
	prefetch     bool
	onData       func(data []byte)
}

// respEvt carries a deferred ReadMeta response; pooled per controller and
// dispatched through hRespond, replacing a per-response closure.
type respEvt struct {
	next    *respEvt
	respond func(ReadMeta)
	meta    ReadMeta
}

// hRespond delivers a pooled read response. The event record recycles
// before the callback runs: respond may issue a new request that reuses it.
var hRespond sim.HandlerID

func init() {
	hRespond = sim.RegisterHandler(func(_ uint64, p1, p2 any) {
		c := p1.(*Controller)
		r := p2.(*respEvt)
		respond, meta := r.respond, r.meta
		r.respond = nil
		r.meta = ReadMeta{}
		r.next = c.respFree
		c.respFree = r
		respond(meta)
	})
}

type pendingWrite struct {
	off    uint64
	data   []byte
	record bool
	tenant int
	accept func()
}

// Controller is the SkyByte CXL-SSD controller.
type Controller struct {
	eng  *sim.Engine
	cfg  Config
	arr  *flash.Array
	fl   *ftl.FTL
	dram *dram.DRAM

	cache   *PageCache
	logs    [2]*writelog.Log
	active  int
	fetches map[uint64]*fetchState
	heat    map[uint64]heatEntry // persistent per-flash-page access heat
	pinned  map[uint64]bool      // §IV data persistence: never promoted

	fetchFree *fetchState
	respFree  *respEvt

	compacting    bool
	compactStart  sim.Time
	compactPages  []uint64
	compactCursor int
	compactBusy   int
	pendingWrites []pendingWrite

	// Traffic is the flash-level cause-split accounting behind Figs. 18/20.
	Traffic stats.FlashTraffic
	// tenantLog splits write-path activity by the tenant index MemWr
	// receives; the slice grows on demand (solo runs use index 0 only).
	tenantLog []TenantLogStats
	// Compaction summarises background log compaction activity.
	Compaction CompactionStats
	// WriteLocality records the fraction of dirty lines per page flushed to
	// flash (Fig. 6): Base-CSSD dirty evictions and SkyByte compactions.
	WriteLocality stats.Distribution

	// OnPromoteCandidate, when set, fires as a cached page's access count
	// crosses the migration threshold (§III-C). The migration engine
	// decides and pins via MarkMigrating.
	OnPromoteCandidate func(lpa uint64)
}

// New builds a controller over the given flash array, FTL, and SSD DRAM.
func New(eng *sim.Engine, cfg Config, arr *flash.Array, fl *ftl.FTL, d *dram.DRAM) *Controller {
	c := &Controller{
		eng: eng, cfg: cfg, arr: arr, fl: fl, dram: d,
		fetches: make(map[uint64]*fetchState),
		heat:    make(map[uint64]heatEntry),
		pinned:  make(map[uint64]bool),
	}
	c.cache = NewPageCache(cfg.CacheBytes, cfg.CacheWays, cfg.TrackData)
	c.cache.TrackLocality = cfg.TrackLocality
	if cfg.WriteLogEnabled {
		half := cfg.WriteLogBytes / 2 / mem.LineBytes
		if half < 1 {
			half = 1
		}
		c.logs[0] = writelog.New(half, cfg.TrackData)
		c.logs[1] = writelog.New(half, cfg.TrackData)
	}
	return c
}

// Cache exposes the data cache (stats, locality distributions).
func (c *Controller) Cache() *PageCache { return c.cache }

// Logs returns the two write-log halves (nil when disabled).
func (c *Controller) Logs() [2]*writelog.Log { return c.logs }

// LogIndexBytes returns the current combined log index footprint.
func (c *Controller) LogIndexBytes() int {
	if !c.cfg.WriteLogEnabled {
		return 0
	}
	return c.logs[0].IndexBytes() + c.logs[1].IndexBytes()
}

// Compacting reports whether a log half is draining.
func (c *Controller) Compacting() bool { return c.compacting }

// respondAt schedules respond(meta) at time t through the pooled
// response path.
func (c *Controller) respondAt(t sim.Time, respond func(ReadMeta), meta ReadMeta) {
	r := c.respFree
	if r == nil {
		r = &respEvt{}
	} else {
		c.respFree = r.next
		r.next = nil
	}
	r.respond = respond
	r.meta = meta
	c.eng.AtH(t, hRespond, 0, c, r)
}

// getFetch pops a pooled fetch state, binding its flash-completion
// callback on first allocation.
func (c *Controller) getFetch(lpa uint64, issuedAt sim.Time) *fetchState {
	fs := c.fetchFree
	if fs == nil {
		fs = &fetchState{}
		fs.onData = func(data []byte) { c.fetchDone(fs, data) }
	} else {
		c.fetchFree = fs.next
		fs.next = nil
	}
	fs.lpa, fs.issuedAt, fs.expectedDone, fs.prefetch = lpa, issuedAt, 0, false
	return fs
}

func (c *Controller) putFetch(fs *fetchState) {
	clear(fs.waiters)
	fs.waiters = fs.waiters[:0]
	fs.next = c.fetchFree
	c.fetchFree = fs
}

func (c *Controller) activeLog() *writelog.Log { return c.logs[c.active] }
func (c *Controller) otherLog() *writelog.Log  { return c.logs[1-c.active] }

func (c *Controller) indexLatency() sim.Time {
	if c.cfg.WriteLogEnabled {
		return sim.Max(c.cfg.LogIndexLatency, c.cfg.CacheIndexLatency)
	}
	return c.cfg.CacheIndexLatency
}

// EstimateReadDelay is Algorithm 1: the queue-sum latency estimate for a
// read of lpa, plus whether GC traffic is draining on its channel (which
// forces an immediate context-switch hint).
func (c *Controller) EstimateReadDelay(lpa uint64) (est sim.Time, gcActive bool) {
	ch, ok := c.fl.ChannelOf(lpa)
	if !ok {
		return 0, false
	}
	return c.arr.EstimateDelay(ch), c.fl.GCActive(ch)
}

// MemRd serves a cacheline read at device byte offset off. Exactly one of
// respond / hint is eventually called: hint (if non-nil and the trigger
// policy fires) signals SkyByte-Delay and no data will follow.
func (c *Controller) MemRd(off uint64, record bool, respond func(ReadMeta), hint func(est sim.Time)) {
	t0 := c.eng.Now()
	lpa := off >> mem.PageShift
	lineIdx := mem.Addr(off).LineIndex()
	idxLat := c.indexLatency()
	c.bumpHeat(lpa)

	// Writes stalled on compaction backpressure are the newest data for
	// their lines; serve them like a log hit (they sit in the controller's
	// write buffer).
	if len(c.pendingWrites) > 0 {
		for i := len(c.pendingWrites) - 1; i >= 0; i-- {
			if c.pendingWrites[i].off>>mem.LineShift == off>>mem.LineShift {
				data := cloneLine(c.pendingWrites[i].data)
				done := c.dram.Access(mem.Addr(off), false, nil) + idxLat
				c.respondAt(done, respond, ReadMeta{Class: stats.SSDReadHit, Index: idxLat, SSDDRAM: done - t0 - idxLat, Data: data})
				return
			}
		}
	}

	// R1: data cache hit.
	if f := c.cache.Lookup(lpa); f != nil {
		f.TouchRead(lineIdx)
		c.maybePromote(f)
		data := c.frameLine(f, lineIdx)
		done := c.dram.Access(mem.Addr(off), false, nil) + idxLat
		c.respondAt(done, respond, ReadMeta{Class: stats.SSDReadHit, Index: idxLat, SSDDRAM: done - t0 - idxLat, Data: data})
		return
	}
	// R2: write log hit (parallel probe of both halves; newest first).
	if c.cfg.WriteLogEnabled {
		if data, ok := c.logLookup(off >> mem.LineShift); ok {
			done := c.dram.Access(mem.Addr(off), false, nil) + idxLat
			c.respondAt(done, respond, ReadMeta{Class: stats.SSDReadHit, Index: idxLat, SSDDRAM: done - t0 - idxLat, Data: data})
			return
		}
	}
	// R3: miss — fetch the whole page from flash.
	c.missRead(lpa, off, t0, idxLat, record, respond, hint)
}

func (c *Controller) logLookup(lineNo uint64) ([]byte, bool) {
	if d, ok := c.activeLog().Lookup(lineNo); ok {
		return d, true
	}
	if c.compacting {
		if d, ok := c.otherLog().Lookup(lineNo); ok {
			return d, true
		}
	}
	return nil, false
}

func (c *Controller) missRead(lpa, off uint64, t0, idxLat sim.Time, record bool, respond func(ReadMeta), hint func(sim.Time)) {
	fs, inFlight := c.fetches[lpa]
	if !inFlight {
		fs = c.getFetch(lpa, t0)
		c.fetches[lpa] = fs
		c.startFetch(fs, false)
	}
	// Trigger policy (Algorithm 1 plus the immediate-on-GC rule): the
	// controller sums the latency of the work queued ahead of the fetch —
	// with the die-parallel service model that sum is the fetch's
	// predicted completion. For merged requests it is the remaining time
	// of the fetch already in flight.
	if hint != nil && c.cfg.HintEnabled {
		_, gc := c.EstimateReadDelay(lpa)
		remaining := fs.expectedDone - t0
		if gc || remaining > c.cfg.HintThreshold {
			hint(remaining)
			return
		}
	}
	fs.waiters = append(fs.waiters, fetchWaiter{t0: t0, idxLat: idxLat, off: off, record: record, respond: respond})
}

func (c *Controller) startFetch(fs *fetchState, prefetch bool) {
	fs.prefetch = prefetch
	if prefetch {
		c.Traffic.PrefetchReads++
	} else {
		c.Traffic.HostReads++
	}
	fs.expectedDone = c.fl.Read(fs.lpa, fs.onData)
	// Base-CSSD optimisation: prefetch the next page on a demand miss.
	if !prefetch && c.cfg.PrefetchNext {
		next := fs.lpa + 1
		if next < c.fl.LogicalPages() && c.cache.Peek(next) == nil {
			if _, busy := c.fetches[next]; !busy {
				nfs := c.getFetch(next, c.eng.Now())
				c.fetches[next] = nfs
				c.startFetch(nfs, true)
			}
		}
	}
}

// fetchDone installs the fetched page (merging logged lines, §III-B R3)
// and answers all waiters.
func (c *Controller) fetchDone(fs *fetchState, flashData []byte) {
	delete(c.fetches, fs.lpa)
	flashDone := c.eng.Now()
	// Page fill into SSD DRAM.
	pageOff := mem.Addr(fs.lpa << mem.PageShift)
	fillDone := c.dram.AccessBytes(pageOff, mem.PageBytes, true, nil)

	victim, f, ok := c.cache.Insert(fs.lpa)
	if ok {
		if victim.Valid {
			c.evictFrame(victim)
		}
		f.InsertedAt = int64(c.eng.Now())
		if f.Data != nil {
			copy(f.Data, flashData)
		}
		c.mergeLogInto(f)
	}
	for _, w := range fs.waiters {
		if w.pageOnly {
			c.eng.At(fillDone, w.accept)
			continue
		}
		if w.isWrite {
			if f != nil && ok {
				f.TouchWrite(mem.Addr(w.off).LineIndex(), w.data)
				c.maybePromote(f)
			}
			done := sim.Max(fillDone, c.dram.Access(mem.Addr(w.off), true, nil))
			c.eng.At(done, w.accept)
			continue
		}
		var data []byte
		if f != nil && ok {
			f.TouchRead(mem.Addr(w.off).LineIndex())
			c.maybePromote(f)
			data = c.frameLine(f, mem.Addr(w.off).LineIndex())
		}
		flashWait := flashDone - w.t0 - w.idxLat
		if flashWait < 0 {
			flashWait = 0
		}
		done := sim.Max(fillDone, c.dram.Access(mem.Addr(w.off), false, nil))
		c.respondAt(done, w.respond, ReadMeta{
			Class:   stats.SSDReadMiss,
			Index:   w.idxLat,
			Flash:   flashWait,
			SSDDRAM: done - flashDone,
			Data:    data,
		})
	}
	c.putFetch(fs)
}

// mergeLogInto applies logged lines of the frame's page (older half first,
// active half last so newest data wins).
func (c *Controller) mergeLogInto(f *PageFrame) {
	if !c.cfg.WriteLogEnabled {
		return
	}
	apply := func(l *writelog.Log) {
		for _, le := range l.PageLines(f.LPA) {
			if f.Data != nil && le.Data != nil {
				copy(f.Data[int(le.Offset)*mem.LineBytes:], le.Data)
			}
		}
	}
	if c.compacting {
		apply(c.otherLog())
	}
	apply(c.activeLog())
}

func (c *Controller) frameLine(f *PageFrame, lineIdx uint) []byte {
	if f.Data == nil {
		return nil
	}
	out := make([]byte, mem.LineBytes)
	copy(out, f.Data[int(lineIdx)*mem.LineBytes:])
	return out
}

// evictFrame handles a data-cache eviction. With the write log, eviction is
// free (dirty lines live in the log); in Base-CSSD a dirty page writes back
// to flash — the write-amplification source §II-C identifies.
func (c *Controller) evictFrame(v PageFrame) {
	if c.cfg.WriteLogEnabled || !v.Dirty {
		return
	}
	c.noteWriteLocality(popcount64(v.DirtyMsk))
	c.Traffic.HostPrograms++
	c.fl.Write(v.LPA, v.Data, nil)
}

func popcount64(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func (c *Controller) noteWriteLocality(dirtyLines int) {
	if c.cfg.TrackLocality {
		c.WriteLocality.Add(float64(dirtyLines) / float64(mem.LinesPerPage))
	}
}

// tenantAcct returns the per-tenant write accounting slot for index n,
// growing the slice on demand.
func (c *Controller) tenantAcct(n int) *TenantLogStats {
	if n < 0 {
		n = 0
	}
	for len(c.tenantLog) <= n {
		c.tenantLog = append(c.tenantLog, TenantLogStats{})
	}
	return &c.tenantLog[n]
}

// TenantLog returns the per-tenant write-path accounting, indexed by
// the tenant values MemWr received. The returned slice is a copy.
func (c *Controller) TenantLog() []TenantLogStats {
	return append([]TenantLogStats(nil), c.tenantLog...)
}

// MemWr absorbs a cacheline writeback at device byte offset off; accepted
// fires when the device has taken ownership (the host's writeback credit
// returns then). tenant attributes the write to a tenant group for the
// per-tenant log accounting (0 in solo runs).
func (c *Controller) MemWr(off uint64, data []byte, record bool, tenant int, accepted func()) {
	lpa := off >> mem.PageShift
	lineIdx := mem.Addr(off).LineIndex()
	c.bumpHeat(lpa)

	if !c.cfg.WriteLogEnabled {
		// Base-CSSD: page-granular read-modify-write cache.
		if f := c.cache.Lookup(lpa); f != nil {
			f.TouchWrite(lineIdx, data)
			c.maybePromote(f)
			done := c.dram.Access(mem.Addr(off), true, nil)
			c.eng.At(done, accepted)
			return
		}
		// Write miss: fetch the page first (RMW), then dirty the line.
		c.tenantAcct(tenant).RMWFetches++
		fs, inFlight := c.fetches[lpa]
		if !inFlight {
			fs = c.getFetch(lpa, c.eng.Now())
			c.fetches[lpa] = fs
			c.startFetch(fs, false)
		}
		fs.waiters = append(fs.waiters, fetchWaiter{
			t0: c.eng.Now(), idxLat: c.cfg.CacheIndexLatency, off: off,
			record: record, isWrite: true, data: cloneLine(data), accept: accepted,
		})
		return
	}

	// SkyByte-W: W1 append to the active log half.
	if c.activeLog().Full() {
		c.switchLogs()
	}
	if c.activeLog().Full() {
		// Both halves full: compaction is still draining. Backpressure the
		// host until space frees.
		c.tenantAcct(tenant).StalledWrites++
		c.pendingWrites = append(c.pendingWrites, pendingWrite{off: off, data: cloneLine(data), record: record, tenant: tenant, accept: accepted})
		return
	}
	c.activeLog().Append(off>>mem.LineShift, data)
	c.Traffic.LinesAbsorbed++
	c.tenantAcct(tenant).LinesAbsorbed++
	// W2: parallel update of the data cache copy.
	if f := c.cache.Peek(lpa); f != nil {
		f.TouchWrite(lineIdx, data)
		c.maybePromote(f)
	}
	// W3 (index update) is charged within the DRAM write.
	done := c.dram.Access(mem.Addr(off), true, nil)
	c.eng.At(done, accepted)
}

func cloneLine(d []byte) []byte {
	if d == nil {
		return nil
	}
	out := make([]byte, mem.LineBytes)
	copy(out, d)
	return out
}

// --- log compaction (Fig. 13, L1–L5) ---

func (c *Controller) switchLogs() {
	if c.compacting {
		return
	}
	old := c.activeLog()
	c.active = 1 - c.active
	c.compacting = true
	c.compactStart = c.eng.Now()
	c.compactPages = old.Pages() // L1: first-level table traversal
	c.compactCursor = 0
	c.compactWave()
}

// compactWave flushes the next batch of pages, bounded per channel so
// compaction stays in the background rather than monopolising the queues.
func (c *Controller) compactWave() {
	old := c.otherLog()
	budget := c.cfg.CompactWavePerChannel * c.arr.Geo.Channels
	if budget < 1 {
		budget = 1
	}
	for c.compactCursor < len(c.compactPages) && c.compactBusy < budget {
		lpa := c.compactPages[c.compactCursor]
		c.compactCursor++
		lines := old.PageLines(lpa) // L4 source
		if len(lines) == 0 {
			continue // invalidated (e.g. migrated away)
		}
		c.Compaction.Pages++
		c.Traffic.LinesCoalesced += uint64(len(lines))
		c.noteWriteLocality(len(lines))
		c.compactBusy++
		if f := c.cache.Peek(lpa); f != nil {
			// L2: the cached copy is current (W2 kept it in sync) — flush it.
			c.Traffic.CompactWrites++
			c.fl.Write(lpa, f.Data, func() { c.compactOpDone() })
			continue
		}
		// L3: load into the coalescing buffer, L4 merge, L5 write back.
		c.Traffic.CompactReads++
		target, merged := lpa, lines
		c.fl.Read(target, func(pageData []byte) {
			page := c.mergeLines(pageData, merged)
			c.Traffic.CompactWrites++
			c.fl.Write(target, page, func() { c.compactOpDone() })
		})
	}
	if c.compactBusy == 0 {
		c.finishCompaction()
	}
}

func (c *Controller) mergeLines(pageData []byte, lines []writelog.LineEntry) []byte {
	if !c.cfg.TrackData {
		return nil
	}
	merged := make([]byte, mem.PageBytes)
	copy(merged, pageData)
	for _, le := range lines {
		if le.Data != nil {
			copy(merged[int(le.Offset)*mem.LineBytes:], le.Data)
		}
	}
	return merged
}

func (c *Controller) compactOpDone() {
	c.compactBusy--
	if c.compactBusy == 0 {
		if c.compactCursor < len(c.compactPages) {
			c.compactWave()
		} else {
			c.finishCompaction()
		}
	}
}

func (c *Controller) finishCompaction() {
	c.Compaction.Count++
	c.Compaction.TotalTime += c.eng.Now() - c.compactStart
	c.otherLog().Reset()
	c.compacting = false
	c.compactPages = nil
	// Drain writes that stalled while both halves were full.
	pend := c.pendingWrites
	c.pendingWrites = nil
	for _, pw := range pend {
		c.MemWr(pw.off, pw.data, pw.record, pw.tenant, pw.accept)
	}
}

// --- migration support (§III-C) ---

type heatEntry struct {
	epoch uint32
	count uint32
}

// bumpHeat increments lpa's persistent access counter, lazily halving it
// per elapsed decay epoch, and returns the current heat.
func (c *Controller) bumpHeat(lpa uint64) uint32 {
	if !c.cfg.MigrationEnabled {
		return 0
	}
	cur := uint32(0)
	if c.cfg.HeatDecayInterval > 0 {
		cur = uint32(c.eng.Now() / c.cfg.HeatDecayInterval)
	}
	e := c.heat[lpa]
	if e.epoch < cur {
		shift := cur - e.epoch
		if shift > 31 {
			shift = 31
		}
		e.count >>= shift
		e.epoch = cur
	}
	e.count++
	c.heat[lpa] = e
	return e.count
}

// ResetHeat clears a page's heat (after promotion or demotion, so it must
// re-earn hotness).
func (c *Controller) ResetHeat(lpa uint64) { delete(c.heat, lpa) }

// PinPage marks a page persistent (§IV "Data persistence support"): it
// will never be nominated for promotion to volatile host DRAM, so clwb'd
// lines are guaranteed to reach the battery-backed SSD DRAM and stay under
// the device's power-fail domain.
func (c *Controller) PinPage(lpa uint64) { c.pinned[lpa] = true }

// UnpinPage releases a persistence pin.
func (c *Controller) UnpinPage(lpa uint64) { delete(c.pinned, lpa) }

// Pinned reports whether the page is pinned to the device.
func (c *Controller) Pinned(lpa uint64) bool { return c.pinned[lpa] }

func (c *Controller) maybePromote(f *PageFrame) {
	if !c.cfg.MigrationEnabled || f.Migrating || f.Nominated || c.OnPromoteCandidate == nil {
		return
	}
	if c.pinned[f.LPA] {
		return
	}
	if c.heat[f.LPA].count < c.cfg.MigrationThreshold {
		return
	}
	if c.eng.Now()-sim.Time(f.InsertedAt) < c.cfg.MigrationMinResidency {
		return
	}
	f.Nominated = true
	c.OnPromoteCandidate(f.LPA)
}

// FetchPage ensures lpa's page is resident in the data cache, fetching it
// from flash if needed, then fires done. TPP-style promotion (which picks
// pages regardless of residency) and AstriFlash's host page cache use this
// page-granular path.
func (c *Controller) FetchPage(lpa uint64, done func()) {
	if c.cache.Peek(lpa) != nil {
		done()
		return
	}
	fs, inFlight := c.fetches[lpa]
	if !inFlight {
		fs = c.getFetch(lpa, c.eng.Now())
		c.fetches[lpa] = fs
		c.startFetch(fs, false)
	}
	fs.waiters = append(fs.waiters, fetchWaiter{t0: c.eng.Now(), off: lpa << mem.PageShift, pageOnly: true, accept: done})
}

// MarkMigrating pins a cached page for promotion; reports false if the
// page is no longer resident (the candidate evaporated).
func (c *Controller) MarkMigrating(lpa uint64) bool {
	f := c.cache.Peek(lpa)
	if f == nil {
		return false
	}
	f.Migrating = true
	return true
}

// FinishMigration completes a promotion: it returns the page's current
// content (frame merged with any logged lines), drops the frame, voids the
// log index entries, and trims the stale flash mapping.
func (c *Controller) FinishMigration(lpa uint64) (data []byte, ok bool) {
	f := c.cache.Peek(lpa)
	if f == nil {
		return nil, false
	}
	c.mergeLogInto(f)
	if f.Data != nil {
		data = make([]byte, mem.PageBytes)
		copy(data, f.Data)
	}
	c.cache.Drop(lpa)
	if c.cfg.WriteLogEnabled {
		c.activeLog().InvalidatePage(lpa)
		if c.compacting {
			c.otherLog().InvalidatePage(lpa)
		}
	}
	c.fl.Trim(lpa)
	c.ResetHeat(lpa)
	return data, true
}

// AbortMigration unpins a page whose promotion was declined (e.g. the PLB
// was full).
func (c *Controller) AbortMigration(lpa uint64) {
	if f := c.cache.Peek(lpa); f != nil {
		f.Migrating = false
		f.Nominated = false
		f.AccCount = 0
	}
}

// WritePage programs a full page through the FTL, bypassing the write log —
// the demotion path ("we then allocate a new page in the CXL memory space
// and perform the page copy"). The demoted page's heat resets so it must
// re-earn promotion.
func (c *Controller) WritePage(lpa uint64, data []byte, accepted func()) {
	c.Traffic.DemoteWrites++
	c.ResetHeat(lpa)
	c.fl.Write(lpa, data, accepted)
}

// ReadPageDirect fetches a page's full current content for test oracles:
// cache, then log overlay, then flash. It is synchronous metadata-wise and
// only valid with TrackData.
func (c *Controller) ReadPageDirect(lpa uint64, done func(data []byte)) {
	if f := c.cache.Peek(lpa); f != nil {
		c.mergeLogInto(f)
		out := make([]byte, mem.PageBytes)
		copy(out, f.Data)
		done(out)
		return
	}
	c.fl.Read(lpa, func(flashData []byte) {
		out := make([]byte, mem.PageBytes)
		copy(out, flashData)
		tmp := &PageFrame{LPA: lpa, Data: out}
		c.mergeLogInto(tmp)
		done(out)
	})
}
