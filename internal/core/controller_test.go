package core

import (
	"bytes"
	"testing"

	"skybyte/internal/dram"
	"skybyte/internal/flash"
	"skybyte/internal/ftl"
	"skybyte/internal/mem"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/trace"
)

type crig struct {
	eng *sim.Engine
	arr *flash.Array
	fl  *ftl.FTL
	c   *Controller
}

func newRig(cfg Config) *crig {
	eng := &sim.Engine{}
	geo := flash.Geometry{Channels: 4, ChipsPerChan: 1, DiesPerChip: 1, PlanesPerDie: 1, BlocksPerPlane: 16, PagesPerBlock: 32}
	arr := flash.New(eng, geo, flash.TimingULL)
	arr.TrackData = cfg.TrackData
	fl := ftl.New(eng, arr, ftl.DefaultConfig())
	// Map the logical space so reads have real flash latency (the paper
	// preconditions the SSD and stores all data there initially).
	fl.Precondition(1.0, 0.1, 3)
	d := dram.New(eng, dram.SSDLPDDR4())
	return &crig{eng: eng, arr: arr, fl: fl, c: New(eng, cfg, arr, fl, d)}
}

func testConfig(writeLog bool) Config {
	cfg := DefaultConfig()
	cfg.WriteLogEnabled = writeLog
	cfg.WriteLogBytes = 16 * mem.KiB // two halves of 128 lines
	cfg.CacheBytes = 64 * mem.PageBytes
	cfg.CacheWays = 8
	cfg.HintEnabled = false
	cfg.TrackData = true
	return cfg
}

func off(lpa, line uint64) uint64 { return lpa*mem.PageBytes + line*mem.LineBytes }

func linePayload(v byte) []byte { return bytes.Repeat([]byte{v}, mem.LineBytes) }

// readSync runs the engine until the read responds.
func (r *crig) readSync(t *testing.T, o uint64) ReadMeta {
	t.Helper()
	var meta ReadMeta
	got := false
	r.c.MemRd(o, true, func(m ReadMeta) { meta = m; got = true }, nil)
	r.eng.Run()
	if !got {
		t.Fatalf("read of offset %#x never responded", o)
	}
	return meta
}

func (r *crig) writeSync(t *testing.T, o uint64, data []byte) {
	t.Helper()
	done := false
	r.c.MemWr(o, data, true, 0, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatalf("write of offset %#x never accepted", o)
	}
}

func TestBaseReadMissThenHit(t *testing.T) {
	r := newRig(testConfig(false))
	m := r.readSync(t, off(5, 3))
	if m.Class != stats.SSDReadMiss {
		t.Fatalf("first read class = %v, want miss", m.Class)
	}
	if m.Flash < 2*sim.Microsecond {
		t.Fatalf("miss flash wait = %v, want ~3µs", m.Flash)
	}
	m2 := r.readSync(t, off(5, 7))
	if m2.Class != stats.SSDReadHit {
		t.Fatalf("second read in same page = %v, want hit (page-granular cache)", m2.Class)
	}
	if m2.Flash != 0 {
		t.Fatal("hit should have no flash component")
	}
	if m2.Index != r.c.cfg.CacheIndexLatency {
		t.Fatalf("Base index latency = %v, want 49ns", m2.Index)
	}
}

func TestSkyByteIndexLatencyIsMax(t *testing.T) {
	r := newRig(testConfig(true))
	r.writeSync(t, off(1, 1), linePayload(7))
	m := r.readSync(t, off(1, 1))
	if m.Index != 72*sim.Nanosecond {
		t.Fatalf("parallel probe latency = %v, want max(72,49)ns", m.Index)
	}
}

func TestBaseWriteMissDoesRMW(t *testing.T) {
	r := newRig(testConfig(false))
	start := r.eng.Now()
	var acceptedAt sim.Time
	r.c.MemWr(off(9, 0), linePayload(1), true, 0, func() { acceptedAt = r.eng.Now() })
	r.eng.Run()
	if acceptedAt-start < 2*sim.Microsecond {
		t.Fatalf("Base write miss accepted in %v: RMW page fetch expected", acceptedAt-start)
	}
	if r.arr.Stats().Reads == 0 {
		t.Fatal("RMW did not read the page from flash")
	}
}

func TestWriteLogAbsorbsWritesFast(t *testing.T) {
	r := newRig(testConfig(true))
	start := r.eng.Now()
	var acceptedAt sim.Time
	r.c.MemWr(off(9, 0), linePayload(1), true, 0, func() { acceptedAt = r.eng.Now() })
	r.eng.Run()
	if acceptedAt-start > sim.Microsecond {
		t.Fatalf("logged write accepted in %v: should be DRAM-fast", acceptedAt-start)
	}
	if r.arr.Stats().Reads != 0 || r.arr.Stats().Programs != 0 {
		t.Fatal("logged write touched flash")
	}
	if r.c.Traffic.LinesAbsorbed != 1 {
		t.Fatal("absorbed line not counted")
	}
}

func TestReadHitsWriteLog(t *testing.T) {
	r := newRig(testConfig(true))
	r.writeSync(t, off(3, 5), linePayload(0xAB))
	m := r.readSync(t, off(3, 5))
	if m.Class != stats.SSDReadHit {
		t.Fatalf("read of logged line = %v, want hit", m.Class)
	}
	if m.Data == nil || m.Data[0] != 0xAB {
		t.Fatal("logged data not returned")
	}
}

func TestFetchMergesLoggedLines(t *testing.T) {
	r := newRig(testConfig(true))
	// Log a line of page 4, then read a different line of page 4: the
	// fetch must install the page with the logged line merged.
	r.writeSync(t, off(4, 10), linePayload(0xCD))
	m := r.readSync(t, off(4, 11))
	if m.Class != stats.SSDReadMiss {
		t.Fatalf("class = %v, want miss", m.Class)
	}
	// Now the cached frame must contain the logged line.
	m2 := r.readSync(t, off(4, 10))
	if m2.Class != stats.SSDReadHit || m2.Data[0] != 0xCD {
		t.Fatalf("merged line wrong: class=%v data=%v", m2.Class, m2.Data[:1])
	}
}

func TestCompactionCoalescesWrites(t *testing.T) {
	r := newRig(testConfig(true))
	// 128 lines fill one half: 64 writes to page 0 + 64 to page 1 →
	// compaction should program exactly 2 pages (plus coalescing reads).
	for i := uint64(0); i < 64; i++ {
		r.writeSync(t, off(0, i), linePayload(byte(i)))
	}
	for i := uint64(0); i < 64; i++ {
		r.writeSync(t, off(1, i), linePayload(byte(i)))
	}
	// One more write triggers the switch.
	r.writeSync(t, off(2, 0), linePayload(9))
	r.eng.Run()
	if r.c.Compaction.Count != 1 {
		t.Fatalf("compactions = %d, want 1", r.c.Compaction.Count)
	}
	if got := r.c.Traffic.CompactWrites; got != 2 {
		t.Fatalf("compaction programs = %d, want 2 (64+64 lines coalesced)", got)
	}
	if r.c.Traffic.LinesCoalesced != 128 {
		t.Fatalf("coalesced lines = %d, want 128", r.c.Traffic.LinesCoalesced)
	}
}

func TestCompactionDropsStaleUpdates(t *testing.T) {
	r := newRig(testConfig(true))
	// Overwrite the same line 128 times: the log fills with duplicates but
	// compaction writes the page once with only the newest value.
	for i := 0; i < 128; i++ {
		r.writeSync(t, off(0, 0), linePayload(byte(i)))
	}
	r.writeSync(t, off(1, 0), linePayload(99)) // trigger switch
	r.eng.Run()
	if r.c.Traffic.CompactWrites != 1 {
		t.Fatalf("programs = %d, want 1", r.c.Traffic.CompactWrites)
	}
	m := r.readSync(t, off(0, 0))
	if m.Data[0] != 127 {
		t.Fatalf("newest value lost: got %d", m.Data[0])
	}
}

func TestDoubleBufferBackpressure(t *testing.T) {
	r := newRig(testConfig(true))
	// Fill both halves without running the engine (compaction can't make
	// progress), then verify the next write stalls until compaction runs.
	accepted := 0
	for i := uint64(0); i < 256; i++ {
		r.c.MemWr(off(i/64, i%64), linePayload(byte(i)), true, 0, func() { accepted++ })
	}
	stalled := false
	r.c.MemWr(off(60, 0), linePayload(1), true, 0, func() { stalled = true })
	if stalled {
		t.Fatal("write accepted while both halves full")
	}
	r.eng.Run()
	if !stalled {
		t.Fatal("pended write never drained")
	}
	if accepted != 256 {
		t.Fatalf("accepted = %d, want 256", accepted)
	}
}

func TestBaseDirtyEvictionPrograms(t *testing.T) {
	cfg := testConfig(false)
	cfg.CacheBytes = 8 * mem.PageBytes // tiny: 1 set x 8 ways
	cfg.CacheWays = 8
	r := newRig(cfg)
	// Dirty 9 distinct pages: at least one dirty eviction must program.
	for p := uint64(0); p < 9; p++ {
		r.writeSync(t, off(p, 0), linePayload(byte(p)))
	}
	if r.c.Traffic.HostPrograms == 0 {
		t.Fatal("dirty eviction did not program flash")
	}
}

func TestSkyByteEvictionIsFree(t *testing.T) {
	cfg := testConfig(true)
	cfg.CacheBytes = 8 * mem.PageBytes
	cfg.CacheWays = 8
	r := newRig(cfg)
	// Read 16 distinct pages (fills + evictions); no programs should occur.
	for p := uint64(0); p < 16; p++ {
		r.readSync(t, off(p, 0))
	}
	if r.arr.Stats().Programs != 0 {
		t.Fatal("clean/log-backed eviction programmed flash")
	}
}

func TestPrefetchNextPage(t *testing.T) {
	cfg := testConfig(false)
	cfg.PrefetchNext = true
	r := newRig(cfg)
	r.readSync(t, off(10, 0))
	if r.c.Traffic.PrefetchReads != 1 {
		t.Fatalf("prefetch reads = %d, want 1", r.c.Traffic.PrefetchReads)
	}
	m := r.readSync(t, off(11, 0))
	if m.Class != stats.SSDReadHit {
		t.Fatalf("prefetched page read = %v, want hit", m.Class)
	}
}

func TestHintFiresWhenEstimateExceedsThreshold(t *testing.T) {
	cfg := testConfig(true)
	cfg.HintEnabled = true
	cfg.HintThreshold = 2 * sim.Microsecond
	r := newRig(cfg)
	// tR = 3µs > 2µs: a cold miss must hint rather than respond.
	hinted := false
	responded := false
	r.c.MemRd(off(5, 0), true, func(ReadMeta) { responded = true }, func(est sim.Time) {
		hinted = true
		if est < 2*sim.Microsecond {
			t.Errorf("hint estimate %v below tR", est)
		}
	})
	r.eng.Run()
	if !hinted || responded {
		t.Fatalf("hinted=%v responded=%v; want hint only", hinted, responded)
	}
	// The fetch continued in the background: the page is now cached.
	m := r.readSync(t, off(5, 0))
	if m.Class != stats.SSDReadHit {
		t.Fatalf("re-issued read = %v, want hit (fetch continued)", m.Class)
	}
}

func TestHintThresholdRespected(t *testing.T) {
	cfg := testConfig(true)
	cfg.HintEnabled = true
	cfg.HintThreshold = 10 * sim.Microsecond // above tR: never hint on idle queue
	r := newRig(cfg)
	m := r.readSync(t, off(5, 0))
	if m.Class != stats.SSDReadMiss {
		t.Fatal("read should have completed as a miss without hinting")
	}
}

func TestMergedRequestHintUsesRemainingTime(t *testing.T) {
	cfg := testConfig(true)
	cfg.HintEnabled = true
	cfg.HintThreshold = 2 * sim.Microsecond
	r := newRig(cfg)
	hints := 0
	r.c.MemRd(off(5, 0), true, func(ReadMeta) {}, func(sim.Time) { hints++ })
	// 2.5µs later the fetch has ~0.5µs left: a merged request should NOT
	// hint (remaining < threshold) and instead wait for the data.
	responded := false
	r.eng.At(2500*sim.Nanosecond, func() {
		r.c.MemRd(off(5, 1), true, func(ReadMeta) { responded = true }, func(sim.Time) { hints++ })
	})
	r.eng.Run()
	if hints != 1 {
		t.Fatalf("hints = %d, want 1 (merged request should wait)", hints)
	}
	if !responded {
		t.Fatal("merged request never got data")
	}
}

func TestMigrationCandidateAndCompletion(t *testing.T) {
	cfg := testConfig(true)
	cfg.MigrationEnabled = true
	cfg.MigrationThreshold = 4
	cfg.MigrationMinResidency = 0 // this test exercises the count gate only
	r := newRig(cfg)
	var candidate uint64
	fired := 0
	r.c.OnPromoteCandidate = func(lpa uint64) { candidate = lpa; fired++ }
	r.writeSync(t, off(7, 0), linePayload(0x11))
	r.readSync(t, off(7, 1)) // fetch page into cache (touch 1)
	for i := 0; i < 5; i++ {
		r.readSync(t, off(7, uint64(i)))
	}
	if fired != 1 || candidate != 7 {
		t.Fatalf("candidate fired=%d lpa=%d, want once for page 7", fired, candidate)
	}
	if !r.c.MarkMigrating(7) {
		t.Fatal("MarkMigrating failed for resident page")
	}
	data, ok := r.c.FinishMigration(7)
	if !ok || data == nil {
		t.Fatal("FinishMigration failed")
	}
	if data[0] != 0x11 {
		t.Fatal("migrated page missing logged write")
	}
	if r.c.cache.Peek(7) != nil {
		t.Fatal("frame not dropped after migration")
	}
	if _, mapped := r.fl.Translate(7); mapped {
		t.Fatal("flash mapping not trimmed after migration")
	}
}

func TestAbortMigrationUnpins(t *testing.T) {
	cfg := testConfig(true)
	cfg.MigrationEnabled = true
	cfg.MigrationThreshold = 2
	cfg.MigrationMinResidency = 0
	r := newRig(cfg)
	r.readSync(t, off(3, 0))
	r.readSync(t, off(3, 1))
	r.c.MarkMigrating(3)
	r.c.AbortMigration(3)
	f := r.c.cache.Peek(3)
	if f == nil || f.Migrating || f.AccCount != 0 {
		t.Fatal("abort did not unpin/reset")
	}
}

// The strongest oracle: random cacheline reads/writes through the full
// controller (write log, compaction, cache evictions, FTL GC underneath)
// must always return the newest written data.
func TestFunctionalModelRandomOps(t *testing.T) {
	for _, writeLog := range []bool{true, false} {
		cfg := testConfig(writeLog)
		cfg.CacheBytes = 16 * mem.PageBytes
		cfg.CacheWays = 4
		r := newRig(cfg)
		rng := trace.NewRNG(42)
		model := map[uint64]byte{}     // lineNo -> newest value
		version := map[uint64]uint64{} // lineNo -> write count
		const pages = 64
		var mismatches int
		for op := 0; op < 2500; op++ {
			lpa := rng.Uint64n(pages)
			line := rng.Uint64n(mem.LinesPerPage)
			o := off(lpa, line)
			ln := o >> mem.LineShift
			if rng.Bool(0.45) {
				v := byte(rng.Uint64())
				r.c.MemWr(o, linePayload(v), true, 0, func() {})
				model[ln] = v
				version[ln]++
			} else if want, wrote := model[ln], version[ln] > 0; wrote {
				issueVer := version[ln]
				r.c.MemRd(o, true, func(m ReadMeta) {
					// Skip if a newer write raced the response; otherwise
					// the response must carry the issue-time value.
					if version[ln] != issueVer {
						return
					}
					if m.Data == nil || m.Data[0] != want {
						mismatches++
					}
				}, nil)
			} else {
				r.c.MemRd(o, true, func(ReadMeta) {}, nil)
			}
			if op%97 == 0 {
				r.eng.Run()
			}
		}
		r.eng.Run()
		if mismatches != 0 {
			t.Fatalf("writeLog=%v: %d data mismatches", writeLog, mismatches)
		}
		if err := r.fl.CheckInvariants(); err != nil {
			t.Fatalf("writeLog=%v: %v", writeLog, err)
		}
	}
}

func TestWriteTrafficReduction(t *testing.T) {
	// The paper's Fig. 18 mechanism in miniature: sparse writes to a hot
	// line set, interleaved with reads that thrash the page cache. Base
	// flushes a near-empty dirty page per write; the log coalesces
	// duplicates across its much larger effective window.
	run := func(writeLog bool) uint64 {
		cfg := testConfig(writeLog)
		cfg.CacheBytes = 16 * mem.PageBytes
		cfg.CacheWays = 4
		r := newRig(cfg)
		rng := trace.NewRNG(5)
		for op := 0; op < 1500; op++ {
			// One sparse write to a small hot set of lines...
			r.c.MemWr(off(uint64(op%32), 0), linePayload(byte(op)), true, 0, func() {})
			// ...plus reads that evict pages from the Base cache.
			r.c.MemRd(off(32+rng.Uint64n(200), 0), true, func(ReadMeta) {}, nil)
			r.c.MemRd(off(32+rng.Uint64n(200), 0), true, func(ReadMeta) {}, nil)
			if op%13 == 0 {
				r.eng.Run()
			}
		}
		r.eng.Run()
		return r.arr.Stats().Programs
	}
	base := run(false)
	sky := run(true)
	if sky >= base {
		t.Fatalf("write log did not reduce programs: base=%d sky=%d", base, sky)
	}
	if float64(base)/float64(sky+1) < 2 {
		t.Fatalf("reduction only %.1fx (base=%d sky=%d); want >2x", float64(base)/float64(sky+1), base, sky)
	}
}

func TestLocalityTracking(t *testing.T) {
	cfg := testConfig(false)
	cfg.TrackLocality = true
	cfg.CacheBytes = 4 * mem.PageBytes
	cfg.CacheWays = 4
	r := newRig(cfg)
	// Touch 16 of 64 lines of several pages, forcing evictions.
	for p := uint64(0); p < 8; p++ {
		for l := uint64(0); l < 16; l++ {
			r.readSync(t, off(p, l))
		}
	}
	d := r.c.cache.ReadLocality
	if len(d.Samples) == 0 {
		t.Fatal("no read locality samples")
	}
	for _, s := range d.Samples {
		if s < 0.2 || s > 0.3 {
			t.Fatalf("sample %v, want 16/64=0.25", s)
		}
	}
}

func TestPinnedPageNeverNominated(t *testing.T) {
	cfg := testConfig(true)
	cfg.MigrationEnabled = true
	cfg.MigrationThreshold = 2
	cfg.MigrationMinResidency = 0
	r := newRig(cfg)
	fired := 0
	r.c.OnPromoteCandidate = func(uint64) { fired++ }
	// Pin page 6 (§IV data persistence) and hammer it.
	r.c.PinPage(6)
	if !r.c.Pinned(6) {
		t.Fatal("pin not recorded")
	}
	for i := 0; i < 20; i++ {
		r.readSync(t, off(6, uint64(i%8)))
	}
	if fired != 0 {
		t.Fatal("pinned page was nominated for promotion")
	}
	// Unpin: the next accesses may nominate it.
	r.c.UnpinPage(6)
	for i := 0; i < 20; i++ {
		r.readSync(t, off(6, uint64(i%8)))
	}
	if fired == 0 {
		t.Fatal("unpinned hot page never nominated")
	}
}

func TestHeatPersistsAcrossResidencies(t *testing.T) {
	// §III-C tracks access counts per flash page, not per cache residency:
	// a page evicted and refetched keeps accumulating heat.
	cfg := testConfig(true)
	cfg.MigrationEnabled = true
	cfg.MigrationThreshold = 6
	cfg.MigrationMinResidency = 0
	cfg.CacheBytes = 4 * mem.PageBytes // tiny: evictions guaranteed
	cfg.CacheWays = 4
	r := newRig(cfg)
	fired := 0
	r.c.OnPromoteCandidate = func(lpa uint64) {
		if lpa == 9 {
			fired++
		}
	}
	// Interleave accesses to page 9 with thrashing reads so page 9 is
	// evicted between touches; its heat must still reach the threshold.
	for i := 0; i < 12; i++ {
		r.readSync(t, off(9, uint64(i%4)))
		for p := uint64(20); p < 28; p++ {
			r.readSync(t, off(p, 0))
		}
	}
	if fired == 0 {
		t.Fatal("heat did not persist across cache residencies")
	}
}
