// Package core implements the paper's primary contribution: the SkyByte
// SSD controller (§III). It combines the CXL-aware SSD DRAM management —
// the cacheline-granular double-buffered write log plus the page-granular
// read-write data cache (§III-B) — with the threshold-based context-switch
// trigger policy (Algorithm 1) and the migration-candidate tracking that
// feeds adaptive page promotion (§III-C). A configuration flag degrades the
// same controller to Base-CSSD (the state-of-the-art baseline: page-granular
// RMW cache with prefetch and device-side MSHRs).
package core

import (
	"math/bits"

	"skybyte/internal/mem"
	"skybyte/internal/stats"
)

// PageFrame is one resident page of the SSD DRAM data cache. The 64-bit
// line masks directly support the paper's Figs. 5–6 locality analysis and
// the write-amplification accounting.
type PageFrame struct {
	LPA       uint64
	Valid     bool
	Dirty     bool   // any line dirtied while resident (Base-CSSD flush needs this)
	Accessed  uint64 // bitmask of lines touched while resident
	DirtyMsk  uint64 // bitmask of lines dirtied while resident
	AccCount  uint32 // accesses while resident (migration hotness, §III-C)
	Migrating bool   // promotion in progress; frame pinned
	Nominated bool   // already offered as a promotion candidate
	// InsertedAt is the simulated time the frame was filled; promotion
	// requires sustained access over a minimum residency so streaming
	// sweeps do not masquerade as hot pages.
	InsertedAt int64
	lru        uint64
	Data       []byte // 4 KB payload when the controller tracks data
}

// PageCacheStats counts data-cache events.
type PageCacheStats struct {
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
	DirtyEvs  uint64
}

// PageCache is the set-associative, LRU, page-granular read-write cache of
// §III-B ("the read-write cache is managed in page granularity to exploit
// spatial locality").
type PageCache struct {
	sets, ways int
	frames     []PageFrame
	clock      uint64
	track      bool

	Stats PageCacheStats

	// ReadLocality / WriteLocality collect the per-page line-usage ratios
	// of Figs. 5–6 when enabled: on eviction, the fraction of lines
	// accessed; on flush, the fraction dirty.
	TrackLocality bool
	ReadLocality  stats.Distribution
	WriteLocality stats.Distribution
}

// NewPageCache builds a cache of sizeBytes with the given associativity
// (Table II / artifact knobs ssd_cache_size_byte and ssd_cache_way).
func NewPageCache(sizeBytes int, ways int, trackData bool) *PageCache {
	if ways <= 0 {
		panic("core: cache ways must be positive")
	}
	framesTotal := sizeBytes / mem.PageBytes
	if framesTotal < ways {
		framesTotal = ways
	}
	sets := framesTotal / ways
	// Round sets down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	return &PageCache{
		sets:   sets,
		ways:   ways,
		frames: make([]PageFrame, sets*ways),
		track:  trackData,
	}
}

// Frames returns the total frame count.
func (pc *PageCache) Frames() int { return pc.sets * pc.ways }

// SizeBytes returns the cache capacity.
func (pc *PageCache) SizeBytes() int { return pc.Frames() * mem.PageBytes }

func (pc *PageCache) setOf(lpa uint64) int { return int(lpa) & (pc.sets - 1) }

// Lookup returns the resident frame for lpa, or nil, updating hit/miss
// statistics and recency.
func (pc *PageCache) Lookup(lpa uint64) *PageFrame {
	base := pc.setOf(lpa) * pc.ways
	for w := 0; w < pc.ways; w++ {
		f := &pc.frames[base+w]
		if f.Valid && f.LPA == lpa {
			pc.clock++
			f.lru = pc.clock
			pc.Stats.Hits++
			return f
		}
	}
	pc.Stats.Misses++
	return nil
}

// Peek returns the resident frame without touching statistics or recency.
func (pc *PageCache) Peek(lpa uint64) *PageFrame {
	base := pc.setOf(lpa) * pc.ways
	for w := 0; w < pc.ways; w++ {
		f := &pc.frames[base+w]
		if f.Valid && f.LPA == lpa {
			return f
		}
	}
	return nil
}

// Insert allocates a frame for lpa, evicting the least-recently-used
// non-pinned frame of the set if needed. The evicted frame's contents are
// returned by value (Valid=false if the set had room). If every candidate
// frame is pinned by an in-flight migration, ok is false and the caller
// must bypass the cache.
func (pc *PageCache) Insert(lpa uint64) (victim PageFrame, f *PageFrame, ok bool) {
	base := pc.setOf(lpa) * pc.ways
	victimIdx := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < pc.ways; w++ {
		fr := &pc.frames[base+w]
		if !fr.Valid {
			victimIdx = base + w
			oldest = 0
			break
		}
		if fr.Migrating {
			continue
		}
		if fr.lru <= oldest {
			oldest = fr.lru
			victimIdx = base + w
		}
	}
	if victimIdx < 0 {
		return PageFrame{}, nil, false
	}
	fr := &pc.frames[victimIdx]
	if fr.Valid {
		victim = *fr
		pc.Stats.Evictions++
		if fr.Dirty {
			pc.Stats.DirtyEvs++
		}
		pc.noteLocality(fr)
	}
	pc.clock++
	*fr = PageFrame{LPA: lpa, Valid: true, lru: pc.clock}
	if pc.track {
		fr.Data = make([]byte, mem.PageBytes)
	}
	pc.Stats.Inserts++
	return victim, fr, true
}

// Drop invalidates lpa's frame if resident (SkyByte-W eviction is free, and
// migration completion removes the page: "the SSD removes the page from the
// data cache").
func (pc *PageCache) Drop(lpa uint64) (was PageFrame, present bool) {
	f := pc.Peek(lpa)
	if f == nil {
		return PageFrame{}, false
	}
	was = *f
	pc.noteLocality(f)
	*f = PageFrame{}
	return was, true
}

func (pc *PageCache) noteLocality(f *PageFrame) {
	if !pc.TrackLocality {
		return
	}
	pc.ReadLocality.Add(float64(bits.OnesCount64(f.Accessed)) / float64(mem.LinesPerPage))
	if f.DirtyMsk != 0 {
		pc.WriteLocality.Add(float64(bits.OnesCount64(f.DirtyMsk)) / float64(mem.LinesPerPage))
	}
}

// TouchRead marks a line of a resident frame as accessed.
func (f *PageFrame) TouchRead(lineIdx uint) {
	f.Accessed |= 1 << lineIdx
	f.AccCount++
}

// TouchWrite marks a line as written (and accessed).
func (f *PageFrame) TouchWrite(lineIdx uint, data []byte) {
	f.Accessed |= 1 << lineIdx
	f.DirtyMsk |= 1 << lineIdx
	f.Dirty = true
	f.AccCount++
	if f.Data != nil && data != nil {
		copy(f.Data[int(lineIdx)*mem.LineBytes:], data[:mem.LineBytes])
	}
}

// ResetResidencyStats clears the per-residency masks after a flush so the
// next flush reflects fresh dirtiness (Base-CSSD keeps the page resident
// after writing it back).
func (f *PageFrame) ResetDirty() {
	f.Dirty = false
	f.DirtyMsk = 0
}
