package dram

import (
	"testing"

	"skybyte/internal/mem"
	"skybyte/internal/sim"
)

func TestUnloadedLatency(t *testing.T) {
	var eng sim.Engine
	d := New(&eng, HostDDR5())
	got := d.UnloadedLatency()
	if got < 65*sim.Nanosecond || got > 80*sim.Nanosecond {
		t.Fatalf("host DDR5 unloaded latency = %v, want ~70ns", got)
	}
	d2 := New(&eng, SSDLPDDR4())
	got2 := d2.UnloadedLatency()
	if got2 < 45*sim.Nanosecond || got2 > 60*sim.Nanosecond {
		t.Fatalf("LPDDR4 unloaded latency = %v, want ~50ns", got2)
	}
}

func TestChannelQueueing(t *testing.T) {
	var eng sim.Engine
	cfg := Config{Channels: 2, FixedLatency: 10 * sim.Nanosecond, ServicePer64: 5 * sim.Nanosecond}
	d := New(&eng, cfg)
	var c0a, c0b, c1 sim.Time
	// Lines 0 and 2 hit channel 0; line 1 hits channel 1.
	d.Access(mem.Addr(0), false, func() { c0a = eng.Now() })
	d.Access(mem.Addr(128), false, func() { c0b = eng.Now() })
	d.Access(mem.Addr(64), false, func() { c1 = eng.Now() })
	eng.Run()
	if c0a != 15*sim.Nanosecond {
		t.Fatalf("first ch0 access = %v", c0a)
	}
	if c0b != 20*sim.Nanosecond {
		t.Fatalf("queued ch0 access = %v, want 20ns", c0b)
	}
	if c1 != 15*sim.Nanosecond {
		t.Fatalf("ch1 access should not queue: %v", c1)
	}
}

func TestAccessBytesBulk(t *testing.T) {
	var eng sim.Engine
	cfg := Config{Channels: 1, FixedLatency: 0, ServicePer64: sim.Nanosecond}
	d := New(&eng, cfg)
	var at sim.Time
	d.AccessBytes(0, mem.PageBytes, true, func() { at = eng.Now() })
	eng.Run()
	if at != 64*sim.Nanosecond {
		t.Fatalf("4KB transfer = %v, want 64ns", at)
	}
	if d.Stats().Bytes != mem.PageBytes {
		t.Fatalf("bytes = %d", d.Stats().Bytes)
	}
	if d.Stats().Writes != 1 || d.Stats().Reads != 0 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestReturnedCompletionMatchesCallback(t *testing.T) {
	var eng sim.Engine
	d := New(&eng, SSDLPDDR4())
	var cb sim.Time
	ret := d.Access(64, false, func() { cb = eng.Now() })
	eng.Run()
	if ret != cb {
		t.Fatalf("returned %v, callback at %v", ret, cb)
	}
}

func TestUtilizationBounds(t *testing.T) {
	var eng sim.Engine
	d := New(&eng, SSDLPDDR4())
	for i := 0; i < 100; i++ {
		d.Access(mem.Addr(i*64), i%2 == 0, func() {})
	}
	eng.Run()
	u := d.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestZeroChannelsPanics(t *testing.T) {
	var eng sim.Engine
	defer func() {
		if recover() == nil {
			t.Fatal("zero channels should panic")
		}
	}()
	New(&eng, Config{})
}
