// Package dram models channel-interleaved DRAM timing for both the host
// DDR5 (Table II: 4800 MHz, 8 channels) and the SSD's internal LPDDR4
// (3200 MHz, 2 channels). Each channel is a FIFO with a fixed access
// latency plus a per-64-B service time; the unloaded latency and aggregate
// bandwidth match the respective parts (~70 ns / ~38 GB/s for DDR5, ~50 ns
// / ~26 GB/s for LPDDR4). A full DDR state machine is out of scope (see
// DESIGN.md §1) — queueing under load is what the evaluation depends on.
package dram

import (
	"skybyte/internal/mem"
	"skybyte/internal/sim"
)

// Config parameterises a DRAM device.
type Config struct {
	Channels     int
	FixedLatency sim.Time // pipeline latency added to every access
	ServicePer64 sim.Time // channel occupancy per 64 B transferred
}

// HostDDR5 mirrors Table II's host memory: 8 channels; ~71 ns unloaded,
// ~38 GB/s aggregate.
func HostDDR5() Config {
	return Config{Channels: 8, FixedLatency: 58 * sim.Nanosecond, ServicePer64: 13300}
}

// SSDLPDDR4 mirrors Table II's SSD DRAM: 2 channels; ~50 ns unloaded,
// ~26 GB/s aggregate.
func SSDLPDDR4() Config {
	return Config{Channels: 2, FixedLatency: 45 * sim.Nanosecond, ServicePer64: 5 * sim.Nanosecond}
}

// Stats counts DRAM activity.
type Stats struct {
	Reads    uint64
	Writes   uint64
	Bytes    uint64
	BusyTime sim.Time
}

// DRAM is one timing-modelled DRAM device.
type DRAM struct {
	eng   *sim.Engine
	cfg   Config
	free  []sim.Time
	stats Stats
}

// New builds a DRAM device.
func New(eng *sim.Engine, cfg Config) *DRAM {
	if cfg.Channels <= 0 {
		panic("dram: channels must be positive")
	}
	return &DRAM{eng: eng, cfg: cfg, free: make([]sim.Time, cfg.Channels)}
}

// Stats returns a copy of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

// channelOf interleaves cachelines across channels.
func (d *DRAM) channelOf(a mem.Addr) int {
	return int(a.LineNumber()) % d.cfg.Channels
}

// Access performs one cacheline access, firing done at completion.
// It returns the completion time for callers that account latency inline.
func (d *DRAM) Access(a mem.Addr, write bool, done func()) sim.Time {
	return d.AccessBytes(a, mem.LineBytes, write, done)
}

// AccessBytes performs a transfer of size bytes (rounded up to whole
// cachelines) — used for page-granular moves between the flash buffers and
// the SSD DRAM cache. Cachelines interleave across channels exactly like
// demand accesses, so a 4 KB fill spreads over every channel rather than
// serialising on one.
func (d *DRAM) AccessBytes(a mem.Addr, size int, write bool, done func()) sim.Time {
	lines := (size + mem.LineBytes - 1) / mem.LineBytes
	if lines <= 1 {
		return d.access(d.channelOf(a), 1, write, done)
	}
	per := lines / d.cfg.Channels
	extra := lines % d.cfg.Channels
	var completion sim.Time
	for ch := 0; ch < d.cfg.Channels; ch++ {
		n := per
		if ch < extra {
			n++
		}
		if n == 0 {
			continue
		}
		end := d.accessTime(ch, n)
		if end > completion {
			completion = end
		}
	}
	d.stats.Bytes += uint64(lines * mem.LineBytes)
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	completion += d.cfg.FixedLatency
	if done != nil {
		d.eng.At(completion, done)
	}
	return completion
}

func (d *DRAM) access(ch, lines int, write bool, done func()) sim.Time {
	end := d.accessTime(ch, lines)
	d.stats.Bytes += uint64(lines * mem.LineBytes)
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	completion := end + d.cfg.FixedLatency
	if done != nil {
		d.eng.At(completion, done)
	}
	return completion
}

// accessTime books lines of channel occupancy and returns when the channel
// finishes them.
func (d *DRAM) accessTime(ch, lines int) sim.Time {
	ser := d.cfg.ServicePer64 * sim.Time(lines)
	start := sim.Max(d.eng.Now(), d.free[ch])
	end := start + ser
	d.free[ch] = end
	d.stats.BusyTime += ser
	return end
}

// UnloadedLatency returns the latency of an access on an idle channel.
func (d *DRAM) UnloadedLatency() sim.Time {
	return d.cfg.FixedLatency + d.cfg.ServicePer64
}

// Utilization returns the busy fraction of all channels since t=0.
func (d *DRAM) Utilization() float64 {
	el := d.eng.Now()
	if el == 0 {
		return 0
	}
	return float64(d.stats.BusyTime) / float64(int64(el)*int64(d.cfg.Channels))
}
