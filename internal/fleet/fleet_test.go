package fleet

import (
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if string(p) != name {
			t.Fatalf("ParsePolicy(%q) = %q", name, p)
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != Striped {
		t.Fatalf("ParsePolicy(\"\") = %q, %v; want striped default", p, err)
	}
	_, err := ParsePolicy("round-robin")
	if err == nil {
		t.Fatal("ParsePolicy accepted unknown policy")
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid policy %q", err, name)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(1, ""); err != nil {
		t.Fatalf("Validate(1, \"\"): %v", err)
	}
	if err := Validate(MaxDevices, "hotcold"); err != nil {
		t.Fatalf("Validate(%d, hotcold): %v", MaxDevices, err)
	}
	if err := Validate(0, ""); err == nil || !strings.Contains(err.Error(), "1..16") {
		t.Fatalf("Validate(0) = %v; want range error listing 1..16", err)
	}
	if err := Validate(MaxDevices+1, ""); err == nil {
		t.Fatal("Validate accepted oversized fleet")
	}
	if err := Validate(2, "bogus"); err == nil {
		t.Fatal("Validate accepted unknown policy")
	}
}

func TestStripedPlacement(t *testing.T) {
	p, err := NewPlacer(Config{Devices: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy() != Striped {
		t.Fatalf("default policy = %q", p.Policy())
	}
	for lpa := uint64(0); lpa < 64; lpa++ {
		if got, want := p.Device(lpa), int(lpa%4); got != want {
			t.Fatalf("Device(%d) = %d, want %d", lpa, got, want)
		}
	}
	for d := 0; d < 4; d++ {
		if p.Pages(d) != 16 {
			t.Fatalf("Pages(%d) = %d, want 16", d, p.Pages(d))
		}
		if p.Inbound(d) != 0 {
			t.Fatalf("Inbound(%d) = %d on a static policy", d, p.Inbound(d))
		}
	}
	if _, ok := p.NoteAccess(7); ok {
		t.Fatal("striped placement migrated a page")
	}
	if p.Migrations() != 0 {
		t.Fatalf("Migrations = %d on a static policy", p.Migrations())
	}
}

func TestCapacityPlacement(t *testing.T) {
	// 3:1 weights over two devices — device 0 should own about three
	// quarters of a large uniform page population.
	p, err := NewPlacer(Config{Devices: 2, Policy: Capacity, Weights: []float64{3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	for lpa := uint64(0); lpa < n; lpa++ {
		p.Device(lpa)
	}
	share := float64(p.Pages(0)) / n
	if share < 0.72 || share > 0.78 {
		t.Fatalf("device 0 share = %.3f, want ~0.75", share)
	}
	if p.Pages(0)+p.Pages(1) != n {
		t.Fatalf("pages sum %d+%d != %d", p.Pages(0), p.Pages(1), n)
	}

	// Placement is a pure function of the page number: a second placer
	// from the same config agrees on every page, in any probe order.
	q, err := NewPlacer(Config{Devices: 2, Policy: Capacity, Weights: []float64{3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for lpa := uint64(n); lpa > 0; lpa-- {
		if p.Device(lpa-1) != q.Device(lpa-1) {
			t.Fatalf("placers disagree on lpa %d", lpa-1)
		}
	}
}

func TestCapacityWeightValidation(t *testing.T) {
	if _, err := NewPlacer(Config{Devices: 3, Policy: Capacity, Weights: []float64{1, 2}}); err == nil {
		t.Fatal("accepted weight count mismatch")
	}
	if _, err := NewPlacer(Config{Devices: 2, Policy: Capacity, Weights: []float64{1, -1}}); err == nil {
		t.Fatal("accepted negative weight")
	}
}

func TestHotColdMigration(t *testing.T) {
	cfg := Config{Devices: 4, Policy: HotCold, HotThreshold: 3}
	p, err := NewPlacer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Default hot tier for K=4 is one device; cold pages stripe across
	// devices 1..3.
	const lpa = 5 // cold home: 1 + 5%3 = 3
	if got := p.Device(lpa); got != 3 {
		t.Fatalf("cold home of %d = %d, want 3", lpa, got)
	}
	for i := 0; i < 2; i++ {
		if _, ok := p.NoteAccess(lpa); ok {
			t.Fatalf("migrated after %d accesses, threshold 3", i+1)
		}
	}
	m, ok := p.NoteAccess(lpa)
	if !ok {
		t.Fatal("no migration at threshold")
	}
	if m != (Migration{LPA: lpa, From: 3, To: 0}) {
		t.Fatalf("migration = %+v", m)
	}
	if got := p.Device(lpa); got != 0 {
		t.Fatalf("post-migration owner = %d, want 0", got)
	}
	if p.Inbound(0) != 1 || p.Migrations() != 1 {
		t.Fatalf("inbound=%d migrations=%d, want 1/1", p.Inbound(0), p.Migrations())
	}
	if p.Pages(3) != 0 || p.Pages(0) != 1 {
		t.Fatalf("page counts after migration: dev3=%d dev0=%d", p.Pages(3), p.Pages(0))
	}
	// Hot pages never migrate again.
	if _, ok := p.NoteAccess(lpa); ok {
		t.Fatal("hot page migrated twice")
	}
}

func TestHotColdNeedsColdTier(t *testing.T) {
	if _, err := NewPlacer(Config{Devices: 2, Policy: HotCold, HotDevices: 2}); err == nil {
		t.Fatal("accepted hot tier covering the whole fleet")
	}
}

func TestFingerprint(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Devices: 4}, "striped/k=4"},
		{Config{Devices: 4, Policy: Striped}, "striped/k=4"},
		{Config{Devices: 2, Policy: Capacity}, "capacity/k=2"},
		{Config{Devices: 2, Policy: Capacity, Weights: []float64{3, 1}}, "capacity/k=2/w=[3 1]"},
		{Config{Devices: 8, Policy: HotCold}, "hotcold/k=8/hot=2:8"},
		{Config{Devices: 8, Policy: HotCold, HotDevices: 3, HotThreshold: 5}, "hotcold/k=8/hot=3:5"},
	}
	for _, c := range cases {
		if got := c.cfg.Fingerprint(); got != c.want {
			t.Errorf("Fingerprint(%+v) = %q, want %q", c.cfg, got, c.want)
		}
	}
}
