// Package fleet places logical pages across a cluster of CXL-SSD
// devices. A fleet run wires K independent controller+FTL+flash
// backends behind the shared CXL link (DESIGN.md §9); this package owns
// the placement layer that decides which device serves each logical
// page, under one of three pluggable policies:
//
//   - striped: page i lives on device i mod K — the interleave that
//     spreads sequential streams perfectly and is the fleet default.
//   - capacity: a deterministic hash of the page maps into
//     capacity-weight ranges, so heterogeneous devices absorb load in
//     proportion to their share of the fleet's capacity.
//   - hotcold: pages start on the cold tier (striped across the cold
//     devices); a page whose access count crosses HotThreshold migrates
//     to the hot tier, and the simulator charges the transfer through
//     the normal link and flash paths.
//
// Every policy is a pure function of (config, access history): two
// placers built from the same Config observing the same access sequence
// make identical decisions, which is what keeps fleet results
// byte-identical at any campaign parallelism. The policy name and
// device count fold into runner spec keys (Spec.Devices/Placement), so
// changing only the placement re-keys exactly the fleet design points.
package fleet

import (
	"fmt"
	"math"
	"strings"
)

// Policy names a placement algorithm.
type Policy string

// The placement policies.
const (
	Striped  Policy = "striped"
	Capacity Policy = "capacity"
	HotCold  Policy = "hotcold"
)

// Policies lists every placement policy, in documentation order.
// Striped comes first: it is the default when a fleet config names no
// policy.
var Policies = []Policy{Striped, Capacity, HotCold}

// MaxDevices bounds the fleet size a run may wire. Each device carries
// a full flash array, FTL map, and controller, so the bound keeps a
// mistyped device count from allocating a rack's worth of simulator
// state.
const MaxDevices = 16

// PolicyNames returns the names of every placement policy.
func PolicyNames() []string {
	names := make([]string, len(Policies))
	for i, p := range Policies {
		names[i] = string(p)
	}
	return names
}

// ParsePolicy resolves a placement-policy name, rejecting unknown names
// with an error that lists the valid set — use it to validate CLI input
// before building a system, the same convention as system.ParseVariant.
// The empty string resolves to the default, Striped.
func ParsePolicy(name string) (Policy, error) {
	if name == "" {
		return Striped, nil
	}
	for _, p := range Policies {
		if string(p) == name {
			return p, nil
		}
	}
	return "", fmt.Errorf("fleet: unknown placement policy %q (valid: %s)", name, strings.Join(PolicyNames(), ", "))
}

// Validate checks a (device count, placement name) pair the way the
// CLIs and the runner must before any simulation starts: the count
// within 1..MaxDevices and the name a known policy (or empty). The
// errors list the valid sets.
func Validate(devices int, placement string) error {
	if devices < 1 || devices > MaxDevices {
		return fmt.Errorf("fleet: invalid device count %d (valid: 1..%d)", devices, MaxDevices)
	}
	_, err := ParsePolicy(placement)
	return err
}

// Config parameterizes a fleet's placement layer.
type Config struct {
	// Devices is the fleet size K (1..MaxDevices).
	Devices int
	// Policy selects the placement algorithm ("" = Striped).
	Policy Policy
	// Weights are the relative capacity weights of the Capacity policy,
	// one per device (nil = equal). Ignored by the other policies.
	Weights []float64
	// HotDevices is the size of the HotCold hot tier — the leading
	// devices pages migrate to once hot (0 = max(1, Devices/4); must
	// stay below Devices so a cold tier exists).
	HotDevices int
	// HotThreshold is the access count that promotes a page to the hot
	// tier (0 = 8, matching the scaled machine's promotion threshold).
	HotThreshold uint32
}

// Fingerprint returns the config's stable identity string, e.g.
// "striped/k=4". It names exactly the decisions the placer can make, so
// two configs with equal fingerprints place every access sequence
// identically.
func (c Config) Fingerprint() string {
	p := c.Policy
	if p == "" {
		p = Striped
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s/k=%d", p, c.Devices)
	if p == Capacity && len(c.Weights) > 0 {
		fmt.Fprintf(&b, "/w=%v", c.Weights)
	}
	if p == HotCold {
		fmt.Fprintf(&b, "/hot=%d:%d", c.hotDevices(), c.hotThreshold())
	}
	return b.String()
}

func (c Config) hotDevices() int {
	if c.HotDevices > 0 {
		return c.HotDevices
	}
	h := c.Devices / 4
	if h < 1 {
		h = 1
	}
	return h
}

func (c Config) hotThreshold() uint32 {
	if c.HotThreshold > 0 {
		return c.HotThreshold
	}
	return 8
}

// Migration reports one hot/cold tier promotion: page LPA leaves device
// From for device To. The caller (the system) simulates the transfer;
// the placer has already flipped ownership, so requests issued after
// the decision route to the new device.
type Migration struct {
	LPA      uint64
	From, To int
}

// Placer maps logical pages to devices. It records first-touch
// ownership (the per-device page accounting of Result.Devices) and, for
// HotCold, per-page heat. A Placer belongs to one System and is not
// safe for concurrent use — the same contract as every other simulator
// component.
type Placer struct {
	cfg    Config
	policy Policy
	hotDev int
	hotThr uint32

	owner   map[uint64]uint16 // lpa -> owning device (recorded at first touch)
	heat    map[uint64]uint32 // HotCold: access counts of cold-tier pages
	pages   []uint64          // per-device owned-page counts
	inbound []uint64          // per-device hot-tier migration arrivals
	bounds  []uint64          // Capacity: cumulative weight thresholds over the hash range
}

// NewPlacer builds a placement layer. The config must pass Validate;
// additionally the Capacity weights, if given, must match the device
// count and be positive, and the HotCold hot tier must leave at least
// one cold device.
func NewPlacer(cfg Config) (*Placer, error) {
	if err := Validate(cfg.Devices, string(cfg.Policy)); err != nil {
		return nil, err
	}
	policy, _ := ParsePolicy(string(cfg.Policy))
	p := &Placer{
		cfg:    cfg,
		policy: policy,
		hotDev: cfg.hotDevices(),
		hotThr: cfg.hotThreshold(),
		owner:  make(map[uint64]uint16),
		pages:  make([]uint64, cfg.Devices),
	}
	switch policy {
	case Capacity:
		w := cfg.Weights
		if w == nil {
			w = make([]float64, cfg.Devices)
			for i := range w {
				w[i] = 1
			}
		}
		if len(w) != cfg.Devices {
			return nil, fmt.Errorf("fleet: capacity placement needs %d weights, got %d", cfg.Devices, len(w))
		}
		var total float64
		for i, x := range w {
			if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("fleet: capacity weight %d must be positive and finite, got %v", i, x)
			}
			total += x
		}
		p.bounds = make([]uint64, cfg.Devices)
		var cum float64
		for i, x := range w {
			cum += x
			// The last bound must cover the whole hash range exactly.
			if i == cfg.Devices-1 {
				p.bounds[i] = math.MaxUint64
			} else {
				p.bounds[i] = uint64(cum / total * float64(math.MaxUint64))
			}
		}
	case HotCold:
		if p.hotDev >= cfg.Devices {
			return nil, fmt.Errorf("fleet: hotcold needs a cold tier: hot devices %d must be < devices %d", p.hotDev, cfg.Devices)
		}
		p.heat = make(map[uint64]uint32)
		p.inbound = make([]uint64, cfg.Devices)
	}
	return p, nil
}

// Devices returns the fleet size.
func (p *Placer) Devices() int { return p.cfg.Devices }

// Policy returns the resolved placement policy.
func (p *Placer) Policy() Policy { return p.policy }

// Fingerprint returns the placer's config identity.
func (p *Placer) Fingerprint() string { return p.cfg.Fingerprint() }

// Device returns the device owning lpa, recording first-touch ownership
// so the per-device page accounting stays exact.
func (p *Placer) Device(lpa uint64) int {
	if d, ok := p.owner[lpa]; ok {
		return int(d)
	}
	d := p.home(lpa)
	p.owner[lpa] = uint16(d)
	p.pages[d]++
	return d
}

// home computes a page's policy-defined initial device.
func (p *Placer) home(lpa uint64) int {
	k := uint64(p.cfg.Devices)
	switch p.policy {
	case Capacity:
		h := mix64(lpa)
		for i, bound := range p.bounds {
			if h <= bound {
				return i
			}
		}
		return p.cfg.Devices - 1
	case HotCold:
		// Cold pages stripe across the cold tier; heat moves them up.
		cold := k - uint64(p.hotDev)
		return p.hotDev + int(lpa%cold)
	default: // Striped
		return int(lpa % k)
	}
}

// NoteAccess books one access to lpa for the heat-driven policies and
// reports the migration it triggers, if any. Static policies always
// return ok=false. The returned migration's ownership flip has already
// happened; the caller simulates the data movement.
func (p *Placer) NoteAccess(lpa uint64) (m Migration, ok bool) {
	if p.policy != HotCold {
		return Migration{}, false
	}
	from := p.Device(lpa)
	if from < p.hotDev {
		return Migration{}, false // already hot
	}
	p.heat[lpa]++
	if p.heat[lpa] < p.hotThr {
		return Migration{}, false
	}
	delete(p.heat, lpa)
	to := int(lpa % uint64(p.hotDev))
	p.owner[lpa] = uint16(to)
	p.pages[from]--
	p.pages[to]++
	p.inbound[to]++
	return Migration{LPA: lpa, From: from, To: to}, true
}

// Pages returns the number of logical pages currently owned by dev.
func (p *Placer) Pages(dev int) uint64 { return p.pages[dev] }

// Inbound returns the number of hot-tier migrations that landed on dev
// (always 0 for static policies).
func (p *Placer) Inbound(dev int) uint64 {
	if p.inbound == nil {
		return 0
	}
	return p.inbound[dev]
}

// Migrations returns the total inter-device migrations performed.
func (p *Placer) Migrations() uint64 {
	var n uint64
	for _, x := range p.inbound {
		n += x
	}
	return n
}

// mix64 is the splitmix64 finalizer: a fixed, high-quality 64-bit
// mixer, so capacity placement depends only on the page number — never
// on iteration order or a seeded stream.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
