package sim

// Engine is a deterministic discrete-event simulator.
//
// Events are closures scheduled for an absolute time. Events scheduled for
// the same instant fire in the order they were scheduled. The zero value is
// ready to use.
type Engine struct {
	now    Time
	heap   []event
	seq    uint64
	fired  uint64
	inStep bool
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (a determinism probe
// and a cheap progress metric).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events not yet executed.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.heap = append(e.heap, event{at: t, seq: e.seq, fn: fn})
	e.up(len(e.heap) - 1)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.down(0)
	}
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if it has not already passed it).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) less(i, j int) bool {
	if e.heap[i].at != e.heap[j].at {
		return e.heap[i].at < e.heap[j].at
	}
	return e.heap[i].seq < e.heap[j].seq
}

func (e *Engine) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.less(i, p) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

func (e *Engine) down(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && e.less(l, m) {
			m = l
		}
		if r < n && e.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		e.heap[i], e.heap[m] = e.heap[m], e.heap[i]
		i = m
	}
}
