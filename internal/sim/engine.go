package sim

// Engine is a deterministic discrete-event simulator.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break on a global sequence number). The zero value is
// ready to use.
//
// The engine is allocation-free on the hot path: event records are pooled
// on an intrusive free-list and recycled as they fire, so steady-state
// scheduling performs no heap allocation. Two scheduling forms exist:
//
//   - At/After take a plain func() — the closure itself is whatever the
//     caller built, but the event record carrying it is pooled;
//   - AtH/AfterH take a HandlerID plus inlined payload words (one uint64
//     and two pointer-shaped any slots), so hot callers can pre-register a
//     typed handler and schedule with zero allocation end to end (storing
//     pointers and funcs in an any does not allocate).
//
// Internally the queue is two-level: a bucketed calendar ring absorbs the
// near future (the common "a few ns/µs ahead" case) with O(1) same- or
// ascending-timestamp appends, and a binary heap holds everything beyond
// the ring's horizon. The pop path compares the two fronts by (time, seq),
// so ordering semantics are identical to a single heap.
type Engine struct {
	now   Time
	seq   uint64
	fired uint64

	// free is the intrusive free-list of recycled event records.
	free *Event

	// Calendar ring: buckets cover [base, base+horizon) in bucketWidth
	// slices; every live calendar event satisfies base <= at < base+horizon
	// (no lap ambiguity). base advances as empty buckets are skipped and
	// re-anchors to now whenever the calendar drains.
	base     Time
	calCount int
	buckets  [numBuckets]bucket

	// heap holds events at or beyond the calendar horizon, ordered by
	// (at, seq).
	heap []*Event
}

// Calendar-queue geometry: 2048 buckets of 2^12 ps (~4.1 ns) cover a
// horizon of ~8.4 µs — wide enough that cycle-, DRAM-, link-, and
// ULL-flash-read-scale schedules all take the O(1) path; only genuinely
// far-future events (tProg/tBERS, scan timers) fall through to the heap.
const (
	bucketShift = 12
	bucketWidth = Time(1) << bucketShift
	numBuckets  = 2048
	bucketMask  = numBuckets - 1
	horizon     = bucketWidth * numBuckets
)

// bucket is one calendar slot: an intrusively linked list sorted by
// (at, seq), with a tail pointer so in-order arrivals append in O(1).
type bucket struct {
	head, tail *Event
}

// Event is one pooled event record. Payload words A0/P1/P2 are interpreted
// by the event's handler; records are recycled after dispatch, so handlers
// must not retain the *Event.
type Event struct {
	next *Event // bucket chain or free-list link
	at   Time
	seq  uint64
	h    HandlerID
	fn   func() // closure form (At/After); nil for typed events

	// A0 is an inlined integer payload word.
	A0 uint64
	// P1, P2 are pointer-shaped payload slots (pointers, funcs); storing
	// such values in an any does not allocate.
	P1, P2 any
}

// HandlerID names a typed-event handler registered with RegisterHandler.
type HandlerID uint32

// handlerTab is the global dispatch table. It is append-only and written
// exclusively from package init functions (RegisterHandler's contract), so
// concurrent engines on different goroutines read it without synchronization.
var handlerTab []func(a0 uint64, p1, p2 any)

// RegisterHandler registers a typed-event handler and returns its ID for
// AtH/AfterH. It must only be called during package initialization (from
// package-level var initializers or init functions): the table is read
// lock-free by every engine once simulations start.
func RegisterHandler(fn func(a0 uint64, p1, p2 any)) HandlerID {
	handlerTab = append(handlerTab, fn)
	return HandlerID(len(handlerTab) - 1)
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (a determinism probe
// and a cheap progress metric).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events not yet executed.
func (e *Engine) Pending() int { return e.calCount + len(e.heap) }

// alloc pops a pooled record or grows the pool by one.
func (e *Engine) alloc() *Event {
	ev := e.free
	if ev == nil {
		return &Event{}
	}
	e.free = ev.next
	ev.next = nil
	return ev
}

// recycle clears payload references and returns the record to the pool.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.P1 = nil
	ev.P2 = nil
	ev.next = e.free
	e.free = ev
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	ev := e.alloc()
	ev.at = t
	e.seq++
	ev.seq = e.seq
	ev.fn = fn
	e.schedule(ev)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// AtH schedules a typed event: at time t, handler h runs with the inlined
// payload (a0, p1, p2). This is the zero-allocation form — the record is
// pooled and pointer-shaped payloads do not box.
func (e *Engine) AtH(t Time, h HandlerID, a0 uint64, p1, p2 any) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	ev := e.alloc()
	ev.at = t
	e.seq++
	ev.seq = e.seq
	ev.h = h
	ev.A0 = a0
	ev.P1 = p1
	ev.P2 = p2
	e.schedule(ev)
}

// AfterH is AtH relative to the current time.
func (e *Engine) AfterH(d Time, h HandlerID, a0 uint64, p1, p2 any) {
	e.AtH(e.now+d, h, a0, p1, p2)
}

// AtBatch schedules every fn at the same instant t, preserving slice order.
// Because the batch shares one timestamp and sequence numbers ascend, each
// record takes the calendar tail-append fast path (or a straight heap push
// beyond the horizon) — there is no per-event sift or list walk.
func (e *Engine) AtBatch(t Time, fns []func()) {
	if len(fns) == 0 {
		return
	}
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	for _, fn := range fns {
		ev := e.alloc()
		ev.at = t
		e.seq++
		ev.seq = e.seq
		ev.fn = fn
		e.schedule(ev)
	}
}

// schedule routes a ready record into the calendar ring or the far heap.
func (e *Engine) schedule(ev *Event) {
	if e.calCount == 0 {
		// Empty calendar: re-anchor the ring at the current time so the
		// horizon always covers the near future relative to now.
		e.base = e.now &^ (bucketWidth - 1)
	}
	t := ev.at
	if t-e.base >= horizon {
		e.heapPush(ev)
		return
	}
	b := &e.buckets[(t>>bucketShift)&bucketMask]
	e.calCount++
	if b.tail == nil {
		b.head, b.tail = ev, ev
		return
	}
	if b.tail.at <= t {
		// Same-timestamp / ascending fast path: FIFO order is the append
		// order because seq is globally increasing.
		b.tail.next = ev
		b.tail = ev
		return
	}
	// Rare out-of-order arrival within a bucket: insert before the first
	// record scheduled strictly later. Equal timestamps keep FIFO order
	// because existing records hold smaller sequence numbers.
	if b.head.at > t {
		ev.next = b.head
		b.head = ev
		return
	}
	prev := b.head
	for prev.next != nil && prev.next.at <= t {
		prev = prev.next
	}
	ev.next = prev.next
	prev.next = ev
	if ev.next == nil {
		b.tail = ev
	}
}

// popNext removes and returns the earliest pending record by (at, seq),
// or nil when the engine is idle.
func (e *Engine) popNext() *Event {
	if e.calCount == 0 {
		return e.heapPop()
	}
	idx := int(e.base>>bucketShift) & bucketMask
	for e.buckets[idx].head == nil {
		// Skipping an empty bucket permanently advances the ring anchor,
		// so subsequent scans start where this one left off.
		idx = (idx + 1) & bucketMask
		e.base += bucketWidth
	}
	cal := e.buckets[idx].head
	if len(e.heap) > 0 {
		if top := e.heap[0]; top.at < cal.at || (top.at == cal.at && top.seq < cal.seq) {
			return e.heapPop()
		}
	}
	b := &e.buckets[idx]
	b.head = cal.next
	if b.head == nil {
		b.tail = nil
	}
	cal.next = nil
	e.calCount--
	return cal
}

// peekAt reports the timestamp of the earliest pending record.
func (e *Engine) peekAt() (Time, bool) {
	if e.calCount == 0 {
		if len(e.heap) == 0 {
			return 0, false
		}
		return e.heap[0].at, true
	}
	idx := int(e.base>>bucketShift) & bucketMask
	for e.buckets[idx].head == nil {
		idx = (idx + 1) & bucketMask
		e.base += bucketWidth
	}
	at := e.buckets[idx].head.at
	if len(e.heap) > 0 && e.heap[0].at < at {
		at = e.heap[0].at
	}
	return at, true
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	ev := e.popNext()
	if ev == nil {
		return false
	}
	e.now = ev.at
	e.fired++
	if fn := ev.fn; fn != nil {
		e.recycle(ev)
		fn()
		return true
	}
	h, a0, p1, p2 := ev.h, ev.A0, ev.P1, ev.P2
	e.recycle(ev)
	handlerTab[h](a0, p1, p2)
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if it has not already passed it).
func (e *Engine) RunUntil(deadline Time) {
	for {
		at, ok := e.peekAt()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// --- far-future fallback heap ---

func (e *Engine) heapLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev *Event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !e.heapLess(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

func (e *Engine) heapPop() *Event {
	if len(e.heap) == 0 {
		return nil
	}
	ev := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if n > 0 {
		e.heapDown(0)
	}
	return ev
}

func (e *Engine) heapDown(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && e.heapLess(e.heap[l], e.heap[m]) {
			m = l
		}
		if r < n && e.heapLess(e.heap[r], e.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		e.heap[i], e.heap[m] = e.heap[m], e.heap[i]
		i = m
	}
}
