package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{250 * Picosecond, "250ps"},
		{3 * Microsecond, "3µs"},
		{100 * Microsecond, "100µs"},
		{Millisecond, "1ms"},
		{2 * Second, "2s"},
		{-Microsecond, "-1µs"},
		{70 * Nanosecond, "70ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Nanosecond).Microseconds(); got != 1.5 {
		t.Errorf("Microseconds = %v, want 1.5", got)
	}
	if got := (2 * Millisecond).Seconds(); got != 0.002 {
		t.Errorf("Seconds = %v, want 0.002", got)
	}
	if got := (3 * Microsecond).Nanoseconds(); got != 3000 {
		t.Errorf("Nanoseconds = %v, want 3000", got)
	}
}

func TestMaxMin(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
}

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", e.Fired())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO at index %d: got %d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var got []Time
	e.At(10, func() {
		got = append(got, e.Now())
		e.After(5, func() { got = append(got, e.Now()) })
		e.At(12, func() { got = append(got, e.Now()) })
	})
	e.Run()
	want := []Time{10, 12, 15}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntil(100)
	if fired != 3 || e.Now() != 100 {
		t.Fatalf("after final RunUntil: fired=%d now=%v", fired, e.Now())
	}
}

// Property: for any set of scheduled times, the engine fires events in
// non-decreasing time order and ends with Now() == max time.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var e Engine
		var fired []Time
		for _, ti := range times {
			at := Time(ti)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: heap behaves like a sorted multiset under random interleaving of
// scheduling (always in the future) and stepping.
func TestEngineRandomInterleaving(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var e Engine
	var fired []Time
	pending := 0
	for op := 0; op < 5000; op++ {
		if pending == 0 || rng.Intn(2) == 0 {
			at := e.Now() + Time(rng.Intn(1000))
			e.At(at, func() { fired = append(fired, e.Now()) })
			pending++
		} else {
			e.Step()
			pending--
		}
	}
	e.Run()
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatal("events fired out of order under random interleaving")
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1024; j++ {
			e.At(Time(j%97), func() {})
		}
		e.Run()
	}
}

// hTestCollect is a typed test handler: appends A0 to the []uint64
// pointed to by P1. Registered at init per the RegisterHandler contract.
var hTestCollect HandlerID

func init() {
	hTestCollect = RegisterHandler(func(a0 uint64, p1, p2 any) {
		s := p1.(*[]uint64)
		*s = append(*s, a0)
	})
}

// TestEngineAtBatchFIFO: a batch scheduled at one instant fires in
// slice order, interleaved FIFO with events scheduled around it.
func TestEngineAtBatchFIFO(t *testing.T) {
	var e Engine
	var got []int
	e.At(42, func() { got = append(got, 0) })
	e.AtBatch(42, []func(){
		func() { got = append(got, 1) },
		func() { got = append(got, 2) },
		func() { got = append(got, 3) },
	})
	e.At(42, func() { got = append(got, 4) })
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("batch tie-break not FIFO: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("fired %d of 5", len(got))
	}
}

// TestEngineTypedHandlerFIFO: typed (AtH) and closure (At) events at
// one instant share the sequence space, so mixing the two forms keeps
// same-instant FIFO.
func TestEngineTypedHandlerFIFO(t *testing.T) {
	var e Engine
	var got []uint64
	e.AtH(10, hTestCollect, 0, &got, nil)
	e.At(10, func() { got = append(got, 1) })
	e.AtH(10, hTestCollect, 2, &got, nil)
	e.Run()
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("typed/closure tie-break not FIFO: %v", got)
		}
	}
}

// TestEngineCalendarHeapCrossover: events straddling the calendar
// horizon (near-future bucketed queue vs far-future heap) still fire
// in global (time, seq) order — including FIFO ties between an event
// that sat in the heap and one scheduled later into the calendar for
// the same instant.
func TestEngineCalendarHeapCrossover(t *testing.T) {
	const far = Time(horizon) + 100 // beyond the calendar horizon at t=0
	var e Engine
	var got []uint64
	e.AtH(far, hTestCollect, 0, &got, nil) // heap resident
	e.At(far-50, func() {
		// Now inside the horizon of `far`: calendar resident, same
		// instant as the heap event but a later sequence number.
		e.AtH(far, hTestCollect, 1, &got, nil)
		e.AtH(far+10, hTestCollect, 2, &got, nil)
	})
	e.AtH(5, hTestCollect, 99, &got, nil) // near event fires first
	e.Run()
	want := []uint64{99, 0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("crossover order got %v, want %v", got, want)
		}
	}
	if e.Now() != far+10 {
		t.Fatalf("Now = %v, want %v", e.Now(), far+10)
	}
}

// TestEnginePoolReuse: after Run drains, the event records are on the
// free list and a steady-state schedule/step cycle allocates nothing —
// the property the whole inner-loop rebuild exists for.
func TestEnginePoolReuse(t *testing.T) {
	var e Engine
	var sink []uint64
	for i := 0; i < 64; i++ {
		e.AtH(Time(i), hTestCollect, uint64(i), &sink, nil)
	}
	e.Run()
	if e.free == nil {
		t.Fatal("drained engine has an empty free list")
	}
	free := 0
	for ev := e.free; ev != nil; ev = ev.next {
		free++
	}
	if free != 64 {
		t.Fatalf("free list holds %d records, want 64", free)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.AtH(e.Now()+Time(i), hTestCollect, uint64(i), &sink, nil)
		}
		for e.Pending() > 0 {
			e.Step()
			sink = sink[:0]
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state typed scheduling allocated %.1f times per cycle, want 0", allocs)
	}
}

// TestEngineDeterminism: two engines fed the identical schedule report
// identical Fired counts and fire orders — the probe the byte-identity
// suite leans on, checked here at the engine level.
func TestEngineDeterminism(t *testing.T) {
	run := func() (uint64, []uint64) {
		var e Engine
		var got []uint64
		rng := rand.New(rand.NewSource(99))
		var schedule func(depth int)
		seq := uint64(0)
		schedule = func(depth int) {
			at := e.Now() + Time(rng.Intn(int(horizon)*2))
			id := seq
			seq++
			e.At(at, func() {
				got = append(got, id)
				if depth < 3 && rng.Intn(4) == 0 {
					schedule(depth + 1)
				}
			})
		}
		for i := 0; i < 500; i++ {
			schedule(0)
		}
		e.Run()
		return e.Fired(), got
	}
	f1, g1 := run()
	f2, g2 := run()
	if f1 != f2 {
		t.Fatalf("Fired() diverged: %d vs %d", f1, f2)
	}
	if len(g1) != len(g2) {
		t.Fatalf("fire orders diverged in length: %d vs %d", len(g1), len(g2))
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("fire orders diverged at %d: %d vs %d", i, g1[i], g2[i])
		}
	}
}
