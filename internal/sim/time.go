// Package sim provides the discrete-event simulation kernel used by every
// timing model in the repository: a picosecond-resolution clock and a
// deterministic event queue.
//
// All components (CPU cores, the CXL link, flash channels, DRAM channels,
// the OS scheduler) share one Engine. Determinism is guaranteed by breaking
// ties between events scheduled for the same instant in insertion order, so
// a given configuration always produces a bit-identical simulation.
package sim

import "fmt"

// Time is a point in (or duration of) simulated time, in picoseconds.
//
// A picosecond base unit represents a 4 GHz CPU cycle exactly (250 ps) while
// still covering ~106 days of simulated time in an int64, far beyond any
// experiment in this repository.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with an adaptive unit, e.g. "3.0µs" or "250ps".
func (t Time) String() string {
	neg := ""
	v := t
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= Second:
		return fmt.Sprintf("%s%.3gs", neg, v.Seconds())
	case v >= Millisecond:
		return fmt.Sprintf("%s%.3gms", neg, float64(v)/float64(Millisecond))
	case v >= Microsecond:
		return fmt.Sprintf("%s%.3gµs", neg, v.Microseconds())
	case v >= Nanosecond:
		return fmt.Sprintf("%s%.3gns", neg, v.Nanoseconds())
	default:
		return fmt.Sprintf("%s%dps", neg, int64(v))
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
