package writelog

import (
	"bytes"
	"testing"
	"testing/quick"

	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

func lineOf(page, off uint64) uint64 { return page*mem.LinesPerPage + off }

func TestAppendLookup(t *testing.T) {
	l := New(128, false)
	if l.Contains(lineOf(3, 7)) {
		t.Fatal("empty log should not contain anything")
	}
	l.Append(lineOf(3, 7), nil)
	if _, ok := l.Lookup(lineOf(3, 7)); !ok {
		t.Fatal("appended line not found")
	}
	if _, ok := l.Lookup(lineOf(3, 8)); ok {
		t.Fatal("phantom hit for different offset")
	}
	if _, ok := l.Lookup(lineOf(4, 7)); ok {
		t.Fatal("phantom hit for different page")
	}
	if l.Len() != 1 || l.LiveLines() != 1 || l.PageCount() != 1 {
		t.Fatalf("len=%d live=%d pages=%d", l.Len(), l.LiveLines(), l.PageCount())
	}
}

func TestUpdateSupersedes(t *testing.T) {
	l := New(128, true)
	d1 := bytes.Repeat([]byte{1}, 64)
	d2 := bytes.Repeat([]byte{2}, 64)
	l.Append(lineOf(1, 5), d1)
	l.Append(lineOf(1, 5), d2)
	got, ok := l.Lookup(lineOf(1, 5))
	if !ok || got[0] != 2 {
		t.Fatal("index does not point at newest entry")
	}
	if l.Len() != 2 {
		t.Fatal("superseded entry should still occupy log space")
	}
	if l.LiveLines() != 1 {
		t.Fatal("only one live line expected")
	}
	if l.Stats().Updates != 1 {
		t.Fatal("update not counted")
	}
}

func TestFullAndPanicOnOverflow(t *testing.T) {
	l := New(4, false)
	for i := 0; i < 4; i++ {
		l.Append(lineOf(0, uint64(i)), nil)
	}
	if !l.Full() {
		t.Fatal("log should be full")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("append to full log should panic")
		}
	}()
	l.Append(lineOf(0, 63), nil)
}

func TestPagesAndPageLines(t *testing.T) {
	l := New(256, false)
	l.Append(lineOf(10, 0), nil)
	l.Append(lineOf(10, 5), nil)
	l.Append(lineOf(20, 63), nil)
	pages := l.Pages()
	if len(pages) != 2 {
		t.Fatalf("pages = %v", pages)
	}
	seen := map[uint64]bool{}
	for _, p := range pages {
		seen[p] = true
	}
	if !seen[10] || !seen[20] {
		t.Fatalf("pages = %v", pages)
	}
	lines := l.PageLines(10)
	if len(lines) != 2 {
		t.Fatalf("lines of page 10 = %+v", lines)
	}
	offs := map[uint]bool{}
	for _, le := range lines {
		offs[le.Offset] = true
	}
	if !offs[0] || !offs[5] {
		t.Fatalf("offsets = %v", offs)
	}
	if l.PageLines(99) != nil {
		t.Fatal("lines of absent page should be nil")
	}
}

func TestInvalidatePage(t *testing.T) {
	l := New(256, false)
	l.Append(lineOf(1, 1), nil)
	l.Append(lineOf(2, 2), nil)
	l.InvalidatePage(1)
	if l.Contains(lineOf(1, 1)) {
		t.Fatal("invalidated page still indexed")
	}
	if !l.Contains(lineOf(2, 2)) {
		t.Fatal("other page lost")
	}
	if l.PageCount() != 1 {
		t.Fatalf("PageCount = %d", l.PageCount())
	}
	// Tombstone must not break later inserts of the same page.
	l.Append(lineOf(1, 3), nil)
	if !l.Contains(lineOf(1, 3)) {
		t.Fatal("re-insert after invalidate failed")
	}
}

func TestReset(t *testing.T) {
	l := New(64, false)
	for i := uint64(0); i < 64; i++ {
		l.Append(lineOf(i, i%64), nil)
	}
	l.Reset()
	if l.Len() != 0 || l.PageCount() != 0 || l.Full() {
		t.Fatal("reset did not clear the log")
	}
	if l.Stats().Resets != 1 {
		t.Fatal("reset not counted")
	}
	l.Append(lineOf(7, 7), nil)
	if !l.Contains(lineOf(7, 7)) {
		t.Fatal("log unusable after reset")
	}
}

func TestIndexBytesGrowsAndBounded(t *testing.T) {
	l := New(1024, false)
	base := l.IndexBytes()
	if base <= 0 {
		t.Fatal("index should have nonzero footprint")
	}
	// One dirty line per page: worst case for the index.
	for i := 0; i < 1024; i++ {
		l.Append(lineOf(uint64(i), 0), nil)
	}
	ib := l.IndexBytes()
	if ib <= base {
		t.Fatal("index footprint did not grow")
	}
	// Paper bound: ~16 B/first-level entry + 16 B/second-level table per
	// page, with hash-table headroom (load factor 0.75 plus power-of-two
	// sizing) at most ~4x that.
	if ib > 1024*32*4 {
		t.Fatalf("index footprint %d exceeds worst-case bound", ib)
	}
	if l.Stats().PeakIndex < ib {
		t.Fatal("peak index not tracked")
	}
}

func TestDenseSecondLevelResize(t *testing.T) {
	l := New(256, false)
	for off := uint64(0); off < 64; off++ {
		l.Append(lineOf(5, off), nil)
	}
	lines := l.PageLines(5)
	if len(lines) != 64 {
		t.Fatalf("dense page lines = %d, want 64", len(lines))
	}
	seen := map[uint]bool{}
	for _, le := range lines {
		if seen[le.Offset] {
			t.Fatalf("duplicate offset %d after resizes", le.Offset)
		}
		seen[le.Offset] = true
	}
}

func TestCapacityValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 1 << 27} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", bad)
				}
			}()
			New(bad, false)
		}()
	}
	if New(64, false).CapacityBytes() != 64*64 {
		t.Fatal("CapacityBytes")
	}
}

// Property: the log agrees with a model map on containment and newest data
// for random append/lookup/invalidate sequences, and LiveLines matches the
// model size.
func TestAgainstModelMap(t *testing.T) {
	f := func(seed uint64) bool {
		rng := trace.NewRNG(seed)
		l := New(4096, true)
		model := map[uint64]byte{}
		for op := 0; op < 3000 && !l.Full(); op++ {
			switch rng.Intn(10) {
			case 0: // invalidate a random page
				page := rng.Uint64n(32)
				l.InvalidatePage(page)
				for k := range model {
					if k>>6 == page {
						delete(model, k)
					}
				}
			default:
				line := lineOf(rng.Uint64n(32), rng.Uint64n(64))
				v := byte(rng.Uint64())
				buf := bytes.Repeat([]byte{v}, 64)
				l.Append(line, buf)
				model[line] = v
			}
			// Random probe.
			probe := lineOf(rng.Uint64n(32), rng.Uint64n(64))
			data, ok := l.Lookup(probe)
			wantV, wantOK := model[probe]
			if ok != wantOK {
				return false
			}
			if ok && data[0] != wantV {
				return false
			}
		}
		return l.LiveLines() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: PageLines returns exactly the model's lines for each page.
func TestPageLinesMatchModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := trace.NewRNG(seed)
		l := New(2048, false)
		model := map[uint64]map[uint]bool{}
		for op := 0; op < 1500; op++ {
			page := rng.Uint64n(16)
			off := rng.Uint64n(64)
			l.Append(lineOf(page, off), nil)
			if model[page] == nil {
				model[page] = map[uint]bool{}
			}
			model[page][uint(off)] = true
		}
		for page, want := range model {
			got := l.PageLines(page)
			if len(got) != len(want) {
				return false
			}
			for _, le := range got {
				if !want[le.Offset] {
					return false
				}
			}
		}
		return len(l.Pages()) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	l := New(1<<20, false)
	rng := trace.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.Full() {
			l.Reset()
		}
		l.Append(rng.Uint64n(1<<18), nil)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	l := New(1<<16, false)
	for i := 0; i < 1<<15; i++ {
		l.Append(uint64(i*64%(1<<18)), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lookup(uint64(i * 64 % (1 << 18)))
	}
}
