// Package writelog implements SkyByte's cacheline-granular write log
// (paper §III-B, Figs. 11–13): a circular append buffer of 64 B cachelines
// indexed by a two-level hash table.
//
// The first level maps a logical page address (LPA) to a second-level
// table; each second-level entry packs a 6-bit in-page offset with a 26-bit
// log offset into 4 bytes, exactly as Fig. 12 describes. Second-level
// tables start at 4 entries and double when their load factor exceeds 0.75,
// giving the paper's worst-case index bound (≈32 MB for a 64 MB log) while
// staying small for sparse-write workloads (≈5.6 MB average in the paper).
//
// A rewrite of a logged line appends a fresh entry and repoints the index
// at it; the superseded entry stays in the buffer until compaction drops it
// ("the old updates will be dropped during the compaction"). The log is
// used double-buffered by the controller: one instance fills while the
// other drains.
package writelog

import (
	"fmt"

	"skybyte/internal/mem"
)

const (
	secondInit       = 4    // initial second-level table slots (16 B)
	loadNum, loadDen = 3, 4 // resize when used/slots > 3/4
	emptyEntry       = ^uint32(0)
	offsetShift      = 26
	logOffsetMask    = (1 << offsetShift) - 1
)

// firstEntry is one slot of the first-level table: the 8 B LPA plus the
// 8 B pointer to the page's second-level table (Fig. 12).
type firstEntry struct {
	lpa    uint64
	second *secondTable
	state  uint8 // 0 empty, 1 used, 2 tombstone
}

type secondTable struct {
	slots []uint32
	used  int
}

// LineEntry is one logged cacheline of a page, reported by PageLines.
type LineEntry struct {
	Offset    uint // cacheline index within the page (0..63)
	LogOffset uint32
	Data      []byte // nil unless the log tracks data
}

// Stats counts log activity across the lifetime of the instance.
type Stats struct {
	Appends   uint64 // lines appended
	Updates   uint64 // appends that superseded a logged line
	Lookups   uint64
	Hits      uint64
	Resets    uint64 // compaction cycles completed
	PeakIndex int    // largest index footprint observed, bytes
}

// Log is one write-log buffer with its index.
type Log struct {
	capacity int
	len      int
	lines    []uint64 // per log slot: global line number
	data     []byte   // capacity*64 bytes when tracking data
	first    []firstEntry
	firstLen int // used (non-tombstone) entries
	tombs    int
	stats    Stats
	track    bool
}

// New builds a log holding capacityLines cachelines. trackData enables the
// functional byte payload path used by correctness tests.
func New(capacityLines int, trackData bool) *Log {
	if capacityLines <= 0 {
		panic("writelog: capacity must be positive")
	}
	if capacityLines > 1<<offsetShift {
		panic(fmt.Sprintf("writelog: capacity %d exceeds 26-bit log offset space", capacityLines))
	}
	l := &Log{
		capacity: capacityLines,
		lines:    make([]uint64, capacityLines),
		first:    make([]firstEntry, 16),
		track:    trackData,
	}
	if trackData {
		l.data = make([]byte, capacityLines*mem.LineBytes)
	}
	return l
}

// Capacity returns the log size in cachelines.
func (l *Log) Capacity() int { return l.capacity }

// CapacityBytes returns the log size in bytes.
func (l *Log) CapacityBytes() int { return l.capacity * mem.LineBytes }

// Len returns the number of appended (not yet compacted) entries,
// including superseded duplicates.
func (l *Log) Len() int { return l.len }

// Full reports whether the next append would not fit.
func (l *Log) Full() bool { return l.len >= l.capacity }

// Occupancy returns the filled fraction of the log in [0, 1] — the
// value the write-log telemetry probe samples.
func (l *Log) Occupancy() float64 {
	if l.capacity == 0 {
		return 0
	}
	return float64(l.len) / float64(l.capacity)
}

// Stats returns a copy of the counters.
func (l *Log) Stats() Stats { return l.stats }

// LiveLines returns the number of distinct logged cachelines (index
// entries); Len()-LiveLines() is space wasted on superseded updates that
// compaction will drop.
func (l *Log) LiveLines() int {
	n := 0
	for i := range l.first {
		if l.first[i].state == 1 {
			n += l.first[i].second.used
		}
	}
	return n
}

// PageCount returns the number of distinct pages with logged lines.
func (l *Log) PageCount() int { return l.firstLen }

// IndexBytes returns the current index memory footprint: 16 B per
// first-level slot plus 4 B per second-level slot (Fig. 12 sizes).
func (l *Log) IndexBytes() int {
	b := len(l.first) * 16
	for i := range l.first {
		if l.first[i].state == 1 {
			b += len(l.first[i].second.slots) * 4
		}
	}
	return b
}

func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// findFirst returns the slot index of lpa, or the insertion slot
// (preferring the first tombstone seen) with found=false.
func (l *Log) findFirst(lpa uint64) (idx int, found bool) {
	mask := uint64(len(l.first) - 1)
	i := hash64(lpa) & mask
	firstTomb := -1
	for {
		e := &l.first[i]
		switch e.state {
		case 0:
			if firstTomb >= 0 {
				return firstTomb, false
			}
			return int(i), false
		case 2:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		default:
			if e.lpa == lpa {
				return int(i), true
			}
		}
		i = (i + 1) & mask
	}
}

func (l *Log) growFirst() {
	old := l.first
	l.first = make([]firstEntry, len(old)*2)
	l.firstLen = 0
	l.tombs = 0
	for i := range old {
		if old[i].state == 1 {
			idx, _ := l.findFirst(old[i].lpa)
			l.first[idx] = firstEntry{lpa: old[i].lpa, second: old[i].second, state: 1}
			l.firstLen++
		}
	}
}

// Append logs one cacheline write. line is the global cacheline number
// (address/64); data, when non-nil and tracking is on, is the 64 B payload.
// It panics if the log is full — the controller must switch buffers first.
func (l *Log) Append(line uint64, data []byte) {
	if l.Full() {
		panic("writelog: append to full log")
	}
	slot := uint32(l.len)
	l.lines[slot] = line
	if l.track && data != nil {
		copy(l.data[int(slot)*mem.LineBytes:], data)
	}
	l.len++
	l.stats.Appends++

	lpa := line >> 6 // page number
	offset := uint32(line & mem.LineInPageMsk)
	idx, found := l.findFirst(lpa)
	if !found {
		if (l.firstLen+l.tombs+1)*loadDen > len(l.first)*loadNum {
			l.growFirst()
			idx, _ = l.findFirst(lpa)
		}
		if l.first[idx].state == 2 {
			l.tombs--
		}
		l.first[idx] = firstEntry{lpa: lpa, second: &secondTable{slots: newSlots(secondInit)}, state: 1}
		l.firstLen++
	}
	st := l.first[idx].second
	if st.insert(offset, slot) {
		l.stats.Updates++
	}
	if ib := l.IndexBytes(); ib > l.stats.PeakIndex {
		l.stats.PeakIndex = ib
	}
}

func newSlots(n int) []uint32 {
	s := make([]uint32, n)
	for i := range s {
		s[i] = emptyEntry
	}
	return s
}

// insert adds or updates the (offset → logOffset) entry, returning whether
// an existing entry was superseded.
func (st *secondTable) insert(offset, logOffset uint32) (updated bool) {
	mask := uint32(len(st.slots) - 1)
	i := offset & mask
	for {
		e := st.slots[i]
		if e == emptyEntry {
			break
		}
		if e>>offsetShift == offset {
			st.slots[i] = offset<<offsetShift | logOffset
			return true
		}
		i = (i + 1) & mask
	}
	if (st.used+1)*loadDen > len(st.slots)*loadNum {
		old := st.slots
		st.slots = newSlots(len(old) * 2)
		st.used = 0
		for _, e := range old {
			if e != emptyEntry {
				st.place(e>>offsetShift, e)
			}
		}
	}
	st.place(offset, offset<<offsetShift|logOffset)
	return false
}

// place inserts an entry known to be absent, without load checks.
func (st *secondTable) place(offset, entry uint32) {
	mask := uint32(len(st.slots) - 1)
	i := offset & mask
	for st.slots[i] != emptyEntry {
		i = (i + 1) & mask
	}
	st.slots[i] = entry
	st.used++
}

// lookup returns the log offset of a page offset.
func (st *secondTable) lookup(offset uint32) (uint32, bool) {
	mask := uint32(len(st.slots) - 1)
	i := offset & mask
	for {
		e := st.slots[i]
		if e == emptyEntry {
			return 0, false
		}
		if e>>offsetShift == offset {
			return e & logOffsetMask, true
		}
		i = (i + 1) & mask
	}
}

// Lookup returns whether line is logged and, with tracking on, its newest
// payload.
func (l *Log) Lookup(line uint64) (data []byte, ok bool) {
	l.stats.Lookups++
	idx, found := l.findFirst(line >> 6)
	if !found {
		return nil, false
	}
	slot, ok := l.first[idx].second.lookup(uint32(line & mem.LineInPageMsk))
	if !ok {
		return nil, false
	}
	l.stats.Hits++
	if l.track {
		off := int(slot) * mem.LineBytes
		return l.data[off : off+mem.LineBytes], true
	}
	return nil, true
}

// Contains reports whether line is logged, without stats side effects.
func (l *Log) Contains(line uint64) bool {
	idx, found := l.findFirst(line >> 6)
	if !found {
		return false
	}
	_, ok := l.first[idx].second.lookup(uint32(line & mem.LineInPageMsk))
	return ok
}

// Pages returns the distinct LPAs with logged lines, in deterministic
// (first-level slot) order — compaction's L1 scan.
func (l *Log) Pages() []uint64 {
	out := make([]uint64, 0, l.firstLen)
	for i := range l.first {
		if l.first[i].state == 1 {
			out = append(out, l.first[i].lpa)
		}
	}
	return out
}

// PageLines returns the newest logged line entries of one page — the L4
// second-level traversal that merges dirty lines during compaction.
func (l *Log) PageLines(lpa uint64) []LineEntry {
	idx, found := l.findFirst(lpa)
	if !found {
		return nil
	}
	st := l.first[idx].second
	out := make([]LineEntry, 0, st.used)
	for _, e := range st.slots {
		if e == emptyEntry {
			continue
		}
		le := LineEntry{Offset: uint(e >> offsetShift), LogOffset: e & logOffsetMask}
		if l.track {
			off := int(le.LogOffset) * mem.LineBytes
			le.Data = l.data[off : off+mem.LineBytes]
		}
		out = append(out, le)
	}
	return out
}

// InvalidatePage voids the index entries of one page (§III-C: after a page
// migrates to the host, "the SSD ... invalidates the write log index by
// setting the corresponding entry as NULL"). The buffer space is reclaimed
// at the next compaction.
func (l *Log) InvalidatePage(lpa uint64) {
	idx, found := l.findFirst(lpa)
	if !found {
		return
	}
	l.first[idx] = firstEntry{state: 2}
	l.firstLen--
	l.tombs++
}

// Reset clears the log for reuse as the fresh half of the double buffer
// ("after compaction, we remove the indexing table and reclaim the memory
// used by the previous log").
func (l *Log) Reset() {
	l.len = 0
	l.first = make([]firstEntry, 16)
	l.firstLen = 0
	l.tombs = 0
	l.stats.Resets++
}
