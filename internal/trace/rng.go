package trace

import (
	"math"
	"sync"
)

// RNG is a small, fast, deterministic generator (splitmix64 seeded
// xorshift128+). The simulator avoids math/rand so that trace determinism
// never depends on Go release behaviour.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	r.s0, r.s1 = next(), next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n).
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("trace: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Zipf samples ranks in [0, n) with a zipfian skew following the classic
// Gray et al. algorithm used by YCSB. Unlike math/rand's Zipf it supports
// theta < 1 (YCSB's default constant is 0.99).
type Zipf struct {
	rng               *RNG
	n                 uint64
	theta             float64
	alpha, zetan, eta float64
	halfPow           float64 // 0.5^theta, hoisted out of Next
}

// NewZipf builds a sampler over [0, n) with skew theta in (0, 1).
// theta→0 approaches uniform; theta→1 is heavily skewed.
func NewZipf(rng *RNG, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("trace: Zipf over empty domain")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	z.halfPow = math.Pow(0.5, theta)
	return z
}

// zetaCache memoizes zetaSum across sampler constructions. The sum is a
// pure function of (n, theta) and workloads construct the same handful of
// (domain, skew) pairs for every design point, so without the cache each
// cold run pays O(min(n, 2^20)) math.Pow calls per stream — profiled at
// roughly two thirds of a cold design-point's CPU. A sync.Map keeps
// parallel campaign runners safe; duplicate computation during a race is
// harmless because the value is deterministic.
var zetaCache sync.Map // zetaKey -> float64

type zetaKey struct {
	n     uint64
	theta float64
}

func zeta(n uint64, theta float64) float64 {
	k := zetaKey{n, theta}
	if v, ok := zetaCache.Load(k); ok {
		return v.(float64)
	}
	v := zetaSum(n, theta)
	zetaCache.Store(k, v)
	return v
}

func zetaSum(n uint64, theta float64) float64 {
	// Cap the exact summation; beyond the cap use the Euler–Maclaurin
	// integral approximation, keeping construction O(1)-ish for large n.
	const cap = 1 << 20
	sum := 0.0
	limit := n
	if limit > cap {
		limit = cap
	}
	for i := uint64(1); i <= limit; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > cap {
		// integral of x^-theta from cap to n
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(cap), 1-theta)) / (1 - theta)
	}
	return sum
}

// Next samples one rank. Rank 0 is the hottest.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+z.halfPow {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// ScrambledNext samples a rank and scatters it over the domain with a
// fixed permutation hash, so hot items are spread across the address space
// (YCSB's "scrambled zipfian").
func (z *Zipf) ScrambledNext() uint64 {
	v := z.Next()
	return fnvHash(v) % z.n
}

func fnvHash(v uint64) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= 0x100000001B3
		v >>= 8
	}
	return h
}
