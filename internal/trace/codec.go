package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"skybyte/internal/mem"
)

// CodecVersion names the on-disk trace layout. Bump it whenever the
// record encoding or the envelope changes shape or meaning: a version
// mismatch is a decode error (never a silent reinterpretation), and
// the workload registry folds the version into every trace-backed
// workload's source identity, so a bump also invalidates persistent
// result-store entries produced from traces under the old layout.
const CodecVersion = 1

// traceMagic opens every trace file. Eight bytes so a truncated or
// foreign file is rejected before any length field is trusted.
var traceMagic = [8]byte{'S', 'K', 'Y', 'B', 'T', 'R', 'C', 0}

// Meta describes a recorded trace: where it came from and how it was
// cut. It rides in the file as canonical JSON and is covered by the
// trailing digest like everything else.
type Meta struct {
	// Workload is the name of the generator the trace was recorded
	// from (a built-in, a registered definition, or — when a trace is
	// re-recorded through replay — the original generator's name).
	Workload string `json:"workload"`
	// Seed is the workload seed the streams were generated with.
	Seed uint64 `json:"seed"`
	// FootprintPages bounds the arena the recorded addresses fall in.
	FootprintPages uint64 `json:"footprint_pages"`
	// WriteRatio carries the source workload's Table I write ratio for
	// documentation; replay does not depend on it.
	WriteRatio float64 `json:"write_ratio,omitempty"`
	// InstrPerThread is the per-thread instruction budget the streams
	// were cut at (0 when the cut was a record count instead).
	InstrPerThread uint64 `json:"instr_per_thread,omitempty"`
}

// Trace is a decoded (or to-be-encoded) multi-thread record stream:
// Threads[i] is the complete record sequence of thread i.
type Trace struct {
	Meta    Meta
	Threads [][]Record
}

// Stream returns a replay Stream over thread's records (threads wrap
// modulo the recorded count, so a trace recorded with fewer threads
// than a run schedules still feeds every software thread). The
// returned stream is independent of every other: concurrent replays
// of one Trace are safe.
func (t *Trace) Stream(thread int) Stream {
	return &SliceStream{Recs: t.Threads[thread%len(t.Threads)]}
}

// Records counts the records across all threads.
func (t *Trace) Records() int {
	n := 0
	for _, recs := range t.Threads {
		n += len(recs)
	}
	return n
}

// EncodeTrace serializes t canonically:
//
//	magic[8] | u32 version | u32 metaLen | meta JSON |
//	u32 threads | per thread: u64 count, records... | sha256[32]
//
// A record is a kind byte followed by one uvarint — the instruction
// count for Compute, the byte address for memory ops. The same Trace
// always encodes to the same bytes, so re-recording a replayed trace
// reproduces the file bit for bit.
func EncodeTrace(t *Trace) ([]byte, error) {
	if len(t.Threads) == 0 {
		return nil, fmt.Errorf("trace: encode: no thread streams")
	}
	meta, err := json.Marshal(t.Meta)
	if err != nil {
		return nil, fmt.Errorf("trace: encode meta: %w", err)
	}
	var b bytes.Buffer
	b.Write(traceMagic[:])
	var u32 [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		b.Write(u32[:])
	}
	put32(CodecVersion)
	put32(uint32(len(meta)))
	b.Write(meta)
	put32(uint32(len(t.Threads)))
	var varBuf [binary.MaxVarintLen64]byte
	var u64 [8]byte
	for _, recs := range t.Threads {
		binary.LittleEndian.PutUint64(u64[:], uint64(len(recs)))
		b.Write(u64[:])
		for _, r := range recs {
			b.WriteByte(byte(r.Kind))
			var v uint64
			switch r.Kind {
			case Compute:
				v = uint64(r.N)
			case Load, Store, LoadDep:
				v = uint64(r.Addr)
			default:
				return nil, fmt.Errorf("trace: encode: unknown record kind %d", r.Kind)
			}
			b.Write(varBuf[:binary.PutUvarint(varBuf[:], v)])
		}
	}
	sum := sha256.Sum256(b.Bytes())
	b.Write(sum[:])
	return b.Bytes(), nil
}

// IsTrace reports whether data begins with the trace magic — the sniff
// the workload file loader uses to tell a binary trace from a JSON
// workload definition.
func IsTrace(data []byte) bool {
	return len(data) >= len(traceMagic) && bytes.Equal(data[:len(traceMagic)], traceMagic[:])
}

// DecodeTrace reverses EncodeTrace. Every defect is a distinct, loud
// error — wrong magic, future codec version, truncation, checksum
// mismatch, or malformed records — never a partial Trace: a damaged
// trace must not replay as a subtly different workload.
func DecodeTrace(data []byte) (*Trace, error) {
	if !IsTrace(data) {
		return nil, fmt.Errorf("trace: not a skybyte trace (bad magic)")
	}
	if len(data) < len(traceMagic)+8+sha256.Size {
		return nil, fmt.Errorf("trace: truncated (file shorter than the fixed envelope)")
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], sum) {
		return nil, fmt.Errorf("trace: corrupt (checksum mismatch; the file was truncated or altered)")
	}
	pos := len(traceMagic)
	read32 := func() (uint32, error) {
		if pos+4 > len(body) {
			return 0, fmt.Errorf("trace: truncated inside the header")
		}
		v := binary.LittleEndian.Uint32(body[pos:])
		pos += 4
		return v, nil
	}
	version, err := read32()
	if err != nil {
		return nil, err
	}
	if version != CodecVersion {
		return nil, fmt.Errorf("trace: codec version %d, this build reads v%d (re-record the trace)", version, CodecVersion)
	}
	metaLen, err := read32()
	if err != nil {
		return nil, err
	}
	if pos+int(metaLen) > len(body) {
		return nil, fmt.Errorf("trace: truncated inside the metadata block")
	}
	t := &Trace{}
	if err := json.Unmarshal(body[pos:pos+int(metaLen)], &t.Meta); err != nil {
		return nil, fmt.Errorf("trace: bad metadata: %w", err)
	}
	pos += int(metaLen)
	threads, err := read32()
	if err != nil {
		return nil, err
	}
	if threads == 0 {
		return nil, fmt.Errorf("trace: no thread streams")
	}
	for ti := uint32(0); ti < threads; ti++ {
		if pos+8 > len(body) {
			return nil, fmt.Errorf("trace: truncated before thread %d's record count", ti)
		}
		count := binary.LittleEndian.Uint64(body[pos:])
		pos += 8
		// Cap the pre-allocation by what the remaining bytes could
		// possibly hold (a record is >= 2 bytes): the declared count is
		// untrusted input, and a crafted file must fail with a
		// truncation error, not an enormous allocation.
		capHint := count
		if max := uint64(len(body)-pos) / 2; capHint > max {
			capHint = max
		}
		recs := make([]Record, 0, capHint)
		for ri := uint64(0); ri < count; ri++ {
			if pos >= len(body) {
				return nil, fmt.Errorf("trace: truncated inside thread %d's records", ti)
			}
			kind := Kind(body[pos])
			pos++
			v, n := binary.Uvarint(body[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("trace: malformed record %d of thread %d", ri, ti)
			}
			pos += n
			switch kind {
			case Compute:
				if v == 0 || v > 1<<32-1 {
					return nil, fmt.Errorf("trace: compute burst of %d instructions in thread %d", v, ti)
				}
				recs = append(recs, Record{Kind: Compute, N: uint32(v)})
			case Load, Store, LoadDep:
				recs = append(recs, Record{Kind: kind, Addr: mem.Addr(v)})
			default:
				return nil, fmt.Errorf("trace: unknown record kind %d in thread %d", kind, ti)
			}
		}
		t.Threads = append(t.Threads, recs)
	}
	if pos != len(body) {
		return nil, fmt.Errorf("trace: %d trailing bytes after the last record", len(body)-pos)
	}
	return t, nil
}

// TraceDigest returns the stable content identity of an encoded trace:
// the codec version plus the hex of the file's own trailing checksum.
// Workload registration folds this into a trace-backed workload's
// source identity, so editing or re-recording a trace file — or
// bumping the codec — changes every fingerprint derived from it.
func TraceDigest(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return fmt.Sprintf("v%d:%s", CodecVersion, hex.EncodeToString(sum[:]))
}

// RecordStream drains up to maxRecords records from src into a slice —
// the capture half of record/replay. It stops at stream end; cut the
// stream with Limited first to record an exact instruction budget.
func RecordStream(src Stream, maxRecords int) []Record {
	var recs []Record
	for len(recs) < maxRecords {
		r, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, r)
	}
	return recs
}
