package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"skybyte/internal/mem"
)

// CodecVersion names the newest on-disk trace layout this build writes
// by default. Bump it whenever the record encoding or the envelope
// changes shape or meaning: a version beyond it is a decode error
// (never a silent reinterpretation), and the workload registry folds
// the version into every trace-backed workload's source identity, so a
// bump also invalidates persistent result-store entries produced from
// traces under the old layout.
//
// Two layouts exist (WORKLOADS.md documents both):
//
//	v1 — flat: every thread's records stored back to back, fully
//	     materialized on decode. Still written via
//	     EncodeTraceVersion(t, 1) and always readable.
//	v2 — block-compressed: records chunked into per-thread blocks,
//	     each deflate-compressed and crc-sealed, so the streaming
//	     Reader replays with O(block) memory.
const CodecVersion = 2

// traceMagic opens every trace file. Eight bytes so a truncated or
// foreign file is rejected before any length field is trusted.
var traceMagic = [8]byte{'S', 'K', 'Y', 'B', 'T', 'R', 'C', 0}

// Origin records the provenance of an imported trace: the external
// format it was converted from and the identity of the source file.
// The converter (internal/traceimport) fills it; re-recording a replay
// carries it forward, so provenance survives round trips. Because the
// origin rides in the meta JSON, it is covered by the file digest —
// importing a different source file yields a different trace identity
// even if the converted records happened to coincide.
type Origin struct {
	// Format is the external format name ("champsim", "damon",
	// "cachegrind").
	Format string `json:"format"`
	// Source is the base name of the converted file, for humans.
	Source string `json:"source,omitempty"`
	// SourceDigest is the sha256 hex of the source file's bytes: the
	// machine-checkable identity the spec key folds (DESIGN.md §2.1).
	SourceDigest string `json:"source_digest,omitempty"`
	// Converter names the importer revision that produced the records
	// (e.g. "traceimport/v1"), so a converter behaviour change is
	// visible in the meta and in every digest derived from it.
	Converter string `json:"converter,omitempty"`
}

// Meta describes a recorded trace: where it came from and how it was
// cut. It rides in the file as canonical JSON and is covered by the
// trailing digest like everything else.
type Meta struct {
	// Workload is the name of the generator the trace was recorded
	// from (a built-in, a registered definition, or — when a trace is
	// re-recorded through replay — the original generator's name).
	Workload string `json:"workload"`
	// Seed is the workload seed the streams were generated with.
	Seed uint64 `json:"seed"`
	// FootprintPages bounds the arena the recorded addresses fall in.
	FootprintPages uint64 `json:"footprint_pages"`
	// WriteRatio carries the source workload's Table I write ratio for
	// documentation; replay does not depend on it.
	WriteRatio float64 `json:"write_ratio,omitempty"`
	// InstrPerThread is the per-thread instruction budget the streams
	// were cut at (0 when the cut was a record count instead).
	InstrPerThread uint64 `json:"instr_per_thread,omitempty"`
	// Origin, when set, is the external source the trace was imported
	// from (absent for traces recorded from our own generators).
	Origin *Origin `json:"origin,omitempty"`
}

// Source is a replayable multi-thread record source — the interface
// trace-backed workloads hold. Two implementations: *Trace (records
// materialized in memory, e.g. fresh from an importer) and *Reader
// (records streamed block by block from a file, so replay memory stays
// bounded). Streams returned by one Source must be independent:
// concurrent replays of distinct threads are safe.
type Source interface {
	// TraceMeta returns the recorded metadata.
	TraceMeta() Meta
	// NumThreads returns the recorded thread-stream count (>= 1).
	NumThreads() int
	// NumRecords returns the total record count across all threads.
	NumRecords() uint64
	// FileVersion is the codec version of the backing file, or 0 for
	// an in-memory trace that was never encoded.
	FileVersion() int
	// Stream replays thread's records (threads wrap modulo the
	// recorded count, so a trace recorded with fewer threads than a
	// run schedules still feeds every software thread).
	Stream(thread int) Stream
}

// Trace is a decoded (or to-be-encoded) multi-thread record stream:
// Threads[i] is the complete record sequence of thread i. It is the
// materialized Source; large on-disk traces should be opened as a
// streaming *Reader instead.
type Trace struct {
	Meta    Meta
	Threads [][]Record
}

// TraceMeta implements Source.
func (t *Trace) TraceMeta() Meta { return t.Meta }

// NumThreads implements Source.
func (t *Trace) NumThreads() int { return len(t.Threads) }

// NumRecords implements Source.
func (t *Trace) NumRecords() uint64 { return uint64(t.Records()) }

// FileVersion implements Source: an in-memory trace has no backing
// file, so it reports 0.
func (t *Trace) FileVersion() int { return 0 }

// Stream returns a replay Stream over thread's records (threads wrap
// modulo the recorded count). The returned stream is independent of
// every other: concurrent replays of one Trace are safe.
func (t *Trace) Stream(thread int) Stream {
	return &SliceStream{Recs: t.Threads[thread%len(t.Threads)]}
}

// Records counts the records across all threads.
func (t *Trace) Records() int {
	n := 0
	for _, recs := range t.Threads {
		n += len(recs)
	}
	return n
}

// appendRecord appends one record in the wire encoding shared by both
// codec versions: a kind byte followed by one uvarint — the
// instruction count for Compute, the byte address for memory ops.
func appendRecord(dst []byte, r Record) ([]byte, error) {
	var varBuf [binary.MaxVarintLen64]byte
	var v uint64
	switch r.Kind {
	case Compute:
		v = uint64(r.N)
	case Load, Store, LoadDep:
		v = uint64(r.Addr)
	default:
		return dst, fmt.Errorf("trace: encode: unknown record kind %d", r.Kind)
	}
	dst = append(dst, byte(r.Kind))
	return append(dst, varBuf[:binary.PutUvarint(varBuf[:], v)]...), nil
}

// decodeRecord decodes one wire-encoded record from buf starting at
// pos, returning the record and the position after it.
func decodeRecord(buf []byte, pos int) (Record, int, error) {
	if pos >= len(buf) {
		return Record{}, pos, fmt.Errorf("trace: truncated record")
	}
	kind := Kind(buf[pos])
	pos++
	v, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return Record{}, pos, fmt.Errorf("trace: malformed record value")
	}
	pos += n
	switch kind {
	case Compute:
		if v == 0 || v > 1<<32-1 {
			return Record{}, pos, fmt.Errorf("trace: compute burst of %d instructions", v)
		}
		return Record{Kind: Compute, N: uint32(v)}, pos, nil
	case Load, Store, LoadDep:
		return Record{Kind: kind, Addr: mem.Addr(v)}, pos, nil
	}
	return Record{}, pos, fmt.Errorf("trace: unknown record kind %d", kind)
}

// encodeHeader writes the fixed envelope both versions share: magic,
// version, meta length + canonical JSON, thread count.
func encodeHeader(b *bytes.Buffer, m Meta, threads int, version uint32) error {
	if threads == 0 {
		return fmt.Errorf("trace: encode: no thread streams")
	}
	meta, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("trace: encode meta: %w", err)
	}
	b.Write(traceMagic[:])
	var u32 [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		b.Write(u32[:])
	}
	put32(version)
	put32(uint32(len(meta)))
	b.Write(meta)
	put32(uint32(threads))
	return nil
}

// EncodeTrace serializes t canonically in the current default layout
// (CodecVersion). The same Trace always encodes to the same bytes, so
// re-recording a replayed trace reproduces the file bit for bit.
func EncodeTrace(t *Trace) ([]byte, error) {
	return EncodeTraceVersion(t, CodecVersion)
}

// EncodeTraceVersion serializes t in a specific codec version — 1 for
// the flat legacy layout, 2 for the block-compressed layout. Both are
// canonical: the same Trace and version always yield the same bytes.
// This is the batch face of StreamEncoder, so a materialized encode and
// a streamed one produce identical files by construction.
func EncodeTraceVersion(t *Trace, version int) ([]byte, error) {
	e, err := NewStreamEncoder(version)
	if err != nil {
		return nil, err
	}
	for _, recs := range t.Threads {
		e.BeginThread()
		for _, r := range recs {
			if err := e.Append(r); err != nil {
				return nil, err
			}
		}
	}
	return e.Finish(t.Meta)
}

// IsTrace reports whether data begins with the trace magic — the sniff
// the workload file loader uses to tell a binary trace from a JSON
// workload definition.
func IsTrace(data []byte) bool {
	return len(data) >= len(traceMagic) && bytes.Equal(data[:len(traceMagic)], traceMagic[:])
}

// traceVersion extracts the codec version field from an encoded trace
// (0 if the data is too short to carry one).
func traceVersion(data []byte) uint32 {
	if !IsTrace(data) || len(data) < len(traceMagic)+4 {
		return 0
	}
	return binary.LittleEndian.Uint32(data[len(traceMagic):])
}

// DecodeTrace reverses EncodeTrace for either codec version,
// materializing every record. Every defect is a distinct, loud error —
// wrong magic, future codec version, truncation, checksum mismatch, or
// malformed records — never a partial Trace: a damaged trace must not
// replay as a subtly different workload. Large v2 files should be
// opened with OpenFile instead, which streams records block by block
// rather than materializing them.
func DecodeTrace(data []byte) (*Trace, error) {
	if !IsTrace(data) {
		return nil, fmt.Errorf("trace: not a skybyte trace (bad magic)")
	}
	if len(data) < len(traceMagic)+8+sha256.Size {
		return nil, fmt.Errorf("trace: truncated (file shorter than the fixed envelope)")
	}
	switch v := traceVersion(data); v {
	case 1:
		return decodeTraceV1(data)
	case 2:
		r, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return nil, err
		}
		return r.Materialize()
	default:
		return nil, fmt.Errorf("trace: codec version %d, this build reads v1-v%d (re-record the trace)", v, CodecVersion)
	}
}

// decodeTraceV1 reverses encodeTraceV1.
func decodeTraceV1(data []byte) (*Trace, error) {
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], sum) {
		return nil, fmt.Errorf("trace: corrupt (checksum mismatch; the file was truncated or altered)")
	}
	pos := len(traceMagic) + 4 // past magic + version
	read32 := func() (uint32, error) {
		if pos+4 > len(body) {
			return 0, fmt.Errorf("trace: truncated inside the header")
		}
		v := binary.LittleEndian.Uint32(body[pos:])
		pos += 4
		return v, nil
	}
	metaLen, err := read32()
	if err != nil {
		return nil, err
	}
	if pos+int(metaLen) > len(body) {
		return nil, fmt.Errorf("trace: truncated inside the metadata block")
	}
	t := &Trace{}
	if err := json.Unmarshal(body[pos:pos+int(metaLen)], &t.Meta); err != nil {
		return nil, fmt.Errorf("trace: bad metadata: %w", err)
	}
	pos += int(metaLen)
	threads, err := read32()
	if err != nil {
		return nil, err
	}
	if threads == 0 {
		return nil, fmt.Errorf("trace: no thread streams")
	}
	for ti := uint32(0); ti < threads; ti++ {
		if pos+8 > len(body) {
			return nil, fmt.Errorf("trace: truncated before thread %d's record count", ti)
		}
		count := binary.LittleEndian.Uint64(body[pos:])
		pos += 8
		// Cap the pre-allocation by what the remaining bytes could
		// possibly hold (a record is >= 2 bytes): the declared count is
		// untrusted input, and a crafted file must fail with a
		// truncation error, not an enormous allocation.
		capHint := count
		if max := uint64(len(body)-pos) / 2; capHint > max {
			capHint = max
		}
		recs := make([]Record, 0, capHint)
		for ri := uint64(0); ri < count; ri++ {
			if pos >= len(body) {
				return nil, fmt.Errorf("trace: truncated inside thread %d's records", ti)
			}
			r, next, err := decodeRecord(body, pos)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d of thread %d: %w", ri, ti, err)
			}
			pos = next
			recs = append(recs, r)
		}
		t.Threads = append(t.Threads, recs)
	}
	if pos != len(body) {
		return nil, fmt.Errorf("trace: %d trailing bytes after the last record", len(body)-pos)
	}
	return t, nil
}

// TraceDigest returns the stable content identity of an encoded trace:
// the file's own codec version plus the hex of its sha256. Workload
// registration folds this into a trace-backed workload's source
// identity, so editing or re-recording a trace file — or re-encoding
// it under a different codec version — changes every fingerprint
// derived from it.
func TraceDigest(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return fmt.Sprintf("v%d:%s", traceVersion(encoded), hex.EncodeToString(sum[:]))
}

// RecordStream drains up to maxRecords records from src into a slice —
// the capture half of record/replay. It stops at stream end; cut the
// stream with Limited first to record an exact instruction budget.
func RecordStream(src Stream, maxRecords int) []Record {
	var recs []Record
	for len(recs) < maxRecords {
		r, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, r)
	}
	return recs
}
