package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"skybyte/internal/mem"
)

func sampleTrace() *Trace {
	rng := NewRNG(99)
	mk := func(n int) []Record {
		recs := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			switch i % 4 {
			case 0:
				recs = append(recs, Record{Kind: Compute, N: uint32(1 + rng.Intn(200))})
			case 1:
				recs = append(recs, Record{Kind: Load, Addr: mem.CXLBase + mem.Addr(rng.Uint64n(1<<27))})
			case 2:
				recs = append(recs, Record{Kind: LoadDep, Addr: mem.CXLBase + mem.Addr(rng.Uint64n(1<<27))})
			default:
				recs = append(recs, Record{Kind: Store, Addr: mem.CXLBase + mem.Addr(rng.Uint64n(1<<27))})
			}
		}
		return recs
	}
	return &Trace{
		Meta:    Meta{Workload: "ycsb", Seed: 7, FootprintPages: 38 * 1024, WriteRatio: 0.05, InstrPerThread: 16000},
		Threads: [][]Record{mk(500), mk(321), mk(44)},
	}
}

func TestTraceRoundTripByteIdentity(t *testing.T) {
	tr := sampleTrace()
	for _, version := range []int{1, 2} {
		a, err := EncodeTraceVersion(tr, version)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeTrace(a)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if !reflect.DeepEqual(dec.Meta, tr.Meta) {
			t.Fatalf("v%d: meta changed across round trip: %+v vs %+v", version, dec.Meta, tr.Meta)
		}
		if !reflect.DeepEqual(dec.Threads, tr.Threads) {
			t.Fatalf("v%d: records changed across round trip", version)
		}
		b, err := EncodeTraceVersion(dec, version)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("v%d: re-encoding a decoded trace is not byte-identical", version)
		}
		if TraceDigest(a) != TraceDigest(b) {
			t.Fatalf("v%d: digest differs across an identical round trip", version)
		}
		wantPrefix := fmt.Sprintf("v%d:", version)
		if !strings.HasPrefix(TraceDigest(a), wantPrefix) {
			t.Fatalf("digest %q does not carry the file's own version prefix %q", TraceDigest(a), wantPrefix)
		}
	}
	// The default encoder writes the current version.
	def, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := EncodeTraceVersion(tr, CodecVersion)
	if err != nil {
		t.Fatal(err)
	}
	if string(def) != string(cur) {
		t.Fatal("EncodeTrace does not match EncodeTraceVersion(t, CodecVersion)")
	}
}

func TestCrossVersionDecodeIdentical(t *testing.T) {
	tr := sampleTrace()
	v1, err := EncodeTraceVersion(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := EncodeTraceVersion(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := DecodeTrace(v1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeTrace(v2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("the same trace decodes differently through v1 and v2")
	}
	if len(v2) >= len(v1) {
		t.Fatalf("v2 (%d bytes) is not smaller than v1 (%d bytes)", len(v2), len(v1))
	}
}

func TestTraceReplayStream(t *testing.T) {
	tr := sampleTrace()
	for thread := 0; thread < 5; thread++ {
		st := tr.Stream(thread)
		want := tr.Threads[thread%len(tr.Threads)]
		for i, w := range want {
			got, ok := st.Next()
			if !ok {
				t.Fatalf("thread %d: stream ended at %d of %d", thread, i, len(want))
			}
			if got != w {
				t.Fatalf("thread %d: record %d replayed as %+v, recorded %+v", thread, i, got, w)
			}
		}
		if _, ok := st.Next(); ok {
			t.Fatalf("thread %d: stream continued past the recorded records", thread)
		}
	}
}

func TestTraceDecodeRejectsDamage(t *testing.T) {
	for _, version := range []int{1, 2} {
		good, err := EncodeTraceVersion(sampleTrace(), version)
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct {
			name    string
			mutate  func([]byte) []byte
			errPart string
		}{
			{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, "bad magic"},
			{"truncated", func(b []byte) []byte { return b[:len(b)-9] }, ""},
			{"tiny", func(b []byte) []byte { return b[:12] }, ""},
			{"flipped byte", func(b []byte) []byte { b[len(b)/2] ^= 1; return b }, ""},
			{"flipped checksum", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, "checksum"},
		}
		for _, tc := range cases {
			data := tc.mutate(append([]byte(nil), good...))
			_, err := DecodeTrace(data)
			if err == nil {
				t.Fatalf("v%d %s: damaged trace decoded without error", version, tc.name)
			}
			if tc.errPart != "" && !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("v%d %s: error %q does not mention %q", version, tc.name, err, tc.errPart)
			}
		}
	}
}

func TestTraceDecodeRejectsFutureVersion(t *testing.T) {
	good, err := EncodeTrace(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Bump the version field and re-seal the checksum, simulating a file
	// from a newer build: the decoder must refuse with a clear error
	// rather than guess at the layout.
	data := append([]byte(nil), good...)
	data[8] = CodecVersion + 7
	sum := sha256.Sum256(data[:len(data)-sha256.Size])
	copy(data[len(data)-sha256.Size:], sum[:])
	_, err = DecodeTrace(data)
	if err == nil || !strings.Contains(err.Error(), "codec version") {
		t.Fatalf("future-version trace decoded, err=%v", err)
	}
}

func TestDecodeRejectsHugeDeclaredCount(t *testing.T) {
	// A crafted file may declare an absurd record count over a valid
	// checksum (the author seals their own bytes): decoding must fail
	// with a truncation error, not attempt a matching allocation.
	tr := &Trace{
		Meta:    Meta{Workload: "x", FootprintPages: 1},
		Threads: [][]Record{{{Kind: Compute, N: 5}}},
	}
	data, err := EncodeTraceVersion(tr, 1) // the attack targets v1's flat count field
	if err != nil {
		t.Fatal(err)
	}
	meta, _ := json.Marshal(tr.Meta)
	countOff := 8 + 4 + 4 + len(meta) + 4
	binary.LittleEndian.PutUint64(data[countOff:], 1<<50)
	sum := sha256.Sum256(data[:len(data)-sha256.Size])
	copy(data[len(data)-sha256.Size:], sum[:])
	_, err = DecodeTrace(data)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("huge-count trace decoded, err=%v", err)
	}
}

func TestRecordStreamCuts(t *testing.T) {
	src := &SliceStream{Recs: []Record{
		{Kind: Compute, N: 10}, {Kind: Load, Addr: mem.CXLBase}, {Kind: Store, Addr: mem.CXLBase + 64},
	}}
	recs := RecordStream(src, 2)
	if len(recs) != 2 || recs[0].Kind != Compute || recs[1].Kind != Load {
		t.Fatalf("RecordStream cut wrong: %+v", recs)
	}
	recs = RecordStream(src, 100)
	if len(recs) != 1 || recs[0].Kind != Store {
		t.Fatalf("RecordStream did not drain the remainder: %+v", recs)
	}
}

func TestEncodeTraceRejectsEmpty(t *testing.T) {
	if _, err := EncodeTrace(&Trace{}); err == nil {
		t.Fatal("empty trace encoded")
	}
}
