package trace

import (
	"strings"
	"testing"

	"skybyte/internal/mem"
)

// pinnedTrace builds a fixed three-thread trace (uneven lengths, one
// empty stream) whose encodings were pinned before the encoder became
// streaming — so these digests witness that the rewrite changed no
// bytes.
func pinnedTrace() *Trace {
	tr := &Trace{Meta: Meta{Workload: "gold", Seed: 7, FootprintPages: 64}}
	rng := NewRNG(42)
	for th := 0; th < 3; th++ {
		var recs []Record
		n := 60000 + th*13
		if th == 2 {
			n = 0 // empty thread stream
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				recs = append(recs, Record{Kind: Compute, N: uint32(1 + rng.Intn(100))})
			case 1:
				recs = append(recs, Record{Kind: Load, Addr: mem.Addr(0x100000000 + 64*rng.Uint64n(1<<20))})
			default:
				recs = append(recs, Record{Kind: Store, Addr: mem.Addr(0x100000000 + 64*rng.Uint64n(1<<20))})
			}
		}
		tr.Threads = append(tr.Threads, recs)
	}
	return tr
}

// TestEncodeGoldenDigests pins the encoded bytes of both codec
// versions across encoder rewrites. The v1 digest depends only on this
// package; the v2 digest also depends on compress/flate's output for
// the pinned toolchain (WORKLOADS.md documents the caveat) — a Go
// version bump that changes deflate output legitimately moves it, and
// the fix is to re-pin alongside re-recording any checked-in traces.
func TestEncodeGoldenDigests(t *testing.T) {
	want := map[int]string{
		1: "v1:05dbfc827e229f8eaa9d7ac0957c9db8ebb6e33278890ab570ab0f3890351aea",
		2: "v2:ff1dec41e2b8f83e09a11b857b1bdb858f4e1d1d2556227ce85de17f93979772",
	}
	tr := pinnedTrace()
	for _, v := range []int{1, 2} {
		data, err := EncodeTraceVersion(tr, v)
		if err != nil {
			t.Fatal(err)
		}
		if got := TraceDigest(data); got != want[v] {
			t.Errorf("v%d encoding drifted: digest %s, pinned %s", v, got, want[v])
		}
	}
}

// TestStreamEncoderMatchesBatch: feeding records one at a time through
// the streaming API yields the same bytes as the batch entry point
// (which drives the same encoder, but via its own thread loop).
func TestStreamEncoderMatchesBatch(t *testing.T) {
	tr := pinnedTrace()
	for _, v := range []int{1, 2} {
		want, err := EncodeTraceVersion(tr, v)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewStreamEncoder(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, recs := range tr.Threads {
			e.BeginThread()
			for _, r := range recs {
				if err := e.Append(r); err != nil {
					t.Fatal(err)
				}
			}
		}
		if e.Threads() != 3 || e.Records() != uint64(tr.Records()) {
			t.Fatalf("v%d: encoder tracked %d threads / %d records", v, e.Threads(), e.Records())
		}
		got, err := e.Finish(tr.Meta)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("v%d: streamed bytes differ from batch encode", v)
		}
		// Round trip: the streamed file decodes to the original records.
		back, err := DecodeTrace(got)
		if err != nil {
			t.Fatal(err)
		}
		if back.Records() != tr.Records() || len(back.Threads) != len(tr.Threads) {
			t.Fatalf("v%d: round trip lost records", v)
		}
	}
}

// TestStreamEncoderMisuse: the failure modes are loud errors, not
// corrupt files.
func TestStreamEncoderMisuse(t *testing.T) {
	if _, err := NewStreamEncoder(3); err == nil || !strings.Contains(err.Error(), "version 3") {
		t.Fatalf("future version accepted: %v", err)
	}
	e, err := NewStreamEncoder(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Append(Record{Kind: Load, Addr: 64}); err == nil {
		t.Fatal("Append before BeginThread succeeded")
	}
	if _, err := e.Finish(Meta{}); err == nil {
		t.Fatal("poisoned encoder finished cleanly")
	}

	e, _ = NewStreamEncoder(2)
	if _, err := e.Finish(Meta{}); err == nil || !strings.Contains(err.Error(), "no thread streams") {
		t.Fatalf("zero-thread Finish: %v", err)
	}

	e, _ = NewStreamEncoder(1)
	e.BeginThread()
	if err := e.Append(Record{Kind: Kind(99)}); err == nil {
		t.Fatal("unknown record kind accepted")
	}

	e, _ = NewStreamEncoder(1)
	e.BeginThread()
	if err := e.Append(Record{Kind: Compute, N: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Finish(Meta{Workload: "x", FootprintPages: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Finish(Meta{}); err == nil {
		t.Fatal("second Finish succeeded")
	}
	if err := e.Append(Record{Kind: Compute, N: 1}); err == nil {
		t.Fatal("Append after Finish succeeded")
	}
}
