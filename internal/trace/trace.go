// Package trace defines the instruction-trace vocabulary the CPU model
// replays: compact records (compute bursts, loads, stores), the Stream
// interface workload generators implement, a Replayer ring that supports
// precise re-execution after a SkyByte context switch, and deterministic
// random-access pattern helpers (zipfian sampling à la YCSB).
//
// The paper replays PIN-captured traces; this package is the synthetic
// stand-in (see DESIGN.md §1): generators are deterministic functions of a
// seed, so every simulator variant replays the identical instruction stream.
package trace

import "skybyte/internal/mem"

// Kind discriminates trace records.
type Kind uint8

// Record kinds. A Compute record batches N back-to-back non-memory
// instructions (amortising trace storage and simulation cost); Load and
// Store are single memory instructions at byte address Addr. LoadDep is a
// load whose address depends on earlier in-flight loads (pointer chasing):
// it cannot issue until every outstanding miss resolves, which limits
// memory-level parallelism exactly the way graph traversals do — the
// access pattern that motivates the paper's coordinated context switch.
const (
	Compute Kind = iota
	Load
	Store
	LoadDep
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Load:
		return "load"
	case Store:
		return "store"
	case LoadDep:
		return "load-dep"
	}
	return "?"
}

// Record is one trace record.
type Record struct {
	Kind Kind
	N    uint32   // instruction count for Compute (>=1); ignored otherwise
	Addr mem.Addr // target address for Load/Store
}

// Instructions returns how many dynamic instructions the record represents.
func (r Record) Instructions() uint64 {
	if r.Kind == Compute {
		return uint64(r.N)
	}
	return 1
}

// Stream is a lazily generated instruction trace. Next returns the next
// record, or ok=false when the trace is exhausted.
type Stream interface {
	Next() (rec Record, ok bool)
}

// Offset shifts every memory record of a stream by a fixed byte delta,
// leaving compute records untouched. Multi-tenant runs use it to give
// each tenant group a disjoint arena within the CXL window while each
// tenant replays exactly the streams its solo run replays.
type Offset struct {
	Src   Stream
	Delta mem.Addr
}

// Next implements Stream.
func (o *Offset) Next() (Record, bool) {
	rec, ok := o.Src.Next()
	if ok && rec.Kind != Compute {
		rec.Addr += o.Delta
	}
	return rec, ok
}

// Limited truncates a stream after a total instruction budget. The final
// compute record is clipped so the budget is hit exactly.
type Limited struct {
	Src    Stream
	Budget uint64 // remaining instructions
}

// Next implements Stream.
func (l *Limited) Next() (Record, bool) {
	if l.Budget == 0 {
		return Record{}, false
	}
	rec, ok := l.Src.Next()
	if !ok {
		l.Budget = 0
		return Record{}, false
	}
	n := rec.Instructions()
	if n > l.Budget {
		rec = Record{Kind: Compute, N: uint32(l.Budget)}
		n = l.Budget
	}
	l.Budget -= n
	return rec, true
}

// FuncStream adapts a closure to the Stream interface.
type FuncStream func() (Record, bool)

// Next implements Stream.
func (f FuncStream) Next() (Record, bool) { return f() }

// SliceStream replays a fixed slice of records (used in tests).
type SliceStream struct {
	Recs []Record
	pos  int
}

// Next implements Stream.
func (s *SliceStream) Next() (Record, bool) {
	if s.pos >= len(s.Recs) {
		return Record{}, false
	}
	r := s.Recs[s.pos]
	s.pos++
	return r, true
}

// BufGen builds a Stream from a Refill function that emits one "unit of
// work" (a transaction, a vertex visit, a stencil row, ...) at a time.
// Generators in the workloads package are Refill closures over their state.
type BufGen struct {
	Refill func(emit func(Record)) bool // false = no more work
	buf    []Record
	pos    int
	done   bool
}

// Next implements Stream.
func (g *BufGen) Next() (Record, bool) {
	for g.pos >= len(g.buf) {
		if g.done {
			return Record{}, false
		}
		g.buf = g.buf[:0]
		g.pos = 0
		if !g.Refill(func(r Record) { g.buf = append(g.buf, r) }) {
			g.done = true
		}
	}
	r := g.buf[g.pos]
	g.pos++
	return r, true
}
