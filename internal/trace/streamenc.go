package trace

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// StreamEncoder builds an encoded trace one record at a time, so a
// producer — an importer parsing a multi-gigabyte external file, a
// recorder draining a generator — never materializes the full record
// slice. It is THE encoder: EncodeTraceVersion is a thin loop over
// BeginThread/Append/Finish, so the streamed bytes are identical to a
// batch encode by construction (same block cuts, same deflate state
// handling), and every digest derived from a trace is independent of
// which path produced it.
//
// Usage: NewStreamEncoder, then for each thread in order BeginThread
// followed by its Appends, then Finish with the file meta (meta is
// only needed at the end, so fields discovered during the pass —
// footprint, write ratio, source digest — can ride in it). The first
// error poisons the encoder; Finish reports it.
//
// Memory: v2 holds the current raw block (~64 KiB) plus the compressed
// blocks already cut, v1 holds the flat record bytes — either way peak
// heap tracks the encoded size (a few bytes per record), not the
// 16 B/record of a materialized []Record.
type StreamEncoder struct {
	version int
	counts  []uint64     // per-thread record counts, in BeginThread order
	body    bytes.Buffer // v2: sealed blocks; v1: per-thread count+records
	err     error

	// v2 block state: the raw payload being accumulated and the shared
	// deflate scratch, reset per block exactly like the batch loop did.
	raw        []byte
	blockCount int
	comp       bytes.Buffer
	fw         *flate.Writer

	// v1 writes each thread's u64 record count ahead of its records;
	// the count is only known at thread end, so a placeholder goes in at
	// BeginThread and is patched in place (body is append-only).
	countOff int
}

// errFinished poisons an encoder whose Finish already ran.
var errFinished = errors.New("trace: stream encode: encoder already finished")

// NewStreamEncoder returns an encoder for the given codec version (1
// flat, 2 block-compressed).
func NewStreamEncoder(version int) (*StreamEncoder, error) {
	e := &StreamEncoder{version: version}
	switch version {
	case 1:
		e.raw = make([]byte, 0, 16)
	case 2:
		fw, err := flate.NewWriter(&e.comp, flate.DefaultCompression)
		if err != nil {
			return nil, fmt.Errorf("trace: encode: %w", err)
		}
		e.fw = fw
		e.raw = make([]byte, 0, blockRawTarget+16)
	default:
		return nil, fmt.Errorf("trace: cannot encode codec version %d (this build writes v1 and v2)", version)
	}
	return e, nil
}

// BeginThread opens the next thread stream; subsequent Appends belong
// to it. Threads are numbered in call order.
func (e *StreamEncoder) BeginThread() {
	if e.err != nil {
		return
	}
	e.endThread()
	e.counts = append(e.counts, 0)
	if e.version == 1 {
		e.countOff = e.body.Len()
		var u64 [8]byte
		e.body.Write(u64[:]) // placeholder, patched at thread end
	}
}

// Append encodes one record into the current thread.
func (e *StreamEncoder) Append(r Record) error {
	if e.err != nil {
		return e.err
	}
	if len(e.counts) == 0 {
		e.err = errors.New("trace: stream encode: Append before BeginThread")
		return e.err
	}
	switch e.version {
	case 1:
		rec, err := appendRecord(e.raw[:0], r)
		if err != nil {
			e.err = err
			return err
		}
		e.raw = rec
		e.body.Write(rec)
	case 2:
		// Cut the block before the append that would pass the target —
		// the same rule as the batch loop's "append while raw < target",
		// so cuts land between the same records.
		if len(e.raw) >= blockRawTarget {
			if err := e.flushBlock(); err != nil {
				return err
			}
		}
		raw, err := appendRecord(e.raw, r)
		if err != nil {
			e.err = err
			return err
		}
		e.raw = raw
		e.blockCount++
	}
	e.counts[len(e.counts)-1]++
	return nil
}

// Records returns the total record count appended so far.
func (e *StreamEncoder) Records() uint64 {
	var n uint64
	for _, c := range e.counts {
		n += c
	}
	return n
}

// Threads returns the number of thread streams opened so far.
func (e *StreamEncoder) Threads() int { return len(e.counts) }

// endThread seals the current thread: v1 patches its record count in,
// v2 flushes the partial block. No-op before the first BeginThread.
func (e *StreamEncoder) endThread() {
	if len(e.counts) == 0 {
		return
	}
	switch e.version {
	case 1:
		binary.LittleEndian.PutUint64(e.body.Bytes()[e.countOff:], e.counts[len(e.counts)-1])
	case 2:
		e.flushBlock()
	}
}

// flushBlock deflates the accumulated raw payload and appends one
// sealed block for the current thread. Empty payloads emit nothing (a
// thread with no records has no blocks, matching the reader's
// expectation and the batch layout).
func (e *StreamEncoder) flushBlock() error {
	if e.blockCount == 0 {
		return nil
	}
	e.comp.Reset()
	e.fw.Reset(&e.comp)
	if _, err := e.fw.Write(e.raw); err != nil {
		e.err = fmt.Errorf("trace: encode: deflate: %w", err)
		return e.err
	}
	if err := e.fw.Close(); err != nil {
		e.err = fmt.Errorf("trace: encode: deflate: %w", err)
		return e.err
	}
	var varBuf [binary.MaxVarintLen64]byte
	put := func(v uint64) { e.body.Write(varBuf[:binary.PutUvarint(varBuf[:], v)]) }
	put(uint64(len(e.counts)-1) + 1) // thread+1; 0 is the end sentinel
	put(uint64(e.blockCount))
	put(uint64(len(e.raw)))
	put(uint64(e.comp.Len()))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(e.comp.Bytes(), crcTable))
	e.body.Write(crc[:])
	e.body.Write(e.comp.Bytes())
	e.raw = e.raw[:0]
	e.blockCount = 0
	return nil
}

// Finish seals the trace and returns the complete file bytes: header
// with meta, the encoded thread payloads, and the sha256 trailer. The
// encoder cannot be reused afterwards.
func (e *StreamEncoder) Finish(meta Meta) ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	e.endThread()
	if e.err != nil {
		return nil, e.err
	}
	if len(e.counts) == 0 {
		return nil, fmt.Errorf("trace: encode: no thread streams")
	}
	var b bytes.Buffer
	if err := encodeHeader(&b, meta, len(e.counts), uint32(e.version)); err != nil {
		return nil, err
	}
	if e.version == 2 {
		var u64 [8]byte
		for _, c := range e.counts {
			binary.LittleEndian.PutUint64(u64[:], c)
			b.Write(u64[:])
		}
	}
	b.Write(e.body.Bytes())
	if e.version == 2 {
		var varBuf [binary.MaxVarintLen64]byte
		b.Write(varBuf[:binary.PutUvarint(varBuf[:], 0)]) // block sentinel
	}
	sum := sha256.Sum256(b.Bytes())
	b.Write(sum[:])
	e.err = errFinished
	return b.Bytes(), nil
}
