package trace

import (
	"hash/crc32"
)

// The v2 container is the block-compressed layout:
//
//	magic[8] | u32 version=2 | u32 metaLen | meta JSON |
//	u32 threads | per thread: u64 recordCount |
//	blocks... | uvarint 0 (sentinel) | sha256[32]
//
// where each block is
//
//	uvarint thread+1 | uvarint recordCount | uvarint rawLen |
//	uvarint compLen | u32 crc32(compressed payload) |
//	compLen bytes of raw-deflate data
//
// Records inside a block use the same wire encoding as v1 (kind byte +
// uvarint value); blocks cut at ~blockRawTarget raw bytes, so a
// streaming reader holds one block's worth of decoded bytes at a time
// no matter how many records the file carries. The crc seals each
// compressed payload independently: a bit flip fails loudly at the
// damaged block (naming it), not as a late inflate error or a silent
// record change, and the sha256 trailer still seals the whole file.
// StreamEncoder writes this layout; Reader replays it block by block.
const (
	// blockRawTarget is the uncompressed payload size a block is cut
	// at. 64 KiB keeps per-stream replay memory small while giving
	// deflate enough context to reach the ratios WORKLOADS.md reports.
	blockRawTarget = 64 << 10
	// maxBlockRaw bounds the declared raw size a reader will allocate
	// for one block. Encoded blocks never exceed blockRawTarget plus
	// one record; the slack tolerates future target tuning while still
	// rejecting crafted headers that declare absurd sizes.
	maxBlockRaw = 1 << 22
)

// crcTable is the polynomial both sides use for block seals.
var crcTable = crc32.MakeTable(crc32.Castagnoli)
