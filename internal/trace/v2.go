package trace

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The v2 container is the block-compressed layout:
//
//	magic[8] | u32 version=2 | u32 metaLen | meta JSON |
//	u32 threads | per thread: u64 recordCount |
//	blocks... | uvarint 0 (sentinel) | sha256[32]
//
// where each block is
//
//	uvarint thread+1 | uvarint recordCount | uvarint rawLen |
//	uvarint compLen | u32 crc32(compressed payload) |
//	compLen bytes of raw-deflate data
//
// Records inside a block use the same wire encoding as v1 (kind byte +
// uvarint value); blocks cut at ~blockRawTarget raw bytes, so a
// streaming reader holds one block's worth of decoded bytes at a time
// no matter how many records the file carries. The crc seals each
// compressed payload independently: a bit flip fails loudly at the
// damaged block (naming it), not as a late inflate error or a silent
// record change, and the sha256 trailer still seals the whole file.
const (
	// blockRawTarget is the uncompressed payload size a block is cut
	// at. 64 KiB keeps per-stream replay memory small while giving
	// deflate enough context to reach the ratios WORKLOADS.md reports.
	blockRawTarget = 64 << 10
	// maxBlockRaw bounds the declared raw size a reader will allocate
	// for one block. Encoded blocks never exceed blockRawTarget plus
	// one record; the slack tolerates future target tuning while still
	// rejecting crafted headers that declare absurd sizes.
	maxBlockRaw = 1 << 22
)

// crcTable is the polynomial both sides use for block seals.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeTraceV2 writes the block-compressed v2 layout. Like v1 it is
// canonical — the same Trace always yields the same bytes — because
// block cuts depend only on the records and deflate is deterministic
// for a given toolchain (WORKLOADS.md notes the toolchain caveat).
func encodeTraceV2(t *Trace) ([]byte, error) {
	var b bytes.Buffer
	if err := encodeHeader(&b, t, 2); err != nil {
		return nil, err
	}
	var u64 [8]byte
	for _, recs := range t.Threads {
		binary.LittleEndian.PutUint64(u64[:], uint64(len(recs)))
		b.Write(u64[:])
	}
	var varBuf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { b.Write(varBuf[:binary.PutUvarint(varBuf[:], v)]) }
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.DefaultCompression)
	if err != nil {
		return nil, fmt.Errorf("trace: encode: %w", err)
	}
	raw := make([]byte, 0, blockRawTarget+16)
	for ti, recs := range t.Threads {
		pos := 0
		for pos < len(recs) {
			raw = raw[:0]
			count := 0
			for pos < len(recs) && len(raw) < blockRawTarget {
				if raw, err = appendRecord(raw, recs[pos]); err != nil {
					return nil, err
				}
				pos++
				count++
			}
			comp.Reset()
			fw.Reset(&comp)
			if _, err := fw.Write(raw); err != nil {
				return nil, fmt.Errorf("trace: encode: deflate: %w", err)
			}
			if err := fw.Close(); err != nil {
				return nil, fmt.Errorf("trace: encode: deflate: %w", err)
			}
			putUvarint(uint64(ti) + 1)
			putUvarint(uint64(count))
			putUvarint(uint64(len(raw)))
			putUvarint(uint64(comp.Len()))
			var crc [4]byte
			binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(comp.Bytes(), crcTable))
			b.Write(crc[:])
			b.Write(comp.Bytes())
		}
	}
	putUvarint(0) // block sentinel
	sum := sha256.Sum256(b.Bytes())
	b.Write(sum[:])
	return b.Bytes(), nil
}
