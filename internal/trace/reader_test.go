package trace

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"skybyte/internal/mem"
)

// writeTemp writes data to a fresh file under t.TempDir.
func writeTemp(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// drain pulls every record out of a stream.
func drain(st Stream) []Record {
	var recs []Record
	for {
		r, ok := st.Next()
		if !ok {
			return recs
		}
		recs = append(recs, r)
	}
}

func TestStreamingReaderMatchesDecode(t *testing.T) {
	tr := sampleTrace()
	for _, version := range []int{1, 2} {
		data, err := EncodeTraceVersion(tr, version)
		if err != nil {
			t.Fatal(err)
		}
		r, err := OpenFile(writeTemp(t, "s.trc", data))
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if got := r.FileVersion(); got != version {
			t.Fatalf("FileVersion = %d, file is v%d", got, version)
		}
		if !reflect.DeepEqual(r.TraceMeta(), tr.Meta) {
			t.Fatalf("v%d: meta %+v, want %+v", version, r.TraceMeta(), tr.Meta)
		}
		if r.NumThreads() != len(tr.Threads) {
			t.Fatalf("v%d: NumThreads = %d, want %d", version, r.NumThreads(), len(tr.Threads))
		}
		if r.NumRecords() != uint64(tr.Records()) {
			t.Fatalf("v%d: NumRecords = %d, want %d", version, r.NumRecords(), tr.Records())
		}
		if r.Digest() != TraceDigest(data) {
			t.Fatalf("v%d: streamed digest %q != TraceDigest %q", version, r.Digest(), TraceDigest(data))
		}
		// Streams replay the recorded records exactly, wrap modulo the
		// thread count, and are repeatable.
		for thread := 0; thread < len(tr.Threads)+2; thread++ {
			want := tr.Threads[thread%len(tr.Threads)]
			if got := drain(r.Stream(thread)); !reflect.DeepEqual(got, want) {
				t.Fatalf("v%d: thread %d replayed %d records, want %d (or differing content)",
					version, thread, len(got), len(want))
			}
		}
		mat, err := r.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mat.Threads, tr.Threads) || !reflect.DeepEqual(mat.Meta, tr.Meta) {
			t.Fatalf("v%d: Materialize diverged from the source trace", version)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// goldenTrace regenerates the records internal/trace/testdata/golden-v1.trc
// was recorded from (the fixture was written by the v1 encoder before the
// v2 container existed; this generator is its in-code twin).
func goldenTrace() *Trace {
	rng := NewRNG(4242)
	mk := func(n int) []Record {
		recs := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			switch i % 5 {
			case 0:
				recs = append(recs, Record{Kind: Compute, N: uint32(1 + rng.Intn(240))})
			case 1, 2:
				recs = append(recs, Record{Kind: Load, Addr: mem.CXLBase + mem.Addr(rng.Uint64n(1<<28))&^63})
			case 3:
				recs = append(recs, Record{Kind: LoadDep, Addr: mem.CXLBase + mem.Addr(rng.Uint64n(1<<28))&^63})
			default:
				recs = append(recs, Record{Kind: Store, Addr: mem.CXLBase + mem.Addr(rng.Uint64n(1<<28))&^63})
			}
		}
		return recs
	}
	return &Trace{
		Meta:    Meta{Workload: "golden", Seed: 42, FootprintPages: 1024, WriteRatio: 0.2, InstrPerThread: 5000},
		Threads: [][]Record{mk(700), mk(333), mk(128)},
	}
}

// TestGoldenV1Compat pins v1 compatibility to a checked-in fixture: a
// file recorded under the original flat codec must keep decoding —
// materialized and streamed — to the exact records and digest, forever.
func TestGoldenV1Compat(t *testing.T) {
	const fixture = "testdata/golden-v1.trc"
	const wantDigest = "v1:baec21cbf76d4cfe5fe4ecc998dbd008871ac601fac379471bd8fd14b7be74fe"
	data, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("golden fixture missing: %v", err)
	}
	if got := TraceDigest(data); got != wantDigest {
		t.Fatalf("fixture digest %q, want %q (the checked-in file changed)", got, wantDigest)
	}
	want := goldenTrace()
	dec, err := DecodeTrace(data)
	if err != nil {
		t.Fatalf("DecodeTrace on the v1 fixture: %v", err)
	}
	if !reflect.DeepEqual(dec.Meta, want.Meta) || !reflect.DeepEqual(dec.Threads, want.Threads) {
		t.Fatal("materializing decode of the v1 fixture diverged from the recorded streams")
	}
	r, err := OpenFile(fixture)
	if err != nil {
		t.Fatalf("streaming open of the v1 fixture: %v", err)
	}
	defer r.Close()
	if r.Digest() != wantDigest {
		t.Fatalf("streamed digest %q, want %q", r.Digest(), wantDigest)
	}
	for ti := range want.Threads {
		if got := drain(r.Stream(ti)); !reflect.DeepEqual(got, want.Threads[ti]) {
			t.Fatalf("thread %d streams differently through the streaming reader", ti)
		}
	}
	// And the fixture's records survive a v2 re-encode bit-exactly.
	re, err := EncodeTraceVersion(dec, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec2, err := DecodeTrace(re)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec2.Threads, want.Threads) {
		t.Fatal("v1 records changed across a v2 re-encode")
	}
}

// multiBlockTrace builds a single-thread trace large enough to span
// several v2 blocks.
func multiBlockTrace() *Trace {
	rng := NewRNG(7)
	recs := make([]Record, 0, 40000)
	for i := 0; i < 40000; i++ {
		switch i % 3 {
		case 0:
			recs = append(recs, Record{Kind: Compute, N: uint32(1 + rng.Intn(100))})
		case 1:
			recs = append(recs, Record{Kind: Load, Addr: mem.CXLBase + mem.Addr(rng.Uint64n(1<<30))&^63})
		default:
			recs = append(recs, Record{Kind: Store, Addr: mem.CXLBase + mem.Addr(rng.Uint64n(1<<30))&^63})
		}
	}
	return &Trace{
		Meta:    Meta{Workload: "blocks", Seed: 1, FootprintPages: 1 << 18},
		Threads: [][]Record{recs},
	}
}

// TestV2DamagedBlockFailsAtBlock flips one bit inside a specific
// compressed block: opening must fail naming exactly that block — not
// succeed, not fail at EOF, not report a vague whole-file error.
func TestV2DamagedBlockFailsAtBlock(t *testing.T) {
	data, err := EncodeTraceVersion(multiBlockTrace(), 2)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.blocks[0]) < 3 {
		t.Fatalf("test trace produced only %d blocks; grow it", len(clean.blocks[0]))
	}
	target := clean.blocks[0][2]
	bad := append([]byte(nil), data...)
	bad[target.off+int64(target.compLen)/2] ^= 0x10
	_, err = NewReader(bytes.NewReader(bad), int64(len(bad)))
	if err == nil {
		t.Fatal("a bit-flipped block opened without error")
	}
	if !strings.Contains(err.Error(), "block 2 of thread 0") || !strings.Contains(err.Error(), "damaged") {
		t.Fatalf("error %q does not name the damaged block", err)
	}

	// Truncating inside a block payload is equally loud, and names the
	// break point instead of surfacing as an EOF at the file's end.
	cut := target.off + int64(target.compLen)/2
	_, err = NewReader(bytes.NewReader(data[:cut]), cut)
	if err == nil {
		t.Fatal("a mid-block truncation opened without error")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation error %q is not explicit", err)
	}

	// Damage outside the sealed blocks (e.g. a length field in a block
	// header) is still caught — by the whole-file trailer if nothing
	// structural trips first.
	bad2 := append([]byte(nil), data...)
	bad2[len(traceMagic)+4] ^= 0x01 // metaLen low byte
	if _, err := NewReader(bytes.NewReader(bad2), int64(len(bad2))); err == nil {
		t.Fatal("header damage opened without error")
	}
}

// TestStreamingReplayBoundedMemory is the acceptance check for the v2
// container's reason to exist: replaying a >=1M-record trace through
// the streaming reader must hold O(block) live heap and O(blocks)
// allocations — not materialize the records.
func TestStreamingReplayBoundedMemory(t *testing.T) {
	const nRecords = 1_200_000
	rng := NewRNG(11)
	recs := make([]Record, 0, nRecords)
	for i := 0; i < nRecords; i++ {
		switch i % 3 {
		case 0:
			recs = append(recs, Record{Kind: Compute, N: uint32(1 + rng.Intn(120))})
		case 1:
			recs = append(recs, Record{Kind: Load, Addr: mem.CXLBase + mem.Addr(rng.Uint64n(1<<31))&^63})
		default:
			recs = append(recs, Record{Kind: Store, Addr: mem.CXLBase + mem.Addr(rng.Uint64n(1<<31))&^63})
		}
	}
	tr := &Trace{Meta: Meta{Workload: "big", Seed: 1, FootprintPages: 1 << 19}, Threads: [][]Record{recs}}
	materializedBytes := uint64(len(recs)) * uint64(16) // 16 B/record in memory
	data, err := EncodeTraceVersion(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, "big.trc", data)
	// Drop the encode-side allocations before baselining.
	tr, recs = nil, nil
	data = nil
	runtime.GC()

	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumRecords() < 1_000_000 {
		t.Fatalf("trace carries %d records; the acceptance bar is >= 1M", r.NumRecords())
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc
	baseMallocs := ms.Mallocs

	st := r.Stream(0)
	var n uint64
	var peak uint64
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		_ = rec
		n++
		if n%200_000 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}
	if n != r.NumRecords() {
		t.Fatalf("streamed %d of %d records", n, r.NumRecords())
	}
	// Live-heap bound: a materializing replay holds >=16 B/record
	// (~18 MiB here); the streaming reader must stay within a few
	// blocks of the baseline regardless of record count.
	const headroom = 6 << 20
	if peak > baseline+headroom {
		t.Fatalf("streamed replay grew the live heap by %d bytes (baseline %d, peak %d); bound is %d",
			peak-baseline, baseline, peak, headroom)
	}
	if peak-baseline >= materializedBytes/2 {
		t.Fatalf("streamed replay held %d bytes, not meaningfully below the %d a materialized replay needs",
			peak-baseline, materializedBytes)
	}
	// Allocation-count bound: O(blocks), not O(records). The file spans
	// ~130 blocks; give 100x slack — still three orders of magnitude
	// under one-alloc-per-record.
	allocs := ms.Mallocs - baseMallocs
	if allocs > 20_000 {
		t.Fatalf("streamed replay performed %d allocations for %d records; want O(blocks)", allocs, n)
	}
}

// TestV2RejectsOverflowingBlockHeader: block headers are untrusted
// input — sizes near 2^63 must fail validation as loud errors, not
// wrap an arithmetic check and surface later as an allocation panic.
func TestV2RejectsOverflowingBlockHeader(t *testing.T) {
	build := func(declCount, declRaw, declComp uint64) []byte {
		var b bytes.Buffer
		b.Write(traceMagic[:])
		var u32 [4]byte
		put32 := func(v uint32) {
			binary.LittleEndian.PutUint32(u32[:], v)
			b.Write(u32[:])
		}
		meta, _ := json.Marshal(Meta{Workload: "x", FootprintPages: 1})
		put32(2)
		put32(uint32(len(meta)))
		b.Write(meta)
		put32(1) // one thread
		var u64 [8]byte
		binary.LittleEndian.PutUint64(u64[:], declCount)
		b.Write(u64[:])
		// One real compute record, deflate-compressed and crc-sealed,
		// under whatever sizes the header declares.
		raw := []byte{byte(Compute), 2}
		var comp bytes.Buffer
		fw, _ := flate.NewWriter(&comp, flate.DefaultCompression)
		fw.Write(raw)
		fw.Close()
		var varBuf [binary.MaxVarintLen64]byte
		putUv := func(v uint64) { b.Write(varBuf[:binary.PutUvarint(varBuf[:], v)]) }
		putUv(1) // thread 0
		putUv(declCount)
		putUv(declRaw)
		putUv(declComp)
		binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(comp.Bytes(), crcTable))
		b.Write(u32[:])
		b.Write(comp.Bytes())
		putUv(0)
		sum := sha256.Sum256(b.Bytes())
		b.Write(sum[:])
		return b.Bytes()
	}
	cases := []struct {
		name                         string
		declCount, declRaw, declComp uint64
	}{
		{"count near 2^63", 1 << 63, 2, 1 << 62}, // count*2 would wrap to 0
		{"compLen near 2^63", 1, 2, 1 << 63},     // int64(compLen) would go negative
		{"rawLen near 2^63", 1, 1 << 63, 10},
	}
	for _, tc := range cases {
		data := build(tc.declCount, tc.declRaw, tc.declComp)
		r, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err == nil {
			// Belt and braces: even if the scan were loosened, decode
			// paths must not panic.
			if _, merr := r.Materialize(); merr == nil {
				t.Fatalf("%s: crafted file decoded without error", tc.name)
			}
			continue
		}
		if !strings.Contains(err.Error(), "impossible sizes") && !strings.Contains(err.Error(), "truncated") {
			t.Errorf("%s: error %q is not the named validation failure", tc.name, err)
		}
	}
}
