package trace

import (
	"math"
	"testing"
	"testing/quick"

	"skybyte/internal/mem"
)

func TestRecordInstructions(t *testing.T) {
	if (Record{Kind: Compute, N: 17}).Instructions() != 17 {
		t.Fatal("compute burst count")
	}
	if (Record{Kind: Load}).Instructions() != 1 || (Record{Kind: Store}).Instructions() != 1 {
		t.Fatal("memory op count")
	}
	if Compute.String() != "compute" || Load.String() != "load" || Store.String() != "store" {
		t.Fatal("kind names")
	}
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Recs: []Record{{Kind: Load, Addr: 64}, {Kind: Compute, N: 3}}}
	r, ok := s.Next()
	if !ok || r.Kind != Load {
		t.Fatal("first record")
	}
	r, ok = s.Next()
	if !ok || r.N != 3 {
		t.Fatal("second record")
	}
	if _, ok = s.Next(); ok {
		t.Fatal("stream should be exhausted")
	}
}

func TestOffsetShiftsMemoryRecordsOnly(t *testing.T) {
	src := &SliceStream{Recs: []Record{
		{Kind: Load, Addr: mem.CXLBase},
		{Kind: Compute, N: 5},
		{Kind: Store, Addr: mem.CXLBase + 64},
		{Kind: LoadDep, Addr: mem.CXLBase + 128},
	}}
	o := &Offset{Src: src, Delta: 2 * mem.PageBytes}
	want := []mem.Addr{mem.CXLBase + 2*mem.PageBytes, 0, mem.CXLBase + 2*mem.PageBytes + 64, mem.CXLBase + 2*mem.PageBytes + 128}
	for i := 0; ; i++ {
		r, ok := o.Next()
		if !ok {
			if i != 4 {
				t.Fatalf("stream ended after %d records", i)
			}
			break
		}
		if r.Kind == Compute {
			if r.N != 5 {
				t.Fatal("compute record mutated")
			}
			continue
		}
		if r.Addr != want[i] {
			t.Fatalf("record %d addr = %#x, want %#x", i, uint64(r.Addr), uint64(want[i]))
		}
	}
}

func TestLimitedClipsExactly(t *testing.T) {
	src := FuncStream(func() (Record, bool) { return Record{Kind: Compute, N: 10}, true })
	l := &Limited{Src: src, Budget: 25}
	var total uint64
	for {
		r, ok := l.Next()
		if !ok {
			break
		}
		total += r.Instructions()
	}
	if total != 25 {
		t.Fatalf("total instructions = %d, want exactly 25", total)
	}
}

func TestLimitedStopsOnSourceEnd(t *testing.T) {
	l := &Limited{Src: &SliceStream{Recs: []Record{{Kind: Load, Addr: 0}}}, Budget: 100}
	n := 0
	for {
		_, ok := l.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("records = %d, want 1", n)
	}
}

func TestBufGen(t *testing.T) {
	units := 0
	g := &BufGen{Refill: func(emit func(Record)) bool {
		if units == 3 {
			return false
		}
		units++
		emit(Record{Kind: Load, Addr: mem.Addr(units * 64)})
		emit(Record{Kind: Compute, N: 5})
		return true
	}}
	var recs []Record
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		recs = append(recs, r)
	}
	if len(recs) != 6 {
		t.Fatalf("records = %d, want 6", len(recs))
	}
	if recs[0].Addr != 64 || recs[4].Addr != 192 {
		t.Fatalf("unexpected record ordering: %+v", recs)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a2 := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("different seeds produce suspiciously similar streams")
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Fatalf("bucket %d count %d deviates >10%% from uniform", i, c)
		}
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if m := sum / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", m)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 10000, 0.99)
	const n = 200000
	counts := make(map[uint64]int)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate and the top-10 ranks must hold a large share.
	top10 := 0
	for rank := uint64(0); rank < 10; rank++ {
		top10 += counts[rank]
	}
	if float64(counts[0])/n < 0.05 {
		t.Fatalf("rank-0 share %v too small for theta=0.99", float64(counts[0])/n)
	}
	if float64(top10)/n < 0.2 {
		t.Fatalf("top-10 share %v too small for theta=0.99", float64(top10)/n)
	}
	// Low skew should look much flatter.
	z2 := NewZipf(NewRNG(11), 10000, 0.2)
	c0 := 0
	for i := 0; i < n; i++ {
		if z2.Next() == 0 {
			c0++
		}
	}
	if float64(c0)/n > 0.01 {
		t.Fatalf("theta=0.2 rank-0 share %v too large", float64(c0)/n)
	}
}

func TestZipfDomain(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := uint64(nRaw%1000) + 1
		z := NewZipf(NewRNG(seed), n, 0.9)
		for i := 0; i < 100; i++ {
			if z.Next() >= n {
				return false
			}
			if z.ScrambledNext() >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayerPassthrough(t *testing.T) {
	src := &SliceStream{Recs: []Record{
		{Kind: Compute, N: 10},
		{Kind: Load, Addr: 64},
		{Kind: Store, Addr: 128},
	}}
	r := NewReplayer(src)
	rec, idx, ok := r.Next()
	if !ok || rec.Kind != Compute || idx != 0 {
		t.Fatal("record 0")
	}
	rec, idx, ok = r.Next()
	if !ok || rec.Kind != Load || idx != 10 {
		t.Fatalf("record 1: idx=%d", idx)
	}
	rec, idx, ok = r.Next()
	if !ok || rec.Kind != Store || idx != 11 {
		t.Fatal("record 2")
	}
	if _, _, ok = r.Next(); ok {
		t.Fatal("should be exhausted")
	}
	if !r.Done() {
		t.Fatal("Done should be true")
	}
	if r.NextIdx() != 12 {
		t.Fatalf("NextIdx = %d, want 12", r.NextIdx())
	}
}

func TestReplayerRewind(t *testing.T) {
	src := &SliceStream{Recs: []Record{
		{Kind: Load, Addr: 0},
		{Kind: Compute, N: 5},
		{Kind: Load, Addr: 64},
		{Kind: Load, Addr: 128},
	}}
	r := NewReplayer(src)
	for i := 0; i < 4; i++ {
		if _, _, ok := r.Next(); !ok {
			t.Fatal("premature end")
		}
	}
	// Rewind to the load at instruction index 6 (after 1 + 5 instructions).
	r.RewindTo(6)
	rec, idx, ok := r.Next()
	if !ok || rec.Addr != 64 || idx != 6 {
		t.Fatalf("rewind replay: rec=%+v idx=%d", rec, idx)
	}
	rec, idx, ok = r.Next()
	if !ok || rec.Addr != 128 || idx != 7 {
		t.Fatal("continue after replay")
	}
	if _, _, ok = r.Next(); ok {
		t.Fatal("should now be exhausted")
	}
}

func TestReplayerRewindTwice(t *testing.T) {
	src := &SliceStream{Recs: []Record{
		{Kind: Load, Addr: 0}, {Kind: Load, Addr: 64}, {Kind: Load, Addr: 128},
	}}
	r := NewReplayer(src)
	r.Next()
	r.Next()
	r.Next()
	r.RewindTo(1)
	r.Next() // replays idx 1
	r.RewindTo(0)
	rec, idx, _ := r.Next()
	if idx != 0 || rec.Addr != 0 {
		t.Fatalf("second rewind: idx=%d", idx)
	}
	// Drain: 0,1,2 remain.
	n := 0
	for {
		_, _, ok := r.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("remaining records = %d, want 2", n)
	}
}

func TestReplayerRewindMissingPanics(t *testing.T) {
	r := NewReplayer(&SliceStream{Recs: []Record{{Kind: Load, Addr: 0}}})
	r.Next()
	defer func() {
		if recover() == nil {
			t.Fatal("RewindTo of unknown index should panic")
		}
	}()
	r.RewindTo(999)
}

// Property: for any random record sequence and any rewind point within the
// last few delivered records, replay yields exactly the same records as the
// original delivery.
func TestReplayerReplayFidelity(t *testing.T) {
	f := func(seed uint64, kinds []uint8) bool {
		if len(kinds) == 0 {
			return true
		}
		recs := make([]Record, len(kinds))
		for i, k := range kinds {
			switch k % 3 {
			case 0:
				recs[i] = Record{Kind: Compute, N: uint32(k%7) + 1}
			case 1:
				recs[i] = Record{Kind: Load, Addr: mem.Addr(i * 64)}
			default:
				recs[i] = Record{Kind: Store, Addr: mem.Addr(i * 64)}
			}
		}
		r := NewReplayer(&SliceStream{Recs: recs})
		type delivered struct {
			rec Record
			idx uint64
		}
		var got []delivered
		for {
			rec, idx, ok := r.Next()
			if !ok {
				break
			}
			got = append(got, delivered{rec, idx})
		}
		if len(got) != len(recs) {
			return false
		}
		// Rewind to a random delivered record and replay the tail.
		k := int(NewRNG(seed).Uint64n(uint64(len(got))))
		r.RewindTo(got[k].idx)
		for i := k; i < len(got); i++ {
			rec, idx, ok := r.Next()
			if !ok || rec != got[i].rec || idx != got[i].idx {
				return false
			}
		}
		_, _, ok := r.Next()
		return !ok && r.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayerLongStreamAges(t *testing.T) {
	// Deliver far more records than the ring capacity; rewinding to a very
	// recent record must still work.
	n := replayCap * 3
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Kind: Load, Addr: mem.Addr(i * 64)}
	}
	r := NewReplayer(&SliceStream{Recs: recs})
	var lastIdx uint64
	for i := 0; i < n; i++ {
		_, idx, ok := r.Next()
		if !ok {
			t.Fatal("premature end")
		}
		lastIdx = idx
	}
	r.RewindTo(lastIdx)
	rec, idx, ok := r.Next()
	if !ok || idx != lastIdx || rec.Addr != mem.Addr((n-1)*64) {
		t.Fatal("rewind to newest after aging failed")
	}
}
