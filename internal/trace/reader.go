package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// maxMetaLen bounds the declared metadata size a reader will buffer.
const maxMetaLen = 1 << 20

// blockRef locates one sealed block inside a v2 file.
type blockRef struct {
	off     int64 // file offset of the compressed payload
	compLen int
	rawLen  int
	count   int // records in the block
	crc     uint32
}

// Reader is the streaming Source over an on-disk trace. Opening scans
// and verifies the whole file once with a bounded buffer — envelope,
// per-block crc seals, and the sha256 trailer — and builds an index of
// block locations; Stream then inflates one block at a time on demand,
// so replaying a 100M-record trace holds O(block) memory per stream
// instead of materializing every record. v1 files have no block
// structure and are small legacy recordings, so they are materialized
// on open and served from memory; both versions present the same
// Source interface.
//
// Streams of distinct threads are independent and may run on distinct
// goroutines concurrently (reads go through io.ReaderAt). The Reader
// keeps its file handle for its lifetime; Close releases it.
type Reader struct {
	src     io.ReaderAt
	closer  io.Closer
	version int
	meta    Meta
	counts  []uint64
	blocks  [][]blockRef // per thread, in file order
	total   uint64
	digest  string
	legacy  *Trace // v1 files: materialized records
}

// OpenFile opens path as a streaming trace Reader, verifying the whole
// file (structure, every block seal, and the sha256 trailer) before
// returning. Damage is a loud, specific error: a flipped bit inside a
// compressed block names that block, and a truncated file fails at the
// point the structure breaks off — never a quiet EOF mid-replay.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	if r.legacy != nil {
		// v1 files are fully materialized at open; nothing will read
		// the file again, so don't pin the descriptor.
		f.Close()
		r.src = nil
		return r, nil
	}
	r.closer = f
	return r, nil
}

// NewReader builds a streaming Reader over size bytes of src,
// performing the same one-pass verification as OpenFile.
func NewReader(src io.ReaderAt, size int64) (*Reader, error) {
	minSize := int64(len(traceMagic) + 8 + sha256.Size)
	if size < minSize {
		return nil, fmt.Errorf("trace: truncated (file shorter than the fixed envelope)")
	}
	var head [12]byte
	if _, err := src.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if !IsTrace(head[:]) {
		return nil, fmt.Errorf("trace: not a skybyte trace (bad magic)")
	}
	switch version := binary.LittleEndian.Uint32(head[8:]); version {
	case 1:
		// Legacy flat layout: no block index to stream from. These are
		// small recordings from before the v2 container; materialize.
		buf := make([]byte, size)
		if _, err := io.ReadFull(io.NewSectionReader(src, 0, size), buf); err != nil {
			return nil, fmt.Errorf("trace: reading v1 file: %w", err)
		}
		legacy, err := decodeTraceV1(buf)
		if err != nil {
			return nil, err
		}
		return &Reader{
			src:     src,
			version: 1,
			meta:    legacy.Meta,
			total:   legacy.NumRecords(),
			digest:  TraceDigest(buf),
			legacy:  legacy,
		}, nil
	case 2:
		return scanV2(src, size)
	default:
		return nil, fmt.Errorf("trace: codec version %d, this build reads v1-v%d (re-record the trace)", version, CodecVersion)
	}
}

// scanV2 walks a v2 file once, sequentially: it parses the envelope,
// indexes every block, checks each block's crc seal as the payload
// streams past, and finally compares the sha256 trailer — all through
// one bounded buffer.
func scanV2(src io.ReaderAt, size int64) (*Reader, error) {
	bodyLen := size - sha256.Size
	h := sha256.New()
	br := bufio.NewReaderSize(io.TeeReader(io.NewSectionReader(src, 0, bodyLen), h), 64<<10)
	off := int64(0)
	need := func(buf []byte, what string) error {
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("trace: truncated inside %s", what)
		}
		off += int64(len(buf))
		return nil
	}
	var fixed [16]byte // magic[8] | u32 version | u32 metaLen
	if err := need(fixed[:], "the header"); err != nil {
		return nil, err
	}
	metaLen := binary.LittleEndian.Uint32(fixed[12:])
	if metaLen > maxMetaLen {
		return nil, fmt.Errorf("trace: metadata block of %d bytes (damaged length field?)", metaLen)
	}
	metaBuf := make([]byte, metaLen)
	if err := need(metaBuf, "the metadata block"); err != nil {
		return nil, err
	}
	r := &Reader{src: src, version: 2}
	if err := json.Unmarshal(metaBuf, &r.meta); err != nil {
		return nil, fmt.Errorf("trace: bad metadata: %w", err)
	}
	var u32 [4]byte
	if err := need(u32[:], "the header"); err != nil {
		return nil, err
	}
	threads := binary.LittleEndian.Uint32(u32[:])
	if threads == 0 {
		return nil, fmt.Errorf("trace: no thread streams")
	}
	if int64(threads)*8 > bodyLen-off {
		return nil, fmt.Errorf("trace: truncated inside the thread table")
	}
	r.counts = make([]uint64, threads)
	r.blocks = make([][]blockRef, threads)
	var u64 [8]byte
	for ti := range r.counts {
		if err := need(u64[:], "the thread table"); err != nil {
			return nil, err
		}
		r.counts[ti] = binary.LittleEndian.Uint64(u64[:])
		r.total += r.counts[ti]
	}
	readUvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(countingByteReader{br, &off})
		if err != nil {
			return 0, fmt.Errorf("trace: truncated inside %s", what)
		}
		return v, nil
	}
	seen := make([]uint64, threads)
	crcBuf := make([]byte, 32<<10)
	for bi := 0; ; bi++ {
		tag, err := readUvarint("the block index")
		if err != nil {
			return nil, err
		}
		if tag == 0 {
			break // sentinel: no more blocks
		}
		ti := tag - 1
		if ti >= uint64(threads) {
			return nil, fmt.Errorf("trace: block %d names thread %d of %d (damaged header?)", bi, ti, threads)
		}
		count, err := readUvarint("a block header")
		if err != nil {
			return nil, err
		}
		rawLen, err := readUvarint("a block header")
		if err != nil {
			return nil, err
		}
		compLen, err := readUvarint("a block header")
		if err != nil {
			return nil, err
		}
		// Bound every declared size before any arithmetic on it: these
		// are untrusted inputs, and a huge value must fail here as a
		// named error, not wrap around a check (count*2), go negative
		// in an int64 comparison, or reach an allocation. Encoded
		// blocks stay far below maxBlockRaw on both axes (deflate
		// output of <= blockRawTarget raw bytes never nears it).
		if count == 0 || rawLen == 0 || compLen == 0 ||
			rawLen > maxBlockRaw || compLen > maxBlockRaw || count > rawLen/2 {
			return nil, fmt.Errorf("trace: block %d of thread %d declares impossible sizes (%d records, %d raw, %d compressed bytes)",
				bi, ti, count, rawLen, compLen)
		}
		if int64(compLen) > bodyLen-off-4 {
			return nil, fmt.Errorf("trace: truncated inside block %d of thread %d", bi, ti)
		}
		if err := need(u32[:], "a block header"); err != nil {
			return nil, err
		}
		want := binary.LittleEndian.Uint32(u32[:])
		ref := blockRef{off: off, compLen: int(compLen), rawLen: int(rawLen), count: int(count), crc: want}
		crc := uint32(0)
		for left := int(compLen); left > 0; {
			n := left
			if n > len(crcBuf) {
				n = len(crcBuf)
			}
			if err := need(crcBuf[:n], fmt.Sprintf("block %d of thread %d", bi, ti)); err != nil {
				return nil, err
			}
			crc = crc32.Update(crc, crcTable, crcBuf[:n])
			left -= n
		}
		if crc != want {
			return nil, fmt.Errorf("trace: block %d of thread %d is damaged (crc mismatch; the file was altered after recording)", bi, ti)
		}
		seen[ti] += count
		r.blocks[ti] = append(r.blocks[ti], ref)
	}
	if off != bodyLen {
		return nil, fmt.Errorf("trace: %d trailing bytes after the block sentinel", bodyLen-off)
	}
	for ti, want := range r.counts {
		if seen[ti] != want {
			return nil, fmt.Errorf("trace: thread %d declares %d records but its blocks carry %d", ti, want, seen[ti])
		}
	}
	var trailer [sha256.Size]byte
	if _, err := src.ReadAt(trailer[:], bodyLen); err != nil {
		return nil, fmt.Errorf("trace: reading the checksum trailer: %w", err)
	}
	if got := h.Sum(nil); !bytes.Equal(got, trailer[:]) {
		return nil, fmt.Errorf("trace: corrupt (checksum mismatch outside the sealed blocks: header, metadata, or a block seal was altered)")
	}
	h.Write(trailer[:])
	r.digest = fmt.Sprintf("v2:%s", hex.EncodeToString(h.Sum(nil)))
	return r, nil
}

// countingByteReader adapts a bufio.Reader for binary.ReadUvarint
// while keeping the scan offset honest.
type countingByteReader struct {
	br  *bufio.Reader
	off *int64
}

func (c countingByteReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		*c.off++
	}
	return b, err
}

// TraceMeta implements Source.
func (r *Reader) TraceMeta() Meta { return r.meta }

// NumThreads implements Source.
func (r *Reader) NumThreads() int {
	if r.legacy != nil {
		return r.legacy.NumThreads()
	}
	return len(r.counts)
}

// NumRecords implements Source.
func (r *Reader) NumRecords() uint64 { return r.total }

// FileVersion implements Source: the codec version of the backing file.
func (r *Reader) FileVersion() int { return r.version }

// Digest returns the file's content identity — identical to
// TraceDigest of the encoded bytes, computed during the open scan
// without materializing the file.
func (r *Reader) Digest() string { return r.digest }

// Close releases the underlying file handle, when the Reader owns one
// (OpenFile). Streams must not be advanced after Close.
func (r *Reader) Close() error {
	if r.closer != nil {
		err := r.closer.Close()
		r.closer = nil
		return err
	}
	return nil
}

// Stream implements Source: a lazily decoded walk of thread's blocks
// (threads wrap modulo the recorded count). Each returned stream owns
// its own block buffers, so concurrent replays of distinct threads are
// safe; memory per stream stays bounded by one block.
func (r *Reader) Stream(thread int) Stream {
	if r.legacy != nil {
		return r.legacy.Stream(thread)
	}
	return &blockStream{r: r, blocks: r.blocks[thread%len(r.blocks)]}
}

// Materialize decodes every record into an in-memory Trace — the
// DecodeTrace path for callers that need the records as slices (e.g.
// re-encoding). Replay does not need it; use Stream.
func (r *Reader) Materialize() (*Trace, error) {
	if r.legacy != nil {
		cp := &Trace{Meta: r.legacy.Meta, Threads: r.legacy.Threads}
		return cp, nil
	}
	t := &Trace{Meta: r.meta}
	for ti := range r.blocks {
		recs := make([]Record, 0, r.counts[ti])
		st := r.Stream(ti)
		for {
			rec, ok := st.Next()
			if !ok {
				break
			}
			recs = append(recs, rec)
		}
		if uint64(len(recs)) != r.counts[ti] {
			return nil, fmt.Errorf("trace: thread %d streamed %d of %d records", ti, len(recs), r.counts[ti])
		}
		t.Threads = append(t.Threads, recs)
	}
	return t, nil
}

// blockStream walks one thread's blocks, inflating one at a time and
// decoding records on demand. Open-time verification has already
// sealed every block, so a failure here means the file changed under
// a live Reader — an unrecoverable programming/environment error the
// Stream interface has no channel for; it panics with the block's
// identity rather than replaying damaged records.
type blockStream struct {
	r      *Reader
	blocks []blockRef
	bi     int    // next block to load
	raw    []byte // current block, inflated
	pos    int    // cursor in raw
	left   int    // records remaining in the current block
	comp   []byte // scratch: compressed payload
	fr     io.ReadCloser
}

// Next implements Stream.
func (s *blockStream) Next() (Record, bool) {
	for s.left == 0 {
		if s.bi >= len(s.blocks) {
			return Record{}, false
		}
		s.load(s.blocks[s.bi])
		s.bi++
	}
	rec, pos, err := decodeRecord(s.raw, s.pos)
	if err != nil {
		panic(fmt.Sprintf("trace: block %d: %v (file changed under a live reader?)", s.bi-1, err))
	}
	s.pos = pos
	s.left--
	if s.left == 0 && s.pos != len(s.raw) {
		panic(fmt.Sprintf("trace: block %d carries %d bytes beyond its declared records", s.bi-1, len(s.raw)-s.pos))
	}
	return rec, true
}

// load reads, re-seals, and inflates one block into s.raw.
func (s *blockStream) load(ref blockRef) {
	if cap(s.comp) < ref.compLen {
		s.comp = make([]byte, ref.compLen)
	}
	comp := s.comp[:ref.compLen]
	if _, err := s.r.src.ReadAt(comp, ref.off); err != nil {
		panic(fmt.Sprintf("trace: reading block at offset %d: %v", ref.off, err))
	}
	if crc := crc32.Checksum(comp, crcTable); crc != ref.crc {
		panic(fmt.Sprintf("trace: block at offset %d is damaged (crc mismatch; file changed under a live reader)", ref.off))
	}
	if s.fr == nil {
		s.fr = flate.NewReader(bytes.NewReader(comp))
	} else if err := s.fr.(flate.Resetter).Reset(bytes.NewReader(comp), nil); err != nil {
		panic(fmt.Sprintf("trace: resetting inflater: %v", err))
	}
	if cap(s.raw) < ref.rawLen {
		s.raw = make([]byte, ref.rawLen)
	}
	s.raw = s.raw[:ref.rawLen]
	if _, err := io.ReadFull(s.fr, s.raw); err != nil {
		panic(fmt.Sprintf("trace: inflating block at offset %d: %v", ref.off, err))
	}
	var one [1]byte
	if n, _ := s.fr.Read(one[:]); n != 0 {
		panic(fmt.Sprintf("trace: block at offset %d inflates beyond its declared %d bytes", ref.off, ref.rawLen))
	}
	s.pos = 0
	s.left = ref.count
}
