package trace

import "fmt"

// replayCap is the ring capacity of a Replayer in records. A context switch
// rewinds at most ROB-size instructions (the faulting load is within the ROB
// window of the newest fetched instruction), so with 256-entry ROBs a 4 Ki
// ring has an order of magnitude of slack.
const replayCap = 4096

// Replayer wraps a Stream and remembers recently delivered records so the
// CPU model can rewind to the exact faulting load after a SkyByte Long Delay
// Exception and re-execute from there (paper §III-A C3–C4). Instruction
// indices are cumulative dynamic instruction counts, with a compute burst
// occupying a contiguous index range.
type Replayer struct {
	src     Stream
	ring    [replayCap]posRecord
	ringLen int    // valid records in ring (<= replayCap)
	ringEnd int    // ring slot one past the newest record
	cursor  int    // offset (in records) behind the newest record; 0 = pull from src
	nextIdx uint64 // instruction index of the next record to deliver when cursor==0
	drained bool
}

type posRecord struct {
	startIdx uint64
	rec      Record
}

// NewReplayer wraps src.
func NewReplayer(src Stream) *Replayer { return &Replayer{src: src} }

// Next returns the next record and the instruction index of its first
// instruction. After a RewindTo, previously delivered records are replayed.
func (r *Replayer) Next() (rec Record, startIdx uint64, ok bool) {
	if r.cursor > 0 {
		slot := (r.ringEnd - r.cursor + replayCap) % replayCap
		pr := r.ring[slot]
		r.cursor--
		return pr.rec, pr.startIdx, true
	}
	if r.drained {
		return Record{}, 0, false
	}
	rec, okSrc := r.src.Next()
	if !okSrc {
		r.drained = true
		return Record{}, 0, false
	}
	pr := posRecord{startIdx: r.nextIdx, rec: rec}
	r.ring[r.ringEnd] = pr
	r.ringEnd = (r.ringEnd + 1) % replayCap
	if r.ringLen < replayCap {
		r.ringLen++
	}
	r.nextIdx += rec.Instructions()
	return rec, pr.startIdx, true
}

// RewindTo repositions the stream so the next Next call re-delivers the
// record whose startIdx equals idx. It panics if the record has aged out of
// the ring — that would mean the CPU rewound further than its ROB allows.
func (r *Replayer) RewindTo(idx uint64) {
	for off := r.cursor + 1; off <= r.ringLen; off++ {
		slot := (r.ringEnd - off + replayCap) % replayCap
		if r.ring[slot].startIdx == idx {
			r.cursor = off
			return
		}
		if r.ring[slot].startIdx < idx {
			break
		}
	}
	panic(fmt.Sprintf("trace: RewindTo(%d) target not in replay ring", idx))
}

// Done reports whether the underlying stream is exhausted and no replayable
// records remain in front of the cursor.
func (r *Replayer) Done() bool { return r.drained && r.cursor == 0 }

// NextIdx returns the instruction index the next fresh (non-replayed)
// record will start at — i.e. the total instructions generated so far.
func (r *Replayer) NextIdx() uint64 { return r.nextIdx }

// CursorIdx returns the instruction index of the record the next Next
// call will actually deliver. Unlike NextIdx it regresses after a
// RewindTo and recovers as the replayed records are re-delivered —
// the open-loop request gate uses it so a squashed request must
// re-execute fully before it can complete.
func (r *Replayer) CursorIdx() uint64 {
	if r.cursor > 0 {
		slot := (r.ringEnd - r.cursor + replayCap) % replayCap
		return r.ring[slot].startIdx
	}
	return r.nextIdx
}
