package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skybyte/internal/system"
	"skybyte/internal/workloads"
)

func validMix() Mix {
	return Mix{
		Format: MixFormatVersion,
		Name:   "test-mix",
		Tenants: []TenantDef{
			{Name: "a", Workload: "bc", Threads: 2},
			{Name: "b", Workload: "srad", Threads: 2, Intensity: 0.5},
		},
	}
}

func TestValidateRejectsMalformedMixes(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Mix)
		want string
	}{
		{"bad format", func(m *Mix) { m.Format = 99 }, "format"},
		{"no name", func(m *Mix) { m.Name = "" }, "name"},
		{"bad name", func(m *Mix) { m.Name = "no spaces" }, "name"},
		{"no tenants", func(m *Mix) { m.Tenants = nil }, "at least one tenant"},
		{"no workload", func(m *Mix) { m.Tenants[0].Workload = "" }, "missing a workload"},
		{"zero threads", func(m *Mix) { m.Tenants[0].Threads = 0 }, "threads"},
		{"negative intensity", func(m *Mix) { m.Tenants[1].Intensity = -1 }, "intensity"},
		{"duplicate names", func(m *Mix) { m.Tenants[1].Name = "a" }, "duplicate"},
	}
	for _, tc := range cases {
		m := validMix()
		tc.mut(&m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := validMix().Validate(); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
	// Two tenants may share a workload when given distinct names.
	m := validMix()
	m.Tenants[1].Workload = "bc"
	if err := m.Validate(); err != nil {
		t.Fatalf("shared workload with distinct names rejected: %v", err)
	}
}

func TestNormalizationReachesFingerprint(t *testing.T) {
	explicit := validMix()
	explicit.Tenants[0].Intensity = 1 // the default, spelled out
	defaulted := validMix()
	if explicit.Fingerprint() != defaulted.Fingerprint() {
		t.Fatal("equivalent mixes fingerprint differently")
	}
	changed := validMix()
	changed.Tenants[0].Threads = 3
	if changed.Fingerprint() == defaulted.Fingerprint() {
		t.Fatal("semantic change did not change the fingerprint")
	}
}

func TestPerThreadInstr(t *testing.T) {
	m := validMix() // 4 threads; tenant 1 at intensity 0.5
	if got := m.PerThreadInstr(0, 40_000); got != 10_000 {
		t.Fatalf("intensity-1 per-thread budget = %d, want 10000", got)
	}
	if got := m.PerThreadInstr(1, 40_000); got != 5_000 {
		t.Fatalf("intensity-0.5 per-thread budget = %d, want 5000", got)
	}
	if m.TotalThreads() != 4 {
		t.Fatalf("TotalThreads = %d", m.TotalThreads())
	}
}

func TestSourceIDFoldsMemberWorkloads(t *testing.T) {
	defer resetRegistry()
	defOf := func(theta float64) workloads.Def {
		return workloads.Def{
			Format:         workloads.DefFormatVersion,
			Name:           "srcid-w",
			FootprintPages: 1024,
			Regions:        []workloads.RegionDef{{Name: "r", Start: 0, Size: 1}},
			Phases: []workloads.PhaseDef{{Ops: []workloads.OpDef{
				{Op: "load", Region: "r", Kernel: workloads.KernelZipf, Theta: theta},
				{Op: "compute", Min: 4},
			}}},
		}
	}
	if err := workloads.Register(defOf(0.8).MustSpec()); err != nil {
		t.Fatal(err)
	}
	m := validMix()
	m.Tenants[0].Workload = "srcid-w"
	before := m.SourceID()
	if before == (validMix()).SourceID() {
		t.Fatal("different member workloads, same SourceID")
	}
	// Editing the member definition changes the mix SourceID even
	// though the mix itself (and its Fingerprint) is unchanged.
	if err := workloads.Register(defOf(0.7).MustSpec()); err != nil {
		t.Fatal(err)
	}
	if m.SourceID() == before {
		t.Fatal("member workload edit did not reach the mix SourceID")
	}
	if m.Fingerprint() == "" || m.Fingerprint() != m.Fingerprint() {
		t.Fatal("fingerprint unstable")
	}
}

func TestRegistryResolvesMixes(t *testing.T) {
	defer resetRegistry()
	if _, err := ByName("graph-vs-log"); err != nil {
		t.Fatalf("built-in mix unresolvable: %v", err)
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "graph-vs-log") {
		t.Fatalf("unknown-mix error should list the valid set, got: %v", err)
	}
	m := validMix()
	if err := Register(m); err != nil {
		t.Fatal(err)
	}
	got, err := ByName("test-mix")
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenants[1].Intensity != 0.5 {
		t.Fatalf("registered mix lost fields: %+v", got)
	}
	// Replacement is the file-editing loop.
	m.Tenants[0].Threads = 3
	if err := Register(m); err != nil {
		t.Fatal(err)
	}
	if got, _ := ByName("test-mix"); got.Tenants[0].Threads != 3 {
		t.Fatal("re-registration did not replace the mix")
	}
	// Built-in names are reserved.
	bad := validMix()
	bad.Name = "graph-vs-log"
	if err := Register(bad); err == nil {
		t.Fatal("built-in name accepted for registration")
	}
	names := Names()
	if names[0] != "graph-vs-log" || names[len(names)-1] != "test-mix" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestMixFromFile(t *testing.T) {
	defer resetRegistry()
	good := `{
  "format": 1,
  "name": "file-mix",
  "tenants": [
    {"name": "g", "workload": "graph500", "threads": 2},
    {"workload": "ycsb", "threads": 2, "intensity": 2}
  ]
}`
	dir := t.TempDir()
	path := filepath.Join(dir, "mix.json")
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := RegisterFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "file-mix" || m.Tenants[1].Name != "ycsb" || m.Tenants[1].Intensity != 2 {
		t.Fatalf("loaded mix wrong: %+v", m)
	}
	if _, err := ByName("file-mix"); err != nil {
		t.Fatal("file mix not registered")
	}

	// Unknown fields fail loudly.
	typo := strings.Replace(good, `"intensity"`, `"intensty"`, 1)
	badPath := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(badPath, []byte(typo), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromFile(badPath); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Wrong format version fails loudly.
	old := strings.Replace(good, `"format": 1`, `"format": 0`, 1)
	oldPath := filepath.Join(dir, "old.json")
	if err := os.WriteFile(oldPath, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromFile(oldPath); err == nil {
		t.Fatal("format mismatch accepted")
	}
}

// TestApplyRunsPerTenant drives a mix end to end on a real system and
// checks the per-tenant slice: declaration order, thread counts,
// intensity-scaled instruction shares, and progress for every tenant.
func TestApplyRunsPerTenant(t *testing.T) {
	m := validMix()
	cfg := system.ScaledConfig().WithVariant(system.SkyByteFull)
	sys := system.New(cfg)
	if err := m.Apply(sys, 16_000, 1); err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(res.Tenants))
	}
	a, b := res.Tenants[0], res.Tenants[1]
	if a.Name != "a" || a.Workload != "bc" || a.Threads != 2 {
		t.Fatalf("tenant 0 = %+v", a)
	}
	if a.Instructions == 0 || b.Instructions == 0 {
		t.Fatal("a tenant made no progress")
	}
	// Intensity 0.5: tenant b's threads each replay half of tenant a's
	// per-thread budget.
	if a.Instructions != 2*b.Instructions {
		t.Fatalf("intensity split wrong: a=%d b=%d", a.Instructions, b.Instructions)
	}
	if a.ExecTime == 0 || b.ExecTime == 0 {
		t.Fatal("tenant completion times missing")
	}

	// Unresolvable member workloads error before simulating.
	bad := validMix()
	bad.Tenants[0].Workload = "no-such-workload"
	if err := bad.Apply(system.New(cfg), 1000, 1); err == nil {
		t.Fatal("unresolvable workload accepted")
	}
}

// TestApplyRejectsOversizedMixes: the combined tenant footprint must
// fit the device's logical space — overlapping arenas would alias
// tenants' data, and wrapping would fault the FTL mid-run.
func TestApplyRejectsOversizedMixes(t *testing.T) {
	defer resetRegistry()
	huge := workloads.Def{
		Format:         workloads.DefFormatVersion,
		Name:           "huge-w",
		FootprintPages: 1 << 20, // 4 GB of pages on a 2 GB device
		Regions:        []workloads.RegionDef{{Name: "r", Start: 0, Size: 1}},
		Phases: []workloads.PhaseDef{{Ops: []workloads.OpDef{
			{Op: "load", Region: "r"},
			{Op: "compute", Min: 4},
		}}},
	}
	if err := workloads.Register(huge.MustSpec()); err != nil {
		t.Fatal(err)
	}
	m := validMix()
	m.Tenants[0].Workload = "huge-w"
	cfg := system.ScaledConfig().WithVariant(system.BaseCSSD)
	err := m.Apply(system.New(cfg), 1000, 1)
	if err == nil || !strings.Contains(err.Error(), "footprint") {
		t.Fatalf("oversized mix accepted (err=%v)", err)
	}
}
