// Package tenant is the multi-tenant subsystem: it lets one simulation
// assign *different* workloads to named thread groups and attributes
// the results per group. The paper evaluates every design point with
// all hardware threads replaying the same workload, but the target
// deployment — a CXL-SSD as pooled far memory — is inherently
// multi-tenant, and interference between co-located workloads is where
// these designs win or lose (OpenCXD, the CMM-H characterization). A
// Mix is declarative and JSON-loadable like a workload Def: tenants
// are data, not code, and a mix's canonical fingerprint (folding the
// source identity of every member workload) reaches the runner spec
// key, so the persistent result store re-keys the moment a mix file or
// a member definition changes — and only then.
//
// WORKLOADS.md documents the on-file schema; EXPERIMENTS.md documents
// the figmix solo-vs-co-located fairness table built on top.
package tenant

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"skybyte/internal/mem"
	"skybyte/internal/system"
	"skybyte/internal/trace"
	"skybyte/internal/workloads"
)

// MixFormatVersion names the declarative mix format. It appears as the
// required "format" field of every mix file and is folded into each
// mix's fingerprint, so a format change can never silently reinterpret
// an old file.
const MixFormatVersion = 1

// Mix assigns workloads to named thread groups. Thread IDs are
// allocated contiguously in tenant declaration order; each tenant's
// threads replay its workload's streams 0..Threads-1 — the same
// streams a solo run of that workload with the same thread count
// replays, which is what makes solo-vs-co-located slowdowns
// apples-to-apples.
type Mix struct {
	// Format must equal MixFormatVersion.
	Format int `json:"format"`
	// Name is the mix's registry name (same character set as workload
	// names).
	Name string `json:"name"`
	// Tenants lists the thread groups in declaration order.
	Tenants []TenantDef `json:"tenants"`
}

// TenantDef is one thread group of a mix.
type TenantDef struct {
	// Name labels the group in tables and Result.Tenants (defaults to
	// the workload name).
	Name string `json:"name,omitempty"`
	// Workload names the workload the group's threads replay — any
	// resolvable name: Table I, the extension scenarios, or a
	// file-registered workload. Resolution happens at run time, so a
	// mix may reference workloads registered after it.
	Workload string `json:"workload"`
	// Threads is the group's software thread count.
	Threads int `json:"threads"`
	// Intensity scales the group's per-thread instruction budget
	// relative to an even split of the run's total (default 1): 0.5
	// models a tenant issuing half the work per thread, 2 a double-rate
	// tenant.
	Intensity float64 `json:"intensity,omitempty"`
}

// intensity is the tenant's effective budget scale (0 → 1).
func (t TenantDef) intensity() float64 {
	if t.Intensity == 0 {
		return 1
	}
	return t.Intensity
}

// normalized returns a copy with every defaulted field made explicit,
// so two mixes that mean the same thing fingerprint identically.
func (m Mix) normalized() Mix {
	m.Tenants = append([]TenantDef(nil), m.Tenants...)
	for i := range m.Tenants {
		t := &m.Tenants[i]
		if t.Name == "" {
			t.Name = t.Workload
		}
		t.Intensity = t.intensity()
	}
	return m
}

// Validate checks the mix against the format's contract and returns
// the first violation, phrased for a human editing a file. Workload
// names are checked for well-formedness only — they resolve against
// the live registry at run time.
func (m Mix) Validate() error {
	if m.Format != MixFormatVersion {
		return fmt.Errorf("tenant: %q: format %d, this build reads format %d", m.Name, m.Format, MixFormatVersion)
	}
	if err := workloads.ValidateName(m.Name); err != nil {
		return fmt.Errorf("tenant: mix %w", err)
	}
	if len(m.Tenants) == 0 {
		return fmt.Errorf("tenant: %q: at least one tenant required", m.Name)
	}
	seen := map[string]bool{}
	for i, t := range m.Tenants {
		at := fmt.Sprintf("tenant: %q: tenant %d", m.Name, i)
		if t.Workload == "" {
			return fmt.Errorf("%s: missing a workload", at)
		}
		if err := workloads.ValidateName(t.Workload); err != nil {
			return fmt.Errorf("%s: workload %w", at, err)
		}
		name := t.Name
		if name == "" {
			name = t.Workload
		}
		if err := workloads.ValidateName(name); err != nil {
			return fmt.Errorf("%s: %w", at, err)
		}
		if seen[name] {
			return fmt.Errorf("%s: duplicate tenant name %q (set distinct \"name\" fields when two tenants share a workload)", at, name)
		}
		seen[name] = true
		if t.Threads <= 0 {
			return fmt.Errorf("%s (%s): threads must be positive", at, name)
		}
		if t.Intensity < 0 {
			return fmt.Errorf("%s (%s): negative intensity", at, t.Workload)
		}
	}
	return nil
}

// TotalThreads returns the mix's combined software thread count.
func (m Mix) TotalThreads() int {
	n := 0
	for _, t := range m.Tenants {
		n += t.Threads
	}
	return n
}

// PerThreadInstr returns tenant i's per-thread instruction budget for
// a run of totalInstr total instructions: the even per-thread split of
// the total, scaled by the tenant's intensity. Pure integer-in,
// integer-out arithmetic on deterministic float operations, so every
// process computes identical budgets.
func (m Mix) PerThreadInstr(i int, totalInstr uint64) uint64 {
	total := m.TotalThreads()
	if total == 0 {
		return 0
	}
	return uint64(m.Tenants[i].intensity() * float64(totalInstr) / float64(total))
}

// Fingerprint returns the mix's stable content identity: a hex digest
// of its normalized canonical JSON, prefixed with the format version.
// It covers the mix *shape* only; SourceID additionally folds the
// member workloads' source identities.
func (m Mix) Fingerprint() string {
	b, err := json.Marshal(m.normalized())
	if err != nil {
		panic(fmt.Sprintf("tenant: mix not fingerprintable: %v", err))
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("fmt%d:%s", MixFormatVersion, hex.EncodeToString(sum[:]))
}

// SourceID returns the full source identity of a mix run: the mix's
// own fingerprint plus each member workload's SourceID. It is the
// mix-side analogue of workloads.Spec.SourceID — the runner folds it
// into the spec key, so editing the mix file, changing a member
// definition, re-recording a member trace, or bumping a generator or
// codec version re-keys exactly the affected store entries. An
// unresolvable member contributes an "unresolved" marker (the run
// itself will error before simulating).
func (m Mix) SourceID() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mix:%s", m.Fingerprint())
	for _, t := range m.Tenants {
		src := "unresolved"
		if w, err := workloads.ByName(t.Workload); err == nil {
			src = w.SourceID()
		}
		fmt.Fprintf(&b, "|%s=%s", t.Workload, src)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return "mix:" + hex.EncodeToString(sum[:])
}

// Apply resolves the mix against the workload registry and populates
// sys: tenants are declared in order, and each tenant's threads replay
// its workload's streams 0..Threads-1 (tenant-local indices, matching
// a solo run) at the tenant's PerThreadInstr budget.
//
// Each tenant occupies a disjoint arena: tenant i's streams shift by
// the cumulative footprint of the tenants before it, so co-located
// groups contend for the link, the SSD DRAM, the write log, the flash
// dies, and the scheduler — the interference under study — but never
// alias each other's data. The combined footprint must fit the
// device's logical space.
func (m Mix) Apply(sys *system.System, totalInstr, seed uint64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	n := m.normalized()
	infos := make([]system.TenantInfo, len(n.Tenants))
	specs := make([]workloads.Spec, len(n.Tenants))
	var totalPages uint64
	for i, t := range n.Tenants {
		w, err := workloads.ByName(t.Workload)
		if err != nil {
			return fmt.Errorf("tenant: %q: %w", n.Name, err)
		}
		specs[i] = w
		infos[i] = system.TenantInfo{Name: t.Name, Workload: t.Workload, Threads: t.Threads}
		totalPages += w.FootprintPages
	}
	if logical := sys.FTL().LogicalPages(); totalPages > logical {
		return fmt.Errorf("tenant: %q: combined footprint %d pages exceeds the device's %d logical pages (shrink the mix or grow the machine)",
			n.Name, totalPages, logical)
	}
	sys.DeclareTenants(infos)
	var base uint64 // cumulative arena offset, in pages
	for i, t := range n.Tenants {
		per := n.PerThreadInstr(i, totalInstr)
		delta := mem.Addr(base) * mem.PageBytes
		for k := 0; k < t.Threads; k++ {
			sys.AddThreadFor(i, &trace.Offset{Src: specs[i].Stream(k, seed), Delta: delta}, per)
		}
		base += specs[i].FootprintPages
	}
	return nil
}

// --- registry ---

// registry holds every mix beyond the built-ins, in registration
// order, mirroring the workload registry's contract: register before
// building runners or harnesses; re-registering a name replaces it
// (the file-editing loop); built-in names are reserved.
var registry = struct {
	sync.Mutex
	mixes []Mix
	index map[string]int
}{index: map[string]int{}}

// builtinMixes caches the code-defined mixes.
var builtinMixes = sync.OnceValue(func() []Mix {
	return []Mix{graphVsLog(), scanVsPoint()}
})

// Builtins returns the code-defined mixes: interference pairings of
// the extension scenarios and Table I workloads, used by the figmix
// fairness table. The returned slice is shared — do not mutate.
func Builtins() []Mix {
	return builtinMixes()
}

// graphVsLog co-locates the latency-bound Graph500-style pointer chase
// (the coordinated context switch's best case) with the bursty
// log-append writer (the write log's adversarial dense-write case):
// who pays for whose context switches and log drains?
func graphVsLog() Mix {
	return Mix{
		Format: MixFormatVersion,
		Name:   "graph-vs-log",
		Tenants: []TenantDef{
			{Name: "graph", Workload: "graph500", Threads: 4},
			{Name: "logger", Workload: "log-append", Threads: 4},
		},
	}
}

// scanVsPoint co-locates the bandwidth-bound sequential analytics scan
// with ycsb-style zipfian point lookups — the classic
// streaming-vs-latency-sensitive interference pairing.
func scanVsPoint() Mix {
	return Mix{
		Format: MixFormatVersion,
		Name:   "scan-vs-point",
		Tenants: []TenantDef{
			{Name: "scanner", Workload: "scan-heavy", Threads: 4},
			{Name: "pointer", Workload: "ycsb", Threads: 4},
		},
	}
}

func builtinByName(name string) (Mix, bool) {
	for _, m := range Builtins() {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// Register adds a mix to the registry, making it resolvable by name
// everywhere a built-in mix is — ByName, figmix's mix set, the CLIs'
// -mix flags. The mix must validate; built-in names are reserved;
// re-registering a registered name replaces it.
func Register(m Mix) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if _, ok := builtinByName(m.Name); ok {
		return fmt.Errorf("tenant: %q is a built-in mix and cannot be replaced", m.Name)
	}
	n := m.normalized()
	registry.Lock()
	defer registry.Unlock()
	if i, ok := registry.index[n.Name]; ok {
		registry.mixes[i] = n
		return nil
	}
	registry.index[n.Name] = len(registry.mixes)
	registry.mixes = append(registry.mixes, n)
	return nil
}

// Registered returns the registered (non-built-in) mixes in
// registration order.
func Registered() []Mix {
	registry.Lock()
	defer registry.Unlock()
	return append([]Mix(nil), registry.mixes...)
}

// resetRegistry clears registrations (tests only).
func resetRegistry() {
	registry.Lock()
	defer registry.Unlock()
	registry.mixes = nil
	registry.index = map[string]int{}
}

// Names returns every resolvable mix name: built-ins first, then
// registered mixes in registration order.
func Names() []string {
	var out []string
	for _, m := range Builtins() {
		out = append(out, m.Name)
	}
	for _, m := range Registered() {
		out = append(out, m.Name)
	}
	return out
}

// ByName resolves any known mix — built-in or registered. Unknown
// names error with the full valid list.
func ByName(name string) (Mix, error) {
	if m, ok := builtinByName(name); ok {
		return m, nil
	}
	registry.Lock()
	i, ok := registry.index[name]
	var m Mix
	if ok {
		m = registry.mixes[i]
	}
	registry.Unlock()
	if ok {
		return m, nil
	}
	return Mix{}, fmt.Errorf("tenant: unknown mix %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// FromFile loads a mix from a versioned JSON file (WORKLOADS.md
// documents the schema). Unknown fields are rejected so a typo fails
// loudly instead of silently meaning "default". The returned Mix is
// validated but not registered; RegisterFile also makes it resolvable
// by name.
func FromFile(path string) (Mix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Mix{}, fmt.Errorf("tenant: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Mix
	if err := dec.Decode(&m); err != nil {
		return Mix{}, fmt.Errorf("tenant: %s: not a valid mix definition: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return Mix{}, fmt.Errorf("tenant: %s: %w", path, err)
	}
	return m.normalized(), nil
}

// RegisterFile loads a mix from path (FromFile) and registers it, so
// campaigns and CLIs can select it by name like a built-in.
func RegisterFile(path string) (Mix, error) {
	m, err := FromFile(path)
	if err != nil {
		return Mix{}, err
	}
	if err := Register(m); err != nil {
		return Mix{}, err
	}
	return m, nil
}

// RegistryFingerprint digests the full resolvable mix set — every name
// mapped to its SourceID, sorted. Campaign-level external cache keys
// (skybyte.CampaignFingerprint) fold it in next to the workload
// registry fingerprint, so a CI cache key rotates when any mix — or
// any workload a mix references — changes.
func RegistryFingerprint() string {
	var lines []string
	for _, m := range Builtins() {
		lines = append(lines, m.Name+"="+m.SourceID())
	}
	for _, m := range Registered() {
		lines = append(lines, m.Name+"="+m.SourceID())
	}
	sort.Strings(lines)
	sum := sha256.Sum256([]byte("skybyte-mixes|" + strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:])
}
