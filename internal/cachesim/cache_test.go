package cachesim

import (
	"testing"
	"testing/quick"

	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

func small() *Cache {
	return New(Config{Name: "t", SizeBytes: 8 * 64, Ways: 2}) // 4 sets, 2 ways
}

func TestMissThenFillThenHit(t *testing.T) {
	c := small()
	a := mem.Addr(0x1000)
	if c.Access(a, false) {
		t.Fatal("cold access should miss")
	}
	c.Fill(a, false)
	if !c.Access(a, false) {
		t.Fatal("filled line should hit")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 4 sets => set stride 64*4 = 256
	// Three lines mapping to the same set (stride = sets*line = 256).
	a0, a1, a2 := mem.Addr(0), mem.Addr(256), mem.Addr(512)
	c.Fill(a0, false)
	c.Fill(a1, false)
	c.Access(a0, false) // a0 most recent, a1 LRU
	v := c.Fill(a2, false)
	if !v.Valid || v.Addr != a1 {
		t.Fatalf("victim = %+v, want a1", v)
	}
	if !c.Lookup(a0) || c.Lookup(a1) || !c.Lookup(a2) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := small()
	a0, a1, a2 := mem.Addr(0), mem.Addr(256), mem.Addr(512)
	c.Fill(a0, true) // dirty
	c.Fill(a1, false)
	c.Access(a1, false)
	v := c.Fill(a2, false)
	if !v.Valid || v.Addr != a0 || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty a0", v)
	}
	if c.Stats.DirtyEvs != 1 {
		t.Fatal("dirty eviction not counted")
	}
}

func TestWriteDirtiesLine(t *testing.T) {
	c := small()
	a := mem.Addr(64)
	c.Fill(a, false)
	c.Access(a, true)
	_, dirty := c.Invalidate(a)
	if !dirty {
		t.Fatal("write hit should dirty the line")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	a := mem.Addr(128)
	if p, _ := c.Invalidate(a); p {
		t.Fatal("invalidate of absent line")
	}
	c.Fill(a, true)
	p, d := c.Invalidate(a)
	if !p || !d {
		t.Fatal("invalidate of dirty line")
	}
	if c.Lookup(a) {
		t.Fatal("line still present after invalidate")
	}
}

func TestFlushAll(t *testing.T) {
	c := small()
	c.Fill(0, true)
	c.Fill(64, false)
	c.Fill(128, true)
	var dirty int
	c.FlushAll(func(v Victim) {
		if v.Dirty {
			dirty++
		}
	})
	if dirty != 2 {
		t.Fatalf("dirty victims = %d, want 2", dirty)
	}
	if c.Occupancy() != 0 {
		t.Fatal("cache not empty after flush")
	}
}

func TestFillIdempotentWhenPresent(t *testing.T) {
	c := small()
	c.Fill(0, false)
	v := c.Fill(0, true)
	if v.Valid {
		t.Fatal("refill of resident line must not evict")
	}
	_, d := c.Invalidate(0)
	if !d {
		t.Fatal("refill with dirty should mark dirty")
	}
}

func TestPageGranularCache(t *testing.T) {
	c := New(Config{Name: "page", SizeBytes: 16 * mem.PageBytes, Ways: 4, LineBytes: mem.PageBytes})
	p := mem.Addr(0x42000)
	if c.Access(p, false) {
		t.Fatal("cold page access should miss")
	}
	c.Fill(p, false)
	if !c.Access(p+100, false) {
		t.Fatal("any address within the page should hit")
	}
}

// Property: against a reference model (map + per-set LRU list), the cache
// agrees on hit/miss for random access sequences.
func TestAgainstReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		c := New(Config{Name: "ref", SizeBytes: 16 * 64, Ways: 4}) // 4 sets
		type refLine struct {
			addr  mem.Addr
			stamp int
		}
		ref := map[int][]refLine{} // set -> lines, unbounded order
		stamp := 0
		rng := trace.NewRNG(seed)
		for op := 0; op < 3000; op++ {
			a := mem.Addr(rng.Uint64n(64)) * 64 // 64 distinct lines
			set := int(uint64(a) >> 6 & 3)
			// Reference lookup.
			refHit := false
			lines := ref[set]
			for i := range lines {
				if lines[i].addr == a {
					refHit = true
					stamp++
					lines[i].stamp = stamp
					break
				}
			}
			hit := c.Access(a, false)
			if hit != refHit {
				return false
			}
			if !hit {
				c.Fill(a, false)
				stamp++
				if len(lines) == 4 {
					// Evict LRU from reference.
					lruI := 0
					for i := range lines {
						if lines[i].stamp < lines[lruI].stamp {
							lruI = i
						}
					}
					lines = append(lines[:lruI], lines[lruI+1:]...)
				}
				ref[set] = append(lines, refLine{addr: a, stamp: stamp})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: occupancy never exceeds capacity and every filled line is
// findable until evicted.
func TestOccupancyBound(t *testing.T) {
	c := New(Config{Name: "cap", SizeBytes: 32 * 64, Ways: 8})
	rng := trace.NewRNG(3)
	for i := 0; i < 10000; i++ {
		a := mem.Addr(rng.Uint64n(1 << 20)).Line()
		if !c.Access(a, rng.Bool(0.3)) {
			c.Fill(a, false)
		}
		if c.Occupancy() > 32 {
			t.Fatal("occupancy exceeded capacity")
		}
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("zero stats miss rate")
	}
	s.Hits, s.Misses = 3, 1
	if s.MissRate() != 0.25 {
		t.Fatal("miss rate")
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := New(Config{Name: "bench", SizeBytes: 32 * mem.KiB, Ways: 8})
	c.Fill(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false)
	}
}

func BenchmarkAccessMissFill(b *testing.B) {
	c := New(Config{Name: "bench", SizeBytes: 32 * mem.KiB, Ways: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mem.Addr(i*64) % (1 << 22)
		if !c.Access(a, false) {
			c.Fill(a, false)
		}
	}
}
