// Package cachesim implements the tag-only set-associative caches used for
// the CPU hierarchy (per-core L1/L2 and the shared LLC of Table II).
//
// Caches are write-back with configurable allocation policy. Stores use
// "write-validate" (no fetch on store miss) by default, mirroring the
// paper's model in which CXL writes never block the pipeline (§III-A: "as
// writes are buffered in the write log, they do not need to trigger context
// switch"); see DESIGN.md §1 for the discussion.
package cachesim

import (
	"fmt"

	"skybyte/internal/mem"
)

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int // defaults to mem.LineBytes
}

// Victim describes a line evicted to make room for a fill.
type Victim struct {
	Addr  mem.Addr // line address
	Dirty bool
	Valid bool
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	DirtyEvs  uint64
}

// MissRate returns misses/(hits+misses).
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// Accesses returns the total lookup count (hits + misses) — the
// denominator a windowed hit-ratio probe differences between samples.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// Cache is a set-associative, true-LRU, tag-only cache.
type Cache struct {
	cfg      Config
	sets     int
	ways     int
	lineMask mem.Addr
	setMask  uint64
	shift    uint
	setShift uint // log2(sets), precomputed off the probe path

	tags  []uint64 // sets*ways; tag==0 slot may still be valid, see valid
	valid []bool
	dirty []bool
	lru   []uint32 // recency stamp per way
	clock uint32

	Stats Stats
}

// New builds a cache. Size must be a multiple of ways*lineBytes and the set
// count must be a power of two.
func New(cfg Config) *Cache {
	if cfg.LineBytes == 0 {
		cfg.LineBytes = mem.LineBytes
	}
	if cfg.Ways <= 0 {
		panic("cachesim: ways must be positive")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	if sets == 0 {
		sets = 1
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cachesim: %s: set count %d not a power of two", cfg.Name, sets))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		lineMask: mem.Addr(cfg.LineBytes - 1),
		setMask:  uint64(sets - 1),
		shift:    shift,
		setShift: uint(log2(sets)),
		tags:     make([]uint64, sets*cfg.Ways),
		valid:    make([]bool, sets*cfg.Ways),
		dirty:    make([]bool, sets*cfg.Ways),
		lru:      make([]uint32, sets*cfg.Ways),
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) index(a mem.Addr) (set int, tag uint64) {
	ln := uint64(a) >> c.shift
	return int(ln & c.setMask), ln >> c.setShift
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// Lookup probes the cache without changing replacement state or stats.
func (c *Cache) Lookup(a mem.Addr) bool {
	set, tag := c.index(a)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Access performs a demand access. If the line is present it is touched
// (and dirtied for writes) and hit=true. If absent, hit=false and the line
// is NOT allocated — callers decide whether and when to Fill (after the next
// level responds).
func (c *Cache) Access(a mem.Addr, write bool) (hit bool) {
	set, tag := c.index(a)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.clock++
			c.lru[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// Update touches the line if present (refreshing recency and optionally
// dirtying it) without recording demand statistics — used when victims
// cascade down the hierarchy, which must not perturb miss-rate accounting.
func (c *Cache) Update(a mem.Addr, dirty bool) bool {
	set, tag := c.index(a)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.clock++
			c.lru[i] = c.clock
			if dirty {
				c.dirty[i] = true
			}
			return true
		}
	}
	return false
}

// Fill allocates the line (after a miss was serviced), marking it dirty if
// the triggering access was a write. It returns the victim line, which is
// valid if an occupied way was evicted.
func (c *Cache) Fill(a mem.Addr, dirty bool) Victim {
	set, tag := c.index(a)
	base := set * c.ways
	// Already present (raced fill): just update.
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.clock++
			c.lru[i] = c.clock
			if dirty {
				c.dirty[i] = true
			}
			return Victim{}
		}
	}
	victimWay := -1
	var oldest uint32 = ^uint32(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victimWay = w
			break
		}
		if c.lru[i] <= oldest {
			oldest = c.lru[i]
			victimWay = w
		}
	}
	i := base + victimWay
	var v Victim
	if c.valid[i] {
		v = Victim{Addr: c.lineAddr(set, c.tags[i]), Dirty: c.dirty[i], Valid: true}
		c.Stats.Evictions++
		if c.dirty[i] {
			c.Stats.DirtyEvs++
		}
	}
	c.clock++
	c.tags[i] = tag
	c.valid[i] = true
	c.dirty[i] = dirty
	c.lru[i] = c.clock
	return v
}

func (c *Cache) lineAddr(set int, tag uint64) mem.Addr {
	return mem.Addr((tag<<c.setShift|uint64(set))<<c.shift) | 0
}

// Invalidate drops the line if present, returning whether it was dirty.
func (c *Cache) Invalidate(a mem.Addr) (wasPresent, wasDirty bool) {
	set, tag := c.index(a)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.valid[i] = false
			return true, c.dirty[i]
		}
	}
	return false, false
}

// FlushAll invalidates every line, invoking victim for each valid line (so
// dirty data can be written down the hierarchy). Used to model the cache
// pollution side effect of a context switch.
func (c *Cache) FlushAll(victim func(Victim)) {
	for i := range c.valid {
		if !c.valid[i] {
			continue
		}
		if victim != nil {
			set := (i / c.ways)
			victim(Victim{Addr: c.lineAddr(set, c.tags[i]), Dirty: c.dirty[i], Valid: true})
		}
		c.valid[i] = false
		c.dirty[i] = false
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}
