package ftl

import (
	"testing"

	"skybyte/internal/flash"
	"skybyte/internal/mem"
	"skybyte/internal/sim"
	"skybyte/internal/trace"
)

func tinySetup() (*sim.Engine, *flash.Array, *FTL) {
	eng := &sim.Engine{}
	geo := flash.Geometry{Channels: 2, ChipsPerChan: 1, DiesPerChip: 1, PlanesPerDie: 1, BlocksPerPlane: 8, PagesPerBlock: 8}
	arr := flash.New(eng, geo, flash.TimingULL)
	f := New(eng, arr, DefaultConfig())
	return eng, arr, f
}

func TestLogicalCapacity(t *testing.T) {
	_, arr, f := tinySetup()
	want := uint64(float64(arr.Geo.TotalPages()) * 0.875)
	if f.LogicalPages() != want {
		t.Fatalf("LogicalPages = %d, want %d", f.LogicalPages(), want)
	}
	if f.LogicalBytes() != want*mem.PageBytes {
		t.Fatal("LogicalBytes")
	}
}

func TestWriteThenTranslate(t *testing.T) {
	eng, _, f := tinySetup()
	if _, ok := f.Translate(3); ok {
		t.Fatal("unwritten page should be unmapped")
	}
	f.Write(3, nil, nil)
	eng.Run()
	ppa, ok := f.Translate(3)
	if !ok {
		t.Fatal("written page unmapped")
	}
	ch, ok := f.ChannelOf(3)
	if !ok || ch != f.geo.ChannelOfPPA(ppa) {
		t.Fatal("ChannelOf inconsistent")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfPlaceUpdate(t *testing.T) {
	eng, _, f := tinySetup()
	f.Write(5, nil, nil)
	eng.Run()
	ppa1, _ := f.Translate(5)
	f.Write(5, nil, nil)
	eng.Run()
	ppa2, _ := f.Translate(5)
	if ppa1 == ppa2 {
		t.Fatal("update mapped to the same physical page (in-place)")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadUnmappedAsyncZeroTime(t *testing.T) {
	eng, arr, f := tinySetup()
	called := false
	comp := f.Read(7, func(d []byte) {
		called = true
		if d != nil {
			t.Error("unmapped read should return nil data")
		}
		if eng.Now() != 0 {
			t.Error("unmapped read should take no simulated time")
		}
	})
	if comp != 0 {
		t.Fatalf("predicted completion = %v, want now", comp)
	}
	if called {
		t.Fatal("unmapped read must complete asynchronously (event-ordered)")
	}
	eng.Run()
	if !called {
		t.Fatal("unmapped read never completed")
	}
	if arr.Stats().Reads != 0 {
		t.Fatal("unmapped read must not touch flash")
	}
}

func TestWritesStripeAcrossChannels(t *testing.T) {
	eng, _, f := tinySetup()
	chans := map[int]int{}
	for lpa := uint64(0); lpa < 8; lpa++ {
		f.Write(lpa, nil, nil)
		ch, _ := f.ChannelOf(lpa)
		chans[ch]++
	}
	eng.Run()
	if len(chans) != 2 || chans[0] != 4 || chans[1] != 4 {
		t.Fatalf("write striping uneven: %v", chans)
	}
}

func TestGCReclaimsAndPreservesMapping(t *testing.T) {
	eng, _, f := tinySetup()
	// Logical space is 7/8 of 128 pages = 112 pages. Fill it, then keep
	// rewriting a subset to force GC repeatedly.
	n := f.LogicalPages()
	for lpa := uint64(0); lpa < n; lpa++ {
		f.Write(lpa, nil, nil)
	}
	rng := trace.NewRNG(1)
	for i := 0; i < 500; i++ {
		f.Write(rng.Uint64n(n), nil, nil)
	}
	eng.Run()
	if f.Stats().GCInvocations == 0 || f.Stats().Erases == 0 {
		t.Fatalf("GC never ran: %+v", f.Stats())
	}
	if f.MappedPages() != n {
		t.Fatalf("mapped pages = %d, want %d", f.MappedPages(), n)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if wa := f.Stats().WriteAmplification(); wa < 1 {
		t.Fatalf("write amplification %v < 1", wa)
	}
}

func TestGCPreservesData(t *testing.T) {
	eng, arr, f := tinySetup()
	arr.TrackData = true
	n := f.LogicalPages()
	mk := func(lpa uint64) []byte {
		p := make([]byte, mem.PageBytes)
		p[0] = byte(lpa)
		p[1] = byte(lpa >> 8)
		return p
	}
	for lpa := uint64(0); lpa < n; lpa++ {
		f.Write(lpa, mk(lpa), nil)
	}
	rng := trace.NewRNG(2)
	for i := 0; i < 300; i++ {
		lpa := rng.Uint64n(n)
		f.Write(lpa, mk(lpa), nil)
	}
	eng.Run()
	if f.Stats().GCPrograms == 0 {
		t.Fatal("expected GC relocations")
	}
	// Every logical page must still read back its own payload.
	for lpa := uint64(0); lpa < n; lpa++ {
		lpa := lpa
		f.Read(lpa, func(d []byte) {
			if d == nil || d[0] != byte(lpa) || d[1] != byte(lpa>>8) {
				t.Errorf("lpa %d corrupted after GC", lpa)
			}
		})
	}
	eng.Run()
}

func TestGCActiveWindow(t *testing.T) {
	eng, _, f := tinySetup()
	n := f.LogicalPages()
	for lpa := uint64(0); lpa < n; lpa++ {
		f.Write(lpa, nil, nil)
	}
	rng := trace.NewRNG(3)
	for i := 0; i < 200; i++ {
		f.Write(rng.Uint64n(n), nil, nil)
	}
	// GC was triggered; at time zero its erase backlog is pending.
	if !f.GCActive(0) && !f.GCActive(1) {
		t.Fatal("GC should be active on at least one channel")
	}
	eng.Run()
	if f.GCActive(0) || f.GCActive(1) {
		t.Fatal("GC should be drained after Run")
	}
}

func TestTrim(t *testing.T) {
	eng, _, f := tinySetup()
	f.Write(9, nil, nil)
	eng.Run()
	f.Trim(9)
	if _, ok := f.Translate(9); ok {
		t.Fatal("trimmed page still mapped")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrecondition(t *testing.T) {
	eng, _, f := tinySetup()
	f.Precondition(1.0, 0.3, 42)
	if eng.Pending() != 0 {
		t.Fatal("preconditioning must not enqueue flash work")
	}
	if f.MappedPages() != f.LogicalPages() {
		t.Fatalf("mapped = %d, want %d", f.MappedPages(), f.LogicalPages())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The device should be near capacity so that writes soon trigger GC.
	f.Write(0, nil, nil)
	for i := 0; i < 100; i++ {
		f.Write(uint64(i%int(f.LogicalPages())), nil, nil)
	}
	eng.Run()
	if f.Stats().GCInvocations == 0 {
		t.Fatal("post-precondition writes never triggered GC")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateOutOfRangePanics(t *testing.T) {
	_, _, f := tinySetup()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range lpa should panic")
		}
	}()
	f.Translate(f.LogicalPages())
}

// Randomized model check: FTL mapping behaves like a plain map under a
// random write/trim workload with GC churn.
func TestRandomizedAgainstModel(t *testing.T) {
	eng, _, f := tinySetup()
	n := f.LogicalPages()
	model := map[uint64]bool{}
	rng := trace.NewRNG(99)
	for op := 0; op < 3000; op++ {
		lpa := rng.Uint64n(n)
		if rng.Bool(0.9) {
			f.Write(lpa, nil, nil)
			model[lpa] = true
		} else {
			f.Trim(lpa)
			delete(model, lpa)
		}
		if op%512 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	for lpa := uint64(0); lpa < n; lpa++ {
		_, mapped := f.Translate(lpa)
		if mapped != model[lpa] {
			t.Fatalf("lpa %d mapped=%v model=%v", lpa, mapped, model[lpa])
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
