// Package ftl implements the SSD's flash translation layer: the LPA→PPA
// page mapping, out-of-place writes striped across channels, and greedy
// garbage collection (paper §II, Table II: threshold 80 %).
//
// Metadata (mappings, block states) updates at enqueue time; the flash
// array models when the underlying operations actually occupy the channels.
// GC traffic therefore blocks demand requests on its channel — the effect
// Algorithm 1's latency estimator and the immediate-context-switch-on-GC
// rule react to — without the deadlock hazards of an asynchronous metadata
// state machine (see DESIGN.md §1 on the "# of Blocks to Erase"
// interpretation).
package ftl

import (
	"fmt"

	"skybyte/internal/flash"
	"skybyte/internal/mem"
	"skybyte/internal/sim"
	"skybyte/internal/trace"
)

// Config tunes the FTL.
type Config struct {
	// UsableRatio is the fraction of physical pages exposed as logical
	// capacity; the rest is over-provisioning for GC.
	UsableRatio float64
	// GCTriggerFree starts GC on a channel when its free-block ratio drops
	// below this value. Table II's "Threshold: 80%" utilisation = 0.20 free.
	GCTriggerFree float64
	// GCReplenishFree is the free-block ratio GC restores before stopping.
	GCReplenishFree float64
}

// DefaultConfig mirrors Table II.
func DefaultConfig() Config {
	return Config{UsableRatio: 0.875, GCTriggerFree: 0.20, GCReplenishFree: 0.25}
}

// Stats counts FTL-level activity.
type Stats struct {
	UserPrograms  uint64
	GCPrograms    uint64
	GCReads       uint64
	Erases        uint64
	GCInvocations uint64
}

// WriteAmplification returns (user+GC programs)/user programs.
func (s Stats) WriteAmplification() float64 {
	if s.UserPrograms == 0 {
		return 0
	}
	return float64(s.UserPrograms+s.GCPrograms) / float64(s.UserPrograms)
}

type blockState uint8

const (
	blockFree blockState = iota
	blockOpen
	blockFull
)

type blockMeta struct {
	state    blockState
	valid    int32
	nextPage int32 // next programmable page offset when open
}

const unmapped = int64(-1)

// FTL is the translation layer bound to one flash array.
type FTL struct {
	eng *sim.Engine
	arr *flash.Array
	geo flash.Geometry
	cfg Config

	logicalPages uint64
	l2p          []int64
	p2l          []int64
	blocks       []blockMeta
	freeBlocks   [][]uint32 // per-channel stacks
	open         []int64    // per-channel open block (-1 = none)
	gcBusyUntil  []sim.Time
	inGC         []bool
	nextChan     int

	stats Stats
}

// New builds an FTL over arr.
func New(eng *sim.Engine, arr *flash.Array, cfg Config) *FTL {
	geo := arr.Geo
	f := &FTL{
		eng:          eng,
		arr:          arr,
		geo:          geo,
		cfg:          cfg,
		logicalPages: uint64(float64(geo.TotalPages()) * cfg.UsableRatio),
		l2p:          make([]int64, uint64(float64(geo.TotalPages())*cfg.UsableRatio)),
		p2l:          make([]int64, geo.TotalPages()),
		blocks:       make([]blockMeta, geo.TotalBlocks()),
		freeBlocks:   make([][]uint32, geo.Channels),
		open:         make([]int64, geo.Channels),
		gcBusyUntil:  make([]sim.Time, geo.Channels),
		inGC:         make([]bool, geo.Channels),
	}
	for i := range f.l2p {
		f.l2p[i] = unmapped
	}
	for i := range f.p2l {
		f.p2l[i] = unmapped
	}
	for b := geo.TotalBlocks() - 1; b >= 0; b-- {
		ch := geo.ChannelOfBlock(uint32(b))
		f.freeBlocks[ch] = append(f.freeBlocks[ch], uint32(b))
	}
	for ch := range f.open {
		f.open[ch] = -1
	}
	return f
}

// LogicalPages returns the exposed logical capacity in pages.
func (f *FTL) LogicalPages() uint64 { return f.logicalPages }

// LogicalBytes returns the exposed logical capacity in bytes.
func (f *FTL) LogicalBytes() uint64 { return f.logicalPages * mem.PageBytes }

// Stats returns a copy of the counters.
func (f *FTL) Stats() Stats { return f.stats }

// Translate returns the physical page backing lpa.
func (f *FTL) Translate(lpa uint64) (ppa uint64, ok bool) {
	if lpa >= f.logicalPages {
		panic(fmt.Sprintf("ftl: lpa %d beyond logical capacity %d", lpa, f.logicalPages))
	}
	p := f.l2p[lpa]
	if p == unmapped {
		return 0, false
	}
	return uint64(p), true
}

// ChannelOf returns the channel that will serve a read of lpa (Algorithm 1
// line 2–3), and ok=false if the page is unmapped (no flash access needed).
func (f *FTL) ChannelOf(lpa uint64) (ch int, ok bool) {
	ppa, ok := f.Translate(lpa)
	if !ok {
		return 0, false
	}
	return f.geo.ChannelOfPPA(ppa), true
}

// GCActive reports whether GC traffic is still draining on the channel;
// the paper triggers an immediate context switch in that case.
func (f *FTL) GCActive(ch int) bool { return f.eng.Now() < f.gcBusyUntil[ch] }

// Read enqueues a flash read of lpa's page and returns its predicted
// completion time. Unmapped pages complete on the next event cycle with
// nil data (a fresh page reads as zeros) — always asynchronously, so
// callers can register waiters after issuing.
func (f *FTL) Read(lpa uint64, done func(data []byte)) sim.Time {
	ppa, ok := f.Translate(lpa)
	if !ok {
		now := f.eng.Now()
		if done != nil {
			f.eng.After(0, func() { done(nil) })
		}
		return now
	}
	return f.arr.Read(ppa, done)
}

// Write programs a new physical page for lpa (out-of-place), invalidating
// any previous mapping, and triggers GC if the target channel runs low on
// free blocks. Writes stripe round-robin across channels to exploit
// parallelism (§III-B: "distributes writes across multiple channels"), but
// a channel whose blocks are all fully valid is skipped — it cannot accept
// data until invalidations free space there.
func (f *FTL) Write(lpa uint64, data []byte, done func()) {
	for try := 0; try < f.geo.Channels; try++ {
		ch := f.nextChan
		f.nextChan = (f.nextChan + 1) % f.geo.Channels
		if f.channelWritable(ch) {
			f.writeTo(ch, lpa, data, done, false)
			return
		}
	}
	panic("ftl: no writable channel (device over capacity)")
}

// channelWritable reports whether ch can accept one more page program:
// an open block with space, a free block, or a reclaimable victim.
func (f *FTL) channelWritable(ch int) bool {
	if ob := f.open[ch]; ob >= 0 && int(f.blocks[ob].nextPage) < f.geo.PagesPerBlock {
		return true
	}
	if len(f.freeBlocks[ch]) > 0 {
		return true
	}
	return f.pickVictim(ch) >= 0
}

func (f *FTL) writeTo(ch int, lpa uint64, data []byte, done func(), gc bool) {
	ppa := f.allocPage(ch)
	f.invalidate(lpa)
	f.l2p[lpa] = int64(ppa)
	f.p2l[ppa] = int64(lpa)
	b := f.geo.BlockOfPPA(ppa)
	f.blocks[b].valid++
	if gc {
		f.stats.GCPrograms++
	} else {
		f.stats.UserPrograms++
	}
	f.arr.Program(ppa, data, done)
	f.maybeGC(ch)
}

func (f *FTL) invalidate(lpa uint64) {
	old := f.l2p[lpa]
	if old == unmapped {
		return
	}
	f.l2p[lpa] = unmapped
	f.p2l[old] = unmapped
	f.blocks[f.geo.BlockOfPPA(uint64(old))].valid--
}

// Trim invalidates lpa without writing a replacement (used when a page
// migrates to host DRAM permanently, or for tests).
func (f *FTL) Trim(lpa uint64) { f.invalidate(lpa) }

func (f *FTL) allocPage(ch int) uint64 {
	for {
		if ob := f.open[ch]; ob >= 0 {
			m := &f.blocks[ob]
			ppa := uint64(ob)*uint64(f.geo.PagesPerBlock) + uint64(m.nextPage)
			m.nextPage++
			if int(m.nextPage) == f.geo.PagesPerBlock {
				m.state = blockFull
				f.open[ch] = -1
			}
			return ppa
		}
		if len(f.freeBlocks[ch]) == 0 {
			// Emergency GC: reclaim synchronously (metadata-wise) right
			// now. Its relocations may consume what it frees, so loop and
			// re-check rather than assuming a block became available.
			if !f.gcChannel(ch, 1) {
				panic(fmt.Sprintf("ftl: channel %d out of blocks and nothing to reclaim", ch))
			}
			continue
		}
		stack := f.freeBlocks[ch]
		b := stack[len(stack)-1]
		f.freeBlocks[ch] = stack[:len(stack)-1]
		m := &f.blocks[b]
		m.state = blockOpen
		m.nextPage = 0
		f.open[ch] = int64(b)
	}
}

func (f *FTL) blocksPerChannel() int { return f.geo.TotalBlocks() / f.geo.Channels }

func (f *FTL) maybeGC(ch int) {
	if f.inGC[ch] {
		return
	}
	trigger := int(f.cfg.GCTriggerFree * float64(f.blocksPerChannel()))
	if len(f.freeBlocks[ch]) >= trigger {
		return
	}
	target := int(f.cfg.GCReplenishFree*float64(f.blocksPerChannel())) - len(f.freeBlocks[ch])
	if target < 1 {
		target = 1
	}
	f.stats.GCInvocations++
	f.gcChannel(ch, target)
}

// gcChannel reclaims up to want blocks on channel ch, returning whether at
// least one block was reclaimed. Victim selection is greedy (fewest valid
// pages among full blocks). Each victim is reclaimed erase-first: its valid
// pages are captured and invalidated, the block rejoins the free pool, and
// the pages are then rewritten within the channel — so reclamation can
// never strand a channel that still has reclaimable space. The flash queue
// sees the same read/program/erase work either way.
func (f *FTL) gcChannel(ch, want int) bool {
	if !f.inGC[ch] {
		f.inGC[ch] = true
		defer func() { f.inGC[ch] = false }()
	}
	reclaimed := 0
	for reclaimed < want {
		victim := f.pickVictim(ch)
		if victim < 0 {
			break
		}
		vm := &f.blocks[victim]
		first := uint64(victim) * uint64(f.geo.PagesPerBlock)
		type reloc struct {
			lpa  uint64
			data []byte
		}
		var moved []reloc
		for off := uint64(0); off < uint64(f.geo.PagesPerBlock); off++ {
			ppa := first + off
			lpa := f.p2l[ppa]
			if lpa == unmapped {
				continue
			}
			f.stats.GCReads++
			var data []byte
			if f.arr.TrackData {
				data = append([]byte(nil), f.arr.PeekData(ppa)...)
			}
			f.arr.Read(ppa, nil)
			f.invalidate(uint64(lpa))
			moved = append(moved, reloc{lpa: uint64(lpa), data: data})
		}
		if vm.valid != 0 {
			panic("ftl: victim still has valid pages after relocation")
		}
		vm.state = blockFree
		vm.nextPage = 0
		f.stats.Erases++
		f.arr.Erase(uint32(victim), nil)
		f.freeBlocks[ch] = append(f.freeBlocks[ch], uint32(victim))
		for _, r := range moved {
			f.writeTo(ch, r.lpa, r.data, nil, true)
		}
		reclaimed++
	}
	if reclaimed > 0 {
		// The queue must drain the reads/programs/erases just enqueued.
		busy := f.arr.QueueBusyUntil(ch)
		if busy > f.gcBusyUntil[ch] {
			f.gcBusyUntil[ch] = busy
		}
	}
	return reclaimed > 0
}

// pickVictim returns the full block on ch with the fewest valid pages that
// is not completely valid (erasing a fully valid block gains nothing), or
// -1 if none exists.
func (f *FTL) pickVictim(ch int) int64 {
	best := int64(-1)
	bestValid := int32(f.geo.PagesPerBlock)
	for b := ch; b < f.geo.TotalBlocks(); b += f.geo.Channels {
		m := &f.blocks[b]
		if m.state != blockFull {
			continue
		}
		if m.valid < bestValid {
			bestValid = m.valid
			best = int64(b)
		}
	}
	if bestValid == int32(f.geo.PagesPerBlock) {
		return -1
	}
	return best
}

// FreeBlocks returns the free-block count on a channel (tests/diagnostics).
func (f *FTL) FreeBlocks(ch int) int { return len(f.freeBlocks[ch]) }

// MappedPages returns how many logical pages currently have a mapping.
func (f *FTL) MappedPages() uint64 {
	var n uint64
	for _, p := range f.l2p {
		if p != unmapped {
			n++
		}
	}
	return n
}

// CheckInvariants verifies internal consistency (tests): l2p and p2l are
// inverse, per-block valid counts match the mapping, and block accounting
// covers every block exactly once.
func (f *FTL) CheckInvariants() error {
	valid := make([]int32, len(f.blocks))
	for lpa, p := range f.l2p {
		if p == unmapped {
			continue
		}
		if f.p2l[p] != int64(lpa) {
			return fmt.Errorf("l2p/p2l mismatch at lpa %d", lpa)
		}
		valid[f.geo.BlockOfPPA(uint64(p))]++
	}
	for b := range f.blocks {
		if f.blocks[b].valid != valid[b] {
			return fmt.Errorf("block %d valid count %d, recomputed %d", b, f.blocks[b].valid, valid[b])
		}
	}
	seen := make([]bool, len(f.blocks))
	for ch, stack := range f.freeBlocks {
		for _, b := range stack {
			if seen[b] {
				return fmt.Errorf("block %d on multiple free lists", b)
			}
			seen[b] = true
			if f.blocks[b].state != blockFree {
				return fmt.Errorf("block %d on free list of ch %d but state %d", b, ch, f.blocks[b].state)
			}
		}
	}
	return nil
}

// Precondition pre-maps fillRatio of the logical space sequentially and
// then rewrites rewriteRatio of those pages at random, creating scattered
// invalid pages so GC triggers early in a run (paper §VI-A: "we
// precondition the SSD to ensure garbage collections will be triggered").
// Metadata-only: no flash timing is charged.
func (f *FTL) Precondition(fillRatio, rewriteRatio float64, seed uint64) {
	n := uint64(fillRatio * float64(f.logicalPages))
	for lpa := uint64(0); lpa < n; lpa++ {
		ch := f.nextChan
		f.nextChan = (f.nextChan + 1) % f.geo.Channels
		ppa := f.allocPage(ch)
		f.invalidate(lpa)
		f.l2p[lpa] = int64(ppa)
		f.p2l[ppa] = int64(lpa)
		f.blocks[f.geo.BlockOfPPA(ppa)].valid++
	}
	rng := trace.NewRNG(seed)
	rewrites := uint64(rewriteRatio * float64(n))
	for i := uint64(0); i < rewrites && n > 0; i++ {
		lpa := rng.Uint64n(n)
		ch := f.nextChan
		f.nextChan = (f.nextChan + 1) % f.geo.Channels
		for try := 0; try < f.geo.Channels && !f.channelWritable(ch); try++ {
			ch = f.nextChan
			f.nextChan = (f.nextChan + 1) % f.geo.Channels
		}
		// Metadata-only rewrite; may perform metadata GC if space is tight.
		ppa := f.allocPageQuiet(ch)
		f.invalidate(lpa)
		f.l2p[lpa] = int64(ppa)
		f.p2l[ppa] = int64(lpa)
		f.blocks[f.geo.BlockOfPPA(ppa)].valid++
	}
}

// allocPageQuiet allocates without enqueuing flash ops for any emergency
// GC (preconditioning must not charge simulated time). It relocates valid
// pages metadata-only.
func (f *FTL) allocPageQuiet(ch int) uint64 {
	if f.open[ch] < 0 && len(f.freeBlocks[ch]) == 0 {
		victim := f.pickVictim(ch)
		if victim < 0 {
			panic("ftl: precondition exhausted channel")
		}
		first := uint64(victim) * uint64(f.geo.PagesPerBlock)
		// Temporarily free the victim so relocation targets elsewhere.
		var moved []uint64
		for off := uint64(0); off < uint64(f.geo.PagesPerBlock); off++ {
			if f.p2l[first+off] != unmapped {
				moved = append(moved, uint64(f.p2l[first+off]))
			}
		}
		for _, lpa := range moved {
			f.invalidate(lpa)
		}
		f.blocks[victim].state = blockFree
		f.blocks[victim].nextPage = 0
		f.freeBlocks[ch] = append(f.freeBlocks[ch], uint32(victim))
		for _, lpa := range moved {
			ppa := f.allocPageQuiet(ch)
			f.l2p[lpa] = int64(ppa)
			f.p2l[ppa] = int64(lpa)
			f.blocks[f.geo.BlockOfPPA(ppa)].valid++
		}
	}
	return f.allocPage(ch)
}
