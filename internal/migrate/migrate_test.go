package migrate

import (
	"testing"
	"testing/quick"

	"skybyte/internal/sim"
	"skybyte/internal/trace"
)

func TestPLBBounds(t *testing.T) {
	p := NewPLB(2)
	if !p.TryBegin(1) || !p.TryBegin(2) {
		t.Fatal("reservations under capacity failed")
	}
	if p.TryBegin(3) {
		t.Fatal("reservation above capacity succeeded")
	}
	if p.Rejected != 1 {
		t.Fatal("rejection not counted")
	}
	if p.TryBegin(1) {
		t.Fatal("duplicate reservation succeeded")
	}
	p.Complete(1)
	if !p.TryBegin(3) {
		t.Fatal("slot not freed")
	}
	if p.InFlight() != 2 || !p.Migrating(2) || p.Migrating(1) {
		t.Fatal("inflight tracking wrong")
	}
}

func TestPoolLRUOrder(t *testing.T) {
	p := NewPool(3)
	p.Add(10, 1)
	p.Add(20, 2)
	p.Add(30, 3)
	if !p.Full() {
		t.Fatal("pool should be full")
	}
	// Touch 10: 20 becomes coldest.
	p.Touch(10, 4)
	lpa, ok := p.Coldest()
	if !ok || lpa != 20 {
		t.Fatalf("coldest = %d, want 20", lpa)
	}
	p.Remove(20)
	if p.Contains(20) || p.Len() != 2 {
		t.Fatal("remove failed")
	}
	lpa, _ = p.Coldest()
	if lpa != 30 {
		t.Fatalf("coldest after removal = %d, want 30", lpa)
	}
}

func TestPoolAddWhenFullPanics(t *testing.T) {
	p := NewPool(1)
	p.Add(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Add on full pool should panic")
		}
	}()
	p.Add(2, 2)
}

func TestPoolEmptyColdest(t *testing.T) {
	p := NewPool(4)
	if _, ok := p.Coldest(); ok {
		t.Fatal("empty pool has no coldest")
	}
	p.Remove(99) // no-op must not crash
}

// Property: the pool behaves like an LRU against a reference slice model.
func TestPoolAgainstModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := trace.NewRNG(seed)
		p := NewPool(8)
		var model []uint64 // MRU at front
		now := sim.Time(0)
		for op := 0; op < 2000; op++ {
			now++
			lpa := rng.Uint64n(16)
			switch rng.Intn(3) {
			case 0: // add (demoting if full)
				if idx := indexOf(model, lpa); idx >= 0 {
					p.Touch(lpa, now)
					model = append(model[:idx], model[idx+1:]...)
					model = append([]uint64{lpa}, model...)
					continue
				}
				if p.Full() {
					cold, _ := p.Coldest()
					if cold != model[len(model)-1] {
						return false
					}
					p.Remove(cold)
					model = model[:len(model)-1]
				}
				p.Add(lpa, now)
				model = append([]uint64{lpa}, model...)
			case 1: // touch
				p.Touch(lpa, now)
				if idx := indexOf(model, lpa); idx >= 0 {
					model = append(model[:idx], model[idx+1:]...)
					model = append([]uint64{lpa}, model...)
				}
			default: // remove
				p.Remove(lpa)
				if idx := indexOf(model, lpa); idx >= 0 {
					model = append(model[:idx], model[idx+1:]...)
				}
			}
			if p.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func indexOf(s []uint64, v uint64) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func TestTPPSamplerThresholdAndReset(t *testing.T) {
	s := NewTPPSampler(100*sim.Microsecond, 3)
	s.Note(5)
	s.Note(5)
	s.Note(5)
	s.Note(7)
	got := s.Scan(100 * sim.Microsecond)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("candidates = %v, want [5]", got)
	}
	// Window reset: old counts must not carry over.
	s.Note(5)
	if got := s.Scan(200 * sim.Microsecond); len(got) != 0 {
		t.Fatalf("stale counts leaked: %v", got)
	}
}

func TestTPPSamplerDeterministicOrder(t *testing.T) {
	s := NewTPPSampler(sim.Microsecond, 1)
	for _, lpa := range []uint64{9, 3, 7, 1} {
		s.Note(lpa)
	}
	got := s.Scan(0)
	want := []uint64{1, 3, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewPLB(0) },
		func() { NewPool(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor accepted invalid capacity")
				}
			}()
			f()
		}()
	}
}
