package migrate

import (
	"testing"
	"testing/quick"

	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

func TestHugeEntryChunkLifecycle(t *testing.T) {
	p := NewHugePLB(4)
	e, ok := p.Begin(0)
	if !ok {
		t.Fatal("Begin failed")
	}
	if e.Done() {
		t.Fatal("fresh entry already done")
	}
	e.StartChunk(3)
	for li := uint(0); li < 63; li++ {
		if e.MarkLine(li) {
			t.Fatal("chunk completed early")
		}
	}
	if !e.MarkLine(63) {
		t.Fatal("64th line should complete the chunk")
	}
	if !e.ChunkDone(3) || e.ChunkDone(4) {
		t.Fatal("chunk bitmap wrong")
	}
	m, total := e.Progress()
	if m != 1 || total != HugePageChunks {
		t.Fatalf("progress = %d/%d", m, total)
	}
}

func TestHugeEntryForwardingSemantics(t *testing.T) {
	p := NewHugePLB(1)
	e, _ := p.Begin(512) // second huge page: 4KB pages 512..1023
	// Migrate chunk 0 fully, start chunk 1 partially.
	e.StartChunk(0)
	for li := uint(0); li < 64; li++ {
		e.MarkLine(li)
	}
	e.StartChunk(1)
	e.MarkLine(5)

	addrOf := func(page uint64, line uint64) mem.Addr {
		return mem.Addr(page*mem.PageBytes + line*mem.LineBytes)
	}
	if !e.LineMigrated(addrOf(512, 17)) {
		t.Fatal("line in completed chunk should forward to host")
	}
	if !e.LineMigrated(addrOf(513, 5)) {
		t.Fatal("migrated line of current chunk should forward to host")
	}
	if e.LineMigrated(addrOf(513, 6)) {
		t.Fatal("unmigrated line of current chunk should stay on SSD")
	}
	if e.LineMigrated(addrOf(514, 0)) {
		t.Fatal("untouched chunk should stay on SSD")
	}
	if e.LineMigrated(addrOf(2048, 0)) {
		t.Fatal("address outside the huge page must not match")
	}
}

func TestHugePLBCapacityAndLookup(t *testing.T) {
	p := NewHugePLB(2)
	if _, ok := p.Begin(0); !ok {
		t.Fatal("first Begin failed")
	}
	if _, ok := p.Begin(512); !ok {
		t.Fatal("second Begin failed")
	}
	if _, ok := p.Begin(1024); ok {
		t.Fatal("Begin above capacity succeeded")
	}
	if _, ok := p.Begin(0); ok {
		t.Fatal("duplicate Begin succeeded")
	}
	if p.Lookup(700) == nil || p.Lookup(700).BasePage != 512 {
		t.Fatal("Lookup should find the covering huge page")
	}
	if p.Lookup(2000) != nil {
		t.Fatal("Lookup found a phantom entry")
	}
	p.Complete(0)
	if p.InFlight() != 1 {
		t.Fatal("Complete did not free the slot")
	}
	if _, ok := p.Begin(1024); !ok {
		t.Fatal("freed slot unusable")
	}
}

func TestHugePLBValidation(t *testing.T) {
	p := NewHugePLB(1)
	for _, f := range []func(){
		func() { p.Begin(100) },                               // unaligned
		func() { e, _ := p.Begin(0); e.StartChunk(512) },      // chunk range
		func() { e, _ := p.Begin(512); _ = e; e.MarkLine(0) }, // no chunk in flight
		func() { NewHugePLB(0) },                              // capacity
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
		p = NewHugePLB(8)
	}
}

// Property: migrating all 512 chunks in random order completes the entry,
// and at every step LineMigrated is consistent with what was marked.
func TestHugeEntryFullMigrationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := trace.NewRNG(seed)
		p := NewHugePLB(1)
		e, _ := p.Begin(0)
		order := rng.Uint64n(1) // keep deterministic shuffle below
		_ = order
		chunks := make([]int, HugePageChunks)
		for i := range chunks {
			chunks[i] = i
		}
		for i := len(chunks) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			chunks[i], chunks[j] = chunks[j], chunks[i]
		}
		for _, c := range chunks {
			e.StartChunk(c)
			for li := uint(0); li < 64; li++ {
				done := e.MarkLine(li)
				if done != (li == 63) {
					return false
				}
			}
			if !e.ChunkDone(c) {
				return false
			}
		}
		return e.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryBytesWithinHardwareBudget(t *testing.T) {
	// §IV's point: the two-level entry must be far below the 4 KB flat
	// bitmap a naive design needs per 2 MB page.
	if EntryBytes() >= 4096/8 {
		t.Fatalf("entry costs %d bytes; two-level design should be well under 512", EntryBytes())
	}
}
