// Package migrate provides the host-side building blocks for SkyByte's
// adaptive page migration (§III-C) and the alternative mechanisms of §VI-H:
//
//   - PLB: the Promotion Look-aside Buffer in the root complex that bounds
//     and tracks in-flight promotions (64 entries of 24 B in the paper).
//   - Pool: the promoted-page set in host DRAM with exact-LRU demotion
//     victim selection (approximating Linux's active/inactive lists).
//   - TPPSampler: TPP-style periodic hotness sampling (less accurate and
//     laggier than SkyByte's per-access tracking, as §VI-H observes).
//
// The system package choreographs these with the controller and the CXL
// link; AstriFlash's hardware-managed host page cache reuses cachesim with
// 4 KB blocks.
package migrate

import "skybyte/internal/sim"

// PLB bounds concurrent migrations, like the 64-entry Promotion Look-aside
// Buffer in the host bridge.
type PLB struct {
	capacity int
	inflight map[uint64]bool
	// Rejected counts promotions declined because the PLB was full.
	Rejected uint64
}

// NewPLB builds a PLB with the given entry count.
func NewPLB(entries int) *PLB {
	if entries <= 0 {
		panic("migrate: PLB needs at least one entry")
	}
	return &PLB{capacity: entries, inflight: make(map[uint64]bool)}
}

// TryBegin reserves an entry for lpa; false if full or already migrating.
func (p *PLB) TryBegin(lpa uint64) bool {
	if p.inflight[lpa] {
		return false
	}
	if len(p.inflight) >= p.capacity {
		p.Rejected++
		return false
	}
	p.inflight[lpa] = true
	return true
}

// Complete releases lpa's entry.
func (p *PLB) Complete(lpa uint64) { delete(p.inflight, lpa) }

// InFlight returns the number of ongoing migrations.
func (p *PLB) InFlight() int { return len(p.inflight) }

// Migrating reports whether lpa has an in-flight promotion.
func (p *PLB) Migrating(lpa uint64) bool { return p.inflight[lpa] }

// Pool tracks promoted pages resident in host DRAM, in exact LRU order for
// demotion ("finding a relatively cold page tracked by the active/inactive
// list").
type Pool struct {
	capacity int
	nodes    map[uint64]*poolNode
	head     *poolNode // most recently used
	tail     *poolNode // least recently used
}

type poolNode struct {
	lpa        uint64
	lastTouch  sim.Time
	prev, next *poolNode
}

// NewPool builds a pool holding capacityPages pages.
func NewPool(capacityPages int) *Pool {
	if capacityPages <= 0 {
		panic("migrate: pool needs capacity")
	}
	return &Pool{capacity: capacityPages, nodes: make(map[uint64]*poolNode)}
}

// Len returns the resident page count.
func (p *Pool) Len() int { return len(p.nodes) }

// Capacity returns the page capacity.
func (p *Pool) Capacity() int { return p.capacity }

// Full reports whether an Add requires a demotion first.
func (p *Pool) Full() bool { return len(p.nodes) >= p.capacity }

// Contains reports residency.
func (p *Pool) Contains(lpa uint64) bool { return p.nodes[lpa] != nil }

// Add inserts lpa as most-recently-used. It panics if full — the caller
// must demote first (Coldest/Remove).
func (p *Pool) Add(lpa uint64, now sim.Time) {
	if p.Full() {
		panic("migrate: pool full; demote first")
	}
	if p.nodes[lpa] != nil {
		p.Touch(lpa, now)
		return
	}
	n := &poolNode{lpa: lpa, lastTouch: now}
	p.nodes[lpa] = n
	p.pushFront(n)
}

// Touch refreshes recency on access.
func (p *Pool) Touch(lpa uint64, now sim.Time) {
	n := p.nodes[lpa]
	if n == nil {
		return
	}
	n.lastTouch = now
	p.unlink(n)
	p.pushFront(n)
}

// Coldest returns the least-recently-used page, ok=false when empty.
func (p *Pool) Coldest() (lpa uint64, ok bool) {
	if p.tail == nil {
		return 0, false
	}
	return p.tail.lpa, true
}

// Remove evicts lpa from the pool.
func (p *Pool) Remove(lpa uint64) {
	n := p.nodes[lpa]
	if n == nil {
		return
	}
	p.unlink(n)
	delete(p.nodes, lpa)
}

func (p *Pool) pushFront(n *poolNode) {
	n.prev = nil
	n.next = p.head
	if p.head != nil {
		p.head.prev = n
	}
	p.head = n
	if p.tail == nil {
		p.tail = n
	}
}

func (p *Pool) unlink(n *poolNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		p.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		p.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// TPPSampler approximates TPP's NUMA-balancing-style hotness detection:
// accesses are counted between periodic scans; a scan returns pages whose
// count crossed the threshold and resets the window. Compared to SkyByte's
// per-access tracking this reacts at scan granularity and forgets history,
// reproducing the accuracy gap of §VI-H.
type TPPSampler struct {
	Interval  sim.Time
	Threshold uint32
	counts    map[uint64]uint32
	lastScan  sim.Time
}

// NewTPPSampler builds a sampler.
func NewTPPSampler(interval sim.Time, threshold uint32) *TPPSampler {
	return &TPPSampler{Interval: interval, Threshold: threshold, counts: make(map[uint64]uint32)}
}

// Note records one access to a CXL page.
func (s *TPPSampler) Note(lpa uint64) { s.counts[lpa]++ }

// Scan returns promotion candidates (deterministically ordered by lpa) and
// resets the sampling window.
func (s *TPPSampler) Scan(now sim.Time) []uint64 {
	var out []uint64
	for lpa, c := range s.counts {
		if c >= s.Threshold {
			out = append(out, lpa)
		}
	}
	s.counts = make(map[uint64]uint32)
	s.lastScan = now
	sortU64(out)
	return out
}

func sortU64(s []uint64) {
	// Insertion sort: candidate lists are short; avoids importing sort for
	// a deterministic order.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
