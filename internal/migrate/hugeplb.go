package migrate

import (
	"fmt"

	"skybyte/internal/mem"
)

// Huge-page migration support (paper §IV, "Support for multiple page
// sizes"): migrating a 2 MB huge page cannot use a flat PLB entry — its
// 32,768 cachelines would need a 4 KB bitmap per entry. The paper extends
// the PLB into a two-level structure: the first level holds a 64 B bitmap
// marking which of the 512 4 KB chunks have migrated; the second level
// holds one 8 B bitmap tracking the cachelines of the single chunk
// currently under migration. The huge page moves chunk by chunk, so only
// one second-level entry is live per huge page.

// HugePageChunks is the number of 4 KB chunks in a 2 MB huge page.
const HugePageChunks = 512

// HugeEntry tracks one in-flight 2 MB huge-page migration.
type HugeEntry struct {
	// BasePage is the huge page's first 4 KB page number.
	BasePage uint64
	// chunkDone is the first-level 64 B bitmap: chunkDone[i]>>j marks
	// chunk i*64+j fully migrated.
	chunkDone [HugePageChunks / 64]uint64
	// current is the chunk under migration, -1 if none.
	current int32
	// lineDone is the second-level 8 B bitmap for the current chunk.
	lineDone uint64
	done     int32 // chunks completed
}

// HugePLB tracks in-flight huge-page migrations with the paper's two-level
// bitmap structure.
type HugePLB struct {
	capacity int
	inflight map[uint64]*HugeEntry // keyed by base page
}

// NewHugePLB builds a huge-page PLB.
func NewHugePLB(entries int) *HugePLB {
	if entries <= 0 {
		panic("migrate: huge PLB needs at least one entry")
	}
	return &HugePLB{capacity: entries, inflight: make(map[uint64]*HugeEntry)}
}

// EntryBytes reports the hardware cost of one entry: the 64 B first-level
// bitmap plus the 8 B second-level bitmap (plus the base address and a
// cursor) — versus the 4 KB flat bitmap §IV rules out.
func EntryBytes() int { return 64 + 8 + 8 + 4 }

// Begin starts migrating the 2 MB huge page whose first 4 KB page is
// basePage (must be 512-page aligned). Returns false if the PLB is full or
// the page is already migrating.
func (p *HugePLB) Begin(basePage uint64) (*HugeEntry, bool) {
	if basePage%HugePageChunks != 0 {
		panic(fmt.Sprintf("migrate: huge page base %d not 2MB-aligned", basePage))
	}
	if p.inflight[basePage] != nil || len(p.inflight) >= p.capacity {
		return nil, false
	}
	e := &HugeEntry{BasePage: basePage, current: -1}
	p.inflight[basePage] = e
	return e, true
}

// Lookup returns the in-flight entry covering page (a 4 KB page number),
// if any.
func (p *HugePLB) Lookup(page uint64) *HugeEntry {
	return p.inflight[page-(page%HugePageChunks)]
}

// Complete removes the entry once all chunks migrated.
func (p *HugePLB) Complete(basePage uint64) { delete(p.inflight, basePage) }

// InFlight returns the number of huge pages mid-migration.
func (p *HugePLB) InFlight() int { return len(p.inflight) }

// StartChunk begins migrating chunk idx (0..511); at most one chunk is in
// flight per huge page ("the PLB migrates the huge page chunk-by-chunk").
func (e *HugeEntry) StartChunk(idx int) {
	if idx < 0 || idx >= HugePageChunks {
		panic("migrate: chunk index out of range")
	}
	if e.current >= 0 {
		panic("migrate: a chunk is already migrating")
	}
	if e.ChunkDone(idx) {
		panic("migrate: chunk already migrated")
	}
	e.current = int32(idx)
	e.lineDone = 0
}

// MarkLine records that cacheline li (0..63) of the current chunk copied;
// it reports whether the chunk just completed (all 64 lines).
func (e *HugeEntry) MarkLine(li uint) bool {
	if e.current < 0 {
		panic("migrate: no chunk in flight")
	}
	e.lineDone |= 1 << (li & 63)
	if e.lineDone == ^uint64(0) {
		idx := int(e.current)
		e.chunkDone[idx/64] |= 1 << (idx % 64)
		e.current = -1
		e.done++
		return true
	}
	return false
}

// ChunkDone reports whether chunk idx has fully migrated.
func (e *HugeEntry) ChunkDone(idx int) bool {
	return e.chunkDone[idx/64]>>(idx%64)&1 == 1
}

// LineMigrated answers the PLB's forwarding question for a write to addr
// (§III-C / §IV): has this cacheline's data already moved to the host? If
// so the write must go to the host copy; otherwise the SSD still owns it.
func (e *HugeEntry) LineMigrated(addr mem.Addr) bool {
	page := addr.PageNumber()
	idx := int(page - e.BasePage)
	if idx < 0 || idx >= HugePageChunks {
		return false
	}
	if e.ChunkDone(idx) {
		return true
	}
	if e.current == int32(idx) {
		return e.lineDone>>(addr.LineIndex()&63)&1 == 1
	}
	return false
}

// Done reports whether every chunk migrated.
func (e *HugeEntry) Done() bool { return e.done == HugePageChunks }

// Progress returns migrated chunks out of 512.
func (e *HugeEntry) Progress() (migrated, total int) { return int(e.done), HugePageChunks }
