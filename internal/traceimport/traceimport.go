// Package traceimport converts externally produced traces into the
// simulator's .trc container, so published recordings drive SkyByte's
// evaluation directly instead of only our own generator recordings
// (ROADMAP "real trace importers"; the paper itself replays
// PIN-captured traces). Three formats are supported:
//
//   - champsim — ChampSim's binary instruction trace (64-byte records;
//     plain or gzip-compressed);
//   - damon — DAMON/damo "raw" monitoring dumps (text region
//     snapshots with access counts);
//   - cachegrind — cachegrind/lackey-style address logs (text lines
//     "I addr,size" / " L addr,size" / " S addr,size" / " M addr,size").
//
// Every importer normalizes into the same record vocabulary the
// generators emit, rebasing source addresses into the CXL arena with a
// dense first-seen page remap (normalizer) so footprints fit the
// scaled machine while page locality and reuse survive. The produced
// trace carries an Origin meta block — format, source file name,
// source sha256, converter revision — so provenance rides inside the
// file, is covered by its digest, and folds into spec keys
// (DESIGN.md §2.1): importing a different source re-keys exactly the
// design points that replay it.
//
// Imports are deterministic: the same source file always converts to
// the same .trc bytes, so re-importing is reproducible and the
// resulting workload replays bit-identically at any parallelism.
package traceimport

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

// ConverterVersion names the behaviour of the importers. Bump it when
// any importer's emitted records change for the same source bytes: it
// rides in Origin.Converter, so the change is visible in trace meta
// and in every digest derived from an imported file.
const ConverterVersion = "traceimport/v1"

// converters maps format name to its parser. A parser reads the whole
// source and returns the normalized thread streams (thread 0 only for
// all current formats — replay wraps threads modulo the recorded
// count, so any simulated thread count still feeds every thread).
var converters = map[string]func(r io.Reader, n *normalizer) ([][]trace.Record, error){
	"champsim":   importChampSim,
	"damon":      importDAMON,
	"cachegrind": importCachegrind,
}

// Formats lists the supported external formats, sorted.
func Formats() []string {
	out := make([]string, 0, len(converters))
	for f := range converters {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// ParseSpec splits a CLI import spec of the form "<format>:<path>"
// (e.g. "champsim:traces/600.perlbench.trace"), rejecting unknown
// formats with the valid list.
func ParseSpec(spec string) (format, path string, err error) {
	format, path, ok := strings.Cut(spec, ":")
	if !ok || path == "" {
		return "", "", fmt.Errorf("traceimport: invalid import spec %q; want <format>:<path>, formats: %s",
			spec, strings.Join(Formats(), ", "))
	}
	if _, known := converters[format]; !known {
		return "", "", fmt.Errorf("traceimport: unknown format %q (valid: %s)", format, strings.Join(Formats(), ", "))
	}
	return format, path, nil
}

// Import converts the external trace at path into an in-memory Trace
// with provenance meta. The result is ready to encode
// (trace.EncodeTrace) or to register as a workload (RegisterWorkload).
func Import(format, path string) (*trace.Trace, error) {
	conv, ok := converters[format]
	if !ok {
		return nil, fmt.Errorf("traceimport: unknown format %q (valid: %s)", format, strings.Join(Formats(), ", "))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traceimport: %w", err)
	}
	defer f.Close()
	// Hash the source as the parser consumes it: the digest in Origin
	// is of the exact bytes that produced the records.
	h := sha256.New()
	norm := newNormalizer()
	threads, err := conv(io.TeeReader(f, h), norm)
	if err != nil {
		return nil, fmt.Errorf("traceimport: %s: %s: %w", format, path, err)
	}
	// Drain whatever the parser did not consume (e.g. nothing, for the
	// text formats) so the digest always covers the whole file.
	if _, err := io.Copy(h, f); err != nil {
		return nil, fmt.Errorf("traceimport: %s: %w", path, err)
	}
	total := 0
	for _, recs := range threads {
		total += len(recs)
	}
	if total == 0 {
		return nil, fmt.Errorf("traceimport: %s: %s holds no convertible records", format, path)
	}
	var loads, stores uint64
	for _, recs := range threads {
		for _, r := range recs {
			switch r.Kind {
			case trace.Load, trace.LoadDep:
				loads++
			case trace.Store:
				stores++
			}
		}
	}
	writeRatio := 0.0
	if loads+stores > 0 {
		writeRatio = float64(stores) / float64(loads+stores)
	}
	return &trace.Trace{
		Meta: trace.Meta{
			Workload:       format + ":" + sanitizeName(filepath.Base(path)),
			FootprintPages: norm.footprintPages(),
			WriteRatio:     writeRatio,
			Origin: &trace.Origin{
				Format:       format,
				Source:       filepath.Base(path),
				SourceDigest: hex.EncodeToString(h.Sum(nil)),
				Converter:    ConverterVersion,
			},
		},
		Threads: threads,
	}, nil
}

// sanitizeName maps a source file name onto the workload-name alphabet
// (letters, digits, '-', '_', '.', ':'), so "trace:<format>:<name>"
// always validates.
func sanitizeName(base string) string {
	var b strings.Builder
	for _, r := range base {
		ok := r == '-' || r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "import"
	}
	return b.String()
}

// normalizer rebases external addresses into the CXL arena: each
// distinct source page maps to the next dense page index in
// first-seen order, and offsets within a page are kept line-aligned.
// First-seen order preserves adjacency for sequential sweeps and
// reuse for hot pages, while footprints shrink to the pages actually
// touched — external traces routinely spread over sparse tens-of-GB
// address spaces the scaled machine cannot (and need not) back.
type normalizer struct {
	pages map[uint64]uint64
	next  uint64
}

func newNormalizer() *normalizer {
	return &normalizer{pages: make(map[uint64]uint64)}
}

// addr maps one source byte address into the arena.
func (n *normalizer) addr(raw uint64) mem.Addr {
	page := raw / mem.PageBytes
	idx, ok := n.pages[page]
	if !ok {
		idx = n.next
		n.next++
		n.pages[page] = idx
	}
	off := (raw % mem.PageBytes) &^ (mem.LineBytes - 1)
	return mem.CXLBase + mem.Addr(idx*mem.PageBytes+off)
}

// footprintPages returns the touched-page count (>= 1, so the arena is
// never empty).
func (n *normalizer) footprintPages() uint64 {
	if n.next == 0 {
		return 1
	}
	return n.next
}

// emitter batches compute instructions between memory records, the
// same compaction the generators use: runs of non-memory instructions
// become one Compute record.
type emitter struct {
	recs    []trace.Record
	pending uint64 // accumulated compute instructions
}

func (e *emitter) compute(n uint64) { e.pending += n }

func (e *emitter) flush() {
	for e.pending > 0 {
		n := e.pending
		if n > 1<<30 {
			n = 1 << 30
		}
		e.recs = append(e.recs, trace.Record{Kind: trace.Compute, N: uint32(n)})
		e.pending -= n
	}
}

func (e *emitter) mem(kind trace.Kind, a mem.Addr) {
	e.flush()
	e.recs = append(e.recs, trace.Record{Kind: kind, Addr: a})
}

func (e *emitter) done() []trace.Record {
	e.flush()
	return e.recs
}
