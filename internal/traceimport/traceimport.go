// Package traceimport converts externally produced traces into the
// simulator's .trc container, so published recordings drive SkyByte's
// evaluation directly instead of only our own generator recordings
// (ROADMAP "real trace importers"; the paper itself replays
// PIN-captured traces). Three formats are supported:
//
//   - champsim — ChampSim's binary instruction trace (64-byte records;
//     plain or gzip-compressed); a directory or glob of per-CPU trace
//     files imports as one multi-thread trace, one real stream per
//     core file;
//   - damon — DAMON/damo "raw" monitoring dumps (text region
//     snapshots with access counts);
//   - cachegrind — cachegrind/lackey-style address logs (text lines
//     "I addr,size" / " L addr,size" / " S addr,size" / " M addr,size").
//
// Every importer normalizes into the same record vocabulary the
// generators emit, rebasing source addresses into the CXL arena with a
// dense first-seen page remap (normalizer) so footprints fit the
// scaled machine while page locality and reuse survive. The produced
// trace carries an Origin meta block — format, source file name,
// source sha256, converter revision — so provenance rides inside the
// file, is covered by its digest, and folds into spec keys
// (DESIGN.md §2.1): importing a different source re-keys exactly the
// design points that replay it.
//
// Imports are deterministic: the same source file always converts to
// the same .trc bytes, so re-importing is reproducible and the
// resulting workload replays bit-identically at any parallelism.
package traceimport

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

// ConverterVersion names the behaviour of the importers. Bump it when
// any importer's emitted records change for the same source bytes: it
// rides in Origin.Converter, so the change is visible in trace meta
// and in every digest derived from an imported file.
const ConverterVersion = "traceimport/v1"

// converters maps format name to its parser. A parser reads the whole
// source and pushes normalized records through the emitter one at a
// time (thread 0 only for all current formats — replay wraps threads
// modulo the recorded count, so any simulated thread count still feeds
// every thread). Streaming instead of returning a slice keeps importer
// memory independent of source size: the sink decides whether records
// materialize (Import) or encode straight into trace blocks
// (ImportEncoded).
var converters = map[string]func(r io.Reader, n *normalizer, e *emitter) error{
	"champsim":   importChampSim,
	"damon":      importDAMON,
	"cachegrind": importCachegrind,
}

// Formats lists the supported external formats, sorted.
func Formats() []string {
	out := make([]string, 0, len(converters))
	for f := range converters {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// extFormats maps recognized source-file extensions to their format,
// for specs that give a bare path instead of "<format>:<path>".
var extFormats = map[string]string{
	".champsimtrace": "champsim",
	".champsim":      "champsim",
	".damon":         "damon",
	".cachegrind":    "cachegrind",
	".cg":            "cachegrind",
}

// DetectFormat infers the import format from the path's extension
// (a trailing ".gz" is transparent — the ChampSim reader decompresses
// it). An unrecognized extension is an error listing the valid set:
// guessing a format from ambiguous bytes would silently misparse, so
// detection never falls back to a default.
func DetectFormat(path string) (string, error) {
	base := filepath.Base(path)
	ext := filepath.Ext(base)
	if ext == ".gz" {
		ext = filepath.Ext(strings.TrimSuffix(base, ext))
	}
	if f, ok := extFormats[strings.ToLower(ext)]; ok {
		return f, nil
	}
	exts := make([]string, 0, len(extFormats))
	for e := range extFormats {
		exts = append(exts, e)
	}
	sort.Strings(exts)
	return "", fmt.Errorf("traceimport: cannot infer a format from %q (recognized extensions: %s); say it explicitly as <format>:<path>, formats: %s",
		base, strings.Join(exts, ", "), strings.Join(Formats(), ", "))
}

// ParseSpec resolves a CLI import spec: either "<format>:<path>"
// (e.g. "champsim:traces/600.perlbench.trace"), rejecting unknown
// formats with the valid list, or a bare path whose format is inferred
// from its extension (DetectFormat — loud failure on unrecognized
// extensions, never a silent default).
func ParseSpec(spec string) (format, path string, err error) {
	if format, path, ok := strings.Cut(spec, ":"); ok && path != "" {
		if _, known := converters[format]; known {
			return format, path, nil
		}
		if !strings.ContainsAny(format, "./*?[") {
			// Looks like a format prefix, just not a supported one —
			// e.g. a typo, or "pin:trace.out". A path-with-colon (or a
			// glob) falls through to extension detection instead.
			return "", "", fmt.Errorf("traceimport: unknown format %q (valid: %s)", format, strings.Join(Formats(), ", "))
		}
	}
	format, err = DetectFormat(spec)
	if err != nil {
		return "", "", err
	}
	return format, spec, nil
}

// passStats is what one converter pass over one source file observed:
// the record mix, the emitted count, and the source digest.
type passStats struct {
	loads, stores uint64
	records       uint64
	digest        string // sha256 of the source file, hex
}

// importOne runs one converter pass over one source file, pushing
// every normalized record into sink as it is parsed. The normalizer is
// the caller's: a multi-file import shares one, so pages common to
// several per-CPU traces rebase to the same arena page.
func importOne(format, path string, norm *normalizer, sink func(trace.Record) error) (passStats, error) {
	conv, ok := converters[format]
	if !ok {
		return passStats{}, fmt.Errorf("traceimport: unknown format %q (valid: %s)", format, strings.Join(Formats(), ", "))
	}
	f, err := os.Open(path)
	if err != nil {
		return passStats{}, fmt.Errorf("traceimport: %w", err)
	}
	defer f.Close()
	// Hash the source as the parser consumes it: the digest in Origin
	// is of the exact bytes that produced the records.
	h := sha256.New()
	var st passStats
	e := &emitter{sink: func(r trace.Record) error {
		switch r.Kind {
		case trace.Load, trace.LoadDep:
			st.loads++
		case trace.Store:
			st.stores++
		}
		return sink(r)
	}}
	if err := conv(io.TeeReader(f, h), norm, e); err != nil {
		return passStats{}, fmt.Errorf("traceimport: %s: %s: %w", format, path, err)
	}
	// Drain whatever the parser did not consume (e.g. nothing, for the
	// text formats) so the digest always covers the whole file.
	if _, err := io.Copy(h, f); err != nil {
		return passStats{}, fmt.Errorf("traceimport: %s: %w", path, err)
	}
	if e.count == 0 {
		return passStats{}, fmt.Errorf("traceimport: %s: %s holds no convertible records", format, path)
	}
	st.records = e.count
	st.digest = hex.EncodeToString(h.Sum(nil))
	return st, nil
}

// importStream runs one single-file converter pass and returns the
// trace meta assembled from what the pass observed (footprint, write
// ratio, source digest). The caller chooses what the sink does with
// the records; importStream itself holds none of them.
func importStream(format, path string, sink func(trace.Record) error) (trace.Meta, error) {
	norm := newNormalizer()
	st, err := importOne(format, path, norm, sink)
	if err != nil {
		return trace.Meta{}, err
	}
	return trace.Meta{
		Workload:       format + ":" + sanitizeName(filepath.Base(path)),
		FootprintPages: norm.footprintPages(),
		WriteRatio:     st.writeRatio(),
		Origin: &trace.Origin{
			Format:       format,
			Source:       filepath.Base(path),
			SourceDigest: st.digest,
			Converter:    ConverterVersion,
		},
	}, nil
}

func (st *passStats) writeRatio() float64 {
	if st.loads+st.stores == 0 {
		return 0
	}
	return float64(st.stores) / float64(st.loads+st.stores)
}

// Import converts the external trace at path into an in-memory Trace
// with provenance meta. The result is ready to encode
// (trace.EncodeTrace) or to hand to code that wants materialized
// records; conversions meant for a .trc file or a workload
// registration should use ImportEncoded instead, which never holds
// the record slice.
func Import(format, path string) (*trace.Trace, error) {
	var recs []trace.Record
	meta, err := importStream(format, path, func(r trace.Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &trace.Trace{Meta: meta, Threads: [][]trace.Record{recs}}, nil
}

// Encoded is a finished streaming import: the canonical .trc bytes
// plus the meta and record count the pass discovered.
type Encoded struct {
	// Data is the encoded trace container, identical to encoding the
	// materialized Import result at the same version.
	Data []byte
	// Meta is the trace meta that rides in Data (provenance included).
	Meta trace.Meta
	// Threads and Records describe the converted stream.
	Threads int
	Records uint64
}

// expandSources resolves an import path that may name a set of files:
// a glob pattern (any of * ? [) or a directory expands to its regular
// files, sorted by name; a plain file is itself. ChampSim publishes
// per-CPU trace sets as one file per core, and sorted-name order is
// the cpu0..cpuN convention those sets use.
func expandSources(path string) ([]string, error) {
	if strings.ContainsAny(path, "*?[") {
		matches, err := filepath.Glob(path)
		if err != nil {
			return nil, fmt.Errorf("traceimport: bad glob %q: %w", path, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("traceimport: glob %q matches no files", path)
		}
		sort.Strings(matches)
		return matches, nil
	}
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("traceimport: %w", err)
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, fmt.Errorf("traceimport: %w", err)
	}
	var files []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			files = append(files, filepath.Join(path, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("traceimport: directory %q holds no files", path)
	}
	sort.Strings(files)
	return files, nil
}

// ImportEncoded converts the external trace at path directly into
// encoded .trc bytes at the given codec version, streaming each
// record into the block writer as it is parsed. Peak heap tracks the
// encoded output size (a few bytes per record) plus one raw block —
// not the 16 B/record of a materialized conversion — so multi-gigabyte
// published traces import without a matching memory budget. The bytes
// are identical to EncodeTraceVersion(Import(...)) by construction.
//
// For champsim, path may be a directory or a glob of per-CPU trace
// files: each file (sorted by name, the cpu0..cpuN convention) becomes
// one real thread stream, sharing a single address normalizer so pages
// common to several cores rebase to the same arena page. The other
// formats carry no per-CPU convention and stay single-file.
func ImportEncoded(format, path string, version int) (*Encoded, error) {
	files, err := expandSources(path)
	if err != nil {
		return nil, err
	}
	if len(files) > 1 && format != "champsim" {
		return nil, fmt.Errorf("traceimport: %s: %q names %d files; per-CPU multi-file sets are a champsim convention (other formats take one file)",
			format, path, len(files))
	}
	enc, err := trace.NewStreamEncoder(version)
	if err != nil {
		return nil, err
	}
	var meta trace.Meta
	if len(files) == 1 {
		enc.BeginThread() // single-source converters emit one thread-0 stream
		meta, err = importStream(format, files[0], enc.Append)
		if err != nil {
			return nil, err
		}
	} else {
		// Multi-file: one thread per file, one shared normalizer, and a
		// combined digest folding every per-file digest in thread order
		// — any edited, added, removed, or reordered source file changes
		// the provenance and re-keys the design points replaying it.
		norm := newNormalizer()
		var agg passStats
		comb := sha256.New()
		for _, f := range files {
			enc.BeginThread()
			st, err := importOne(format, f, norm, enc.Append)
			if err != nil {
				return nil, err
			}
			agg.loads += st.loads
			agg.stores += st.stores
			fmt.Fprintf(comb, "%s %s\n", st.digest, filepath.Base(f))
		}
		meta = trace.Meta{
			Workload:       format + ":" + sanitizeName(filepath.Base(path)),
			FootprintPages: norm.footprintPages(),
			WriteRatio:     agg.writeRatio(),
			Origin: &trace.Origin{
				Format:       format,
				Source:       fmt.Sprintf("%s (%d files)", filepath.Base(path), len(files)),
				SourceDigest: hex.EncodeToString(comb.Sum(nil)),
				Converter:    ConverterVersion,
			},
		}
	}
	data, err := enc.Finish(meta)
	if err != nil {
		return nil, err
	}
	return &Encoded{Data: data, Meta: meta, Threads: enc.Threads(), Records: enc.Records()}, nil
}

// sanitizeName maps a source file name onto the workload-name alphabet
// (letters, digits, '-', '_', '.', ':'), so "trace:<format>:<name>"
// always validates.
func sanitizeName(base string) string {
	var b strings.Builder
	for _, r := range base {
		ok := r == '-' || r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "import"
	}
	return b.String()
}

// normalizer rebases external addresses into the CXL arena: each
// distinct source page maps to the next dense page index in
// first-seen order, and offsets within a page are kept line-aligned.
// First-seen order preserves adjacency for sequential sweeps and
// reuse for hot pages, while footprints shrink to the pages actually
// touched — external traces routinely spread over sparse tens-of-GB
// address spaces the scaled machine cannot (and need not) back.
type normalizer struct {
	pages map[uint64]uint64
	next  uint64
}

func newNormalizer() *normalizer {
	return &normalizer{pages: make(map[uint64]uint64)}
}

// addr maps one source byte address into the arena.
func (n *normalizer) addr(raw uint64) mem.Addr {
	page := raw / mem.PageBytes
	idx, ok := n.pages[page]
	if !ok {
		idx = n.next
		n.next++
		n.pages[page] = idx
	}
	off := (raw % mem.PageBytes) &^ (mem.LineBytes - 1)
	return mem.CXLBase + mem.Addr(idx*mem.PageBytes+off)
}

// footprintPages returns the touched-page count (>= 1, so the arena is
// never empty).
func (n *normalizer) footprintPages() uint64 {
	if n.next == 0 {
		return 1
	}
	return n.next
}

// emitter batches compute instructions between memory records — the
// same compaction the generators use: runs of non-memory instructions
// become one Compute record — and streams each finished record into
// its sink immediately, so a converter never holds more than the
// pending compute count. The first sink error sticks; later emits are
// dropped and finish reports it.
type emitter struct {
	sink    func(trace.Record) error
	count   uint64 // records successfully emitted
	pending uint64 // accumulated compute instructions
	err     error
}

func (e *emitter) emit(r trace.Record) {
	if e.err != nil {
		return
	}
	if err := e.sink(r); err != nil {
		e.err = err
		return
	}
	e.count++
}

func (e *emitter) compute(n uint64) { e.pending += n }

func (e *emitter) flush() {
	for e.pending > 0 && e.err == nil {
		n := e.pending
		if n > 1<<30 {
			n = 1 << 30
		}
		e.emit(trace.Record{Kind: trace.Compute, N: uint32(n)})
		e.pending -= n
	}
}

func (e *emitter) mem(kind trace.Kind, a mem.Addr) {
	e.flush()
	e.emit(trace.Record{Kind: kind, Addr: a})
}

// finish flushes any trailing compute run and reports how many records
// the pass emitted, plus the first sink error if one occurred.
func (e *emitter) finish() (uint64, error) {
	e.flush()
	return e.count, e.err
}
