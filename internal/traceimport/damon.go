package traceimport

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"

	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

// damonRegion matches one region line of a `damo report raw` dump:
//
//	7f2f10000000-7f2f1a000000(  160.000 MiB):	12
//
// i.e. hex start-end, a parenthesized human size (ignored), and the
// sampled access count for the aggregation interval.
var damonRegion = regexp.MustCompile(`^([0-9a-fA-F]+)-([0-9a-fA-F]+)\s*\([^)]*\):\s*(\d+)$`)

// damonComputeGap is the synthetic compute burst interleaved between
// the accesses of one region. DAMON records *where* memory is hot, not
// the instructions between accesses; a fixed gap keeps the replayed
// stream memory-intensive while remaining deterministic. Documented in
// WORKLOADS.md as a per-format caveat.
const damonComputeGap = 20

// importDAMON converts a DAMON raw dump: every region line with a
// non-zero access count synthesizes that many line-aligned Loads,
// evenly strided across the region, in file order. Snapshot headers
// (monitoring_*, target_id, nr_regions, base_time_absolute, intervals)
// are skipped; anything else is a loud parse error. DAMON does not
// attribute reads vs writes in this dump, so the synthetic stream is
// read-only (WriteRatio 0) — replay exercises the read path and page
// heat, not the write log.
func importDAMON(r io.Reader, n *normalizer, e *emitter) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	regions := 0
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if m := damonRegion.FindStringSubmatch(line); m != nil {
			start, err1 := strconv.ParseUint(m[1], 16, 64)
			end, err2 := strconv.ParseUint(m[2], 16, 64)
			accesses, err3 := strconv.ParseUint(m[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil || end <= start {
				return fmt.Errorf("damon: line %d: malformed region %q", ln, line)
			}
			regions++
			if accesses == 0 {
				continue
			}
			// Cap the synthetic expansion of one region: a dump line
			// carries at most the sampling budget of one aggregation
			// interval in practice, but the value is untrusted input.
			if accesses > 1<<20 {
				return fmt.Errorf("damon: line %d: region declares %d accesses (damaged dump?)", ln, accesses)
			}
			size := end - start
			stride := size / accesses
			if stride < mem.LineBytes {
				stride = mem.LineBytes
			}
			for i := uint64(0); i < accesses; i++ {
				e.compute(damonComputeGap)
				e.mem(trace.Load, n.addr(start+(i*stride)%size))
			}
			continue
		}
		// Known snapshot headers and metadata lines.
		if key, _, ok := strings.Cut(line, ":"); ok {
			switch strings.TrimSpace(key) {
			case "base_time_absolute", "monitoring_start", "monitoring_end",
				"monitoring_duration", "target_id", "nr_regions", "intervals":
				continue
			}
		}
		return fmt.Errorf("damon: line %d: unrecognized line %q (expected a damo raw dump)", ln, line)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("damon: %w", err)
	}
	if regions == 0 {
		return fmt.Errorf("damon: no region lines (empty or foreign file?)")
	}
	total, err := e.finish()
	if err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("damon: every region reports zero accesses; nothing to replay")
	}
	return nil
}
