package traceimport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"skybyte/internal/trace"
)

// TestImportEncodedMatchesMaterialized: the streaming import path must
// produce the exact bytes of materializing and batch-encoding — every
// digest-derived identity (spec keys, result-store keys) depends on
// the two paths being interchangeable.
func TestImportEncodedMatchesMaterialized(t *testing.T) {
	for _, format := range Formats() {
		src := fixtureFile(t, format)
		tr, err := Import(format, src)
		if err != nil {
			t.Fatal(err)
		}
		for _, version := range []int{1, 2} {
			want, err := trace.EncodeTraceVersion(tr, version)
			if err != nil {
				t.Fatal(err)
			}
			enc, err := ImportEncoded(format, src, version)
			if err != nil {
				t.Fatalf("%s v%d: %v", format, version, err)
			}
			if !bytes.Equal(enc.Data, want) {
				t.Fatalf("%s v%d: streaming import produced different bytes than materialize+encode", format, version)
			}
			if enc.Threads != 1 || enc.Records != uint64(tr.Records()) {
				t.Fatalf("%s v%d: streamed %d threads / %d records, materialized %d / %d",
					format, version, enc.Threads, enc.Records, len(tr.Threads), tr.Records())
			}
			if enc.Meta.Workload != tr.Meta.Workload || enc.Meta.FootprintPages != tr.Meta.FootprintPages {
				t.Fatalf("%s v%d: meta diverged: %+v vs %+v", format, version, enc.Meta, tr.Meta)
			}
		}
	}
}

// bigChampSimSource writes a ChampSim trace of n instructions: every
// third instruction is compute-only, the rest issue one load or store
// over a small hot working set, so the source is large but the
// converted records compress well.
func bigChampSimSource(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "big.champsim")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var rec [champSimRecordBytes]byte
	const heap = 0x5600_0000_0000
	for i := 0; i < n; i++ {
		for j := range rec {
			rec[j] = 0
		}
		binary.LittleEndian.PutUint64(rec[0:], 0x401000+uint64(i%64))
		switch i % 3 {
		case 0: // compute only
		case 1:
			binary.LittleEndian.PutUint64(rec[32:], heap+uint64(i%4096)*64)
		default:
			binary.LittleEndian.PutUint64(rec[16:], heap+uint64(i%4096)*64)
		}
		if _, err := w.Write(rec[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStreamingImportBoundedMemory is the acceptance check for the
// streaming import path's reason to exist: converting a >=1M-record
// external source must hold live heap near the compressed output
// size, not materialize the record stream (the ROADMAP carry-over this
// path closes). The sink samples the heap as the converter runs —
// the peak is what a real import of a much larger file would scale
// from.
func TestStreamingImportBoundedMemory(t *testing.T) {
	const nInstr = 1_200_000
	src := bigChampSimSource(t, nInstr)

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	enc, err := trace.NewStreamEncoder(2)
	if err != nil {
		t.Fatal(err)
	}
	enc.BeginThread()
	var n uint64
	var peak uint64
	meta, err := importStream("champsim", src, func(r trace.Record) error {
		n++
		if n%200_000 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		return enc.Append(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := enc.Finish(meta)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}
	if n < 1_000_000 {
		t.Fatalf("converted %d records; the acceptance bar is >= 1M", n)
	}
	// Live-heap bound: a materialized import holds >=16 B/record
	// (~18 MiB here) before encoding even starts; the streaming path
	// must stay within the compressed output plus fixed scratch.
	materializedBytes := n * 16
	const headroom = 8 << 20
	if peak > baseline+headroom {
		t.Fatalf("streaming import grew the live heap by %d bytes (baseline %d, peak %d); bound is %d",
			peak-baseline, baseline, peak, headroom)
	}
	if peak-baseline >= materializedBytes/2 {
		t.Fatalf("streaming import held %d bytes, not meaningfully below the %d a materialized import needs",
			peak-baseline, materializedBytes)
	}
	// The product must still be a whole, replayable trace.
	r, err := trace.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRecords() != n {
		t.Fatalf("encoded trace carries %d records, streamed %d", r.NumRecords(), n)
	}
}
