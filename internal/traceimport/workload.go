package traceimport

import (
	"bytes"

	"skybyte/internal/trace"
	"skybyte/internal/workloads"
)

// RegisterWorkload imports an external trace and registers it as a
// replayable workload named "trace:<format>:<source>", resolvable by
// name everywhere a built-in is — so an imported trace joins campaigns
// exactly like a recorded one. The spec's source identity is the
// digest of the canonical encoding of the converted records (which
// covers the Origin meta, and through it the source file's sha256), so
// runner spec keys re-cold exactly the design points replaying this
// import when the source file or any importer behaviour changes.
//
// The conversion streams straight into the encoded container and the
// registered workload replays it through the block-at-a-time Reader,
// so neither import nor replay ever materializes the record slice;
// peak memory tracks the compressed trace size. To keep a large
// import across runs, write it to a .trc with the skybyte-trace CLI
// (-import ... -record out.trc) and load the file instead.
func RegisterWorkload(format, path string) (workloads.Spec, error) {
	enc, err := ImportEncoded(format, path, trace.CodecVersion)
	if err != nil {
		return workloads.Spec{}, err
	}
	src, err := trace.NewReader(bytes.NewReader(enc.Data), int64(len(enc.Data)))
	if err != nil {
		return workloads.Spec{}, err
	}
	spec, err := workloads.SpecFromTrace(src, trace.TraceDigest(enc.Data))
	if err != nil {
		return workloads.Spec{}, err
	}
	if err := workloads.Register(spec); err != nil {
		return workloads.Spec{}, err
	}
	return spec, nil
}
