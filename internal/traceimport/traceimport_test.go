package traceimport

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

func fixtureFile(t *testing.T, format string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "src."+format)
	if err := WriteFixture(format, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func kindCounts(tr *trace.Trace) map[trace.Kind]int {
	k := map[trace.Kind]int{}
	for _, recs := range tr.Threads {
		for _, r := range recs {
			k[r.Kind]++
		}
	}
	return k
}

func TestParseSpec(t *testing.T) {
	f, p, err := ParseSpec("champsim:some/dir/trace.bin")
	if err != nil || f != "champsim" || p != "some/dir/trace.bin" {
		t.Fatalf("ParseSpec = %q,%q,%v", f, p, err)
	}
	for _, bad := range []string{"", "champsim", "champsim:", "xz:file", "pintool:x"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		} else if bad != "" && bad != "champsim" && bad != "champsim:" &&
			!strings.Contains(err.Error(), "champsim") {
			t.Errorf("spec %q: error %q does not list the valid formats", bad, err)
		}
	}
}

func TestFormatsListsEveryConverter(t *testing.T) {
	want := []string{"cachegrind", "champsim", "damon"}
	if got := Formats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Formats() = %v, want %v", got, want)
	}
}

// TestImportEveryFormat runs each importer over its synthetic fixture
// and checks the converted trace's shape: records of the expected
// kinds, addresses inside the normalized arena, full provenance meta.
func TestImportEveryFormat(t *testing.T) {
	for _, format := range Formats() {
		src := fixtureFile(t, format)
		tr, err := Import(format, src)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if len(tr.Threads) != 1 || len(tr.Threads[0]) == 0 {
			t.Fatalf("%s: imported %d threads (records in thread 0: %d)", format, len(tr.Threads), len(tr.Threads[0]))
		}
		k := kindCounts(tr)
		if k[trace.Load] == 0 {
			t.Errorf("%s: no loads converted", format)
		}
		if k[trace.Compute] == 0 {
			t.Errorf("%s: no compute records converted", format)
		}
		switch format {
		case "champsim", "cachegrind":
			if k[trace.Store] == 0 {
				t.Errorf("%s: no stores converted", format)
			}
			if tr.Meta.WriteRatio <= 0 || tr.Meta.WriteRatio >= 1 {
				t.Errorf("%s: write ratio %v outside (0,1)", format, tr.Meta.WriteRatio)
			}
		case "damon":
			// DAMON dumps carry no read/write attribution: read-only.
			if k[trace.Store] != 0 || tr.Meta.WriteRatio != 0 {
				t.Errorf("damon: synthetic stream has stores (%d) or write ratio %v", k[trace.Store], tr.Meta.WriteRatio)
			}
		}
		if tr.Meta.FootprintPages == 0 {
			t.Errorf("%s: zero footprint", format)
		}
		arenaEnd := mem.CXLBase + mem.Addr(tr.Meta.FootprintPages*mem.PageBytes)
		for _, r := range tr.Threads[0] {
			if r.Kind == trace.Compute {
				continue
			}
			if r.Addr < mem.CXLBase || r.Addr >= arenaEnd {
				t.Fatalf("%s: address %#x outside the normalized arena [%#x, %#x)", format, uint64(r.Addr), uint64(mem.CXLBase), uint64(arenaEnd))
			}
			if r.Addr%mem.LineBytes != 0 {
				t.Fatalf("%s: address %#x is not line-aligned", format, uint64(r.Addr))
			}
		}
		o := tr.Meta.Origin
		if o == nil {
			t.Fatalf("%s: no Origin meta", format)
		}
		if o.Format != format || o.Source != filepath.Base(src) ||
			len(o.SourceDigest) != 64 || o.Converter != ConverterVersion {
			t.Fatalf("%s: incomplete provenance %+v", format, o)
		}
		if !strings.HasPrefix(tr.Meta.Workload, format+":") {
			t.Fatalf("%s: workload named %q", format, tr.Meta.Workload)
		}
	}
}

// TestImportDeterministic is the acceptance bar: importing the same
// source twice yields the same .trc bytes.
func TestImportDeterministic(t *testing.T) {
	for _, format := range Formats() {
		src := fixtureFile(t, format)
		a, err := Import(format, src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Import(format, src)
		if err != nil {
			t.Fatal(err)
		}
		ea, err := trace.EncodeTrace(a)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := trace.EncodeTrace(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ea, eb) {
			t.Fatalf("%s: re-importing the same source produced different .trc bytes", format)
		}
	}
}

// TestChampSimGzip: a gzip-compressed ChampSim trace imports to the
// identical records as the plain file (the digest differs — it is of
// the bytes on disk — but the streams must match).
func TestChampSimGzip(t *testing.T) {
	plainPath := fixtureFile(t, "champsim")
	plain, err := os.ReadFile(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(plain)
	zw.Close()
	gzPath := filepath.Join(t.TempDir(), "src.champsim.gz")
	if err := os.WriteFile(gzPath, gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Import("champsim", plainPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Import("champsim", gzPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Threads, b.Threads) {
		t.Fatal("gzip-compressed source converts to different records")
	}
	if a.Meta.Origin.SourceDigest == b.Meta.Origin.SourceDigest {
		t.Fatal("source digest ignores the on-disk bytes")
	}
}

// TestNormalizerPreservesStructure: sequential source pages stay
// sequential, revisited pages resolve to the same arena page, and
// line offsets survive.
func TestNormalizerPreservesStructure(t *testing.T) {
	n := newNormalizer()
	a0 := n.addr(0x7f00_0000_0000)
	a1 := n.addr(0x7f00_0000_1000)
	a2 := n.addr(0x7f00_0000_2040)
	again := n.addr(0x7f00_0000_0040)
	if a0 != mem.CXLBase || a1 != mem.CXLBase+mem.PageBytes || a2 != mem.CXLBase+2*mem.PageBytes+64 {
		t.Fatalf("sequential pages scattered: %#x %#x %#x", uint64(a0), uint64(a1), uint64(a2))
	}
	if again != mem.CXLBase+64 {
		t.Fatalf("revisited page remapped: %#x", uint64(again))
	}
	if n.footprintPages() != 3 {
		t.Fatalf("footprint %d pages, want 3", n.footprintPages())
	}
}

// TestImportRejectsDamage: malformed sources are loud, named errors —
// never empty or silently truncated conversions.
func TestImportRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		format, path, errPart string
	}{
		{"champsim", write("trunc.bin", make([]byte, champSimRecordBytes+13)), "truncated"},
		{"champsim", write("empty.bin", nil), "empty"},
		{"damon", write("garbage.txt", []byte("monitoring_start: 0 ns\nnot a region line\n")), "unrecognized"},
		{"damon", write("noregions.txt", []byte("target_id: 1\n")), "no region lines"},
		{"cachegrind", write("badop.log", []byte("I 401000,4\nX 402000,4\n")), "unknown op"},
		{"cachegrind", write("badaddr.log", []byte(" L zzzz,4\n")), "unrecognized"},
	}
	for _, tc := range cases {
		_, err := Import(tc.format, tc.path)
		if err == nil {
			t.Errorf("%s %s: malformed source imported without error", tc.format, filepath.Base(tc.path))
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s %s: error %q does not mention %q", tc.format, filepath.Base(tc.path), err, tc.errPart)
		}
	}
	if _, err := Import("champsim", filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("missing source imported without error")
	}
}

// TestFixtureDeterministic: the fixture generators themselves are
// stable — CI regenerates them on every run and compares digests
// across imports.
func TestFixtureDeterministic(t *testing.T) {
	for _, format := range Formats() {
		a := fixtureFile(t, format)
		b := fixtureFile(t, format)
		da, _ := os.ReadFile(a)
		db, _ := os.ReadFile(b)
		if !bytes.Equal(da, db) {
			t.Fatalf("%s fixture generator is not deterministic", format)
		}
		if len(da) == 0 {
			t.Fatalf("%s fixture is empty", format)
		}
	}
	if err := WriteFixture("pin", filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("unknown fixture format accepted")
	}
}
