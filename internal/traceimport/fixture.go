package traceimport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"

	"skybyte/internal/trace"
)

// WriteFixture writes a tiny, fully deterministic synthetic source
// file in the named external format — a stand-in for a real published
// trace. Tests and the CI import-pipeline job use it so the importer
// path is exercised end to end without shipping third-party trace
// files; it also gives users a known-good example of each format.
func WriteFixture(format, path string) error {
	var data []byte
	switch format {
	case "champsim":
		data = champSimFixture()
	case "damon":
		data = damonFixture()
	case "cachegrind":
		data = cachegrindFixture()
	default:
		return fmt.Errorf("traceimport: no fixture generator for format %q (valid: champsim, damon, cachegrind)", format)
	}
	return os.WriteFile(path, data, 0o644)
}

// champSimFixture emits ~900 64-byte ChampSim records: compute runs, a
// sequential read sweep, zipf-ish hot stores, and an instruction with
// multiple memory slots, so every importer branch executes.
func champSimFixture() []byte {
	var b bytes.Buffer
	rng := trace.NewRNG(123)
	var rec [champSimRecordBytes]byte
	emit := func(ip uint64, srcMem [4]uint64, destMem [2]uint64) {
		for i := range rec {
			rec[i] = 0
		}
		binary.LittleEndian.PutUint64(rec[0:], ip)
		for d, a := range destMem {
			binary.LittleEndian.PutUint64(rec[16+8*d:], a)
		}
		for s, a := range srcMem {
			binary.LittleEndian.PutUint64(rec[32+8*s:], a)
		}
		b.Write(rec[:])
	}
	const heap = 0x5600_0000_0000
	for i := uint64(0); i < 300; i++ {
		// A short compute run...
		for c := uint64(0); c < 1+rng.Uint64n(3); c++ {
			emit(0x401000+16*i+c, [4]uint64{}, [2]uint64{})
		}
		// ...a sequential load, a hot random load...
		emit(0x402000, [4]uint64{heap + i*64}, [2]uint64{})
		emit(0x402008, [4]uint64{heap + (rng.Uint64n(64))*4096 + 128}, [2]uint64{})
		// ...and occasionally a store or a two-slot instruction.
		if i%5 == 0 {
			emit(0x402010, [4]uint64{}, [2]uint64{heap + i*64})
		}
		if i%31 == 0 {
			emit(0x402020, [4]uint64{heap + i*64, heap + i*64 + 4096}, [2]uint64{heap + 0x100000 + i*64})
		}
	}
	return b.Bytes()
}

// damonFixture emits two snapshots of three regions each in damo raw
// form, with distinct heats.
func damonFixture() []byte {
	var b bytes.Buffer
	b.WriteString("base_time_absolute: 8 m 59.809 s\n\n")
	for snap := 0; snap < 2; snap++ {
		b.WriteString("monitoring_start:                0 ns\n")
		b.WriteString("monitoring_end:            104.599 ms\n")
		b.WriteString("monitoring_duration:       104.599 ms\n")
		b.WriteString("target_id: 4242\n")
		b.WriteString("nr_regions: 3\n")
		base := uint64(0x7f2f_1000_0000 + uint64(snap)*0x4000_0000)
		fmt.Fprintf(&b, "%x-%x(   4.000 MiB):\t%d\n", base, base+4<<20, 37)
		fmt.Fprintf(&b, "%x-%x(  16.000 MiB):\t%d\n", base+4<<20, base+20<<20, 0)
		fmt.Fprintf(&b, "%x-%x(   1.000 MiB):\t%d\n", base+20<<20, base+21<<20, 120)
	}
	return b.Bytes()
}

// cachegrindFixture emits a lackey-style address log: banner lines,
// instruction fetch runs, and an L/S/M mix over two small arrays.
func cachegrindFixture() []byte {
	var b bytes.Buffer
	b.WriteString("==12345== Lackey, an example Valgrind tool\n")
	b.WriteString("==12345== Command: ./fixture\n")
	rng := trace.NewRNG(321)
	for i := uint64(0); i < 250; i++ {
		fmt.Fprintf(&b, "I  %08x,4\n", 0x40_1000+4*i)
		fmt.Fprintf(&b, " L %08x,8\n", 0x522_0000+8*i)
		if i%3 == 0 {
			fmt.Fprintf(&b, " S %08x,8\n", 0x534_0000+rng.Uint64n(40)*64)
		}
		if i%7 == 0 {
			fmt.Fprintf(&b, " M %08x,4\n", 0x534_0000+rng.Uint64n(40)*64)
		}
	}
	b.WriteString("==12345== exiting\n")
	return b.Bytes()
}
