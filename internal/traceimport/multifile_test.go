package traceimport

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skybyte/internal/trace"
)

// writeCPUSet lays out a per-CPU champsim trace set in a fresh dir and
// returns the dir. Files get deliberately unsorted names to check the
// importer orders them.
func writeCPUSet(t *testing.T, names ...string) string {
	t.Helper()
	dir := t.TempDir()
	for _, n := range names {
		if err := WriteFixture("champsim", filepath.Join(dir, n)); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestImportEncodedDirectoryPerCPU imports a directory of per-CPU
// champsim traces and checks each file became its own thread stream.
func TestImportEncodedDirectoryPerCPU(t *testing.T) {
	dir := writeCPUSet(t, "cpu2.champsimtrace", "cpu0.champsimtrace", "cpu1.champsimtrace")
	enc, err := ImportEncoded("champsim", dir, trace.CodecVersion)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Threads != 3 {
		t.Fatalf("imported %d threads, want 3 (one per file)", enc.Threads)
	}
	src, err := trace.NewReader(bytes.NewReader(enc.Data), int64(len(enc.Data)))
	if err != nil {
		t.Fatal(err)
	}
	if n := src.NumThreads(); n != 3 {
		t.Fatalf("container holds %d threads, want 3", n)
	}
	o := enc.Meta.Origin
	if o == nil || !strings.Contains(o.Source, "3 files") {
		t.Fatalf("origin source %+v does not name the file count", o)
	}
	if o.Format != "champsim" || o.Converter != ConverterVersion {
		t.Fatalf("origin provenance wrong: %+v", o)
	}
}

// TestImportEncodedGlobDeterministic imports the same set via glob
// twice and checks byte identity, then renames a file and checks the
// provenance digest changes (thread order is part of identity).
func TestImportEncodedGlobDeterministic(t *testing.T) {
	dir := writeCPUSet(t, "cpu0.champsimtrace", "cpu1.champsimtrace")
	glob := filepath.Join(dir, "*.champsimtrace")
	a, err := ImportEncoded("champsim", glob, trace.CodecVersion)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ImportEncoded("champsim", glob, trace.CodecVersion)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Data, b.Data) {
		t.Fatal("same glob imported different bytes")
	}
	if err := os.Rename(filepath.Join(dir, "cpu1.champsimtrace"), filepath.Join(dir, "cpu9.champsimtrace")); err != nil {
		t.Fatal(err)
	}
	c, err := ImportEncoded("champsim", glob, trace.CodecVersion)
	if err != nil {
		t.Fatal(err)
	}
	if a.Meta.Origin.SourceDigest == c.Meta.Origin.SourceDigest {
		t.Fatal("renaming a source file left the provenance digest unchanged")
	}
}

// TestImportMultiFileChampsimOnly: the per-CPU convention is
// champsim's; other formats must refuse a multi-file path.
func TestImportMultiFileChampsimOnly(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"a.damon", "b.damon"} {
		if err := WriteFixture("damon", filepath.Join(dir, n)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ImportEncoded("damon", dir, trace.CodecVersion); err == nil {
		t.Fatal("damon accepted a multi-file directory import")
	}
}

// TestImportSingleFileUnchanged: a one-file import through the
// expansion path must keep the original single-file meta (name, plain
// source digest) so existing .trc identities survive.
func TestImportSingleFileUnchanged(t *testing.T) {
	src := fixtureFile(t, "champsim")
	direct, err := ImportEncoded("champsim", src, trace.CodecVersion)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Threads != 1 {
		t.Fatalf("single file imported %d threads, want 1", direct.Threads)
	}
	if strings.Contains(direct.Meta.Origin.Source, "files") {
		t.Fatalf("single-file origin %q took the multi-file shape", direct.Meta.Origin.Source)
	}
}

// TestDetectFormat covers the bare-path spec forms: recognized
// extensions (with and without .gz), and the loud failure listing the
// valid set for anything else.
func TestDetectFormat(t *testing.T) {
	for path, want := range map[string]string{
		"dir/cpu0.champsimtrace":    "champsim",
		"dir/cpu0.champsimtrace.gz": "champsim",
		"x.champsim":                "champsim",
		"mon.damon":                 "damon",
		"log.cachegrind":            "cachegrind",
		"log.cg":                    "cachegrind",
	} {
		got, err := DetectFormat(path)
		if err != nil || got != want {
			t.Fatalf("DetectFormat(%q) = %q, %v; want %q", path, got, err, want)
		}
	}
	_, err := DetectFormat("trace.out")
	if err == nil {
		t.Fatal("DetectFormat accepted an unrecognized extension")
	}
	msg := err.Error()
	if !strings.Contains(msg, "cachegrind") || !strings.Contains(msg, "champsim") || !strings.Contains(msg, "damon") {
		t.Fatalf("detection error does not list the valid formats: %s", msg)
	}
}

// TestParseSpecBarePath: a spec without a format prefix resolves by
// extension; an unrecognized extension fails with the valid set
// (never a silent fallback), and an unknown explicit prefix still
// fails with the format list.
func TestParseSpecBarePath(t *testing.T) {
	f, p, err := ParseSpec("traces/cpu0.champsimtrace")
	if err != nil || f != "champsim" || p != "traces/cpu0.champsimtrace" {
		t.Fatalf("bare path parsed to %q, %q, %v", f, p, err)
	}
	if _, _, err := ParseSpec("mystery.bin"); err == nil || !strings.Contains(err.Error(), "cachegrind") {
		t.Fatalf("unrecognized extension did not fail with the format set: %v", err)
	}
	if _, _, err := ParseSpec("pin:trace.out"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("unknown format prefix did not fail with the format list: %v", err)
	}
	// A glob spec parses as a champsim path by extension.
	f, p, err = ParseSpec("traces/*.champsimtrace")
	if err != nil || f != "champsim" || p != "traces/*.champsimtrace" {
		t.Fatalf("glob path parsed to %q, %q, %v", f, p, err)
	}
}
