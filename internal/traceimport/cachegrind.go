package traceimport

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"skybyte/internal/trace"
)

// importCachegrind converts a cachegrind/lackey-style address log —
// the format valgrind --tool=lackey --trace-mem=yes prints:
//
//	I  04010000,3      instruction fetch at addr, size bytes
//	 L 04222222,8      data load
//	 S 04222222,8      data store
//	 M 0421d512,4      modify (load + store to one address)
//
// Instruction fetches coalesce into Compute records (one instruction
// each; the fetch address itself is not replayed — our CPU model
// fetches from the trace, not from simulated text pages). L/S/M become
// Load/Store/Load+Store at the normalized data address. Lines opening
// with "==" (valgrind banners) and blank lines are skipped; anything
// else is a loud parse error.
func importCachegrind(r io.Reader, n *normalizer, e *emitter) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	ops := 0
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "==") {
			continue
		}
		kind := trimmed[0]
		rest := strings.TrimSpace(trimmed[1:])
		addrHex, _, _ := strings.Cut(rest, ",")
		addr, err := strconv.ParseUint(strings.TrimSpace(addrHex), 16, 64)
		if err != nil {
			return fmt.Errorf("cachegrind: line %d: unrecognized line %q (expected \"I|L|S|M addr,size\")", ln, line)
		}
		switch kind {
		case 'I':
			e.compute(1)
		case 'L':
			e.mem(trace.Load, n.addr(addr))
		case 'S':
			e.mem(trace.Store, n.addr(addr))
		case 'M':
			a := n.addr(addr)
			e.mem(trace.Load, a)
			e.mem(trace.Store, a)
		default:
			return fmt.Errorf("cachegrind: line %d: unknown op %q in %q", ln, kind, line)
		}
		ops++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("cachegrind: %w", err)
	}
	if ops == 0 {
		return fmt.Errorf("cachegrind: no records (empty or foreign file?)")
	}
	_, err := e.finish()
	return err
}
