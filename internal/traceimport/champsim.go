package traceimport

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"skybyte/internal/trace"
)

// ChampSim's instruction trace is a flat array of 64-byte records
// (ChampSim's trace_instr_format_t, unpadded little-endian):
//
//	u64 ip
//	u8  is_branch, u8 branch_taken
//	u8  destination_registers[2]
//	u8  source_registers[4]
//	u64 destination_memory[2]
//	u64 source_memory[4]
//
// A zero memory slot means "no access". Distribution traces are
// usually xz-compressed; this importer reads plain files and (stdlib
// obliges) gzip — decompress xz sources first.
const champSimRecordBytes = 64

// importChampSim converts a ChampSim instruction trace: every
// instruction contributes its dynamic instruction to the stream —
// memory-free instructions coalesce into Compute records, each
// source_memory slot becomes a Load, each destination_memory slot a
// Store. Memory slots beyond the first on one instruction still count
// one instruction each (our record vocabulary is one instruction per
// memory record); the inflation is tiny in practice and identical on
// every import.
func importChampSim(r io.Reader, n *normalizer, e *emitter) error {
	br := bufio.NewReaderSize(r, 1<<20)
	if head, err := br.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return fmt.Errorf("champsim: opening gzip stream: %w", err)
		}
		defer gz.Close()
		br = bufio.NewReaderSize(gz, 1<<20)
	}
	var rec [champSimRecordBytes]byte
	for i := 0; ; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				return fmt.Errorf("champsim: record %d is truncated (file is not a whole number of 64-byte records)", i)
			}
			return fmt.Errorf("champsim: record %d: %w", i, err)
		}
		memOps := 0
		for s := 0; s < 4; s++ {
			if addr := binary.LittleEndian.Uint64(rec[32+8*s:]); addr != 0 {
				e.mem(trace.Load, n.addr(addr))
				memOps++
			}
		}
		for d := 0; d < 2; d++ {
			if addr := binary.LittleEndian.Uint64(rec[16+8*d:]); addr != 0 {
				e.mem(trace.Store, n.addr(addr))
				memOps++
			}
		}
		if memOps == 0 {
			e.compute(1)
		}
	}
	total, err := e.finish()
	if err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("champsim: no records (empty file?)")
	}
	return nil
}
