package system

import (
	"testing"

	"skybyte/internal/mem"
	"skybyte/internal/osched"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/trace"
)

// synthStream emits a simple data-intensive loop: one memory access to a
// zipfian-random cacheline of a CXL arena (write with probability wr),
// followed by a short compute burst. The zipfian skew gives the SSD DRAM a
// realistic hit rate (the paper's workloads see >90 % of requests under
// 200 ns thanks to the cache).
func synthStream(seed uint64, footprintPages uint64, wr float64, burst uint32) trace.Stream {
	rng := trace.NewRNG(seed)
	zipf := trace.NewZipf(rng, footprintPages, 0.99)
	return trace.FuncStream(func() (trace.Record, bool) {
		if rng.Bool(0.5) {
			return trace.Record{Kind: trace.Compute, N: burst}, true
		}
		page := zipf.ScrambledNext()
		a := mem.CXLBase + mem.Addr(page*mem.PageBytes+rng.Uint64n(mem.LinesPerPage)*mem.LineBytes)
		k := trace.Load
		if rng.Bool(wr) {
			k = trace.Store
		}
		return trace.Record{Kind: k, Addr: a}, true
	})
}

// scatterStream models a pointer-chasing workload with streaming writes:
// dependent zipfian loads plus stores that walk new cachelines so dirty
// lines cannot linger in the CPU caches — the access shape that exposes
// Base-CSSD's RMW write misses and rewards both the write log and the
// coordinated context switch.
func scatterStream(seed uint64, footprintPages uint64, wr float64, burst uint32) trace.Stream {
	rng := trace.NewRNG(seed)
	zipf := trace.NewZipf(rng, footprintPages, 0.9)
	const writeRegionPages = 1024 // cycled so the log coalesces revisits
	wcursor := seed * 977
	return trace.FuncStream(func() (trace.Record, bool) {
		if rng.Bool(0.4) {
			return trace.Record{Kind: trace.Compute, N: burst}, true
		}
		if rng.Bool(wr) {
			wcursor++
			page := wcursor % writeRegionPages
			line := (wcursor * 7) % mem.LinesPerPage // sparse lines per page
			a := mem.CXLBase + mem.Addr(page*mem.PageBytes+line*mem.LineBytes)
			return trace.Record{Kind: trace.Store, Addr: a}, true
		}
		page := zipf.ScrambledNext()
		a := mem.CXLBase + mem.Addr(page*mem.PageBytes+rng.Uint64n(mem.LinesPerPage)*mem.LineBytes)
		if rng.Bool(0.7) {
			return trace.Record{Kind: trace.LoadDep, Addr: a}, true
		}
		return trace.Record{Kind: trace.Load, Addr: a}, true
	})
}

// hotStream repeatedly touches a tiny set of pages (migration bait).
func hotStream(seed uint64, pages uint64) trace.Stream {
	rng := trace.NewRNG(seed)
	return trace.FuncStream(func() (trace.Record, bool) {
		a := mem.CXLBase + mem.Addr(rng.Uint64n(pages)*mem.PageBytes) + mem.Addr(rng.Uint64n(64)*64)
		return trace.Record{Kind: trace.Load, Addr: a}, true
	})
}

func runVariant(t *testing.T, v Variant, threads int, perThread uint64, stream func(i int) trace.Stream) *Result {
	t.Helper()
	cfg := ScaledConfig().WithVariant(v)
	s := New(cfg)
	for i := 0; i < threads; i++ {
		s.AddThread(stream(i), perThread)
	}
	r := s.Run()
	if r.Instructions < perThread*uint64(threads) {
		t.Fatalf("%s: retired %d, want >= %d", v, r.Instructions, perThread*uint64(threads))
	}
	if r.ExecTime <= 0 {
		t.Fatalf("%s: no execution time", v)
	}
	return r
}

func TestAllVariantsComplete(t *testing.T) {
	mk := func(i int) trace.Stream { return synthStream(uint64(i)+1, 4096, 0.3, 64) }
	for _, v := range []Variant{DRAMOnly, BaseCSSD, SkyByteC, SkyByteP, SkyByteW, SkyByteCP, SkyByteWP, SkyByteFull, SkyByteCT, SkyByteWCT, AstriFlashCXL} {
		v := v
		t.Run(string(v), func(t *testing.T) {
			r := runVariant(t, v, 4, 8000, mk)
			if r.Variant != string(v) {
				t.Fatalf("variant label = %q", r.Variant)
			}
		})
	}
}

func TestDRAMOnlyFasterThanBase(t *testing.T) {
	mk := func(i int) trace.Stream { return synthStream(uint64(i)+1, 8192, 0.25, 32) }
	d := runVariant(t, DRAMOnly, 4, 20000, mk)
	b := runVariant(t, BaseCSSD, 4, 20000, mk)
	ratio := float64(b.ExecTime) / float64(d.ExecTime)
	if ratio < 1.5 {
		t.Fatalf("Base-CSSD only %.2fx slower than DRAM; Fig. 2 expects 1.5-31x", ratio)
	}
}

func TestSkyByteFullBeatsBase(t *testing.T) {
	mk := func(i int) trace.Stream { return scatterStream(uint64(i)+1, 32768, 0.3, 16) }
	base := runVariant(t, BaseCSSD, 8, 30000, mk)
	full := runVariant(t, SkyByteFull, 24, 10000, mk) // same total work, 3x threads
	// At ULL timing an unloaded miss (~3.4µs) costs barely more than a
	// switch (2µs), so the margin here is structurally thin; the paper's
	// larger gaps come from queue-inflated flash latencies (Table III),
	// exercised by the workloads package. This test guards the sign.
	if full.ExecTime >= base.ExecTime {
		t.Fatalf("SkyByte-Full (%v) not faster than Base-CSSD (%v)", full.ExecTime, base.ExecTime)
	}
}

func TestWriteLogCutsFlashPrograms(t *testing.T) {
	mk := func(i int) trace.Stream { return scatterStream(uint64(i)+1, 32768, 0.35, 16) }
	base := runVariant(t, BaseCSSD, 4, 40000, mk)
	w := runVariant(t, SkyByteW, 4, 40000, mk)
	if base.Traffic.TotalPrograms() == 0 {
		t.Fatal("workload generated no Base-CSSD flash programs; test is vacuous")
	}
	if w.Traffic.TotalPrograms() >= base.Traffic.TotalPrograms() {
		t.Fatalf("write log did not reduce programs: base=%d w=%d",
			base.Traffic.TotalPrograms(), w.Traffic.TotalPrograms())
	}
}

func TestContextSwitchesHappenAndHelp(t *testing.T) {
	mk := func(i int) trace.Stream { return synthStream(uint64(i)+1, 8192, 0.2, 32) }
	c := runVariant(t, SkyByteC, 16, 4000, mk)
	if c.HintsSent == 0 || c.HintSwitches == 0 {
		t.Fatalf("no SkyByte-Delay activity: hints=%d switches=%d", c.HintsSent, c.HintSwitches)
	}
	if c.Bound.CtxSwitch == 0 {
		t.Fatal("switch time not accounted")
	}
}

func TestAdaptiveMigrationPromotes(t *testing.T) {
	// The hot set must exceed the CPU caches (so the SSD keeps seeing the
	// accesses) but stay small enough that sustained hotness is clear.
	r := runVariant(t, SkyByteP, 2, 120000, func(i int) trace.Stream {
		return hotStream(uint64(i)+1, 512)
	})
	if r.Migration.Promotions == 0 {
		t.Fatal("hot pages never promoted")
	}
	if r.Breakdown.Counts[stats.HostRW] == 0 {
		t.Fatal("no host-served accesses after promotion")
	}
}

func TestMigrationRespectsPoolCapacity(t *testing.T) {
	cfg := ScaledConfig().WithVariant(SkyByteP)
	cfg.PromotedMaxBytes = 8 * mem.PageBytes // tiny pool: 8 pages
	cfg.MigrationThresh = 4
	s := New(cfg)
	s.AddThread(hotStream(1, 64), 40000)
	r := s.Run()
	if r.Migration.Promotions == 0 {
		t.Fatal("no promotions")
	}
	if r.Migration.Promotions > 8 && r.Migration.Demotions == 0 {
		t.Fatal("pool overflow without demotions")
	}
	if len(s.promoted) > 8 {
		t.Fatalf("promoted pages %d exceed pool capacity 8", len(s.promoted))
	}
}

func TestBreakdownAndAMATRecorded(t *testing.T) {
	r := runVariant(t, SkyByteFull, 8, 10000, func(i int) trace.Stream {
		return synthStream(uint64(i)+1, 8192, 0.3, 32)
	})
	if r.Breakdown.Total() == 0 {
		t.Fatal("no requests classified")
	}
	if r.AMAT.Accesses == 0 || r.AMAT.Mean() == 0 {
		t.Fatal("AMAT not recorded")
	}
	if r.ReadLat.Count() == 0 {
		t.Fatal("latency histogram empty")
	}
	if r.MPKI <= 0 {
		t.Fatal("MPKI not computed")
	}
}

func TestBoundednessSane(t *testing.T) {
	r := runVariant(t, BaseCSSD, 4, 10000, func(i int) trace.Stream {
		return synthStream(uint64(i)+1, 8192, 0.25, 16)
	})
	mf := r.Bound.MemFrac()
	if mf < 0.5 || mf > 1.0 {
		t.Fatalf("Base-CSSD memory-bound fraction = %v; Fig. 4 expects 0.77-0.998", mf)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		cfg := ScaledConfig().WithVariant(SkyByteFull)
		s := New(cfg)
		for i := 0; i < 6; i++ {
			s.AddThread(synthStream(uint64(i)+1, 4096, 0.3, 32), 6000)
		}
		r := s.Run()
		return r.ExecTime, s.Eng.Fired()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, e1, t2, e2)
	}
}

func TestSchedulingPolicies(t *testing.T) {
	for _, p := range []string{"RR", "RANDOM", "FAIRNESS"} {
		cfg := ScaledConfig().WithVariant(SkyByteFull)
		cfg.Policy = osched.PolicyKind(p)
		s := New(cfg)
		for i := 0; i < 12; i++ {
			s.AddThread(synthStream(uint64(i)+1, 4096, 0.3, 32), 4000)
		}
		r := s.Run()
		if r.Instructions < 48000 {
			t.Fatalf("policy %s lost instructions", p)
		}
	}
}

func TestTable2ConfigsSane(t *testing.T) {
	p := PaperConfig()
	if p.Geometry.Bytes() != 128*mem.GiB {
		t.Fatalf("paper flash = %d", p.Geometry.Bytes())
	}
	if p.SSDDRAMBytes != 512*mem.MiB || p.WriteLogBytes != 64*mem.MiB {
		t.Fatal("paper SSD DRAM split wrong")
	}
	sc := ScaledConfig()
	// Ratio preservation: flash:ssdDRAM and promoted:ssdDRAM.
	if sc.Geometry.Bytes()/uint64(sc.SSDDRAMBytes) != p.Geometry.Bytes()/uint64(p.SSDDRAMBytes) {
		t.Fatal("flash:DRAM ratio not preserved by scaling")
	}
	if sc.PromotedMaxBytes/sc.SSDDRAMBytes != p.PromotedMaxBytes/p.SSDDRAMBytes {
		t.Fatal("promoted:DRAM ratio not preserved")
	}
}

func TestTPPMigrationPromotes(t *testing.T) {
	cfg := ScaledConfig().WithVariant(SkyByteCT)
	s := New(cfg)
	for i := 0; i < 4; i++ {
		s.AddThread(hotStream(uint64(i)+1, 512), 40000)
	}
	r := s.Run()
	if r.Migration.Promotions == 0 {
		t.Fatal("TPP sampling never promoted a hot page")
	}
	if r.Breakdown.Counts[stats.HostRW] == 0 {
		t.Fatal("no host-served accesses after TPP promotion")
	}
}

func TestAstriFlashServesFromHostCache(t *testing.T) {
	cfg := ScaledConfig().WithVariant(AstriFlashCXL)
	s := New(cfg)
	for i := 0; i < 8; i++ {
		s.AddThread(hotStream(uint64(i)+1, 256), 20000)
	}
	r := s.Run()
	// After the hot pages land in the host page cache, accesses must be
	// classified H-R/W (AstriFlash serves from host DRAM).
	if r.Breakdown.Counts[stats.HostRW] == 0 {
		t.Fatal("AstriFlash host cache never served accesses")
	}
	if !allFinished(s) {
		t.Fatal("threads did not finish")
	}
}

func TestAstriFlashWritebackOnDirtyEviction(t *testing.T) {
	cfg := ScaledConfig().WithVariant(AstriFlashCXL)
	cfg.PromotedMaxBytes = 32 * mem.PageBytes // tiny host cache: force evictions
	s := New(cfg)
	s.AddThread(scatterStream(1, 8192, 0.5, 8), 60000)
	r := s.Run()
	if r.Traffic.DemoteWrites == 0 {
		t.Fatal("dirty host-cache evictions never wrote back to the SSD")
	}
}

func TestSingleThreadSingleCore(t *testing.T) {
	cfg := ScaledConfig().WithVariant(SkyByteFull)
	cfg.Cores = 1
	s := New(cfg)
	s.AddThread(synthStream(1, 4096, 0.3, 32), 8000)
	r := s.Run()
	if r.Instructions < 8000 {
		t.Fatal("lone thread on one core did not finish")
	}
}

func TestZeroWorkThread(t *testing.T) {
	cfg := ScaledConfig().WithVariant(BaseCSSD)
	s := New(cfg)
	s.AddThread(synthStream(1, 1024, 0.2, 16), 0) // empty budget
	s.AddThread(synthStream(2, 1024, 0.2, 16), 2000)
	r := s.Run()
	if r.Instructions < 2000 {
		t.Fatal("run with an empty thread did not complete")
	}
}

func TestMoreThreadsThanWorkStillTerminates(t *testing.T) {
	cfg := ScaledConfig().WithVariant(SkyByteFull)
	s := New(cfg)
	for i := 0; i < 32; i++ { // 4x cores, tiny traces
		s.AddThread(synthStream(uint64(i)+1, 1024, 0.2, 16), 500)
	}
	r := s.Run()
	if r.Instructions < 32*500 {
		t.Fatalf("retired %d of %d", r.Instructions, 32*500)
	}
}

func allFinished(s *System) bool { return s.finished == len(s.threads) }
