package system

import (
	"skybyte/internal/cachesim"
	"skybyte/internal/core"
	"skybyte/internal/cpu"
	"skybyte/internal/cxl"
	"skybyte/internal/dram"
	"skybyte/internal/flash"
	"skybyte/internal/fleet"
	"skybyte/internal/ftl"
	"skybyte/internal/mem"
	"skybyte/internal/migrate"
	"skybyte/internal/osched"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/telemetry"
	"skybyte/internal/trace"
)

// MigrationStats counts page movement between the tiers.
type MigrationStats struct {
	Promotions uint64
	Demotions  uint64
}

// System is one fully wired simulated machine.
//
// Reentrancy: a System is single-threaded — its event engine and every
// component it wires (cores, caches, scheduler, link, DRAMs, flash,
// FTL, controller, migration state) live on the owning instance, and no
// package in the simulator keeps mutable package-level state that runs
// could observe differently: the only package-level vars anywhere are
// immutable presets (flash.TimingULL, system.AllVariants), the sim
// handler table (append-only, written exclusively at package init), and
// the trace zeta memo (a concurrency-safe cache of a pure function).
// Distinct System instances may therefore be constructed and Run
// concurrently from different goroutines; internal/runner relies on
// this to execute campaign design points in parallel. A single instance
// must not be shared across goroutines.
type System struct {
	Eng sim.Engine
	cfg Config

	cores []*cpu.Core
	llc   *cachesim.Cache
	sched *osched.Scheduler

	link     *cxl.Link
	hostDRAM *dram.DRAM

	// The device backends (DESIGN.md §9). Single-device runs — the
	// default, Config.Devices <= 1 — wire exactly one and leave placer
	// nil, so every request path short-circuits to devs[0] through the
	// aliases below with no fleet overhead. Fleet runs (Devices >= 2)
	// route each logical page through placer to its owning device, whose
	// downstream port serializes transfers behind the shared host link.
	devs   []*device
	placer *fleet.Placer

	// Aliases of devs[0]'s components, kept because the single-device
	// hot paths (and the Controller/FTL/Flash accessors plus most tests)
	// address one device.
	ssdDRAM *dram.DRAM
	arr     *flash.Array
	fl      *ftl.FTL
	ctrl    *core.Controller

	threads  []*osched.Thread
	finished int
	lastDone sim.Time

	// Tiering state.
	promoted  map[uint64][]byte // lpa -> host copy (payload nil unless tracking)
	pool      *migrate.Pool
	plb       *migrate.PLB
	tpp       *migrate.TPPSampler
	astri     *cachesim.Cache
	astriIn   map[mem.Addr]*astriFetch
	promoteQ  []uint64
	promoting bool

	// Measurements.
	breakdown stats.RequestBreakdown
	amat      stats.AMAT
	readLat   stats.LatencyHist
	flashLat  stats.LatencyHist
	migr      MigrationStats
	hints     uint64

	// Per-tenant measurement state of a multi-tenant run
	// (DeclareTenants); all nil/empty in solo runs, in which case the
	// request paths skip tenant attribution entirely.
	tenantInfo    []TenantInfo
	tenantBreak   []stats.RequestBreakdown
	tenantAMAT    []stats.AMAT
	tenantReadLat []stats.LatencyHist
	tenantHints   []uint64
	tenantDone    []sim.Time

	// Open-loop measurement state (DeclareSLOClasses); empty in
	// closed-loop runs.
	sloInfo   []SLOClass
	sloStats  []stats.OpenStats
	openTotal stats.OpenStats

	// Transaction pools for the hot request paths (see the readTxn
	// comment below).
	readFree  *readTxn
	writeFree *writeTxn
	hostFree  *hostTxn

	// Telemetry state (Config.TelemetryCadence). All nil/empty when
	// telemetry is off: the request paths then skip instrumentation
	// through single nil checks and allocate nothing — the zero-cost
	// contract TestColdRunAllocsBudget and cmd/benchgate pin.
	tel          *telemetry.Recorder
	telSpans     *telemetry.SpanRecorder
	classTracks  []*telemetry.ClassTrack
	telInflight  []int      // per-tenant in-flight backend requests
	telReadSlots []sim.Time // memory-track tid allocator (busy-until)
	telCtxEnd    []sim.Time // per-core last ctx-switch span end
}

// readTxn carries one CXL demand read from link entry to data delivery.
// Transactions are pooled: the continuation closures are bound once, at
// first allocation, capturing the stable transaction pointer — so the
// whole link→controller→link chain schedules without allocating. Exactly
// one terminal continuation fires per transaction (the controller calls
// either respond or hint, never both; forwarded promoted reads terminate
// in hostFwd), and each terminal recycles the transaction before invoking
// the outward callback, which may immediately start a new request that
// reuses it.
type readTxn struct {
	next *readTxn
	s    *System
	req  *cpu.ReadReq
	a    mem.Addr
	lpa  uint64
	t0   sim.Time
	meta core.ReadMeta

	atDevice   func()
	hostFwd    func()
	hintFn     func(sim.Time)
	hintArrive func()
	respondFn  func(core.ReadMeta)
	dataArrive func()
}

func (s *System) getReadTxn() *readTxn {
	x := s.readFree
	if x != nil {
		s.readFree = x.next
		x.next = nil
		return x
	}
	x = &readTxn{s: s}
	x.atDevice = func() {
		sys := x.s
		// Re-check at device arrival: the page may have been promoted
		// while the request was in flight (the PLB forwards such cases).
		if _, ok := sys.promoted[x.lpa]; ok {
			sys.sendToHost(x.lpa, cxl.HeaderBytes, x.hostFwd)
			return
		}
		var hint func(sim.Time)
		if sys.cfg.CtxSwitchEnabled {
			hint = x.hintFn
		}
		sys.ctrlFor(x.lpa).MemRd(cxlOffset(x.a), x.req.Record, x.respondFn, hint)
	}
	x.hostFwd = func() {
		sys, req, a := x.s, x.req, x.a
		sys.putReadTxn(x)
		sys.hostRead(req, a)
	}
	x.hintFn = func(est sim.Time) {
		sys := x.s
		sys.hints++
		if len(sys.tenantHints) > 0 {
			sys.tenantHints[x.req.Tenant]++
		}
		sys.sendToHost(x.lpa, cxl.HeaderBytes, x.hintArrive)
	}
	x.hintArrive = func() {
		sys, onHint := x.s, x.req.OnHint
		if sys.telInflight != nil {
			sys.telInflight[x.req.Tenant]--
		}
		sys.putReadTxn(x)
		onHint()
	}
	x.respondFn = func(meta core.ReadMeta) {
		x.meta = meta
		x.s.sendToHost(x.lpa, cxl.DataBytes, x.dataArrive)
	}
	x.dataArrive = func() {
		sys, req := x.s, x.req
		if req.Record && !req.Squashed {
			lat := sys.Eng.Now() - x.t0
			m := &x.meta
			proto := lat - m.Index - m.SSDDRAM - m.Flash
			if proto < 0 {
				proto = 0
			}
			sys.recordRead(req.Tenant, lat, m.Class, [5]sim.Time{0, proto, m.Index, m.SSDDRAM, m.Flash})
			if m.Class == stats.SSDReadMiss {
				sys.flashLat.Observe(m.Flash)
			}
			if sys.telSpans != nil {
				sys.telReadSpan(x.t0, lat, m)
			}
		}
		if sys.telInflight != nil {
			sys.telInflight[req.Tenant]--
		}
		sys.putReadTxn(x)
		req.OnData()
	}
	return x
}

func (s *System) putReadTxn(x *readTxn) {
	x.req = nil
	x.next = s.readFree
	s.readFree = x
}

// writeTxn is readTxn's analogue for the CXL writeback path.
type writeTxn struct {
	next     *writeTxn
	s        *System
	a        mem.Addr
	lpa      uint64
	tenant   int
	record   bool
	accepted func()

	atDevice func()
	wrDone   func()
}

func (s *System) getWriteTxn() *writeTxn {
	x := s.writeFree
	if x != nil {
		s.writeFree = x.next
		x.next = nil
		return x
	}
	x = &writeTxn{s: s}
	x.atDevice = func() {
		sys := x.s
		if _, ok := sys.promoted[x.lpa]; ok {
			a, tenant, record, accepted := x.a, x.tenant, x.record, x.accepted
			sys.putWriteTxn(x)
			sys.hostWrite(a, tenant, record, accepted)
			return
		}
		sys.ctrlFor(x.lpa).MemWr(cxlOffset(x.a), nil, x.record, x.tenant, x.wrDone)
	}
	x.wrDone = func() {
		sys, accepted, lpa := x.s, x.accepted, x.lpa
		if x.record {
			sys.recordClass(x.tenant, stats.SSDWrite)
		}
		if sys.telInflight != nil {
			sys.telInflight[x.tenant]--
		}
		sys.putWriteTxn(x)
		// Credit returns to the host over the response channel.
		sys.sendToHost(lpa, cxl.HeaderBytes, accepted)
	}
	return x
}

func (s *System) putWriteTxn(x *writeTxn) {
	x.accepted = nil
	x.next = s.writeFree
	s.writeFree = x
}

// hostTxn covers both host-DRAM request shapes; a given use fires exactly
// one of the two bound continuations (DRAM invokes its done callback once).
type hostTxn struct {
	next     *hostTxn
	s        *System
	req      *cpu.ReadReq
	t0       sim.Time
	tenant   int
	record   bool
	accepted func()

	rdDone func()
	wrDone func()
}

func (s *System) getHostTxn() *hostTxn {
	x := s.hostFree
	if x != nil {
		s.hostFree = x.next
		x.next = nil
		return x
	}
	x = &hostTxn{s: s}
	x.rdDone = func() {
		sys, req := x.s, x.req
		if req.Record && !req.Squashed {
			lat := sys.Eng.Now() - x.t0
			sys.recordRead(req.Tenant, lat, stats.HostRW, [5]sim.Time{lat, 0, 0, 0, 0})
		}
		if sys.telInflight != nil {
			sys.telInflight[req.Tenant]--
		}
		sys.putHostTxn(x)
		req.OnData()
	}
	x.wrDone = func() {
		sys, accepted := x.s, x.accepted
		if x.record {
			sys.recordClass(x.tenant, stats.HostRW)
		}
		if sys.telInflight != nil {
			sys.telInflight[x.tenant]--
		}
		sys.putHostTxn(x)
		accepted()
	}
	return x
}

func (s *System) putHostTxn(x *hostTxn) {
	x.req = nil
	x.accepted = nil
	x.next = s.hostFree
	s.hostFree = x
}

// TenantInfo names one tenant group of a multi-tenant run: the group
// label, the workload its threads replay, and its thread count.
type TenantInfo struct {
	Name     string
	Workload string
	Threads  int
}

type astriFetch struct{ writeAccepts []func() }

// device is one SSD backend of the machine: its controller DRAM, flash
// array, FTL, and controller (which owns the write log). Fleet runs
// wire several; the port models the device's downstream CXL attachment
// — zero extra propagation latency (the shared host link already
// charges it) but finite serialization bandwidth, so a device with a
// deep transfer backlog stalls independently of its peers. Single-device
// runs leave port nil and move bytes on the host link alone, exactly
// the pre-fleet machine.
type device struct {
	port    *cxl.Link
	ssdDRAM *dram.DRAM
	arr     *flash.Array
	fl      *ftl.FTL
	ctrl    *core.Controller
}

// New wires a system from cfg. The returned System is independent of
// every other instance and safe to Run on its own goroutine.
//
// An invalid fleet configuration (Config.Devices/Placement) panics, the
// same contract as WithVariant on an unknown variant: callers taking
// external input validate first with fleet.Validate or fleet.ParsePolicy.
func New(cfg Config) *System {
	s := &System{cfg: cfg, promoted: make(map[uint64][]byte)}
	s.link = cxl.New(&s.Eng, cfg.Link)
	s.hostDRAM = dram.New(&s.Eng, cfg.HostDRAM)

	nDev := cfg.Devices
	if nDev < 1 {
		nDev = 1
	}
	if nDev > 1 {
		p, err := fleet.NewPlacer(cfg.fleetConfig())
		if err != nil {
			panic("system: " + err.Error())
		}
		s.placer = p
	}
	s.devs = make([]*device, nDev)
	for i := range s.devs {
		d := &device{}
		d.ssdDRAM = dram.New(&s.Eng, cfg.SSDDRAM)
		d.arr = flash.New(&s.Eng, cfg.Geometry, cfg.Timing)
		d.fl = ftl.New(&s.Eng, d.arr, cfg.FTL)
		// Each device preconditions under its own seed so fleet members
		// start from distinct (but deterministic) flash states.
		d.fl.Precondition(cfg.PreconditionFill, cfg.PreconditionRewrit, cfg.Seed+uint64(i))
		d.ctrl = core.New(&s.Eng, cfg.controllerConfig(), d.arr, d.fl, d.ssdDRAM)
		if nDev > 1 {
			d.port = cxl.New(&s.Eng, cxl.Config{LatencyEachWay: 0, BytesPerNs: cfg.Link.BytesPerNs})
		}
		s.devs[i] = d
	}
	s.ssdDRAM, s.arr, s.fl, s.ctrl = s.devs[0].ssdDRAM, s.devs[0].arr, s.devs[0].fl, s.devs[0].ctrl

	s.sched = osched.New(&s.Eng, osched.NewPolicy(cfg.Policy, cfg.PolicySeed), cfg.CtxSwitchCost)
	s.llc = cachesim.New(cachesim.Config{Name: "llc", SizeBytes: cfg.LLCBytes, Ways: cfg.LLCWays})
	for i := 0; i < cfg.Cores; i++ {
		l1 := cachesim.New(cachesim.Config{Name: "l1", SizeBytes: cfg.L1Bytes, Ways: cfg.L1Ways})
		l2 := cachesim.New(cachesim.Config{Name: "l2", SizeBytes: cfg.L2Bytes, Ways: cfg.L2Ways})
		c := cpu.New(&s.Eng, i, cfg.CPU, l1, l2, s.llc, s, s.sched)
		c.OnThreadFinished = s.onThreadFinished
		s.cores = append(s.cores, c)
	}

	switch cfg.Migration {
	case MigrationAdaptive:
		s.initPromotionPool()
		for _, d := range s.devs {
			d.ctrl.OnPromoteCandidate = s.promoteCandidate
		}
	case MigrationTPP:
		s.initPromotionPool()
		s.tpp = migrate.NewTPPSampler(cfg.TPPScanInterval, cfg.TPPThreshold)
	case MigrationAstri:
		s.astri = cachesim.New(cachesim.Config{
			Name: "astri", SizeBytes: cfg.PromotedMaxBytes,
			Ways: cfg.AstriWays, LineBytes: mem.PageBytes,
		})
		s.astriIn = make(map[mem.Addr]*astriFetch)
	}
	if cfg.TelemetryCadence > 0 {
		s.tel = telemetry.New(&s.Eng, cfg.TelemetryCadence)
		if cfg.TelemetryTimeline {
			s.telSpans = s.tel.EnableSpans(0)
		}
	}
	return s
}

func (s *System) initPromotionPool() {
	pages := s.cfg.PromotedMaxBytes / mem.PageBytes
	if pages < 1 {
		pages = 1
	}
	s.pool = migrate.NewPool(pages)
	s.plb = migrate.NewPLB(s.cfg.PLBEntries)
}

// Controller exposes the SSD controller (traffic counters, compaction and
// locality statistics). In a fleet run this is device 0's controller;
// per-device accounting flows through Result.Devices.
func (s *System) Controller() *core.Controller { return s.ctrl }

// FTL exposes the translation layer (device 0's in a fleet run).
func (s *System) FTL() *ftl.FTL { return s.fl }

// Flash exposes the array (device 0's in a fleet run).
func (s *System) Flash() *flash.Array { return s.arr }

// Devices returns the number of wired SSD backends (1 unless the fleet
// layer is on).
func (s *System) Devices() int { return len(s.devs) }

// Link exposes the CXL link.
func (s *System) Link() *cxl.Link { return s.link }

// Scheduler exposes the OS scheduler.
func (s *System) Scheduler() *osched.Scheduler { return s.sched }

// Cores exposes the CPU cores (per-core statistics).
func (s *System) Cores() []*cpu.Core { return s.cores }

// AddThread registers one software thread replaying stream, truncated to
// totalInstr instructions. The leading WarmupFrac fraction is excluded from
// latency statistics. The thread joins tenant group 0 — the only group of
// a solo run; multi-tenant runs use DeclareTenants + AddThreadFor.
func (s *System) AddThread(stream trace.Stream, totalInstr uint64) *osched.Thread {
	return s.AddThreadFor(0, stream, totalInstr)
}

// DeclareTenants switches the system into multi-tenant accounting:
// each subsequent AddThreadFor call attributes its thread to one of the
// declared groups, the request paths split their measurements per
// group, and Run's Result carries a Tenants slice in declaration
// order. Call once, before any threads are added.
func (s *System) DeclareTenants(infos []TenantInfo) {
	if len(s.threads) > 0 || len(s.tenantInfo) > 0 {
		panic("system: DeclareTenants must be called once, before AddThread")
	}
	s.tenantInfo = append([]TenantInfo(nil), infos...)
	n := len(s.tenantInfo)
	s.tenantBreak = make([]stats.RequestBreakdown, n)
	s.tenantAMAT = make([]stats.AMAT, n)
	s.tenantReadLat = make([]stats.LatencyHist, n)
	s.tenantHints = make([]uint64, n)
	s.tenantDone = make([]sim.Time, n)
}

// SLOClass names one open-loop service class and its analytically
// offered request rate (threads × per-thread rate × schedule mean,
// computed by the arrival spec) for goodput-vs-offered comparisons.
type SLOClass struct {
	Name       string
	OfferedRPS float64
}

// DeclareSLOClasses switches the system into open-loop accounting:
// threads gated via AttachGate attribute their requests to one of the
// declared classes, and Run's Result carries an OpenLoop section with
// per-class latency percentiles, goodput, and queue delay. Call once,
// before any gates are attached.
func (s *System) DeclareSLOClasses(classes []SLOClass) {
	if len(s.sloInfo) > 0 {
		panic("system: DeclareSLOClasses must be called once")
	}
	if len(classes) == 0 {
		panic("system: DeclareSLOClasses needs at least one class")
	}
	s.sloInfo = append([]SLOClass(nil), classes...)
	s.sloStats = make([]stats.OpenStats, len(s.sloInfo))
	if s.tel != nil {
		s.classTracks = make([]*telemetry.ClassTrack, len(s.sloInfo))
		for i := range s.classTracks {
			s.classTracks[i] = new(telemetry.ClassTrack)
		}
	}
}

// AttachGate paces thread t as an open-loop client of the given SLO
// class: its replay is sliced into reqInstr-instruction requests
// admitted at the instants src yields. Run releases the thread at its
// first arrival rather than at time zero.
func (s *System) AttachGate(t *osched.Thread, class int, src osched.ArrivalSource, reqInstr uint64) {
	if class < 0 || class >= len(s.sloInfo) {
		panic("system: AttachGate class index out of range (call DeclareSLOClasses first)")
	}
	t.Gate = osched.NewGate(src, reqInstr, class, &s.sloStats[class], &s.openTotal)
	if s.tel != nil {
		t.Gate.Track = s.classTracks[class]
		if s.telSpans != nil {
			t.Gate.Spans = s.telSpans
			t.Gate.SpanTID = int32(t.ID)
		}
	}
}

// AddThreadFor is AddThread with an explicit tenant group index
// (0 <= tenant < len of the DeclareTenants slice; 0 when none declared).
func (s *System) AddThreadFor(tenant int, stream trace.Stream, totalInstr uint64) *osched.Thread {
	if len(s.tenantInfo) > 0 && (tenant < 0 || tenant >= len(s.tenantInfo)) {
		panic("system: AddThreadFor tenant index out of range")
	}
	t := &osched.Thread{
		ID:     len(s.threads),
		Tenant: tenant,
		Replay: trace.NewReplayer(&trace.Limited{Src: stream, Budget: totalInstr}),
		Warmup: uint64(s.cfg.WarmupFrac * float64(totalInstr)),
	}
	s.threads = append(s.threads, t)
	return t
}

func (s *System) onThreadFinished(t *osched.Thread, at sim.Time) {
	s.finished++
	if at > s.lastDone {
		s.lastDone = at
	}
	if len(s.tenantDone) > 0 && at > s.tenantDone[t.Tenant] {
		s.tenantDone[t.Tenant] = at
	}
}

func (s *System) allDone() bool { return s.finished >= len(s.threads) }

// Run executes until every thread retires, then drains background work and
// returns the collected measurements.
func (s *System) Run() *Result {
	for _, t := range s.threads {
		if t.Gate != nil {
			// An open-loop client only becomes runnable when its first
			// request arrives.
			s.sched.ScheduleRelease(t, t.Gate.NextArrival)
			continue
		}
		s.sched.Enqueue(t)
	}
	for _, c := range s.cores {
		c.Start()
	}
	if s.tpp != nil {
		s.Eng.After(s.cfg.TPPScanInterval, s.tppScan)
	}
	if s.tel != nil {
		s.setupTelemetry()
	}
	s.Eng.Run()
	return s.collect()
}

// --- address helpers ---

func cxlOffset(a mem.Addr) uint64 { return uint64(a - mem.CXLBase) }
func cxlPage(a mem.Addr) uint64   { return cxlOffset(a) >> mem.PageShift }

// --- fleet routing (DESIGN.md §9) ---

// ctrlFor returns the controller owning lpa: devs[0] when the fleet
// layer is off, the placer's pick otherwise.
func (s *System) ctrlFor(lpa uint64) *core.Controller {
	if s.placer == nil {
		return s.ctrl
	}
	return s.devs[s.placer.Device(lpa)].ctrl
}

// sendToDevice moves size bytes host→device toward lpa's owner: across
// the shared host link and then, in fleet mode, through the owning
// device's downstream port. The single-device path is the bare link
// call — it allocates nothing, preserving the zero-alloc hot-path
// contract; the fleet path allocates one continuation per hop.
func (s *System) sendToDevice(lpa uint64, size int, done func()) {
	if s.placer == nil {
		s.link.ToDevice(size, done)
		return
	}
	port := s.devs[s.placer.Device(lpa)].port
	s.link.ToDevice(size, func() { port.ToDevice(size, done) })
}

// sendToHost moves size bytes device→host from lpa's owner: through the
// owning device's port, then the shared host link.
func (s *System) sendToHost(lpa uint64, size int, done func()) {
	if s.placer == nil {
		s.link.ToHost(size, done)
		return
	}
	port := s.devs[s.placer.Device(lpa)].port
	port.ToHost(size, func() { s.link.ToHost(size, done) })
}

// noteFleetAccess books one demand access with the placement layer and,
// when the hot/cold policy decides the page has earned the hot tier,
// starts the inter-device transfer. Called only in fleet mode.
func (s *System) noteFleetAccess(lpa uint64) {
	if m, ok := s.placer.NoteAccess(lpa); ok {
		s.fleetMigrate(m)
	}
}

// fleetMigrate simulates one hot/cold tier promotion: the host pulls
// the page from the cold device (a flash fetch if it isn't cached),
// trims the cold device's mapping, and rewrites the page on the hot
// device — every leg through the normal port and link paths, so
// migrations compete with demand traffic for bandwidth. Ownership has
// already flipped, so requests issued after the decision route to the
// new owner; stale write-log lines on the source drain as dead
// compaction traffic (a documented simplification — there is no
// cross-device log forwarding).
func (s *System) fleetMigrate(m fleet.Migration) {
	src, dst := s.devs[m.From], s.devs[m.To]
	const page = mem.LinesPerPage * cxl.DataBytes
	src.ctrl.FetchPage(m.LPA, func() {
		src.fl.Trim(m.LPA)
		src.port.ToHost(page, func() {
			s.link.ToHost(page, func() {
				s.link.ToDevice(page, func() {
					dst.port.ToDevice(page, func() {
						dst.ctrl.WritePage(m.LPA, nil, nil)
					})
				})
			})
		})
	})
}

// --- measurement recording ---

// recordRead books one completed off-chip read into the system
// accumulators and, in a multi-tenant run, the issuing tenant's slice.
func (s *System) recordRead(tenant int, lat sim.Time, class stats.RequestClass, parts [5]sim.Time) {
	s.readLat.Observe(lat)
	s.breakdown.Inc(class)
	s.amat.AddAccess(parts)
	if len(s.tenantInfo) > 0 {
		s.tenantReadLat[tenant].Observe(lat)
		s.tenantBreak[tenant].Inc(class)
		s.tenantAMAT[tenant].AddAccess(parts)
	}
}

// recordClass books one classified request without latency components
// (the write paths).
func (s *System) recordClass(tenant int, class stats.RequestClass) {
	s.breakdown.Inc(class)
	if len(s.tenantInfo) > 0 {
		s.tenantBreak[tenant].Inc(class)
	}
}

// --- cpu.Backend ---

// Read routes a demand cacheline read: host DRAM, promoted page, the
// AstriFlash host cache, or over CXL to the SSD controller.
func (s *System) Read(req *cpu.ReadReq) {
	if s.telInflight != nil {
		s.telInflight[req.Tenant]++
	}
	a := req.Addr
	if !a.IsCXL() || s.cfg.DRAMOnly {
		s.hostRead(req, a)
		return
	}
	lpa := cxlPage(a)
	if _, ok := s.promoted[lpa]; ok {
		s.pool.Touch(lpa, s.Eng.Now())
		s.hostRead(req, a)
		return
	}
	if s.tpp != nil {
		s.tpp.Note(lpa)
	}
	if s.astri != nil {
		s.astriRead(req, a)
		return
	}
	if s.placer != nil {
		s.noteFleetAccess(lpa)
	}
	x := s.getReadTxn()
	x.req, x.a, x.lpa, x.t0 = req, a, lpa, s.Eng.Now()
	s.sendToDevice(lpa, cxl.HeaderBytes, x.atDevice)
}

// Write routes a cacheline writeback.
func (s *System) Write(a mem.Addr, coreID, tenant int, record bool, accepted func()) {
	if s.telInflight != nil {
		s.telInflight[tenant]++
	}
	if !a.IsCXL() || s.cfg.DRAMOnly {
		s.hostWrite(a, tenant, record, accepted)
		return
	}
	lpa := cxlPage(a)
	if _, ok := s.promoted[lpa]; ok {
		s.pool.Touch(lpa, s.Eng.Now())
		s.hostWrite(a, tenant, record, accepted)
		return
	}
	if s.tpp != nil {
		s.tpp.Note(lpa)
	}
	if s.astri != nil {
		s.astriWrite(a, tenant, record, accepted)
		return
	}
	if s.placer != nil {
		s.noteFleetAccess(lpa)
	}
	x := s.getWriteTxn()
	x.a, x.lpa, x.tenant, x.record, x.accepted = a, lpa, tenant, record, accepted
	s.sendToDevice(lpa, cxl.DataBytes, x.atDevice)
}

func (s *System) hostRead(req *cpu.ReadReq, a mem.Addr) {
	x := s.getHostTxn()
	x.req, x.t0 = req, s.Eng.Now()
	s.hostDRAM.Access(a, false, x.rdDone)
}

func (s *System) hostWrite(a mem.Addr, tenant int, record bool, accepted func()) {
	x := s.getHostTxn()
	x.tenant, x.record, x.accepted = tenant, record, accepted
	s.hostDRAM.Access(a, true, x.wrDone)
}

// --- adaptive promotion (§III-C) ---

func (s *System) promoteCandidate(lpa uint64) {
	if !s.plb.TryBegin(lpa) {
		return
	}
	if !s.ctrlFor(lpa).MarkMigrating(lpa) {
		s.plb.Complete(lpa)
		return
	}
	// Promotions serialise through the host's MSI-X handler: one interrupt
	// is serviced at a time, bounding the promotion rate the way a real
	// kernel does.
	s.promoteQ = append(s.promoteQ, lpa)
	s.drainPromotions()
}

func (s *System) drainPromotions() {
	if s.promoting || len(s.promoteQ) == 0 {
		return
	}
	s.promoting = true
	lpa := s.promoteQ[0]
	s.promoteQ = s.promoteQ[1:]
	// MSI-X interrupt to the host, then the OS allocates a physical page
	// and the 64 cachelines copy over the CXL link.
	s.Eng.After(s.cfg.MSIXCost, func() {
		s.sendToHost(lpa, mem.LinesPerPage*cxl.DataBytes, func() {
			s.completePromotion(lpa)
			s.promoting = false
			s.drainPromotions()
		})
	})
}

func (s *System) completePromotion(lpa uint64) {
	data, ok := s.ctrlFor(lpa).FinishMigration(lpa)
	if !ok {
		s.plb.Complete(lpa)
		return
	}
	if s.pool.Full() {
		s.demoteColdest()
	}
	s.promoted[lpa] = data
	s.pool.Add(lpa, s.Eng.Now())
	s.plb.Complete(lpa)
	s.migr.Promotions++
	// PTE update, then a TLB shootdown interrupts every core.
	s.Eng.After(s.cfg.PTEUpdateCost, func() {
		for _, c := range s.cores {
			c.InjectStall(s.cfg.TLBShootdown)
		}
	})
}

// demoteColdest evicts the LRU promoted page back to the SSD through the
// normal write path (a full-page copy).
func (s *System) demoteColdest() {
	lpa, ok := s.pool.Coldest()
	if !ok {
		return
	}
	data := s.promoted[lpa]
	s.pool.Remove(lpa)
	delete(s.promoted, lpa)
	s.migr.Demotions++
	s.sendToDevice(lpa, mem.LinesPerPage*cxl.DataBytes, func() {
		s.ctrlFor(lpa).WritePage(lpa, data, nil)
	})
}

// --- TPP-style promotion (§VI-H) ---

func (s *System) tppScan() {
	if s.allDone() {
		return
	}
	for _, lpa := range s.tpp.Scan(s.Eng.Now()) {
		if _, ok := s.promoted[lpa]; ok {
			continue
		}
		if !s.plb.TryBegin(lpa) {
			break
		}
		lpa := lpa
		// TPP promotes regardless of SSD DRAM residency, so a promotion
		// may first pull the page from flash.
		ctrl := s.ctrlFor(lpa)
		ctrl.FetchPage(lpa, func() {
			if !ctrl.MarkMigrating(lpa) {
				s.plb.Complete(lpa)
				return
			}
			s.sendToHost(lpa, mem.LinesPerPage*cxl.DataBytes, func() {
				s.completePromotion(lpa)
			})
		})
	}
	s.Eng.After(s.cfg.TPPScanInterval, s.tppScan)
}

// --- AstriFlash-style host page cache (§VI-H) ---

func (s *System) astriRead(req *cpu.ReadReq, a mem.Addr) {
	page := a.Page()
	if s.astri.Access(page, false) {
		s.hostRead(req, a)
		return
	}
	s.astriMiss(page, req.Tenant, req.Record)
	if s.telInflight != nil {
		// The request terminates here (it re-issues after the page
		// lands, re-entering Read), so its in-flight count closes now.
		s.telInflight[req.Tenant]--
	}
	// A host-cache miss triggers a user-level thread switch; the request
	// re-issues after the page lands.
	s.Eng.After(s.cfg.AstriSwitchCost/4, req.OnHint)
}

func (s *System) astriWrite(a mem.Addr, tenant int, record bool, accepted func()) {
	page := a.Page()
	if s.astri.Access(page, true) {
		s.hostWrite(a, tenant, record, accepted)
		return
	}
	f := s.astriMiss(page, tenant, record)
	f.writeAccepts = append(f.writeAccepts, func() {
		s.astri.Access(page, true) // dirty the landed page
		s.hostWrite(a, tenant, record, accepted)
	})
}

// astriMiss starts (or joins) the 4 KB on-demand fetch of page from the SSD.
func (s *System) astriMiss(page mem.Addr, tenant int, record bool) *astriFetch {
	if f, ok := s.astriIn[page]; ok {
		return f
	}
	f := &astriFetch{}
	s.astriIn[page] = f
	lpa := cxlPage(page)
	s.sendToDevice(lpa, cxl.HeaderBytes, func() {
		s.ctrlFor(lpa).FetchPage(lpa, func() {
			if record {
				s.recordClass(tenant, stats.SSDReadMiss)
			}
			s.sendToHost(lpa, mem.LinesPerPage*cxl.DataBytes, func() {
				v := s.astri.Fill(page, false)
				if v.Valid && v.Dirty {
					// Dirty victim pages write back at page granularity —
					// AstriFlash always accesses the SSD in pages.
					vlpa := cxlPage(v.Addr)
					s.sendToDevice(vlpa, mem.LinesPerPage*cxl.DataBytes, func() {
						s.ctrlFor(vlpa).WritePage(vlpa, nil, nil)
					})
				}
				delete(s.astriIn, page)
				for _, acc := range f.writeAccepts {
					acc()
				}
			})
		})
	})
	return f
}
