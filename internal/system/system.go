package system

import (
	"skybyte/internal/cachesim"
	"skybyte/internal/core"
	"skybyte/internal/cpu"
	"skybyte/internal/cxl"
	"skybyte/internal/dram"
	"skybyte/internal/flash"
	"skybyte/internal/ftl"
	"skybyte/internal/mem"
	"skybyte/internal/migrate"
	"skybyte/internal/osched"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/trace"
)

// MigrationStats counts page movement between the tiers.
type MigrationStats struct {
	Promotions uint64
	Demotions  uint64
}

// System is one fully wired simulated machine.
//
// Reentrancy: a System is single-threaded — its event engine and every
// component it wires (cores, caches, scheduler, link, DRAMs, flash,
// FTL, controller, migration state) live on the owning instance, and no
// package in the simulator keeps mutable package-level state (the only
// package-level vars anywhere are immutable presets such as
// flash.TimingULL and system.AllVariants). Distinct System instances
// may therefore be constructed and Run concurrently from different
// goroutines; internal/runner relies on this to execute campaign design
// points in parallel. A single instance must not be shared across
// goroutines.
type System struct {
	Eng sim.Engine
	cfg Config

	cores []*cpu.Core
	llc   *cachesim.Cache
	sched *osched.Scheduler

	link     *cxl.Link
	hostDRAM *dram.DRAM
	ssdDRAM  *dram.DRAM
	arr      *flash.Array
	fl       *ftl.FTL
	ctrl     *core.Controller

	threads  []*osched.Thread
	finished int
	lastDone sim.Time

	// Tiering state.
	promoted  map[uint64][]byte // lpa -> host copy (payload nil unless tracking)
	pool      *migrate.Pool
	plb       *migrate.PLB
	tpp       *migrate.TPPSampler
	astri     *cachesim.Cache
	astriIn   map[mem.Addr]*astriFetch
	promoteQ  []uint64
	promoting bool

	// Measurements.
	breakdown stats.RequestBreakdown
	amat      stats.AMAT
	readLat   stats.LatencyHist
	flashLat  stats.LatencyHist
	migr      MigrationStats
	hints     uint64

	// Per-tenant measurement state of a multi-tenant run
	// (DeclareTenants); all nil/empty in solo runs, in which case the
	// request paths skip tenant attribution entirely.
	tenantInfo    []TenantInfo
	tenantBreak   []stats.RequestBreakdown
	tenantAMAT    []stats.AMAT
	tenantReadLat []stats.LatencyHist
	tenantHints   []uint64
	tenantDone    []sim.Time
}

// TenantInfo names one tenant group of a multi-tenant run: the group
// label, the workload its threads replay, and its thread count.
type TenantInfo struct {
	Name     string
	Workload string
	Threads  int
}

type astriFetch struct{ writeAccepts []func() }

// New wires a system from cfg. The returned System is independent of
// every other instance and safe to Run on its own goroutine.
func New(cfg Config) *System {
	s := &System{cfg: cfg, promoted: make(map[uint64][]byte)}
	s.link = cxl.New(&s.Eng, cfg.Link)
	s.hostDRAM = dram.New(&s.Eng, cfg.HostDRAM)
	s.ssdDRAM = dram.New(&s.Eng, cfg.SSDDRAM)
	s.arr = flash.New(&s.Eng, cfg.Geometry, cfg.Timing)
	s.fl = ftl.New(&s.Eng, s.arr, cfg.FTL)
	s.fl.Precondition(cfg.PreconditionFill, cfg.PreconditionRewrit, cfg.Seed)
	s.ctrl = core.New(&s.Eng, cfg.controllerConfig(), s.arr, s.fl, s.ssdDRAM)

	s.sched = osched.New(&s.Eng, osched.NewPolicy(cfg.Policy, cfg.PolicySeed), cfg.CtxSwitchCost)
	s.llc = cachesim.New(cachesim.Config{Name: "llc", SizeBytes: cfg.LLCBytes, Ways: cfg.LLCWays})
	for i := 0; i < cfg.Cores; i++ {
		l1 := cachesim.New(cachesim.Config{Name: "l1", SizeBytes: cfg.L1Bytes, Ways: cfg.L1Ways})
		l2 := cachesim.New(cachesim.Config{Name: "l2", SizeBytes: cfg.L2Bytes, Ways: cfg.L2Ways})
		c := cpu.New(&s.Eng, i, cfg.CPU, l1, l2, s.llc, s, s.sched)
		c.OnThreadFinished = s.onThreadFinished
		s.cores = append(s.cores, c)
	}

	switch cfg.Migration {
	case MigrationAdaptive:
		s.initPromotionPool()
		s.ctrl.OnPromoteCandidate = s.promoteCandidate
	case MigrationTPP:
		s.initPromotionPool()
		s.tpp = migrate.NewTPPSampler(cfg.TPPScanInterval, cfg.TPPThreshold)
	case MigrationAstri:
		s.astri = cachesim.New(cachesim.Config{
			Name: "astri", SizeBytes: cfg.PromotedMaxBytes,
			Ways: cfg.AstriWays, LineBytes: mem.PageBytes,
		})
		s.astriIn = make(map[mem.Addr]*astriFetch)
	}
	return s
}

func (s *System) initPromotionPool() {
	pages := s.cfg.PromotedMaxBytes / mem.PageBytes
	if pages < 1 {
		pages = 1
	}
	s.pool = migrate.NewPool(pages)
	s.plb = migrate.NewPLB(s.cfg.PLBEntries)
}

// Controller exposes the SSD controller (traffic counters, compaction and
// locality statistics).
func (s *System) Controller() *core.Controller { return s.ctrl }

// FTL exposes the translation layer.
func (s *System) FTL() *ftl.FTL { return s.fl }

// Flash exposes the array.
func (s *System) Flash() *flash.Array { return s.arr }

// Link exposes the CXL link.
func (s *System) Link() *cxl.Link { return s.link }

// Scheduler exposes the OS scheduler.
func (s *System) Scheduler() *osched.Scheduler { return s.sched }

// Cores exposes the CPU cores (per-core statistics).
func (s *System) Cores() []*cpu.Core { return s.cores }

// AddThread registers one software thread replaying stream, truncated to
// totalInstr instructions. The leading WarmupFrac fraction is excluded from
// latency statistics. The thread joins tenant group 0 — the only group of
// a solo run; multi-tenant runs use DeclareTenants + AddThreadFor.
func (s *System) AddThread(stream trace.Stream, totalInstr uint64) *osched.Thread {
	return s.AddThreadFor(0, stream, totalInstr)
}

// DeclareTenants switches the system into multi-tenant accounting:
// each subsequent AddThreadFor call attributes its thread to one of the
// declared groups, the request paths split their measurements per
// group, and Run's Result carries a Tenants slice in declaration
// order. Call once, before any threads are added.
func (s *System) DeclareTenants(infos []TenantInfo) {
	if len(s.threads) > 0 || len(s.tenantInfo) > 0 {
		panic("system: DeclareTenants must be called once, before AddThread")
	}
	s.tenantInfo = append([]TenantInfo(nil), infos...)
	n := len(s.tenantInfo)
	s.tenantBreak = make([]stats.RequestBreakdown, n)
	s.tenantAMAT = make([]stats.AMAT, n)
	s.tenantReadLat = make([]stats.LatencyHist, n)
	s.tenantHints = make([]uint64, n)
	s.tenantDone = make([]sim.Time, n)
}

// AddThreadFor is AddThread with an explicit tenant group index
// (0 <= tenant < len of the DeclareTenants slice; 0 when none declared).
func (s *System) AddThreadFor(tenant int, stream trace.Stream, totalInstr uint64) *osched.Thread {
	if len(s.tenantInfo) > 0 && (tenant < 0 || tenant >= len(s.tenantInfo)) {
		panic("system: AddThreadFor tenant index out of range")
	}
	t := &osched.Thread{
		ID:     len(s.threads),
		Tenant: tenant,
		Replay: trace.NewReplayer(&trace.Limited{Src: stream, Budget: totalInstr}),
		Warmup: uint64(s.cfg.WarmupFrac * float64(totalInstr)),
	}
	s.threads = append(s.threads, t)
	return t
}

func (s *System) onThreadFinished(t *osched.Thread, at sim.Time) {
	s.finished++
	if at > s.lastDone {
		s.lastDone = at
	}
	if len(s.tenantDone) > 0 && at > s.tenantDone[t.Tenant] {
		s.tenantDone[t.Tenant] = at
	}
}

func (s *System) allDone() bool { return s.finished >= len(s.threads) }

// Run executes until every thread retires, then drains background work and
// returns the collected measurements.
func (s *System) Run() *Result {
	for _, t := range s.threads {
		s.sched.Enqueue(t)
	}
	for _, c := range s.cores {
		c.Start()
	}
	if s.tpp != nil {
		s.Eng.After(s.cfg.TPPScanInterval, s.tppScan)
	}
	s.Eng.Run()
	return s.collect()
}

// --- address helpers ---

func cxlOffset(a mem.Addr) uint64 { return uint64(a - mem.CXLBase) }
func cxlPage(a mem.Addr) uint64   { return cxlOffset(a) >> mem.PageShift }

// --- measurement recording ---

// recordRead books one completed off-chip read into the system
// accumulators and, in a multi-tenant run, the issuing tenant's slice.
func (s *System) recordRead(tenant int, lat sim.Time, class stats.RequestClass, parts [5]sim.Time) {
	s.readLat.Observe(lat)
	s.breakdown.Inc(class)
	s.amat.AddAccess(parts)
	if len(s.tenantInfo) > 0 {
		s.tenantReadLat[tenant].Observe(lat)
		s.tenantBreak[tenant].Inc(class)
		s.tenantAMAT[tenant].AddAccess(parts)
	}
}

// recordClass books one classified request without latency components
// (the write paths).
func (s *System) recordClass(tenant int, class stats.RequestClass) {
	s.breakdown.Inc(class)
	if len(s.tenantInfo) > 0 {
		s.tenantBreak[tenant].Inc(class)
	}
}

// --- cpu.Backend ---

// Read routes a demand cacheline read: host DRAM, promoted page, the
// AstriFlash host cache, or over CXL to the SSD controller.
func (s *System) Read(req *cpu.ReadReq) {
	a := req.Addr
	if !a.IsCXL() || s.cfg.DRAMOnly {
		s.hostRead(req, a)
		return
	}
	lpa := cxlPage(a)
	if _, ok := s.promoted[lpa]; ok {
		s.pool.Touch(lpa, s.Eng.Now())
		s.hostRead(req, a)
		return
	}
	if s.tpp != nil {
		s.tpp.Note(lpa)
	}
	if s.astri != nil {
		s.astriRead(req, a)
		return
	}
	t0 := s.Eng.Now()
	s.link.ToDevice(cxl.HeaderBytes, func() {
		// Re-check at device arrival: the page may have been promoted
		// while the request was in flight (the PLB forwards such cases).
		if _, ok := s.promoted[lpa]; ok {
			s.link.ToHost(cxl.HeaderBytes, func() { s.hostRead(req, a) })
			return
		}
		var hint func(sim.Time)
		if s.cfg.CtxSwitchEnabled {
			hint = func(est sim.Time) {
				s.hints++
				if len(s.tenantHints) > 0 {
					s.tenantHints[req.Tenant]++
				}
				s.link.ToHost(cxl.HeaderBytes, func() { req.OnHint() })
			}
		}
		s.ctrl.MemRd(cxlOffset(a), req.Record, func(meta core.ReadMeta) {
			s.link.ToHost(cxl.DataBytes, func() {
				if req.Record && !req.Squashed {
					lat := s.Eng.Now() - t0
					proto := lat - meta.Index - meta.SSDDRAM - meta.Flash
					if proto < 0 {
						proto = 0
					}
					s.recordRead(req.Tenant, lat, meta.Class, [5]sim.Time{0, proto, meta.Index, meta.SSDDRAM, meta.Flash})
					if meta.Class == stats.SSDReadMiss {
						s.flashLat.Observe(meta.Flash)
					}
				}
				req.OnData()
			})
		}, hint)
	})
}

// Write routes a cacheline writeback.
func (s *System) Write(a mem.Addr, coreID, tenant int, record bool, accepted func()) {
	if !a.IsCXL() || s.cfg.DRAMOnly {
		s.hostWrite(a, tenant, record, accepted)
		return
	}
	lpa := cxlPage(a)
	if _, ok := s.promoted[lpa]; ok {
		s.pool.Touch(lpa, s.Eng.Now())
		s.hostWrite(a, tenant, record, accepted)
		return
	}
	if s.tpp != nil {
		s.tpp.Note(lpa)
	}
	if s.astri != nil {
		s.astriWrite(a, tenant, record, accepted)
		return
	}
	s.link.ToDevice(cxl.DataBytes, func() {
		if _, ok := s.promoted[lpa]; ok {
			s.hostWrite(a, tenant, record, accepted)
			return
		}
		s.ctrl.MemWr(cxlOffset(a), nil, record, tenant, func() {
			if record {
				s.recordClass(tenant, stats.SSDWrite)
			}
			// Credit returns to the host over the response channel.
			s.link.ToHost(cxl.HeaderBytes, accepted)
		})
	})
}

func (s *System) hostRead(req *cpu.ReadReq, a mem.Addr) {
	t0 := s.Eng.Now()
	s.hostDRAM.Access(a, false, func() {
		if req.Record && !req.Squashed {
			lat := s.Eng.Now() - t0
			s.recordRead(req.Tenant, lat, stats.HostRW, [5]sim.Time{lat, 0, 0, 0, 0})
		}
		req.OnData()
	})
}

func (s *System) hostWrite(a mem.Addr, tenant int, record bool, accepted func()) {
	s.hostDRAM.Access(a, true, func() {
		if record {
			s.recordClass(tenant, stats.HostRW)
		}
		accepted()
	})
}

// --- adaptive promotion (§III-C) ---

func (s *System) promoteCandidate(lpa uint64) {
	if !s.plb.TryBegin(lpa) {
		return
	}
	if !s.ctrl.MarkMigrating(lpa) {
		s.plb.Complete(lpa)
		return
	}
	// Promotions serialise through the host's MSI-X handler: one interrupt
	// is serviced at a time, bounding the promotion rate the way a real
	// kernel does.
	s.promoteQ = append(s.promoteQ, lpa)
	s.drainPromotions()
}

func (s *System) drainPromotions() {
	if s.promoting || len(s.promoteQ) == 0 {
		return
	}
	s.promoting = true
	lpa := s.promoteQ[0]
	s.promoteQ = s.promoteQ[1:]
	// MSI-X interrupt to the host, then the OS allocates a physical page
	// and the 64 cachelines copy over the CXL link.
	s.Eng.After(s.cfg.MSIXCost, func() {
		s.link.ToHost(mem.LinesPerPage*cxl.DataBytes, func() {
			s.completePromotion(lpa)
			s.promoting = false
			s.drainPromotions()
		})
	})
}

func (s *System) completePromotion(lpa uint64) {
	data, ok := s.ctrl.FinishMigration(lpa)
	if !ok {
		s.plb.Complete(lpa)
		return
	}
	if s.pool.Full() {
		s.demoteColdest()
	}
	s.promoted[lpa] = data
	s.pool.Add(lpa, s.Eng.Now())
	s.plb.Complete(lpa)
	s.migr.Promotions++
	// PTE update, then a TLB shootdown interrupts every core.
	s.Eng.After(s.cfg.PTEUpdateCost, func() {
		for _, c := range s.cores {
			c.InjectStall(s.cfg.TLBShootdown)
		}
	})
}

// demoteColdest evicts the LRU promoted page back to the SSD through the
// normal write path (a full-page copy).
func (s *System) demoteColdest() {
	lpa, ok := s.pool.Coldest()
	if !ok {
		return
	}
	data := s.promoted[lpa]
	s.pool.Remove(lpa)
	delete(s.promoted, lpa)
	s.migr.Demotions++
	s.link.ToDevice(mem.LinesPerPage*cxl.DataBytes, func() {
		s.ctrl.WritePage(lpa, data, nil)
	})
}

// --- TPP-style promotion (§VI-H) ---

func (s *System) tppScan() {
	if s.allDone() {
		return
	}
	for _, lpa := range s.tpp.Scan(s.Eng.Now()) {
		if _, ok := s.promoted[lpa]; ok {
			continue
		}
		if !s.plb.TryBegin(lpa) {
			break
		}
		lpa := lpa
		// TPP promotes regardless of SSD DRAM residency, so a promotion
		// may first pull the page from flash.
		s.ctrl.FetchPage(lpa, func() {
			if !s.ctrl.MarkMigrating(lpa) {
				s.plb.Complete(lpa)
				return
			}
			s.link.ToHost(mem.LinesPerPage*cxl.DataBytes, func() {
				s.completePromotion(lpa)
			})
		})
	}
	s.Eng.After(s.cfg.TPPScanInterval, s.tppScan)
}

// --- AstriFlash-style host page cache (§VI-H) ---

func (s *System) astriRead(req *cpu.ReadReq, a mem.Addr) {
	page := a.Page()
	if s.astri.Access(page, false) {
		s.hostRead(req, a)
		return
	}
	s.astriMiss(page, req.Tenant, req.Record)
	// A host-cache miss triggers a user-level thread switch; the request
	// re-issues after the page lands.
	s.Eng.After(s.cfg.AstriSwitchCost/4, req.OnHint)
}

func (s *System) astriWrite(a mem.Addr, tenant int, record bool, accepted func()) {
	page := a.Page()
	if s.astri.Access(page, true) {
		s.hostWrite(a, tenant, record, accepted)
		return
	}
	f := s.astriMiss(page, tenant, record)
	f.writeAccepts = append(f.writeAccepts, func() {
		s.astri.Access(page, true) // dirty the landed page
		s.hostWrite(a, tenant, record, accepted)
	})
}

// astriMiss starts (or joins) the 4 KB on-demand fetch of page from the SSD.
func (s *System) astriMiss(page mem.Addr, tenant int, record bool) *astriFetch {
	if f, ok := s.astriIn[page]; ok {
		return f
	}
	f := &astriFetch{}
	s.astriIn[page] = f
	lpa := cxlPage(page)
	s.link.ToDevice(cxl.HeaderBytes, func() {
		s.ctrl.FetchPage(lpa, func() {
			if record {
				s.recordClass(tenant, stats.SSDReadMiss)
			}
			s.link.ToHost(mem.LinesPerPage*cxl.DataBytes, func() {
				v := s.astri.Fill(page, false)
				if v.Valid && v.Dirty {
					// Dirty victim pages write back at page granularity —
					// AstriFlash always accesses the SSD in pages.
					vlpa := cxlPage(v.Addr)
					s.link.ToDevice(mem.LinesPerPage*cxl.DataBytes, func() {
						s.ctrl.WritePage(vlpa, nil, nil)
					})
				}
				delete(s.astriIn, page)
				for _, acc := range f.writeAccepts {
					acc()
				}
			})
		})
	})
	return f
}
