package system

import (
	"skybyte/internal/core"
	"skybyte/internal/cpu"
	"skybyte/internal/cxl"
	"skybyte/internal/flash"
	"skybyte/internal/fleet"
	"skybyte/internal/ftl"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/telemetry"
)

// Result carries every measurement the evaluation consumes.
type Result struct {
	Variant string

	// CacheKey is the stable identity of the design point that produced
	// this result (workload|variant|budget|threads|tag). The runner sets
	// it when it executes a spec; a given key always maps to the same
	// measurements because simulations are deterministic, which is what
	// makes memoizing and de-duplicating runs by key sound.
	CacheKey string

	// ExecTime is when the last thread retired its final instruction.
	ExecTime sim.Time
	// Instructions is the total retired (each thread's trace length).
	Instructions uint64

	Bound     stats.Boundedness      // Figs. 4 and 10
	Breakdown stats.RequestBreakdown // Fig. 16
	AMAT      stats.AMAT             // Fig. 17
	ReadLat   stats.LatencyHist      // Fig. 3
	FlashLat  stats.LatencyHist      // Table III

	Traffic    stats.FlashTraffic // Figs. 18 and 20 (controller + GC merged)
	FTLStats   ftl.Stats
	FlashStats flash.Stats
	LinkStats  cxl.Stats
	CacheStats core.PageCacheStats
	Compaction core.CompactionStats

	CtxSwitches  uint64 // all context switches performed by cores
	HintSwitches uint64 // those caused by SkyByte-Delay
	HintsSent    uint64 // NDR SkyByte-Delay messages from the device
	Migration    MigrationStats

	LLCMisses        uint64
	MPKI             float64 // LLC misses per kilo-instruction
	LogIndexPeak     int     // peak write-log index footprint, bytes
	SSDBandwidthBps  float64 // delivered CXL link goodput
	FlashUtilization float64

	// Locality CDFs (Figs. 5–6) when TrackLocality was on.
	ReadLocality  []stats.CDFPoint
	WriteLocality []stats.CDFPoint

	// Tenants carries the per-tenant accounting of a multi-tenant run
	// (DeclareTenants), in tenant declaration order; nil for solo runs.
	// Each tenant's counters are exact splits of the whole-system
	// measurements above: instructions, boundedness, request classes,
	// context switches, LLC misses, and write-log activity all sum to
	// the system totals (TestTenantStatsSumToSystemTotals).
	Tenants []TenantResult `json:",omitempty"`

	// OpenLoop carries the per-SLO-class request accounting of an
	// arrival-driven run (DeclareSLOClasses + AttachGate); nil for
	// closed-loop runs. Class splits merge exactly into Total
	// (TestOpenLoopClassesSumToTotal).
	OpenLoop *OpenLoopResult `json:",omitempty"`

	// Telemetry carries the sampled probe time-series (and, for
	// timeline runs, the request-lifecycle spans) of a run with
	// Config.TelemetryCadence set; nil otherwise. Sampling is driven by
	// the deterministic event engine, so the section is byte-identical
	// at any parallelism and flows through the result store like every
	// other measurement.
	Telemetry *telemetry.Snapshot `json:",omitempty"`

	// Devices carries the per-device accounting of a fleet run
	// (Config.Devices >= 1), in device order; nil for legacy
	// single-device configs (Devices == 0). The summable counters —
	// flash traffic, FTL/flash/cache/compaction stats, log index peaks —
	// are exact splits of the whole-system fields above
	// (TestFleetDeviceSplitsSumToTotals); Placement names the resolved
	// placement policy and FleetMigrations counts hot/cold inter-device
	// page transfers.
	Devices         []DeviceResult `json:",omitempty"`
	Placement       string         `json:",omitempty"`
	FleetMigrations uint64         `json:",omitempty"`
}

// DeviceResult is one SSD backend's share of a fleet run: the same
// device-side measurement vocabulary as the whole-system Result,
// restricted to one controller+FTL+flash backend, plus the placement
// layer's page accounting and the device's downstream-port traffic.
type DeviceResult struct {
	// Device is the backend's index (the placement layer's device id).
	Device int
	// Pages is the number of logical pages the device owned at the end
	// of the run (first-touch accounting, net of migrations away).
	Pages uint64
	// Inbound counts hot/cold migrations that landed on this device
	// (0 under static policies).
	Inbound uint64

	Traffic    stats.FlashTraffic // controller + GC merged, as in Result.Traffic
	FTLStats   ftl.Stats
	FlashStats flash.Stats
	CacheStats core.PageCacheStats
	Compaction core.CompactionStats

	LogIndexPeak     int
	FlashUtilization float64

	// Port is the device's downstream CXL attachment traffic. Zero in a
	// fleet of one, where bytes move on the shared host link alone.
	Port cxl.Stats
}

// OpenLoopResult is the open-loop section of a Result: one entry per
// declared SLO class plus the all-classes total.
type OpenLoopResult struct {
	Classes []SLOClassResult
	Total   stats.OpenStats
}

// SLOClassResult is one SLO class's measurements: the offered load the
// arrival spec computed for it and the admitted/completed counts with
// sojourn-latency and queue-delay histograms.
type SLOClassResult struct {
	Name       string
	OfferedRPS float64
	Stats      stats.OpenStats
}

// TenantResult is one tenant group's share of a mixed run: the same
// measurement vocabulary as the whole-system Result, restricted to the
// threads (and their memory requests) of one tenant.
type TenantResult struct {
	// Name and Workload identify the tenant group and what it ran.
	Name     string
	Workload string
	// Threads is the group's software thread count.
	Threads int

	// Instructions is the group's total retired instruction count.
	Instructions uint64
	// ExecTime is when the group's last thread retired — the tenant's
	// completion time, the basis of per-tenant slowdown.
	ExecTime sim.Time

	Bound     stats.Boundedness      // where this tenant's core time went
	Breakdown stats.RequestBreakdown // the tenant's off-chip request classes
	AMAT      stats.AMAT             // the tenant's demand-access components
	ReadLat   stats.LatencyHist      // the tenant's off-chip read latencies

	CtxSwitches  uint64 // context switches the tenant's threads experienced
	HintSwitches uint64 // those triggered by SkyByte-Delay exceptions
	HintsSent    uint64 // NDR SkyByte-Delay messages for the tenant's reads
	Enqueues     uint64 // run-queue insertions of the tenant's threads
	LLCMisses    uint64
	MPKI         float64

	// Log splits the write path by tenant: who fills the write log
	// (forcing the compaction drains everyone shares) and who eats
	// backpressure stalls.
	Log core.TenantLogStats
}

// IPS returns the tenant's retired instructions per second of simulated
// time (its progress rate while co-located).
func (t *TenantResult) IPS() float64 {
	secs := t.ExecTime.Seconds()
	if secs == 0 {
		return 0
	}
	return float64(t.Instructions) / secs
}

// IPS returns retired instructions per second of simulated time.
func (r *Result) IPS() float64 {
	secs := r.ExecTime.Seconds()
	if secs == 0 {
		return 0
	}
	return float64(r.Instructions) / secs
}

// Speedup returns base.ExecTime / r.ExecTime.
func (r *Result) Speedup(base *Result) float64 {
	if r.ExecTime == 0 {
		return 0
	}
	return float64(base.ExecTime) / float64(r.ExecTime)
}

func (s *System) collect() *Result {
	r := &Result{Variant: s.cfg.Name, ExecTime: s.lastDone}
	var instr uint64
	for _, t := range s.threads {
		instr += t.Progress
	}
	r.Instructions = instr

	for _, c := range s.cores {
		r.Bound.Add(c.Stats.Bound)
		r.CtxSwitches += c.Stats.Switches
		r.HintSwitches += c.Stats.HintSwitches
		r.LLCMisses += c.Stats.LLCMisses
	}
	if instr > 0 {
		r.MPKI = float64(r.LLCMisses) / float64(instr) * 1000
	}

	r.Breakdown = s.breakdown
	r.AMAT = s.amat
	r.ReadLat = s.readLat
	r.FlashLat = s.flashLat
	r.HintsSent = s.hints
	r.Migration = s.migr

	// Device-side accounting. Every backend contributes one DeviceResult
	// and its counters accumulate into the whole-system fields, so the
	// per-device splits reconcile to the fleet totals exactly, by
	// construction (TestFleetDeviceSplitsSumToTotals pins this). The
	// single-device machine is the same loop over one backend, producing
	// the identical totals it always has.
	devResults := make([]DeviceResult, len(s.devs))
	var utilSum float64
	for i, d := range s.devs {
		dr := &devResults[i]
		dr.Device = i
		dfs := d.fl.Stats()
		dr.Traffic = d.ctrl.Traffic
		dr.Traffic.GCReads = dfs.GCReads
		dr.Traffic.GCPrograms = dfs.GCPrograms
		dr.Traffic.Erases = dfs.Erases
		dr.Traffic.GCInvocations = dfs.GCInvocations
		dr.FTLStats = dfs
		dr.FlashStats = d.arr.Stats()
		dr.CacheStats = d.ctrl.Cache().Stats
		dr.Compaction = d.ctrl.Compaction
		if logs := d.ctrl.Logs(); logs[0] != nil {
			dr.LogIndexPeak = logs[0].Stats().PeakIndex + logs[1].Stats().PeakIndex
		}
		dr.FlashUtilization = d.arr.Utilization()
		utilSum += dr.FlashUtilization
		if d.port != nil {
			dr.Port = d.port.Stats()
		}
		if s.placer != nil {
			dr.Pages = s.placer.Pages(i)
			dr.Inbound = s.placer.Inbound(i)
		}

		addFlashTraffic(&r.Traffic, &dr.Traffic)
		r.FTLStats.UserPrograms += dfs.UserPrograms
		r.FTLStats.GCPrograms += dfs.GCPrograms
		r.FTLStats.GCReads += dfs.GCReads
		r.FTLStats.Erases += dfs.Erases
		r.FTLStats.GCInvocations += dfs.GCInvocations
		r.FlashStats.Reads += dr.FlashStats.Reads
		r.FlashStats.Programs += dr.FlashStats.Programs
		r.FlashStats.Erases += dr.FlashStats.Erases
		r.FlashStats.BusyTime += dr.FlashStats.BusyTime
		r.CacheStats.Hits += dr.CacheStats.Hits
		r.CacheStats.Misses += dr.CacheStats.Misses
		r.CacheStats.Inserts += dr.CacheStats.Inserts
		r.CacheStats.Evictions += dr.CacheStats.Evictions
		r.CacheStats.DirtyEvs += dr.CacheStats.DirtyEvs
		r.Compaction.Count += dr.Compaction.Count
		r.Compaction.TotalTime += dr.Compaction.TotalTime
		r.Compaction.Pages += dr.Compaction.Pages
		r.LogIndexPeak += dr.LogIndexPeak
	}
	r.LinkStats = s.link.Stats()
	if secs := s.lastDone.Seconds(); secs > 0 {
		r.SSDBandwidthBps = float64(r.LinkStats.ToDeviceBytes+r.LinkStats.ToHostBytes) / secs
	}
	r.FlashUtilization = utilSum / float64(len(s.devs))
	if s.cfg.TrackLocality {
		r.ReadLocality = s.ctrl.Cache().ReadLocality.CDF()
		r.WriteLocality = s.ctrl.WriteLocality.CDF()
	}
	// The per-device section appears only when the config engaged the
	// fleet layer (Devices >= 1); legacy configs keep the pre-fleet
	// Result shape byte for byte.
	if s.cfg.Devices > 0 {
		r.Devices = devResults
		if s.placer != nil {
			r.Placement = string(s.placer.Policy())
			r.FleetMigrations = s.placer.Migrations()
		} else {
			r.Placement = string(fleet.Striped)
		}
	}
	s.collectTenants(r)
	s.collectOpenLoop(r)
	if s.tel != nil {
		r.Telemetry = s.tel.Snapshot()
	}
	return r
}

// collectOpenLoop assembles the per-SLO-class section of an
// arrival-driven run.
func (s *System) collectOpenLoop(r *Result) {
	if len(s.sloInfo) == 0 {
		return
	}
	ol := &OpenLoopResult{Classes: make([]SLOClassResult, len(s.sloInfo)), Total: s.openTotal}
	for i, info := range s.sloInfo {
		ol.Classes[i] = SLOClassResult{Name: info.Name, OfferedRPS: info.OfferedRPS, Stats: s.sloStats[i]}
	}
	r.OpenLoop = ol
}

// collectTenants assembles the per-tenant Result slice of a declared
// multi-tenant run from the per-thread scheduler accounting, the
// per-tenant request-path accumulators, and the controller's tenant
// write accounting.
// addFlashTraffic accumulates one device's merged flash traffic into
// the fleet total, field by field.
func addFlashTraffic(dst, src *stats.FlashTraffic) {
	dst.HostReads += src.HostReads
	dst.PrefetchReads += src.PrefetchReads
	dst.CompactReads += src.CompactReads
	dst.GCReads += src.GCReads
	dst.HostPrograms += src.HostPrograms
	dst.CompactWrites += src.CompactWrites
	dst.GCPrograms += src.GCPrograms
	dst.DemoteWrites += src.DemoteWrites
	dst.Erases += src.Erases
	dst.GCInvocations += src.GCInvocations
	dst.LinesAbsorbed += src.LinesAbsorbed
	dst.LinesCoalesced += src.LinesCoalesced
}

func (s *System) collectTenants(r *Result) {
	if len(s.tenantInfo) == 0 {
		return
	}
	// Per-tenant write-log accounting sums elementwise across the fleet:
	// a tenant's lines may land on any device its pages map to.
	tlog := s.ctrl.TenantLog()
	for _, d := range s.devs[1:] {
		for i, tl := range d.ctrl.TenantLog() {
			for i >= len(tlog) {
				tlog = append(tlog, core.TenantLogStats{})
			}
			tlog[i].LinesAbsorbed += tl.LinesAbsorbed
			tlog[i].StalledWrites += tl.StalledWrites
			tlog[i].RMWFetches += tl.RMWFetches
		}
	}
	r.Tenants = make([]TenantResult, len(s.tenantInfo))
	for i, info := range s.tenantInfo {
		tr := &r.Tenants[i]
		tr.Name, tr.Workload, tr.Threads = info.Name, info.Workload, info.Threads
		tr.ExecTime = s.tenantDone[i]
		tr.Breakdown = s.tenantBreak[i]
		tr.AMAT = s.tenantAMAT[i]
		tr.ReadLat = s.tenantReadLat[i]
		tr.HintsSent = s.tenantHints[i]
		if i < len(tlog) {
			tr.Log = tlog[i]
		}
	}
	for _, t := range s.threads {
		tr := &r.Tenants[t.Tenant]
		tr.Instructions += t.Progress
		tr.Bound.Add(t.Bound)
		tr.CtxSwitches += t.Switches
		tr.HintSwitches += t.HintSwitches
		tr.Enqueues += t.Enqueues
		tr.LLCMisses += t.LLCMisses
	}
	for i := range r.Tenants {
		if tr := &r.Tenants[i]; tr.Instructions > 0 {
			tr.MPKI = float64(tr.LLCMisses) / float64(tr.Instructions) * 1000
		}
	}
}

var _ cpu.Backend = (*System)(nil)
