package system

import (
	"skybyte/internal/core"
	"skybyte/internal/cpu"
	"skybyte/internal/cxl"
	"skybyte/internal/flash"
	"skybyte/internal/ftl"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/telemetry"
)

// Result carries every measurement the evaluation consumes.
type Result struct {
	Variant string

	// CacheKey is the stable identity of the design point that produced
	// this result (workload|variant|budget|threads|tag). The runner sets
	// it when it executes a spec; a given key always maps to the same
	// measurements because simulations are deterministic, which is what
	// makes memoizing and de-duplicating runs by key sound.
	CacheKey string

	// ExecTime is when the last thread retired its final instruction.
	ExecTime sim.Time
	// Instructions is the total retired (each thread's trace length).
	Instructions uint64

	Bound     stats.Boundedness      // Figs. 4 and 10
	Breakdown stats.RequestBreakdown // Fig. 16
	AMAT      stats.AMAT             // Fig. 17
	ReadLat   stats.LatencyHist      // Fig. 3
	FlashLat  stats.LatencyHist      // Table III

	Traffic    stats.FlashTraffic // Figs. 18 and 20 (controller + GC merged)
	FTLStats   ftl.Stats
	FlashStats flash.Stats
	LinkStats  cxl.Stats
	CacheStats core.PageCacheStats
	Compaction core.CompactionStats

	CtxSwitches  uint64 // all context switches performed by cores
	HintSwitches uint64 // those caused by SkyByte-Delay
	HintsSent    uint64 // NDR SkyByte-Delay messages from the device
	Migration    MigrationStats

	LLCMisses        uint64
	MPKI             float64 // LLC misses per kilo-instruction
	LogIndexPeak     int     // peak write-log index footprint, bytes
	SSDBandwidthBps  float64 // delivered CXL link goodput
	FlashUtilization float64

	// Locality CDFs (Figs. 5–6) when TrackLocality was on.
	ReadLocality  []stats.CDFPoint
	WriteLocality []stats.CDFPoint

	// Tenants carries the per-tenant accounting of a multi-tenant run
	// (DeclareTenants), in tenant declaration order; nil for solo runs.
	// Each tenant's counters are exact splits of the whole-system
	// measurements above: instructions, boundedness, request classes,
	// context switches, LLC misses, and write-log activity all sum to
	// the system totals (TestTenantStatsSumToSystemTotals).
	Tenants []TenantResult `json:",omitempty"`

	// OpenLoop carries the per-SLO-class request accounting of an
	// arrival-driven run (DeclareSLOClasses + AttachGate); nil for
	// closed-loop runs. Class splits merge exactly into Total
	// (TestOpenLoopClassesSumToTotal).
	OpenLoop *OpenLoopResult `json:",omitempty"`

	// Telemetry carries the sampled probe time-series (and, for
	// timeline runs, the request-lifecycle spans) of a run with
	// Config.TelemetryCadence set; nil otherwise. Sampling is driven by
	// the deterministic event engine, so the section is byte-identical
	// at any parallelism and flows through the result store like every
	// other measurement.
	Telemetry *telemetry.Snapshot `json:",omitempty"`
}

// OpenLoopResult is the open-loop section of a Result: one entry per
// declared SLO class plus the all-classes total.
type OpenLoopResult struct {
	Classes []SLOClassResult
	Total   stats.OpenStats
}

// SLOClassResult is one SLO class's measurements: the offered load the
// arrival spec computed for it and the admitted/completed counts with
// sojourn-latency and queue-delay histograms.
type SLOClassResult struct {
	Name       string
	OfferedRPS float64
	Stats      stats.OpenStats
}

// TenantResult is one tenant group's share of a mixed run: the same
// measurement vocabulary as the whole-system Result, restricted to the
// threads (and their memory requests) of one tenant.
type TenantResult struct {
	// Name and Workload identify the tenant group and what it ran.
	Name     string
	Workload string
	// Threads is the group's software thread count.
	Threads int

	// Instructions is the group's total retired instruction count.
	Instructions uint64
	// ExecTime is when the group's last thread retired — the tenant's
	// completion time, the basis of per-tenant slowdown.
	ExecTime sim.Time

	Bound     stats.Boundedness      // where this tenant's core time went
	Breakdown stats.RequestBreakdown // the tenant's off-chip request classes
	AMAT      stats.AMAT             // the tenant's demand-access components
	ReadLat   stats.LatencyHist      // the tenant's off-chip read latencies

	CtxSwitches  uint64 // context switches the tenant's threads experienced
	HintSwitches uint64 // those triggered by SkyByte-Delay exceptions
	HintsSent    uint64 // NDR SkyByte-Delay messages for the tenant's reads
	Enqueues     uint64 // run-queue insertions of the tenant's threads
	LLCMisses    uint64
	MPKI         float64

	// Log splits the write path by tenant: who fills the write log
	// (forcing the compaction drains everyone shares) and who eats
	// backpressure stalls.
	Log core.TenantLogStats
}

// IPS returns the tenant's retired instructions per second of simulated
// time (its progress rate while co-located).
func (t *TenantResult) IPS() float64 {
	secs := t.ExecTime.Seconds()
	if secs == 0 {
		return 0
	}
	return float64(t.Instructions) / secs
}

// IPS returns retired instructions per second of simulated time.
func (r *Result) IPS() float64 {
	secs := r.ExecTime.Seconds()
	if secs == 0 {
		return 0
	}
	return float64(r.Instructions) / secs
}

// Speedup returns base.ExecTime / r.ExecTime.
func (r *Result) Speedup(base *Result) float64 {
	if r.ExecTime == 0 {
		return 0
	}
	return float64(base.ExecTime) / float64(r.ExecTime)
}

func (s *System) collect() *Result {
	r := &Result{Variant: s.cfg.Name, ExecTime: s.lastDone}
	var instr uint64
	for _, t := range s.threads {
		instr += t.Progress
	}
	r.Instructions = instr

	for _, c := range s.cores {
		r.Bound.Add(c.Stats.Bound)
		r.CtxSwitches += c.Stats.Switches
		r.HintSwitches += c.Stats.HintSwitches
		r.LLCMisses += c.Stats.LLCMisses
	}
	if instr > 0 {
		r.MPKI = float64(r.LLCMisses) / float64(instr) * 1000
	}

	r.Breakdown = s.breakdown
	r.AMAT = s.amat
	r.ReadLat = s.readLat
	r.FlashLat = s.flashLat
	r.HintsSent = s.hints
	r.Migration = s.migr

	r.Traffic = s.ctrl.Traffic
	fs := s.fl.Stats()
	r.Traffic.GCReads = fs.GCReads
	r.Traffic.GCPrograms = fs.GCPrograms
	r.Traffic.Erases = fs.Erases
	r.Traffic.GCInvocations = fs.GCInvocations
	r.FTLStats = fs
	r.FlashStats = s.arr.Stats()
	r.LinkStats = s.link.Stats()
	r.CacheStats = s.ctrl.Cache().Stats
	r.Compaction = s.ctrl.Compaction
	if logs := s.ctrl.Logs(); logs[0] != nil {
		r.LogIndexPeak = logs[0].Stats().PeakIndex + logs[1].Stats().PeakIndex
	}
	if secs := s.lastDone.Seconds(); secs > 0 {
		r.SSDBandwidthBps = float64(r.LinkStats.ToDeviceBytes+r.LinkStats.ToHostBytes) / secs
	}
	r.FlashUtilization = s.arr.Utilization()
	if s.cfg.TrackLocality {
		r.ReadLocality = s.ctrl.Cache().ReadLocality.CDF()
		r.WriteLocality = s.ctrl.WriteLocality.CDF()
	}
	s.collectTenants(r)
	s.collectOpenLoop(r)
	if s.tel != nil {
		r.Telemetry = s.tel.Snapshot()
	}
	return r
}

// collectOpenLoop assembles the per-SLO-class section of an
// arrival-driven run.
func (s *System) collectOpenLoop(r *Result) {
	if len(s.sloInfo) == 0 {
		return
	}
	ol := &OpenLoopResult{Classes: make([]SLOClassResult, len(s.sloInfo)), Total: s.openTotal}
	for i, info := range s.sloInfo {
		ol.Classes[i] = SLOClassResult{Name: info.Name, OfferedRPS: info.OfferedRPS, Stats: s.sloStats[i]}
	}
	r.OpenLoop = ol
}

// collectTenants assembles the per-tenant Result slice of a declared
// multi-tenant run from the per-thread scheduler accounting, the
// per-tenant request-path accumulators, and the controller's tenant
// write accounting.
func (s *System) collectTenants(r *Result) {
	if len(s.tenantInfo) == 0 {
		return
	}
	tlog := s.ctrl.TenantLog()
	r.Tenants = make([]TenantResult, len(s.tenantInfo))
	for i, info := range s.tenantInfo {
		tr := &r.Tenants[i]
		tr.Name, tr.Workload, tr.Threads = info.Name, info.Workload, info.Threads
		tr.ExecTime = s.tenantDone[i]
		tr.Breakdown = s.tenantBreak[i]
		tr.AMAT = s.tenantAMAT[i]
		tr.ReadLat = s.tenantReadLat[i]
		tr.HintsSent = s.tenantHints[i]
		if i < len(tlog) {
			tr.Log = tlog[i]
		}
	}
	for _, t := range s.threads {
		tr := &r.Tenants[t.Tenant]
		tr.Instructions += t.Progress
		tr.Bound.Add(t.Bound)
		tr.CtxSwitches += t.Switches
		tr.HintSwitches += t.HintSwitches
		tr.Enqueues += t.Enqueues
		tr.LLCMisses += t.LLCMisses
	}
	for i := range r.Tenants {
		if tr := &r.Tenants[i]; tr.Instructions > 0 {
			tr.MPKI = float64(tr.LLCMisses) / float64(tr.Instructions) * 1000
		}
	}
}

var _ cpu.Backend = (*System)(nil)
