package system

import (
	"fmt"

	"skybyte/internal/core"
	"skybyte/internal/sim"
	"skybyte/internal/telemetry"
)

// setupTelemetry registers every probe and hook of a telemetry-enabled
// run, then starts the sampler. It runs once, from Run, after the full
// wiring (tenants, SLO classes, gates) is known; registration order is
// fixed — component probes, then tenants in declaration order, then
// SLO classes in declaration order — so the snapshot's series order is
// identical in every run of the same spec.
func (s *System) setupTelemetry() {
	tel := s.tel

	// Fleet runs average write-log occupancy across every device's log
	// pair; a fleet of one reduces to the original single-device series,
	// value for value.
	if logs := s.ctrl.Logs(); logs[0] != nil {
		devs := s.devs
		tel.Register("writelog.occupancy", func() float64 {
			var sum float64
			for _, d := range devs {
				l := d.ctrl.Logs()
				sum += (l[0].Occupancy() + l[1].Occupancy()) / 2
			}
			return sum / float64(len(devs))
		})
	}
	// Hit ratios are windowed: each sample differences the cumulative
	// counters against the previous tick, so the series shows the ratio
	// of that cadence window, not the run-to-date average.
	pc := s.ctrl.Cache()
	var pcHits, pcAcc uint64
	tel.Register("pagecache.hit_ratio", func() float64 {
		st := pc.Stats
		hits, acc := st.Hits, st.Hits+st.Misses
		dh, da := hits-pcHits, acc-pcAcc
		pcHits, pcAcc = hits, acc
		if da == 0 {
			return 0
		}
		return float64(dh) / float64(da)
	})
	var llcHits, llcAcc uint64
	tel.Register("llc.hit_ratio", func() float64 {
		st := s.llc.Stats
		dh, da := st.Hits-llcHits, st.Accesses()-llcAcc
		llcHits, llcAcc = st.Hits, st.Accesses()
		if da == 0 {
			return 0
		}
		return float64(dh) / float64(da)
	})
	tel.Register("cxl.tx_backlog_us", func() float64 {
		return float64(s.link.TxBacklog(s.Eng.Now())) / float64(sim.Microsecond)
	})
	tel.Register("cxl.rx_backlog_us", func() float64 {
		return float64(s.link.RxBacklog(s.Eng.Now())) / float64(sim.Microsecond)
	})
	tel.Register("flash.queued_ops", func() float64 {
		var n int
		for _, d := range s.devs {
			n += d.arr.QueuedOps()
		}
		return float64(n)
	})
	// Per-device fleet probes: each backend's flash queue depth and
	// downstream-port backlog, the series that show the link-vs-flash
	// bottleneck crossover as K grows. Registered only when ports exist
	// (Devices >= 2), so single-device snapshots keep their exact
	// pre-fleet series set.
	if s.placer != nil {
		for i, d := range s.devs {
			d := d
			tel.Register(fmt.Sprintf("device.%d.flash_queued_ops", i), func() float64 {
				return float64(d.arr.QueuedOps())
			})
			tel.Register(fmt.Sprintf("device.%d.port_tx_backlog_us", i), func() float64 {
				return float64(d.port.TxBacklog(s.Eng.Now())) / float64(sim.Microsecond)
			})
			tel.Register(fmt.Sprintf("device.%d.port_rx_backlog_us", i), func() float64 {
				return float64(d.port.RxBacklog(s.Eng.Now())) / float64(sim.Microsecond)
			})
		}
	}
	tel.Register("sched.runnable", func() float64 {
		return float64(s.sched.Runnable())
	})
	tel.Register("sched.idle_cores", func() float64 {
		return float64(s.sched.Waiting())
	})

	// Per-tenant in-flight backend requests (reads and writebacks
	// between backend entry and completion); solo runs count as one
	// tenant group 0.
	n := len(s.tenantInfo)
	if n == 0 {
		n = 1
	}
	s.telInflight = make([]int, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("tenant.%d.inflight", i)
		if i < len(s.tenantInfo) {
			name = "tenant." + s.tenantInfo[i].Name + ".inflight"
		}
		i := i
		tel.Register(name, func() float64 { return float64(s.telInflight[i]) })
	}

	// Per-SLO-class in-flight requests and windowed p99 sojourn
	// latency (the p99 of requests completed within each cadence
	// window — the probe drains the window histogram as it samples).
	for i, info := range s.sloInfo {
		tr := s.classTracks[i]
		tel.Register("class."+info.Name+".inflight", func() float64 {
			return float64(tr.Inflight)
		})
		tel.Register("class."+info.Name+".p99_us", func() float64 {
			return tr.WindowedPercentileUS(99)
		})
	}

	if s.telSpans != nil {
		s.telCtxEnd = make([]sim.Time, len(s.cores))
		for _, c := range s.cores {
			c.OnCtxSwitch = s.telCtxSwitch
		}
	}
	tel.Start()
}

// telCtxSwitch records one coordinated context switch as a span of
// SwitchCost on the core's timeline track. Back-to-back switches whose
// charged cost has not elapsed yet are serialized so spans on one
// track never partially overlap.
func (s *System) telCtxSwitch(coreID int, at sim.Time) {
	if at < s.telCtxEnd[coreID] {
		at = s.telCtxEnd[coreID]
	}
	end := at + s.sched.SwitchCost
	s.telCtxEnd[coreID] = end
	s.telSpans.Add("ctx-switch", "core", telemetry.CorePID, int32(coreID), at, end)
}

// telReadSpan records one completed off-chip read as a parent span
// with sequential component segments (CXL protocol, log-index lookup,
// SSD-DRAM service, flash service). Concurrent reads are slotted onto
// distinct timeline tids — a slot is reusable once its previous span
// has ended — so spans within a track always nest or stay disjoint.
func (s *System) telReadSpan(t0, lat sim.Time, m *core.ReadMeta) {
	end := t0 + lat
	slot := -1
	for i, busy := range s.telReadSlots {
		if busy <= t0 {
			slot = i
			break
		}
	}
	if slot == -1 {
		slot = len(s.telReadSlots)
		s.telReadSlots = append(s.telReadSlots, 0)
	}
	s.telReadSlots[slot] = end
	tid := int32(slot)
	sp := s.telSpans
	sp.Add("read", "memory", telemetry.MemoryPID, tid, t0, end)
	proto := lat - m.Index - m.SSDDRAM - m.Flash
	if proto < 0 {
		proto = 0
	}
	t := t0
	for _, seg := range [...]struct {
		name string
		d    sim.Time
	}{{"cxl", proto}, {"log-index", m.Index}, {"ssd-dram", m.SSDDRAM}, {"flash", m.Flash}} {
		if seg.d <= 0 {
			continue
		}
		segEnd := t + seg.d
		if segEnd > end {
			segEnd = end
		}
		if segEnd > t {
			sp.Add(seg.name, "memory", telemetry.MemoryPID, tid, t, segEnd)
		}
		t = segEnd
	}
}
