package system

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// ResultCodecVersion names the serialized Result layout. Bump it
// whenever Result (or any type it embeds) changes shape or meaning;
// the persistent store folds the version into its content address, so
// entries written under an older codec simply miss and re-simulate —
// they can never decode into a wrong table.
//
// v2: Result gained the per-tenant Tenants slice (multi-tenant runs).
// v3: Result gained the per-SLO-class OpenLoop section (arrival-driven
// open-loop runs).
// v4: Result gained the Telemetry section (probe time-series and
// request-lifecycle spans of telemetry-enabled runs).
// v5: Result gained the per-device Devices section with Placement and
// FleetMigrations (fleet runs, DESIGN.md §9).
const ResultCodecVersion = 5

// EncodeResult serializes r canonically: the same measurements always
// produce the same bytes (struct fields encode in declaration order,
// map-backed histograms sort their keys). The persistent store hashes
// these bytes for integrity checking.
func EncodeResult(r *Result) ([]byte, error) {
	return json.Marshal(r)
}

// DecodeResult reverses EncodeResult. Unknown fields are rejected so a
// payload from a different (newer) layout fails loudly instead of
// decoding a partial Result.
func DecodeResult(data []byte) (*Result, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	r := new(Result)
	if err := dec.Decode(r); err != nil {
		return nil, fmt.Errorf("system: decode result: %w", err)
	}
	return r, nil
}

// Fingerprint returns a stable hex digest of the resolved configuration.
// Two configs with equal fingerprints produce identical simulations for
// any given spec, which is what lets a persistent result store fold the
// fingerprint into its keys: results cached under one machine
// configuration are invisible to every other.
func (c Config) Fingerprint() string {
	// Config is a pure value (no pointers, funcs, or unexported state),
	// so its canonical JSON is a faithful identity.
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("system: config not fingerprintable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
