package system

import (
	"testing"

	"skybyte/internal/trace"
)

// fleetConfigOf is the scaled machine with a fleet section attached.
func fleetConfigOf(v Variant, devices int, placement string) Config {
	cfg := ScaledConfig().WithVariant(v)
	cfg.Devices = devices
	cfg.Placement = placement
	return cfg
}

func runFleet(t *testing.T, cfg Config, threads int, perThread uint64, stream func(i int) trace.Stream) *Result {
	t.Helper()
	s := New(cfg)
	for i := 0; i < threads; i++ {
		s.AddThread(stream(i), perThread)
	}
	r := s.Run()
	if r.Instructions < perThread*uint64(threads) {
		t.Fatalf("retired %d, want >= %d", r.Instructions, perThread*uint64(threads))
	}
	return r
}

// TestFleetDeviceSplitsSumToTotals is the fleet accounting contract
// (DESIGN.md §9): every summable counter in the per-device section adds
// up exactly to the run's fleet totals — reads, programs, erases, the
// FTL and cache counters, and the owned-page/inbound placement tallies.
func TestFleetDeviceSplitsSumToTotals(t *testing.T) {
	mk := func(i int) trace.Stream { return scatterStream(uint64(i)+1, 32768, 0.3, 16) }
	for _, tc := range []struct {
		devices   int
		placement string
	}{{2, "striped"}, {4, "striped"}, {4, "capacity"}, {4, "hotcold"}, {8, ""}} {
		res := runFleet(t, fleetConfigOf(SkyByteFull, tc.devices, tc.placement), 8, 12000, mk)
		if len(res.Devices) != tc.devices {
			t.Fatalf("k=%d/%s: %d device rows", tc.devices, tc.placement, len(res.Devices))
		}
		wantPolicy := tc.placement
		if wantPolicy == "" {
			wantPolicy = "striped"
		}
		if res.Placement != wantPolicy {
			t.Fatalf("k=%d/%s: Placement = %q", tc.devices, tc.placement, res.Placement)
		}
		var reads, programs, erases, userProg, gcProg, hits, misses uint64
		var busy int64
		for _, d := range res.Devices {
			reads += d.Traffic.TotalReads()
			programs += d.Traffic.TotalPrograms()
			erases += d.FlashStats.Erases
			userProg += d.FTLStats.UserPrograms
			gcProg += d.FTLStats.GCPrograms
			hits += d.CacheStats.Hits
			misses += d.CacheStats.Misses
			busy += int64(d.FlashStats.BusyTime)
		}
		if reads != res.Traffic.TotalReads() || programs != res.Traffic.TotalPrograms() {
			t.Errorf("k=%d/%s: device traffic %d/%d != totals %d/%d",
				tc.devices, tc.placement, reads, programs, res.Traffic.TotalReads(), res.Traffic.TotalPrograms())
		}
		if erases != res.FlashStats.Erases || busy != int64(res.FlashStats.BusyTime) {
			t.Errorf("k=%d/%s: flash splits do not reconcile", tc.devices, tc.placement)
		}
		if userProg != res.FTLStats.UserPrograms || gcProg != res.FTLStats.GCPrograms {
			t.Errorf("k=%d/%s: FTL splits do not reconcile", tc.devices, tc.placement)
		}
		if hits != res.CacheStats.Hits || misses != res.CacheStats.Misses {
			t.Errorf("k=%d/%s: cache splits do not reconcile", tc.devices, tc.placement)
		}
		// Placement actually spread work: more than one device owns pages
		// (hotcold concentrates flash traffic but still stripes cold pages).
		owners := 0
		for _, d := range res.Devices {
			if d.Pages > 0 {
				owners++
			}
		}
		if owners < 2 {
			t.Errorf("k=%d/%s: only %d device(s) own pages", tc.devices, tc.placement, owners)
		}
	}
}

// TestFleetOfOneMatchesLegacy pins the fleet-of-one contract: Devices=1
// is the same machine as the legacy Devices=0 config — identical timing
// and traffic — plus a one-row per-device section.
func TestFleetOfOneMatchesLegacy(t *testing.T) {
	mk := func(i int) trace.Stream { return synthStream(uint64(i)+1, 8192, 0.3, 32) }
	legacy := runFleet(t, fleetConfigOf(SkyByteFull, 0, ""), 4, 10000, mk)
	one := runFleet(t, fleetConfigOf(SkyByteFull, 1, ""), 4, 10000, mk)
	if legacy.Devices != nil {
		t.Fatalf("legacy config grew a Devices section: %+v", legacy.Devices)
	}
	if len(one.Devices) != 1 || one.Placement != "striped" {
		t.Fatalf("fleet-of-one section = %d rows, placement %q", len(one.Devices), one.Placement)
	}
	if legacy.ExecTime != one.ExecTime || legacy.Instructions != one.Instructions {
		t.Fatalf("fleet-of-one diverged from legacy: exec %v vs %v", one.ExecTime, legacy.ExecTime)
	}
	if legacy.Traffic != one.Traffic {
		t.Fatalf("fleet-of-one flash traffic diverged: %+v vs %+v", one.Traffic, legacy.Traffic)
	}
	d := one.Devices[0]
	if d.Traffic != one.Traffic || d.FlashStats != one.FlashStats {
		t.Fatal("fleet-of-one device row does not equal the totals")
	}
}

// TestFleetDeterminism pins byte-identical fleet results: two fresh
// systems under the same config and streams encode identically,
// per-device section included.
func TestFleetDeterminism(t *testing.T) {
	mk := func(i int) trace.Stream { return scatterStream(uint64(i)+1, 16384, 0.3, 16) }
	run := func() *Result { return runFleet(t, fleetConfigOf(SkyByteFull, 4, "hotcold"), 8, 8000, mk) }
	a, err := EncodeResult(run())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeResult(run())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("identical fleet runs encoded differently")
	}
}

// TestFleetHotColdMigrates drives a tiny hot set through the hotcold
// policy: the hot pages must cross into the hot tier (FleetMigrations
// > 0) and the run must stay fully accounted afterwards.
func TestFleetHotColdMigrates(t *testing.T) {
	mk := func(i int) trace.Stream { return hotStream(uint64(i)+1, 24) }
	res := runFleet(t, fleetConfigOf(BaseCSSD, 4, "hotcold"), 4, 8000, mk)
	if res.FleetMigrations == 0 {
		t.Fatal("hot pages never migrated to the hot tier")
	}
	var reads uint64
	for _, d := range res.Devices {
		reads += d.Traffic.TotalReads()
	}
	if reads != res.Traffic.TotalReads() {
		t.Fatalf("splits do not reconcile after migration: %d vs %d", reads, res.Traffic.TotalReads())
	}
}

// TestFleetInvalidConfigPanics: a malformed fleet section must fail
// loudly at construction, not place pages arbitrarily.
func TestFleetInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		fleetConfigOf(BaseCSSD, 99, ""),
		fleetConfigOf(BaseCSSD, 4, "nope"),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New accepted devices=%d placement=%q", cfg.Devices, cfg.Placement)
				}
			}()
			New(cfg)
		}()
	}
}
