package system

import (
	"bytes"
	"reflect"
	"testing"
)

// collectedResult runs a small full-system simulation so the codec is
// exercised against a Result with every field family populated the way
// real campaigns populate them (histograms, traffic, locality CDFs).
func collectedResult(t *testing.T, v Variant) *Result {
	t.Helper()
	cfg := ScaledConfig().WithVariant(v)
	cfg.TrackLocality = true
	sys := New(cfg)
	for i := 0; i < 4; i++ {
		sys.AddThread(synthStream(uint64(i+1), 2048, 0.3, 8), 6000)
	}
	res := sys.Run()
	res.CacheKey = "codec-test|" + string(v)
	return res
}

func TestResultCodecRoundTrip(t *testing.T) {
	for _, v := range []Variant{BaseCSSD, SkyByteFull} {
		res := collectedResult(t, v)
		data, err := EncodeResult(res)
		if err != nil {
			t.Fatalf("%s: encode: %v", v, err)
		}
		got, err := DecodeResult(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", v, err)
		}
		if !reflect.DeepEqual(res, got) {
			t.Errorf("%s: result did not round-trip", v)
		}
		if got.ReadLat.Percentile(99) != res.ReadLat.Percentile(99) ||
			got.ReadLat.Mean() != res.ReadLat.Mean() {
			t.Errorf("%s: latency histogram queries diverge after round-trip", v)
		}
	}
}

// TestResultCodecCanonical pins the property the content-addressed
// store hashes rely on: encoding is a pure function of the
// measurements, so encode(decode(encode(r))) == encode(r).
func TestResultCodecCanonical(t *testing.T) {
	res := collectedResult(t, SkyByteFull)
	a, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of one result differ")
	}
	dec, err := DecodeResult(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := EncodeResult(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("re-encoding a decoded result changed the bytes")
	}
}

// TestFleetResultCodecRoundTrip exercises codec v5's per-device
// section: a fleet run's Devices rows, Placement, and FleetMigrations
// survive encode/decode exactly, and re-encoding keeps the bytes (the
// property the store's content addressing hashes rely on).
func TestFleetResultCodecRoundTrip(t *testing.T) {
	cfg := ScaledConfig().WithVariant(SkyByteFull)
	cfg.Devices = 4
	cfg.Placement = "hotcold"
	sys := New(cfg)
	for i := 0; i < 4; i++ {
		sys.AddThread(scatterStream(uint64(i+1), 8192, 0.3, 8), 6000)
	}
	res := sys.Run()
	if len(res.Devices) != 4 {
		t.Fatalf("fleet run carries %d device rows", len(res.Devices))
	}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, got) {
		t.Error("fleet result did not round-trip")
	}
	again, err := EncodeResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("re-encoding a decoded fleet result changed the bytes")
	}
}

func TestDecodeResultRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "{", `{"Variant":1}`, `{"NoSuchField":true}`} {
		if _, err := DecodeResult([]byte(bad)); err == nil {
			t.Errorf("DecodeResult(%q) accepted garbage", bad)
		}
	}
}

func TestConfigFingerprint(t *testing.T) {
	base := ScaledConfig()
	if base.Fingerprint() != ScaledConfig().Fingerprint() {
		t.Fatal("identical configs fingerprint differently")
	}
	seen := map[string]Variant{}
	for _, v := range KnownVariants {
		fp := base.WithVariant(v).Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variants %s and %s share a fingerprint", prev, v)
		}
		seen[fp] = v
	}
	tweaked := base
	tweaked.WriteLogBytes *= 2
	if tweaked.Fingerprint() == base.Fingerprint() {
		t.Error("changing WriteLogBytes did not change the fingerprint")
	}
	if PaperConfig().Fingerprint() == base.Fingerprint() {
		t.Error("PaperConfig and ScaledConfig share a fingerprint")
	}
}

func TestParseVariant(t *testing.T) {
	v, err := ParseVariant("SkyByte-Full")
	if err != nil || v != SkyByteFull {
		t.Fatalf("ParseVariant(SkyByte-Full) = %v, %v", v, err)
	}
	if _, err := ParseVariant("SkyByte-Bogus"); err == nil {
		t.Fatal("unknown variant accepted")
	}
	for _, v := range KnownVariants {
		ScaledConfig().WithVariant(v) // must not panic: parse set == accept set
	}
}
