// Package system assembles the full simulated machine: multi-core CPU with
// its cache hierarchy, the OS scheduler, the CXL.mem link, host DRAM, and
// the SkyByte SSD controller over flash+FTL. It implements the design
// variants of the paper's evaluation (§VI-A and §VI-H) as configuration
// presets and produces the measurements every figure and table consumes.
package system

import (
	"fmt"
	"strings"

	"skybyte/internal/core"
	"skybyte/internal/cpu"
	"skybyte/internal/cxl"
	"skybyte/internal/dram"
	"skybyte/internal/flash"
	"skybyte/internal/fleet"
	"skybyte/internal/ftl"
	"skybyte/internal/mem"
	"skybyte/internal/osched"
	"skybyte/internal/sim"
)

// Variant names a design point from the paper's evaluation.
type Variant string

// The design points of Figs. 14 and 23.
const (
	DRAMOnly      Variant = "DRAM-Only"
	BaseCSSD      Variant = "Base-CSSD"
	SkyByteC      Variant = "SkyByte-C"
	SkyByteP      Variant = "SkyByte-P"
	SkyByteW      Variant = "SkyByte-W"
	SkyByteCP     Variant = "SkyByte-CP"
	SkyByteWP     Variant = "SkyByte-WP"
	SkyByteFull   Variant = "SkyByte-Full"
	SkyByteCT     Variant = "SkyByte-CT"
	SkyByteWCT    Variant = "SkyByte-WCT"
	AstriFlashCXL Variant = "AstriFlash-CXL"
)

// AllVariants lists the Fig. 14 comparison set in the paper's order.
var AllVariants = []Variant{BaseCSSD, SkyByteP, SkyByteC, SkyByteW, SkyByteCP, SkyByteWP, SkyByteFull, DRAMOnly}

// KnownVariants lists every design point WithVariant accepts, in the
// order the paper introduces them.
var KnownVariants = []Variant{
	DRAMOnly, BaseCSSD, SkyByteC, SkyByteP, SkyByteW, SkyByteCP,
	SkyByteWP, SkyByteFull, SkyByteCT, SkyByteWCT, AstriFlashCXL,
}

// ParseVariant resolves a variant name, rejecting unknown names with an
// error that lists the valid set — use it to validate CLI input before
// WithVariant, which panics on unknown variants.
func ParseVariant(name string) (Variant, error) {
	for _, v := range KnownVariants {
		if string(v) == name {
			return v, nil
		}
	}
	return "", fmt.Errorf("system: unknown variant %q (valid: %s)", name, strings.Join(VariantNames(), ", "))
}

// VariantNames returns the names of every known variant.
func VariantNames() []string {
	names := make([]string, len(KnownVariants))
	for i, v := range KnownVariants {
		names[i] = string(v)
	}
	return names
}

// MigrationMode selects the host-side page-management mechanism.
type MigrationMode string

// Migration mechanisms of §III-C and §VI-H.
const (
	MigrationNone     MigrationMode = "none"
	MigrationAdaptive MigrationMode = "adaptive" // SkyByte §III-C
	MigrationTPP      MigrationMode = "tpp"      // TPP-style sampling
	MigrationAstri    MigrationMode = "astri"    // AstriFlash host page cache
)

// Config is the full-system configuration (Table II plus the artifact's
// knobs). Start from ScaledConfig or PaperConfig and apply WithVariant.
type Config struct {
	Name string

	// CPU side.
	Cores    int
	CPU      cpu.Config
	L1Bytes  int
	L1Ways   int
	L2Bytes  int
	L2Ways   int
	LLCBytes int
	LLCWays  int

	// Interconnect and memories.
	Link     cxl.Config
	HostDRAM dram.Config
	SSDDRAM  dram.Config

	// SSD.
	Geometry flash.Geometry
	Timing   flash.Timing
	FTL      ftl.Config
	// SSDDRAMBytes is the total controller DRAM (Table II: 512 MB); the
	// write log takes WriteLogBytes of it when enabled, the data cache the
	// rest.
	SSDDRAMBytes  int
	WriteLogBytes int
	CacheWays     int

	// SkyByte features (variant toggles).
	WriteLogEnabled  bool
	CtxSwitchEnabled bool
	HintThreshold    sim.Time
	PrefetchNext     bool

	// OS.
	Policy        osched.PolicyKind
	PolicySeed    uint64
	CtxSwitchCost sim.Time

	// Migration.
	Migration        MigrationMode
	PromotedMaxBytes int
	PLBEntries       int
	MigrationThresh  uint32
	MigrationMinRes  sim.Time
	HeatDecay        sim.Time
	TPPScanInterval  sim.Time
	TPPThreshold     uint32
	MSIXCost         sim.Time
	PTEUpdateCost    sim.Time
	TLBShootdown     sim.Time
	AstriSwitchCost  sim.Time
	AstriWays        int

	// Run behaviour.
	DRAMOnly           bool
	WarmupFrac         float64
	PreconditionFill   float64
	PreconditionRewrit float64
	Seed               uint64
	TrackLocality      bool

	// Fleet (DESIGN.md §9). Devices, when >= 2, wires that many
	// independent controller+FTL+flash+write-log backends behind the
	// shared CXL link, with Placement naming the fleet.Policy that maps
	// logical pages to devices ("" = striped). Zero (the default) keeps
	// the single-device machine bit-identical to pre-fleet builds;
	// Devices == 1 runs the same single-device timing but reports the
	// per-device Result section. Placement requires Devices >= 2.
	Devices   int
	Placement string

	// TelemetryCadence, when positive, samples the registered telemetry
	// probes every cadence of simulated time into Result.Telemetry.
	// Zero (the default) disables telemetry entirely: no sampler events
	// are scheduled and the request-path hooks stay nil, so the run is
	// bit-identical to one before the telemetry subsystem existed.
	TelemetryCadence sim.Time
	// TelemetryTimeline additionally records request-lifecycle and
	// context-switch spans (exportable as Chrome trace-event JSON).
	// Requires TelemetryCadence > 0; ignored otherwise.
	TelemetryTimeline bool
}

// ScaledConfig is the evaluation configuration at 1/64 of Table II's
// capacities (same ratios throughout; see DESIGN.md §1), sized so a full
// variant sweep runs in seconds.
func ScaledConfig() Config {
	return Config{
		Cores:    8,
		CPU:      cpu.DefaultConfig(),
		L1Bytes:  16 * mem.KiB,
		L1Ways:   8,
		L2Bytes:  64 * mem.KiB,
		L2Ways:   16,
		LLCBytes: 256 * mem.KiB,
		LLCWays:  16,

		Link:     cxl.DefaultConfig(),
		HostDRAM: dram.HostDDR5(),
		SSDDRAM:  dram.SSDLPDDR4(),

		// 2 GB flash: 16 channels x 4 chips x 4 dies x 8 blocks x 256
		// pages x 4 KB. Capacity scales 1/64 from Table II but the die
		// count only 1/4 (256 vs 1024), keeping per-die program pressure
		// within reach of the paper's device (see DESIGN.md §1).
		Geometry: flash.Geometry{Channels: 16, ChipsPerChan: 4, DiesPerChip: 4, PlanesPerDie: 1, BlocksPerPlane: 8, PagesPerBlock: 256},
		Timing:   flash.TimingULL,
		FTL:      ftl.Config{UsableRatio: 0.75, GCTriggerFree: 0.15, GCReplenishFree: 0.18},

		SSDDRAMBytes:  8 * mem.MiB,
		WriteLogBytes: 1 * mem.MiB,
		CacheWays:     16,

		HintThreshold: 2 * sim.Microsecond,

		Policy:        osched.PolicyCFS,
		PolicySeed:    0xC0FFEE,
		CtxSwitchCost: 2 * sim.Microsecond,

		PromotedMaxBytes: 32 * mem.MiB,
		PLBEntries:       64,
		// Hotness knobs scale with run length: the paper replays >=100M
		// instructions per thread with threshold 32; scaled campaigns run
		// tens of thousands, so pages earn promotion sooner.
		MigrationThresh: 8,
		MigrationMinRes: 5 * sim.Microsecond,
		HeatDecay:       1 * sim.Millisecond,
		TPPScanInterval: 100 * sim.Microsecond,
		TPPThreshold:    16,
		MSIXCost:        2 * sim.Microsecond,
		PTEUpdateCost:   500 * sim.Nanosecond,
		TLBShootdown:    300 * sim.Nanosecond,
		AstriSwitchCost: 500 * sim.Nanosecond,
		AstriWays:       16,

		WarmupFrac:         0.1,
		PreconditionFill:   0.85,
		PreconditionRewrit: 0.25,
		Seed:               1,
	}
}

// PaperConfig is Table II verbatim (128 GB flash, 512 MB SSD DRAM, 64 MB
// write log, 2 GB promotion budget, 16 MB LLC). Simulating at this scale is
// slow — the artifact quotes 3 days on 32 cores — so benches use
// ScaledConfig; PaperConfig exists for spot validation and documentation.
func PaperConfig() Config {
	c := ScaledConfig()
	c.L1Bytes = 32 * mem.KiB
	c.L1Ways = 8
	c.L2Bytes = 512 * mem.KiB
	c.L2Ways = 32
	c.LLCBytes = 16 * mem.MiB
	c.LLCWays = 16
	c.Geometry = flash.PaperGeometry
	c.SSDDRAMBytes = 512 * mem.MiB
	c.WriteLogBytes = 64 * mem.MiB
	c.PromotedMaxBytes = 2 * mem.GiB
	return c
}

// WithVariant applies a design point's feature toggles.
func (c Config) WithVariant(v Variant) Config {
	c.Name = string(v)
	c.DRAMOnly = false
	c.WriteLogEnabled = false
	c.CtxSwitchEnabled = false
	c.PrefetchNext = true // Base-CSSD ships with prefetching; all variants build on it
	c.Migration = MigrationNone
	switch v {
	case DRAMOnly:
		c.DRAMOnly = true
		c.PrefetchNext = false
	case BaseCSSD:
	case SkyByteC:
		c.CtxSwitchEnabled = true
	case SkyByteP:
		c.Migration = MigrationAdaptive
	case SkyByteW:
		c.WriteLogEnabled = true
	case SkyByteCP:
		c.CtxSwitchEnabled = true
		c.Migration = MigrationAdaptive
	case SkyByteWP:
		c.WriteLogEnabled = true
		c.Migration = MigrationAdaptive
	case SkyByteFull:
		c.WriteLogEnabled = true
		c.CtxSwitchEnabled = true
		c.Migration = MigrationAdaptive
	case SkyByteCT:
		c.CtxSwitchEnabled = true
		c.Migration = MigrationTPP
	case SkyByteWCT:
		c.WriteLogEnabled = true
		c.CtxSwitchEnabled = true
		c.Migration = MigrationTPP
	case AstriFlashCXL:
		c.Migration = MigrationAstri
		c.CtxSwitchCost = c.AstriSwitchCost
	default:
		panic(fmt.Sprintf("system: unknown variant %q", v))
	}
	return c
}

// fleetConfig derives the placement-layer configuration of a fleet run.
func (c Config) fleetConfig() fleet.Config {
	return fleet.Config{Devices: c.Devices, Policy: fleet.Policy(c.Placement)}
}

// controllerConfig derives the SSD controller configuration.
func (c Config) controllerConfig() core.Config {
	cc := core.DefaultConfig()
	cc.WriteLogEnabled = c.WriteLogEnabled
	cc.WriteLogBytes = c.WriteLogBytes
	cc.CacheBytes = c.SSDDRAMBytes
	if c.WriteLogEnabled {
		cc.CacheBytes = c.SSDDRAMBytes - c.WriteLogBytes
	}
	cc.CacheWays = c.CacheWays
	cc.HintEnabled = c.CtxSwitchEnabled
	cc.HintThreshold = c.HintThreshold
	cc.PrefetchNext = c.PrefetchNext
	cc.MigrationEnabled = c.Migration == MigrationAdaptive
	cc.MigrationThreshold = c.MigrationThresh
	cc.MigrationMinResidency = c.MigrationMinRes
	if c.HeatDecay > 0 {
		cc.HeatDecayInterval = c.HeatDecay
	}
	cc.TrackLocality = c.TrackLocality
	return cc
}
