package experiments

import (
	"fmt"

	"skybyte/internal/fleet"
	"skybyte/internal/runner"
	"skybyte/internal/system"
)

// figFleetVariants is the fleet table's variant axis: the paper's
// baseline device and the full SkyByte design, so the K-sweep shows
// whether clustering helps a dumb device more than a smart one.
var figFleetVariants = []system.Variant{system.BaseCSSD, system.SkyByteFull}

// figFleetPreferred is the workload subset the fleet sweep defaults to
// when the campaign's workload set contains them: one read-dominated
// and one write-heavy benchmark keep the table readable while still
// showing both bottleneck regimes. Campaigns scoped to other workloads
// sweep their first workload instead.
var figFleetPreferred = []string{"ycsb", "srad"}

// FigFleet renders the optional cluster-scaling table (EXPERIMENTS.md
// "figfleet"): K CXL-SSDs behind the placement layer, swept over device
// count x placement policy x {Base-CSSD, SkyByte-Full}. Each row
// reports execution time, speedup over the K=1 baseline, shared-link
// and flash utilization (whose opposite trends locate the
// link-vs-flash bottleneck crossover), per-device page imbalance, and
// hot/cold migration volume.
func (h *Harness) FigFleet() Table { return h.table(h.figFleet) }

// figFleetWorkloads resolves the sweep's workload subset against the
// campaign's workload scope.
func (h *Harness) figFleetWorkloads() []string {
	var out []string
	for _, pref := range figFleetPreferred {
		for _, name := range h.Opt.Workloads {
			if name == pref {
				out = append(out, name)
			}
		}
	}
	if len(out) == 0 && len(h.Opt.Workloads) > 0 {
		out = append(out, h.Opt.Workloads[0])
	}
	return out
}

func (h *Harness) figFleet(p *Plan) func() Table {
	type cell struct {
		workload  string
		variant   system.Variant
		devices   int
		placement string
		pend      *Pending
	}
	var cells []cell
	// The K=1 baseline is planned once per workload x variant — every
	// placement policy is the identity on a fleet of one (and hotcold
	// requires a cold tier), so distinct placement rows would re-run the
	// same machine under different keys.
	base := make(map[string]*Pending)
	for _, w := range h.figFleetWorkloads() {
		for _, v := range figFleetVariants {
			for _, k := range h.Opt.FleetDevices {
				if k == 1 {
					pend := p.add(runner.Spec{
						Workload: w, Variant: v, TotalInstr: h.Opt.SweepInstr,
						Devices: 1,
					})
					base[w+"|"+string(v)] = pend
					cells = append(cells, cell{w, v, 1, string(fleet.Striped), pend})
					continue
				}
				for _, placement := range h.Opt.FleetPlacements {
					if placement == string(fleet.HotCold) && k < 2 {
						continue
					}
					pend := p.add(runner.Spec{
						Workload: w, Variant: v, TotalInstr: h.Opt.SweepInstr,
						Devices: k, Placement: placement,
					})
					cells = append(cells, cell{w, v, k, placement, pend})
				}
			}
		}
	}
	return func() Table {
		t := Table{
			ID:     "figfleet",
			Title:  "Fleet scaling: K CXL-SSDs behind the placement layer",
			Header: []string{"workload", "variant", "K", "placement", "exec", "speedup", "link util", "flash util", "imbalance", "migr"},
			Note:   "speedup vs the K=1 baseline of the same workload+variant; link util is shared-link TX busy time over exec time",
		}
		for _, c := range cells {
			res := c.pend.Result()
			speedup := "1.00"
			if b, ok := base[c.workload+"|"+string(c.variant)]; ok && b != c.pend {
				speedup = f2(res.Speedup(b.Result()))
			}
			linkUtil := 0.0
			if res.ExecTime > 0 {
				linkUtil = float64(res.LinkStats.BusyTx) / float64(res.ExecTime)
			}
			t.Rows = append(t.Rows, []string{
				c.workload,
				string(c.variant),
				fmt.Sprintf("%d", c.devices),
				c.placement,
				res.ExecTime.String(),
				speedup,
				pct(linkUtil),
				pct(res.FlashUtilization),
				f2(fleetImbalance(res)),
				fmt.Sprintf("%d", res.FleetMigrations),
			})
		}
		return t
	}
}

// fleetImbalance is the max/mean ratio of per-device owned-page counts
// — 1.00 is a perfectly even spread; a capacity-weighted fleet reads as
// its dominant weight share. Returns 1 for empty or single-device runs.
func fleetImbalance(res *system.Result) float64 {
	if len(res.Devices) < 2 {
		return 1
	}
	var sum, max uint64
	for _, d := range res.Devices {
		sum += d.Pages
		if d.Pages > max {
			max = d.Pages
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(res.Devices))
	return float64(max) / mean
}
