package experiments

import (
	"context"
	"fmt"
	"strings"

	"skybyte/internal/stats"
	"skybyte/internal/system"
	"skybyte/internal/trace"
)

// Table1 reproduces Table I: the measured characteristics of each workload
// generator against the paper's figures.
func (h *Harness) Table1() Table { return h.table(h.table1) }

func (h *Harness) table1(p *Plan) func() Table {
	type row struct {
		name string
		dram *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		rows = append(rows, row{spec.Name, p.Run(spec, system.DRAMOnly, h.Opt.TotalInstr, 0, "")})
	}
	return func() Table {
		t := Table{
			ID:     "table1",
			Title:  "Workload characteristics (measured vs paper)",
			Header: []string{"workload", "footprint", "write ratio", "paper wr", "MPKI", "paper MPKI"},
			Note:   "footprints are 1/64 of Table I; MPKI measured on the DRAM-Only configuration",
		}
		for i, spec := range h.specs() {
			// Measure the write ratio directly from the generator.
			st := spec.Stream(0, h.Opt.Seed)
			var loads, stores uint64
			for n := 0; n < 60000; n++ {
				r, ok := st.Next()
				if !ok {
					break
				}
				switch r.Kind {
				case trace.Load, trace.LoadDep:
					loads++
				case trace.Store:
					stores++
				}
			}
			d := rows[i].dram.Result()
			t.Rows = append(t.Rows, []string{
				spec.Name,
				stats.FormatGB(spec.FootprintBytes()),
				pct(float64(stores) / float64(loads+stores)),
				pct(spec.WriteRatio),
				f2(d.MPKI),
				f2(spec.PaperMPKI),
			})
		}
		return t
	}
}

// Table3 reproduces Table III: the average flash read latency under
// SkyByte-WP (paper: 3.3–25.7 µs — queueing inflates some workloads well
// above tR).
func (h *Harness) Table3() Table { return h.table(h.table3) }

func (h *Harness) table3(p *Plan) func() Table {
	type row struct {
		name string
		wp   *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		rows = append(rows, row{spec.Name, p.Run(spec, system.SkyByteWP, h.Opt.TotalInstr, 0, "")})
	}
	return func() Table {
		t := Table{
			ID:     "table3",
			Title:  "Average flash read latency of SkyByte-WP (µs)",
			Header: []string{"workload", "latency", "paper"},
		}
		paper := map[string]string{
			"bc": "3.5", "bfs-dense": "25.7", "dlrm": "3.4", "radix": "4.9",
			"srad": "22.5", "tpcc": "19.6", "ycsb": "3.3",
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{
				r.name,
				f2(r.wp.Result().FlashLat.Mean().Microseconds()),
				paper[r.name],
			})
		}
		return t
	}
}

// CostEffectiveness reproduces §VI-B's cost analysis: DDR5 at $4.28/GB vs
// ULL flash at $0.27/GB (summer 2024 prices quoted by the paper), SkyByte
// is 15.9x cheaper than DRAM-only and improves cost-effectiveness 11.8x.
func (h *Harness) CostEffectiveness() Table { return h.table(h.costEffectiveness) }

func (h *Harness) costEffectiveness(p *Plan) func() Table {
	type row struct {
		name       string
		full, dram *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		rows = append(rows, row{
			spec.Name,
			p.Run(spec, system.SkyByteFull, h.Opt.TotalInstr, 0, ""),
			p.Run(spec, system.DRAMOnly, h.Opt.TotalInstr, 0, ""),
		})
	}
	return func() Table {
		const dramPerGB, ssdPerGB = 4.28, 0.27
		t := Table{
			ID:     "cost",
			Title:  "Cost-effectiveness of SkyByte-Full vs DRAM-Only (§VI-B)",
			Header: []string{"workload", "perf vs DRAM", "cost ratio", "perf/$ gain"},
			Note:   fmt.Sprintf("unit prices: DDR5 $%.2f/GB, ULL SSD $%.2f/GB (paper: 15.9x cheaper, 11.8x better perf/$)", dramPerGB, ssdPerGB),
		}
		costRatio := dramPerGB / ssdPerGB
		var perfs []float64
		for _, r := range rows {
			perf := float64(r.dram.Result().ExecTime) / float64(r.full.Result().ExecTime)
			perfs = append(perfs, perf)
			t.Rows = append(t.Rows, []string{r.name, pct(perf), f2(costRatio), f2(perf * costRatio)})
		}
		t.Rows = append(t.Rows, []string{"geo.mean", pct(stats.GeoMean(perfs)), f2(costRatio), f2(stats.GeoMean(perfs) * costRatio)})
		return t
	}
}

// WriteLogStats reports §III-B's implementation claims: the two-level hash
// index footprint (paper: 5.6 MB average on a 64 MB log, ≤32 MB worst
// case — here at 1/64 scale) and the mean compaction time (paper: 146 µs).
func (h *Harness) WriteLogStats() Table { return h.table(h.writeLogStats) }

func (h *Harness) writeLogStats(p *Plan) func() Table {
	type row struct {
		name string
		full *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		rows = append(rows, row{spec.Name, p.Run(spec, system.SkyByteFull, h.Opt.TotalInstr, 0, "")})
	}
	return func() Table {
		t := Table{
			ID:     "writelog",
			Title:  "Write-log index footprint and compaction time (SkyByte-Full)",
			Header: []string{"workload", "peak index", "log capacity", "compactions", "mean compaction"},
			Note:   "paper: index averages 5.6MB on a 64MB log; a compaction averages 146µs",
		}
		for _, r := range rows {
			res := r.full.Result()
			t.Rows = append(t.Rows, []string{
				r.name,
				stats.FormatGB(uint64(res.LogIndexPeak)),
				stats.FormatGB(uint64(h.Opt.BaseConfig.WriteLogBytes)),
				fmt.Sprintf("%d", res.Compaction.Count),
				res.Compaction.Mean().String(),
			})
		}
		return t
	}
}

// catalogEntry names one experiment: the id its Table carries (and
// the one the CLIs accept), its plan phase, and whether it is an
// optional extension excluded from the default campaign.
type catalogEntry struct {
	id       string
	plan     planner
	optional bool
}

// catalog lists every experiment in paper order, the optional
// extensions last. Optional entries render on demand (Render, -figure)
// but are excluded from All/AllErr/RunShard so the default campaign —
// and its store fingerprint sharding — stays exactly the paper's
// evaluation.
func (h *Harness) catalog() []catalogEntry {
	return []catalogEntry{
		{id: "table1", plan: h.table1},
		{id: "fig02", plan: h.fig02},
		{id: "fig03", plan: h.fig03},
		{id: "fig04", plan: h.fig04},
		{id: "fig05", plan: h.fig05},
		{id: "fig06", plan: h.fig06},
		{id: "fig09", plan: h.fig09},
		{id: "fig10", plan: h.fig10},
		{id: "fig14", plan: h.fig14},
		{id: "fig15", plan: h.fig15},
		{id: "fig16", plan: h.fig16},
		{id: "fig17", plan: h.fig17},
		{id: "fig18", plan: h.fig18},
		{id: "fig19", plan: h.fig19},
		{id: "fig20", plan: h.fig20},
		{id: "fig21", plan: h.fig21},
		{id: "fig22", plan: h.fig22},
		{id: "fig23", plan: h.fig23},
		{id: "table3", plan: h.table3},
		{id: "cost", plan: h.costEffectiveness},
		{id: "writelog", plan: h.writeLogStats},
		{id: "figext", plan: h.figExt, optional: true},
		{id: "figmix", plan: h.figMix, optional: true},
		{id: "figopen", plan: h.figOpen, optional: true},
		{id: "figfleet", plan: h.figFleet, optional: true},
	}
}

// planners lists the default campaign's plan phases in paper order
// (optional extensions excluded).
func (h *Harness) planners() []planner {
	var out []planner
	for _, c := range h.catalog() {
		if !c.optional {
			out = append(out, c.plan)
		}
	}
	return out
}

// IDs returns the valid experiment ids in paper order, optional
// extensions included.
func IDs() []string {
	var h Harness
	cat := h.catalog()
	out := make([]string, len(cat))
	for i, c := range cat {
		out[i] = c.id
	}
	return out
}

// Render runs one experiment by id with error reporting: an unknown id
// lists the valid ones, and in render-from-cache mode a design point
// missing from the store surfaces as an error instead of a panic.
func (h *Harness) Render(ctx context.Context, id string) (Table, error) {
	for _, c := range h.catalog() {
		if c.id != id {
			continue
		}
		p := h.NewPlan()
		build := c.plan(p)
		if err := p.Execute(ctx); err != nil {
			return Table{}, err
		}
		return build(), nil
	}
	return Table{}, fmt.Errorf("experiments: unknown experiment %q (valid: all %s)", id, strings.Join(IDs(), " "))
}

// planAll plans every experiment in paper order into one de-duplicated
// batch and returns the plan plus the deferred table builders.
func (h *Harness) planAll() (*Plan, []func() Table) {
	p := h.NewPlan()
	var builds []func() Table
	for _, f := range h.planners() {
		builds = append(builds, f(p))
	}
	return p, builds
}

// All runs every experiment in paper order as one campaign: the design
// points of all figures and tables are planned first, de-duplicated,
// executed once across the worker pool, and only then rendered. At
// Parallelism N the sweep keeps N simulations in flight from start to
// finish; the tables are byte-identical to a sequential run — and,
// with a result store attached, byte-identical whether the results
// were simulated here, recalled from a warm store, or merged from
// shards executed elsewhere.
func (h *Harness) All() []Table {
	tables, err := h.AllErr(context.Background())
	if err != nil {
		panic(err)
	}
	return tables
}

// AllErr is All with error reporting, required on the paths where
// failure is environmental rather than programmer error — above all
// render-from-cache, where a design point missing from the store means
// a shard has not run yet.
func (h *Harness) AllErr(ctx context.Context) ([]Table, error) {
	p, builds := h.planAll()
	if err := p.Execute(ctx); err != nil {
		return nil, err
	}
	tables := make([]Table, len(builds))
	for i, b := range builds {
		tables[i] = b()
	}
	return tables, nil
}

// RunShard plans the full campaign, de-duplicates it exactly as All
// does, and executes only the Opt.Shard-th of Opt.ShardCount slices,
// persisting results into the store (Opt.CacheDir is required — an
// unpersisted shard would be wasted work). No tables are rendered;
// once every shard has run against a shared (or later merged) store,
// any machine renders the campaign with FromCache. Returns the
// processed and total design-point counts; processed includes warm
// recalls from the store (observe Verbose, which fires only for real
// simulations, to tell them apart).
func (h *Harness) RunShard(ctx context.Context) (processed, total int, err error) {
	if h.storeErr != nil {
		return 0, 0, h.storeErr
	}
	if h.run.Store == nil {
		return 0, 0, fmt.Errorf("experiments: RunShard requires Options.CacheDir")
	}
	n := h.Opt.ShardCount
	if n <= 0 {
		n = 1
	}
	if h.Opt.Shard < 0 || h.Opt.Shard >= n {
		return 0, 0, fmt.Errorf("experiments: shard %d out of range 0..%d", h.Opt.Shard, n-1)
	}
	p, _ := h.planAll()
	slice := p.Shard(h.Opt.Shard, n)
	if _, err := h.run.RunAll(ctx, slice); err != nil {
		return 0, 0, err
	}
	return len(slice), p.Size(), nil
}
