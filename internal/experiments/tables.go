package experiments

import (
	"fmt"
	"io"

	"skybyte/internal/stats"
	"skybyte/internal/system"
	"skybyte/internal/trace"
)

// Table1 reproduces Table I: the measured characteristics of each workload
// generator against the paper's figures.
func (h *Harness) Table1() Table {
	t := Table{
		ID:     "table1",
		Title:  "Workload characteristics (measured vs paper)",
		Header: []string{"workload", "footprint", "write ratio", "paper wr", "MPKI", "paper MPKI"},
		Note:   "footprints are 1/64 of Table I; MPKI measured on the DRAM-Only configuration",
	}
	for _, spec := range h.specs() {
		// Measure the write ratio directly from the generator.
		st := spec.Stream(0, h.Opt.Seed)
		var loads, stores uint64
		for i := 0; i < 60000; i++ {
			r, ok := st.Next()
			if !ok {
				break
			}
			switch r.Kind {
			case trace.Load, trace.LoadDep:
				loads++
			case trace.Store:
				stores++
			}
		}
		d := h.run(spec, system.DRAMOnly, h.Opt.TotalInstr, 0, "")
		t.Rows = append(t.Rows, []string{
			spec.Name,
			stats.FormatGB(spec.FootprintBytes()),
			pct(float64(stores) / float64(loads+stores)),
			pct(spec.WriteRatio),
			f2(d.MPKI),
			f2(spec.PaperMPKI),
		})
	}
	return t
}

// Table3 reproduces Table III: the average flash read latency under
// SkyByte-WP (paper: 3.3–25.7 µs — queueing inflates some workloads well
// above tR).
func (h *Harness) Table3() Table {
	t := Table{
		ID:     "table3",
		Title:  "Average flash read latency of SkyByte-WP (µs)",
		Header: []string{"workload", "latency", "paper"},
	}
	paper := map[string]string{
		"bc": "3.5", "bfs-dense": "25.7", "dlrm": "3.4", "radix": "4.9",
		"srad": "22.5", "tpcc": "19.6", "ycsb": "3.3",
	}
	for _, spec := range h.specs() {
		r := h.run(spec, system.SkyByteWP, h.Opt.TotalInstr, 0, "")
		t.Rows = append(t.Rows, []string{
			spec.Name,
			f2(r.FlashLat.Mean().Microseconds()),
			paper[spec.Name],
		})
	}
	return t
}

// CostEffectiveness reproduces §VI-B's cost analysis: DDR5 at $4.28/GB vs
// ULL flash at $0.27/GB (summer 2024 prices quoted by the paper), SkyByte
// is 15.9x cheaper than DRAM-only and improves cost-effectiveness 11.8x.
func (h *Harness) CostEffectiveness() Table {
	const dramPerGB, ssdPerGB = 4.28, 0.27
	t := Table{
		ID:     "cost",
		Title:  "Cost-effectiveness of SkyByte-Full vs DRAM-Only (§VI-B)",
		Header: []string{"workload", "perf vs DRAM", "cost ratio", "perf/$ gain"},
		Note:   fmt.Sprintf("unit prices: DDR5 $%.2f/GB, ULL SSD $%.2f/GB (paper: 15.9x cheaper, 11.8x better perf/$)", dramPerGB, ssdPerGB),
	}
	costRatio := dramPerGB / ssdPerGB
	var perfs []float64
	for _, spec := range h.specs() {
		full := h.run(spec, system.SkyByteFull, h.Opt.TotalInstr, 0, "")
		d := h.run(spec, system.DRAMOnly, h.Opt.TotalInstr, 0, "")
		perf := float64(d.ExecTime) / float64(full.ExecTime)
		perfs = append(perfs, perf)
		t.Rows = append(t.Rows, []string{spec.Name, pct(perf), f2(costRatio), f2(perf * costRatio)})
	}
	t.Rows = append(t.Rows, []string{"geo.mean", pct(stats.GeoMean(perfs)), f2(costRatio), f2(stats.GeoMean(perfs) * costRatio)})
	return t
}

// WriteLogStats reports §III-B's implementation claims: the two-level hash
// index footprint (paper: 5.6 MB average on a 64 MB log, ≤32 MB worst
// case — here at 1/64 scale) and the mean compaction time (paper: 146 µs).
func (h *Harness) WriteLogStats() Table {
	t := Table{
		ID:     "writelog",
		Title:  "Write-log index footprint and compaction time (SkyByte-Full)",
		Header: []string{"workload", "peak index", "log capacity", "compactions", "mean compaction"},
		Note:   "paper: index averages 5.6MB on a 64MB log; a compaction averages 146µs",
	}
	for _, spec := range h.specs() {
		r := h.run(spec, system.SkyByteFull, h.Opt.TotalInstr, 0, "")
		t.Rows = append(t.Rows, []string{
			spec.Name,
			stats.FormatGB(uint64(r.LogIndexPeak)),
			stats.FormatGB(uint64(h.Opt.BaseConfig.WriteLogBytes)),
			fmt.Sprintf("%d", r.Compaction.Count),
			r.Compaction.Mean().String(),
		})
	}
	return t
}

// All runs every experiment in paper order.
func (h *Harness) All() []Table {
	return []Table{
		h.Table1(),
		h.Fig02(),
		h.Fig03(),
		h.Fig04(),
		h.Fig05(),
		h.Fig06(),
		h.Fig09(),
		h.Fig10(),
		h.Fig14(),
		h.Fig15(),
		h.Fig16(),
		h.Fig17(),
		h.Fig18(),
		h.Fig19(),
		h.Fig20(),
		h.Fig21(),
		h.Fig22(),
		h.Fig23(),
		h.Table3(),
		h.CostEffectiveness(),
		h.WriteLogStats(),
	}
}

// WriteAll renders every experiment to w.
func (h *Harness) WriteAll(w io.Writer) {
	for _, t := range h.All() {
		fmt.Fprintln(w, t.String())
	}
}
