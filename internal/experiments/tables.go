package experiments

import (
	"fmt"
	"io"

	"skybyte/internal/stats"
	"skybyte/internal/system"
	"skybyte/internal/trace"
)

// Table1 reproduces Table I: the measured characteristics of each workload
// generator against the paper's figures.
func (h *Harness) Table1() Table { return h.table(h.table1) }

func (h *Harness) table1(p *Plan) func() Table {
	type row struct {
		name string
		dram *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		rows = append(rows, row{spec.Name, p.Run(spec, system.DRAMOnly, h.Opt.TotalInstr, 0, "")})
	}
	return func() Table {
		t := Table{
			ID:     "table1",
			Title:  "Workload characteristics (measured vs paper)",
			Header: []string{"workload", "footprint", "write ratio", "paper wr", "MPKI", "paper MPKI"},
			Note:   "footprints are 1/64 of Table I; MPKI measured on the DRAM-Only configuration",
		}
		for i, spec := range h.specs() {
			// Measure the write ratio directly from the generator.
			st := spec.Stream(0, h.Opt.Seed)
			var loads, stores uint64
			for n := 0; n < 60000; n++ {
				r, ok := st.Next()
				if !ok {
					break
				}
				switch r.Kind {
				case trace.Load, trace.LoadDep:
					loads++
				case trace.Store:
					stores++
				}
			}
			d := rows[i].dram.Result()
			t.Rows = append(t.Rows, []string{
				spec.Name,
				stats.FormatGB(spec.FootprintBytes()),
				pct(float64(stores) / float64(loads+stores)),
				pct(spec.WriteRatio),
				f2(d.MPKI),
				f2(spec.PaperMPKI),
			})
		}
		return t
	}
}

// Table3 reproduces Table III: the average flash read latency under
// SkyByte-WP (paper: 3.3–25.7 µs — queueing inflates some workloads well
// above tR).
func (h *Harness) Table3() Table { return h.table(h.table3) }

func (h *Harness) table3(p *Plan) func() Table {
	type row struct {
		name string
		wp   *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		rows = append(rows, row{spec.Name, p.Run(spec, system.SkyByteWP, h.Opt.TotalInstr, 0, "")})
	}
	return func() Table {
		t := Table{
			ID:     "table3",
			Title:  "Average flash read latency of SkyByte-WP (µs)",
			Header: []string{"workload", "latency", "paper"},
		}
		paper := map[string]string{
			"bc": "3.5", "bfs-dense": "25.7", "dlrm": "3.4", "radix": "4.9",
			"srad": "22.5", "tpcc": "19.6", "ycsb": "3.3",
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{
				r.name,
				f2(r.wp.Result().FlashLat.Mean().Microseconds()),
				paper[r.name],
			})
		}
		return t
	}
}

// CostEffectiveness reproduces §VI-B's cost analysis: DDR5 at $4.28/GB vs
// ULL flash at $0.27/GB (summer 2024 prices quoted by the paper), SkyByte
// is 15.9x cheaper than DRAM-only and improves cost-effectiveness 11.8x.
func (h *Harness) CostEffectiveness() Table { return h.table(h.costEffectiveness) }

func (h *Harness) costEffectiveness(p *Plan) func() Table {
	type row struct {
		name       string
		full, dram *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		rows = append(rows, row{
			spec.Name,
			p.Run(spec, system.SkyByteFull, h.Opt.TotalInstr, 0, ""),
			p.Run(spec, system.DRAMOnly, h.Opt.TotalInstr, 0, ""),
		})
	}
	return func() Table {
		const dramPerGB, ssdPerGB = 4.28, 0.27
		t := Table{
			ID:     "cost",
			Title:  "Cost-effectiveness of SkyByte-Full vs DRAM-Only (§VI-B)",
			Header: []string{"workload", "perf vs DRAM", "cost ratio", "perf/$ gain"},
			Note:   fmt.Sprintf("unit prices: DDR5 $%.2f/GB, ULL SSD $%.2f/GB (paper: 15.9x cheaper, 11.8x better perf/$)", dramPerGB, ssdPerGB),
		}
		costRatio := dramPerGB / ssdPerGB
		var perfs []float64
		for _, r := range rows {
			perf := float64(r.dram.Result().ExecTime) / float64(r.full.Result().ExecTime)
			perfs = append(perfs, perf)
			t.Rows = append(t.Rows, []string{r.name, pct(perf), f2(costRatio), f2(perf * costRatio)})
		}
		t.Rows = append(t.Rows, []string{"geo.mean", pct(stats.GeoMean(perfs)), f2(costRatio), f2(stats.GeoMean(perfs) * costRatio)})
		return t
	}
}

// WriteLogStats reports §III-B's implementation claims: the two-level hash
// index footprint (paper: 5.6 MB average on a 64 MB log, ≤32 MB worst
// case — here at 1/64 scale) and the mean compaction time (paper: 146 µs).
func (h *Harness) WriteLogStats() Table { return h.table(h.writeLogStats) }

func (h *Harness) writeLogStats(p *Plan) func() Table {
	type row struct {
		name string
		full *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		rows = append(rows, row{spec.Name, p.Run(spec, system.SkyByteFull, h.Opt.TotalInstr, 0, "")})
	}
	return func() Table {
		t := Table{
			ID:     "writelog",
			Title:  "Write-log index footprint and compaction time (SkyByte-Full)",
			Header: []string{"workload", "peak index", "log capacity", "compactions", "mean compaction"},
			Note:   "paper: index averages 5.6MB on a 64MB log; a compaction averages 146µs",
		}
		for _, r := range rows {
			res := r.full.Result()
			t.Rows = append(t.Rows, []string{
				r.name,
				stats.FormatGB(uint64(res.LogIndexPeak)),
				stats.FormatGB(uint64(h.Opt.BaseConfig.WriteLogBytes)),
				fmt.Sprintf("%d", res.Compaction.Count),
				res.Compaction.Mean().String(),
			})
		}
		return t
	}
}

// planners lists every experiment's plan phase in paper order.
func (h *Harness) planners() []planner {
	return []planner{
		h.table1,
		h.fig02,
		h.fig03,
		h.fig04,
		h.fig05,
		h.fig06,
		h.fig09,
		h.fig10,
		h.fig14,
		h.fig15,
		h.fig16,
		h.fig17,
		h.fig18,
		h.fig19,
		h.fig20,
		h.fig21,
		h.fig22,
		h.fig23,
		h.table3,
		h.costEffectiveness,
		h.writeLogStats,
	}
}

// All runs every experiment in paper order as one campaign: the design
// points of all figures and tables are planned first, de-duplicated,
// executed once across the worker pool, and only then rendered. At
// Parallelism N the sweep keeps N simulations in flight from start to
// finish; the tables are byte-identical to a sequential run.
func (h *Harness) All() []Table {
	p := h.NewPlan()
	var builds []func() Table
	for _, f := range h.planners() {
		builds = append(builds, f(p))
	}
	p.MustExecute()
	tables := make([]Table, len(builds))
	for i, b := range builds {
		tables[i] = b()
	}
	return tables
}

// WriteAll renders every experiment to w.
func (h *Harness) WriteAll(w io.Writer) {
	for _, t := range h.All() {
		fmt.Fprintln(w, t.String())
	}
}
