package experiments

import (
	"context"
	"testing"

	"skybyte/internal/arrival"
	"skybyte/internal/system"
)

// figopenOptions keeps open-loop test campaigns fast: the figopen
// budget is 2x TotalInstr, split over each spec's cohort threads.
func figopenOptions() Options {
	o := tinyOptions()
	o.TotalInstr = 48_000
	return o
}

// TestFigOpenRendersAndStaysOptional: the open-loop table produces one
// row per arrival spec x intensity scale x variant x SLO class with
// sane offered/goodput numbers, and — like figmix — never leaks into
// the default campaign.
func TestFigOpenRendersAndStaysOptional(t *testing.T) {
	o := figopenOptions()
	h := NewHarness(o)
	tab, err := h.Render(context.Background(), "figopen")
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 0
	for _, name := range h.Opt.Arrivals {
		a, err := arrival.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		classes, err := a.Classes(1)
		if err != nil {
			t.Fatal(err)
		}
		wantRows += len(classes) * len(figopenScales) * len(figopenVariants)
	}
	if len(tab.Rows) != wantRows {
		t.Fatalf("figopen has %d rows, want %d", len(tab.Rows), wantRows)
	}
	for i, row := range tab.Rows {
		if offered := parse(t, row[4]); offered <= 0 {
			t.Errorf("row %d: offered rate %q not positive", i, row[4])
		}
		if goodput := parse(t, row[5]); goodput <= 0 {
			t.Errorf("row %d: goodput %q not positive", i, row[5])
		}
		for col := 6; col <= 9; col++ { // p50..p99.9
			if row[col] == "" {
				t.Errorf("row %d: percentile column %d empty", i, col)
			}
		}
	}
	// Offered load scales with the intensity axis: the x4 rows of a
	// class offer 4x its x1 rows. The first spec renders 4 variants x
	// 2 classes = 8 rows per scale, so row 16 is (x4, Base, class 0).
	if r1, r4 := parse(t, tab.Rows[0][4]), parse(t, tab.Rows[16][4]); r4 < 3.9*r1 || r4 > 4.1*r1 {
		t.Errorf("offered rate does not track the intensity scale: x1=%g x4=%g", r1, r4)
	}

	tables, err := NewHarness(o).AllErr(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if tb.ID == "figopen" {
			t.Fatal("optional figopen leaked into the default campaign")
		}
	}
}

// TestFigOpenParallelDeterminism is the open-loop acceptance contract:
// per-class percentiles, goodput, and queue delays render
// byte-identically at any parallelism.
func TestFigOpenParallelDeterminism(t *testing.T) {
	render := func(parallelism int) string {
		o := figopenOptions()
		o.TotalInstr = 24_000
		o.Arrivals = []string{"open-steady"}
		o.Parallelism = parallelism
		tab, err := NewHarness(o).Render(context.Background(), "figopen")
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("figopen differs between Parallelism 1 and 8:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

// TestFigOpenWarmCacheStability: an arrival campaign recalls from the
// persistent store byte-for-byte with zero re-simulations — open-loop
// sections survive the codec round trip.
func TestFigOpenWarmCacheStability(t *testing.T) {
	dir := t.TempDir()
	render := func(counter *int) string {
		o := figopenOptions()
		o.TotalInstr = 24_000
		o.Arrivals = []string{"open-steady"}
		o.CacheDir = dir
		h := NewHarness(o)
		if counter != nil {
			h.Verbose = func(string, *system.Result) { *counter++ }
		}
		tab, err := h.Render(context.Background(), "figopen")
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	coldSims := 0
	cold := render(&coldSims)
	if coldSims == 0 {
		t.Fatal("cold figopen simulated nothing")
	}
	warmSims := 0
	warm := render(&warmSims)
	if warmSims != 0 {
		t.Fatalf("warm figopen simulated %d times, want 0", warmSims)
	}
	if cold != warm {
		t.Errorf("figopen differs between cold and warm runs:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
}

// TestRunArrivalRejectsUnregisteredOrEditedSpecs: specs carry only the
// arrival name and the runner re-resolves it, so planning a Spec value
// that is not (or no longer) the registered definition must fail at
// declaration rather than silently simulate the registered one.
func TestRunArrivalRejectsUnregisteredOrEditedSpecs(t *testing.T) {
	h := NewHarness(tinyOptions())
	mustPanic := func(name string, a arrival.Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RunArrival did not panic", name)
			}
		}()
		h.NewPlan().RunArrival(a, system.BaseCSSD, 1000, 1, "")
	}
	unregistered := arrival.Spec{
		Format: arrival.SpecFormatVersion,
		Name:   "never-registered",
		Cohorts: []arrival.Cohort{
			{Workload: "bc", Threads: 1,
				Process: arrival.Process{Dist: arrival.DistPoisson, Rate: 100}},
		},
	}
	mustPanic("unregistered", unregistered)

	edited, err := arrival.ByName("open-steady")
	if err != nil {
		t.Fatal(err)
	}
	edited.Cohorts = append([]arrival.Cohort(nil), edited.Cohorts...)
	edited.Cohorts[0].Process.Rate *= 2 // same name, different semantics
	mustPanic("edited copy of a registered spec", edited)

	// The registered definition itself plans fine.
	reg, _ := arrival.ByName("open-steady")
	if pe := h.NewPlan().RunArrival(reg, system.BaseCSSD, 1000, 1, ""); pe == nil {
		t.Fatal("registered spec rejected")
	}
}
