// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): each Fig*/Table* method runs the required simulator
// configurations and returns the same rows/series the paper plots.
// EXPERIMENTS.md records paper-vs-measured for each.
//
// Absolute numbers differ from the paper (synthetic workloads on a scaled
// device — DESIGN.md §1); the comparisons preserve the paper's shape: who
// wins, by roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"skybyte/internal/mem"
	"skybyte/internal/system"
	"skybyte/internal/workloads"
)

// Options scope an experiment campaign.
type Options struct {
	// BaseConfig is the machine; defaults to system.ScaledConfig().
	BaseConfig system.Config
	// TotalInstr is the total work per run, divided evenly among threads
	// so every design point executes the same program section (§VI-A).
	TotalInstr uint64
	// SweepInstr is the (smaller) work budget for many-cell sweeps.
	SweepInstr uint64
	// Workloads restricts the benchmark set (default: all of Table I).
	Workloads []string
	Seed      uint64
}

// DefaultOptions returns a campaign sized to run a full sweep in minutes.
func DefaultOptions() Options {
	return Options{
		BaseConfig: system.ScaledConfig(),
		TotalInstr: 384_000,
		SweepInstr: 192_000,
		Workloads:  workloads.Names(),
		Seed:       7,
	}
}

// Harness memoises simulation runs so figures sharing design points (e.g.
// Figs. 14, 16, 17, 18) pay for them once.
type Harness struct {
	Opt   Options
	cache map[string]*system.Result
	// Verbose, when set, logs each run as it completes.
	Verbose func(key string, r *system.Result)
}

// NewHarness builds a harness.
func NewHarness(opt Options) *Harness {
	if opt.TotalInstr == 0 {
		opt = DefaultOptions()
	}
	return &Harness{Opt: opt, cache: make(map[string]*system.Result)}
}

func (h *Harness) specs() []workloads.Spec {
	var out []workloads.Spec
	for _, name := range h.Opt.Workloads {
		s, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

// threadsFor follows §VI-A: 24 threads on 8 cores when the coordinated
// context switch is enabled, 8 threads otherwise.
func threadsFor(cfg system.Config) int {
	if cfg.CtxSwitchEnabled || cfg.Migration == system.MigrationAstri {
		return 3 * cfg.Cores
	}
	return cfg.Cores
}

// mutate lets callers adjust a variant config before a run.
type mutate func(*system.Config)

// run executes (or recalls) one design point on one workload.
func (h *Harness) run(spec workloads.Spec, v system.Variant, totalInstr uint64, threads int, key string, muts ...mutate) *system.Result {
	full := fmt.Sprintf("%s|%s|%d|%d|%s", spec.Name, v, totalInstr, threads, key)
	if r, ok := h.cache[full]; ok {
		return r
	}
	cfg := h.Opt.BaseConfig.WithVariant(v)
	for _, m := range muts {
		m(&cfg)
	}
	if threads == 0 {
		threads = threadsFor(cfg)
	}
	sys := system.New(cfg)
	per := totalInstr / uint64(threads)
	for i := 0; i < threads; i++ {
		sys.AddThread(spec.Stream(i, h.Opt.Seed), per)
	}
	r := sys.Run()
	h.cache[full] = r
	if h.Verbose != nil {
		h.Verbose(full, r)
	}
	return r
}

// Table is one reproduced figure or table.
type Table struct {
	ID     string // e.g. "fig14"
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, hcol := range t.Header {
		widths[i] = len(hcol)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// sortedKeys is a deterministic map iteration helper.
func sortedKeys[K ~string, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

var _ = sortedKeys[string, int] // generic helper used by future figures

// bytesLabel renders a byte count compactly for sweep headers.
func bytesLabel(n int) string {
	switch {
	case n >= mem.MiB:
		return fmt.Sprintf("%dMB", n/mem.MiB)
	case n >= mem.KiB:
		return fmt.Sprintf("%dKB", n/mem.KiB)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
