// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): each Fig*/Table* method runs the required simulator
// configurations and returns the same rows/series the paper plots.
// EXPERIMENTS.md records paper-vs-measured for each.
//
// Absolute numbers differ from the paper (synthetic workloads on a scaled
// device — DESIGN.md §1); the comparisons preserve the paper's shape: who
// wins, by roughly what factor, and where the crossovers fall.
//
// The layer is split into plan and execute halves. Every figure first
// declares its design points against a Plan (which de-duplicates them
// into runner.Specs) and returns a build closure; Plan.MustExecute then
// pushes the whole batch through a shared internal/runner worker pool.
// Because results come back in declaration order and each simulation is
// deterministic, the rendered tables are byte-identical at any
// parallelism — see TestCampaignParallelDeterminism.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"skybyte/internal/arrival"
	"skybyte/internal/fleet"
	"skybyte/internal/mem"
	"skybyte/internal/runner"
	"skybyte/internal/store"
	"skybyte/internal/system"
	"skybyte/internal/tenant"
	"skybyte/internal/workloads"
)

// Options scope an experiment campaign.
type Options struct {
	// BaseConfig is the machine; defaults to system.ScaledConfig().
	BaseConfig system.Config
	// TotalInstr is the total work per run, divided evenly among threads
	// so every design point executes the same program section (§VI-A).
	TotalInstr uint64
	// SweepInstr is the (smaller) work budget for many-cell sweeps.
	SweepInstr uint64
	// Workloads restricts the benchmark set (default: all of Table I).
	Workloads []string
	// Mixes restricts the multi-tenant mix set the optional figmix
	// fairness table compares (default: every resolvable mix — the
	// built-in pairings plus anything registered via tenant.Register/
	// RegisterFile). Names resolve through tenant.ByName.
	Mixes []string
	// Arrivals restricts the arrival-spec set the optional figopen
	// open-loop table sweeps (default: every registered arrival spec —
	// the built-ins plus anything registered via arrival.Register/
	// RegisterFile). Names resolve through arrival.ByName.
	Arrivals []string
	// TenantRows extends Figs. 14, 16, and 17 with per-tenant rows: each
	// mix in Mixes is additionally simulated under the figure's variant
	// set and every tenant contributes a "mix/tenant" row built from its
	// own Result.Tenants slice (completion time, request breakdown,
	// AMAT). Off by default so the paper's tables stay the paper's; the
	// mixed runs are shared with figmix where the design points coincide.
	TenantRows bool
	// FleetDevices is the device-count axis (K) of the optional figfleet
	// cluster-scaling table (default: 1, 2, 4, 8; each within
	// 1..fleet.MaxDevices). K = 1 is the single-device baseline the
	// other rows normalize against.
	FleetDevices []int
	// FleetPlacements restricts the placement-policy axis of figfleet
	// (default: every fleet policy). Names resolve via fleet.ParsePolicy;
	// hotcold needs K >= 2, so it only contributes multi-device rows.
	FleetPlacements []string
	// Telemetry switches the optional figopen table into its
	// time-resolved row mode: every open-loop run samples the
	// in-simulator probes (internal/telemetry) on a fixed cadence, and
	// the table reports write-log occupancy and the per-class windowed
	// p99 resolved per intensity window of the arrival spec, instead of
	// end-of-run percentiles. Off by default: sampling costs simulation
	// work and re-keys the figopen design points (the telemetry config
	// is part of spec identity).
	Telemetry bool
	Seed      uint64
	// Parallelism bounds the simulations in flight at once
	// (0 = GOMAXPROCS, 1 = fully sequential). Tables are identical at
	// any setting; only wall-clock changes.
	Parallelism int
	// Progress, when set, observes campaign progress: done runs
	// (memoised recalls included, so done reaches total) out of the
	// planned batch, plus the just-finished run's key. It is called
	// serially from worker goroutines.
	Progress func(done, total int, key string)
	// CacheDir, when set, backs the campaign with the persistent
	// content-addressed result store (internal/store) rooted there,
	// keyed by the fingerprint of BaseConfig+Seed: executed results
	// persist across invocations, and cached design points are decoded
	// instead of re-simulated. Shards sharing a campaign share one
	// CacheDir.
	CacheDir string
	// FromCache renders exclusively from CacheDir: a design point
	// missing from the store is an error instead of a simulation. This
	// is the merge path — render tables on a machine that ran none of
	// the shards. Requires CacheDir.
	FromCache bool
	// Shard and ShardCount split a campaign: RunShard executes only the
	// Shard-th (0-based) of ShardCount deterministic slices of the
	// de-duplicated design points, persisting into CacheDir. A full
	// render needs every shard's results merged into one store.
	Shard, ShardCount int
}

// DefaultOptions returns a campaign sized to run a full sweep in minutes.
func DefaultOptions() Options {
	return Options{
		BaseConfig: system.ScaledConfig(),
		TotalInstr: 384_000,
		SweepInstr: 192_000,
		Workloads:  workloads.Table1Names(),
		Seed:       7,
	}
}

// Harness plans the paper's figures and executes them on a shared
// runner. Runs memoise across figures, so ones sharing design points
// (e.g. Figs. 14, 16, 17, 18) pay for them once — and a campaign
// planned as a whole (All) executes every unique design point exactly
// once across the worker pool.
type Harness struct {
	Opt Options
	run *runner.Runner
	// storeErr defers a CacheDir/FromCache misconfiguration (unwritable
	// directory, FromCache without CacheDir) to execution time, where
	// the error-returning paths can report it.
	storeErr error
	// Verbose, when set, logs each run as it completes (executions only;
	// memoised recalls are silent). Calls are serialized but may come
	// from worker goroutines.
	Verbose func(key string, r *system.Result)
}

// NewHarness builds a harness. Zero-valued Options fields take their
// DefaultOptions values field by field, so setting e.g. only Workloads
// and Parallelism scopes the campaign without losing the default
// budgets. An Options.CacheDir that cannot be created is reported when
// the campaign first executes: as an error from the error-returning
// paths (AllErr, RunShard, Render), as a panic from the Must ones.
func NewHarness(opt Options) *Harness {
	def := DefaultOptions()
	if opt.BaseConfig.Cores == 0 {
		opt.BaseConfig = def.BaseConfig
	}
	if opt.TotalInstr == 0 {
		opt.TotalInstr = def.TotalInstr
	}
	if opt.SweepInstr == 0 {
		opt.SweepInstr = def.SweepInstr
	}
	if len(opt.Workloads) == 0 {
		opt.Workloads = def.Workloads
	}
	if opt.Seed == 0 {
		opt.Seed = def.Seed
	}
	if len(opt.Mixes) == 0 {
		opt.Mixes = tenant.Names()
	}
	if len(opt.Arrivals) == 0 {
		opt.Arrivals = arrival.Names()
	}
	if len(opt.FleetDevices) == 0 {
		opt.FleetDevices = []int{1, 2, 4, 8}
	}
	if len(opt.FleetPlacements) == 0 {
		opt.FleetPlacements = fleet.PolicyNames()
	}
	// Workload and mix definitions reach the store identity through the
	// runner spec key, not the campaign fingerprint: every Spec.Key
	// folds a digest of its resolved generator source, so an edited
	// workload file re-colds exactly the design points that use it
	// (DESIGN.md §2.1). Register file workloads and mixes before
	// building the harness so plans resolve them.
	h := &Harness{Opt: opt}
	h.run = runner.New(opt.BaseConfig, opt.Seed, opt.Parallelism)
	if opt.CacheDir != "" {
		disk, err := store.Open(opt.CacheDir, store.Fingerprint(opt.BaseConfig, opt.Seed))
		if err != nil {
			// Environmental, not programmer error: surface it when the
			// campaign first executes, so the error-returning paths
			// (AllErr, RunShard, Render) report it instead of panicking.
			h.storeErr = err
		} else {
			h.run.Store = disk
			h.run.CacheOnly = opt.FromCache
		}
	} else if opt.FromCache {
		h.storeErr = fmt.Errorf("experiments: Options.FromCache requires Options.CacheDir")
	}
	h.run.OnEvent = func(ev runner.Event) {
		if h.Verbose != nil && !ev.Cached {
			h.Verbose(ev.Key, ev.Result)
		}
		if h.Opt.Progress != nil {
			h.Opt.Progress(ev.Done, ev.Total, ev.Key)
		}
	}
	return h
}

func (h *Harness) specs() []workloads.Spec {
	var out []workloads.Spec
	for _, name := range h.Opt.Workloads {
		s, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

// mutate lets callers adjust a variant config before a run.
type mutate = func(*system.Config)

// Plan accumulates the de-duplicated design points one or more figures
// need, then executes them as a single parallel batch.
type Plan struct {
	h     *Harness
	specs []runner.Spec
	index map[string]int
	res   []*system.Result
	done  bool
}

// NewPlan starts an empty plan against the harness's runner.
func (h *Harness) NewPlan() *Plan {
	return &Plan{h: h, index: make(map[string]int)}
}

// Pending is a handle to one planned run; Result is valid only after
// the plan executed.
type Pending struct {
	p *Plan
	i int
}

// Result returns the completed measurement set.
func (pe *Pending) Result() *system.Result {
	if !pe.p.done {
		panic("experiments: Pending.Result before Plan.MustExecute")
	}
	return pe.p.res[pe.i]
}

// Run declares one design point on one workload, de-duplicating against
// earlier declarations, and returns its handle. The signature mirrors
// the design-point vocabulary of §VI-A: workload, variant, total
// instruction budget, thread count (0 = paper default), and a tag
// naming any config mutations.
func (p *Plan) Run(spec workloads.Spec, v system.Variant, totalInstr uint64, threads int, tag string, muts ...mutate) *Pending {
	if p.done {
		panic("experiments: Plan.Run after Plan.MustExecute")
	}
	s := runner.Spec{
		Workload:   spec.Name,
		Variant:    v,
		TotalInstr: totalInstr,
		Threads:    threads,
		Tag:        tag,
	}
	if len(muts) > 0 {
		s.Mutate = func(c *system.Config) {
			for _, m := range muts {
				m(c)
			}
		}
	}
	return p.add(s)
}

// RunMix declares one multi-tenant design point: the mix's tenant
// groups co-located on one machine under variant v with totalInstr
// total instructions split per the mix's thread counts and
// intensities. De-duplicates like Run; the executed Result carries the
// per-tenant accounting slice.
//
// The mix must be registered (tenant.Register / MixFromFile) and match
// its registered definition: specs carry only the mix *name*, and the
// runner re-resolves it at execution time, so planning an unregistered
// or locally edited Mix value would silently simulate something other
// than what the caller passed. Mismatches panic here, at declaration,
// rather than mis-attribute results later.
func (p *Plan) RunMix(m tenant.Mix, v system.Variant, totalInstr uint64, tag string, muts ...mutate) *Pending {
	if p.done {
		panic("experiments: Plan.RunMix after Plan.MustExecute")
	}
	reg, err := tenant.ByName(m.Name)
	if err != nil {
		panic(fmt.Sprintf("experiments: Plan.RunMix: mix %q is not registered (tenant.Register or skybyte.MixFromFile it before planning): %v", m.Name, err))
	}
	if reg.SourceID() != m.SourceID() {
		panic(fmt.Sprintf("experiments: Plan.RunMix: mix %q differs from its registered definition; re-register the edited mix before planning", m.Name))
	}
	s := runner.Spec{
		Mix:        m.Name,
		Variant:    v,
		TotalInstr: totalInstr,
		Threads:    m.TotalThreads(),
		Tag:        tag,
	}
	if len(muts) > 0 {
		s.Mutate = func(c *system.Config) {
			for _, mu := range muts {
				mu(c)
			}
		}
	}
	return p.add(s)
}

// RunArrival declares one open-loop design point: the arrival spec's
// client cohorts paced by their sampled arrival processes under variant
// v, with every cohort rate multiplied by scale (the offered-intensity
// axis; 0 means 1, and the scale is part of the design point's
// identity). De-duplicates like Run; the executed Result carries the
// per-SLO-class OpenLoop accounting.
//
// Like RunMix, the spec must be registered (arrival.Register /
// arrival.FromFile) and match its registered definition: runner specs
// carry only the arrival *name*, re-resolved at execution time, so
// planning an unregistered or locally edited Spec value would silently
// simulate something other than what the caller passed.
func (p *Plan) RunArrival(a arrival.Spec, v system.Variant, totalInstr uint64, scale float64, tag string, muts ...mutate) *Pending {
	if p.done {
		panic("experiments: Plan.RunArrival after Plan.MustExecute")
	}
	reg, err := arrival.ByName(a.Name)
	if err != nil {
		panic(fmt.Sprintf("experiments: Plan.RunArrival: arrival spec %q is not registered (arrival.Register or skybyte.ArrivalFromFile it before planning): %v", a.Name, err))
	}
	if reg.SourceID() != a.SourceID() {
		panic(fmt.Sprintf("experiments: Plan.RunArrival: arrival spec %q differs from its registered definition; re-register the edited spec before planning", a.Name))
	}
	s := runner.Spec{
		Arrival:      a.Name,
		ArrivalScale: scale,
		Variant:      v,
		TotalInstr:   totalInstr,
		Tag:          tag,
	}
	if len(muts) > 0 {
		s.Mutate = func(c *system.Config) {
			for _, mu := range muts {
				mu(c)
			}
		}
	}
	return p.add(s)
}

// add de-duplicates s against earlier declarations and returns its
// handle.
func (p *Plan) add(s runner.Spec) *Pending {
	key := s.Key()
	if i, ok := p.index[key]; ok {
		return &Pending{p: p, i: i}
	}
	p.index[key] = len(p.specs)
	p.specs = append(p.specs, s)
	return &Pending{p: p, i: len(p.specs) - 1}
}

// Size returns the number of unique design points planned so far.
func (p *Plan) Size() int { return len(p.specs) }

// Shard returns the i-th of n deterministic, contiguous, balanced
// slices of the de-duplicated design points planned so far. Because a
// Plan accumulates specs in declaration order — which is itself
// deterministic — every process planning the same campaign computes
// identical shards: slice boundaries line up across machines without
// any coordination beyond (i, n).
func (p *Plan) Shard(i, n int) []runner.Spec {
	return runner.ShardSpecs(p.specs, i, n)
}

// Execute runs the batch across the worker pool. The possible failures
// are an unknown workload name, a cancelled context, a store that
// could not be opened, or — in render-from-cache mode — a design point
// missing from the store.
func (p *Plan) Execute(ctx context.Context) error {
	if p.h.storeErr != nil {
		return p.h.storeErr
	}
	res, err := p.h.run.RunAll(ctx, p.specs)
	if err != nil {
		return err
	}
	p.res = res
	p.done = true
	return nil
}

// MustExecute is Execute with a background context, panicking on
// failure — the right call when specs came from vetted planners and no
// store is involved.
func (p *Plan) MustExecute() {
	if err := p.Execute(context.Background()); err != nil {
		panic(err)
	}
}

// planner is one figure's plan phase: it declares runs on p and returns
// the closure that renders the table once p executed.
type planner func(p *Plan) func() Table

// table runs a single figure end to end: plan, execute, build.
func (h *Harness) table(f planner) Table {
	p := h.NewPlan()
	build := f(p)
	p.MustExecute()
	return build()
}

// Table is one reproduced figure or table.
type Table struct {
	ID     string // e.g. "fig14"
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, hcol := range t.Header {
		widths[i] = len(hcol)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// bytesLabel renders a byte count compactly for sweep headers.
func bytesLabel(n int) string {
	switch {
	case n >= mem.MiB:
		return fmt.Sprintf("%dMB", n/mem.MiB)
	case n >= mem.KiB:
		return fmt.Sprintf("%dKB", n/mem.KiB)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
