package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"skybyte/internal/store"
	"skybyte/internal/system"
	"skybyte/internal/workloads"
)

// tinyOptions keeps unit-test campaigns fast: two workloads, small budget.
func tinyOptions() Options {
	o := DefaultOptions()
	o.TotalInstr = 96_000
	o.SweepInstr = 48_000
	o.Workloads = []string{"bc", "srad"}
	return o
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig02ShowsSlowdown(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Fig02()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if s := parse(t, row[3]); s < 1.5 {
			t.Errorf("%s: CXL-SSD slowdown %.2f below the paper's 1.5x floor", row[0], s)
		}
	}
}

func TestFig04MemoryBound(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Fig04()
	for _, row := range tab.Rows {
		cssdMem := parse(t, row[3])
		if cssdMem < 50 {
			t.Errorf("%s: CXL-SSD only %.1f%% memory bound; paper reports 77-99.8%%", row[0], cssdMem)
		}
	}
}

func TestFig14FullBeatsBase(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Fig14()
	// Columns follow system.AllVariants; find Base-CSSD and SkyByte-Full.
	baseCol, fullCol, dramCol := -1, -1, -1
	for i, hd := range tab.Header {
		switch hd {
		case string(system.BaseCSSD):
			baseCol = i
		case string(system.SkyByteFull):
			fullCol = i
		case string(system.DRAMOnly):
			dramCol = i
		}
	}
	if baseCol < 0 || fullCol < 0 || dramCol < 0 {
		t.Fatal("variant columns missing")
	}
	for _, row := range tab.Rows {
		base := parse(t, row[baseCol])
		full := parse(t, row[fullCol])
		dram := parse(t, row[dramCol])
		if full > base {
			t.Errorf("%s: SkyByte-Full (%.3f) slower than Base (%.3f)", row[0], full, base)
		}
		if dram > full {
			t.Errorf("%s: DRAM-Only (%.3f) slower than Full (%.3f)", row[0], dram, full)
		}
	}
}

func TestFig18WriteLogReduces(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Fig18()
	wCol := -1
	for i, hd := range tab.Header {
		if hd == string(system.SkyByteW) {
			wCol = i
		}
	}
	for _, row := range tab.Rows {
		if row[wCol] == "n/a" {
			continue
		}
		if v := parse(t, row[wCol]); v > 1.0 {
			t.Errorf("%s: SkyByte-W write traffic %.3f not reduced vs Base", row[0], v)
		}
	}
}

func TestFig16FractionsSumToOne(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Fig16()
	for _, row := range tab.Rows {
		sum := 0.0
		for _, c := range row[1:] {
			sum += parse(t, c)
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s: breakdown sums to %.1f%%", row[0], sum)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Table1()
	if len(tab.Rows) != 2 || len(tab.Header) != 6 {
		t.Fatalf("table1 shape %dx%d", len(tab.Rows), len(tab.Header))
	}
	for _, row := range tab.Rows {
		if parse(t, row[4]) <= 0 {
			t.Errorf("%s: measured MPKI missing", row[0])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{ID: "x", Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := tab.String()
	if !strings.Contains(s, "== x: T ==") || !strings.Contains(s, "bb") {
		t.Fatalf("rendering broken:\n%s", s)
	}
}

// TestOptionsFieldDefaults pins the field-wise defaulting: a caller
// scoping only Workloads (TotalInstr left zero) keeps that scope and
// inherits the default budgets, rather than having the whole Options
// replaced.
func TestOptionsFieldDefaults(t *testing.T) {
	h := NewHarness(Options{Workloads: []string{"bc"}, Parallelism: 2})
	if len(h.Opt.Workloads) != 1 || h.Opt.Workloads[0] != "bc" {
		t.Fatalf("caller Workloads discarded: %v", h.Opt.Workloads)
	}
	def := DefaultOptions()
	if h.Opt.TotalInstr != def.TotalInstr || h.Opt.SweepInstr != def.SweepInstr || h.Opt.Seed != def.Seed {
		t.Fatalf("zero fields not defaulted: %+v", h.Opt)
	}
	if h.Opt.BaseConfig.Cores == 0 {
		t.Fatal("BaseConfig not defaulted")
	}
}

// TestCampaignParallelDeterminism is the contract of the plan/execute
// split: a campaign rendered at Parallelism 1 and at Parallelism 8 must
// produce byte-identical tables — same runs, same order, same numbers.
func TestCampaignParallelDeterminism(t *testing.T) {
	render := func(parallelism int) []string {
		o := tinyOptions()
		o.TotalInstr = 48_000
		o.SweepInstr = 24_000
		o.Parallelism = parallelism
		var out []string
		for _, tab := range NewHarness(o).All() {
			out = append(out, tab.String())
		}
		return out
	}
	seq := render(1)
	par := render(8)
	if len(seq) != len(par) {
		t.Fatalf("table counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("table %d differs between Parallelism 1 and 8:\n--- sequential ---\n%s--- parallel ---\n%s", i, seq[i], par[i])
		}
	}
}

// renderAll renders every campaign table to one string per table.
func renderAll(t *testing.T, h *Harness) []string {
	t.Helper()
	tables, err := h.AllErr(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(tables))
	for i, tab := range tables {
		out[i] = tab.String()
	}
	return out
}

func shardOptions(cacheDir string) Options {
	o := tinyOptions()
	o.TotalInstr = 48_000
	o.SweepInstr = 24_000
	o.CacheDir = cacheDir
	return o
}

// TestShardMergeDeterminism is the acceptance contract of the sharded
// store: a campaign split into 4 shards, executed by 4 independent
// harnesses into one store, then rendered from cache by a fifth that
// simulated nothing, must produce byte-identical tables to a direct
// unsharded (and storeless) run — and so must a 1-shard run.
func TestShardMergeDeterminism(t *testing.T) {
	direct := func() []string {
		o := tinyOptions()
		o.TotalInstr = 48_000
		o.SweepInstr = 24_000
		return renderAll(t, NewHarness(o))
	}()

	for _, shards := range []int{1, 4} {
		dir := t.TempDir()
		total := 0
		for i := 0; i < shards; i++ {
			o := shardOptions(dir)
			o.Shard, o.ShardCount = i, shards
			h := NewHarness(o)
			executed, planned, err := h.RunShard(context.Background())
			if err != nil {
				t.Fatalf("%d shards: shard %d: %v", shards, i, err)
			}
			total += executed
			if planned == 0 {
				t.Fatalf("%d shards: shard %d planned nothing", shards, i)
			}
		}

		o := shardOptions(dir)
		o.FromCache = true
		h := NewHarness(o)
		sims := 0
		h.Verbose = func(string, *system.Result) { sims++ }
		merged := renderAll(t, h)
		if sims != 0 {
			t.Fatalf("%d shards: render-from-cache simulated %d times", shards, sims)
		}
		if len(merged) != len(direct) {
			t.Fatalf("%d shards: table counts differ: %d vs %d", shards, len(merged), len(direct))
		}
		for i := range direct {
			if merged[i] != direct[i] {
				t.Errorf("%d shards: table %d differs from the direct run:\n--- direct ---\n%s--- merged ---\n%s",
					shards, i, direct[i], merged[i])
			}
		}
	}
}

// TestShardsPartitionThePlan pins the slice arithmetic: shards are
// disjoint, contiguous, cover the whole de-duplicated plan, and are
// identical however many processes compute them.
func TestShardsPartitionThePlan(t *testing.T) {
	h := NewHarness(tinyOptions())
	p, _ := h.planAll()
	n := 5
	covered := 0
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		for _, s := range p.Shard(i, n) {
			if seen[s.Key()] {
				t.Fatalf("spec %s appears in two shards", s.Key())
			}
			seen[s.Key()] = true
			covered++
		}
	}
	if covered != p.Size() {
		t.Fatalf("shards cover %d of %d specs", covered, p.Size())
	}
	if p.Shard(0, 1); len(p.Shard(0, 1)) != p.Size() {
		t.Fatal("1-shard slice is not the whole plan")
	}
}

// TestWarmStoreSkipsAllSimulations: re-running a campaign against the
// store it populated performs zero simulations and renders identical
// bytes — the headline warm-run speedup is pure recall.
func TestWarmStoreSkipsAllSimulations(t *testing.T) {
	dir := t.TempDir()
	cold := renderAll(t, NewHarness(shardOptions(dir)))

	h := NewHarness(shardOptions(dir))
	sims := 0
	h.Verbose = func(string, *system.Result) { sims++ }
	warm := renderAll(t, h)
	if sims != 0 {
		t.Fatalf("warm campaign simulated %d times, want 0", sims)
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Errorf("table %d differs between cold and warm runs", i)
		}
	}
}

// TestForeignStoreIsInvisible: a store populated under a different
// seed (hence fingerprint) must not serve a single result — the
// campaign re-simulates everything rather than render wrong tables.
func TestForeignStoreIsInvisible(t *testing.T) {
	dir := t.TempDir()
	o := shardOptions(dir)
	o.Workloads = []string{"bc"}
	NewHarness(o).Fig02()

	o2 := o
	o2.Seed = o.Seed + 1
	h := NewHarness(o2)
	sims := 0
	h.Verbose = func(string, *system.Result) { sims++ }
	h.Fig02()
	if sims == 0 {
		t.Fatal("campaign with a different seed recalled foreign store entries")
	}
}

// TestCampaignPlansOnce checks that All() de-duplicates across figures:
// the campaign executes exactly as many simulations as there are unique
// design points, however many figures share them.
func TestCampaignPlansOnce(t *testing.T) {
	o := tinyOptions()
	o.TotalInstr = 48_000
	o.SweepInstr = 24_000
	h := NewHarness(o)
	p := h.NewPlan()
	for _, f := range h.planners() {
		f(p)
	}
	unique := p.Size()
	runs := 0
	var last struct {
		done, total int
	}
	h.Opt.Progress = func(done, total int, key string) {
		runs++
		last.done, last.total = done, total
	}
	h.All()
	if runs != unique {
		t.Fatalf("campaign executed %d runs; %d unique design points planned", runs, unique)
	}
	if last.done != unique || last.total != unique {
		t.Fatalf("final progress %d/%d, want %d/%d", last.done, last.total, unique, unique)
	}
}

func TestHarnessMemoisation(t *testing.T) {
	h := NewHarness(tinyOptions())
	runs := 0
	h.Verbose = func(string, *system.Result) { runs++ }
	h.Fig14()
	afterFig14 := runs
	h.Fig16() // shares every design point with Fig14
	if runs != afterFig14 {
		t.Fatalf("Fig16 re-ran %d simulations; memoisation broken", runs-afterFig14)
	}
}

// TestFigExtRendersButStaysOutOfTheCampaign pins the optional-entry
// contract: figext renders on demand with one row per extension
// scenario (plus the geomean), its id is listed, and the default
// campaign excludes it so the paper's table set stays the paper's.
func TestFigExtRendersButStaysOutOfTheCampaign(t *testing.T) {
	o := tinyOptions()
	h := NewHarness(o)
	tab, err := h.Render(context.Background(), "figext")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(workloads.Extras())+1 {
		t.Fatalf("figext has %d rows, want %d scenarios + geomean", len(tab.Rows), len(workloads.Extras()))
	}
	found := false
	for _, id := range IDs() {
		if id == "figext" {
			found = true
		}
	}
	if !found {
		t.Fatal("figext missing from IDs()")
	}
	tables, err := NewHarness(o).AllErr(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if tb.ID == "figext" {
			t.Fatal("optional figext leaked into the default campaign")
		}
	}
}

// TestWorkloadDigestFoldsIntoCampaignIdentity pins the §2.1 extension:
// the harness snapshots the workload registry into the base config, so
// campaigns resolved against different workload definitions can never
// share a store namespace.
func TestWorkloadDigestFoldsIntoCampaignIdentity(t *testing.T) {
	h := NewHarness(tinyOptions())
	if h.Opt.BaseConfig.WorkloadDigest == "" {
		t.Fatal("harness did not fold the workload registry into the campaign identity")
	}
	if h.Opt.BaseConfig.WorkloadDigest != workloads.RegistryFingerprint() {
		t.Fatal("digest is not the registry fingerprint")
	}
	// A caller-provided digest wins (the CLIs set it after registering
	// workload files).
	o := tinyOptions()
	o.BaseConfig.WorkloadDigest = "custom"
	if NewHarness(o).Opt.BaseConfig.WorkloadDigest != "custom" {
		t.Fatal("caller digest overwritten")
	}
	// Different digests → different store fingerprints.
	a, b := tinyOptions(), tinyOptions()
	a.BaseConfig.WorkloadDigest = "one"
	b.BaseConfig.WorkloadDigest = "two"
	if store.Fingerprint(a.BaseConfig, a.Seed) == store.Fingerprint(b.BaseConfig, b.Seed) {
		t.Fatal("workload digest does not reach the store fingerprint")
	}
}
