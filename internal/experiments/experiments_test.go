package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"skybyte/internal/system"
	"skybyte/internal/tenant"
	"skybyte/internal/workloads"
)

// tinyOptions keeps unit-test campaigns fast: two workloads, small budget.
func tinyOptions() Options {
	o := DefaultOptions()
	o.TotalInstr = 96_000
	o.SweepInstr = 48_000
	o.Workloads = []string{"bc", "srad"}
	return o
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig02ShowsSlowdown(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Fig02()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if s := parse(t, row[3]); s < 1.5 {
			t.Errorf("%s: CXL-SSD slowdown %.2f below the paper's 1.5x floor", row[0], s)
		}
	}
}

func TestFig04MemoryBound(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Fig04()
	for _, row := range tab.Rows {
		cssdMem := parse(t, row[3])
		if cssdMem < 50 {
			t.Errorf("%s: CXL-SSD only %.1f%% memory bound; paper reports 77-99.8%%", row[0], cssdMem)
		}
	}
}

func TestFig14FullBeatsBase(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Fig14()
	// Columns follow system.AllVariants; find Base-CSSD and SkyByte-Full.
	baseCol, fullCol, dramCol := -1, -1, -1
	for i, hd := range tab.Header {
		switch hd {
		case string(system.BaseCSSD):
			baseCol = i
		case string(system.SkyByteFull):
			fullCol = i
		case string(system.DRAMOnly):
			dramCol = i
		}
	}
	if baseCol < 0 || fullCol < 0 || dramCol < 0 {
		t.Fatal("variant columns missing")
	}
	for _, row := range tab.Rows {
		base := parse(t, row[baseCol])
		full := parse(t, row[fullCol])
		dram := parse(t, row[dramCol])
		if full > base {
			t.Errorf("%s: SkyByte-Full (%.3f) slower than Base (%.3f)", row[0], full, base)
		}
		if dram > full {
			t.Errorf("%s: DRAM-Only (%.3f) slower than Full (%.3f)", row[0], dram, full)
		}
	}
}

func TestFig18WriteLogReduces(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Fig18()
	wCol := -1
	for i, hd := range tab.Header {
		if hd == string(system.SkyByteW) {
			wCol = i
		}
	}
	for _, row := range tab.Rows {
		if row[wCol] == "n/a" {
			continue
		}
		if v := parse(t, row[wCol]); v > 1.0 {
			t.Errorf("%s: SkyByte-W write traffic %.3f not reduced vs Base", row[0], v)
		}
	}
}

func TestFig16FractionsSumToOne(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Fig16()
	for _, row := range tab.Rows {
		sum := 0.0
		for _, c := range row[1:] {
			sum += parse(t, c)
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%s: breakdown sums to %.1f%%", row[0], sum)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.Table1()
	if len(tab.Rows) != 2 || len(tab.Header) != 6 {
		t.Fatalf("table1 shape %dx%d", len(tab.Rows), len(tab.Header))
	}
	for _, row := range tab.Rows {
		if parse(t, row[4]) <= 0 {
			t.Errorf("%s: measured MPKI missing", row[0])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{ID: "x", Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := tab.String()
	if !strings.Contains(s, "== x: T ==") || !strings.Contains(s, "bb") {
		t.Fatalf("rendering broken:\n%s", s)
	}
}

// TestOptionsFieldDefaults pins the field-wise defaulting: a caller
// scoping only Workloads (TotalInstr left zero) keeps that scope and
// inherits the default budgets, rather than having the whole Options
// replaced.
func TestOptionsFieldDefaults(t *testing.T) {
	h := NewHarness(Options{Workloads: []string{"bc"}, Parallelism: 2})
	if len(h.Opt.Workloads) != 1 || h.Opt.Workloads[0] != "bc" {
		t.Fatalf("caller Workloads discarded: %v", h.Opt.Workloads)
	}
	def := DefaultOptions()
	if h.Opt.TotalInstr != def.TotalInstr || h.Opt.SweepInstr != def.SweepInstr || h.Opt.Seed != def.Seed {
		t.Fatalf("zero fields not defaulted: %+v", h.Opt)
	}
	if h.Opt.BaseConfig.Cores == 0 {
		t.Fatal("BaseConfig not defaulted")
	}
}

// TestCampaignParallelDeterminism is the contract of the plan/execute
// split: a campaign rendered at Parallelism 1 and at Parallelism 8 must
// produce byte-identical tables — same runs, same order, same numbers.
func TestCampaignParallelDeterminism(t *testing.T) {
	render := func(parallelism int) []string {
		o := tinyOptions()
		o.TotalInstr = 48_000
		o.SweepInstr = 24_000
		o.Parallelism = parallelism
		var out []string
		for _, tab := range NewHarness(o).All() {
			out = append(out, tab.String())
		}
		return out
	}
	seq := render(1)
	par := render(8)
	if len(seq) != len(par) {
		t.Fatalf("table counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("table %d differs between Parallelism 1 and 8:\n--- sequential ---\n%s--- parallel ---\n%s", i, seq[i], par[i])
		}
	}
}

// renderAll renders every campaign table to one string per table.
func renderAll(t *testing.T, h *Harness) []string {
	t.Helper()
	tables, err := h.AllErr(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(tables))
	for i, tab := range tables {
		out[i] = tab.String()
	}
	return out
}

func shardOptions(cacheDir string) Options {
	o := tinyOptions()
	o.TotalInstr = 48_000
	o.SweepInstr = 24_000
	o.CacheDir = cacheDir
	return o
}

// TestShardMergeDeterminism is the acceptance contract of the sharded
// store: a campaign split into 4 shards, executed by 4 independent
// harnesses into one store, then rendered from cache by a fifth that
// simulated nothing, must produce byte-identical tables to a direct
// unsharded (and storeless) run — and so must a 1-shard run.
func TestShardMergeDeterminism(t *testing.T) {
	direct := func() []string {
		o := tinyOptions()
		o.TotalInstr = 48_000
		o.SweepInstr = 24_000
		return renderAll(t, NewHarness(o))
	}()

	for _, shards := range []int{1, 4} {
		dir := t.TempDir()
		total := 0
		for i := 0; i < shards; i++ {
			o := shardOptions(dir)
			o.Shard, o.ShardCount = i, shards
			h := NewHarness(o)
			executed, planned, err := h.RunShard(context.Background())
			if err != nil {
				t.Fatalf("%d shards: shard %d: %v", shards, i, err)
			}
			total += executed
			if planned == 0 {
				t.Fatalf("%d shards: shard %d planned nothing", shards, i)
			}
		}

		o := shardOptions(dir)
		o.FromCache = true
		h := NewHarness(o)
		sims := 0
		h.Verbose = func(string, *system.Result) { sims++ }
		merged := renderAll(t, h)
		if sims != 0 {
			t.Fatalf("%d shards: render-from-cache simulated %d times", shards, sims)
		}
		if len(merged) != len(direct) {
			t.Fatalf("%d shards: table counts differ: %d vs %d", shards, len(merged), len(direct))
		}
		for i := range direct {
			if merged[i] != direct[i] {
				t.Errorf("%d shards: table %d differs from the direct run:\n--- direct ---\n%s--- merged ---\n%s",
					shards, i, direct[i], merged[i])
			}
		}
	}
}

// TestShardsPartitionThePlan pins the slice arithmetic: shards are
// disjoint, contiguous, cover the whole de-duplicated plan, and are
// identical however many processes compute them.
func TestShardsPartitionThePlan(t *testing.T) {
	h := NewHarness(tinyOptions())
	p, _ := h.planAll()
	n := 5
	covered := 0
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		for _, s := range p.Shard(i, n) {
			if seen[s.Key()] {
				t.Fatalf("spec %s appears in two shards", s.Key())
			}
			seen[s.Key()] = true
			covered++
		}
	}
	if covered != p.Size() {
		t.Fatalf("shards cover %d of %d specs", covered, p.Size())
	}
	if p.Shard(0, 1); len(p.Shard(0, 1)) != p.Size() {
		t.Fatal("1-shard slice is not the whole plan")
	}
}

// TestWarmStoreSkipsAllSimulations: re-running a campaign against the
// store it populated performs zero simulations and renders identical
// bytes — the headline warm-run speedup is pure recall.
func TestWarmStoreSkipsAllSimulations(t *testing.T) {
	dir := t.TempDir()
	cold := renderAll(t, NewHarness(shardOptions(dir)))

	h := NewHarness(shardOptions(dir))
	sims := 0
	h.Verbose = func(string, *system.Result) { sims++ }
	warm := renderAll(t, h)
	if sims != 0 {
		t.Fatalf("warm campaign simulated %d times, want 0", sims)
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Errorf("table %d differs between cold and warm runs", i)
		}
	}
}

// TestForeignStoreIsInvisible: a store populated under a different
// seed (hence fingerprint) must not serve a single result — the
// campaign re-simulates everything rather than render wrong tables.
func TestForeignStoreIsInvisible(t *testing.T) {
	dir := t.TempDir()
	o := shardOptions(dir)
	o.Workloads = []string{"bc"}
	NewHarness(o).Fig02()

	o2 := o
	o2.Seed = o.Seed + 1
	h := NewHarness(o2)
	sims := 0
	h.Verbose = func(string, *system.Result) { sims++ }
	h.Fig02()
	if sims == 0 {
		t.Fatal("campaign with a different seed recalled foreign store entries")
	}
}

// TestCampaignPlansOnce checks that All() de-duplicates across figures:
// the campaign executes exactly as many simulations as there are unique
// design points, however many figures share them.
func TestCampaignPlansOnce(t *testing.T) {
	o := tinyOptions()
	o.TotalInstr = 48_000
	o.SweepInstr = 24_000
	h := NewHarness(o)
	p := h.NewPlan()
	for _, f := range h.planners() {
		f(p)
	}
	unique := p.Size()
	runs := 0
	var last struct {
		done, total int
	}
	h.Opt.Progress = func(done, total int, key string) {
		runs++
		last.done, last.total = done, total
	}
	h.All()
	if runs != unique {
		t.Fatalf("campaign executed %d runs; %d unique design points planned", runs, unique)
	}
	if last.done != unique || last.total != unique {
		t.Fatalf("final progress %d/%d, want %d/%d", last.done, last.total, unique, unique)
	}
}

func TestHarnessMemoisation(t *testing.T) {
	h := NewHarness(tinyOptions())
	runs := 0
	h.Verbose = func(string, *system.Result) { runs++ }
	h.Fig14()
	afterFig14 := runs
	h.Fig16() // shares every design point with Fig14
	if runs != afterFig14 {
		t.Fatalf("Fig16 re-ran %d simulations; memoisation broken", runs-afterFig14)
	}
}

// TestFigExtRendersButStaysOutOfTheCampaign pins the optional-entry
// contract: figext renders on demand with one row per extension
// scenario (plus the geomean), its id is listed, and the default
// campaign excludes it so the paper's table set stays the paper's.
func TestFigExtRendersButStaysOutOfTheCampaign(t *testing.T) {
	o := tinyOptions()
	h := NewHarness(o)
	tab, err := h.Render(context.Background(), "figext")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(workloads.Extras())+1 {
		t.Fatalf("figext has %d rows, want %d scenarios + geomean", len(tab.Rows), len(workloads.Extras()))
	}
	found := false
	for _, id := range IDs() {
		if id == "figext" {
			found = true
		}
	}
	if !found {
		t.Fatal("figext missing from IDs()")
	}
	tables, err := NewHarness(o).AllErr(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if tb.ID == "figext" {
			t.Fatal("optional figext leaked into the default campaign")
		}
	}
}

// TestFigMixRendersAndStaysOptional pins the multi-tenant fairness
// table: one row per (mix, variant, tenant), a slowdown in every
// tenant row, max/min and Jain on each group's first row — and, like
// figext, exclusion from the default campaign.
func TestFigMixRendersAndStaysOptional(t *testing.T) {
	o := tinyOptions()
	h := NewHarness(o)
	tab, err := h.Render(context.Background(), "figmix")
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 0
	for _, name := range h.Opt.Mixes {
		m, err := tenant.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wantRows += len(m.Tenants) * len(figmixVariants)
	}
	if len(tab.Rows) != wantRows {
		t.Fatalf("figmix has %d rows, want %d", len(tab.Rows), wantRows)
	}
	for i, row := range tab.Rows {
		if s := parse(t, row[7]); s <= 0 {
			t.Errorf("row %d: slowdown %q not positive", i, row[7])
		}
	}
	// Jain index lives on each group's first row and is a fraction.
	if j := parse(t, tab.Rows[0][9]); j <= 0 || j > 1 {
		t.Errorf("Jain index %v outside (0,1]", j)
	}
	tables, err := NewHarness(o).AllErr(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if tb.ID == "figmix" {
			t.Fatal("optional figmix leaked into the default campaign")
		}
	}
}

// TestFigMixParallelDeterminism is the mixed-run acceptance contract:
// the fairness table — per-tenant completion times, slowdowns, and
// fairness indices included — renders byte-identically at any
// parallelism.
func TestFigMixParallelDeterminism(t *testing.T) {
	render := func(parallelism int) string {
		o := tinyOptions()
		o.SweepInstr = 24_000
		o.Parallelism = parallelism
		tab, err := NewHarness(o).Render(context.Background(), "figmix")
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("figmix differs between Parallelism 1 and 8:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

// TestFigExtShapes pins the extension scenarios' stories the way the
// Fig. 14/18 tests pin the paper's: graph500's pointer chase is the
// coordinated context switch's win (SkyByte-C beats Base-CSSD), and
// log-append's dense sequential appends are the write log's
// adversarial case (SkyByte-W provides no win over Base-CSSD's
// page-granular cache there).
func TestFigExtShapes(t *testing.T) {
	h := NewHarness(tinyOptions())
	tab := h.FigExt()
	cCol, wCol := -1, -1
	for i, hd := range tab.Header {
		switch hd {
		case string(system.SkyByteC):
			cCol = i
		case string(system.SkyByteW):
			wCol = i
		}
	}
	if cCol < 0 || wCol < 0 {
		t.Fatal("variant columns missing from figext")
	}
	found := map[string]bool{}
	for _, row := range tab.Rows {
		switch row[0] {
		case "graph500":
			found["graph500"] = true
			if norm := parse(t, row[cCol]); norm >= 1.0 {
				t.Errorf("graph500: SkyByte-C normalized time %.3f; the context switch should win (<1.0)", norm)
			}
		case "log-append":
			found["log-append"] = true
			if norm := parse(t, row[wCol]); norm < 0.98 {
				t.Errorf("log-append: SkyByte-W normalized time %.3f; dense appends should deny the log a win (>=0.98)", norm)
			}
		}
	}
	if !found["graph500"] || !found["log-append"] {
		t.Fatalf("figext rows missing scenarios: %v", found)
	}
}

// TestRunMixRejectsUnregisteredOrEditedMixes: specs carry only the mix
// name and the runner re-resolves it, so planning a Mix value that is
// not (or no longer) the registered definition must fail at
// declaration rather than silently simulate the registered one.
func TestRunMixRejectsUnregisteredOrEditedMixes(t *testing.T) {
	h := NewHarness(tinyOptions())
	mustPanic := func(name string, m tenant.Mix) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RunMix did not panic", name)
			}
		}()
		h.NewPlan().RunMix(m, system.BaseCSSD, 1000, "")
	}
	unregistered := tenant.Mix{
		Format:  tenant.MixFormatVersion,
		Name:    "never-registered",
		Tenants: []tenant.TenantDef{{Workload: "bc", Threads: 2}},
	}
	mustPanic("unregistered", unregistered)

	edited, err := tenant.ByName("graph-vs-log")
	if err != nil {
		t.Fatal(err)
	}
	edited.Tenants = append([]tenant.TenantDef(nil), edited.Tenants...)
	edited.Tenants[0].Intensity = 2 // same name, different semantics
	mustPanic("edited copy of a registered mix", edited)

	// The registered definition itself plans fine.
	reg, _ := tenant.ByName("graph-vs-log")
	if pe := h.NewPlan().RunMix(reg, system.BaseCSSD, 1000, ""); pe == nil {
		t.Fatal("registered mix rejected")
	}
}

// TestSurgicalStoreInvalidation pins the §2.1 contract after the
// WorkloadDigest → source-folded-spec-key change: registering an
// *unrelated* workload must not cool a single cached entry — the warm
// campaign still performs zero simulations — because invalidation now
// lives in each spec's own key, not in a whole-registry digest.
func TestSurgicalStoreInvalidation(t *testing.T) {
	dir := t.TempDir()
	o := shardOptions(dir)
	o.Workloads = []string{"bc"}

	sims := 0
	h := NewHarness(o)
	h.Verbose = func(string, *system.Result) { sims++ }
	h.Fig02()
	if sims == 0 {
		t.Fatal("cold campaign simulated nothing")
	}

	// An unrelated registration: a brand-new declarative workload no
	// planned spec resolves.
	unrelated := workloads.Def{
		Format:         workloads.DefFormatVersion,
		Name:           "surgical-unrelated",
		FootprintPages: 1024,
		Regions:        []workloads.RegionDef{{Name: "r", Start: 0, Size: 1}},
		Phases: []workloads.PhaseDef{{Ops: []workloads.OpDef{
			{Op: "load", Region: "r"},
			{Op: "compute", Min: 4},
		}}},
	}
	if err := workloads.Register(unrelated.MustSpec()); err != nil {
		t.Fatal(err)
	}

	sims = 0
	h2 := NewHarness(shardOptionsScoped(dir, "bc"))
	h2.Verbose = func(string, *system.Result) { sims++ }
	h2.Fig02()
	if sims != 0 {
		t.Fatalf("registering an unrelated workload cooled the store: %d re-simulations", sims)
	}
}

func shardOptionsScoped(dir, workload string) Options {
	o := shardOptions(dir)
	o.Workloads = []string{workload}
	return o
}

// TestMixEditRecoldsOnlyMixEntries pins the mix half of surgical
// invalidation: re-registering an edited mix re-simulates exactly the
// co-located design points — the tenants' solo baselines, whose
// workloads did not change, recall warm from the store.
func TestMixEditRecoldsOnlyMixEntries(t *testing.T) {
	mixOf := func(intensity float64) tenant.Mix {
		return tenant.Mix{
			Format: tenant.MixFormatVersion,
			Name:   "edit-mix",
			Tenants: []tenant.TenantDef{
				{Workload: "bc", Threads: 2},
				{Workload: "srad", Threads: 2, Intensity: intensity},
			},
		}
	}
	if err := tenant.Register(mixOf(1)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := func() Options {
		o := shardOptions(dir)
		o.Mixes = []string{"edit-mix"}
		return o
	}

	sims := 0
	h := NewHarness(opts())
	h.Verbose = func(string, *system.Result) { sims++ }
	if _, err := h.Render(context.Background(), "figmix"); err != nil {
		t.Fatal(err)
	}
	mixedRuns := len(figmixVariants)    // one co-located run per variant
	soloRuns := 2 * len(figmixVariants) // two tenants' baselines per variant
	if sims != mixedRuns+soloRuns {
		t.Fatalf("cold figmix simulated %d runs, want %d", sims, mixedRuns+soloRuns)
	}

	// The editing loop: same name, changed intensity.
	if err := tenant.Register(mixOf(0.5)); err != nil {
		t.Fatal(err)
	}
	sims = 0
	h2 := NewHarness(opts())
	h2.Verbose = func(string, *system.Result) { sims++ }
	if _, err := h2.Render(context.Background(), "figmix"); err != nil {
		t.Fatal(err)
	}
	// The changed intensity alters tenant 1's budget, so its solo
	// baselines are genuinely different design points (new budget in
	// the key) — they re-simulate along with the mixed runs. Tenant 0's
	// baselines are untouched and must recall warm.
	if want := mixedRuns + len(figmixVariants); sims != want {
		t.Fatalf("edited mix re-simulated %d runs, want %d (mixed runs + the re-budgeted tenant's solos)", sims, want)
	}
}

// TestTenantRowsExtendFigures pins the per-tenant extension of
// Figs. 14, 16, and 17: with Options.TenantRows set, every
// (mix, tenant) pair contributes a "mix/tenant" row carrying the
// figure's own metric — normalized completion with the Base-CSSD
// column at exactly 1.000 (fig14), a request breakdown that still
// sums to 100% (fig16), and one AMAT row per design (fig17) — and
// with it unset (the default) the tables carry no tenant rows at all,
// so the paper's table set stays byte-identical.
func TestTenantRowsExtendFigures(t *testing.T) {
	o := tinyOptions()
	o.SweepInstr = 24_000
	o.Mixes = []string{"graph-vs-log"}
	o.TenantRows = true
	h := NewHarness(o)

	m, err := tenant.ByName("graph-vs-log")
	if err != nil {
		t.Fatal(err)
	}
	nTen := len(m.Tenants)
	nSolo := len(o.Workloads)
	const prefix = "graph-vs-log/"

	fig14 := h.Fig14()
	if want := nSolo + 1 + nTen; len(fig14.Rows) != want { // solo rows, geo.mean, tenant rows
		t.Fatalf("fig14 has %d rows, want %d", len(fig14.Rows), want)
	}
	baseCol := -1
	for i, hd := range fig14.Header {
		if hd == string(system.BaseCSSD) {
			baseCol = i
		}
	}
	for _, row := range fig14.Rows[nSolo+1:] {
		if !strings.HasPrefix(row[0], prefix) {
			t.Errorf("fig14 tenant row named %q, want %s*", row[0], prefix)
		}
		if row[baseCol] != "1.000" {
			t.Errorf("fig14 %s: Base-CSSD column %q; each tenant normalizes to its own base run", row[0], row[baseCol])
		}
	}

	fig16 := h.Fig16()
	if want := nSolo + nTen; len(fig16.Rows) != want {
		t.Fatalf("fig16 has %d rows, want %d", len(fig16.Rows), want)
	}
	for _, row := range fig16.Rows[nSolo:] {
		if !strings.HasPrefix(row[0], prefix) {
			t.Errorf("fig16 tenant row named %q, want %s*", row[0], prefix)
		}
		sum := 0.0
		for _, c := range row[1:] {
			sum += parse(t, c)
		}
		if sum < 99 || sum > 101 {
			t.Errorf("fig16 %s: tenant breakdown sums to %.1f%%", row[0], sum)
		}
	}

	fig17 := h.Fig17()
	soloRows := nSolo * len(fig17Variants)
	if want := soloRows + nTen*len(fig17Variants); len(fig17.Rows) != want {
		t.Fatalf("fig17 has %d rows, want %d", len(fig17.Rows), want)
	}
	for _, row := range fig17.Rows[soloRows:] {
		if !strings.HasPrefix(row[0], prefix) {
			t.Errorf("fig17 tenant row named %q, want %s*", row[0], prefix)
		}
		if amat := parse(t, row[2]); amat <= 0 {
			t.Errorf("fig17 %s/%s: AMAT %q not positive", row[0], row[1], row[2])
		}
	}

	// Unset (the default): exactly the paper's rows, no tenant rows.
	o.TenantRows = false
	plain := NewHarness(o)
	if tab := plain.Fig16(); len(tab.Rows) != nSolo {
		t.Fatalf("fig16 without TenantRows has %d rows, want %d", len(tab.Rows), nSolo)
	}
}
