package experiments

import (
	"skybyte/internal/stats"
	"skybyte/internal/system"
	"skybyte/internal/workloads"
)

// FigExt is an extension beyond the paper: the extra built-in
// scenarios composed from the declarative workload primitives
// (WORKLOADS.md) — a scan-heavy analytics mix, a bursty log-append
// writer, and a Graph500-style pointer-chase kernel — compared across
// Base-CSSD, the SkyByte ablations, and DRAM-Only. It is optional: the
// default campaign (All/RunShard) excludes it so the paper's tables
// stay the paper's; render it with skybyte-bench -figure figext.
func (h *Harness) FigExt() Table { return h.table(h.figExt) }

func (h *Harness) figExt(p *Plan) func() Table {
	variants := []system.Variant{system.BaseCSSD, system.SkyByteW, system.SkyByteC, system.SkyByteFull, system.DRAMOnly}
	specs := workloads.Extras()
	type row struct {
		spec workloads.Spec
		runs []*Pending
	}
	var rows []row
	for _, spec := range specs {
		r := row{spec: spec}
		for _, v := range variants {
			r.runs = append(r.runs, p.Run(spec, v, h.Opt.SweepInstr, 0, ""))
		}
		rows = append(rows, r)
	}
	return func() Table {
		t := Table{
			ID:     "figext",
			Title:  "Extension scenarios (declarative primitives) across design points",
			Note:   "execution time normalized to Base-CSSD per workload; scenarios are data, not code (WORKLOADS.md)",
			Header: []string{"workload", "suite"},
		}
		for _, v := range variants {
			t.Header = append(t.Header, string(v))
		}
		t.Header = append(t.Header, "Full speedup")
		var speedups []float64
		for _, r := range rows {
			base := float64(r.runs[0].Result().ExecTime)
			cells := []string{r.spec.Name, r.spec.Suite}
			var full float64
			for i, pe := range r.runs {
				norm := float64(pe.Result().ExecTime) / base
				if variants[i] == system.SkyByteFull {
					full = 1 / norm
				}
				cells = append(cells, f3(norm))
			}
			speedups = append(speedups, full)
			cells = append(cells, f2(full))
			t.Rows = append(t.Rows, cells)
		}
		gm := make([]string, len(t.Header))
		for i := range gm {
			gm[i] = ""
		}
		gm[0] = "geo.mean"
		gm[len(gm)-1] = f2(stats.GeoMean(speedups))
		t.Rows = append(t.Rows, gm)
		return t
	}
}
