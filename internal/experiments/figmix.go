package experiments

import (
	"fmt"

	"skybyte/internal/stats"
	"skybyte/internal/system"
	"skybyte/internal/tenant"
	"skybyte/internal/workloads"
)

// figmixVariants is the figmix comparison set: the baseline, each
// SkyByte mechanism alone (who pays for context switches; who pays
// for log drains), and the full design.
var figmixVariants = []system.Variant{system.BaseCSSD, system.SkyByteC, system.SkyByteW, system.SkyByteFull}

// FigMix is the multi-tenant fairness/interference study (an extension
// beyond the paper, which replays one workload on every thread): each
// mix co-locates heterogeneous tenants on one machine, and the table
// reports every tenant's slowdown against its own solo run — the same
// workload, thread count, and per-thread budget on an otherwise idle
// machine — plus the mix's max/min slowdown disparity and Jain
// fairness index. Like figext it is optional: the default campaign
// excludes it; render with skybyte-bench -figure figmix.
func (h *Harness) FigMix() Table { return h.table(h.figMix) }

func (h *Harness) figMix(p *Plan) func() Table {
	type cell struct {
		mix   tenant.Mix
		v     system.Variant
		mixed *Pending
		solos []*Pending
	}
	var cells []cell
	for _, name := range h.Opt.Mixes {
		m, err := tenant.ByName(name)
		if err != nil {
			panic(err)
		}
		for _, v := range figmixVariants {
			c := cell{mix: m, v: v}
			c.mixed = p.RunMix(m, v, h.Opt.SweepInstr, "")
			for i, td := range m.Tenants {
				w, err := workloads.ByName(td.Workload)
				if err != nil {
					panic(err)
				}
				// The solo baseline replays exactly the tenant's share of
				// the mixed run: same streams (tenant-local thread ids
				// 0..Threads-1), same per-thread budget, alone on the
				// machine.
				per := m.PerThreadInstr(i, h.Opt.SweepInstr)
				c.solos = append(c.solos, p.Run(w, v, per*uint64(td.Threads), td.Threads, ""))
			}
			cells = append(cells, c)
		}
	}
	return func() Table {
		t := Table{
			ID:    "figmix",
			Title: "Multi-tenant interference: per-tenant slowdown vs solo run",
			Note: "slowdown = tenant completion time co-located / same workload+threads+budget solo; " +
				"Jain index over per-tenant slowdowns (1 = perfectly fair)",
			Header: []string{"mix", "variant", "tenant", "workload", "threads", "solo", "mixed", "slowdown", "max/min", "Jain"},
		}
		for _, c := range cells {
			mixed := c.mixed.Result()
			if len(mixed.Tenants) != len(c.mix.Tenants) {
				panic(fmt.Sprintf("experiments: mix %q produced %d tenant results, want %d",
					c.mix.Name, len(mixed.Tenants), len(c.mix.Tenants)))
			}
			slowdowns := make([]float64, len(mixed.Tenants))
			for i := range mixed.Tenants {
				solo := c.solos[i].Result()
				slowdowns[i] = stats.Ratio(float64(mixed.Tenants[i].ExecTime), float64(solo.ExecTime))
			}
			for i, tr := range mixed.Tenants {
				solo := c.solos[i].Result()
				row := []string{
					c.mix.Name, string(c.v), tr.Name, tr.Workload,
					fmt.Sprintf("%d", tr.Threads),
					solo.ExecTime.String(), tr.ExecTime.String(),
					f2(slowdowns[i]),
					"", "",
				}
				if i == 0 {
					row[8] = f2(stats.MaxMinRatio(slowdowns))
					row[9] = f3(stats.JainIndex(slowdowns))
				}
				t.Rows = append(t.Rows, row)
			}
		}
		return t
	}
}
