package experiments

import (
	"fmt"

	"skybyte/internal/mem"
	"skybyte/internal/osched"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/system"
	"skybyte/internal/workloads"
)

// fourCore mutates a config to the motivation study's 4-thread/4-core
// setup (§II-C: "we launch four threads on four cores").
func fourCore(c *system.Config) { c.Cores = 4 }

// motivationPair returns the DRAM and Base-CSSD runs of §II-C.
func (h *Harness) motivationPair(spec workloads.Spec) (dramR, baseR *system.Result) {
	dramR = h.run(spec, system.DRAMOnly, h.Opt.TotalInstr, 4, "4c", fourCore)
	baseR = h.run(spec, system.BaseCSSD, h.Opt.TotalInstr, 4, "4c", fourCore)
	return
}

// Fig02 reproduces Fig. 2: end-to-end execution time of DRAM vs. the
// baseline CXL-SSD (paper: 1.5–31.4x worse).
func (h *Harness) Fig02() Table {
	t := Table{
		ID:     "fig02",
		Title:  "Execution time, DRAM vs baseline CXL-SSD (normalized to DRAM)",
		Header: []string{"workload", "DRAM", "Base-CSSD", "slowdown"},
		Note:   "paper reports 1.5-31.4x slowdowns",
	}
	for _, spec := range h.specs() {
		d, b := h.motivationPair(spec)
		t.Rows = append(t.Rows, []string{
			spec.Name, "1.00", f2(float64(b.ExecTime) / float64(d.ExecTime)),
			f2(float64(b.ExecTime) / float64(d.ExecTime)),
		})
	}
	return t
}

// Fig03 reproduces Fig. 3: off-chip access latency distributions. The
// paper's headline: >90% of CXL-SSD requests within 200 ns, tails at
// hundreds of µs (ms under GC).
func (h *Harness) Fig03() Table {
	t := Table{
		ID:     "fig03",
		Title:  "Off-chip read latency distribution (ns)",
		Header: []string{"workload", "memory", "p50", "p90", "p99", "p99.9", "max", "<200ns"},
	}
	for _, spec := range h.specs() {
		if !in(spec.Name, "bc", "bfs-dense", "srad", "tpcc") {
			continue
		}
		d, b := h.motivationPair(spec)
		for _, pair := range []struct {
			label string
			r     *system.Result
		}{{"DRAM", d}, {"CXL-SSD", b}} {
			lh := pair.r.ReadLat
			t.Rows = append(t.Rows, []string{
				spec.Name, pair.label,
				fmt.Sprintf("%.0f", lh.Percentile(50).Nanoseconds()),
				fmt.Sprintf("%.0f", lh.Percentile(90).Nanoseconds()),
				fmt.Sprintf("%.0f", lh.Percentile(99).Nanoseconds()),
				fmt.Sprintf("%.0f", lh.Percentile(99.9).Nanoseconds()),
				fmt.Sprintf("%.0f", lh.Max().Nanoseconds()),
				pct(lh.FractionBelow(200 * sim.Nanosecond)),
			})
		}
	}
	return t
}

// Fig04 reproduces Fig. 4: memory- vs compute-bounded execution (paper:
// 62.9–98.7% memory-bound on DRAM, 77–99.8% on the CXL-SSD).
func (h *Harness) Fig04() Table {
	t := Table{
		ID:     "fig04",
		Title:  "Execution boundedness, DRAM vs baseline CXL-SSD",
		Header: []string{"workload", "DRAM mem", "DRAM compute", "CSSD mem", "CSSD compute"},
	}
	for _, spec := range h.specs() {
		d, b := h.motivationPair(spec)
		t.Rows = append(t.Rows, []string{
			spec.Name,
			pct(d.Bound.MemFrac()), pct(d.Bound.ComputeFrac()),
			pct(b.Bound.MemFrac()), pct(b.Bound.ComputeFrac()),
		})
	}
	return t
}

// localityRatios are the footprint:cache ratios swept in Figs. 5–6.
var localityRatios = []int{4, 16, 64}

// Fig05 reproduces Fig. 5: the CDF of the fraction of cachelines read per
// page resident in the SSD DRAM cache (paper: most workloads touch <40% of
// lines in >75% of pages).
func (h *Harness) Fig05() Table { return h.locality("fig05", true) }

// Fig06 reproduces Fig. 6: the same distribution for dirty lines per page
// flushed to flash.
func (h *Harness) Fig06() Table { return h.locality("fig06", false) }

func (h *Harness) locality(id string, read bool) Table {
	title := "Dirty-line ratio of pages flushed to flash (CDF points)"
	if read {
		title = "Accessed-line ratio of pages read into SSD DRAM (CDF points)"
	}
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"workload", "ratio 1:n", "<=12.5%", "<=25%", "<=50%", "mean"},
	}
	for _, spec := range h.specs() {
		if !in(spec.Name, "bc", "dlrm", "radix", "ycsb") {
			continue
		}
		for _, n := range localityRatios {
			n := n
			r := h.run(spec, system.BaseCSSD, h.Opt.SweepInstr, 0,
				fmt.Sprintf("loc%d", n), func(c *system.Config) {
					c.TrackLocality = true
					c.SSDDRAMBytes = int(spec.FootprintBytes()) / n
					c.WriteLogBytes = c.SSDDRAMBytes / 8
				})
			dist := r.ReadLocality
			if !read {
				dist = r.WriteLocality
			}
			row := []string{spec.Name, fmt.Sprintf("1:%d", n)}
			var mean float64
			for _, cut := range []float64{0.125, 0.25, 0.5} {
				frac := 0.0
				for _, p := range dist {
					if p.Value <= cut {
						frac = p.Cum
					}
				}
				row = append(row, pct(frac))
			}
			for _, p := range dist {
				mean += 0 * p.Value // CDF points carry cumulative info; mean from last
			}
			if len(dist) > 0 {
				// Approximate mean from the CDF points.
				prev := 0.0
				for _, p := range dist {
					mean += p.Value * (p.Cum - prev)
					prev = p.Cum
				}
			}
			row = append(row, f3(mean))
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// fig9Thresholds are the trigger thresholds of Fig. 9, in µs.
var fig9Thresholds = []int{2, 10, 20, 40, 60, 80}

// Fig09 reproduces Fig. 9: sensitivity to the context-switch trigger
// threshold (paper: 2 µs is best; higher thresholds forgo switches).
func (h *Harness) Fig09() Table {
	t := Table{
		ID:     "fig09",
		Title:  "Execution time vs trigger threshold (normalized to 2µs)",
		Header: append([]string{"workload"}, mapStrings(fig9Thresholds, func(v int) string { return fmt.Sprintf("%dµs", v) })...),
	}
	for _, spec := range h.specs() {
		if !in(spec.Name, "bc", "bfs-dense", "srad", "tpcc") {
			continue
		}
		var base sim.Time
		row := []string{spec.Name}
		for i, us := range fig9Thresholds {
			us := us
			r := h.run(spec, system.SkyByteFull, h.Opt.SweepInstr, 0,
				fmt.Sprintf("thr%d", us), func(c *system.Config) {
					c.HintThreshold = sim.Time(us) * sim.Microsecond
				})
			if i == 0 {
				base = r.ExecTime
			}
			row = append(row, f2(float64(r.ExecTime)/float64(base)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10 reproduces Fig. 10: the three scheduling policies perform
// similarly; context-switch time is visible for switch-heavy workloads.
func (h *Harness) Fig10() Table {
	t := Table{
		ID:     "fig10",
		Title:  "Scheduling policies (exec normalized to RR; time breakdown)",
		Header: []string{"workload", "policy", "norm exec", "ctx", "mem", "compute"},
	}
	for _, spec := range h.specs() {
		if !in(spec.Name, "bc", "radix", "srad", "tpcc") {
			continue
		}
		var base sim.Time
		for i, pol := range []osched.PolicyKind{osched.PolicyRR, osched.PolicyRandom, osched.PolicyCFS} {
			pol := pol
			r := h.run(spec, system.SkyByteFull, h.Opt.SweepInstr, 0,
				"pol"+string(pol), func(c *system.Config) { c.Policy = pol })
			if i == 0 {
				base = r.ExecTime
			}
			t.Rows = append(t.Rows, []string{
				spec.Name, string(pol), f2(float64(r.ExecTime) / float64(base)),
				pct(r.Bound.CtxFrac()), pct(r.Bound.MemFrac()), pct(r.Bound.ComputeFrac()),
			})
		}
	}
	return t
}

// Fig14 reproduces the headline Fig. 14: every variant's execution time
// normalized to Base-CSSD (paper: SkyByte-Full 6.11x mean speedup, reaching
// 75% of DRAM-Only).
func (h *Harness) Fig14() Table {
	t := Table{
		ID:     "fig14",
		Title:  "Normalized execution time over Base-CSSD (lower is better)",
		Header: append([]string{"workload"}, mapStrings(system.AllVariants, func(v system.Variant) string { return string(v) })...),
	}
	speedups := map[system.Variant][]float64{}
	for _, spec := range h.specs() {
		base := h.run(spec, system.BaseCSSD, h.Opt.TotalInstr, 0, "")
		row := []string{spec.Name}
		for _, v := range system.AllVariants {
			r := h.run(spec, v, h.Opt.TotalInstr, 0, "")
			row = append(row, f3(float64(r.ExecTime)/float64(base.ExecTime)))
			speedups[v] = append(speedups[v], float64(base.ExecTime)/float64(r.ExecTime))
		}
		t.Rows = append(t.Rows, row)
	}
	geo := []string{"geo.mean"}
	for _, v := range system.AllVariants {
		geo = append(geo, f3(1/stats.GeoMean(speedups[v])))
	}
	t.Rows = append(t.Rows, geo)
	t.Note = fmt.Sprintf("SkyByte-Full mean speedup over Base-CSSD: %.2fx (paper: 6.11x); of DRAM-Only: %.0f%% (paper: 75%%)",
		stats.GeoMean(speedups[system.SkyByteFull]),
		100*stats.GeoMean(speedups[system.SkyByteFull])/stats.GeoMean(speedups[system.DRAMOnly]))
	return t
}

// fig15Threads is the thread sweep of Fig. 15.
var fig15Threads = []int{8, 16, 24, 32, 40, 48}

// Fig15 reproduces Fig. 15: throughput and SSD bandwidth utilization of
// SkyByte-Full as threads increase (normalized to SkyByte-WP @ 8 threads).
func (h *Harness) Fig15() Table {
	t := Table{
		ID:     "fig15",
		Title:  "SkyByte-Full throughput (and link GB/s) vs thread count, normalized to SkyByte-WP@8",
		Header: append([]string{"workload"}, mapStrings(fig15Threads, func(v int) string { return fmt.Sprintf("t=%d", v) })...),
	}
	for _, spec := range h.specs() {
		wp := h.run(spec, system.SkyByteWP, h.Opt.SweepInstr, 8, "f15")
		baseIPS := wp.IPS()
		row := []string{spec.Name}
		for _, n := range fig15Threads {
			r := h.run(spec, system.SkyByteFull, h.Opt.SweepInstr, n, fmt.Sprintf("f15t%d", n))
			row = append(row, fmt.Sprintf("%s (%.2fGB/s)", f2(r.IPS()/baseIPS), r.SSDBandwidthBps/1e9))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig16 reproduces Fig. 16: the breakdown of memory requests served by
// host DRAM, SSD DRAM hits, SSD DRAM misses, and SSD writes.
func (h *Harness) Fig16() Table {
	t := Table{
		ID:     "fig16",
		Title:  "Memory request breakdown of SkyByte-Full",
		Header: []string{"workload", "H-R/W", "S-R-H", "S-R-M", "S-W"},
	}
	for _, spec := range h.specs() {
		r := h.run(spec, system.SkyByteFull, h.Opt.TotalInstr, 0, "")
		row := []string{spec.Name}
		for c := stats.HostRW; c <= stats.SSDWrite; c++ {
			row = append(row, pct(r.Breakdown.Frac(c)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// fig17Variants is the design set of Fig. 17.
var fig17Variants = []system.Variant{system.BaseCSSD, system.SkyByteP, system.SkyByteW, system.SkyByteWP, system.SkyByteFull, system.DRAMOnly}

// Fig17 reproduces Fig. 17: average memory access time and its breakdown
// (paper: 14.19x AMAT reduction for Full over Base on average).
func (h *Harness) Fig17() Table {
	t := Table{
		ID:     "fig17",
		Title:  "AMAT (ns) and component breakdown",
		Header: []string{"workload", "design", "AMAT", "host", "protocol", "indexing", "ssdDRAM", "flash"},
	}
	for _, spec := range h.specs() {
		for _, v := range fig17Variants {
			r := h.run(spec, v, h.Opt.TotalInstr, 0, "")
			a := r.AMAT
			t.Rows = append(t.Rows, []string{
				spec.Name, string(v),
				fmt.Sprintf("%.0f", a.Mean().Nanoseconds()),
				fmt.Sprintf("%.0f", a.MeanOf(stats.AMATHostDRAM).Nanoseconds()),
				fmt.Sprintf("%.0f", a.MeanOf(stats.AMATCXLProtocol).Nanoseconds()),
				fmt.Sprintf("%.0f", a.MeanOf(stats.AMATIndexing).Nanoseconds()),
				fmt.Sprintf("%.0f", a.MeanOf(stats.AMATSSDDRAM).Nanoseconds()),
				fmt.Sprintf("%.0f", a.MeanOf(stats.AMATFlash).Nanoseconds()),
			})
		}
	}
	return t
}

// fig18Variants is the design set of Fig. 18.
var fig18Variants = []system.Variant{system.BaseCSSD, system.SkyByteP, system.SkyByteC, system.SkyByteW, system.SkyByteCP, system.SkyByteWP, system.SkyByteFull}

// Fig18 reproduces Fig. 18: flash write traffic normalized to Base-CSSD
// (paper: 23.08x mean reduction for the full design).
func (h *Harness) Fig18() Table {
	t := Table{
		ID:     "fig18",
		Title:  "Flash write traffic normalized to Base-CSSD (lower is better)",
		Header: append([]string{"workload"}, mapStrings(fig18Variants, func(v system.Variant) string { return string(v) })...),
	}
	var reductions []float64
	for _, spec := range h.specs() {
		base := h.run(spec, system.BaseCSSD, h.Opt.TotalInstr, 0, "")
		bp := float64(base.Traffic.TotalPrograms())
		row := []string{spec.Name}
		for _, v := range fig18Variants {
			r := h.run(spec, v, h.Opt.TotalInstr, 0, "")
			p := float64(r.Traffic.TotalPrograms())
			if bp == 0 {
				row = append(row, "n/a")
				continue
			}
			row = append(row, f3(p/bp))
			if v == system.SkyByteFull && p > 0 {
				reductions = append(reductions, bp/p)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	if len(reductions) > 0 {
		t.Note = fmt.Sprintf("SkyByte-Full mean write-traffic reduction: %.1fx (paper: 23.08x)", stats.GeoMean(reductions))
	}
	return t
}

// fig19Sizes are the write-log sizes of Figs. 19–20, scaled 1/64 from the
// paper's 0.5–256 MB sweep over a 512 MB SSD DRAM.
var fig19Sizes = []int{16 * mem.KiB, 64 * mem.KiB, 256 * mem.KiB, 1 * mem.MiB, 4 * mem.MiB}

// Fig19 reproduces Fig. 19: performance vs write-log size (total SSD DRAM
// held constant).
func (h *Harness) Fig19() Table { return h.logSweep("fig19", true) }

// Fig20 reproduces Fig. 20: flash write traffic vs write-log size.
func (h *Harness) Fig20() Table { return h.logSweep("fig20", false) }

func (h *Harness) logSweep(id string, perf bool) Table {
	title := "Flash write traffic vs write-log size (normalized to 1MB)"
	if perf {
		title = "Execution time vs write-log size (normalized to 1MB)"
	}
	t := Table{
		ID:     id,
		Title:  title,
		Header: append([]string{"workload"}, mapStrings(fig19Sizes, bytesLabel)...),
		Note:   "1MB is 1/64 of the paper's default 64MB log; total SSD DRAM fixed",
	}
	for _, spec := range h.specs() {
		var baseExec, baseProg float64
		vals := make([]float64, len(fig19Sizes))
		for i, sz := range fig19Sizes {
			sz := sz
			r := h.run(spec, system.SkyByteFull, h.Opt.SweepInstr, 0,
				"log"+bytesLabel(sz), func(c *system.Config) { c.WriteLogBytes = sz })
			if perf {
				vals[i] = float64(r.ExecTime)
			} else {
				vals[i] = float64(r.Traffic.TotalPrograms())
			}
			if sz == 1*mem.MiB {
				baseExec = float64(r.ExecTime)
				baseProg = float64(r.Traffic.TotalPrograms())
			}
		}
		row := []string{spec.Name}
		for _, v := range vals {
			den := baseExec
			if !perf {
				den = baseProg
			}
			if den == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, f3(v/den))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// fig21Sizes are the SSD DRAM capacities of Fig. 21, scaled 1/64 from
// 0.125–2 GB.
var fig21Sizes = []int{2 * mem.MiB, 4 * mem.MiB, 8 * mem.MiB, 16 * mem.MiB, 32 * mem.MiB}

var fig21Variants = []system.Variant{system.BaseCSSD, system.SkyByteP, system.SkyByteW, system.SkyByteWP, system.SkyByteFull}

// Fig21 reproduces Fig. 21: performance with varying SSD DRAM cache size
// (host promotion budget and log scale with it, as §VI-F specifies).
func (h *Harness) Fig21() Table {
	t := Table{
		ID:     "fig21",
		Title:  "Execution time vs SSD DRAM size (normalized to SkyByte-Full @8MB)",
		Header: append([]string{"workload", "design"}, mapStrings(fig21Sizes, bytesLabel)...),
	}
	for _, spec := range h.specs() {
		ref := h.run(spec, system.SkyByteFull, h.Opt.SweepInstr, 0, "dram8MB", sizeMutation(8*mem.MiB))
		for _, v := range fig21Variants {
			row := []string{spec.Name, string(v)}
			for _, sz := range fig21Sizes {
				r := h.run(spec, v, h.Opt.SweepInstr, 0, "dram"+bytesLabel(sz), sizeMutation(sz))
				row = append(row, f2(float64(r.ExecTime)/float64(ref.ExecTime)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// sizeMutation rescales the SSD DRAM, keeping the paper's ratios: the log
// is 1/8 of SSD DRAM, the promotion budget 4x SSD DRAM (§VI-F).
func sizeMutation(bytes int) mutate {
	return func(c *system.Config) {
		c.SSDDRAMBytes = bytes
		c.WriteLogBytes = bytes / 8
		c.PromotedMaxBytes = 4 * bytes
	}
}

// fig22Timings are Table IV's NAND classes.
var fig22Timings = []string{"ULL", "ULL2", "SLC", "MLC"}

// Fig22 reproduces Fig. 22: sensitivity to flash latency class, varying
// SkyByte-Full's thread count (16/24/32).
func (h *Harness) Fig22() Table {
	t := Table{
		ID:     "fig22",
		Title:  "Execution time (µs) by NAND class (Table IV)",
		Header: []string{"workload", "NAND", "SkyByte-P", "SkyByte-W", "SkyByte-WP", "Full-16", "Full-24", "Full-32"},
	}
	for _, spec := range h.specs() {
		for _, nand := range fig22Timings {
			nand := nand
			mut := timingMutation(nand)
			row := []string{spec.Name, nand}
			for _, v := range []system.Variant{system.SkyByteP, system.SkyByteW, system.SkyByteWP} {
				r := h.run(spec, v, h.Opt.SweepInstr, 0, "nand"+nand, mut)
				row = append(row, fmt.Sprintf("%.0f", r.ExecTime.Microseconds()))
			}
			for _, n := range []int{16, 24, 32} {
				r := h.run(spec, system.SkyByteFull, h.Opt.SweepInstr, n, fmt.Sprintf("nand%st%d", nand, n), mut)
				row = append(row, fmt.Sprintf("%.0f", r.ExecTime.Microseconds()))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

func timingMutation(nand string) mutate {
	return func(c *system.Config) {
		switch nand {
		case "ULL":
			// default
		case "ULL2":
			c.Timing.Read, c.Timing.Program, c.Timing.Erase = 4*sim.Microsecond, 75*sim.Microsecond, 850*sim.Microsecond
		case "SLC":
			c.Timing.Read, c.Timing.Program, c.Timing.Erase = 25*sim.Microsecond, 200*sim.Microsecond, 1500*sim.Microsecond
		case "MLC":
			c.Timing.Read, c.Timing.Program, c.Timing.Erase = 50*sim.Microsecond, 600*sim.Microsecond, 3000*sim.Microsecond
		}
	}
}

// fig23Variants is the migration-mechanism comparison set of Fig. 23.
var fig23Variants = []system.Variant{system.SkyByteC, system.AstriFlashCXL, system.SkyByteCT, system.SkyByteCP, system.SkyByteWCT, system.SkyByteFull}

// Fig23 reproduces Fig. 23: alternative page-management mechanisms,
// normalized to SkyByte-C.
func (h *Harness) Fig23() Table {
	t := Table{
		ID:     "fig23",
		Title:  "Page-migration mechanisms (exec normalized to SkyByte-C)",
		Header: append([]string{"workload"}, mapStrings(fig23Variants, func(v system.Variant) string { return string(v) })...),
	}
	for _, spec := range h.specs() {
		base := h.run(spec, system.SkyByteC, h.Opt.SweepInstr, 0, "f23")
		row := []string{spec.Name}
		for _, v := range fig23Variants {
			r := h.run(spec, v, h.Opt.SweepInstr, 0, "f23")
			row = append(row, f3(float64(r.ExecTime)/float64(base.ExecTime)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func in(name string, set ...string) bool {
	for _, s := range set {
		if s == name {
			return true
		}
	}
	return false
}

func mapStrings[T any](xs []T, f func(T) string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}
