package experiments

import (
	"fmt"

	"skybyte/internal/mem"
	"skybyte/internal/osched"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/system"
	"skybyte/internal/workloads"
)

// Every figure is written as a plan/build pair: the lowercase planner
// declares its design points against a Plan and returns the closure
// that renders the table once results exist; the exported method wraps
// it for standalone use. All() reuses the planners to batch the whole
// campaign into one parallel execution.

// fourCore mutates a config to the motivation study's 4-thread/4-core
// setup (§II-C: "we launch four threads on four cores").
func fourCore(c *system.Config) { c.Cores = 4 }

// motivationPair plans the DRAM and Base-CSSD runs of §II-C.
func (p *Plan) motivationPair(spec workloads.Spec) (dramR, baseR *Pending) {
	dramR = p.Run(spec, system.DRAMOnly, p.h.Opt.TotalInstr, 4, "4c", fourCore)
	baseR = p.Run(spec, system.BaseCSSD, p.h.Opt.TotalInstr, 4, "4c", fourCore)
	return
}

// Fig02 reproduces Fig. 2: end-to-end execution time of DRAM vs. the
// baseline CXL-SSD (paper: 1.5–31.4x worse).
func (h *Harness) Fig02() Table { return h.table(h.fig02) }

func (h *Harness) fig02(p *Plan) func() Table {
	type row struct {
		name    string
		dram, b *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		d, b := p.motivationPair(spec)
		rows = append(rows, row{spec.Name, d, b})
	}
	return func() Table {
		t := Table{
			ID:     "fig02",
			Title:  "Execution time, DRAM vs baseline CXL-SSD (normalized to DRAM)",
			Header: []string{"workload", "DRAM", "Base-CSSD", "slowdown"},
			Note:   "paper reports 1.5-31.4x slowdowns",
		}
		for _, r := range rows {
			d, b := r.dram.Result(), r.b.Result()
			t.Rows = append(t.Rows, []string{
				r.name, "1.00", f2(float64(b.ExecTime) / float64(d.ExecTime)),
				f2(float64(b.ExecTime) / float64(d.ExecTime)),
			})
		}
		return t
	}
}

// Fig03 reproduces Fig. 3: off-chip access latency distributions. The
// paper's headline: >90% of CXL-SSD requests within 200 ns, tails at
// hundreds of µs (ms under GC).
func (h *Harness) Fig03() Table { return h.table(h.fig03) }

func (h *Harness) fig03(p *Plan) func() Table {
	type row struct {
		name    string
		dram, b *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		if !in(spec.Name, "bc", "bfs-dense", "srad", "tpcc") {
			continue
		}
		d, b := p.motivationPair(spec)
		rows = append(rows, row{spec.Name, d, b})
	}
	return func() Table {
		t := Table{
			ID:     "fig03",
			Title:  "Off-chip read latency distribution (ns)",
			Header: []string{"workload", "memory", "p50", "p90", "p99", "p99.9", "max", "<200ns"},
		}
		for _, r := range rows {
			for _, pair := range []struct {
				label string
				r     *system.Result
			}{{"DRAM", r.dram.Result()}, {"CXL-SSD", r.b.Result()}} {
				lh := pair.r.ReadLat
				t.Rows = append(t.Rows, []string{
					r.name, pair.label,
					fmt.Sprintf("%.0f", lh.Percentile(50).Nanoseconds()),
					fmt.Sprintf("%.0f", lh.Percentile(90).Nanoseconds()),
					fmt.Sprintf("%.0f", lh.Percentile(99).Nanoseconds()),
					fmt.Sprintf("%.0f", lh.Percentile(99.9).Nanoseconds()),
					fmt.Sprintf("%.0f", lh.Max().Nanoseconds()),
					pct(lh.FractionBelow(200 * sim.Nanosecond)),
				})
			}
		}
		return t
	}
}

// Fig04 reproduces Fig. 4: memory- vs compute-bounded execution (paper:
// 62.9–98.7% memory-bound on DRAM, 77–99.8% on the CXL-SSD).
func (h *Harness) Fig04() Table { return h.table(h.fig04) }

func (h *Harness) fig04(p *Plan) func() Table {
	type row struct {
		name    string
		dram, b *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		d, b := p.motivationPair(spec)
		rows = append(rows, row{spec.Name, d, b})
	}
	return func() Table {
		t := Table{
			ID:     "fig04",
			Title:  "Execution boundedness, DRAM vs baseline CXL-SSD",
			Header: []string{"workload", "DRAM mem", "DRAM compute", "CSSD mem", "CSSD compute"},
		}
		for _, r := range rows {
			d, b := r.dram.Result(), r.b.Result()
			t.Rows = append(t.Rows, []string{
				r.name,
				pct(d.Bound.MemFrac()), pct(d.Bound.ComputeFrac()),
				pct(b.Bound.MemFrac()), pct(b.Bound.ComputeFrac()),
			})
		}
		return t
	}
}

// localityRatios are the footprint:cache ratios swept in Figs. 5–6.
var localityRatios = []int{4, 16, 64}

// Fig05 reproduces Fig. 5: the CDF of the fraction of cachelines read per
// page resident in the SSD DRAM cache (paper: most workloads touch <40% of
// lines in >75% of pages).
func (h *Harness) Fig05() Table { return h.table(h.fig05) }

func (h *Harness) fig05(p *Plan) func() Table { return h.locality(p, "fig05", true) }

// Fig06 reproduces Fig. 6: the same distribution for dirty lines per page
// flushed to flash.
func (h *Harness) Fig06() Table { return h.table(h.fig06) }

func (h *Harness) fig06(p *Plan) func() Table { return h.locality(p, "fig06", false) }

func (h *Harness) locality(p *Plan, id string, read bool) func() Table {
	type cell struct {
		name string
		n    int
		run  *Pending
	}
	var cells []cell
	for _, spec := range h.specs() {
		if !in(spec.Name, "bc", "dlrm", "radix", "ycsb") {
			continue
		}
		for _, n := range localityRatios {
			n := n
			footprint := int(spec.FootprintBytes())
			run := p.Run(spec, system.BaseCSSD, h.Opt.SweepInstr, 0,
				fmt.Sprintf("loc%d", n), func(c *system.Config) {
					c.TrackLocality = true
					c.SSDDRAMBytes = footprint / n
					c.WriteLogBytes = c.SSDDRAMBytes / 8
				})
			cells = append(cells, cell{spec.Name, n, run})
		}
	}
	return func() Table {
		title := "Dirty-line ratio of pages flushed to flash (CDF points)"
		if read {
			title = "Accessed-line ratio of pages read into SSD DRAM (CDF points)"
		}
		t := Table{
			ID:     id,
			Title:  title,
			Header: []string{"workload", "ratio 1:n", "<=12.5%", "<=25%", "<=50%", "mean"},
		}
		for _, c := range cells {
			r := c.run.Result()
			dist := r.ReadLocality
			if !read {
				dist = r.WriteLocality
			}
			row := []string{c.name, fmt.Sprintf("1:%d", c.n)}
			for _, cut := range []float64{0.125, 0.25, 0.5} {
				frac := 0.0
				for _, pt := range dist {
					if pt.Value <= cut {
						frac = pt.Cum
					}
				}
				row = append(row, pct(frac))
			}
			// Approximate mean from the CDF points.
			var mean float64
			prev := 0.0
			for _, pt := range dist {
				mean += pt.Value * (pt.Cum - prev)
				prev = pt.Cum
			}
			row = append(row, f3(mean))
			t.Rows = append(t.Rows, row)
		}
		return t
	}
}

// fig9Thresholds are the trigger thresholds of Fig. 9, in µs.
var fig9Thresholds = []int{2, 10, 20, 40, 60, 80}

// Fig09 reproduces Fig. 9: sensitivity to the context-switch trigger
// threshold (paper: 2 µs is best; higher thresholds forgo switches).
func (h *Harness) Fig09() Table { return h.table(h.fig09) }

func (h *Harness) fig09(p *Plan) func() Table {
	type row struct {
		name string
		runs []*Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		if !in(spec.Name, "bc", "bfs-dense", "srad", "tpcc") {
			continue
		}
		r := row{name: spec.Name}
		for _, us := range fig9Thresholds {
			us := us
			r.runs = append(r.runs, p.Run(spec, system.SkyByteFull, h.Opt.SweepInstr, 0,
				fmt.Sprintf("thr%d", us), func(c *system.Config) {
					c.HintThreshold = sim.Time(us) * sim.Microsecond
				}))
		}
		rows = append(rows, r)
	}
	return func() Table {
		t := Table{
			ID:     "fig09",
			Title:  "Execution time vs trigger threshold (normalized to 2µs)",
			Header: append([]string{"workload"}, mapStrings(fig9Thresholds, func(v int) string { return fmt.Sprintf("%dµs", v) })...),
		}
		for _, r := range rows {
			base := r.runs[0].Result().ExecTime
			row := []string{r.name}
			for _, run := range r.runs {
				row = append(row, f2(float64(run.Result().ExecTime)/float64(base)))
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
}

// fig10Policies is the scheduling-policy comparison set of Fig. 10.
var fig10Policies = []osched.PolicyKind{osched.PolicyRR, osched.PolicyRandom, osched.PolicyCFS}

// Fig10 reproduces Fig. 10: the three scheduling policies perform
// similarly; context-switch time is visible for switch-heavy workloads.
func (h *Harness) Fig10() Table { return h.table(h.fig10) }

func (h *Harness) fig10(p *Plan) func() Table {
	type row struct {
		name string
		runs []*Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		if !in(spec.Name, "bc", "radix", "srad", "tpcc") {
			continue
		}
		r := row{name: spec.Name}
		for _, pol := range fig10Policies {
			pol := pol
			r.runs = append(r.runs, p.Run(spec, system.SkyByteFull, h.Opt.SweepInstr, 0,
				"pol"+string(pol), func(c *system.Config) { c.Policy = pol }))
		}
		rows = append(rows, r)
	}
	return func() Table {
		t := Table{
			ID:     "fig10",
			Title:  "Scheduling policies (exec normalized to RR; time breakdown)",
			Header: []string{"workload", "policy", "norm exec", "ctx", "mem", "compute"},
		}
		for _, r := range rows {
			base := r.runs[0].Result().ExecTime
			for i, pol := range fig10Policies {
				res := r.runs[i].Result()
				t.Rows = append(t.Rows, []string{
					r.name, string(pol), f2(float64(res.ExecTime) / float64(base)),
					pct(res.Bound.CtxFrac()), pct(res.Bound.MemFrac()), pct(res.Bound.ComputeFrac()),
				})
			}
		}
		return t
	}
}

// Fig14 reproduces the headline Fig. 14: every variant's execution time
// normalized to Base-CSSD (paper: SkyByte-Full 6.11x mean speedup, reaching
// 75% of DRAM-Only).
func (h *Harness) Fig14() Table { return h.table(h.fig14) }

func (h *Harness) fig14(p *Plan) func() Table {
	type row struct {
		name     string
		base     *Pending
		variants []*Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		r := row{name: spec.Name, base: p.Run(spec, system.BaseCSSD, h.Opt.TotalInstr, 0, "")}
		for _, v := range system.AllVariants {
			r.variants = append(r.variants, p.Run(spec, v, h.Opt.TotalInstr, 0, ""))
		}
		rows = append(rows, r)
	}
	mixes := h.planMixPoints(p, system.AllVariants)
	return func() Table {
		t := Table{
			ID:     "fig14",
			Title:  "Normalized execution time over Base-CSSD (lower is better)",
			Header: append([]string{"workload"}, mapStrings(system.AllVariants, func(v system.Variant) string { return string(v) })...),
		}
		speedups := map[system.Variant][]float64{}
		for _, r := range rows {
			base := r.base.Result()
			row := []string{r.name}
			for i, v := range system.AllVariants {
				res := r.variants[i].Result()
				row = append(row, f3(float64(res.ExecTime)/float64(base.ExecTime)))
				speedups[v] = append(speedups[v], float64(base.ExecTime)/float64(res.ExecTime))
			}
			t.Rows = append(t.Rows, row)
		}
		geo := []string{"geo.mean"}
		for _, v := range system.AllVariants {
			geo = append(geo, f3(1/stats.GeoMean(speedups[v])))
		}
		t.Rows = append(t.Rows, geo)
		// Per-tenant rows: each tenant's completion time under every
		// variant, normalized to that same tenant's completion under the
		// Base-CSSD mixed run — co-runner interference included on both
		// sides, so the column reads exactly like the solo rows above.
		baseIdx := 0
		for i, v := range system.AllVariants {
			if v == system.BaseCSSD {
				baseIdx = i
			}
		}
		for _, pt := range mixes {
			base := pt.tenants(baseIdx)
			for ti := range base {
				row := []string{pt.rowName(base[ti])}
				for vi := range system.AllVariants {
					tr := pt.tenants(vi)[ti]
					row = append(row, f3(float64(tr.ExecTime)/float64(base[ti].ExecTime)))
				}
				t.Rows = append(t.Rows, row)
			}
		}
		t.Note = fmt.Sprintf("SkyByte-Full mean speedup over Base-CSSD: %.2fx (paper: 6.11x); of DRAM-Only: %.0f%% (paper: 75%%)",
			stats.GeoMean(speedups[system.SkyByteFull]),
			100*stats.GeoMean(speedups[system.SkyByteFull])/stats.GeoMean(speedups[system.DRAMOnly]))
		return t
	}
}

// fig15Threads is the thread sweep of Fig. 15.
var fig15Threads = []int{8, 16, 24, 32, 40, 48}

// Fig15 reproduces Fig. 15: throughput and SSD bandwidth utilization of
// SkyByte-Full as threads increase (normalized to SkyByte-WP @ 8 threads).
func (h *Harness) Fig15() Table { return h.table(h.fig15) }

func (h *Harness) fig15(p *Plan) func() Table {
	type row struct {
		name string
		wp   *Pending
		full []*Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		r := row{name: spec.Name, wp: p.Run(spec, system.SkyByteWP, h.Opt.SweepInstr, 8, "f15")}
		for _, n := range fig15Threads {
			r.full = append(r.full, p.Run(spec, system.SkyByteFull, h.Opt.SweepInstr, n, fmt.Sprintf("f15t%d", n)))
		}
		rows = append(rows, r)
	}
	return func() Table {
		t := Table{
			ID:     "fig15",
			Title:  "SkyByte-Full throughput (and link GB/s) vs thread count, normalized to SkyByte-WP@8",
			Header: append([]string{"workload"}, mapStrings(fig15Threads, func(v int) string { return fmt.Sprintf("t=%d", v) })...),
		}
		for _, r := range rows {
			baseIPS := r.wp.Result().IPS()
			row := []string{r.name}
			for _, run := range r.full {
				res := run.Result()
				row = append(row, fmt.Sprintf("%s (%.2fGB/s)", f2(res.IPS()/baseIPS), res.SSDBandwidthBps/1e9))
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
}

// Fig16 reproduces Fig. 16: the breakdown of memory requests served by
// host DRAM, SSD DRAM hits, SSD DRAM misses, and SSD writes.
func (h *Harness) Fig16() Table { return h.table(h.fig16) }

func (h *Harness) fig16(p *Plan) func() Table {
	type row struct {
		name string
		full *Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		rows = append(rows, row{spec.Name, p.Run(spec, system.SkyByteFull, h.Opt.TotalInstr, 0, "")})
	}
	mixes := h.planMixPoints(p, []system.Variant{system.SkyByteFull})
	return func() Table {
		t := Table{
			ID:     "fig16",
			Title:  "Memory request breakdown of SkyByte-Full",
			Header: []string{"workload", "H-R/W", "S-R-H", "S-R-M", "S-W"},
		}
		for _, r := range rows {
			res := r.full.Result()
			row := []string{r.name}
			for c := stats.HostRW; c <= stats.SSDWrite; c++ {
				row = append(row, pct(res.Breakdown.Frac(c)))
			}
			t.Rows = append(t.Rows, row)
		}
		// Per-tenant rows: where each tenant's own requests were served
		// while co-located — tenants attribute requests to themselves, so
		// every row still sums to 100%.
		for _, pt := range mixes {
			for _, tr := range pt.tenants(0) {
				row := []string{pt.rowName(tr)}
				for c := stats.HostRW; c <= stats.SSDWrite; c++ {
					row = append(row, pct(tr.Breakdown.Frac(c)))
				}
				t.Rows = append(t.Rows, row)
			}
		}
		return t
	}
}

// fig17Variants is the design set of Fig. 17.
var fig17Variants = []system.Variant{system.BaseCSSD, system.SkyByteP, system.SkyByteW, system.SkyByteWP, system.SkyByteFull, system.DRAMOnly}

// Fig17 reproduces Fig. 17: average memory access time and its breakdown
// (paper: 14.19x AMAT reduction for Full over Base on average).
func (h *Harness) Fig17() Table { return h.table(h.fig17) }

func (h *Harness) fig17(p *Plan) func() Table {
	type row struct {
		name string
		runs []*Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		r := row{name: spec.Name}
		for _, v := range fig17Variants {
			r.runs = append(r.runs, p.Run(spec, v, h.Opt.TotalInstr, 0, ""))
		}
		rows = append(rows, r)
	}
	mixes := h.planMixPoints(p, fig17Variants)
	return func() Table {
		t := Table{
			ID:     "fig17",
			Title:  "AMAT (ns) and component breakdown",
			Header: []string{"workload", "design", "AMAT", "host", "protocol", "indexing", "ssdDRAM", "flash"},
		}
		amatRow := func(name string, v system.Variant, a stats.AMAT) []string {
			return []string{
				name, string(v),
				fmt.Sprintf("%.0f", a.Mean().Nanoseconds()),
				fmt.Sprintf("%.0f", a.MeanOf(stats.AMATHostDRAM).Nanoseconds()),
				fmt.Sprintf("%.0f", a.MeanOf(stats.AMATCXLProtocol).Nanoseconds()),
				fmt.Sprintf("%.0f", a.MeanOf(stats.AMATIndexing).Nanoseconds()),
				fmt.Sprintf("%.0f", a.MeanOf(stats.AMATSSDDRAM).Nanoseconds()),
				fmt.Sprintf("%.0f", a.MeanOf(stats.AMATFlash).Nanoseconds()),
			}
		}
		for _, r := range rows {
			for i, v := range fig17Variants {
				t.Rows = append(t.Rows, amatRow(r.name, v, r.runs[i].Result().AMAT))
			}
		}
		// Per-tenant rows: each tenant's demand-access AMAT while
		// co-located, grouped like the solo rows (tenant outer, design
		// inner).
		for _, pt := range mixes {
			for ti := range pt.mix.Tenants {
				for vi, v := range fig17Variants {
					tr := pt.tenants(vi)[ti]
					t.Rows = append(t.Rows, amatRow(pt.rowName(tr), v, tr.AMAT))
				}
			}
		}
		return t
	}
}

// fig18Variants is the design set of Fig. 18.
var fig18Variants = []system.Variant{system.BaseCSSD, system.SkyByteP, system.SkyByteC, system.SkyByteW, system.SkyByteCP, system.SkyByteWP, system.SkyByteFull}

// Fig18 reproduces Fig. 18: flash write traffic normalized to Base-CSSD
// (paper: 23.08x mean reduction for the full design).
func (h *Harness) Fig18() Table { return h.table(h.fig18) }

func (h *Harness) fig18(p *Plan) func() Table {
	type row struct {
		name string
		base *Pending
		runs []*Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		r := row{name: spec.Name, base: p.Run(spec, system.BaseCSSD, h.Opt.TotalInstr, 0, "")}
		for _, v := range fig18Variants {
			r.runs = append(r.runs, p.Run(spec, v, h.Opt.TotalInstr, 0, ""))
		}
		rows = append(rows, r)
	}
	return func() Table {
		t := Table{
			ID:     "fig18",
			Title:  "Flash write traffic normalized to Base-CSSD (lower is better)",
			Header: append([]string{"workload"}, mapStrings(fig18Variants, func(v system.Variant) string { return string(v) })...),
		}
		var reductions []float64
		for _, r := range rows {
			bp := float64(r.base.Result().Traffic.TotalPrograms())
			row := []string{r.name}
			for i, v := range fig18Variants {
				pr := float64(r.runs[i].Result().Traffic.TotalPrograms())
				if bp == 0 {
					row = append(row, "n/a")
					continue
				}
				row = append(row, f3(pr/bp))
				if v == system.SkyByteFull && pr > 0 {
					reductions = append(reductions, bp/pr)
				}
			}
			t.Rows = append(t.Rows, row)
		}
		if len(reductions) > 0 {
			t.Note = fmt.Sprintf("SkyByte-Full mean write-traffic reduction: %.1fx (paper: 23.08x)", stats.GeoMean(reductions))
		}
		return t
	}
}

// fig19Sizes are the write-log sizes of Figs. 19–20, scaled 1/64 from the
// paper's 0.5–256 MB sweep over a 512 MB SSD DRAM.
var fig19Sizes = []int{16 * mem.KiB, 64 * mem.KiB, 256 * mem.KiB, 1 * mem.MiB, 4 * mem.MiB}

// Fig19 reproduces Fig. 19: performance vs write-log size (total SSD DRAM
// held constant).
func (h *Harness) Fig19() Table { return h.table(h.fig19) }

func (h *Harness) fig19(p *Plan) func() Table { return h.logSweep(p, "fig19", true) }

// Fig20 reproduces Fig. 20: flash write traffic vs write-log size.
func (h *Harness) Fig20() Table { return h.table(h.fig20) }

func (h *Harness) fig20(p *Plan) func() Table { return h.logSweep(p, "fig20", false) }

func (h *Harness) logSweep(p *Plan, id string, perf bool) func() Table {
	type row struct {
		name string
		runs []*Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		r := row{name: spec.Name}
		for _, sz := range fig19Sizes {
			sz := sz
			r.runs = append(r.runs, p.Run(spec, system.SkyByteFull, h.Opt.SweepInstr, 0,
				"log"+bytesLabel(sz), func(c *system.Config) { c.WriteLogBytes = sz }))
		}
		rows = append(rows, r)
	}
	return func() Table {
		title := "Flash write traffic vs write-log size (normalized to 1MB)"
		if perf {
			title = "Execution time vs write-log size (normalized to 1MB)"
		}
		t := Table{
			ID:     id,
			Title:  title,
			Header: append([]string{"workload"}, mapStrings(fig19Sizes, bytesLabel)...),
			Note:   "1MB is 1/64 of the paper's default 64MB log; total SSD DRAM fixed",
		}
		for _, r := range rows {
			var base float64
			vals := make([]float64, len(fig19Sizes))
			for i, sz := range fig19Sizes {
				res := r.runs[i].Result()
				if perf {
					vals[i] = float64(res.ExecTime)
				} else {
					vals[i] = float64(res.Traffic.TotalPrograms())
				}
				if sz == 1*mem.MiB {
					base = vals[i]
				}
			}
			row := []string{r.name}
			for _, v := range vals {
				if base == 0 {
					row = append(row, "n/a")
				} else {
					row = append(row, f3(v/base))
				}
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
}

// fig21Sizes are the SSD DRAM capacities of Fig. 21, scaled 1/64 from
// 0.125–2 GB.
var fig21Sizes = []int{2 * mem.MiB, 4 * mem.MiB, 8 * mem.MiB, 16 * mem.MiB, 32 * mem.MiB}

var fig21Variants = []system.Variant{system.BaseCSSD, system.SkyByteP, system.SkyByteW, system.SkyByteWP, system.SkyByteFull}

// Fig21 reproduces Fig. 21: performance with varying SSD DRAM cache size
// (host promotion budget and log scale with it, as §VI-F specifies).
func (h *Harness) Fig21() Table { return h.table(h.fig21) }

func (h *Harness) fig21(p *Plan) func() Table {
	type row struct {
		name string
		ref  *Pending
		runs [][]*Pending // [variant][size]
	}
	var rows []row
	for _, spec := range h.specs() {
		r := row{name: spec.Name, ref: p.Run(spec, system.SkyByteFull, h.Opt.SweepInstr, 0, "dram8MB", sizeMutation(8*mem.MiB))}
		for range fig21Variants {
			r.runs = append(r.runs, nil)
		}
		for i, v := range fig21Variants {
			for _, sz := range fig21Sizes {
				r.runs[i] = append(r.runs[i], p.Run(spec, v, h.Opt.SweepInstr, 0, "dram"+bytesLabel(sz), sizeMutation(sz)))
			}
		}
		rows = append(rows, r)
	}
	return func() Table {
		t := Table{
			ID:     "fig21",
			Title:  "Execution time vs SSD DRAM size (normalized to SkyByte-Full @8MB)",
			Header: append([]string{"workload", "design"}, mapStrings(fig21Sizes, bytesLabel)...),
		}
		for _, r := range rows {
			ref := r.ref.Result()
			for i, v := range fig21Variants {
				row := []string{r.name, string(v)}
				for _, run := range r.runs[i] {
					row = append(row, f2(float64(run.Result().ExecTime)/float64(ref.ExecTime)))
				}
				t.Rows = append(t.Rows, row)
			}
		}
		return t
	}
}

// sizeMutation rescales the SSD DRAM, keeping the paper's ratios: the log
// is 1/8 of SSD DRAM, the promotion budget 4x SSD DRAM (§VI-F).
func sizeMutation(bytes int) mutate {
	return func(c *system.Config) {
		c.SSDDRAMBytes = bytes
		c.WriteLogBytes = bytes / 8
		c.PromotedMaxBytes = 4 * bytes
	}
}

// fig22Timings are Table IV's NAND classes.
var fig22Timings = []string{"ULL", "ULL2", "SLC", "MLC"}

// fig22Variants and fig22FullThreads are the per-NAND-class columns.
var (
	fig22Variants    = []system.Variant{system.SkyByteP, system.SkyByteW, system.SkyByteWP}
	fig22FullThreads = []int{16, 24, 32}
)

// Fig22 reproduces Fig. 22: sensitivity to flash latency class, varying
// SkyByte-Full's thread count (16/24/32).
func (h *Harness) Fig22() Table { return h.table(h.fig22) }

func (h *Harness) fig22(p *Plan) func() Table {
	type row struct {
		name string
		nand string
		runs []*Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		for _, nand := range fig22Timings {
			nand := nand
			mut := timingMutation(nand)
			r := row{name: spec.Name, nand: nand}
			for _, v := range fig22Variants {
				r.runs = append(r.runs, p.Run(spec, v, h.Opt.SweepInstr, 0, "nand"+nand, mut))
			}
			for _, n := range fig22FullThreads {
				r.runs = append(r.runs, p.Run(spec, system.SkyByteFull, h.Opt.SweepInstr, n, fmt.Sprintf("nand%st%d", nand, n), mut))
			}
			rows = append(rows, r)
		}
	}
	return func() Table {
		t := Table{
			ID:     "fig22",
			Title:  "Execution time (µs) by NAND class (Table IV)",
			Header: []string{"workload", "NAND", "SkyByte-P", "SkyByte-W", "SkyByte-WP", "Full-16", "Full-24", "Full-32"},
		}
		for _, r := range rows {
			row := []string{r.name, r.nand}
			for _, run := range r.runs {
				row = append(row, fmt.Sprintf("%.0f", run.Result().ExecTime.Microseconds()))
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
}

func timingMutation(nand string) mutate {
	return func(c *system.Config) {
		switch nand {
		case "ULL":
			// default
		case "ULL2":
			c.Timing.Read, c.Timing.Program, c.Timing.Erase = 4*sim.Microsecond, 75*sim.Microsecond, 850*sim.Microsecond
		case "SLC":
			c.Timing.Read, c.Timing.Program, c.Timing.Erase = 25*sim.Microsecond, 200*sim.Microsecond, 1500*sim.Microsecond
		case "MLC":
			c.Timing.Read, c.Timing.Program, c.Timing.Erase = 50*sim.Microsecond, 600*sim.Microsecond, 3000*sim.Microsecond
		}
	}
}

// fig23Variants is the migration-mechanism comparison set of Fig. 23.
var fig23Variants = []system.Variant{system.SkyByteC, system.AstriFlashCXL, system.SkyByteCT, system.SkyByteCP, system.SkyByteWCT, system.SkyByteFull}

// Fig23 reproduces Fig. 23: alternative page-management mechanisms,
// normalized to SkyByte-C.
func (h *Harness) Fig23() Table { return h.table(h.fig23) }

func (h *Harness) fig23(p *Plan) func() Table {
	type row struct {
		name string
		base *Pending
		runs []*Pending
	}
	var rows []row
	for _, spec := range h.specs() {
		r := row{name: spec.Name, base: p.Run(spec, system.SkyByteC, h.Opt.SweepInstr, 0, "f23")}
		for _, v := range fig23Variants {
			r.runs = append(r.runs, p.Run(spec, v, h.Opt.SweepInstr, 0, "f23"))
		}
		rows = append(rows, r)
	}
	return func() Table {
		t := Table{
			ID:     "fig23",
			Title:  "Page-migration mechanisms (exec normalized to SkyByte-C)",
			Header: append([]string{"workload"}, mapStrings(fig23Variants, func(v system.Variant) string { return string(v) })...),
		}
		for _, r := range rows {
			base := r.base.Result()
			row := []string{r.name}
			for _, run := range r.runs {
				row = append(row, f3(float64(run.Result().ExecTime)/float64(base.ExecTime)))
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
}

func in(name string, set ...string) bool {
	for _, s := range set {
		if s == name {
			return true
		}
	}
	return false
}

func mapStrings[T any](xs []T, f func(T) string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}
