package experiments

import (
	"fmt"

	"skybyte/internal/arrival"
	"skybyte/internal/sim"
	"skybyte/internal/system"
	"skybyte/internal/telemetry"
)

// figopenVariants is the open-loop comparison set: the baseline, each
// SkyByte mechanism alone, and the full design — the same axis as
// figmix, here under arrival-driven load instead of closed-loop replay.
var figopenVariants = []system.Variant{system.BaseCSSD, system.SkyByteC, system.SkyByteW, system.SkyByteFull}

// figopenScales is the offered-intensity axis: every cohort rate of the
// arrival spec is multiplied by each scale in turn. The points bracket
// the saturation knee of the scaled machine: x1 is comfortably
// unsaturated, x2 sits near the baseline's knee, and x4/x6 are past it —
// where the coordinated context switch converts oversubscription into
// delivered throughput and the baseline's tail collapses first.
var figopenScales = []float64{1, 2, 4, 6}

// figopenCadence is the sampling period of a telemetry-mode figopen
// run: fine enough that the shortest built-in intensity window (20µs)
// collects many ticks, coarse enough that the bounded series keep
// useful granularity after stride-doubling downsamples a long run.
const figopenCadence = sim.Microsecond

// openCell is one planned figopen run and the axes that label its rows.
type openCell struct {
	spec  arrival.Spec
	scale float64
	v     system.Variant
	run   *Pending
}

// FigOpen is the open-loop traffic study (an extension beyond the
// paper, whose evaluation replays threads closed-loop): each arrival
// spec's client cohorts offer load at sampled instants, and the table
// reports, per SLO class, the offered vs delivered request rate and the
// sojourn-latency percentiles as the offered intensity scales through
// the saturation knee. Like figmix it is optional: the default campaign
// excludes it; render with skybyte-bench -figure figopen. With
// Options.Telemetry, the rows resolve in time instead: write-log
// occupancy and the per-class windowed p99 per intensity window.
func (h *Harness) FigOpen() Table { return h.table(h.figOpen) }

func (h *Harness) figOpen(p *Plan) func() Table {
	// Open-loop percentiles need request populations, not just retired
	// instructions; give each cell twice the campaign budget so a class
	// collects hundreds of completions.
	budget := 2 * h.Opt.TotalInstr
	tag := ""
	var muts []mutate
	if h.Opt.Telemetry {
		// The cadence is part of spec identity: telemetry rows come from
		// different design points than the plain table (the tag keeps
		// them from colliding in a persistent store).
		tag = "tel"
		muts = append(muts, func(c *system.Config) { c.TelemetryCadence = figopenCadence })
	}
	var cells []openCell
	for _, name := range h.Opt.Arrivals {
		a, err := arrival.ByName(name)
		if err != nil {
			panic(err)
		}
		for _, scale := range figopenScales {
			for _, v := range figopenVariants {
				cells = append(cells, openCell{
					spec: a, scale: scale, v: v,
					run: p.RunArrival(a, v, budget, scale, tag, muts...),
				})
			}
		}
	}
	if h.Opt.Telemetry {
		return func() Table { return figOpenTelemetryTable(cells) }
	}
	return func() Table { return figOpenTable(cells) }
}

// figOpenTable renders the end-of-run percentile rows (the default
// figopen shape).
func figOpenTable(cells []openCell) Table {
	t := Table{
		ID:    "figopen",
		Title: "Open-loop traffic: offered vs delivered rate and sojourn percentiles per SLO class",
		Note: "latency = completion - arrival (queueing behind the client thread counts); " +
			"goodput over the class's own completion span; qdelay = service start - arrival",
		Header: []string{"arrival", "scale", "variant", "class", "offered rps", "goodput rps", "p50", "p95", "p99", "p99.9", "mean qdelay"},
	}
	for _, c := range cells {
		res := c.run.Result()
		if res.OpenLoop == nil {
			panic(fmt.Sprintf("experiments: arrival run %q carries no OpenLoop section", res.CacheKey))
		}
		for _, cl := range res.OpenLoop.Classes {
			t.Rows = append(t.Rows, []string{
				c.spec.Name,
				fmt.Sprintf("x%g", c.scale),
				string(c.v),
				cl.Name,
				f0(cl.OfferedRPS),
				f0(cl.Stats.GoodputRPS()),
				cl.Stats.Latency.Percentile(50).String(),
				cl.Stats.Latency.Percentile(95).String(),
				cl.Stats.Latency.Percentile(99).String(),
				cl.Stats.Latency.Percentile(99.9).String(),
				cl.Stats.QueueDelay.Mean().String(),
			})
		}
	}
	return t
}

// openWindow is one intensity window of an arrival spec, as a label
// plus its [from, to) offsets within the repeating window cycle.
type openWindow struct {
	label    string
	from, to sim.Time
}

// specWindows derives the intensity windows rows resolve over: the
// first cohort that declares windows defines the cycle (the built-in
// bursty specs pace one cohort); a spec with none is a single steady
// window.
func specWindows(a arrival.Spec) (ws []openWindow, cycle sim.Time) {
	for _, c := range a.Cohorts {
		if len(c.Windows) == 0 {
			continue
		}
		var at sim.Time
		for i, w := range c.Windows {
			d := sim.Time(w.DurUS * float64(sim.Microsecond))
			ws = append(ws, openWindow{
				label: fmt.Sprintf("w%d [%g-%gµs]", i, at.Microseconds(), (at + d).Microseconds()),
				from:  at, to: at + d,
			})
			at += d
		}
		return ws, at
	}
	return []openWindow{{label: "steady"}}, 0
}

// windowAgg folds a dumped series into per-window aggregates by point
// instant modulo the window cycle, so every repetition of a window
// contributes to its row. A point's samples attribute to the window
// holding its first-sample instant — at high downsampling strides a
// point can straddle windows, which keeps the fold simple and exact in
// count at the cost of edge smearing (the table note says so).
type windowAgg struct {
	sum  float64
	n    uint64
	max  float64
	seen bool
}

func foldWindows(d *telemetry.SeriesDump, ws []openWindow, cycle sim.Time) []windowAgg {
	agg := make([]windowAgg, len(ws))
	if d == nil {
		return agg
	}
	for _, p := range d.Points {
		t := p.T
		if cycle > 0 {
			t = p.T % cycle
		}
		for i, w := range ws {
			if cycle > 0 && (t < w.from || t >= w.to) {
				continue
			}
			a := &agg[i]
			a.sum += p.Sum
			a.n += p.Count
			if !a.seen || p.Max > a.max {
				a.max = p.Max
			}
			a.seen = true
			break
		}
	}
	return agg
}

func (a *windowAgg) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// figOpenTelemetryTable renders the time-resolved rows: one row per
// (arrival, scale, variant, window, class) with the write-log occupancy
// and the windowed-p99 ceiling observed across every repetition of
// that intensity window.
func figOpenTelemetryTable(cells []openCell) Table {
	t := Table{
		ID:    "figopen",
		Title: "Open-loop traffic, time-resolved: write-log occupancy and per-class windowed p99 per intensity window",
		Note: fmt.Sprintf("probes sampled every %v (internal/telemetry); windows fold modulo the arrival spec's cycle, "+
			"so every repetition contributes; log occ = mean/peak write-log fill (\"-\" where the variant has no write log); "+
			"p99 = ceiling of the per-cadence-window p99 series; downsampled points attribute to the window of their first sample", figopenCadence),
		Header: []string{"arrival", "scale", "variant", "window", "log occ", "log peak", "class", "win p99 max"},
	}
	for _, c := range cells {
		res := c.run.Result()
		if res.OpenLoop == nil || res.Telemetry == nil {
			panic(fmt.Sprintf("experiments: telemetry figopen run %q carries no OpenLoop/Telemetry section", res.CacheKey))
		}
		ws, cycle := specWindows(c.spec)
		occ := foldWindows(res.Telemetry.SeriesByName("writelog.occupancy"), ws, cycle)
		for wi, w := range ws {
			occMean, occPeak := "-", "-"
			if occ[wi].seen {
				occMean = fmt.Sprintf("%.1f%%", 100*occ[wi].mean())
				occPeak = fmt.Sprintf("%.1f%%", 100*occ[wi].max)
			}
			for _, cl := range res.OpenLoop.Classes {
				p99 := foldWindows(res.Telemetry.SeriesByName("class."+cl.Name+".p99_us"), ws, cycle)
				val := "-"
				if p99[wi].seen {
					val = fmt.Sprintf("%.1fµs", p99[wi].max)
				}
				t.Rows = append(t.Rows, []string{
					c.spec.Name,
					fmt.Sprintf("x%g", c.scale),
					string(c.v),
					w.label,
					occMean,
					occPeak,
					cl.Name,
					val,
				})
			}
		}
	}
	return t
}

func f0(x float64) string { return fmt.Sprintf("%.0f", x) }
