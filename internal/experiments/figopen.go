package experiments

import (
	"fmt"

	"skybyte/internal/arrival"
	"skybyte/internal/system"
)

// figopenVariants is the open-loop comparison set: the baseline, each
// SkyByte mechanism alone, and the full design — the same axis as
// figmix, here under arrival-driven load instead of closed-loop replay.
var figopenVariants = []system.Variant{system.BaseCSSD, system.SkyByteC, system.SkyByteW, system.SkyByteFull}

// figopenScales is the offered-intensity axis: every cohort rate of the
// arrival spec is multiplied by each scale in turn. The points bracket
// the saturation knee of the scaled machine: x1 is comfortably
// unsaturated, x2 sits near the baseline's knee, and x4/x6 are past it —
// where the coordinated context switch converts oversubscription into
// delivered throughput and the baseline's tail collapses first.
var figopenScales = []float64{1, 2, 4, 6}

// FigOpen is the open-loop traffic study (an extension beyond the
// paper, whose evaluation replays threads closed-loop): each arrival
// spec's client cohorts offer load at sampled instants, and the table
// reports, per SLO class, the offered vs delivered request rate and the
// sojourn-latency percentiles as the offered intensity scales through
// the saturation knee. Like figmix it is optional: the default campaign
// excludes it; render with skybyte-bench -figure figopen.
func (h *Harness) FigOpen() Table { return h.table(h.figOpen) }

func (h *Harness) figOpen(p *Plan) func() Table {
	// Open-loop percentiles need request populations, not just retired
	// instructions; give each cell twice the campaign budget so a class
	// collects hundreds of completions.
	budget := 2 * h.Opt.TotalInstr
	type cell struct {
		spec  arrival.Spec
		scale float64
		v     system.Variant
		run   *Pending
	}
	var cells []cell
	for _, name := range h.Opt.Arrivals {
		a, err := arrival.ByName(name)
		if err != nil {
			panic(err)
		}
		for _, scale := range figopenScales {
			for _, v := range figopenVariants {
				cells = append(cells, cell{
					spec: a, scale: scale, v: v,
					run: p.RunArrival(a, v, budget, scale, ""),
				})
			}
		}
	}
	return func() Table {
		t := Table{
			ID:    "figopen",
			Title: "Open-loop traffic: offered vs delivered rate and sojourn percentiles per SLO class",
			Note: "latency = completion - arrival (queueing behind the client thread counts); " +
				"goodput over the class's own completion span; qdelay = service start - arrival",
			Header: []string{"arrival", "scale", "variant", "class", "offered rps", "goodput rps", "p50", "p95", "p99", "p99.9", "mean qdelay"},
		}
		for _, c := range cells {
			res := c.run.Result()
			if res.OpenLoop == nil {
				panic(fmt.Sprintf("experiments: arrival run %q carries no OpenLoop section", c.run.Result().CacheKey))
			}
			for _, cl := range res.OpenLoop.Classes {
				t.Rows = append(t.Rows, []string{
					c.spec.Name,
					fmt.Sprintf("x%g", c.scale),
					string(c.v),
					cl.Name,
					f0(cl.OfferedRPS),
					f0(cl.Stats.GoodputRPS()),
					cl.Stats.Latency.Percentile(50).String(),
					cl.Stats.Latency.Percentile(95).String(),
					cl.Stats.Latency.Percentile(99).String(),
					cl.Stats.Latency.Percentile(99.9).String(),
					cl.Stats.QueueDelay.Mean().String(),
				})
			}
		}
		return t
	}
}

func f0(x float64) string { return fmt.Sprintf("%.0f", x) }
