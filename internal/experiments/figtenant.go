package experiments

import (
	"fmt"

	"skybyte/internal/system"
	"skybyte/internal/tenant"
)

// This file is the per-tenant extension of the paper's figures: when
// Options.TenantRows is set, Figs. 14, 16, and 17 plan every mix in
// Options.Mixes under their own variant set and append one
// "mix/tenant" row per tenant, built from the mixed run's
// Result.Tenants slice. figmix answers "who is slowed down by whom";
// these rows answer the figure's own question (normalized completion,
// request breakdown, AMAT components) for tenants sharing a machine.

// mixPoint is one mix planned under a figure's variant set; runs is
// aligned with the variants slice handed to planMixPoints.
type mixPoint struct {
	mix  tenant.Mix
	runs []*Pending
}

// planMixPoints plans every Opt.Mixes mix under each of the figure's
// variants when Opt.TenantRows asks for per-tenant rows, and returns
// nil otherwise — so the default campaign plans and renders exactly
// the paper's tables. Mixed runs use the sweep budget, like figmix:
// the per-tenant rows compare tenants within one machine, not against
// the full-budget solo rows above them, and the design points are
// shared with figmix wherever the variant sets overlap.
func (h *Harness) planMixPoints(p *Plan, variants []system.Variant) []mixPoint {
	if !h.Opt.TenantRows {
		return nil
	}
	var pts []mixPoint
	for _, name := range h.Opt.Mixes {
		m, err := tenant.ByName(name)
		if err != nil {
			panic(err)
		}
		pt := mixPoint{mix: m}
		for _, v := range variants {
			pt.runs = append(pt.runs, p.RunMix(m, v, h.Opt.SweepInstr, ""))
		}
		pts = append(pts, pt)
	}
	return pts
}

// tenants returns the per-tenant results of the i-th variant's mixed
// run, in mix declaration order.
func (pt mixPoint) tenants(i int) []system.TenantResult {
	mixed := pt.runs[i].Result()
	if len(mixed.Tenants) != len(pt.mix.Tenants) {
		panic(fmt.Sprintf("experiments: mix %q produced %d tenant results, want %d",
			pt.mix.Name, len(mixed.Tenants), len(pt.mix.Tenants)))
	}
	return mixed.Tenants
}

// rowName labels a tenant row so it cannot collide with a solo
// workload row: "mix/tenant".
func (pt mixPoint) rowName(tr system.TenantResult) string {
	return pt.mix.Name + "/" + tr.Name
}
