package experiments

import (
	"context"
	"strings"
	"testing"

	"skybyte/internal/system"
)

// figfleetOptions keeps fleet test campaigns fast: one workload (the
// preferred-set intersection of tinyOptions resolves to srad) over a
// reduced K axis.
func figfleetOptions() Options {
	o := tinyOptions()
	o.TotalInstr = 48_000
	o.SweepInstr = 24_000
	return o
}

// TestFigFleetRendersAndStaysOptional: the fleet table produces one
// K=1 baseline row per workload x variant plus one row per K>1 x
// placement, the baseline rows read speedup 1.00, and — like the other
// extensions — figfleet never leaks into the default campaign.
func TestFigFleetRendersAndStaysOptional(t *testing.T) {
	o := figfleetOptions()
	h := NewHarness(o)
	tab, err := h.Render(context.Background(), "figfleet")
	if err != nil {
		t.Fatal(err)
	}
	perPair := 1 // the K=1 baseline
	for _, k := range h.Opt.FleetDevices {
		if k > 1 {
			perPair += len(h.Opt.FleetPlacements)
		}
	}
	wantRows := len(h.figFleetWorkloads()) * len(figFleetVariants) * perPair
	if len(tab.Rows) != wantRows {
		t.Fatalf("figfleet has %d rows, want %d", len(tab.Rows), wantRows)
	}
	for i, row := range tab.Rows {
		if row[2] == "1" && row[5] != "1.00" {
			t.Errorf("row %d: K=1 baseline speedup = %q, want 1.00", i, row[5])
		}
		if imb := parse(t, row[8]); imb < 1 {
			t.Errorf("row %d: imbalance %q below 1 (max/mean cannot be)", i, row[8])
		}
		if row[3] == "striped" && row[9] != "0" {
			t.Errorf("row %d: striped placement reported %q migrations", i, row[9])
		}
	}

	tables, err := NewHarness(o).AllErr(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if tb.ID == "figfleet" {
			t.Fatal("optional figfleet leaked into the default campaign")
		}
	}
}

// TestFigFleetParallelDeterminism is the fleet acceptance contract:
// device assignment and the per-device splits behind every cell render
// byte-identically at any parallelism.
func TestFigFleetParallelDeterminism(t *testing.T) {
	render := func(parallelism int) string {
		o := figfleetOptions()
		o.FleetDevices = []int{1, 2, 4}
		o.Parallelism = parallelism
		tab, err := NewHarness(o).Render(context.Background(), "figfleet")
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("figfleet differs between Parallelism 1 and 8:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

// TestFigFleetSurgicalRekey pins the placement key derivation at the
// campaign level: switching the placement axis against a warm store
// re-simulates only the K>1 cells — the K=1 baselines carry no fleet
// placement in their keys and recall warm.
func TestFigFleetSurgicalRekey(t *testing.T) {
	dir := t.TempDir()
	render := func(placements []string, counter *int) string {
		o := figfleetOptions()
		o.FleetDevices = []int{1, 2}
		o.FleetPlacements = placements
		o.CacheDir = dir
		h := NewHarness(o)
		if counter != nil {
			h.Verbose = func(string, *system.Result) { *counter++ }
		}
		tab, err := h.Render(context.Background(), "figfleet")
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	coldSims := 0
	cold := render([]string{"striped"}, &coldSims)
	if coldSims == 0 {
		t.Fatal("cold figfleet simulated nothing")
	}

	// Same axes again: fully warm.
	warmSims := 0
	warm := render([]string{"striped"}, &warmSims)
	if warmSims != 0 {
		t.Fatalf("warm figfleet simulated %d times, want 0", warmSims)
	}
	if cold != warm {
		t.Errorf("figfleet differs between cold and warm runs:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}

	// Placement-only change: exactly the K=2 cells (one per workload x
	// variant) re-simulate; the K=1 baselines recall from the store.
	pairs := len(NewHarness(figfleetOptions()).figFleetWorkloads()) * len(figFleetVariants)
	rekeySims := 0
	capTab := render([]string{"capacity"}, &rekeySims)
	if rekeySims != pairs {
		t.Fatalf("placement switch re-simulated %d cells, want exactly the %d K=2 cells", rekeySims, pairs)
	}
	if !strings.Contains(capTab, "capacity") {
		t.Fatalf("re-keyed table does not carry the new placement:\n%s", capTab)
	}
}
