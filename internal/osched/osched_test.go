package osched

import (
	"testing"

	"skybyte/internal/sim"
)

func mkThreads(n int) []*Thread {
	ts := make([]*Thread, n)
	for i := range ts {
		ts[i] = &Thread{ID: i}
	}
	return ts
}

func TestRRIsFIFO(t *testing.T) {
	p := NewPolicy(PolicyRR, 0)
	ts := mkThreads(3)
	for _, th := range ts {
		p.Enqueue(th)
	}
	for i := 0; i < 3; i++ {
		if got := p.Pick(); got != ts[i] {
			t.Fatalf("pick %d = thread %d", i, got.ID)
		}
	}
	if p.Pick() != nil {
		t.Fatal("empty queue should return nil")
	}
}

func TestRandomPicksAllDeterministically(t *testing.T) {
	pick := func() []int {
		p := NewPolicy(PolicyRandom, 42)
		for _, th := range mkThreads(5) {
			p.Enqueue(th)
		}
		var order []int
		for {
			th := p.Pick()
			if th == nil {
				break
			}
			order = append(order, th.ID)
		}
		return order
	}
	a, b := pick(), pick()
	if len(a) != 5 {
		t.Fatalf("picked %d threads", len(a))
	}
	seen := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not deterministic for fixed seed")
		}
		seen[a[i]] = true
	}
	if len(seen) != 5 {
		t.Fatal("random policy lost threads")
	}
}

func TestCFSPicksMinVruntime(t *testing.T) {
	p := NewPolicy(PolicyCFS, 0)
	ts := mkThreads(3)
	ts[0].VRuntime = 30 * sim.Microsecond
	ts[1].VRuntime = 10 * sim.Microsecond
	ts[2].VRuntime = 20 * sim.Microsecond
	for _, th := range ts {
		p.Enqueue(th)
	}
	want := []int{1, 2, 0}
	for i, id := range want {
		if got := p.Pick(); got.ID != id {
			t.Fatalf("pick %d = thread %d, want %d", i, got.ID, id)
		}
	}
}

func TestCFSTieBreakByID(t *testing.T) {
	p := NewPolicy(PolicyCFS, 0)
	ts := mkThreads(4)
	// Enqueue out of order with equal vruntime.
	for _, i := range []int{2, 0, 3, 1} {
		p.Enqueue(ts[i])
	}
	for want := 0; want < 4; want++ {
		if got := p.Pick(); got.ID != want {
			t.Fatalf("tie-break pick = %d, want %d", got.ID, want)
		}
	}
}

func TestCFSFairnessOverTime(t *testing.T) {
	// Simulate quanta: the policy should rotate so received time stays
	// balanced.
	p := NewPolicy(PolicyCFS, 0)
	ts := mkThreads(3)
	for _, th := range ts {
		p.Enqueue(th)
	}
	for round := 0; round < 300; round++ {
		th := p.Pick()
		th.VRuntime += sim.Microsecond
		p.Enqueue(th)
	}
	min, max := ts[0].VRuntime, ts[0].VRuntime
	for _, th := range ts[1:] {
		if th.VRuntime < min {
			min = th.VRuntime
		}
		if th.VRuntime > max {
			max = th.VRuntime
		}
	}
	if max-min > 2*sim.Microsecond {
		t.Fatalf("CFS imbalance: min=%v max=%v", min, max)
	}
}

func TestSchedulerSwitchRequeues(t *testing.T) {
	var eng sim.Engine
	s := New(&eng, NewPolicy(PolicyRR, 0), 2*sim.Microsecond)
	a, b := &Thread{ID: 0}, &Thread{ID: 1}
	s.Enqueue(b)
	next := s.Switch(a)
	if next != b {
		t.Fatalf("switch picked %d, want 1", next.ID)
	}
	if s.Runnable() != 1 {
		t.Fatal("yielding thread not re-enqueued")
	}
	if s.Stats().Switches != 1 {
		t.Fatal("switch not counted")
	}
}

func TestSchedulerSwitchToSelfWhenAlone(t *testing.T) {
	var eng sim.Engine
	s := New(&eng, NewPolicy(PolicyRR, 0), 2*sim.Microsecond)
	a := &Thread{ID: 0}
	if got := s.Switch(a); got != a {
		t.Fatal("lone thread should be handed back")
	}
}

func TestWaitReadyWakesOnEnqueue(t *testing.T) {
	var eng sim.Engine
	s := New(&eng, NewPolicy(PolicyRR, 0), 0)
	woken := false
	s.WaitReady(func() { woken = true })
	s.Enqueue(&Thread{ID: 0})
	eng.Run()
	if !woken {
		t.Fatal("idle waiter not woken by enqueue")
	}
}

func TestThreadWarmupAndProgress(t *testing.T) {
	th := &Thread{Warmup: 100}
	if th.PastWarmup() {
		t.Fatal("fresh thread should be in warmup")
	}
	th.Advance(150)
	if !th.PastWarmup() || th.Progress != 150 {
		t.Fatal("advance past warmup")
	}
	th.Advance(120) // regression must not lower progress
	if th.Progress != 150 {
		t.Fatal("progress regressed")
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy should panic")
		}
	}()
	NewPolicy("bogus", 0)
}
