package osched

import (
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/telemetry"
)

// ArrivalSource yields successive absolute arrival instants of an
// open-loop request process. Implementations must be deterministic:
// the n-th call returns the same instant in every run of the same
// seed. internal/arrival provides the samplers.
type ArrivalSource interface {
	Next() sim.Time
}

// Gate paces one thread as an open-loop client. The thread's replay is
// sliced into requests of ReqInstr instructions; the CPU admits the
// next request only when its arrival instant (drawn from Src) has
// passed, parking the thread off-core until then. Completed requests
// record sojourn latency (completion − arrival, so queueing behind the
// client's own backlog counts) into the SLO-class and system-total
// accumulators.
//
// All mutation happens on the owning System's event loop; a Gate needs
// no locking.
type Gate struct {
	Src      ArrivalSource
	ReqInstr uint64
	Class    int              // SLO-class index (system.DeclareSLOClasses order)
	Stats    *stats.OpenStats // per-class accumulator (may be nil)
	Total    *stats.OpenStats // system-wide accumulator (may be nil)

	// NextArrival is the arrival instant of the next not-yet-admitted
	// request. AdmittedUntil is the instruction-index boundary of the
	// admitted prefix: once the replay cursor reaches it (with the
	// pipeline drained), the in-service request is complete and the next
	// needs admission.
	NextArrival   sim.Time
	AdmittedUntil uint64

	// Telemetry hooks, all nil when telemetry is off (the request path
	// then costs one nil check per hook — the zero-cost-off contract).
	// Track is the SLO class's shared in-flight/windowed-latency state;
	// Spans records the queued/service lifecycle spans of a timeline
	// run, with SpanTID naming the owning thread's track.
	Track   *telemetry.ClassTrack
	Spans   *telemetry.SpanRecorder
	SpanTID int32

	curArrival   sim.Time // arrival instant of the in-service request
	curDelay     sim.Time // its queue delay (admission − arrival)
	curRecord    bool     // was the thread past warmup at admission?
	inService    bool
	lastComplete sim.Time // prior request's completion (span clamping)
}

// NewGate builds a gate over src and draws the first arrival instant.
func NewGate(src ArrivalSource, reqInstr uint64, class int, cls, total *stats.OpenStats) *Gate {
	if reqInstr == 0 {
		panic("osched: gate with zero request size")
	}
	return &Gate{
		Src:         src,
		ReqInstr:    reqInstr,
		Class:       class,
		Stats:       cls,
		Total:       total,
		NextArrival: src.Next(),
	}
}

// Boundary reports whether the replay cursor (trace.Replayer.CursorIdx)
// has consumed every admitted instruction, i.e. the thread sits between
// requests. The cursor — not Thread.Progress or the high-water NextIdx —
// is the right yardstick: it regresses on a context-switch rewind, so a
// squashed request re-executes fully before it can complete.
func (g *Gate) Boundary(cursor uint64) bool { return cursor >= g.AdmittedUntil }

// Admit starts the next request at instant now (>= its arrival —
// requests queue behind the client thread's own backlog, never run
// early). record captures the warmup state once so a request straddling
// the warmup boundary is counted consistently at completion.
func (g *Gate) Admit(now sim.Time, record bool) {
	delay := now - g.NextArrival
	if delay < 0 {
		delay = 0
	}
	g.curArrival = g.NextArrival
	g.curDelay = delay
	g.curRecord = record
	g.inService = true
	if g.Track != nil {
		g.Track.Inflight++
	}
	if record {
		if g.Stats != nil {
			g.Stats.Admitted++
		}
		if g.Total != nil {
			g.Total.Admitted++
		}
	}
	g.AdmittedUntil += g.ReqInstr
	g.NextArrival = g.Src.Next()
}

// Complete finishes the in-service request at instant now. A no-op when
// nothing is in service, so thread-retirement paths may call it
// unconditionally.
func (g *Gate) Complete(now sim.Time) {
	if !g.inService {
		return
	}
	g.inService = false
	if g.Track != nil && g.Track.Inflight > 0 {
		g.Track.Inflight--
	}
	if g.Spans != nil {
		// The queued span's natural start is the arrival instant, but an
		// arrival that lands while the previous request is still in
		// service would partially overlap its service span on this
		// track; clamp to the prior completion so spans nest or stay
		// disjoint (the timeline validator's invariant).
		admit := g.curArrival + g.curDelay
		qStart := g.curArrival
		if qStart < g.lastComplete {
			qStart = g.lastComplete
		}
		if admit > qStart {
			g.Spans.Add("queued", "request", telemetry.RequestPID, g.SpanTID, qStart, admit)
		}
		g.Spans.Add("service", "request", telemetry.RequestPID, g.SpanTID, admit, now)
		g.lastComplete = now
	}
	if !g.curRecord {
		return
	}
	lat := now - g.curArrival
	if lat < 0 {
		lat = 0
	}
	if g.Track != nil {
		g.Track.Window.Observe(lat)
	}
	if g.Stats != nil {
		g.Stats.Observe(now, lat, g.curDelay)
	}
	if g.Total != nil {
		g.Total.Observe(now, lat, g.curDelay)
	}
}

// hGateRelease re-enqueues a parked open-loop thread at its arrival
// instant (p1 = *Scheduler, p2 = *Thread).
var hGateRelease = sim.RegisterHandler(func(_ uint64, p1, p2 any) {
	p1.(*Scheduler).Enqueue(p2.(*Thread))
})

// ScheduleRelease enqueues t at instant at (clamped to the engine's
// now, which may have advanced past a core-local clock). Cores parked
// on an empty run queue wake through the usual WaitReady path.
func (s *Scheduler) ScheduleRelease(t *Thread, at sim.Time) {
	if now := s.eng.Now(); at < now {
		at = now
	}
	s.eng.AtH(at, hGateRelease, 0, s, t)
}
