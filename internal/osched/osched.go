// Package osched implements the host OS side of SkyByte's co-design: the
// thread abstraction replayed by the CPU model, the run queue, and the
// three CXL-aware scheduling policies the paper evaluates in Fig. 10 —
// Round-Robin, Random, and CFS (Linux's Completely Fair Scheduler, the
// default: "Since CFS has become a standard scheduling policy in modern
// OSes like Linux, we employ it by default in SkyByte").
package osched

import (
	"container/heap"

	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/trace"
)

// Thread is one software thread: an instruction stream plus scheduling
// state. The Replayer allows the CPU to rewind to a faulting load after a
// SkyByte Long Delay Exception.
type Thread struct {
	ID     int
	Name   string
	Replay *trace.Replayer

	// Tenant indexes the thread's tenant group in a multi-tenant run
	// (system.DeclareTenants); 0 — the only group — in a solo run.
	// Per-thread measurements below aggregate by this index into the
	// per-tenant Result slice.
	Tenant int

	// Warmup is the instruction count below which the thread's accesses
	// are excluded from latency/AMAT statistics (state still warms).
	Warmup uint64
	// Progress is the highest instruction index retired; re-executed
	// instructions after a rewind do not regress it.
	Progress uint64
	// VRuntime accumulates received execution time for the CFS policy.
	VRuntime sim.Time
	// Bound accumulates where this thread's core time went while it was
	// scheduled (the per-tenant split of the Figs. 4/10 accounting). The
	// CPU charges it alongside the per-core totals, so summing Bound
	// over all threads reproduces the system Boundedness exactly.
	Bound stats.Boundedness
	// Switches counts context switches this thread experienced — both
	// SkyByte-Delay exceptions and the switch paid when the thread
	// retires and a successor is swapped in.
	Switches uint64
	// HintSwitches counts the subset of Switches triggered by a
	// SkyByte-Delay long-flash-miss exception.
	HintSwitches uint64
	// Enqueues counts run-queue insertions of this thread.
	Enqueues uint64
	// LLCMisses counts demand LLC misses this thread issued.
	LLCMisses uint64
	// Finished is set when the trace is fully retired.
	Finished bool

	// Gate, when non-nil, paces the thread as an open-loop client:
	// instructions replay in fixed-size requests, each admitted only
	// once its arrival instant has passed (internal/arrival attaches
	// gates; nil preserves the closed-loop behavior exactly).
	Gate *Gate
}

// PastWarmup reports whether statistics should be recorded for the thread.
func (t *Thread) PastWarmup() bool { return t.Progress >= t.Warmup }

// Advance raises Progress to idx if it is higher.
func (t *Thread) Advance(idx uint64) {
	if idx > t.Progress {
		t.Progress = idx
	}
}

// PolicyKind selects a scheduling policy (artifact knob "t_policy").
type PolicyKind string

// Scheduling policies of Fig. 10.
const (
	PolicyRR     PolicyKind = "RR"
	PolicyRandom PolicyKind = "RANDOM"
	PolicyCFS    PolicyKind = "FAIRNESS"
)

// Policy is a run-queue ordering discipline.
type Policy interface {
	Name() PolicyKind
	Enqueue(t *Thread)
	// Pick removes and returns the next runnable thread, or nil.
	Pick() *Thread
	Len() int
}

// NewPolicy builds the named policy. Random is seeded deterministically.
func NewPolicy(kind PolicyKind, seed uint64) Policy {
	switch kind {
	case PolicyRR:
		return &rrPolicy{}
	case PolicyRandom:
		return &randomPolicy{rng: trace.NewRNG(seed)}
	case PolicyCFS:
		return &cfsPolicy{}
	}
	panic("osched: unknown policy " + string(kind))
}

type rrPolicy struct{ q []*Thread }

func (p *rrPolicy) Name() PolicyKind  { return PolicyRR }
func (p *rrPolicy) Enqueue(t *Thread) { p.q = append(p.q, t) }
func (p *rrPolicy) Len() int          { return len(p.q) }
func (p *rrPolicy) Pick() (t *Thread) {
	if len(p.q) == 0 {
		return nil
	}
	t = p.q[0]
	copy(p.q, p.q[1:])
	p.q = p.q[:len(p.q)-1]
	return t
}

type randomPolicy struct {
	q   []*Thread
	rng *trace.RNG
}

func (p *randomPolicy) Name() PolicyKind  { return PolicyRandom }
func (p *randomPolicy) Enqueue(t *Thread) { p.q = append(p.q, t) }
func (p *randomPolicy) Len() int          { return len(p.q) }
func (p *randomPolicy) Pick() *Thread {
	if len(p.q) == 0 {
		return nil
	}
	i := p.rng.Intn(len(p.q))
	t := p.q[i]
	p.q[i] = p.q[len(p.q)-1]
	p.q = p.q[:len(p.q)-1]
	return t
}

// cfsPolicy picks the thread with the minimum received execution time
// (VRuntime), ties broken by thread ID for determinism.
type cfsPolicy struct{ h cfsHeap }

func (p *cfsPolicy) Name() PolicyKind  { return PolicyCFS }
func (p *cfsPolicy) Enqueue(t *Thread) { heap.Push(&p.h, t) }
func (p *cfsPolicy) Len() int          { return len(p.h) }
func (p *cfsPolicy) Pick() *Thread {
	if len(p.h) == 0 {
		return nil
	}
	return heap.Pop(&p.h).(*Thread)
}

type cfsHeap []*Thread

func (h cfsHeap) Len() int { return len(h) }
func (h cfsHeap) Less(i, j int) bool {
	if h[i].VRuntime != h[j].VRuntime {
		return h[i].VRuntime < h[j].VRuntime
	}
	return h[i].ID < h[j].ID
}
func (h cfsHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cfsHeap) Push(x interface{}) { *h = append(*h, x.(*Thread)) }
func (h *cfsHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// Stats counts scheduler activity.
type Stats struct {
	Switches uint64 // context switches performed (thread replaced on a core)
	Enqueues uint64
}

// Scheduler owns the run queue shared by all cores. A core that goes idle
// registers a waiter and is woken when a thread becomes runnable.
type Scheduler struct {
	eng        *sim.Engine
	policy     Policy
	SwitchCost sim.Time // Table II: 2 µs
	waiters    []func()
	stats      Stats
}

// New builds a scheduler with the given policy.
func New(eng *sim.Engine, policy Policy, switchCost sim.Time) *Scheduler {
	return &Scheduler{eng: eng, policy: policy, SwitchCost: switchCost}
}

// Stats returns a copy of the counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Policy returns the active policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Runnable returns the run-queue length.
func (s *Scheduler) Runnable() int { return s.policy.Len() }

// Waiting returns how many cores are parked on the empty run queue —
// the idle-core count a telemetry probe samples.
func (s *Scheduler) Waiting() int { return len(s.waiters) }

// Enqueue makes t runnable ("the yield thread is re-enqueued back to the
// run queue in OS, allowing it to be scheduled again later"). Idle cores
// are woken.
func (s *Scheduler) Enqueue(t *Thread) {
	s.stats.Enqueues++
	t.Enqueues++
	s.policy.Enqueue(t)
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters = s.waiters[:len(s.waiters)-1]
		s.eng.After(0, w)
	}
}

// Pick removes and returns the next thread per policy, nil if none.
func (s *Scheduler) Pick() *Thread { return s.policy.Pick() }

// Switch implements one coordinated context switch decision: the current
// thread (may be nil if it finished) yields, and the policy picks the next.
// If the queue is empty the current thread is handed back (a switch to
// yourself — the cost is still paid, as the exception already fired).
func (s *Scheduler) Switch(current *Thread) *Thread {
	s.stats.Switches++
	if current != nil {
		s.Enqueue(current)
	}
	return s.Pick()
}

// WaitReady registers a callback to fire when a thread becomes runnable
// (idle-core wakeup).
func (s *Scheduler) WaitReady(wake func()) { s.waiters = append(s.waiters, wake) }
