// Package store provides the persistent, content-addressed result
// store behind runner.Store: a directory of immutable JSON entries,
// one per executed design point, addressed by a hash that folds
// together the spec key, the machine-configuration fingerprint, and
// the result codec version.
//
// The addressing scheme is the safety argument. A cached entry is
// only visible to a runner whose base configuration, workload seed,
// and codec version all match the ones that produced it — a stale
// cache (codec bump), a foreign cache (different machine config or
// seed), or a damaged cache (corruption, truncation, tampering)
// presents as a miss, and a miss always re-simulates. The store can
// therefore never poison a table; the worst failure mode is wasted
// work.
//
// Because simulations are deterministic, entries written by different
// processes — shards of one sweep split across CI jobs or machines —
// compose: any number of runners may share one directory (entries are
// written via atomic rename), and a merge is nothing more than
// pointing a render at the combined directory.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"skybyte/internal/system"
)

// Fingerprint derives the store identity for a campaign: the resolved
// base configuration plus the workload seed, the two inputs besides
// the spec key that determine a simulation's output. The codec version
// is folded in separately by the entry address and envelope.
func Fingerprint(cfg system.Config, seed uint64) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("skybyte-store|%s|seed=%d", cfg.Fingerprint(), seed)))
	return hex.EncodeToString(sum[:])
}

// Disk is a content-addressed on-disk result store. It implements
// runner.Store; all methods are safe for concurrent use, including
// across processes sharing one directory.
type Disk struct {
	dir string
	fp  string

	hits, misses, puts atomic.Uint64
}

// Open creates (if needed) and opens a store directory bound to one
// campaign fingerprint (see Fingerprint).
func Open(dir, fingerprint string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Disk{dir: dir, fp: fingerprint}, nil
}

// entry is the on-disk envelope around one serialized result.
type entry struct {
	// Version is the result codec version the payload was written under.
	Version int `json:"version"`
	// Fingerprint identifies the campaign (config + seed) — see Fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Key is the spec key the result belongs to.
	Key string `json:"key"`
	// SHA256 is the hex digest of the Result payload bytes.
	SHA256 string `json:"sha256"`
	// Result is the canonical system.Result encoding.
	Result json.RawMessage `json:"result"`
}

// path returns the content address of key: every input that could
// change the measurements — codec version, campaign fingerprint, spec
// key — is folded into the filename, so incompatible stores sharing a
// directory cannot even collide on names.
func (d *Disk) path(key string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s|%s", system.ResultCodecVersion, d.fp, key)))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".json")
}

// Get loads the entry for key. Any defect — unreadable, truncated, or
// corrupt file, version or fingerprint or key mismatch, payload digest
// mismatch — is a miss, never an error: the runner re-simulates.
func (d *Disk) Get(key string) (*system.Result, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	var e entry
	if json.Unmarshal(data, &e) != nil ||
		e.Version != system.ResultCodecVersion ||
		e.Fingerprint != d.fp ||
		e.Key != key ||
		e.SHA256 != payloadDigest(e.Result) {
		d.misses.Add(1)
		return nil, false
	}
	res, err := system.DecodeResult(e.Result)
	if err != nil {
		d.misses.Add(1)
		return nil, false
	}
	d.hits.Add(1)
	return res, true
}

// Put persists res under key via write-to-temp + atomic rename, so
// readers (and concurrent writers of the same key, which by
// determinism carry identical bytes) never observe a partial entry.
// Failures are swallowed: an unwritten entry costs a re-simulation.
func (d *Disk) Put(key string, res *system.Result) {
	payload, err := system.EncodeResult(res)
	if err != nil {
		return
	}
	e := entry{
		Version:     system.ResultCodecVersion,
		Fingerprint: d.fp,
		Key:         key,
		SHA256:      payloadDigest(payload),
		Result:      payload,
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	final := d.path(key)
	tmp, err := os.CreateTemp(d.dir, "put-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	// CreateTemp makes 0600 files; entries must be world-readable so
	// stores shared between users/CI jobs (the whole point of the
	// on-disk format) render for everyone.
	merr := tmp.Chmod(0o644)
	cerr := tmp.Close()
	if werr != nil || merr != nil || cerr != nil || os.Rename(tmp.Name(), final) != nil {
		os.Remove(tmp.Name())
		return
	}
	d.puts.Add(1)
}

func payloadDigest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Stats reports the store's lifetime hit/miss/insert counters.
func (d *Disk) Stats() (hits, misses, puts uint64) {
	return d.hits.Load(), d.misses.Load(), d.puts.Load()
}

// Len counts the entries currently in the directory (all fingerprints
// and versions, not just this store's).
func (d *Disk) Len() int {
	matches, err := filepath.Glob(filepath.Join(d.dir, "*.json"))
	if err != nil {
		return 0
	}
	return len(matches)
}
