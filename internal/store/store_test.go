package store

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"skybyte/internal/sim"
	"skybyte/internal/system"
)

// sampleResult builds a representative Result without running a
// simulation (the codec itself is exercised against real simulations
// in internal/system; here the subject is the envelope integrity).
func sampleResult(key string) *system.Result {
	r := &system.Result{
		Variant:      "SkyByte-Full",
		CacheKey:     key,
		ExecTime:     123 * sim.Microsecond,
		Instructions: 96_000,
		LLCMisses:    4_321,
		MPKI:         45.01,
	}
	r.ReadLat.Observe(180 * sim.Nanosecond)
	r.ReadLat.Observe(3 * sim.Microsecond)
	r.FlashLat.Observe(5 * sim.Microsecond)
	r.Breakdown.Inc(0)
	r.Traffic.HostPrograms = 7
	return r
}

func openTestStore(t *testing.T, dir, fp string) *Disk {
	t.Helper()
	d, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPutGetRoundTrip(t *testing.T) {
	d := openTestStore(t, t.TempDir(), "fp-a")
	want := sampleResult("k1")
	d.Put("k1", want)
	got, ok := d.Get("k1")
	if !ok {
		t.Fatal("fresh Put missed on Get")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("result did not round-trip through the disk store")
	}
	if _, ok := d.Get("k2"); ok {
		t.Fatal("unknown key hit")
	}
	hits, misses, puts := d.Stats()
	if hits != 1 || misses != 1 || puts != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", hits, misses, puts)
	}
}

// mutateEntry rewrites the stored entry for key through f, bypassing
// Put's integrity stamping — the test stand-in for on-disk damage.
func mutateEntry(t *testing.T, d *Disk, key string, f func(*entry)) {
	t.Helper()
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		t.Fatal(err)
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	f(&e)
	out, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path(key), out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptPayloadMisses(t *testing.T) {
	d := openTestStore(t, t.TempDir(), "fp-a")
	d.Put("k1", sampleResult("k1"))
	mutateEntry(t, d, "k1", func(e *entry) {
		e.Result = []byte(`{"Variant":"SkyByte-Full","Instructions":999999}`)
	})
	if _, ok := d.Get("k1"); ok {
		t.Fatal("tampered payload served (digest check failed to catch it)")
	}
}

func TestTruncatedFileMisses(t *testing.T) {
	d := openTestStore(t, t.TempDir(), "fp-a")
	d.Put("k1", sampleResult("k1"))
	data, err := os.ReadFile(d.path("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path("k1"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k1"); ok {
		t.Fatal("truncated entry served")
	}
}

func TestGarbageFileMisses(t *testing.T) {
	d := openTestStore(t, t.TempDir(), "fp-a")
	d.Put("k1", sampleResult("k1"))
	if err := os.WriteFile(d.path("k1"), []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k1"); ok {
		t.Fatal("garbage entry served")
	}
}

// TestFingerprintMismatchMisses covers the foreign-cache case both
// ways: a store with another fingerprint addresses different files
// entirely, and even a file placed at the right address with the wrong
// embedded fingerprint is rejected by the envelope check.
func TestFingerprintMismatchMisses(t *testing.T) {
	dir := t.TempDir()
	a := openTestStore(t, dir, "fp-a")
	a.Put("k1", sampleResult("k1"))
	b := openTestStore(t, dir, "fp-b")
	if _, ok := b.Get("k1"); ok {
		t.Fatal("foreign fingerprint hit via addressing")
	}
	// Force the address collision: copy a's entry to b's path for k1.
	data, err := os.ReadFile(a.path("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b.path("k1"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get("k1"); ok {
		t.Fatal("entry with mismatched embedded fingerprint served")
	}
}

// TestCodecVersionBumpMisses plants an entry claiming a different codec
// version at the current address: it must miss, modelling a store
// written by a build with a bumped ResultCodecVersion.
func TestCodecVersionBumpMisses(t *testing.T) {
	d := openTestStore(t, t.TempDir(), "fp-a")
	d.Put("k1", sampleResult("k1"))
	mutateEntry(t, d, "k1", func(e *entry) { e.Version = system.ResultCodecVersion + 1 })
	if _, ok := d.Get("k1"); ok {
		t.Fatal("entry with foreign codec version served")
	}
}

// TestKeyMismatchMisses plants one key's entry at another key's
// address (a relocated or renamed file): the embedded key check must
// reject it.
func TestKeyMismatchMisses(t *testing.T) {
	d := openTestStore(t, t.TempDir(), "fp-a")
	d.Put("k1", sampleResult("k1"))
	data, err := os.ReadFile(d.path("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path("k2"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k2"); ok {
		t.Fatal("relocated entry served under the wrong key")
	}
}

func TestFingerprintIdentity(t *testing.T) {
	cfg := system.ScaledConfig()
	if Fingerprint(cfg, 1) != Fingerprint(system.ScaledConfig(), 1) {
		t.Fatal("identical campaigns fingerprint differently")
	}
	if Fingerprint(cfg, 1) == Fingerprint(cfg, 2) {
		t.Fatal("seed not folded into the campaign fingerprint")
	}
	if Fingerprint(cfg, 1) == Fingerprint(system.PaperConfig(), 1) {
		t.Fatal("config not folded into the campaign fingerprint")
	}
}

func TestPutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, "fp-a")
	d.Put("k1", sampleResult("k1"))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after Put", e.Name())
		}
	}
	if n := d.Len(); n != 1 {
		t.Fatalf("store holds %d entries, want 1", n)
	}
}
