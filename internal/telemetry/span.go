package telemetry

import (
	"sort"

	"skybyte/internal/sim"
	"skybyte/internal/stats"
)

// Track (pid) assignments of the exported timeline. Spans within one
// (pid, tid) pair either nest or are disjoint — the invariant the
// timeline validator enforces — so concurrent activities live on
// distinct tracks.
const (
	// RequestPID tracks open-loop request lifecycles: per gated thread
	// (tid = thread ID), a "queued" span from arrival to admission and
	// a "service" span from admission to completion.
	RequestPID = 1
	// CorePID tracks coordinated context switches, one tid per core.
	CorePID = 2
	// MemoryPID tracks off-chip reads: a "read" parent span with
	// sequential cxl/log-index/ssd-dram/flash child segments, slotted
	// onto tids so overlapping reads never share one (see the slot
	// allocator in internal/system).
	MemoryPID = 3
)

// DefaultSpanCap bounds a timeline at this many spans; overflow is
// counted, not stored, so span memory is bounded on long runs.
const DefaultSpanCap = 1 << 17

// Span is one completed interval of the timeline.
type Span struct {
	Name  string
	Cat   string
	PID   int32
	TID   int32
	Start sim.Time
	Dur   sim.Time
}

// End returns the span's end instant.
func (s Span) End() sim.Time { return s.Start + s.Dur }

// SpanRecorder accumulates completed spans up to a fixed capacity.
// All mutation happens on the owning System's event loop.
type SpanRecorder struct {
	cap     int
	spans   []Span
	Dropped uint64
}

// NewSpanRecorder builds a recorder holding at most capacity spans
// (DefaultSpanCap when non-positive).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanRecorder{cap: capacity}
}

// Add records one completed span [start, end). Ends before starts
// clamp to zero duration; spans beyond the capacity are counted into
// Dropped and discarded.
func (sr *SpanRecorder) Add(name, cat string, pid, tid int32, start, end sim.Time) {
	if len(sr.spans) >= sr.cap {
		sr.Dropped++
		return
	}
	if end < start {
		end = start
	}
	sr.spans = append(sr.spans, Span{Name: name, Cat: cat, PID: pid, TID: tid, Start: start, Dur: end - start})
}

// Len returns the recorded span count.
func (sr *SpanRecorder) Len() int { return len(sr.spans) }

// Sorted returns the spans in canonical order: start ascending, then
// pid, tid, duration descending (a parent precedes children sharing
// its start), then name. Spans complete out of start order (they are
// recorded at their end), so the sort is what makes equal simulations
// serialize to equal bytes.
func (sr *SpanRecorder) Sorted() []Span {
	out := append([]Span(nil), sr.spans...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur
		}
		return a.Name < b.Name
	})
	return out
}

// ClassTrack is one SLO class's live telemetry state, shared by every
// gate of the class: the in-flight request count and a latency
// histogram the windowed-percentile probe drains each sampling tick.
// A nil *ClassTrack on a gate means telemetry is off (the hooks cost
// one nil check).
type ClassTrack struct {
	Inflight int
	Window   stats.LatencyHist
}

// WindowedPercentileUS drains the window: it returns the p-th
// percentile of the latencies observed since the previous call, in
// microseconds (0 for an empty window), and resets the histogram so
// the next sampling tick sees only its own window.
func (c *ClassTrack) WindowedPercentileUS(p float64) float64 {
	if c.Window.Count() == 0 {
		return 0
	}
	v := float64(c.Window.Percentile(p)) / float64(sim.Microsecond)
	c.Window.Reset()
	return v
}
