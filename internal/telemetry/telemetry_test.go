package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"skybyte/internal/sim"
)

// TestSeriesFoldsAndCompacts drives a series past its capacity and
// checks the stride-doubling downsampling: memory stays bounded, the
// aggregates (count, sum, min, max, last) stay exact, and the dump is
// a pure function of the sample sequence.
func TestSeriesFoldsAndCompacts(t *testing.T) {
	const cap = 8
	s := NewSeries(cap)
	cadence := sim.Microsecond
	n := 100 // far beyond cap: forces several compactions
	var sum float64
	for i := 0; i < n; i++ {
		v := float64(i % 17)
		s.Add(sim.Time(i)*cadence, v)
		sum += v
	}
	d := s.Dump("x", cadence)
	if len(d.Points) > cap {
		t.Fatalf("dump has %d points, capacity %d", len(d.Points), cap)
	}
	var count uint64
	var total float64
	for _, p := range d.Points {
		count += p.Count
		total += p.Sum
	}
	if count != uint64(n) {
		t.Fatalf("points fold %d samples, want %d", count, n)
	}
	if math.Abs(total-sum) > 1e-9 {
		t.Fatalf("points sum to %g, want %g", total, sum)
	}
	// Stride reflects the doubling: with 100 samples and 8 points it
	// must be a power-of-two multiple of the cadence covering them.
	if d.Stride%cadence != 0 || d.Stride < cadence {
		t.Fatalf("stride %v not a multiple of cadence %v", d.Stride, cadence)
	}
	if d.Points[0].T != 0 {
		t.Fatalf("first point at %v, want 0", d.Points[0].T)
	}
	if last := d.Points[len(d.Points)-1].Last; last != float64((n-1)%17) {
		t.Fatalf("tail Last = %g, want %g", last, float64((n-1)%17))
	}

	// Determinism: replaying the same samples dumps the same bytes.
	s2 := NewSeries(cap)
	for i := 0; i < n; i++ {
		s2.Add(sim.Time(i)*cadence, float64(i%17))
	}
	b1, _ := json.Marshal(d)
	b2, _ := json.Marshal(s2.Dump("x", cadence))
	if !bytes.Equal(b1, b2) {
		t.Fatal("equal sample sequences dumped different bytes")
	}
}

// TestSeriesDumpDoesNotMutate checks Dump's partial-tail flush leaves
// the series unchanged, so snapshotting twice is safe.
func TestSeriesDumpDoesNotMutate(t *testing.T) {
	s := NewSeries(4)
	s.Add(0, 1)
	d1 := s.Dump("x", sim.Microsecond)
	d2 := s.Dump("x", sim.Microsecond)
	if len(d1.Points) != 1 || len(d2.Points) != 1 {
		t.Fatalf("dumps have %d and %d points, want 1 and 1", len(d1.Points), len(d2.Points))
	}
	s.Add(sim.Microsecond, 3)
	d3 := s.Dump("x", sim.Microsecond)
	if len(d3.Points) == 0 || d3.Points[0].Count != 1 {
		t.Fatal("later samples corrupted by earlier Dump")
	}
}

// TestSeriesMeanMax exercises the windowed reduction helpers figopen's
// telemetry table uses.
func TestSeriesMeanMax(t *testing.T) {
	s := NewSeries(64)
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i)*sim.Microsecond, float64(i))
	}
	d := s.Dump("x", sim.Microsecond)
	from, to := 2*sim.Microsecond, 5*sim.Microsecond // samples 2,3,4
	if got := d.Mean(from, to); math.Abs(got-3) > 1e-9 {
		t.Fatalf("Mean = %g, want 3", got)
	}
	if got := d.Max(from, to); got != 4 {
		t.Fatalf("Max = %g, want 4", got)
	}
	if got := d.Mean(100*sim.Microsecond, 200*sim.Microsecond); got != 0 {
		t.Fatalf("Mean of empty range = %g, want 0", got)
	}
}

// TestSpanRecorderCapAndOrder checks the overflow counter and the
// canonical sort (start asc, pid, tid, longest-first so parents sort
// before their same-start children).
func TestSpanRecorderCapAndOrder(t *testing.T) {
	r := NewSpanRecorder(2)
	r.Add("b", "c", 1, 0, 10, 20)
	r.Add("a", "c", 1, 0, 10, 30) // same start, longer: sorts first
	r.Add("c", "c", 1, 0, 40, 50) // beyond cap: dropped
	if r.Len() != 2 {
		t.Fatalf("recorder holds %d spans, want 2", r.Len())
	}
	if r.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", r.Dropped)
	}
	spans := r.Sorted()
	if spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("sorted order %q, %q; want a, b", spans[0].Name, spans[1].Name)
	}
}

// TestRecorderSamplesOnCadence runs a sampler against a toy event load
// and checks the probe is read once per elapsed cadence and that the
// tick chain ends with the last real event (the engine terminates).
func TestRecorderSamplesOnCadence(t *testing.T) {
	var eng sim.Engine
	rec := New(&eng, sim.Microsecond)
	var reads int
	rec.Register("ticks", func() float64 { reads++; return float64(reads) })
	// One real event at 10µs keeps the queue non-empty through ten ticks.
	eng.At(10*sim.Microsecond, func() {})
	rec.Start()
	eng.Run()
	// Ticks at 1..9µs see the pending event and reschedule; the tick at
	// 10µs (fired after the event at equal time or as the last entry)
	// ends the chain.
	if reads < 9 || reads > 11 {
		t.Fatalf("probe read %d times, want ~10", reads)
	}
	snap := rec.Snapshot()
	if snap.Samples != uint64(reads) {
		t.Fatalf("Samples = %d, probe reads = %d", snap.Samples, reads)
	}
	if s := snap.SeriesByName("ticks"); s == nil || len(s.Points) == 0 {
		t.Fatal("snapshot missing the registered series")
	}
	if snap.SeriesByName("nope") != nil {
		t.Fatal("SeriesByName invented a series")
	}
}

// TestChromeTraceRoundTrip writes a well-formed timeline and validates
// it, then checks the validator rejects partial overlap on one track.
func TestChromeTraceRoundTrip(t *testing.T) {
	r := NewSpanRecorder(0)
	// Parent with nested children on the memory track, a disjoint span
	// on another tid, and a request-track span.
	r.Add("read", "memory", MemoryPID, 0, 0, 100)
	r.Add("cxl", "memory", MemoryPID, 0, 0, 40)
	r.Add("flash", "memory", MemoryPID, 0, 40, 100)
	r.Add("read", "memory", MemoryPID, 1, 50, 200)
	r.Add("service", "request", RequestPID, 3, 10, 90)
	snap := &Snapshot{Cadence: sim.Microsecond, Spans: r.Sorted()}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, snap); err != nil {
		t.Fatal(err)
	}
	spans, tracks, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("valid timeline rejected: %v", err)
	}
	if spans != 5 {
		t.Fatalf("validator saw %d spans, want 5", spans)
	}
	if tracks != 3 { // (mem,0), (mem,1), (req,3)
		t.Fatalf("validator saw %d tracks, want 3", tracks)
	}

	// The emitted JSON is a valid chrome trace object.
	var obj struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(obj.TraceEvents) < 5 {
		t.Fatalf("timeline has %d events, want >= 5", len(obj.TraceEvents))
	}
}

// TestValidateRejectsPartialOverlap feeds the validator two spans on
// one track that overlap without nesting, which a correct span emitter
// must never produce.
func TestValidateRejectsPartialOverlap(t *testing.T) {
	r := NewSpanRecorder(0)
	r.Add("a", "x", 1, 0, 0, 100)
	r.Add("b", "x", 1, 0, 50, 150) // starts inside a, ends outside
	snap := &Snapshot{Spans: r.Sorted()}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ValidateChromeTrace(buf.Bytes()); err == nil {
		t.Fatal("validator accepted partially overlapping spans")
	}
}

// TestClassTrackWindow checks the windowed percentile drains between
// reads.
func TestClassTrackWindow(t *testing.T) {
	var tr ClassTrack
	tr.Window.Observe(10 * sim.Microsecond)
	tr.Window.Observe(20 * sim.Microsecond)
	p := tr.WindowedPercentileUS(99)
	if p < 15 || p > 25 {
		t.Fatalf("windowed p99 = %g µs, want ~20", p)
	}
	if got := tr.WindowedPercentileUS(99); got != 0 {
		t.Fatalf("second read = %g, want 0 (window drained)", got)
	}
}
