package telemetry

import "skybyte/internal/sim"

// DefaultSeriesCap bounds each series at this many aggregate points.
// With stride doubling, 256 points cover any run length: a run 2^k
// times longer than the capacity horizon just carries points 2^k
// cadences wide.
const DefaultSeriesCap = 256

// Point is one aggregate of consecutive samples: enough to recover
// mean (Sum/Count), envelope (Min/Max), and the instantaneous tail
// value (Last) at any downsampling level without ever re-reading the
// raw samples.
type Point struct {
	// T is the instant of the first sample folded into this point.
	T     sim.Time
	Count uint64
	Sum   float64
	Min   float64
	Max   float64
	Last  float64
}

func mergePoints(a, b Point) Point {
	m := Point{T: a.T, Count: a.Count + b.Count, Sum: a.Sum + b.Sum, Min: a.Min, Max: a.Max, Last: b.Last}
	if b.Min < m.Min {
		m.Min = b.Min
	}
	if b.Max > m.Max {
		m.Max = b.Max
	}
	return m
}

// Series accumulates samples into at most cap aggregate points. Each
// point folds perPoint consecutive samples; when the point slice
// reaches capacity, adjacent pairs merge and perPoint doubles — memory
// stays O(cap) for any run length, and the operation is a pure
// function of the sample sequence, so equal runs produce equal series.
type Series struct {
	cap      int
	perPoint int
	points   []Point
	cur      Point
	curN     int
}

// NewSeries builds a series bounded at capacity points (rounded up to
// even, minimum 2 — compaction halves the slice).
func NewSeries(capacity int) *Series {
	if capacity < 2 {
		capacity = DefaultSeriesCap
	}
	if capacity%2 != 0 {
		capacity++
	}
	return &Series{cap: capacity, perPoint: 1}
}

// Add folds one sample taken at instant t.
func (s *Series) Add(t sim.Time, v float64) {
	if s.curN == 0 {
		s.cur = Point{T: t, Count: 1, Sum: v, Min: v, Max: v, Last: v}
	} else {
		s.cur.Count++
		s.cur.Sum += v
		if v < s.cur.Min {
			s.cur.Min = v
		}
		if v > s.cur.Max {
			s.cur.Max = v
		}
		s.cur.Last = v
	}
	s.curN++
	if s.curN == s.perPoint {
		s.points = append(s.points, s.cur)
		s.curN = 0
		if len(s.points) == s.cap {
			s.compact()
		}
	}
}

// compact merges adjacent point pairs and doubles the samples-per-point
// stride, halving the slice.
func (s *Series) compact() {
	half := len(s.points) / 2
	for i := 0; i < half; i++ {
		s.points[i] = mergePoints(s.points[2*i], s.points[2*i+1])
	}
	s.points = s.points[:half]
	s.perPoint *= 2
}

// Len returns the sealed point count (the partial tail point excluded).
func (s *Series) Len() int { return len(s.points) }

// SeriesDump is the serializable form of a series.
type SeriesDump struct {
	Name string
	// Stride is the sim-time width of each sealed point: the sampling
	// cadence times the samples folded per point at dump time (the
	// tail point may hold fewer).
	Stride sim.Time
	Points []Point
}

// Dump freezes the series, flushing the partial tail point. The series
// itself is not mutated, so Dump is safe to call more than once.
func (s *Series) Dump(name string, cadence sim.Time) SeriesDump {
	d := SeriesDump{Name: name, Stride: cadence * sim.Time(s.perPoint)}
	d.Points = append(d.Points, s.points...)
	if s.curN > 0 {
		d.Points = append(d.Points, s.cur)
	}
	return d
}

// Mean returns the sample mean over points of d whose start instant
// lies in [from, to), or 0 when the range holds no samples.
func (d *SeriesDump) Mean(from, to sim.Time) float64 {
	var sum float64
	var n uint64
	for _, p := range d.Points {
		if p.T >= from && p.T < to {
			sum += p.Sum
			n += p.Count
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Max returns the sample maximum over points of d whose start instant
// lies in [from, to), or 0 when the range holds no samples.
func (d *SeriesDump) Max(from, to sim.Time) float64 {
	var max float64
	seen := false
	for _, p := range d.Points {
		if p.T >= from && p.T < to {
			if !seen || p.Max > max {
				max = p.Max
			}
			seen = true
		}
	}
	return max
}
