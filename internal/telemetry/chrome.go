package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"skybyte/internal/sim"
)

// chromeEvent is one entry of the Chrome trace-event format ("X"
// complete events plus "M" metadata). Timestamps and durations are
// microseconds, the format's native unit.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	TS   float64         `json:"ts"`
	Dur  float64         `json:"dur,omitempty"`
	PID  int32           `json:"pid"`
	TID  int32           `json:"tid"`
	Args json.RawMessage `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usOf(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// trackNames labels the well-known pids in the viewer.
var trackNames = map[int32]string{
	RequestPID: "requests",
	CorePID:    "cores",
	MemoryPID:  "memory",
}

// WriteChromeTrace renders the snapshot's spans as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing. The output is a pure
// function of the snapshot, so equal snapshots write equal bytes.
func WriteChromeTrace(w io.Writer, snap *Snapshot) error {
	tr := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	pids := make([]int32, 0, len(trackNames))
	for pid := range trackNames {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		args, _ := json.Marshal(map[string]string{"name": trackNames[pid]})
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, Args: args,
		})
	}
	for _, s := range snap.Spans {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: usOf(s.Start), Dur: usOf(s.Dur),
			PID: s.PID, TID: s.TID,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}

// ValidateChromeTrace parses trace-event JSON and checks the
// structural contract our exporter promises: every non-metadata event
// is a complete ("X") span with a name and non-negative timestamps,
// and within each (pid, tid) track spans either nest or are disjoint —
// a partial overlap means the parent/child structure is broken. It
// returns the span and track counts for reporting.
func ValidateChromeTrace(data []byte) (spans, tracks int, err error) {
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return 0, 0, fmt.Errorf("telemetry: not trace-event JSON: %w", err)
	}
	type key struct{ pid, tid int32 }
	byTrack := map[key][]chromeEvent{}
	for i, e := range tr.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Ph != "X" {
			return 0, 0, fmt.Errorf("telemetry: event %d: phase %q (exporter emits only X and M)", i, e.Ph)
		}
		if e.Name == "" {
			return 0, 0, fmt.Errorf("telemetry: event %d: empty name", i)
		}
		if e.TS < 0 || e.Dur < 0 {
			return 0, 0, fmt.Errorf("telemetry: event %d (%s): negative ts/dur", i, e.Name)
		}
		k := key{e.PID, e.TID}
		byTrack[k] = append(byTrack[k], e)
		spans++
	}
	// Float microseconds round picosecond instants, so containment is
	// checked with a one-picosecond tolerance.
	const eps = 1e-6
	for k, evs := range byTrack {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].TS != evs[j].TS {
				return evs[i].TS < evs[j].TS
			}
			return evs[i].Dur > evs[j].Dur
		})
		var stack []chromeEvent
		for _, e := range evs {
			for len(stack) > 0 {
				top := stack[len(stack)-1]
				if top.TS+top.Dur <= e.TS+eps {
					stack = stack[:len(stack)-1]
					continue
				}
				break
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if e.TS+e.Dur > top.TS+top.Dur+eps {
					return 0, 0, fmt.Errorf(
						"telemetry: track pid=%d tid=%d: span %q [%g, %g] partially overlaps %q [%g, %g] (neither nested nor disjoint)",
						k.pid, k.tid, e.Name, e.TS, e.TS+e.Dur, top.Name, top.TS, top.TS+top.Dur)
				}
			}
			stack = append(stack, e)
		}
	}
	return spans, len(byTrack), nil
}
