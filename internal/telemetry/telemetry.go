// Package telemetry adds time-resolved visibility to a simulation:
// named probes sampled on a fixed sim-time cadence into fixed-capacity
// downsampling time-series, and a request-lifecycle span recorder that
// exports Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing). Both ride inside Result.Telemetry, so they flow
// through the persistent store and are byte-identical at any
// parallelism like every other measurement.
//
// The package is built around the zero-cost-when-off contract: a
// simulation that does not enable telemetry carries only nil pointers
// at the hook sites (one nil check per hook, no allocations — pinned
// by TestColdRunAllocsBudget and cmd/benchgate), and the sampler
// schedules no events, so the disabled event order is bit-identical to
// a build without the package.
package telemetry

import "skybyte/internal/sim"

// Recorder owns one simulation's telemetry: the probe registry, the
// engine-driven sampler, and (optionally) the span recorder. A
// Recorder belongs to exactly one System and is driven entirely from
// its event loop — no locking, no package-level state.
type Recorder struct {
	eng     *sim.Engine
	cadence sim.Time
	samples uint64
	probes  []probe
	spans   *SpanRecorder
}

type probe struct {
	name string
	fn   func() float64
	s    *Series
}

// New builds a recorder sampling every cadence of simulated time.
func New(eng *sim.Engine, cadence sim.Time) *Recorder {
	if cadence <= 0 {
		panic("telemetry: non-positive sampling cadence")
	}
	return &Recorder{eng: eng, cadence: cadence}
}

// Cadence returns the sampling period.
func (r *Recorder) Cadence() sim.Time { return r.cadence }

// Register adds a probe. fn is invoked once per sampling tick, on the
// event loop, and must be cheap and side-effect-free except for
// window-reset semantics the probe itself owns (e.g. a windowed
// percentile that drains its histogram). Registration order is the
// series order in the snapshot, so callers must register
// deterministically.
func (r *Recorder) Register(name string, fn func() float64) {
	r.probes = append(r.probes, probe{name: name, fn: fn, s: NewSeries(DefaultSeriesCap)})
}

// EnableSpans attaches a span recorder with the given capacity
// (DefaultSpanCap when zero or negative) and returns it. Idempotent.
func (r *Recorder) EnableSpans(capacity int) *SpanRecorder {
	if r.spans == nil {
		r.spans = NewSpanRecorder(capacity)
	}
	return r.spans
}

// Spans returns the span recorder, nil unless EnableSpans was called.
func (r *Recorder) Spans() *SpanRecorder { return r.spans }

// hSample drives the sampler off the event engine (p1 = *Recorder).
// Assigned in init rather than at declaration: sample reschedules
// through hSample, and a var initializer would be a cycle.
var hSample sim.HandlerID

func init() {
	hSample = sim.RegisterHandler(func(_ uint64, p1, _ any) {
		p1.(*Recorder).sample()
	})
}

// Start schedules the first sampling tick one cadence from now. Call
// after every probe is registered, immediately before the engine runs.
func (r *Recorder) Start() {
	r.eng.AfterH(r.cadence, hSample, 0, r, nil)
}

// sample reads every probe, then reschedules itself — but only while
// other work remains. The engine's Run loop terminates when its queue
// empties; an unconditionally rescheduling sampler would keep the
// queue non-empty forever. When the sampler's own event was the last
// one, the simulation is over and the tick chain ends with it.
func (r *Recorder) sample() {
	now := r.eng.Now()
	for i := range r.probes {
		p := &r.probes[i]
		p.s.Add(now, p.fn())
	}
	r.samples++
	if r.eng.Pending() > 0 {
		r.eng.AfterH(r.cadence, hSample, 0, r, nil)
	}
}

// Snapshot is the serializable form of a recorder: what Result.Telemetry
// carries. Field order is the canonical JSON order (EncodeResult).
type Snapshot struct {
	// Cadence is the sampling period; Samples the tick count taken.
	Cadence sim.Time
	Samples uint64
	// Series holds one dump per probe, in registration order.
	Series []SeriesDump
	// Spans is the sorted request-lifecycle timeline (timeline runs
	// only); DroppedSpans counts overflow beyond the recorder cap.
	Spans        []Span `json:",omitempty"`
	DroppedSpans uint64 `json:",omitempty"`
}

// Snapshot freezes the recorder into its serializable form. The
// partial tail point of each series is flushed, and spans are sorted
// canonically (start, pid, tid, longest-first), so equal simulations
// snapshot to equal bytes.
func (r *Recorder) Snapshot() *Snapshot {
	snap := &Snapshot{Cadence: r.cadence, Samples: r.samples}
	for i := range r.probes {
		p := &r.probes[i]
		snap.Series = append(snap.Series, p.s.Dump(p.name, r.cadence))
	}
	if r.spans != nil {
		snap.Spans = r.spans.Sorted()
		snap.DroppedSpans = r.spans.Dropped
	}
	return snap
}

// SeriesByName returns the named series dump, or nil.
func (t *Snapshot) SeriesByName(name string) *SeriesDump {
	for i := range t.Series {
		if t.Series[i].Name == name {
			return &t.Series[i]
		}
	}
	return nil
}
