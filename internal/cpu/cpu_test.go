package cpu

import (
	"testing"

	"skybyte/internal/cachesim"
	"skybyte/internal/mem"
	"skybyte/internal/osched"
	"skybyte/internal/sim"
	"skybyte/internal/trace"
)

// mockBackend serves reads with a fixed latency, optionally hinting
// addresses in hintAddrs instead of returning data.
type mockBackend struct {
	eng       *sim.Engine
	latency   sim.Time
	wrLatency sim.Time
	hintAddrs map[mem.Addr]bool
	hintOnce  bool // hint only the first request per address
	fastAddrs map[mem.Addr]bool
	reads     []mem.Addr
	writes    []mem.Addr
	hinted    int
}

// resumeLatency models the re-issued access hitting the SSD DRAM cache
// because the page fetch completed while the thread was switched away.
const resumeLatency = 200 * sim.Nanosecond

func (m *mockBackend) Read(req *ReadReq) {
	m.reads = append(m.reads, req.Addr)
	if m.fastAddrs[req.Addr] {
		m.eng.After(resumeLatency, req.OnData)
		return
	}
	if m.hintAddrs[req.Addr] {
		if m.hintOnce {
			delete(m.hintAddrs, req.Addr)
			m.fastAddrs[req.Addr] = true
		}
		m.hinted++
		m.eng.After(10*sim.Nanosecond, req.OnHint)
		return
	}
	m.eng.After(m.latency, req.OnData)
}

func (m *mockBackend) Write(a mem.Addr, coreID, tenant int, record bool, accepted func()) {
	m.writes = append(m.writes, a)
	m.eng.After(m.wrLatency, accepted)
}

type rig struct {
	eng   *sim.Engine
	be    *mockBackend
	sched *osched.Scheduler
	cores []*Core
	llc   *cachesim.Cache
}

func newRig(nCores int, cfg Config, beLatency sim.Time) *rig {
	eng := &sim.Engine{}
	be := &mockBackend{eng: eng, latency: beLatency, wrLatency: 20 * sim.Nanosecond,
		hintAddrs: map[mem.Addr]bool{}, fastAddrs: map[mem.Addr]bool{}}
	sched := osched.New(eng, osched.NewPolicy(osched.PolicyRR, 1), 2*sim.Microsecond)
	llc := cachesim.New(cachesim.Config{Name: "llc", SizeBytes: 64 * mem.KiB, Ways: 16})
	r := &rig{eng: eng, be: be, sched: sched, llc: llc}
	for i := 0; i < nCores; i++ {
		l1 := cachesim.New(cachesim.Config{Name: "l1", SizeBytes: 4 * mem.KiB, Ways: 4})
		l2 := cachesim.New(cachesim.Config{Name: "l2", SizeBytes: 16 * mem.KiB, Ways: 8})
		r.cores = append(r.cores, New(eng, i, cfg, l1, l2, llc, be, sched))
	}
	return r
}

func (r *rig) run(threads ...*osched.Thread) {
	for _, t := range threads {
		r.sched.Enqueue(t)
	}
	for _, c := range r.cores {
		c.Start()
	}
	r.eng.Run()
}

func thread(id int, recs []trace.Record) *osched.Thread {
	return &osched.Thread{ID: id, Replay: trace.NewReplayer(&trace.SliceStream{Recs: recs})}
}

func TestComputeOnlyTiming(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(1, cfg, 100*sim.Nanosecond)
	th := thread(0, []trace.Record{{Kind: trace.Compute, N: 4000}})
	r.run(th)
	c := r.cores[0]
	// 4000 instructions at 4 IPC, 4 GHz = 1000 cycles = 250 ns.
	want := sim.Time(4000) * c.perInstr
	if c.Stats.Bound.Compute != want {
		t.Fatalf("compute time = %v, want %v", c.Stats.Bound.Compute, want)
	}
	if c.Stats.Bound.MemStall != 0 {
		t.Fatalf("unexpected memory stall %v", c.Stats.Bound.MemStall)
	}
	if !th.Finished {
		t.Fatal("thread not finished")
	}
}

func TestLoadMissStallsAndFills(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(1, cfg, 100*sim.Nanosecond)
	a := mem.Addr(0x10000)
	th := thread(0, []trace.Record{
		{Kind: trace.Load, Addr: a},
		{Kind: trace.Compute, N: 300}, // crosses the ROB: gates on the miss
		{Kind: trace.Load, Addr: a},   // then this access hits L1
	})
	r.run(th)
	c := r.cores[0]
	if len(r.be.reads) != 1 {
		t.Fatalf("backend reads = %d, want 1 (second should hit)", len(r.be.reads))
	}
	if c.Stats.L1Hits != 1 {
		t.Fatalf("L1 hits = %d, want 1", c.Stats.L1Hits)
	}
	// 300 instructions overlap ~19ns of the 100ns miss; the rest stalls.
	if c.Stats.Bound.MemStall < 50*sim.Nanosecond {
		t.Fatalf("mem stall = %v, want >50ns", c.Stats.Bound.MemStall)
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	// Ten independent misses with MLP=8 should take far less than 10x the
	// latency: misses overlap under the ROB window.
	cfg := DefaultConfig()
	lat := 1 * sim.Microsecond
	var recs []trace.Record
	for i := 0; i < 8; i++ {
		recs = append(recs, trace.Record{Kind: trace.Load, Addr: mem.Addr(0x100000 + i*4096)})
	}
	r := newRig(1, cfg, lat)
	th := thread(0, recs)
	r.run(th)
	c := r.cores[0]
	serial := sim.Time(8) * lat
	if c.time >= serial/2 {
		t.Fatalf("exec time %v suggests no MLP (serial would be %v)", c.time, serial)
	}
	if c.time < lat {
		t.Fatalf("exec time %v below a single miss latency", c.time)
	}
}

func TestMLPCapEnforced(t *testing.T) {
	// With MLP=2, eight misses serialise in pairs: ~4x latency.
	cfg := DefaultConfig()
	cfg.MLP = 2
	lat := 1 * sim.Microsecond
	var recs []trace.Record
	for i := 0; i < 8; i++ {
		recs = append(recs, trace.Record{Kind: trace.Load, Addr: mem.Addr(0x100000 + i*4096)})
	}
	r := newRig(1, cfg, lat)
	r.run(thread(0, recs))
	c := r.cores[0]
	if c.time < 3*lat {
		t.Fatalf("exec time %v too fast for MLP=2", c.time)
	}
}

func TestROBLimitsRunahead(t *testing.T) {
	// A miss followed by a compute burst far larger than the ROB: the core
	// cannot run past ROB instructions, so total time ≈ miss + compute.
	cfg := DefaultConfig()
	lat := 10 * sim.Microsecond
	r := newRig(1, cfg, lat)
	recs := []trace.Record{
		{Kind: trace.Load, Addr: 0x100000},
		{Kind: trace.Compute, N: 100}, // within ROB: overlaps
		{Kind: trace.Compute, N: 200}, // crosses ROB boundary: waits
		{Kind: trace.Compute, N: 100000},
	}
	r.run(thread(0, recs))
	c := r.cores[0]
	if c.Stats.Bound.MemStall < 9*sim.Microsecond {
		t.Fatalf("mem stall %v: ROB failed to gate run-ahead", c.Stats.Bound.MemStall)
	}
}

func TestStoreDoesNotBlock(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(1, cfg, 10*sim.Microsecond)
	var recs []trace.Record
	for i := 0; i < 20; i++ {
		recs = append(recs, trace.Record{Kind: trace.Store, Addr: mem.Addr(0x100000 + i*64)})
	}
	r.run(thread(0, recs))
	c := r.cores[0]
	// Stores allocate without fetching: no backend reads, tiny exec time.
	if len(r.be.reads) != 0 {
		t.Fatalf("stores generated %d backend reads; write-validate expected", len(r.be.reads))
	}
	if c.Stats.Bound.MemStall > sim.Microsecond {
		t.Fatalf("stores stalled the core: %v", c.Stats.Bound.MemStall)
	}
}

func TestDirtyEvictionReachesBackend(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(1, cfg, 100*sim.Nanosecond)
	// Write far more distinct lines than the whole hierarchy holds; dirty
	// evictions must surface as backend writes.
	var recs []trace.Record
	for i := 0; i < 4096; i++ {
		recs = append(recs, trace.Record{Kind: trace.Store, Addr: mem.Addr(0x100000 + i*64)})
	}
	r.run(thread(0, recs))
	if len(r.be.writes) == 0 {
		t.Fatal("no writebacks reached the backend")
	}
	if r.cores[0].Stats.Writebacks != uint64(len(r.be.writes)) {
		t.Fatal("writeback count mismatch")
	}
}

func TestWritebackCreditBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WBCredits = 2
	r := newRig(1, cfg, 100*sim.Nanosecond)
	r.be.wrLatency = 100 * sim.Microsecond // device absorbs writes very slowly
	var recs []trace.Record
	for i := 0; i < 4096; i++ {
		recs = append(recs, trace.Record{Kind: trace.Store, Addr: mem.Addr(0x100000 + i*64)})
	}
	r.run(thread(0, recs))
	c := r.cores[0]
	if c.Stats.Bound.MemStall < 100*sim.Microsecond {
		t.Fatalf("slow device writes did not backpressure the core (stall=%v)", c.Stats.Bound.MemStall)
	}
}

func TestHintTriggersContextSwitch(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(1, cfg, 100*sim.Nanosecond)
	slow := mem.Addr(0x200000)
	r.be.hintAddrs[slow] = true
	r.be.hintOnce = true // re-issue after switch gets data
	t0 := thread(0, []trace.Record{
		{Kind: trace.Load, Addr: slow},
		{Kind: trace.Compute, N: 100},
	})
	t1 := thread(1, []trace.Record{{Kind: trace.Compute, N: 100000}})
	r.run(t0, t1)
	c := r.cores[0]
	if c.Stats.HintSwitches == 0 {
		t.Fatal("hint did not trigger a context switch")
	}
	if !t0.Finished || !t1.Finished {
		t.Fatal("threads did not finish")
	}
	if t0.Switches == 0 {
		t.Fatal("switched thread's counter not incremented")
	}
	if c.Stats.Bound.CtxSwitch < 2*sim.Microsecond {
		t.Fatalf("switch cost not charged: %v", c.Stats.Bound.CtxSwitch)
	}
	// The faulting load must have been re-issued after resume.
	n := 0
	for _, a := range r.be.reads {
		if a == slow {
			n++
		}
	}
	if n < 2 {
		t.Fatalf("faulting load issued %d times, want >=2 (re-issue on resume)", n)
	}
}

func TestSwitchToSelfWhenQueueEmpty(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(1, cfg, 100*sim.Nanosecond)
	slow := mem.Addr(0x200000)
	r.be.hintAddrs[slow] = true
	r.be.hintOnce = true
	t0 := thread(0, []trace.Record{{Kind: trace.Load, Addr: slow}})
	r.run(t0)
	if !t0.Finished {
		t.Fatal("lone thread must finish after self-switch and re-issue")
	}
	if t0.Switches == 0 {
		t.Fatal("self-switch not counted")
	}
}

func TestHintedMissSquashedOthersContinue(t *testing.T) {
	// Thread 0 has a hinted miss plus a normal in-flight miss; the squash
	// must not corrupt state, and thread 0 must complete both on resume.
	cfg := DefaultConfig()
	r := newRig(1, cfg, 500*sim.Nanosecond)
	slow := mem.Addr(0x200000)
	fast := mem.Addr(0x300000)
	r.be.hintAddrs[slow] = true
	r.be.hintOnce = true
	t0 := thread(0, []trace.Record{
		{Kind: trace.Load, Addr: slow},
		{Kind: trace.Load, Addr: fast},
		{Kind: trace.Compute, N: 50},
	})
	t1 := thread(1, []trace.Record{{Kind: trace.Compute, N: 200000}})
	r.run(t0, t1)
	if !t0.Finished || !t1.Finished {
		t.Fatal("threads did not finish")
	}
}

func TestMultiThreadOvercommit(t *testing.T) {
	// 6 threads on 2 cores with slow memory: everything must finish, and
	// every thread must make progress.
	cfg := DefaultConfig()
	r := newRig(2, cfg, 2*sim.Microsecond)
	var threads []*osched.Thread
	for i := 0; i < 6; i++ {
		var recs []trace.Record
		for j := 0; j < 30; j++ {
			recs = append(recs, trace.Record{Kind: trace.Load, Addr: mem.Addr(0x100000 + (i*1000+j)*4096)})
			recs = append(recs, trace.Record{Kind: trace.Compute, N: 50})
		}
		threads = append(threads, thread(i, recs))
	}
	r.run(threads...)
	for _, th := range threads {
		if !th.Finished {
			t.Fatalf("thread %d did not finish", th.ID)
		}
	}
}

func TestHintsImproveThroughputWithManyThreads(t *testing.T) {
	// The headline mechanism: with long-latency hinted misses and more
	// threads than cores, context switching must beat stalling.
	mkThreads := func() []*osched.Thread {
		var ts []*osched.Thread
		for i := 0; i < 4; i++ {
			var recs []trace.Record
			for j := 0; j < 40; j++ {
				recs = append(recs, trace.Record{Kind: trace.Load, Addr: mem.Addr(0x100000 + (i*10000+j)*4096)})
				recs = append(recs, trace.Record{Kind: trace.Compute, N: 2000})
			}
			ts = append(ts, thread(i, recs))
		}
		return ts
	}
	lat := 30 * sim.Microsecond

	// Baseline: no hints — cores stall on every miss.
	rBase := newRig(1, DefaultConfig(), lat)
	rBase.run(mkThreads()...)
	baseTime := rBase.eng.Now()

	// SkyByte: every miss is hinted; data arrives in SSD DRAM by resume.
	rSky := newRig(1, DefaultConfig(), lat)
	rSky.be.hintOnce = true
	for i := 0; i < 4; i++ {
		for j := 0; j < 40; j++ {
			rSky.be.hintAddrs[mem.Addr(0x100000+(i*10000+j)*4096)] = true
		}
	}
	rSky.run(mkThreads()...)
	skyTime := rSky.eng.Now()

	if skyTime >= baseTime {
		t.Fatalf("context switching did not help: base=%v sky=%v", baseTime, skyTime)
	}
	if float64(baseTime)/float64(skyTime) < 1.5 {
		t.Fatalf("speedup %.2f too small for 30µs misses", float64(baseTime)/float64(skyTime))
	}
}

func TestFreeMSHROnSquashAblation(t *testing.T) {
	// With FreeMSHROnSquash disabled, squashed in-flight misses hold MSHR
	// slots; the run must still complete correctly.
	cfg := DefaultConfig()
	cfg.FreeMSHROnSquash = false
	cfg.MLP = 4
	r := newRig(1, cfg, 5*sim.Microsecond)
	slow := mem.Addr(0x200000)
	r.be.hintAddrs[slow] = true
	r.be.hintOnce = true
	t0 := thread(0, []trace.Record{
		{Kind: trace.Load, Addr: 0x300000},
		{Kind: trace.Load, Addr: slow},
		{Kind: trace.Load, Addr: 0x400000},
	})
	t1 := thread(1, []trace.Record{{Kind: trace.Compute, N: 100000}})
	r.run(t0, t1)
	if !t0.Finished || !t1.Finished {
		t.Fatal("ablation run did not finish")
	}
}

func TestVRuntimeAccrues(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(1, cfg, 100*sim.Nanosecond)
	th := thread(0, []trace.Record{{Kind: trace.Compute, N: 10000}})
	r.run(th)
	if th.VRuntime == 0 {
		t.Fatal("vruntime not accrued")
	}
}

func TestBoundednessAccountsAllTime(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(1, cfg, sim.Microsecond)
	var recs []trace.Record
	for j := 0; j < 50; j++ {
		recs = append(recs, trace.Record{Kind: trace.Load, Addr: mem.Addr(0x100000 + j*4096)})
		recs = append(recs, trace.Record{Kind: trace.Compute, N: 100})
	}
	th := thread(0, recs)
	r.run(th)
	c := r.cores[0]
	total := c.Stats.Bound.Total()
	if total != c.time {
		t.Fatalf("boundedness total %v != core time %v", total, c.time)
	}
	if c.Stats.Bound.MemFrac() < 0.5 {
		t.Fatalf("1µs misses every 100 instrs should be memory bound; frac=%v", c.Stats.Bound.MemFrac())
	}
}

func TestDependentLoadsSerialise(t *testing.T) {
	// Eight dependent loads cannot overlap: total time ~ 8x latency,
	// unlike the independent-load MLP test.
	cfg := DefaultConfig()
	lat := 1 * sim.Microsecond
	var recs []trace.Record
	for i := 0; i < 8; i++ {
		recs = append(recs, trace.Record{Kind: trace.LoadDep, Addr: mem.Addr(0x100000 + i*4096)})
	}
	r := newRig(1, cfg, lat)
	r.run(thread(0, recs))
	c := r.cores[0]
	if c.time < 7*lat {
		t.Fatalf("dependent chain finished in %v; loads overlapped", c.time)
	}
}

func TestDependentChainSwitchesAndReplays(t *testing.T) {
	// A hinted miss in the middle of a chain: the switch must rewind and
	// replay the chain suffix correctly.
	cfg := DefaultConfig()
	r := newRig(1, cfg, 500*sim.Nanosecond)
	slow := mem.Addr(0x200000)
	r.be.hintAddrs[slow] = true
	r.be.hintOnce = true
	t0 := thread(0, []trace.Record{
		{Kind: trace.LoadDep, Addr: 0x100000},
		{Kind: trace.LoadDep, Addr: slow},
		{Kind: trace.LoadDep, Addr: 0x300000},
	})
	t1 := thread(1, []trace.Record{{Kind: trace.Compute, N: 100000}})
	r.run(t0, t1)
	if !t0.Finished || !t1.Finished {
		t.Fatal("threads did not finish")
	}
	if t0.Switches == 0 {
		t.Fatal("chain miss did not switch")
	}
	// All three chain addresses must have reached the backend.
	seen := map[mem.Addr]int{}
	for _, a := range r.be.reads {
		seen[a]++
	}
	if seen[0x100000] == 0 || seen[slow] < 2 || seen[0x300000] == 0 {
		t.Fatalf("chain replay wrong: %v", seen)
	}
}
