// Package cpu implements the multi-core timing model: trace-driven cores
// with a ROB-window interval model (Sniper-style), MSHR-bounded memory-level
// parallelism, writeback credits for device write backpressure, and the
// SkyByte Long Delay Exception machinery of §III-A — squash, precise rewind
// to the faulting load, and a coordinated context switch through the OS
// scheduler.
//
// The model reproduces the phenomena the paper measures (memory
// boundedness, the impracticality of hiding µs-scale flash latency with
// ROB-scale lookahead, exception delivery at the retire stage) without
// simulating individual pipeline stages; see DESIGN.md §1.
package cpu

import (
	"skybyte/internal/cachesim"
	"skybyte/internal/mem"
	"skybyte/internal/osched"
	"skybyte/internal/sim"
	"skybyte/internal/stats"
	"skybyte/internal/trace"
)

// ReadReq is a demand cacheline read issued to the memory backend.
type ReadReq struct {
	Addr   mem.Addr
	CoreID int
	// Tenant is the issuing thread's tenant group (osched.Thread.Tenant),
	// 0 in a solo run; the backend uses it to attribute the request's
	// latency and class to a per-tenant accounting slice.
	Tenant int
	// Record is true when the access is past the thread's warmup and
	// should contribute to latency/AMAT statistics.
	Record bool
	// Squashed is set by the core when the issuing instruction was
	// squashed by a context switch; the backend may skip the response.
	Squashed bool
	// OnData fires when the data response (MemData) arrives at the core.
	OnData func()
	// OnHint fires when a SkyByte-Delay NDR arrives instead of data; no
	// data response will follow.
	OnHint func()
}

// Backend is the off-chip memory system as seen by a core: host DRAM, the
// CXL link, and the SSD controller behind it.
type Backend interface {
	// Read issues a demand read; exactly one of req.OnData / req.OnHint
	// will eventually fire (unless the request is squashed first).
	Read(req *ReadReq)
	// Write issues a cacheline writeback; accepted fires when the device
	// has absorbed it, returning the writeback credit. tenant attributes
	// the writeback to the issuing thread's tenant group (a writeback's
	// line may have been dirtied by an earlier thread on the core, so
	// the attribution is to whoever forced it out — the paying party).
	Write(a mem.Addr, coreID, tenant int, record bool, accepted func())
}

// Config parameterises a core (Table II values as defaults via
// DefaultConfig).
type Config struct {
	CyclePs     sim.Time // 250 ps = 4 GHz
	IssueIPC    float64  // sustained non-memory IPC
	ROB         int      // 256 entries
	MLP         int      // max outstanding LLC misses (L1 MSHRs)
	L2HitExtra  sim.Time // effective exposed latency of an L2 hit
	LLCHitExtra sim.Time // effective exposed latency of an LLC hit
	WBCredits   int      // outstanding writeback budget per core

	// FlushL1OnSwitch models switch-induced cache pollution.
	FlushL1OnSwitch bool
	// FreeMSHROnSquash releases MSHRs of squashed requests immediately
	// (the paper's default; §III-A). Disabling it is an ablation.
	FreeMSHROnSquash bool

	// BatchRecords bounds how many trace records one step event processes.
	BatchRecords int
}

// DefaultConfig returns Table II's core parameters.
func DefaultConfig() Config {
	return Config{
		CyclePs:          250 * sim.Picosecond,
		IssueIPC:         4,
		ROB:              256,
		MLP:              8,
		L2HitExtra:       3 * sim.Nanosecond,
		LLCHitExtra:      10 * sim.Nanosecond,
		WBCredits:        64,
		FreeMSHROnSquash: true,
		BatchRecords:     256,
	}
}

// Stats aggregates per-core measurements.
type Stats struct {
	Bound          stats.Boundedness
	ExecutedInstrs uint64 // includes re-executed instructions
	Loads          uint64
	Stores         uint64
	L1Hits         uint64
	L2Hits         uint64
	LLCHits        uint64
	LLCMisses      uint64 // demand misses (loads and stores)
	Switches       uint64 // context switches triggered on this core
	HintSwitches   uint64 // switches caused by SkyByte-Delay (vs thread exit)
	Writebacks     uint64
	FinishedAt     sim.Time
}

type coreState uint8

const (
	stRunning coreState = iota
	stWaitMem
	stWaitCredit
	stIdle
)

// missEntry is one outstanding LLC miss. Entries are pooled per core: the
// embedded request and its OnData/OnHint closures are built once, when the
// entry is first allocated, and reused for every later miss the entry
// carries — steady-state misses allocate nothing. An entry is recycled
// only at points where no backend callback can still be pending (retire,
// the squashed branch of its own callback, or a squash of an entry whose
// callback already fired); the backend's exactly-one-callback contract
// makes those points safe.
type missEntry struct {
	next       *missEntry // pool free-list link
	instrIdx   uint64
	addr       mem.Addr
	done       bool
	hinted     bool
	squashed   bool
	completion sim.Time
	req        ReadReq
}

// wbReq carries one writeback's arguments from issue time to its scheduled
// event; pooled like missEntry.
type wbReq struct {
	next   *wbReq
	core   *Core
	addr   mem.Addr
	tenant int
	record bool
}

// Typed event handlers (sim.RegisterHandler contract: init-time only).
var (
	// hCoreStep resumes a core's step loop (batch-budget yield, Start).
	hCoreStep sim.HandlerID
	// hIssueRead delivers a demand read to the backend at core-local time.
	hIssueRead sim.HandlerID
	// hIssueWB delivers a writeback. The wbReq recycles before the call:
	// Write copies its arguments, and the accepted callback may re-enter
	// the step loop and issue new writebacks that reuse the record.
	hIssueWB sim.HandlerID
)

func init() {
	hCoreStep = sim.RegisterHandler(func(_ uint64, p1, _ any) {
		p1.(*Core).step()
	})
	hIssueRead = sim.RegisterHandler(func(_ uint64, p1, p2 any) {
		p1.(*Core).backend.Read(p2.(*ReadReq))
	})
	hIssueWB = sim.RegisterHandler(func(_ uint64, p1, _ any) {
		w := p1.(*wbReq)
		c := w.core
		addr, tenant, record := w.addr, w.tenant, w.record
		w.next = c.wbFree
		c.wbFree = w
		c.backend.Write(addr, c.ID, tenant, record, c.wbAccept)
	})
}

// Core is one simulated CPU core.
type Core struct {
	ID  int
	eng *sim.Engine
	cfg Config

	l1, l2  *cachesim.Cache
	llc     *cachesim.Cache // shared
	backend Backend
	sched   *osched.Scheduler

	thread      *osched.Thread
	threadStart sim.Time

	time         sim.Time
	fetchIdx     uint64
	out          []*missEntry
	zombies      []*missEntry
	wbCredits    int
	pendingWB    []mem.Addr
	state        coreState
	pendingStall sim.Time

	// stash holds a dependent load that cannot issue until all
	// outstanding misses resolve (serialised pointer chase).
	stash      trace.Record
	stashIdx   uint64
	stashValid bool

	// Per-core pools and the shared writeback-accepted callback.
	missFree *missEntry
	wbFree   *wbReq
	wbAccept func()

	perInstr sim.Time
	Stats    Stats

	// OnThreadFinished, when set, is invoked as each thread retires its
	// final instruction (system-level completion tracking).
	OnThreadFinished func(t *osched.Thread, at sim.Time)

	// OnCtxSwitch, when set, is invoked at each coordinated context
	// switch with the core's local instant (telemetry timeline
	// recording); nil costs one pointer check on the switch path.
	OnCtxSwitch func(coreID int, at sim.Time)
}

// New builds a core. l1 and l2 are private; llc is shared among cores.
func New(eng *sim.Engine, id int, cfg Config, l1, l2, llc *cachesim.Cache, backend Backend, sched *osched.Scheduler) *Core {
	perInstr := sim.Time(float64(cfg.CyclePs) / cfg.IssueIPC)
	if perInstr < 1 {
		perInstr = 1
	}
	c := &Core{
		ID: id, eng: eng, cfg: cfg,
		l1: l1, l2: l2, llc: llc,
		backend: backend, sched: sched,
		wbCredits: cfg.WBCredits,
		perInstr:  perInstr,
	}
	c.wbAccept = func() {
		c.wbCredits++
		if c.state == stWaitCredit {
			c.state = stRunning
			c.advanceTo(c.eng.Now())
			c.step()
		}
	}
	return c
}

// getMiss pops a pooled miss entry, binding its request callbacks on first
// allocation so they survive every reuse.
func (c *Core) getMiss() *missEntry {
	e := c.missFree
	if e == nil {
		e = &missEntry{}
		e.req.CoreID = c.ID
		e.req.OnData = func() { c.onData(e) }
		e.req.OnHint = func() { c.onHint(e) }
		return e
	}
	c.missFree = e.next
	e.next = nil
	return e
}

func (c *Core) putMiss(e *missEntry) {
	e.done, e.hinted, e.squashed = false, false, false
	e.req.Squashed = false
	e.next = c.missFree
	c.missFree = e
}

func (c *Core) getWB(a mem.Addr, tenant int, record bool) *wbReq {
	w := c.wbFree
	if w == nil {
		w = &wbReq{core: c}
	} else {
		c.wbFree = w.next
		w.next = nil
	}
	w.addr, w.tenant, w.record = a, tenant, record
	return w
}

// Now returns the core-local clock (>= engine time).
func (c *Core) Now() sim.Time { return c.time }

// Start begins execution; the core pulls its first thread from the
// scheduler (free initial dispatch).
func (c *Core) Start() {
	if c.acquireThread() {
		c.eng.AtH(c.time, hCoreStep, 0, c, nil)
	}
}

// --- time accounting ---
//
// Every charge is double-booked: into the per-core totals (the system
// Boundedness) and into the running thread's own accumulator (the
// per-tenant split). Charges only ever occur while a thread occupies
// the core — the one exception, the switch paid when a thread retires,
// is attributed to the departing thread in finishThread — so the
// thread-level accounts sum exactly to the core-level ones.

func (c *Core) chargeCompute(d sim.Time) {
	c.time += d
	c.Stats.Bound.Compute += d
	if c.thread != nil {
		c.thread.Bound.Compute += d
	}
}

func (c *Core) chargeMem(d sim.Time) {
	c.time += d
	c.Stats.Bound.MemStall += d
	if c.thread != nil {
		c.thread.Bound.MemStall += d
	}
}

func (c *Core) chargeCtx(d sim.Time) {
	c.time += d
	c.Stats.Bound.CtxSwitch += d
	if c.thread != nil {
		c.thread.Bound.CtxSwitch += d
	}
}

// advanceTo moves local time forward to t, booking the gap as memory stall.
func (c *Core) advanceTo(t sim.Time) {
	if t > c.time {
		c.chargeMem(t - c.time)
	}
}

// syncIdle moves local time to now without boundedness accounting (used
// when waking from idle — no thread was running).
func (c *Core) syncIdle() {
	if n := c.eng.Now(); n > c.time {
		c.time = n
	}
}

// --- thread lifecycle ---

func (c *Core) acquireThread() bool {
	t := c.sched.Pick()
	if t == nil {
		c.state = stIdle
		c.sched.WaitReady(c.onReady)
		return false
	}
	c.thread = t
	c.threadStart = c.time
	c.fetchIdx = t.Replay.NextIdx()
	c.state = stRunning
	return true
}

func (c *Core) onReady() {
	if c.state != stIdle {
		return
	}
	c.syncIdle()
	if c.acquireThread() {
		c.step()
	}
}

func (c *Core) accrueRuntime() {
	if c.thread != nil {
		c.thread.VRuntime += c.time - c.threadStart
		c.threadStart = c.time
	}
}

// parkThread takes the current open-loop thread off the core until its
// gate's next arrival instant. Like finishThread, swapping a successor
// in costs a context switch attributed to the departing thread.
func (c *Core) parkThread() {
	t := c.thread
	c.accrueRuntime()
	c.thread = nil
	c.sched.ScheduleRelease(t, t.Gate.NextArrival)
	if c.sched.Runnable() > 0 {
		c.chargeCtx(c.sched.SwitchCost)
		t.Bound.CtxSwitch += c.sched.SwitchCost
		t.Switches++
		c.Stats.Switches++
	}
}

func (c *Core) finishThread() {
	t := c.thread
	c.accrueRuntime()
	// A truncated final request (the instruction budget ran out
	// mid-request) still completes: its work is done.
	if t.Gate != nil {
		t.Gate.Complete(c.time)
	}
	t.Finished = true
	c.Stats.FinishedAt = c.time
	if c.OnThreadFinished != nil {
		c.OnThreadFinished(t, c.time)
	}
	c.thread = nil
	// Swapping in the next thread costs a context switch, attributed to
	// the thread whose exit forced it (t no longer occupies the core, so
	// chargeCtx's thread-attribution must be done by hand).
	if c.sched.Runnable() > 0 {
		c.chargeCtx(c.sched.SwitchCost)
		t.Bound.CtxSwitch += c.sched.SwitchCost
		t.Switches++
		c.Stats.Switches++
	}
}

// --- the main loop ---

// InjectStall charges the core an asynchronous OS overhead (e.g. the TLB
// shootdown after a page migration) the next time it makes progress. The
// time is booked as context-switch/OS overhead.
func (c *Core) InjectStall(d sim.Time) { c.pendingStall += d }

func (c *Core) step() {
	budget := c.cfg.BatchRecords
	for {
		if c.pendingStall > 0 {
			c.chargeCtx(c.pendingStall)
			c.pendingStall = 0
		}
		// Retire completed misses at the ROB head.
		for len(c.out) > 0 && c.out[0].done {
			c.advanceTo(c.out[0].completion)
			c.popOldest()
		}
		// Writeback backpressure: drain queued writebacks as credits
		// return; stall while any remain unsendable.
		if len(c.pendingWB) > 0 {
			c.drainPendingWB()
			if len(c.pendingWB) > 0 {
				c.state = stWaitCredit
				return
			}
		}
		// ROB / MSHR / dependence gating on the oldest incomplete miss.
		if len(c.out) > 0 {
			oldest := c.out[0]
			gated := c.stashValid ||
				c.fetchIdx-oldest.instrIdx >= uint64(c.cfg.ROB) ||
				len(c.out)+len(c.zombies) >= c.cfg.MLP ||
				c.thread == nil || c.thread.Replay.Done() ||
				// An open-loop request boundary drains the pipeline
				// before the completion/admission decision below, so a
				// request's misses all resolve before it completes.
				(c.thread.Gate != nil && c.thread.Gate.Boundary(c.thread.Replay.CursorIdx()))
			if gated {
				if oldest.hinted {
					// SkyByte Long Delay Exception at the retire stage.
					c.ctxSwitch(oldest)
					if c.thread == nil {
						return // idle
					}
					continue
				}
				c.state = stWaitMem
				return
			}
		}
		// A stashed dependent load issues once the pipeline drained.
		if c.stashValid {
			c.stashValid = false
			c.Stats.Loads++
			c.chargeCompute(c.perInstr)
			c.load(c.stash.Addr.Line(), c.stashIdx)
			continue
		}
		if c.thread == nil {
			if !c.acquireThread() {
				return
			}
		}
		// Open-loop request boundary: every admitted instruction has
		// retired and the pipeline is drained (the gating term above), so
		// the in-service request completes here. The next request admits
		// only once its arrival instant has passed — otherwise the thread
		// parks off-core until the arrival releases it.
		if g := c.thread.Gate; g != nil && g.Boundary(c.thread.Replay.CursorIdx()) && !c.thread.Replay.Done() {
			g.Complete(c.time)
			if g.NextArrival > c.time {
				c.parkThread()
				if c.thread == nil && !c.acquireThread() {
					return
				}
				continue
			}
			g.Admit(c.time, c.thread.PastWarmup())
		}
		if budget <= 0 {
			c.eng.AtH(c.time, hCoreStep, 0, c, nil)
			return
		}
		budget--
		rec, idx, ok := c.thread.Replay.Next()
		if !ok {
			if len(c.out) > 0 {
				continue // drain through the gating path above
			}
			c.finishThread()
			if c.thread == nil && !c.acquireThread() {
				return
			}
			continue
		}
		c.exec(rec, idx)
	}
}

func (c *Core) exec(rec trace.Record, idx uint64) {
	n := rec.Instructions()
	c.fetchIdx = idx + n
	c.Stats.ExecutedInstrs += n
	c.thread.Advance(c.fetchIdx)
	switch rec.Kind {
	case trace.Compute:
		c.chargeCompute(sim.Time(n) * c.perInstr)
	case trace.Load:
		c.chargeCompute(c.perInstr)
		c.Stats.Loads++
		c.load(rec.Addr.Line(), idx)
	case trace.LoadDep:
		if len(c.out) > 0 {
			// Cannot issue until the chain resolves; park it and gate.
			c.stash = rec
			c.stashIdx = idx
			c.stashValid = true
			return
		}
		c.chargeCompute(c.perInstr)
		c.Stats.Loads++
		c.load(rec.Addr.Line(), idx)
	case trace.Store:
		c.chargeCompute(c.perInstr)
		c.Stats.Stores++
		c.store(rec.Addr.Line())
	}
}

// load walks the hierarchy; an LLC miss becomes an outstanding entry
// gating retirement.
func (c *Core) load(a mem.Addr, idx uint64) {
	if c.l1.Access(a, false) {
		c.Stats.L1Hits++
		return
	}
	if c.l2.Access(a, false) {
		c.Stats.L2Hits++
		c.chargeMem(c.cfg.L2HitExtra)
		c.installL1(a, false)
		return
	}
	if c.llc.Access(a, false) {
		c.Stats.LLCHits++
		c.chargeMem(c.cfg.LLCHitExtra)
		c.installL2(a, false)
		c.installL1(a, false)
		return
	}
	c.Stats.LLCMisses++
	c.thread.LLCMisses++
	// MSHR merge: a younger load to an in-flight line rides along with the
	// existing entry and does not gate retirement separately.
	for _, e := range c.out {
		if e.addr == a {
			return
		}
	}
	e := c.getMiss()
	e.instrIdx = idx
	e.addr = a
	e.completion = 0
	e.req.Addr = a
	e.req.Tenant = c.thread.Tenant
	e.req.Record = c.thread.PastWarmup()
	c.out = append(c.out, e)
	c.eng.AtH(c.time, hIssueRead, 0, c, &e.req)
}

// store dirties the line where it hits; a full miss allocates in L1
// without fetching (write-validate — see package comment).
func (c *Core) store(a mem.Addr) {
	if c.l1.Access(a, true) {
		c.Stats.L1Hits++
		return
	}
	if c.l2.Access(a, true) {
		c.Stats.L2Hits++
		return
	}
	if c.llc.Access(a, true) {
		c.Stats.LLCHits++
		return
	}
	c.Stats.LLCMisses++
	c.thread.LLCMisses++
	c.installL1(a, true)
}

// --- cache fills with victim cascade ---

func (c *Core) installL1(a mem.Addr, dirty bool) {
	v := c.l1.Fill(a, dirty)
	if v.Valid && v.Dirty {
		c.installL2(v.Addr, true)
	}
}

func (c *Core) installL2(a mem.Addr, dirty bool) {
	if c.l2.Update(a, dirty) {
		return
	}
	v := c.l2.Fill(a, dirty)
	if v.Valid && v.Dirty {
		c.installLLC(v.Addr, true)
	}
}

func (c *Core) installLLC(a mem.Addr, dirty bool) {
	if c.llc.Update(a, dirty) {
		return
	}
	v := c.llc.Fill(a, dirty)
	if v.Valid && v.Dirty {
		c.issueWriteback(v.Addr)
	}
}

// --- writebacks with credits ---

func (c *Core) issueWriteback(a mem.Addr) {
	if c.wbCredits == 0 {
		c.pendingWB = append(c.pendingWB, a)
		return
	}
	c.sendWriteback(a)
}

func (c *Core) sendWriteback(a mem.Addr) {
	c.wbCredits--
	c.Stats.Writebacks++
	record := c.thread != nil && c.thread.PastWarmup()
	tenant := 0
	if c.thread != nil {
		tenant = c.thread.Tenant
	}
	issueAt := c.time
	if n := c.eng.Now(); n > issueAt {
		issueAt = n
	}
	c.eng.AtH(issueAt, hIssueWB, 0, c.getWB(a, tenant, record), nil)
}

func (c *Core) drainPendingWB() {
	for len(c.pendingWB) > 0 && c.wbCredits > 0 {
		a := c.pendingWB[0]
		copy(c.pendingWB, c.pendingWB[1:])
		c.pendingWB = c.pendingWB[:len(c.pendingWB)-1]
		c.sendWriteback(a)
	}
}

// --- miss completion and hints ---

func (c *Core) popOldest() {
	e := c.out[0]
	copy(c.out, c.out[1:])
	c.out = c.out[:len(c.out)-1]
	// Retired means done: the data callback already fired, so nothing can
	// touch the entry again.
	c.putMiss(e)
}

func (c *Core) onData(e *missEntry) {
	e.done = true
	e.completion = c.eng.Now()
	if e.squashed {
		c.removeZombie(e)
		c.putMiss(e)
		return
	}
	// Fill the hierarchy at data arrival (tags only).
	c.installLLC(e.addr, false)
	c.installL2(e.addr, false)
	c.installL1(e.addr, false)
	if c.state == stWaitMem && len(c.out) > 0 && c.out[0] == e {
		c.state = stRunning
		c.advanceTo(c.eng.Now())
		c.step()
	}
}

func (c *Core) onHint(e *missEntry) {
	if e.squashed {
		// This was the entry's only callback, so it can recycle — unless the
		// FreeMSHROnSquash ablation parked it in zombies, where it keeps
		// holding its MSHR slot exactly as before.
		if !c.inZombies(e) {
			c.putMiss(e)
		}
		return
	}
	e.hinted = true
	if c.state == stWaitMem && len(c.out) > 0 && c.out[0] == e {
		c.state = stRunning
		c.advanceTo(c.eng.Now())
		c.step()
	}
}

func (c *Core) inZombies(e *missEntry) bool {
	for _, z := range c.zombies {
		if z == e {
			return true
		}
	}
	return false
}

func (c *Core) removeZombie(e *missEntry) {
	for i, z := range c.zombies {
		if z == e {
			copy(c.zombies[i:], c.zombies[i+1:])
			c.zombies = c.zombies[:len(c.zombies)-1]
			return
		}
	}
}

// --- the coordinated context switch (§III-A C3–C4) ---

func (c *Core) ctxSwitch(oldest *missEntry) {
	if c.OnCtxSwitch != nil {
		c.OnCtxSwitch(c.ID, c.time)
	}
	c.Stats.Switches++
	c.Stats.HintSwitches++
	c.thread.Switches++
	c.thread.HintSwitches++
	c.accrueRuntime()

	// The rewind target must be read before the squash loop below recycles
	// oldest (it is hinted, so its callback has fired).
	rewindIdx := oldest.instrIdx

	// Squash all in-flight requests. With FreeMSHROnSquash (default) their
	// MSHRs free immediately; otherwise un-hinted requests hold MSHR slots
	// until their data arrives (the ablation of §III-A). Entries whose only
	// callback has already fired (done or hinted) recycle here; the rest
	// recycle when their pending callback arrives and sees the squash.
	for _, e := range c.out {
		e.squashed = true
		e.req.Squashed = true
		if e.done || e.hinted {
			c.putMiss(e)
		} else if !c.cfg.FreeMSHROnSquash {
			c.zombies = append(c.zombies, e)
		}
	}
	c.out = c.out[:0]

	// Precise rewind: resume from the faulting load so it re-issues on
	// switch-in ("when the thread is switched back, it will resume from
	// this instruction and re-issue this memory access to the CXL-SSD").
	// A stashed dependent load is younger than the faulting load, so the
	// rewind re-delivers it too.
	c.stashValid = false
	c.thread.Replay.RewindTo(rewindIdx)
	c.fetchIdx = rewindIdx

	if c.cfg.FlushL1OnSwitch {
		c.l1.FlushAll(func(v cachesim.Victim) {
			if v.Dirty {
				c.installL2(v.Addr, true)
			}
		})
	}

	c.chargeCtx(c.sched.SwitchCost)
	c.thread = c.sched.Switch(c.thread)
	c.threadStart = c.time
	if c.thread != nil {
		c.fetchIdx = c.thread.Replay.NextIdx()
	}
}
