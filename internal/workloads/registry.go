package workloads

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"skybyte/internal/trace"
)

// builtinGenVersion names the behaviour of the hand-coded Table I
// generators. Bump it when any generator's emitted stream changes, so
// persistent result stores (which fold RegistryFingerprint into the
// campaign identity) stop serving results produced by the old streams.
const builtinGenVersion = 1

// registry holds every workload beyond the built-ins, in registration
// order. Built-ins (Table1 + Extras) are code; registered specs come
// from Register/RegisterFile at process start-up. The mutex makes
// registration safe, but the determinism contract (DESIGN.md §3) asks
// callers to finish registering before building runners or harnesses —
// RegistryFingerprint is a snapshot, not a subscription.
var registry = struct {
	sync.Mutex
	specs []Spec
	index map[string]int
}{index: map[string]int{}}

// builtinSpecs caches the code-defined workloads — they are immutable,
// and resolution paths (ByName per executed simulation, Names in every
// listing, RegistryFingerprint) would otherwise rebuild and re-validate
// the extras' definitions on every call.
var builtinSpecs = sync.OnceValue(func() []Spec {
	return append(Table1(), Extras()...)
})

// builtins returns the code-defined workloads: the Table I seven plus
// the extra scenarios composed from the declarative primitives. The
// returned slice is shared — callers must not mutate it.
func builtins() []Spec {
	return builtinSpecs()
}

// builtinByName resolves a code-defined workload.
func builtinByName(name string) (Spec, bool) {
	for _, s := range builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Register adds a workload to the registry, making it resolvable by
// name everywhere a built-in is — ByName, campaign Options.Workloads,
// the CLIs' -workload flags. Built-in names are reserved; registering
// an already-registered name replaces the previous definition (the
// editing loop for workload files), so register before building the
// harnesses and runners that will resolve it. The spec must carry a
// generator (a definition or a trace) and a valid name.
func Register(s Spec) error {
	if err := validateName(s.Name); err != nil {
		return err
	}
	if _, ok := builtinByName(s.Name); ok {
		return fmt.Errorf("workloads: %q is a built-in workload and cannot be replaced", s.Name)
	}
	if s.Def == nil && s.Trace == nil {
		return fmt.Errorf("workloads: %q has no generator (expected a definition or a trace)", s.Name)
	}
	if s.FootprintPages == 0 {
		return fmt.Errorf("workloads: %q has a zero footprint", s.Name)
	}
	if s.Def != nil {
		// Validate and normalize at the chokepoint: stream compilation
		// assumes a vetted definition with defaults filled (an invalid
		// one would fail mid-campaign — a zero region panics, a
		// zero-Lines op emits nothing and spins), and specs built via
		// Def.Spec() have already paid this once.
		if err := s.Def.Validate(); err != nil {
			return err
		}
		n := s.Def.normalized()
		s.Def = &n
	}
	registry.Lock()
	defer registry.Unlock()
	if i, ok := registry.index[s.Name]; ok {
		old := registry.specs[i]
		registry.specs[i] = s
		// A displaced trace workload may hold a streaming reader with
		// an open file handle; release it so the file-editing loop
		// (re-register after every edit) does not leak a descriptor
		// per iteration. Sound under the registration contract: specs
		// are registered before runners and harnesses resolve them, so
		// nothing replays the displaced spec's streams afterwards.
		if old.Trace != nil && (s.Trace == nil || old.Trace.Data != s.Trace.Data) {
			if c, ok := old.Trace.Data.(io.Closer); ok {
				c.Close()
			}
		}
		return nil
	}
	registry.index[s.Name] = len(registry.specs)
	registry.specs = append(registry.specs, s)
	return nil
}

// Registered returns the registered (non-built-in) workloads in
// registration order.
func Registered() []Spec {
	registry.Lock()
	defer registry.Unlock()
	return append([]Spec(nil), registry.specs...)
}

// resetRegistry clears registrations (tests only).
func resetRegistry() {
	registry.Lock()
	defer registry.Unlock()
	registry.specs = nil
	registry.index = map[string]int{}
}

// Names returns every resolvable workload name: Table I in paper
// order, then the extra built-in scenarios, then registered workloads
// in registration order. This is the listing unknown-name errors
// print, so file- and registry-loaded workloads show up next to the
// built-in seven.
func Names() []string {
	var out []string
	for _, s := range builtins() {
		out = append(out, s.Name)
	}
	for _, s := range Registered() {
		out = append(out, s.Name)
	}
	return out
}

// ByName resolves any known workload — built-in, extra, or registered.
func ByName(name string) (Spec, error) {
	if s, ok := builtinByName(name); ok {
		return s, nil
	}
	registry.Lock()
	i, ok := registry.index[name]
	var s Spec
	if ok {
		s = registry.specs[i]
	}
	registry.Unlock()
	if ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("workloads: unknown workload %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// SourceID returns the stable identity of the spec's generator — the
// input that, together with (thread, seed), fully determines the
// stream:
//
//   - hand-coded built-ins: the generator version plus the Table I
//     parameters the stream derives from;
//   - declarative workloads: the definition's content fingerprint
//     (format version + canonical JSON digest);
//   - trace-backed workloads: the trace codec version plus the file's
//     content digest.
//
// RegistryFingerprint folds the SourceIDs of every known workload into
// one digest; campaigns put that digest in Config.WorkloadDigest, so a
// persistent result store can never serve a result produced under a
// different workload definition, an edited file, a re-recorded trace,
// or an older codec.
func (s Spec) SourceID() string {
	switch {
	case s.native != nil:
		return fmt.Sprintf("builtin:v%d:%s|fp=%d|wr=%g|mpki=%g", builtinGenVersion, s.Name, s.FootprintPages, s.WriteRatio, s.PaperMPKI)
	case s.Def != nil:
		return "def:" + s.Def.Fingerprint()
	case s.Trace != nil:
		return "trace:" + s.Trace.Digest
	}
	return "none:" + s.Name
}

// RegistryFingerprint digests the full resolvable workload set — every
// name mapped to its SourceID, sorted — plus the trace codec version.
// Identical registrations on different machines produce identical
// fingerprints; any changed definition changes it.
func RegistryFingerprint() string {
	var lines []string
	for _, s := range builtins() {
		lines = append(lines, s.Name+"="+s.SourceID())
	}
	for _, s := range Registered() {
		lines = append(lines, s.Name+"="+s.SourceID())
	}
	sort.Strings(lines)
	sum := sha256.Sum256([]byte(fmt.Sprintf("skybyte-workloads|trc%d|%s", trace.CodecVersion, strings.Join(lines, "\n"))))
	return hex.EncodeToString(sum[:])
}
