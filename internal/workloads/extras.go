package workloads

// Extras returns the extra built-in scenarios beyond Table I. Each is
// composed entirely from the declarative primitives of def.go — they
// are the in-tree proof that new scenarios are data, not code (the
// same definitions, written as JSON, load byte-for-byte equivalently
// via FromFile). The optional figext experiments table compares them
// across design points; WORKLOADS.md documents each.
func Extras() []Spec {
	return []Spec{scanHeavy().MustSpec(), logAppend().MustSpec(), graph500().MustSpec()}
}

// ExtraNames lists the extra scenarios in catalogue order.
func ExtraNames() []string {
	specs := Extras()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// scanHeavy models an analytics column scan: long sequential reads
// over a large fact table (multi-line runs — the spatial pattern the
// Base-CSSD prefetcher and the page-granular SSD cache love), zipfian
// probes into a small dimension table, and rare aggregation-buffer
// writes. Nearly read-only, high spatial locality, bandwidth-bound.
func scanHeavy() Def {
	return Def{
		Format:         DefFormatVersion,
		Name:           "scan-heavy",
		Suite:          "extra",
		FootprintPages: 40 * 1024, // 160 MB at 1/64 scale
		WriteRatio:     0.03,
		Regions: []RegionDef{
			{Name: "fact", Start: 0, Size: 0.88},
			{Name: "dim", Start: 0.88, Size: 0.10},
			{Name: "agg", Start: 0.98, Size: 0.02},
		},
		Phases: []PhaseDef{{
			Name: "scan-chunk",
			Ops: []OpDef{
				{Op: "load", Region: "fact", Kernel: KernelSequential, Lines: 4, Count: 2},
				{Op: "compute", Min: 24, Max: 48},
				{Op: "load", Region: "dim", Kernel: KernelZipf, Theta: 0.8, Prob: F(0.5)},
				{Op: "compute", Min: 8, Max: 16},
				{Op: "store", Region: "agg", Kernel: KernelZipf, Theta: 0.6, Prob: F(0.3)},
			},
		}},
	}
}

// logAppend models a bursty log-structured writer: bursts of
// sequential appends, a zipfian index lookup before each burst, and a
// quiet compute phase between bursts. Write-dominated with dense
// append locality — deliberately the write log's adversarial case:
// §III-B's cacheline-granular log wins on sparse writes (Fig. 6),
// while dense appends dirty whole pages and favour the page-granular
// RMW path, so this scenario probes the regime where Base-CSSD's
// cache is already sufficient (figext shows the log costing, not
// saving, here).
func logAppend() Def {
	return Def{
		Format:         DefFormatVersion,
		Name:           "log-append",
		Suite:          "extra",
		FootprintPages: 36 * 1024, // 144 MB at 1/64 scale
		WriteRatio:     0.55,
		Regions: []RegionDef{
			{Name: "log", Start: 0, Size: 0.80},
			{Name: "index", Start: 0.80, Size: 0.20},
		},
		Phases: []PhaseDef{
			{
				Name:   "append-burst",
				Weight: F(3),
				Ops: []OpDef{
					{Op: "load", Region: "index", Kernel: KernelZipf, Theta: 0.7},
					{Op: "load", Region: "log", Kernel: KernelSequential},
					{Op: "compute", Min: 10, Max: 20},
					{Op: "store", Region: "log", Kernel: KernelSequential, Count: 3},
					{Op: "store", Region: "index", Kernel: KernelZipf, Theta: 0.7, Prob: F(0.4)},
				},
			},
			{
				Name:   "quiescent",
				Weight: F(1),
				Ops: []OpDef{
					{Op: "compute", Min: 80, Max: 160},
					{Op: "load", Region: "index", Kernel: KernelUniform},
				},
			},
		},
	}
}

// graph500 models a Graph500-style BFS kernel: a sequential frontier
// scan, pointer-chasing dependent probes of random neighbours (the
// low-MLP access shape that motivates the coordinated context switch),
// and sparse visited-bitmap updates. Latency-bound with near-zero
// spatial locality on the chase.
func graph500() Def {
	return Def{
		Format:         DefFormatVersion,
		Name:           "graph500",
		Suite:          "extra",
		FootprintPages: 44 * 1024, // 176 MB at 1/64 scale
		WriteRatio:     0.12,
		Regions: []RegionDef{
			{Name: "edges", Start: 0, Size: 0.62},
			{Name: "vertices", Start: 0.62, Size: 0.30},
			{Name: "visited", Start: 0.92, Size: 0.08},
		},
		Phases: []PhaseDef{{
			Name: "visit",
			Ops: []OpDef{
				{Op: "load", Region: "edges", Kernel: KernelSequential, Lines: 2},
				{Op: "compute", Min: 4, Max: 8},
				{Op: "load", Region: "vertices", Kernel: KernelZipf, Theta: 0.65, Dep: true, Count: 2},
				{Op: "compute", Min: 3, Max: 6},
				{Op: "load", Region: "vertices", Kernel: KernelUniform, Dep: true, Prob: F(0.6)},
				{Op: "store", Region: "visited", Kernel: KernelUniform, Prob: F(0.65)},
			},
		}},
	}
}
