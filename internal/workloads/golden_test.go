package workloads

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"skybyte/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current generators")

// goldenRecords formats the first n records of one stream compactly.
func goldenRecords(s Spec, thread int, seed uint64, n int) []string {
	st := s.Stream(thread, seed)
	out := make([]string, 0, n)
	for len(out) < n {
		r, ok := st.Next()
		if !ok {
			break
		}
		if r.Kind == trace.Compute {
			out = append(out, fmt.Sprintf("compute %d", r.N))
		} else {
			out = append(out, fmt.Sprintf("%s %#x", r.Kind, uint64(r.Addr)))
		}
	}
	return out
}

// TestGoldenStreams pins the exact head of every built-in workload's
// stream for two (thread, seed) pairs. Any change to a generator — a
// reordered emit, a new RNG draw, a retuned constant — trips this test
// and forces a deliberate golden update plus a builtinGenVersion bump,
// because persistent result stores key on the streams staying
// bit-identical (DESIGN.md §2.1, §3).
func TestGoldenStreams(t *testing.T) {
	const n = 32
	cells := []struct {
		thread int
		seed   uint64
	}{{0, 1}, {3, 7}}
	got := map[string][]string{}
	for _, s := range builtins() {
		for _, c := range cells {
			key := fmt.Sprintf("%s/t%d/s%d", s.Name, c.thread, c.seed)
			got[key] = goldenRecords(s, c.thread, c.seed, n)
		}
	}
	path := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d streams) — bump builtinGenVersion if a stream changed", path, len(got))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	var want map[string][]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d streams, generators produce %d (run -update-golden after a deliberate change)", len(want), len(got))
	}
	for key, wrecs := range want {
		grecs, ok := got[key]
		if !ok {
			t.Errorf("%s: in golden file but no longer generated", key)
			continue
		}
		for i := range wrecs {
			if i >= len(grecs) || grecs[i] != wrecs[i] {
				g := "<missing>"
				if i < len(grecs) {
					g = grecs[i]
				}
				t.Errorf("%s: record %d = %q, golden %q (a stream changed; if deliberate, bump builtinGenVersion and -update-golden)", key, i, g, wrecs[i])
				break
			}
		}
	}
}
