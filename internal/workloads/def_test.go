package workloads

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

// testDef is a small valid definition exercising every kernel.
func testDef() Def {
	return Def{
		Format:         DefFormatVersion,
		Name:           "t-mix",
		FootprintPages: 4096,
		WriteRatio:     0.2,
		Regions: []RegionDef{
			{Name: "a", Start: 0, Size: 0.5},
			{Name: "b", Start: 0.5, Size: 0.5},
		},
		Phases: []PhaseDef{
			{Weight: F(2), Ops: []OpDef{
				{Op: "load", Region: "a", Kernel: KernelSequential, Lines: 2},
				{Op: "load", Region: "a", Kernel: KernelStride, StrideLines: 16},
				{Op: "load", Region: "b", Kernel: KernelZipf, Theta: 0.7, Dep: true},
				{Op: "compute", Min: 10, Max: 20},
				{Op: "store", Region: "b", Kernel: KernelUniform, Prob: F(0.5)},
			}},
			{Weight: F(1), Ops: []OpDef{
				{Op: "compute", Min: 50},
				{Op: "load", Region: "b", Kernel: KernelUniform, Count: 2},
			}},
		},
	}
}

func TestDefStreamDeterminism(t *testing.T) {
	s := testDef().MustSpec()
	for _, thread := range []int{0, 3} {
		a := sample(t, s, thread, 4000)
		b := sample(t, s, thread, 4000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("thread %d: record %d differs between identical streams", thread, i)
			}
		}
	}
	// Distinct threads and distinct seeds must diverge.
	a := sample(t, s, 0, 2000)
	b := sample(t, s, 1, 2000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("threads 0 and 1 produced identical streams")
	}
}

func TestDefStreamStaysInArena(t *testing.T) {
	s := testDef().MustSpec()
	end := mem.CXLBase + mem.Addr(s.FootprintBytes())
	for _, r := range sample(t, s, 2, 20000) {
		if r.Kind == trace.Compute {
			continue
		}
		if r.Addr < mem.CXLBase || r.Addr >= end {
			t.Fatalf("address %#x outside arena [%#x,%#x)", r.Addr, mem.CXLBase, end)
		}
	}
}

func TestDefValidation(t *testing.T) {
	bad := []struct {
		name   string
		mutate func(*Def)
		want   string
	}{
		{"format", func(d *Def) { d.Format = 99 }, "format"},
		{"no name", func(d *Def) { d.Name = "" }, "name"},
		{"bad name", func(d *Def) { d.Name = "a b" }, "contains"},
		{"no footprint", func(d *Def) { d.FootprintPages = 0 }, "footprint"},
		{"no regions", func(d *Def) { d.Regions = nil }, "region"},
		{"dup region", func(d *Def) { d.Regions = append(d.Regions, d.Regions[0]) }, "duplicate"},
		{"region overflow", func(d *Def) { d.Regions[1].Size = 0.9 }, "outside the footprint"},
		{"no phases", func(d *Def) { d.Phases = nil }, "phase"},
		{"empty phase", func(d *Def) { d.Phases[0].Ops = nil }, "no ops"},
		{"unknown op", func(d *Def) { d.Phases[0].Ops[0].Op = "jump" }, "unknown op"},
		{"unknown region ref", func(d *Def) { d.Phases[0].Ops[0].Region = "zzz" }, "unknown region"},
		{"unknown kernel", func(d *Def) { d.Phases[0].Ops[0].Kernel = "lfsr" }, "unknown kernel"},
		{"stride no stride", func(d *Def) { d.Phases[0].Ops[1].StrideLines = 0 }, "stride_lines"},
		{"zipf no theta", func(d *Def) { d.Phases[0].Ops[2].Theta = 0 }, "theta"},
		{"dep store", func(d *Def) { d.Phases[0].Ops[4].Dep = true }, "loads only"},
		{"compute no min", func(d *Def) { d.Phases[1].Ops[0].Min = 0 }, "compute"},
		{"compute zero min with max", func(d *Def) { d.Phases[0].Ops[3].Min = 0 }, "min >= 1"},
		{"bad prob", func(d *Def) { d.Phases[0].Ops[4].Prob = F(1.5) }, "prob"},
	}
	for _, tc := range bad {
		d := testDef()
		tc.mutate(&d)
		err := d.Validate()
		if err == nil {
			t.Errorf("%s: invalid definition accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := testDef().Validate(); err != nil {
		t.Fatalf("valid definition rejected: %v", err)
	}
}

func TestDefFingerprintCanonical(t *testing.T) {
	a := testDef()
	// An equivalent definition with defaults written out explicitly
	// must fingerprint identically...
	b := testDef()
	b.Suite = "custom"
	b.Phases[0].Ops[0].Count = 1
	b.Phases[0].Ops[0].Prob = F(1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equivalent definitions fingerprint differently")
	}
	// ...and any semantic change must change it.
	c := testDef()
	c.Phases[0].Ops[2].Theta = 0.71
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("changed definition kept its fingerprint")
	}
}

func TestExtrasAreValidAndShaped(t *testing.T) {
	extras := Extras()
	if len(extras) < 3 {
		t.Fatalf("want >=3 extra scenarios, got %d", len(extras))
	}
	for _, s := range extras {
		if s.Def == nil {
			t.Fatalf("%s: extra scenario not built from the declarative primitives", s.Name)
		}
		if err := s.Def.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		var loads, deps, stores int
		for _, r := range sample(t, s, 0, 30000) {
			switch r.Kind {
			case trace.Load:
				loads++
			case trace.LoadDep:
				deps++
			case trace.Store:
				stores++
			}
		}
		wr := float64(stores) / float64(loads+deps+stores)
		if diff := wr - s.WriteRatio; diff > 0.12 || diff < -0.12 {
			t.Errorf("%s: measured write ratio %.3f far from declared %.2f", s.Name, wr, s.WriteRatio)
		}
	}
	// The shapes that define each scenario.
	byName := map[string]Spec{}
	for _, s := range extras {
		byName[s.Name] = s
	}
	count := func(name string, k trace.Kind) int {
		n := 0
		for _, r := range sample(t, byName[name], 0, 20000) {
			if r.Kind == k {
				n++
			}
		}
		return n
	}
	if count("graph500", trace.LoadDep) == 0 {
		t.Error("graph500: no pointer chasing")
	}
	if count("scan-heavy", trace.Store) > count("scan-heavy", trace.Load)/5 {
		t.Error("scan-heavy: not read-dominated")
	}
	if count("log-append", trace.Store) < count("log-append", trace.Load) {
		t.Error("log-append: not write-dominated")
	}
}

func TestRegistryRegisterAndResolve(t *testing.T) {
	defer resetRegistry()
	resetRegistry()
	s := testDef().MustSpec()
	if err := Register(s); err != nil {
		t.Fatal(err)
	}
	got, err := ByName("t-mix")
	if err != nil {
		t.Fatal(err)
	}
	if got.Def == nil || got.Def.Fingerprint() != s.Def.Fingerprint() {
		t.Fatal("registered workload resolved to something else")
	}
	// Unknown-name errors must list registered workloads too.
	_, err = ByName("nope")
	if err == nil || !strings.Contains(err.Error(), "t-mix") {
		t.Fatalf("unknown-name error does not list registered workloads: %v", err)
	}
	// Built-in names are reserved.
	clash := s
	clash.Name = "ycsb"
	if err := Register(clash); err == nil {
		t.Fatal("registering over a built-in succeeded")
	}
	// Re-registering a registered name replaces (the file-editing loop).
	d2 := testDef()
	d2.WriteRatio = 0.3
	if err := Register(d2.MustSpec()); err != nil {
		t.Fatal(err)
	}
	got, _ = ByName("t-mix")
	if got.WriteRatio != 0.3 {
		t.Fatal("re-registration did not replace the definition")
	}
	// A spec with no generator is rejected.
	if err := Register(Spec{Name: "empty", FootprintPages: 1}); err == nil {
		t.Fatal("generator-less spec registered")
	}
}

func TestRegistryFingerprintTracksDefinitions(t *testing.T) {
	defer resetRegistry()
	resetRegistry()
	base := RegistryFingerprint()
	if base != RegistryFingerprint() {
		t.Fatal("fingerprint not stable")
	}
	if err := Register(testDef().MustSpec()); err != nil {
		t.Fatal(err)
	}
	withReg := RegistryFingerprint()
	if withReg == base {
		t.Fatal("registering a workload did not change the registry fingerprint")
	}
	d := testDef()
	d.Phases[0].Ops[0].Lines = 3
	if err := Register(d.MustSpec()); err != nil {
		t.Fatal(err)
	}
	if RegistryFingerprint() == withReg {
		t.Fatal("editing a registered definition did not change the registry fingerprint")
	}
}

func TestFromFileDefinition(t *testing.T) {
	defer resetRegistry()
	resetRegistry()
	d := testDef()
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := RegisterFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "t-mix" || s.Def == nil {
		t.Fatalf("unexpected spec from file: %+v", s)
	}
	// File-loaded and Go-defined streams must be byte-identical.
	a := sample(t, s, 1, 3000)
	b := sample(t, d.MustSpec(), 1, 3000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d: file-loaded stream diverges from the in-code definition", i)
		}
	}
	// Typos (unknown fields) fail loudly.
	bad := strings.Replace(string(data), `"format"`, `"formatt"`, 1)
	badPath := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(badPath, []byte(bad), 0o644)
	if _, err := FromFile(badPath); err == nil {
		t.Fatal("definition with an unknown field accepted")
	}
}

func TestFromFileTrace(t *testing.T) {
	defer resetRegistry()
	resetRegistry()
	w, err := ByName("bc")
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{
		Meta: trace.Meta{Workload: "bc", Seed: 5, FootprintPages: w.FootprintPages, WriteRatio: w.WriteRatio},
	}
	for th := 0; th < 2; th++ {
		tr.Threads = append(tr.Threads, trace.RecordStream(w.Stream(th, 5), 2000))
	}
	data, err := trace.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bc.trc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := RegisterFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "trace:bc" || s.Trace == nil {
		t.Fatalf("unexpected trace spec: %+v", s)
	}
	if !strings.Contains(s.SourceID(), "trace:v") {
		t.Fatalf("trace SourceID %q does not carry the codec version", s.SourceID())
	}
	// Replay must equal the live generator record for record (the seed
	// passed at replay time is ignored — a trace is literal).
	live := w.Stream(1, 5)
	replay := s.Stream(1, 999)
	for i := 0; i < 2000; i++ {
		lr, _ := live.Next()
		rr, ok := replay.Next()
		if !ok {
			t.Fatalf("replay ended early at %d", i)
		}
		if lr != rr {
			t.Fatalf("record %d: replay %+v, live %+v", i, rr, lr)
		}
	}
}

// TestExplicitZeroProbAndWeightHonored pins the pointer-typed optional
// fields: an explicit 0 means "never", not "default to 1".
func TestExplicitZeroProbAndWeightHonored(t *testing.T) {
	d := testDef()
	d.Phases[0].Ops[4].Prob = F(0) // the only store in phase 0
	d.Phases[1].Weight = F(0)      // phase 1 never picked
	s := d.MustSpec()
	for i, r := range sample(t, s, 0, 10000) {
		if r.Kind == trace.Store {
			t.Fatalf("record %d: store emitted despite prob 0", i)
		}
		if r.Kind == trace.Compute && r.N >= 50 {
			t.Fatalf("record %d: zero-weight phase ran (compute %d)", i, r.N)
		}
	}
}

// TestRegisterValidatesDefs pins the registration chokepoint: a
// hand-built Spec wrapping an unvetted definition is rejected, never
// registered to fail mid-campaign.
func TestRegisterValidatesDefs(t *testing.T) {
	defer resetRegistry()
	resetRegistry()
	d := testDef()
	d.Phases[0].Ops[0].Region = "missing"
	if err := Register(Spec{Name: d.Name, FootprintPages: d.FootprintPages, Def: &d}); err == nil {
		t.Fatal("spec with an invalid definition registered")
	}
	// A valid raw Def is normalized on the way in (Lines defaults to 1,
	// so the stream emits).
	d2 := testDef()
	if err := Register(Spec{Name: d2.Name, FootprintPages: d2.FootprintPages, Def: &d2}); err != nil {
		t.Fatal(err)
	}
	got, err := ByName(d2.Name)
	if err != nil {
		t.Fatal(err)
	}
	if recs := sample(t, got, 0, 100); len(recs) != 100 {
		t.Fatal("registered raw definition does not stream")
	}
}
