// Package workloads is the simulator's workload engine. It ships the
// seven Table I benchmarks the paper evaluates (bc, bfs-dense, dlrm,
// radix, srad, tpcc, ycsb) as hand-coded deterministic generators,
// extra scenarios composed from declarative primitives (def.go,
// extras.go), file-loaded workloads (file.go; JSON definitions or
// recorded binary traces), and a registry (registry.go) that makes all
// of them resolvable by name everywhere a built-in is. The paper
// replays PIN-captured instruction traces; the generators reproduce
// each workload's measured characteristics instead — memory footprint
// (scaled 1/64 with the rest of the machine), write ratio, LLC miss
// intensity, spatial sparsity (Figs. 5–6) and dependence structure
// (graph traversals are pointer chases; DLRM gathers are independent)
// — so every simulator variant replays an identical, workload-shaped
// stream. DESIGN.md §1 documents this substitution; DESIGN.md §3 and
// WORKLOADS.md document the engine.
package workloads

import (
	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

// Spec describes one workload: its Table I-style characteristics plus
// exactly one generator — a hand-coded built-in, a declarative
// definition, or a recorded trace.
type Spec struct {
	Name string
	// Suite is the benchmark's origin (paper suite, "extra", "custom",
	// or "trace").
	Suite string
	// FootprintPages is the CXL-resident data footprint at 1/64 scale.
	FootprintPages uint64
	// WriteRatio is Table I's fraction of memory accesses that are writes.
	WriteRatio float64
	// PaperMPKI is Table I's LLC misses per kilo-instruction (the target
	// the generator approximates; EXPERIMENTS.md reports measured values).
	PaperMPKI float64
	// PaperFootprintGB is Table I's unscaled footprint, for documentation.
	PaperFootprintGB float64

	// Def, when set, is the declarative definition the stream compiles
	// from (extra built-ins and file-loaded workloads).
	Def *Def
	// Trace, when set, replays a recorded trace through the same
	// Stream interface (the seed is ignored — a trace is literal).
	Trace *TraceReplay
	// native is the hand-coded generator of the Table I seven.
	native func(Spec, int, *trace.RNG) trace.Stream
}

// TraceReplay backs a trace-kind workload: a replayable record source
// plus the content digest that identifies it in fingerprints. The
// source is either a materialized *trace.Trace (e.g. fresh from an
// importer) or a streaming *trace.Reader, which replays straight off
// the file one compressed block at a time so campaign memory stays
// bounded no matter how large the recording is.
type TraceReplay struct {
	Data trace.Source
	// Digest is trace.TraceDigest of the encoded file — the file's
	// codec version plus content hash.
	Digest string
}

// FootprintBytes returns the scaled footprint in bytes.
func (s Spec) FootprintBytes() uint64 { return s.FootprintPages * mem.PageBytes }

// Arena returns the base address of the workload's CXL arena.
func (s Spec) Arena() mem.Addr { return mem.CXLBase }

// Table1 lists the seven benchmarks in the paper's order. Footprints are
// Table I divided by the 64x capacity scaling (≥8 GB → ≥128 MB).
func Table1() []Spec {
	return []Spec{
		{Name: "bc", Suite: "GAP", FootprintPages: 32 * 1024, WriteRatio: 0.11, PaperMPKI: 39.4, PaperFootprintGB: 8.18, native: Spec.bc},
		{Name: "bfs-dense", Suite: "Rodinia", FootprintPages: 36 * 1024, WriteRatio: 0.25, PaperMPKI: 122.9, PaperFootprintGB: 9.13, native: Spec.bfsDense},
		{Name: "dlrm", Suite: "DLRM", FootprintPages: 48 * 1024, WriteRatio: 0.32, PaperMPKI: 5.1, PaperFootprintGB: 12.35, native: Spec.dlrm},
		{Name: "radix", Suite: "Splashv3", FootprintPages: 38 * 1024, WriteRatio: 0.29, PaperMPKI: 7.1, PaperFootprintGB: 9.60, native: Spec.radix},
		{Name: "srad", Suite: "Rodinia", FootprintPages: 32 * 1024, WriteRatio: 0.24, PaperMPKI: 7.5, PaperFootprintGB: 8.16, native: Spec.srad},
		{Name: "tpcc", Suite: "WHISPER", FootprintPages: 62 * 1024, WriteRatio: 0.36, PaperMPKI: 1.0, PaperFootprintGB: 15.77, native: Spec.tpcc},
		{Name: "ycsb", Suite: "WHISPER", FootprintPages: 38 * 1024, WriteRatio: 0.05, PaperMPKI: 92.2, PaperFootprintGB: 9.61, native: Spec.ycsb},
	}
}

// Table1Names returns the benchmark names in Table I order — the
// default campaign set. Names() lists the full resolvable set.
func Table1Names() []string {
	specs := Table1()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Stream builds the deterministic instruction stream of one thread. All
// threads of a workload share the data arena and partition the work; the
// same (spec, thread, seed) always yields the identical stream, so every
// design variant replays the same section of the program (§VI-A).
// Trace-backed specs replay their records literally and ignore the seed.
func (s Spec) Stream(thread int, seed uint64) trace.Stream {
	if s.Trace != nil {
		return s.Trace.Data.Stream(thread)
	}
	mix := trace.NewRNG(seed*0x9E37 + uint64(thread)*0x79B9 + 1)
	switch {
	case s.native != nil:
		return s.native(s, thread, mix)
	case s.Def != nil:
		return s.Def.stream(s, thread, mix)
	}
	panic("workloads: no generator for " + s.Name)
}

// --- address helpers ---

func (s Spec) lineAddr(page, line uint64) mem.Addr {
	return mem.CXLBase + mem.Addr(page%s.FootprintPages)*mem.PageBytes + mem.Addr(line%mem.LinesPerPage)*mem.LineBytes
}

func compute(n uint32) trace.Record   { return trace.Record{Kind: trace.Compute, N: n} }
func load(a mem.Addr) trace.Record    { return trace.Record{Kind: trace.Load, Addr: a} }
func loadDep(a mem.Addr) trace.Record { return trace.Record{Kind: trace.LoadDep, Addr: a} }
func store(a mem.Addr) trace.Record   { return trace.Record{Kind: trace.Store, Addr: a} }

// region is a sub-range of the arena, in pages.
type region struct {
	spec  Spec
	start uint64 // first page
	pages uint64
}

func (s Spec) region(startFrac, sizeFrac float64) region {
	start := uint64(startFrac * float64(s.FootprintPages))
	pages := uint64(sizeFrac * float64(s.FootprintPages))
	if pages == 0 {
		pages = 1
	}
	return region{spec: s, start: start, pages: pages}
}

func (r region) line(page, line uint64) mem.Addr {
	return r.spec.lineAddr(r.start+page%r.pages, line)
}

// --- bc: betweenness centrality (GAP) ---
//
// CSR graph traversal: short sequential runs over an edge list, a
// pointer-dependent hop to each neighbour's score (zipfian vertex
// popularity — power-law graphs), and occasional score updates (11%
// writes, one line per touched page: Fig. 6's sparse writes).
func (s Spec) bc(thread int, rng *trace.RNG) trace.Stream {
	edges := s.region(0, 0.55) // CSR edge lists
	scores := s.region(0.55, 0.45)
	pop := trace.NewZipf(rng, scores.pages, 0.75)
	cursor := uint64(thread) * 7919
	return &trace.BufGen{Refill: func(emit func(trace.Record)) bool {
		emit(compute(uint32(12 + rng.Intn(10))))
		// Walk a neighbour run in the edge list (spatially local).
		cursor += 3 + rng.Uint64n(5)
		base := cursor
		deg := 2 + rng.Intn(4)
		for i := 0; i < deg; i++ {
			emit(load(edges.line(base/8, base%8*8+uint64(i))))
		}
		// Chase two neighbours' scores (dependent).
		for i := 0; i < 2; i++ {
			emit(compute(uint32(6 + rng.Intn(6))))
			emit(loadDep(scores.line(pop.ScrambledNext(), rng.Uint64n(64))))
		}
		// Sparse score update (~11% of the ~9 memory ops above).
		if rng.Bool(0.82) {
			emit(store(scores.line(pop.ScrambledNext(), rng.Uint64n(64))))
		}
		return true
	}}
}

// --- bfs-dense: dense-frontier BFS (Rodinia) ---
//
// The highest-MPKI workload (122.9): nearly every visit probes random
// vertices through dependent loads, with 25% writes updating the
// visited/cost arrays as it sweeps.
func (s Spec) bfsDense(thread int, rng *trace.RNG) trace.Stream {
	graph := s.region(0, 0.7)
	state := s.region(0.7, 0.3)
	cursor := uint64(thread) * 104729
	return &trace.BufGen{Refill: func(emit func(trace.Record)) bool {
		emit(compute(uint32(3 + rng.Intn(4))))
		// Frontier scan line (sequential, cheap).
		cursor++
		emit(load(state.line(cursor/64, cursor%64)))
		// Probe two random neighbours (pointer chase).
		emit(loadDep(graph.line(rng.Uint64n(graph.pages), rng.Uint64n(64))))
		emit(compute(uint32(2 + rng.Intn(3))))
		emit(loadDep(graph.line(rng.Uint64n(graph.pages), rng.Uint64n(64))))
		// Mark visited / update cost: scattered sparse writes.
		if rng.Bool(0.95) {
			w := cursor*13 + rng.Uint64n(7)
			emit(store(state.line(w%state.pages, (w*7)%64)))
		}
		return true
	}}
}

// --- dlrm: deep-learning recommendation (embedding gathers) ---
//
// Each sample gathers a handful of embedding rows — independent random
// reads of one or two cachelines per page (Fig. 5's sparse reads) —
// followed by a dense MLP compute burst, then writes gradient updates back
// to the same rows (32% writes, sparse).
func (s Spec) dlrm(thread int, rng *trace.RNG) trace.Stream {
	tables := s.region(0, 0.9)
	dense := s.region(0.9, 0.1)
	hot := trace.NewZipf(rng, tables.pages, 0.6)
	step := uint64(thread) * 31
	return &trace.BufGen{Refill: func(emit func(trace.Record)) bool {
		step++
		rows := make([]mem.Addr, 0, 4)
		for i := 0; i < 4; i++ {
			row := tables.line(hot.ScrambledNext(), rng.Uint64n(64))
			rows = append(rows, row)
			emit(load(row)) // gathers are index-known: independent loads
			if rng.Bool(0.3) {
				emit(load(row + mem.LineBytes)) // second line of the row
			}
		}
		// Dense MLP layers: long compute with local activations.
		emit(load(dense.line(step%dense.pages, step%64)))
		emit(compute(uint32(180 + rng.Intn(120))))
		// Gradient writes to the same sparse rows.
		for _, row := range rows {
			if rng.Bool(0.6) {
				emit(store(row))
			}
		}
		return true
	}}
}

// --- radix: parallel radix sort (Splash-3) ---
//
// Streaming passes: sequential reads of the input partition (high spatial
// locality keeps MPKI at 7.1 despite the data intensity) and scattered
// single-line scatter writes into the output buckets (29% writes — the
// classic sparse-write pattern).
func (s Spec) radix(thread int, rng *trace.RNG) trace.Stream {
	input := s.region(0, 0.48)
	output := s.region(0.48, 0.48)
	hist := s.region(0.96, 0.04)
	cursor := uint64(thread) * input.pages / 8 * 64 // per-thread partition
	return &trace.BufGen{Refill: func(emit func(trace.Record)) bool {
		// Read the next keys sequentially.
		for i := 0; i < 4; i++ {
			cursor++
			emit(load(input.line(cursor/64, cursor%64)))
			emit(compute(uint32(10 + rng.Intn(8))))
		}
		// Histogram update (hot, cache-resident).
		emit(load(hist.line(rng.Uint64n(hist.pages), rng.Uint64n(64))))
		// Scatter the keys to random buckets: sparse single-line writes.
		for i := 0; i < 2; i++ {
			emit(store(output.line(rng.Uint64n(output.pages), rng.Uint64n(64))))
		}
		if rng.Bool(0.5) {
			emit(store(hist.line(rng.Uint64n(hist.pages), rng.Uint64n(64))))
		}
		emit(compute(uint32(30 + rng.Intn(20))))
		return true
	}}
}

// --- srad: speckle-reducing anisotropic diffusion (Rodinia) ---
//
// A 5-point stencil sweeping a 2D grid: row-sequential reads with
// neighbour rows (strong spatial locality), and strided sparse writes of
// the output grid (24% writes; srad benefits most from the write log).
func (s Spec) srad(thread int, rng *trace.RNG) trace.Stream {
	in := s.region(0, 0.5)
	out := s.region(0.5, 0.5)
	// 8192 rows of 128 lines: the three-row stencil working set stays
	// within the (scaled) shared LLC, matching srad's low paper MPKI.
	rowLines := in.pages * 64 / 8192
	if rowLines < 64 {
		rowLines = 64
	}
	cursor := uint64(thread) * rowLines * 1024
	return &trace.BufGen{Refill: func(emit func(trace.Record)) bool {
		cursor++
		idx := cursor
		// Centre + N/S neighbours (E/W fall in the same line).
		emit(load(in.line(idx/64, idx%64)))
		emit(load(in.line((idx+rowLines)/64, (idx+rowLines)%64)))
		emit(load(in.line((idx-rowLines)/64, (idx-rowLines)%64)))
		emit(compute(uint32(35 + rng.Intn(20))))
		// Strided output write (every other line), so roughly half the
		// lines of each output page are dirty when it is flushed.
		emit(store(out.line(idx/32, (idx*2)%64)))
		return true
	}}
}

// --- tpcc: OLTP transactions (WHISPER nstore) ---
//
// New-order style transactions over a strongly hot working set (warehouse
// and district rows live in the LLC — MPKI 1.0) with occasional trips to
// the large customer/stock tables and 36% writes concentrated on the hot
// rows.
func (s Spec) tpcc(thread int, rng *trace.RNG) trace.Stream {
	hotTbl := s.region(0, 0.0008) // warehouses+districts: LLC-resident
	stock := s.region(0.002, 0.6)
	log := s.region(0.602, 0.398)
	hotKey := trace.NewZipf(rng, hotTbl.pages*64, 0.5)
	custKey := trace.NewZipf(rng, stock.pages, 0.85)
	lsn := uint64(thread) * 65537
	return &trace.BufGen{Refill: func(emit func(trace.Record)) bool {
		emit(compute(uint32(150 + rng.Intn(100))))
		// Read + update hot rows (cache hits, still memory instructions).
		for i := 0; i < 3; i++ {
			k := hotKey.Next()
			emit(load(hotTbl.line(k/64, k%64)))
			if rng.Bool(0.25) {
				emit(store(hotTbl.line(k/64, k%64)))
			}
		}
		// Occasionally touch the big stock/customer table.
		if rng.Bool(0.35) {
			p := custKey.ScrambledNext()
			emit(loadDep(stock.line(p, rng.Uint64n(64))))
			if rng.Bool(0.6) {
				emit(store(stock.line(p, rng.Uint64n(64))))
			}
		}
		// Append to the redo log (sequential sparse writes).
		lsn++
		emit(store(log.line(lsn/64, lsn%64)))
		emit(compute(uint32(120 + rng.Intn(80))))
		return true
	}}
}

// --- ycsb: key-value store, workload B (WHISPER nstore) ---
//
// 95% reads / 5% updates over zipfian (θ=0.99) keys; a record spans 16
// lines (1 KB) but an op touches only a few — high MPKI (92.2) from the
// random record base plus a dependent hash-bucket probe.
func (s Spec) ycsb(thread int, rng *trace.RNG) trace.Stream {
	records := s.region(0, 0.9)
	index := s.region(0.9, 0.1)
	nKeys := records.pages * 4 // 4 records (1KB each) per page
	keys := trace.NewZipf(rng, nKeys, 0.99)
	return &trace.BufGen{Refill: func(emit func(trace.Record)) bool {
		emit(compute(uint32(8 + rng.Intn(8))))
		key := keys.ScrambledNext()
		// Hash-index probe, then the dependent record fetch.
		emit(load(index.line(key%index.pages, key%64)))
		rec := key / 4
		recLine := key % 4 * 16
		emit(loadDep(records.line(rec, recLine)))
		// Read a couple more fields of the record (same page).
		emit(load(records.line(rec, recLine+1)))
		if rng.Bool(0.5) {
			emit(load(records.line(rec, recLine+2)))
		}
		// 5% of operations update one field.
		if rng.Bool(0.18) {
			emit(store(records.line(rec, recLine+rng.Uint64n(3))))
		}
		emit(compute(uint32(10 + rng.Intn(10))))
		return true
	}}
}
