package workloads

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"skybyte/internal/trace"
)

// FromFile loads a workload from path. The format is sniffed from the
// content:
//
//   - a recorded binary trace (internal/trace codec; magic "SKYBTRC")
//     becomes a trace-kind workload named "trace:<workload>" that
//     replays the records literally;
//   - anything else must be a JSON declarative definition
//     (WORKLOADS.md documents the schema). Unknown fields are rejected
//     so a typo fails loudly instead of silently meaning "default".
//
// The returned Spec is validated but not registered; RegisterFile also
// makes it resolvable by name.
func FromFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("workloads: %w", err)
	}
	if trace.IsTrace(data) {
		tr, err := trace.DecodeTrace(data)
		if err != nil {
			return Spec{}, fmt.Errorf("workloads: %s: %w", path, err)
		}
		return SpecFromTrace(tr, trace.TraceDigest(data))
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d Def
	if err := dec.Decode(&d); err != nil {
		return Spec{}, fmt.Errorf("workloads: %s: not a trace and not a valid workload definition: %w", path, err)
	}
	s, err := d.Spec()
	if err != nil {
		return Spec{}, fmt.Errorf("workloads: %s: %w", path, err)
	}
	return s, nil
}

// RegisterFile loads a workload from path (FromFile) and registers it,
// so campaigns and CLIs can select it by name like a built-in. It
// returns the registered spec.
func RegisterFile(path string) (Spec, error) {
	s, err := FromFile(path)
	if err != nil {
		return Spec{}, err
	}
	if err := Register(s); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// SpecFromTrace wraps a decoded trace as a replayable workload named
// "trace:<original workload>". The digest (trace.TraceDigest of the
// encoded bytes) becomes the spec's source identity, so an edited or
// re-recorded trace — or a codec bump — fingerprints differently.
func SpecFromTrace(tr *trace.Trace, digest string) (Spec, error) {
	if len(tr.Threads) == 0 {
		return Spec{}, fmt.Errorf("workloads: trace has no thread streams")
	}
	if tr.Meta.FootprintPages == 0 {
		return Spec{}, fmt.Errorf("workloads: trace metadata missing footprint_pages")
	}
	name := "trace:" + tr.Meta.Workload
	if err := validateName(name); err != nil {
		return Spec{}, err
	}
	return Spec{
		Name:           name,
		Suite:          "trace",
		FootprintPages: tr.Meta.FootprintPages,
		WriteRatio:     tr.Meta.WriteRatio,
		Trace:          &TraceReplay{Data: tr, Digest: digest},
	}, nil
}
