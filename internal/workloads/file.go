package workloads

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"skybyte/internal/trace"
)

// FromFile loads a workload from path. The format is sniffed from the
// content:
//
//   - a recorded binary trace (internal/trace codec; magic "SKYBTRC")
//     becomes a trace-kind workload named "trace:<workload>" that
//     replays the records literally — opened through the streaming
//     reader, so a block-compressed v2 recording replays with O(block)
//     memory and is never materialized;
//   - anything else must be a JSON declarative definition
//     (WORKLOADS.md documents the schema). Unknown fields are rejected
//     so a typo fails loudly instead of silently meaning "default".
//
// The returned Spec is validated but not registered; RegisterFile also
// makes it resolvable by name.
func FromFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("workloads: %w", err)
	}
	var magic [8]byte
	n, _ := f.Read(magic[:])
	f.Close()
	if trace.IsTrace(magic[:n]) {
		// Trace files can be arbitrarily large; never slurp them. The
		// streaming open verifies the whole file (structure, block
		// seals, trailer) and computes the digest in one bounded pass.
		r, err := trace.OpenFile(path)
		if err != nil {
			return Spec{}, fmt.Errorf("workloads: %s: %w", path, err)
		}
		s, err := SpecFromTrace(r, r.Digest())
		if err != nil {
			r.Close()
			return Spec{}, fmt.Errorf("workloads: %s: %w", path, err)
		}
		return s, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("workloads: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d Def
	if err := dec.Decode(&d); err != nil {
		return Spec{}, fmt.Errorf("workloads: %s: not a trace and not a valid workload definition: %w", path, err)
	}
	s, err := d.Spec()
	if err != nil {
		return Spec{}, fmt.Errorf("workloads: %s: %w", path, err)
	}
	return s, nil
}

// RegisterFile loads a workload from path (FromFile) and registers it,
// so campaigns and CLIs can select it by name like a built-in. It
// returns the registered spec.
func RegisterFile(path string) (Spec, error) {
	s, err := FromFile(path)
	if err != nil {
		return Spec{}, err
	}
	if err := Register(s); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// SpecFromTrace wraps a replayable trace source (a materialized
// *trace.Trace or a streaming *trace.Reader) as a workload named
// "trace:<original workload>". The digest (trace.TraceDigest of the
// encoded bytes) becomes the spec's source identity, so an edited or
// re-recorded trace — or a re-encode under a different codec version —
// fingerprints differently, and the PR-4 surgical store invalidation
// re-keys exactly the design points that replay it.
func SpecFromTrace(src trace.Source, digest string) (Spec, error) {
	if src.NumThreads() == 0 {
		return Spec{}, fmt.Errorf("workloads: trace has no thread streams")
	}
	meta := src.TraceMeta()
	if meta.FootprintPages == 0 {
		return Spec{}, fmt.Errorf("workloads: trace metadata missing footprint_pages")
	}
	name := "trace:" + meta.Workload
	if err := validateName(name); err != nil {
		return Spec{}, err
	}
	return Spec{
		Name:           name,
		Suite:          "trace",
		FootprintPages: meta.FootprintPages,
		WriteRatio:     meta.WriteRatio,
		Trace:          &TraceReplay{Data: src, Digest: digest},
	}, nil
}
