package workloads

import (
	"math"
	"testing"

	"skybyte/internal/trace"
)

// TestV2CompressionRatioOnBuiltins is the container's acceptance bar:
// recordings of every built-in workload must compress to at most half
// of their v1 size under the v2 block-deflate layout (measured ratios
// sit near a third; WORKLOADS.md reports them).
func TestV2CompressionRatioOnBuiltins(t *testing.T) {
	for _, w := range Table1() {
		tr := &trace.Trace{Meta: trace.Meta{
			Workload: w.Name, Seed: 1, FootprintPages: w.FootprintPages, WriteRatio: w.WriteRatio,
		}}
		tr.Threads = append(tr.Threads, trace.RecordStream(w.Stream(0, 1), 20000))
		v1, err := trace.EncodeTraceVersion(tr, 1)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := trace.EncodeTraceVersion(tr, 2)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(len(v2)) / float64(len(v1))
		t.Logf("%-10s v1=%7d bytes  v2=%7d bytes  ratio=%.1f%%", w.Name, len(v1), len(v2), 100*ratio)
		if math.IsNaN(ratio) || ratio > 0.5 {
			t.Errorf("%s: v2 is %.1f%% of v1 (%d / %d bytes); the bar is <= 50%%",
				w.Name, 100*ratio, len(v2), len(v1))
		}
	}
}
