package workloads

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

// DefFormatVersion names the declarative workload format. It appears
// as the required "format" field of every workload file and is folded
// into each definition's fingerprint, so a format change can never
// silently reinterpret an old file — the loader rejects the mismatch
// and the result store misses.
const DefFormatVersion = 1

// Def is a declarative workload definition: a footprint carved into
// named regions, walked by weighted phases whose ops compose the
// primitive access kernels (sequential, strided, uniform, zipfian,
// pointer-chase). A Def is a pure value — the stream it compiles to is
// a deterministic function of (definition, thread, seed) — so new
// scenarios are data, not code: WORKLOADS.md documents the on-file
// JSON form loadable via FromFile.
type Def struct {
	// Format must equal DefFormatVersion.
	Format int `json:"format"`
	// Name is the workload's registry name.
	Name string `json:"name"`
	// Suite labels provenance in tables (default "custom").
	Suite string `json:"suite,omitempty"`
	// FootprintPages sizes the CXL arena (4 KiB pages).
	FootprintPages uint64 `json:"footprint_pages"`
	// WriteRatio is the intended store fraction of memory ops, carried
	// for documentation and Table I-style comparisons; the phases and
	// ops determine the actual mix.
	WriteRatio float64 `json:"write_ratio,omitempty"`
	// PaperMPKI/PaperFootprintGB document a paper counterpart, if any.
	PaperMPKI        float64 `json:"paper_mpki,omitempty"`
	PaperFootprintGB float64 `json:"paper_footprint_gb,omitempty"`
	// Regions partition the arena by fractions of the footprint.
	Regions []RegionDef `json:"regions"`
	// Phases are units of work; each stream iteration picks one phase
	// (weighted) and emits its ops in order.
	Phases []PhaseDef `json:"phases"`
}

// RegionDef is a named sub-range of the arena, as fractions of the
// footprint. Regions may overlap (sharing pages is sometimes the
// point); Start+Size must stay within the footprint.
type RegionDef struct {
	Name  string  `json:"name"`
	Start float64 `json:"start"`
	Size  float64 `json:"size"`
}

// PhaseDef is one unit of work — a transaction, a vertex visit, a scan
// chunk. With several phases, each stream iteration picks one with
// probability proportional to Weight (nil means 1; an explicit 0 is
// honored — the phase never runs).
type PhaseDef struct {
	Name   string   `json:"name,omitempty"`
	Weight *float64 `json:"weight,omitempty"`
	Ops    []OpDef  `json:"ops"`
}

// OpDef is one primitive operation inside a phase.
type OpDef struct {
	// Op is "compute", "load", or "store".
	Op string `json:"op"`
	// Region names the target region (memory ops only).
	Region string `json:"region,omitempty"`
	// Kernel picks the address pattern: "sequential" (per-thread
	// cursor, default), "stride" (cursor advancing StrideLines),
	// "uniform" (random line), or "zipf" (scrambled zipfian page of
	// skew Theta, random line within it).
	Kernel string `json:"kernel,omitempty"`
	// Theta is the zipf skew in (0,1); required for the zipf kernel.
	Theta float64 `json:"theta,omitempty"`
	// StrideLines is the stride kernel's advance in cache lines.
	StrideLines uint64 `json:"stride_lines,omitempty"`
	// Lines touches this many consecutive lines per access (default 1).
	Lines int `json:"lines,omitempty"`
	// Count repeats the op per phase iteration (default 1).
	Count int `json:"count,omitempty"`
	// Prob emits the op with this probability (nil means 1; an
	// explicit 0 is honored — the op never emits).
	Prob *float64 `json:"prob,omitempty"`
	// Dep marks a load as pointer-chasing: it issues as a dependent
	// load that serializes behind outstanding misses.
	Dep bool `json:"dep,omitempty"`
	// Min/Max bound a compute burst's instruction count (uniform).
	Min uint32 `json:"min,omitempty"`
	Max uint32 `json:"max,omitempty"`
}

// Kernel names.
const (
	KernelSequential = "sequential"
	KernelStride     = "stride"
	KernelUniform    = "uniform"
	KernelZipf       = "zipf"
)

// F wraps a literal for the optional pointer-typed fields (Weight,
// Prob), which distinguish "omitted, use the default" from an explicit
// 0 in both Go literals and JSON.
func F(x float64) *float64 { return &x }

// weight is the phase's effective weight (nil → 1).
func (p PhaseDef) weight() float64 {
	if p.Weight == nil {
		return 1
	}
	return *p.Weight
}

// prob is the op's effective emit probability (nil → 1).
func (o OpDef) prob() float64 {
	if o.Prob == nil {
		return 1
	}
	return *o.Prob
}

// normalized returns a copy with every defaulted field made explicit,
// so two definitions that mean the same thing fingerprint identically
// and the compiled generator never re-derives defaults.
func (d Def) normalized() Def {
	if d.Suite == "" {
		d.Suite = "custom"
	}
	d.Regions = append([]RegionDef(nil), d.Regions...)
	d.Phases = append([]PhaseDef(nil), d.Phases...)
	for pi := range d.Phases {
		p := &d.Phases[pi]
		p.Weight = F(p.weight())
		p.Ops = append([]OpDef(nil), p.Ops...)
		for oi := range p.Ops {
			op := &p.Ops[oi]
			if op.Count == 0 {
				op.Count = 1
			}
			op.Prob = F(op.prob())
			if op.Op == "compute" {
				if op.Max < op.Min {
					op.Max = op.Min
				}
				continue
			}
			if op.Kernel == "" {
				op.Kernel = KernelSequential
			}
			if op.Lines == 0 {
				op.Lines = 1
			}
		}
	}
	return d
}

// Validate checks the definition against the format's contract and
// returns the first violation, phrased for a human editing a file.
func (d Def) Validate() error {
	if d.Format != DefFormatVersion {
		return fmt.Errorf("workloads: %q: format %d, this build reads format %d", d.Name, d.Format, DefFormatVersion)
	}
	if err := validateName(d.Name); err != nil {
		return err
	}
	if d.FootprintPages == 0 {
		return fmt.Errorf("workloads: %q: footprint_pages must be positive", d.Name)
	}
	if d.WriteRatio < 0 || d.WriteRatio > 1 {
		return fmt.Errorf("workloads: %q: write_ratio %v outside [0,1]", d.Name, d.WriteRatio)
	}
	if len(d.Regions) == 0 {
		return fmt.Errorf("workloads: %q: at least one region required", d.Name)
	}
	regions := map[string]bool{}
	for _, r := range d.Regions {
		if r.Name == "" {
			return fmt.Errorf("workloads: %q: unnamed region", d.Name)
		}
		if regions[r.Name] {
			return fmt.Errorf("workloads: %q: duplicate region %q", d.Name, r.Name)
		}
		regions[r.Name] = true
		if r.Start < 0 || r.Size <= 0 || r.Start+r.Size > 1.0001 {
			return fmt.Errorf("workloads: %q: region %q [start=%v size=%v] outside the footprint", d.Name, r.Name, r.Start, r.Size)
		}
	}
	if len(d.Phases) == 0 {
		return fmt.Errorf("workloads: %q: at least one phase required", d.Name)
	}
	totalWeight := 0.0
	for pi, p := range d.Phases {
		if p.weight() < 0 {
			return fmt.Errorf("workloads: %q: phase %d has negative weight", d.Name, pi)
		}
		totalWeight += p.weight()
		if len(p.Ops) == 0 {
			return fmt.Errorf("workloads: %q: phase %d has no ops", d.Name, pi)
		}
		for oi, op := range p.Ops {
			at := fmt.Sprintf("workloads: %q: phase %d op %d", d.Name, pi, oi)
			if op.Count < 0 {
				return fmt.Errorf("%s: negative count", at)
			}
			if pr := op.prob(); pr < 0 || pr > 1 {
				return fmt.Errorf("%s: prob %v outside [0,1]", at, pr)
			}
			switch op.Op {
			case "compute":
				// min >= 1 is the Record invariant (a Compute record
				// batches at least one instruction): a zero-instruction
				// burst would encode into traces the decoder rejects.
				if op.Min == 0 {
					return fmt.Errorf("%s: compute needs min >= 1 instructions (and optionally max)", at)
				}
				if op.Max != 0 && op.Max < op.Min {
					return fmt.Errorf("%s: max %d below min %d", at, op.Max, op.Min)
				}
			case "load", "store":
				if !regions[op.Region] {
					return fmt.Errorf("%s: unknown region %q", at, op.Region)
				}
				if op.Lines < 0 {
					return fmt.Errorf("%s: negative lines", at)
				}
				switch op.Kernel {
				case "", KernelSequential, KernelUniform:
				case KernelStride:
					if op.StrideLines == 0 {
						return fmt.Errorf("%s: stride kernel needs stride_lines", at)
					}
				case KernelZipf:
					if op.Theta <= 0 || op.Theta >= 1 {
						return fmt.Errorf("%s: zipf kernel needs theta in (0,1), got %v", at, op.Theta)
					}
				default:
					return fmt.Errorf("%s: unknown kernel %q (valid: %s)", at, op.Kernel,
						strings.Join([]string{KernelSequential, KernelStride, KernelUniform, KernelZipf}, ", "))
				}
				if op.Dep && op.Op == "store" {
					return fmt.Errorf("%s: dep applies to loads only", at)
				}
			default:
				return fmt.Errorf("%s: unknown op %q (valid: compute, load, store)", at, op.Op)
			}
		}
	}
	if totalWeight <= 0 {
		return fmt.Errorf("workloads: %q: phase weights sum to zero", d.Name)
	}
	return nil
}

// ValidateName checks a registry name (workloads and tenant mixes
// share the character set): letters, digits, '-', '_', '.', ':'.
func ValidateName(name string) error { return validateName(name) }

func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("workloads: definition missing a name")
	}
	for _, r := range name {
		ok := r == '-' || r == '_' || r == '.' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("workloads: name %q contains %q; use letters, digits, '-', '_', '.', ':'", name, r)
		}
	}
	return nil
}

// Fingerprint returns the definition's stable content identity: a hex
// digest of its normalized canonical JSON, prefixed with the format
// version. Equivalent definitions (explicit vs defaulted fields) hash
// identically; any semantic change — and any format bump — changes it.
func (d Def) Fingerprint() string {
	b, err := json.Marshal(d.normalized())
	if err != nil {
		panic(fmt.Sprintf("workloads: definition not fingerprintable: %v", err))
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("fmt%d:%s", DefFormatVersion, hex.EncodeToString(sum[:]))
}

// Spec validates the definition and wraps it as a runnable Spec.
func (d Def) Spec() (Spec, error) {
	if err := d.Validate(); err != nil {
		return Spec{}, err
	}
	n := d.normalized()
	return Spec{
		Name:             n.Name,
		Suite:            n.Suite,
		FootprintPages:   n.FootprintPages,
		WriteRatio:       n.WriteRatio,
		PaperMPKI:        n.PaperMPKI,
		PaperFootprintGB: n.PaperFootprintGB,
		Def:              &n,
	}, nil
}

// MustSpec is Spec for vetted in-tree definitions.
func (d Def) MustSpec() Spec {
	s, err := d.Spec()
	if err != nil {
		panic(err)
	}
	return s
}

// --- compilation ---

// opState is the per-thread mutable state of one op slot: a cursor for
// the sequential/stride kernels and a zipf sampler where needed. Every
// slot gets its own state so phases stay independent and the stream is
// reproducible record for record.
type opState struct {
	cursor uint64
	zipf   *trace.Zipf
}

// stream compiles the definition into one thread's deterministic
// record stream. The contract matches the hand-coded generators: the
// same (definition, thread, seed) always yields the identical stream,
// at any parallelism, because all state below is per-invocation.
func (d *Def) stream(s Spec, thread int, rng *trace.RNG) trace.Stream {
	type slot struct {
		op     OpDef
		region region
		st     opState
	}
	regions := map[string]region{}
	for _, r := range d.Regions {
		regions[r.Name] = s.region(r.Start, r.Size)
	}
	phases := make([][]*slot, len(d.Phases))
	weights := make([]float64, len(d.Phases))
	totalWeight := 0.0
	for pi, p := range d.Phases {
		weights[pi] = p.weight()
		totalWeight += p.weight()
		for _, op := range p.Ops {
			sl := &slot{op: op}
			if op.Op != "compute" {
				sl.region = regions[op.Region]
				switch op.Kernel {
				case KernelSequential, KernelStride:
					// Offset threads into disjoint parts of the region so
					// sequential walkers partition the work like the
					// hand-coded generators do.
					sl.st.cursor = uint64(thread) * 2654435761 % (sl.region.pages * mem.LinesPerPage)
				case KernelZipf:
					sl.st.zipf = trace.NewZipf(rng, sl.region.pages, op.Theta)
				}
			}
			phases[pi] = append(phases[pi], sl)
		}
	}
	pickPhase := func() int {
		if len(phases) == 1 {
			return 0
		}
		x := rng.Float64() * totalWeight
		for i, w := range weights {
			x -= w
			if x < 0 {
				return i
			}
		}
		return len(phases) - 1
	}
	emitMem := func(emit func(trace.Record), sl *slot) {
		r := sl.region
		lines := r.pages * mem.LinesPerPage
		var line uint64
		switch sl.op.Kernel {
		case KernelSequential:
			sl.st.cursor++
			line = sl.st.cursor
		case KernelStride:
			sl.st.cursor += sl.op.StrideLines
			line = sl.st.cursor
		case KernelUniform:
			line = rng.Uint64n(lines)
		case KernelZipf:
			line = sl.st.zipf.ScrambledNext()*mem.LinesPerPage + rng.Uint64n(mem.LinesPerPage)
		}
		for i := 0; i < sl.op.Lines; i++ {
			l := line + uint64(i)
			addr := r.line(l/mem.LinesPerPage, l%mem.LinesPerPage)
			switch {
			case sl.op.Op == "store":
				emit(store(addr))
			case sl.op.Dep:
				emit(loadDep(addr))
			default:
				emit(load(addr))
			}
		}
	}
	return &trace.BufGen{Refill: func(emit func(trace.Record)) bool {
		for _, sl := range phases[pickPhase()] {
			for i := 0; i < sl.op.Count; i++ {
				if pr := sl.op.prob(); pr < 1 && !rng.Bool(pr) {
					continue
				}
				if sl.op.Op == "compute" {
					n := sl.op.Min
					if sl.op.Max > sl.op.Min {
						n += uint32(rng.Intn(int(sl.op.Max - sl.op.Min + 1)))
					}
					emit(compute(n))
					continue
				}
				emitMem(emit, sl)
			}
		}
		return true
	}}
}
