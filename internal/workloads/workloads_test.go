package workloads

import (
	"math"
	"testing"

	"skybyte/internal/mem"
	"skybyte/internal/trace"
)

func sample(t *testing.T, s Spec, thread int, n int) (recs []trace.Record) {
	t.Helper()
	st := s.Stream(thread, 42)
	for len(recs) < n {
		r, ok := st.Next()
		if !ok {
			t.Fatalf("%s: stream ended early", s.Name)
		}
		recs = append(recs, r)
	}
	return recs
}

func TestTable1Complete(t *testing.T) {
	specs := Table1()
	if len(specs) != 7 {
		t.Fatalf("Table I has %d workloads, want 7", len(specs))
	}
	for _, s := range specs {
		if s.FootprintBytes() < 128*mem.MiB {
			t.Errorf("%s footprint %d below the >=8GB/64 floor", s.Name, s.FootprintBytes())
		}
		if s.WriteRatio <= 0 || s.WriteRatio > 0.5 {
			t.Errorf("%s write ratio %v out of Table I range", s.Name, s.WriteRatio)
		}
		if s.PaperMPKI <= 0 {
			t.Errorf("%s missing MPKI", s.Name)
		}
	}
	if _, err := ByName("bc"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Table1Names()) != 7 {
		t.Fatal("Table1Names() incomplete")
	}
	if len(Names()) != 7+len(Extras()) {
		t.Fatalf("Names() = %v, want Table I + extras", Names())
	}
}

func TestDeterminism(t *testing.T) {
	for _, s := range Table1() {
		a := sample(t, s, 3, 5000)
		b := sample(t, s, 3, 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: record %d differs between identical streams", s.Name, i)
			}
		}
	}
}

func TestThreadsDiffer(t *testing.T) {
	for _, s := range Table1() {
		a := sample(t, s, 0, 2000)
		b := sample(t, s, 1, 2000)
		same := 0
		for i := range a {
			if a[i] == b[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%s: threads 0 and 1 produced identical streams", s.Name)
		}
	}
}

func TestAddressesWithinArena(t *testing.T) {
	for _, s := range Table1() {
		end := mem.CXLBase + mem.Addr(s.FootprintBytes())
		for _, r := range sample(t, s, 2, 20000) {
			if r.Kind == trace.Compute {
				continue
			}
			if r.Addr < mem.CXLBase || r.Addr >= end {
				t.Fatalf("%s: address %#x outside arena [%#x,%#x)", s.Name, r.Addr, mem.CXLBase, end)
			}
		}
	}
}

func TestWriteRatiosApproximateTable1(t *testing.T) {
	for _, s := range Table1() {
		var loads, stores int
		for _, r := range sample(t, s, 1, 60000) {
			switch r.Kind {
			case trace.Load, trace.LoadDep:
				loads++
			case trace.Store:
				stores++
			}
		}
		got := float64(stores) / float64(loads+stores)
		if math.Abs(got-s.WriteRatio) > 0.07 {
			t.Errorf("%s: measured write ratio %.3f, Table I says %.2f", s.Name, got, s.WriteRatio)
		}
	}
}

func TestGraphWorkloadsChase(t *testing.T) {
	for _, name := range []string{"bc", "bfs-dense", "ycsb"} {
		s, _ := ByName(name)
		dep := 0
		for _, r := range sample(t, s, 0, 10000) {
			if r.Kind == trace.LoadDep {
				dep++
			}
		}
		if dep == 0 {
			t.Errorf("%s: no dependent loads; pointer chasing expected", name)
		}
	}
}

func TestMemoryIntensityOrdering(t *testing.T) {
	// bfs-dense (MPKI 122.9) must be far more memory-intense per
	// instruction than tpcc (MPKI 1.0); dlrm and srad sit in between.
	intensity := func(name string) float64 {
		s, _ := ByName(name)
		var memOps, instrs uint64
		for _, r := range sample(t, s, 0, 30000) {
			instrs += r.Instructions()
			if r.Kind != trace.Compute {
				memOps++
			}
		}
		return float64(memOps) / float64(instrs)
	}
	bfs := intensity("bfs-dense")
	tpcc := intensity("tpcc")
	ycsb := intensity("ycsb")
	if bfs < 5*tpcc {
		t.Errorf("bfs-dense intensity %.4f not >> tpcc %.4f", bfs, tpcc)
	}
	if ycsb < 3*tpcc {
		t.Errorf("ycsb intensity %.4f not >> tpcc %.4f", ycsb, tpcc)
	}
}

func TestUnknownWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Stream of unknown workload should panic")
		}
	}()
	Spec{Name: "bogus", FootprintPages: 10}.Stream(0, 1)
}
