package runner

import (
	"bytes"
	"context"
	"testing"

	"skybyte/internal/sim"
	"skybyte/internal/store"
	"skybyte/internal/system"
	"skybyte/internal/telemetry"
)

// telemetrySpec is an open-loop design point with sampling and the
// request-lifecycle timeline enabled — the fullest telemetry shape
// (component probes, per-class tracks, gate spans, read spans).
func telemetrySpec() Spec {
	return Spec{
		Arrival:      "open-steady",
		ArrivalScale: 1,
		Variant:      system.SkyByteFull,
		TotalInstr:   36_000,
		Tag:          "tel",
		Mutate: func(c *system.Config) {
			c.TelemetryCadence = 2 * sim.Microsecond
			c.TelemetryTimeline = true
		},
	}
}

// TestTelemetryParallelByteIdentity pins the tentpole determinism
// claim: the telemetry section — series and spans — and the rendered
// Chrome timeline are byte-identical whether the run executed on a
// 1-worker or an 8-worker pool.
func TestTelemetryParallelByteIdentity(t *testing.T) {
	spec := telemetrySpec()
	seq, err := testRunner(1).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	par, err := testRunner(8).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*system.Result{seq, par} {
		tel := res.Telemetry
		if tel == nil {
			t.Fatal("telemetry-enabled run produced no Telemetry section")
		}
		if tel.Samples == 0 || len(tel.Series) == 0 {
			t.Fatalf("empty telemetry: %d samples, %d series", tel.Samples, len(tel.Series))
		}
		if len(tel.Spans) == 0 {
			t.Fatal("timeline run recorded no spans")
		}
	}
	a, err := system.EncodeResult(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := system.EncodeResult(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("telemetry run diverged between parallelism 1 and 8")
	}
	var ta, tb bytes.Buffer
	if err := telemetry.WriteChromeTrace(&ta, seq.Telemetry); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteChromeTrace(&tb, par.Telemetry); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Fatal("rendered timeline diverged between parallelism 1 and 8")
	}
	if _, _, err := telemetry.ValidateChromeTrace(ta.Bytes()); err != nil {
		t.Fatalf("rendered timeline violates the trace-event invariants: %v", err)
	}
}

// TestTelemetryStoreRoundTrip runs a telemetry spec into a persistent
// store, recalls it with a fresh runner, and checks the recalled
// Result — telemetry section included — is byte-identical to the live
// one.
func TestTelemetryStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	open := func() *store.Disk {
		s, err := store.Open(dir, store.Fingerprint(system.ScaledConfig(), 7))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	spec := telemetrySpec()

	r1 := testRunner(1)
	r1.Store = open()
	live, err := r1.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	r2 := testRunner(1)
	r2.Store = open()
	r2.CacheOnly = true // a miss would be an error: this run must recall
	recalled, err := r2.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if recalled.Telemetry == nil || len(recalled.Telemetry.Spans) == 0 {
		t.Fatal("telemetry section did not survive the store round trip")
	}
	a, err := system.EncodeResult(live)
	if err != nil {
		t.Fatal(err)
	}
	b, err := system.EncodeResult(recalled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("store round trip changed the encoded Result")
	}
}
