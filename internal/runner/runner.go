package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"skybyte/internal/arrival"
	"skybyte/internal/fleet"
	"skybyte/internal/system"
	"skybyte/internal/tenant"
	"skybyte/internal/workloads"
)

// Event reports one completed simulation to OnEvent.
type Event struct {
	// Key is the executed spec's cache identity.
	Key string
	// Result is the completed measurement set.
	Result *system.Result
	// Wall is the host-side execution time of this run.
	Wall time.Duration
	// Done and Total report batch progress: Done counts specs completed
	// so far in the current RunAll batch — executions and memoised
	// recalls alike, so Done reaches Total when the batch settles. Both
	// are zero for bare Run calls.
	Done, Total int
	// Cached marks a recall: the Result was produced by an earlier
	// execution (Wall is zero) — either this runner's memo or, when
	// Stored is also set, the persistent Store. Bare Run memo hits emit
	// no event; batch hits do, for the progress accounting above.
	Cached bool
	// Stored marks a persistent-store hit: no simulation ran, the
	// result was decoded from Runner.Store.
	Stored bool
}

// Runner executes Specs against one base machine configuration. It
// memoizes by Spec.Key with singleflight semantics — concurrent callers
// of an identical spec share one execution — and bounds concurrent
// simulations with a worker pool of Parallelism slots.
//
// Completed results live in an in-memory Store (a MemStore) for the
// Runner's lifetime (a full paper campaign is a few hundred results);
// the singleflight machinery only tracks in-flight executions. When
// Store is set, it is a second, typically persistent, cache level:
// consulted before every execution and written through after — a hit
// skips the simulation entirely.
//
// A Runner is safe for concurrent use.
type Runner struct {
	base        system.Config
	seed        uint64
	parallelism int
	sem         chan struct{}

	// Store, when set, is the second-level result store (typically the
	// content-addressed disk store of internal/store). It is consulted
	// on every memo miss before simulating and receives every executed
	// result. Set it before the first Run/RunAll call races with it.
	Store Store

	// CacheOnly makes a Store miss an error instead of an execution —
	// the render-from-cache mode: tables may only be built from results
	// some earlier (possibly sharded) run persisted. Requires Store.
	CacheOnly bool

	// OnEvent, when set, observes each simulation as it completes. It is
	// invoked serially (never concurrently) but from worker goroutines,
	// for executions and persistent-store hits — memo hits are silent
	// outside batches. Set it before the first Run/RunAll call races
	// with it.
	OnEvent func(Event)

	evMu sync.Mutex // serializes OnEvent and orders Done counts

	mem *MemStore // lifetime memo of completed results

	mu       sync.Mutex
	inflight map[string]*call
}

// call is one singleflight execution slot.
type call struct {
	done chan struct{}
	res  *system.Result
	err  error
}

// New builds a runner over base. Workload streams are seeded with seed;
// parallelism <= 0 means GOMAXPROCS.
func New(base system.Config, seed uint64, parallelism int) *Runner {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		base:        base,
		seed:        seed,
		parallelism: parallelism,
		sem:         make(chan struct{}, parallelism),
		mem:         NewMemStore(),
		inflight:    make(map[string]*call),
	}
}

// Parallelism returns the pool size.
func (r *Runner) Parallelism() int { return r.parallelism }

// Run executes (or recalls) one spec. Concurrent calls with the same
// Key share a single execution; the result is memoized forever after.
// ctx only gates startup and waiting — a simulation that has begun runs
// to completion (individual runs are short; the pool stays consistent).
func (r *Runner) Run(ctx context.Context, spec Spec) (*system.Result, error) {
	res, _, err := r.run(ctx, spec, 0, nil)
	return res, err
}

// run is Run plus batch-progress plumbing: when counter is non-nil it is
// incremented under evMu and reported as Event.Done out of total.
func (r *Runner) run(ctx context.Context, spec Spec, total int, counter *int) (*system.Result, bool, error) {
	key := spec.Key()
	if res, ok := r.mem.Get(key); ok {
		if counter != nil {
			r.emit(Event{Key: key, Result: res, Total: total, Cached: true}, counter)
		}
		return res, true, nil
	}
	r.mu.Lock()
	if c, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		select {
		case <-c.done:
			if c.err == nil && counter != nil {
				r.emit(Event{Key: key, Result: c.res, Total: total, Cached: true}, counter)
			}
			return c.res, true, c.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	// Re-check the memo under mu: a leader inserts its result before
	// unregistering from inflight, so a key absent from inflight may
	// have completed since the lock-free check above.
	if res, ok := r.mem.Get(key); ok {
		r.mu.Unlock()
		if counter != nil {
			r.emit(Event{Key: key, Result: res, Total: total, Cached: true}, counter)
		}
		return res, true, nil
	}
	c := &call{done: make(chan struct{})}
	r.inflight[key] = c
	r.mu.Unlock()

	// Leader: consult the persistent store before taking a pool slot —
	// a hit costs a decode, not a simulation, so warm runs never
	// contend for simulation slots.
	if r.Store != nil {
		if res, ok := r.Store.Get(key); ok {
			c.res = res
			r.mem.Put(key, res)
			r.finish(key, c)
			if r.OnEvent != nil || counter != nil {
				r.emit(Event{Key: key, Result: res, Total: total, Cached: true, Stored: true}, counter)
			}
			return res, true, nil
		}
		if r.CacheOnly {
			c.err = fmt.Errorf("runner: design point %q not in the result store (cache-only render; run the missing shard first)", key)
			r.finish(key, c)
			return nil, false, c.err
		}
	}

	// Take a pool slot, honoring cancellation while queued. The upfront
	// Err check matters when both select cases are ready — an
	// already-cancelled context must never start a simulation.
	acquired := false
	if ctx.Err() == nil {
		select {
		case r.sem <- struct{}{}:
			acquired = true
		case <-ctx.Done():
		}
	}
	if !acquired {
		c.err = ctx.Err()
		r.finish(key, c)
		return nil, false, c.err
	}
	start := time.Now()
	c.res, c.err = r.execute(spec, key)
	wall := time.Since(start)
	<-r.sem
	if c.err == nil {
		// Insert before unregistering (see the re-check above), and
		// write through to the persistent store. A failed execution is
		// inserted nowhere, so a later caller may retry (e.g. after
		// fixing a workload name).
		r.mem.Put(key, c.res)
		if r.Store != nil {
			r.Store.Put(key, c.res)
		}
	}
	r.finish(key, c)
	if c.err == nil && (r.OnEvent != nil || counter != nil) {
		r.emit(Event{Key: key, Result: c.res, Wall: wall, Total: total}, counter)
	}
	return c.res, false, c.err
}

// applyFleet validates a spec's fleet axis and threads it into the run
// config (after Mutate, so spec-level Devices/Placement — which are part
// of the key — always win over mutation side effects). Specs without a
// fleet axis leave the config untouched.
func applyFleet(cfg *system.Config, spec Spec) error {
	if spec.Devices == 0 {
		// A placement with no device count would not fold into the key
		// (the fleet segment only renders for Devices > 0), so allowing
		// it would let two different machines share one cache identity.
		if spec.Placement != "" {
			return fmt.Errorf("runner: spec placement %q requires Devices >= 1", spec.Placement)
		}
		return nil
	}
	if err := fleet.Validate(spec.Devices, spec.Placement); err != nil {
		return fmt.Errorf("runner: %w", err)
	}
	cfg.Devices = spec.Devices
	cfg.Placement = spec.Placement
	return nil
}

// finish unregisters a completed (or failed) leader call and releases
// its waiters. The result, if any, must already be in the memo.
func (r *Runner) finish(key string, c *call) {
	r.mu.Lock()
	delete(r.inflight, key)
	r.mu.Unlock()
	close(c.done)
}

// emit serializes OnEvent and stamps batch progress.
func (r *Runner) emit(ev Event, counter *int) {
	r.evMu.Lock()
	defer r.evMu.Unlock()
	if counter != nil {
		*counter++
		ev.Done = *counter
	}
	if r.OnEvent != nil {
		r.OnEvent(ev)
	}
}

// RunAll executes every spec, de-duplicated, across the pool and returns
// results positionally: results[i] corresponds to specs[i], whatever
// order the workers finished in. The first error (unknown workload,
// cancellation) is returned after all goroutines settle; results for
// failed specs are nil.
func (r *Runner) RunAll(ctx context.Context, specs []Spec) ([]*system.Result, error) {
	results := make([]*system.Result, len(specs))
	errs := make([]error, len(specs))
	var counter int
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = r.run(ctx, specs[i], len(specs), &counter)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// execute performs one simulation: wire a fresh System from the mutated
// variant config and drive every thread stream to retirement. Mix specs
// resolve their tenant groups and attribute results per tenant.
func (r *Runner) execute(spec Spec, key string) (*system.Result, error) {
	if spec.Arrival != "" {
		return r.executeArrival(spec, key)
	}
	if spec.Mix != "" {
		return r.executeMix(spec, key)
	}
	w, err := workloads.ByName(spec.Workload)
	if err != nil {
		return nil, err
	}
	cfg := r.base.WithVariant(spec.Variant)
	if spec.Mutate != nil {
		spec.Mutate(&cfg)
	}
	if err := applyFleet(&cfg, spec); err != nil {
		return nil, err
	}
	threads := spec.Threads
	if threads == 0 {
		threads = ThreadsFor(cfg)
	}
	sys := system.New(cfg)
	per := spec.TotalInstr / uint64(threads)
	for i := 0; i < threads; i++ {
		sys.AddThread(w.Stream(i, r.seed), per)
	}
	res := sys.Run()
	res.CacheKey = key
	return res, nil
}

// executeMix runs one multi-tenant design point: the mix declares the
// thread layout (Spec.Threads, if set, must agree with it — a mix's
// thread counts are part of its definition, not a per-run knob).
func (r *Runner) executeMix(spec Spec, key string) (*system.Result, error) {
	m, err := tenant.ByName(spec.Mix)
	if err != nil {
		return nil, err
	}
	if spec.Threads != 0 && spec.Threads != m.TotalThreads() {
		return nil, fmt.Errorf("runner: mix %q declares %d threads; spec asks for %d (leave Threads 0 or match the mix)",
			spec.Mix, m.TotalThreads(), spec.Threads)
	}
	cfg := r.base.WithVariant(spec.Variant)
	if spec.Mutate != nil {
		spec.Mutate(&cfg)
	}
	if err := applyFleet(&cfg, spec); err != nil {
		return nil, err
	}
	sys := system.New(cfg)
	if err := m.Apply(sys, spec.TotalInstr, r.seed); err != nil {
		return nil, err
	}
	res := sys.Run()
	res.CacheKey = key
	return res, nil
}

// executeArrival runs one open-loop design point: the arrival spec
// declares the cohort thread layout (Spec.Threads, if set, must agree
// with it — a spec's thread counts are part of its definition, not a
// per-run knob).
func (r *Runner) executeArrival(spec Spec, key string) (*system.Result, error) {
	a, err := arrival.ByName(spec.Arrival)
	if err != nil {
		return nil, err
	}
	if err := a.Resolve(); err != nil {
		return nil, err
	}
	total, err := a.TotalThreads()
	if err != nil {
		return nil, err
	}
	if spec.Threads != 0 && spec.Threads != total {
		return nil, fmt.Errorf("runner: arrival spec %q declares %d threads; spec asks for %d (leave Threads 0 or match the spec)",
			spec.Arrival, total, spec.Threads)
	}
	cfg := r.base.WithVariant(spec.Variant)
	if spec.Mutate != nil {
		spec.Mutate(&cfg)
	}
	if err := applyFleet(&cfg, spec); err != nil {
		return nil, err
	}
	sys := system.New(cfg)
	if err := a.Apply(sys, spec.TotalInstr, r.seed, spec.arrivalScale()); err != nil {
		return nil, err
	}
	res := sys.Run()
	res.CacheKey = key
	return res, nil
}
