package runner

import (
	"context"
	"strings"
	"testing"

	"skybyte/internal/system"
)

func fleetSpec(workload string, v system.Variant, devices int, placement string) Spec {
	return Spec{Workload: workload, Variant: v, TotalInstr: 24_000, Threads: 8,
		Devices: devices, Placement: placement}
}

// TestKeyFleetSegment pins the fleet key-derivation scheme (DESIGN.md
// §9): Devices=0 keys are byte-identical to the pre-fleet format (a
// warm store stays warm across the upgrade), an unset placement keys as
// striped (the resolved default — the same machine must not get two
// cache identities), and changing only the placement policy re-keys.
func TestKeyFleetSegment(t *testing.T) {
	legacy := spec("bc", system.BaseCSSD, "x")
	if strings.Contains(legacy.Key(), "fleet=") {
		t.Fatalf("Devices=0 key grew a fleet segment: %q", legacy.Key())
	}
	k2 := fleetSpec("bc", system.BaseCSSD, 2, "striped")
	if !strings.Contains(k2.Key(), "|fleet=2:striped|") {
		t.Fatalf("fleet key = %q, want a |fleet=2:striped| segment", k2.Key())
	}
	if fleetSpec("bc", system.BaseCSSD, 2, "").Key() != k2.Key() {
		t.Fatal("unset placement and explicit striped keyed differently for the same machine")
	}
	// Surgical re-keying: only the placement (or device count) dimension
	// moves the key.
	if fleetSpec("bc", system.BaseCSSD, 2, "capacity").Key() == k2.Key() {
		t.Fatal("placement change did not re-key the spec")
	}
	if fleetSpec("bc", system.BaseCSSD, 4, "striped").Key() == k2.Key() {
		t.Fatal("device-count change did not re-key the spec")
	}
}

// TestFleetPlacementRequiresDevices pins the key-soundness guard: a
// placement without a device count would not fold into the key, so the
// runner must reject it rather than alias two machines onto one store
// entry.
func TestFleetPlacementRequiresDevices(t *testing.T) {
	r := testRunner(1)
	if _, err := r.Run(context.Background(), fleetSpec("bc", system.BaseCSSD, 0, "striped")); err == nil {
		t.Fatal("placement without devices accepted")
	}
	if _, err := r.Run(context.Background(), fleetSpec("bc", system.BaseCSSD, 99, "")); err == nil {
		t.Fatal("out-of-range device count accepted")
	}
	if _, err := r.Run(context.Background(), fleetSpec("bc", system.BaseCSSD, 2, "nope")); err == nil {
		t.Fatal("unknown placement accepted")
	}
	// The runner stays usable after the rejections.
	if _, err := r.Run(context.Background(), fleetSpec("bc", system.BaseCSSD, 2, "")); err != nil {
		t.Fatalf("valid fleet spec failed after rejections: %v", err)
	}
}

// TestFleetParallelByteIdentity pins placement determinism across
// worker-pool sizes: the same fleet design points executed at
// parallelism 1 and 8 encode byte-identically — device assignment,
// per-device splits, and migration counts included.
func TestFleetParallelByteIdentity(t *testing.T) {
	specs := []Spec{
		fleetSpec("bc", system.BaseCSSD, 2, "striped"),
		fleetSpec("bc", system.SkyByteFull, 4, "capacity"),
		fleetSpec("srad", system.SkyByteFull, 4, "hotcold"),
	}
	seq, err := testRunner(1).RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := testRunner(8).RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		a, err := system.EncodeResult(seq[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := system.EncodeResult(par[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("spec %d (%s): parallel fleet run diverged from sequential", i, specs[i].Key())
		}
		if len(seq[i].Devices) != specs[i].Devices {
			t.Errorf("spec %d: %d device rows, want %d", i, len(seq[i].Devices), specs[i].Devices)
		}
	}
}

// TestFleetStoreRoundTrip pins the store contract for fleet runs: a
// warm recall decodes to the same bytes the cold run produced —
// per-device section included — and placement-distinct specs occupy
// distinct store entries.
func TestFleetStoreRoundTrip(t *testing.T) {
	shared := NewMemStore()
	striped := fleetSpec("bc", system.SkyByteFull, 4, "striped")
	hotcold := fleetSpec("bc", system.SkyByteFull, 4, "hotcold")

	cold := testRunner(2)
	cold.Store = shared
	coldRes, err := cold.RunAll(context.Background(), []Spec{striped, hotcold})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Len() != 2 {
		t.Fatalf("store holds %d entries, want 2 (placement-distinct specs must not alias)", shared.Len())
	}

	warm := testRunner(2)
	warm.Store = shared
	warm.CacheOnly = true
	warmRes, err := warm.RunAll(context.Background(), []Spec{striped, hotcold})
	if err != nil {
		t.Fatal(err)
	}
	for i := range coldRes {
		a, err := system.EncodeResult(coldRes[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := system.EncodeResult(warmRes[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("spec %d: store round trip changed the result bytes", i)
		}
	}
}
