package runner

import (
	"sync"

	"skybyte/internal/system"
)

// Store is a pluggable result cache keyed by Spec.Key. The runner keeps
// its lifetime memo in one (a MemStore) and, when Runner.Store is set,
// consults a second, typically persistent, level around every
// execution: a hit skips the simulation entirely, a completed execution
// is inserted for future runs.
//
// Implementations must be safe for concurrent use. Get must return
// results equivalent to what executing the spec would produce —
// integrity checking (corruption, foreign configurations, stale codecs)
// is the implementation's job, and the correct response to any doubt is
// a miss: the runner then re-simulates, which is always sound.
type Store interface {
	// Get returns the cached result for key, or ok=false on any miss.
	Get(key string) (res *system.Result, ok bool)
	// Put inserts an executed result. Implementations that can fail
	// (e.g. disk stores) degrade to doing nothing: losing an insert
	// costs a future re-simulation, never correctness.
	Put(key string, res *system.Result)
}

// MemStore is the in-memory Store: a concurrency-safe map holding
// results for its lifetime. It is the runner's built-in memo level and
// is reusable as a write-through cache above slower stores.
type MemStore struct {
	mu sync.RWMutex
	m  map[string]*system.Result
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string]*system.Result)}
}

// Get returns the stored result pointer; callers share it and must
// treat it as immutable (results are never mutated after collection).
func (s *MemStore) Get(key string) (*system.Result, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.m[key]
	return r, ok
}

// Put stores res under key.
func (s *MemStore) Put(key string, res *system.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = res
}

// Len returns the number of stored results.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
