// Package runner executes simulation design points across a bounded
// worker pool. It is the execute half of the experiments layer's
// plan/execute split: figures declare the Specs they need, the runner
// de-duplicates them (singleflight memoization keyed by Spec.Key),
// saturates up to Parallelism cores, and hands results back in the
// caller's declaration order so every table renders byte-identically
// regardless of how many workers raced to produce it.
//
// Safety rests on two properties, both load-bearing:
//
//   - A system.System (and every component it wires) keeps all mutable
//     state per instance; distinct Systems may run on distinct
//     goroutines concurrently (see the reentrancy note on system.New).
//   - Each simulation is deterministic: the same Spec always yields the
//     same measurements, so memoizing by key is sound.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"skybyte/internal/arrival"
	"skybyte/internal/fleet"
	"skybyte/internal/system"
	"skybyte/internal/tenant"
	"skybyte/internal/workloads"
)

// Spec names one design point: a workload (or multi-tenant mix), a
// variant, a work budget, a thread count, and an optional config
// mutation. Two Specs with equal Key() are interchangeable; Mutate is
// deliberately excluded from the identity, so callers must give every
// distinct mutation a distinct Tag.
type Spec struct {
	// Workload is a Table I benchmark name (resolved via workloads.ByName).
	// Ignored when Mix is set.
	Workload string
	// Mix, when set, names a multi-tenant mix (resolved via
	// tenant.ByName): the run assigns each tenant group's workload to
	// its thread range and the Result carries per-tenant accounting.
	Mix string
	// Arrival, when set, names an open-loop arrival spec (resolved via
	// arrival.ByName): the run paces each cohort's threads with sampled
	// arrival instants and the Result carries per-SLO-class accounting.
	// Mutually exclusive with Workload/Mix.
	Arrival string
	// ArrivalScale multiplies every cohort rate of an Arrival run — the
	// campaign's offered-intensity axis (0 means 1). Part of the key.
	ArrivalScale float64
	// Variant is the design point applied to the base config.
	Variant system.Variant
	// TotalInstr is the total instruction budget, divided evenly among
	// threads (scaled per tenant by mix intensities) so every design
	// point executes the same program section.
	TotalInstr uint64
	// Threads is the software thread count; 0 means the paper default
	// (ThreadsFor) resolved after Mutate has run — or, for a mix, the
	// mix's declared total.
	Threads int
	// Tag distinguishes config mutations that share the same
	// workload/variant/budget, e.g. "thr10" for a threshold sweep cell.
	Tag string
	// Devices, when > 0, engages the fleet layer with that many SSD
	// backends (system.Config.Devices); Placement names the fleet
	// placement policy ("" = striped). Both fold into the key, so a
	// placement change re-keys exactly the fleet design points; 0 keeps
	// the legacy single-device key byte-identical.
	Devices   int
	Placement string
	// Mutate adjusts the variant config before the run (nil for none).
	// It must be deterministic and is identified solely by Tag.
	Mutate func(*system.Config)
}

// Key returns the spec's stable cache identity:
//
//	workload|variant|budget|threads|tag|src=<digest>
//
// (the first segment is "mix:<name>" for mix specs and
// "arr:<name>@<scale>" for arrival specs, folding the offered-intensity
// scale into the identity). The trailing src
// digest is the resolved generator's source identity — the workload's
// SourceID, or for a mix its fingerprint plus every member workload's
// SourceID — truncated to 16 hex chars. Folding the source into the
// key is what makes persistent-store invalidation *surgical*: editing
// one workload file re-keys exactly the design points that resolve it
// (and any mixes referencing it), while every other cached entry
// stays warm. An unresolvable name keys as src=unresolved; execution
// fails before simulating, and nothing is cached under that key.
func (s Spec) Key() string {
	name := s.Workload
	switch {
	case s.Arrival != "":
		name = fmt.Sprintf("arr:%s@%g", s.Arrival, s.arrivalScale())
	case s.Mix != "":
		name = "mix:" + s.Mix
	}
	// Fleet specs insert a |fleet=K:policy segment before the source
	// digest; the segment is omitted entirely for Devices == 0, keeping
	// every pre-fleet key byte-identical so warm stores stay warm. The
	// empty placement renders as its resolved default ("striped"), so ""
	// and "striped" share one cache entry — they run the same machine.
	fleetSeg := ""
	if s.Devices > 0 {
		placement := s.Placement
		if placement == "" {
			placement = string(fleet.Striped)
		}
		fleetSeg = fmt.Sprintf("|fleet=%d:%s", s.Devices, placement)
	}
	return fmt.Sprintf("%s|%s|%d|%d|%s%s|src=%s", name, s.Variant, s.TotalInstr, s.Threads, s.Tag, fleetSeg, s.sourceDigest())
}

// arrivalScale is the effective intensity scale (0 → 1).
func (s Spec) arrivalScale() float64 {
	if s.ArrivalScale == 0 {
		return 1
	}
	return s.ArrivalScale
}

// sourceDigest resolves the spec's generator source identity against
// the live registries and compresses it to 16 hex chars.
func (s Spec) sourceDigest() string {
	var src string
	if s.Arrival != "" {
		a, err := arrival.ByName(s.Arrival)
		if err != nil {
			return "unresolved"
		}
		src = a.SourceID()
	} else if s.Mix != "" {
		m, err := tenant.ByName(s.Mix)
		if err != nil {
			return "unresolved"
		}
		src = m.SourceID()
	} else {
		w, err := workloads.ByName(s.Workload)
		if err != nil {
			return "unresolved"
		}
		src = w.SourceID()
	}
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:8])
}

// ThreadsFor resolves the paper's §VI-A thread default: 24 threads on 8
// cores when the coordinated context switch (or the AstriFlash
// user-level switching baseline) is enabled, 8 threads otherwise.
func ThreadsFor(cfg system.Config) int {
	if cfg.CtxSwitchEnabled || cfg.Migration == system.MigrationAstri {
		return 3 * cfg.Cores
	}
	return cfg.Cores
}

// ShardSpecs returns the i-th of n deterministic, contiguous, balanced
// slices of specs. Every process slicing the same spec list computes
// identical boundaries, which is what lets shards coordinate on
// nothing but (i, n).
func ShardSpecs(specs []Spec, i, n int) []Spec {
	if n <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("runner: invalid shard %d/%d", i, n))
	}
	lo := len(specs) * i / n
	hi := len(specs) * (i + 1) / n
	return specs[lo:hi]
}

// ParseShard parses a CLI shard spec of the form "i/n" (0-based,
// 0 <= i < n), rejecting trailing garbage and out-of-range values.
func ParseShard(s string) (i, n int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if ok {
		var err1, err2 error
		i, err1 = strconv.Atoi(a)
		n, err2 = strconv.Atoi(b)
		ok = err1 == nil && err2 == nil && n >= 1 && i >= 0 && i < n
	}
	if !ok {
		return 0, 0, fmt.Errorf("invalid shard %q; want i/n with 0 <= i < n, e.g. 0/2", s)
	}
	return i, n, nil
}
