package runner

import (
	"context"
	"strings"
	"sync"
	"testing"

	"skybyte/internal/system"
	"skybyte/internal/tenant"
	"skybyte/internal/workloads"
)

func testRunner(parallelism int) *Runner {
	return New(system.ScaledConfig(), 7, parallelism)
}

func spec(workload string, v system.Variant, tag string) Spec {
	return Spec{Workload: workload, Variant: v, TotalInstr: 24_000, Threads: 8, Tag: tag}
}

func TestKeyStable(t *testing.T) {
	s := spec("bc", system.BaseCSSD, "x")
	wantPrefix := "bc|Base-CSSD|24000|8|x|src="
	if !strings.HasPrefix(s.Key(), wantPrefix) {
		t.Fatalf("Key() = %q, want prefix %q", s.Key(), wantPrefix)
	}
	if s.Key() != spec("bc", system.BaseCSSD, "x").Key() {
		t.Fatal("identical specs must yield identical keys")
	}
	if spec("bc", system.BaseCSSD, "y").Key() == s.Key() {
		t.Fatal("distinct tags must yield distinct keys")
	}
	if strings.HasSuffix(spec("bc", system.BaseCSSD, "x").Key(), "unresolved") {
		t.Fatal("built-in workload keyed as unresolved")
	}
	if !strings.HasSuffix(spec("no-such", system.BaseCSSD, "").Key(), "src=unresolved") {
		t.Fatal("unknown workload should key as unresolved")
	}
}

// TestKeyFoldsWorkloadSource pins the surgical-invalidation scheme:
// the spec key folds the resolved workload's source identity, so a
// replaced definition re-keys exactly its own specs — and registering
// an unrelated workload changes no existing key at all.
func TestKeyFoldsWorkloadSource(t *testing.T) {
	defOf := func(theta float64) workloads.Def {
		return workloads.Def{
			Format:         workloads.DefFormatVersion,
			Name:           "keyfold-w",
			FootprintPages: 2048,
			Regions:        []workloads.RegionDef{{Name: "r", Start: 0, Size: 1}},
			Phases: []workloads.PhaseDef{{Ops: []workloads.OpDef{
				{Op: "load", Region: "r", Kernel: workloads.KernelZipf, Theta: theta},
				{Op: "compute", Min: 4},
			}}},
		}
	}
	if err := workloads.Register(defOf(0.8).MustSpec()); err != nil {
		t.Fatal(err)
	}
	bcBefore := spec("bc", system.BaseCSSD, "").Key()
	regBefore := spec("keyfold-w", system.BaseCSSD, "").Key()

	// Edit the registered definition (the file-editing loop): its own
	// key must change, every other key must not.
	if err := workloads.Register(defOf(0.7).MustSpec()); err != nil {
		t.Fatal(err)
	}
	if got := spec("keyfold-w", system.BaseCSSD, "").Key(); got == regBefore {
		t.Fatal("edited definition kept its old spec key (stale store entries would serve)")
	}
	if got := spec("bc", system.BaseCSSD, "").Key(); got != bcBefore {
		t.Fatalf("editing one workload re-keyed an unrelated spec: %q vs %q", got, bcBefore)
	}

	// A mix referencing the edited workload re-keys too.
	m := tenant.Mix{
		Format: tenant.MixFormatVersion,
		Name:   "keyfold-mix",
		Tenants: []tenant.TenantDef{
			{Workload: "keyfold-w", Threads: 2},
			{Workload: "bc", Threads: 2},
		},
	}
	if err := tenant.Register(m); err != nil {
		t.Fatal(err)
	}
	mixSpec := Spec{Mix: "keyfold-mix", Variant: system.BaseCSSD, TotalInstr: 24_000, Threads: 4}
	mixBefore := mixSpec.Key()
	if !strings.HasPrefix(mixBefore, "mix:keyfold-mix|Base-CSSD|24000|4||src=") {
		t.Fatalf("mix key format unexpected: %q", mixBefore)
	}
	if err := workloads.Register(defOf(0.9).MustSpec()); err != nil {
		t.Fatal(err)
	}
	if mixSpec.Key() == mixBefore {
		t.Fatal("editing a member workload did not re-key the mix spec")
	}
}

func TestThreadsFor(t *testing.T) {
	cfg := system.ScaledConfig()
	if n := ThreadsFor(cfg.WithVariant(system.BaseCSSD)); n != cfg.Cores {
		t.Errorf("BaseCSSD threads = %d, want %d", n, cfg.Cores)
	}
	if n := ThreadsFor(cfg.WithVariant(system.SkyByteFull)); n != 3*cfg.Cores {
		t.Errorf("SkyByteFull threads = %d, want %d", n, 3*cfg.Cores)
	}
	if n := ThreadsFor(cfg.WithVariant(system.AstriFlashCXL)); n != 3*cfg.Cores {
		t.Errorf("AstriFlashCXL threads = %d, want %d", n, 3*cfg.Cores)
	}
}

func TestRunMemoizes(t *testing.T) {
	r := testRunner(2)
	execs := 0
	r.OnEvent = func(Event) { execs++ }
	a, err := r.Run(context.Background(), spec("bc", system.BaseCSSD, ""))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(context.Background(), spec("bc", system.BaseCSSD, ""))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Run of the same spec returned a different result")
	}
	if execs != 1 {
		t.Fatalf("executed %d times, want 1", execs)
	}
	if a.CacheKey != spec("bc", system.BaseCSSD, "").Key() {
		t.Fatalf("CacheKey = %q", a.CacheKey)
	}
}

func TestRunAllDedupAndOrdering(t *testing.T) {
	r := testRunner(4)
	var mu sync.Mutex
	execs, cached, lastDone := 0, 0, 0
	r.OnEvent = func(ev Event) {
		mu.Lock()
		if ev.Cached {
			cached++
		} else {
			execs++
		}
		if ev.Done > lastDone {
			lastDone = ev.Done
		}
		if ev.Total != 4 {
			t.Errorf("Event.Total = %d, want 4", ev.Total)
		}
		mu.Unlock()
	}
	specs := []Spec{
		spec("bc", system.BaseCSSD, ""),
		spec("srad", system.BaseCSSD, ""),
		spec("bc", system.BaseCSSD, ""), // duplicate of [0]
		spec("bc", system.DRAMOnly, ""),
	}
	res, err := r.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	for i, s := range specs {
		if res[i] == nil || res[i].CacheKey != s.Key() {
			t.Fatalf("results[%d] does not match specs[%d]", i, i)
		}
	}
	if res[0] != res[2] {
		t.Fatal("duplicate specs did not share one execution")
	}
	if execs != 3 {
		t.Fatalf("executed %d simulations, want 3 (singleflight)", execs)
	}
	if cached != 1 {
		t.Fatalf("cached recalls = %d, want 1 (the duplicate spec)", cached)
	}
	if lastDone != 4 {
		t.Fatalf("final Event.Done = %d, want 4 (hits count toward progress)", lastDone)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	specs := []Spec{
		spec("bc", system.BaseCSSD, ""),
		spec("bc", system.SkyByteFull, ""),
		spec("srad", system.BaseCSSD, ""),
		spec("srad", system.SkyByteFull, ""),
	}
	seq, err := testRunner(1).RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := testRunner(8).RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if seq[i].ExecTime != par[i].ExecTime || seq[i].Instructions != par[i].Instructions ||
			seq[i].LLCMisses != par[i].LLCMisses || seq[i].CtxSwitches != par[i].CtxSwitches {
			t.Errorf("spec %d (%s): parallel run diverged from sequential", i, specs[i].Key())
		}
	}
}

func TestUnknownWorkloadErrorsWithoutPoisoning(t *testing.T) {
	r := testRunner(1)
	if _, err := r.Run(context.Background(), spec("nope", system.BaseCSSD, "")); err == nil {
		t.Fatal("unknown workload accepted")
	}
	// The failed key must not be cached: a good spec sharing the runner
	// still works, and retrying the bad one re-reports the error.
	if _, err := r.Run(context.Background(), spec("bc", system.BaseCSSD, "")); err != nil {
		t.Fatalf("good spec failed after bad one: %v", err)
	}
	if _, err := r.Run(context.Background(), spec("nope", system.BaseCSSD, "")); err == nil {
		t.Fatal("error was cached instead of re-evaluated")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := testRunner(1)
	if _, err := r.Run(ctx, spec("bc", system.BaseCSSD, "")); err == nil {
		t.Fatal("cancelled context did not stop the run")
	}
	// A fresh context retries cleanly.
	if _, err := r.Run(context.Background(), spec("bc", system.BaseCSSD, "")); err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
}

// countingStore wraps a MemStore with hit/miss/put accounting so tests
// can see exactly how the runner drives its second-level store.
type countingStore struct {
	*MemStore
	mu               sync.Mutex
	gets, hits, puts int
}

func (s *countingStore) Get(key string) (*system.Result, bool) {
	res, ok := s.MemStore.Get(key)
	s.mu.Lock()
	s.gets++
	if ok {
		s.hits++
	}
	s.mu.Unlock()
	return res, ok
}

func (s *countingStore) Put(key string, res *system.Result) {
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	s.MemStore.Put(key, res)
}

// TestStoreWarmRunSkipsSimulation is the tentpole contract: a second
// runner sharing the first's store performs zero simulations, every
// result arriving as a Stored event, and returns identical
// measurements.
func TestStoreWarmRunSkipsSimulation(t *testing.T) {
	shared := &countingStore{MemStore: NewMemStore()}
	specs := []Spec{
		spec("bc", system.BaseCSSD, ""),
		spec("srad", system.SkyByteFull, ""),
	}

	cold := testRunner(2)
	cold.Store = shared
	coldRes, err := cold.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if shared.puts != len(specs) {
		t.Fatalf("cold run inserted %d results, want %d", shared.puts, len(specs))
	}

	warm := testRunner(2)
	warm.Store = shared
	var mu sync.Mutex
	sims, stored := 0, 0
	warm.OnEvent = func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Stored {
			stored++
		} else if !ev.Cached {
			sims++
		}
	}
	warmRes, err := warm.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if sims != 0 {
		t.Fatalf("warm run simulated %d times, want 0", sims)
	}
	if stored != len(specs) {
		t.Fatalf("warm run emitted %d Stored events, want %d", stored, len(specs))
	}
	for i := range specs {
		if coldRes[i].ExecTime != warmRes[i].ExecTime || coldRes[i].Instructions != warmRes[i].Instructions {
			t.Errorf("spec %d: warm result diverges from cold", i)
		}
	}

	// Within the warm runner, a repeat Run must come from the memo, not
	// another store read.
	before := shared.gets
	if _, err := warm.Run(context.Background(), specs[0]); err != nil {
		t.Fatal(err)
	}
	if shared.gets != before {
		t.Error("memoised recall consulted the second-level store")
	}
}

// TestCacheOnlyMissErrors pins the render-from-cache contract: a miss
// is an error naming the key, never a silent simulation, and the error
// does not poison the key for a later non-cache-only runner sharing
// the store.
func TestCacheOnlyMissErrors(t *testing.T) {
	shared := &countingStore{MemStore: NewMemStore()}
	r := testRunner(1)
	r.Store = shared
	r.CacheOnly = true
	s := spec("bc", system.BaseCSSD, "")
	if _, err := r.Run(context.Background(), s); err == nil {
		t.Fatal("cache-only miss did not error")
	}
	// Executing normally afterwards works and feeds the store...
	r.CacheOnly = false
	if _, err := r.Run(context.Background(), s); err != nil {
		t.Fatalf("retry after cache-only miss failed: %v", err)
	}
	// ...and cache-only now succeeds from the store on a fresh runner.
	r2 := testRunner(1)
	r2.Store = shared
	r2.CacheOnly = true
	if _, err := r2.Run(context.Background(), s); err != nil {
		t.Fatalf("cache-only read of a populated store failed: %v", err)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store hit")
	}
	res := &system.Result{Variant: "x"}
	s.Put("k", res)
	got, ok := s.Get("k")
	if !ok || got != res {
		t.Fatal("MemStore did not return the stored pointer")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestRunAllConcurrentCallers(t *testing.T) {
	// Two goroutines race identical batches through one runner: the
	// singleflight layer must hand both the same memoized results.
	r := testRunner(4)
	specs := []Spec{
		spec("bc", system.BaseCSSD, ""),
		spec("srad", system.SkyByteFull, ""),
	}
	var wg sync.WaitGroup
	out := make([][]*system.Result, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.RunAll(context.Background(), specs)
			if err != nil {
				t.Error(err)
			}
			out[i] = res
		}(i)
	}
	wg.Wait()
	for i := range specs {
		if out[0][i] != out[1][i] {
			t.Fatalf("caller results diverge at %d", i)
		}
	}
}

// TestMixSpecExecutes pins the runner's multi-tenant path: a mix spec
// resolves its tenant groups, runs them co-located, and returns a
// Result whose Tenants slice matches the mix in order and thread
// counts — with memoization working exactly as for workload specs.
func TestMixSpecExecutes(t *testing.T) {
	r := testRunner(2)
	s := Spec{Mix: "graph-vs-log", Variant: system.BaseCSSD, TotalInstr: 16_000}
	res, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tenant.ByName("graph-vs-log")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != len(m.Tenants) {
		t.Fatalf("got %d tenant results, want %d", len(res.Tenants), len(m.Tenants))
	}
	for i, tr := range res.Tenants {
		if tr.Workload != m.Tenants[i].Workload || tr.Threads != m.Tenants[i].Threads {
			t.Fatalf("tenant %d = %q/%d threads, want %q/%d", i, tr.Workload, tr.Threads, m.Tenants[i].Workload, m.Tenants[i].Threads)
		}
		if tr.Instructions == 0 || tr.ExecTime == 0 {
			t.Fatalf("tenant %d made no progress: %+v", i, tr)
		}
	}
	again, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if again != res {
		t.Fatal("mix spec not memoized")
	}
	// Threads, when set, must agree with the mix declaration.
	bad := s
	bad.Threads = m.TotalThreads() + 1
	if _, err := r.Run(context.Background(), bad); err == nil {
		t.Fatal("mismatched Threads accepted for a mix spec")
	}
	if _, err := r.Run(context.Background(), Spec{Mix: "no-such-mix", Variant: system.BaseCSSD, TotalInstr: 1000}); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

// TestMixParallelByteIdentity pins per-tenant determinism across
// worker-pool sizes: the same mixed design points executed at
// parallelism 1 and 8 must produce byte-identical encoded Results —
// per-tenant slices included.
func TestMixParallelByteIdentity(t *testing.T) {
	specs := []Spec{
		{Mix: "graph-vs-log", Variant: system.BaseCSSD, TotalInstr: 16_000},
		{Mix: "graph-vs-log", Variant: system.SkyByteFull, TotalInstr: 16_000},
		{Mix: "scan-vs-point", Variant: system.SkyByteFull, TotalInstr: 16_000},
	}
	seq, err := testRunner(1).RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := testRunner(8).RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		a, err := system.EncodeResult(seq[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := system.EncodeResult(par[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("spec %d (%s): parallel mixed run diverged from sequential", i, specs[i].Key())
		}
		if len(seq[i].Tenants) == 0 {
			t.Errorf("spec %d: no per-tenant results", i)
		}
	}
}

func TestParseShard(t *testing.T) {
	i, n, err := ParseShard("1/4")
	if err != nil || i != 1 || n != 4 {
		t.Fatalf("ParseShard(1/4) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "1", "1/2/4", "2/2", "-1/2", "a/b", "0/0", "1/2x", "x1/2"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard accepted %q", bad)
		}
	}
}
