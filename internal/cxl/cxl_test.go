package cxl

import (
	"testing"

	"skybyte/internal/sim"
)

func TestOpcodeNames(t *testing.T) {
	if MemRd.String() != "MemRd" || SkyByteDelay.String() != "SkyByte-Delay" || MemData.String() != "MemData" {
		t.Fatal("opcode names")
	}
}

func TestNDREncoding(t *testing.T) {
	// Fig. 8: Cmp = 000b, SkyByte-Delay claims reserved encoding 111b.
	if NDREncoding(Cmp) != 0 {
		t.Fatal("Cmp encoding")
	}
	if NDREncoding(SkyByteDelay) != 0b111 {
		t.Fatal("SkyByte-Delay must use the reserved 111b encoding")
	}
}

func TestUnloadedLatency(t *testing.T) {
	var eng sim.Engine
	l := New(&eng, DefaultConfig())
	if l.RoundTripLatency() != 40*sim.Nanosecond {
		t.Fatalf("round trip = %v, want 40ns (Table II)", l.RoundTripLatency())
	}
	var at sim.Time
	l.ToDevice(HeaderBytes, func() { at = eng.Now() })
	eng.Run()
	want := l.serialize(HeaderBytes) + 20*sim.Nanosecond
	if at != want {
		t.Fatalf("arrival = %v, want %v", at, want)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	var eng sim.Engine
	l := New(&eng, Config{LatencyEachWay: 0, BytesPerNs: 16})
	// Two 80 B data messages serialise back to back: 5 ns each.
	var first, second sim.Time
	l.ToHost(DataBytes, func() { first = eng.Now() })
	l.ToHost(DataBytes, func() { second = eng.Now() })
	eng.Run()
	if first != 5*sim.Nanosecond || second != 10*sim.Nanosecond {
		t.Fatalf("completions = %v, %v; want 5ns, 10ns", first, second)
	}
}

func TestDirectionsIndependent(t *testing.T) {
	var eng sim.Engine
	l := New(&eng, Config{LatencyEachWay: 0, BytesPerNs: 16})
	var tx, rx sim.Time
	l.ToDevice(DataBytes, func() { tx = eng.Now() })
	l.ToHost(DataBytes, func() { rx = eng.Now() })
	eng.Run()
	if tx != rx {
		t.Fatalf("full duplex broken: tx=%v rx=%v", tx, rx)
	}
}

func TestStatsAndUtilization(t *testing.T) {
	var eng sim.Engine
	l := New(&eng, DefaultConfig())
	l.ToDevice(HeaderBytes, func() {})
	l.ToHost(DataBytes, func() {})
	eng.Run()
	s := l.Stats()
	if s.ToDeviceMsgs != 1 || s.ToHostMsgs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ToDeviceBytes != HeaderBytes || s.ToHostBytes != DataBytes {
		t.Fatalf("bytes = %+v", s)
	}
	tx, rx := l.Utilization()
	if tx <= 0 || rx <= 0 || tx > 1 || rx > 1 {
		t.Fatalf("utilization = %v, %v", tx, rx)
	}
	if l.DeliveredBytesPerSecond() <= 0 {
		t.Fatal("goodput should be positive")
	}
}
