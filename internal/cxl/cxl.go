// Package cxl models the CXL.mem transport between the host and the SSD:
// message vocabulary (MemRd/MemWr requests, MemData responses, and the
// No-Data-Response opcodes of Fig. 8 including SkyByte-Delay), plus a
// bandwidth- and latency-accurate link model for the PCIe 5.0 x4 interface
// of Table II (16 GB/s per direction, 40 ns protocol latency round trip).
package cxl

import "skybyte/internal/sim"

// Opcode identifies a CXL.mem message type. The NDR opcodes follow Fig. 8:
// SkyByte claims one of the reserved encodings (111b) for SkyByte-Delay.
type Opcode uint8

// Message opcodes.
const (
	MemRd   Opcode = iota // master-to-slave read request
	MemWr                 // master-to-slave write (writeback) request
	MemData               // slave-to-master data response
	Cmp                   // NDR 000b: plain completion
	// SkyByteDelay is the paper's new NDR opcode (encoding 111b): the
	// request will suffer a long access delay; the host should context
	// switch instead of waiting (§III-A C2).
	SkyByteDelay
)

// String names the opcode.
func (o Opcode) String() string {
	switch o {
	case MemRd:
		return "MemRd"
	case MemWr:
		return "MemWr"
	case MemData:
		return "MemData"
	case Cmp:
		return "Cmp"
	case SkyByteDelay:
		return "SkyByte-Delay"
	}
	return "?"
}

// NDREncoding returns the 3-bit opcode encoding of Fig. 8 for NDR messages.
func NDREncoding(o Opcode) uint8 {
	switch o {
	case Cmp:
		return 0b000
	case SkyByteDelay:
		return 0b111
	default:
		return 0b101 // reserved
	}
}

// Wire sizes used for bandwidth shaping: a header-only message (requests
// without data, NDR responses) and a data-carrying message (64 B payload
// plus header). CXL flits are 64 B plus 2 B CRC; we round to whole bytes.
const (
	HeaderBytes = 16
	DataBytes   = 64 + HeaderBytes
)

// Config sets the link parameters.
type Config struct {
	// LatencyEachWay is the protocol latency per direction; Table II's
	// "40 ns protocol latency" is the round trip, so the default is 20 ns.
	LatencyEachWay sim.Time
	// BytesPerNs is the per-direction bandwidth (PCIe 5.0 x4 ≈ 16 GB/s =
	// 16 B/ns).
	BytesPerNs float64
}

// DefaultConfig mirrors Table II.
func DefaultConfig() Config {
	return Config{LatencyEachWay: 20 * sim.Nanosecond, BytesPerNs: 16}
}

// Stats counts link traffic.
type Stats struct {
	ToDeviceMsgs  uint64
	ToDeviceBytes uint64
	ToHostMsgs    uint64
	ToHostBytes   uint64
	BusyTx        sim.Time
	BusyRx        sim.Time
}

// Link is one full-duplex CXL link.
type Link struct {
	eng    *sim.Engine
	cfg    Config
	txFree sim.Time // host→device direction
	rxFree sim.Time // device→host direction
	stats  Stats
}

// New builds a link.
func New(eng *sim.Engine, cfg Config) *Link {
	return &Link{eng: eng, cfg: cfg}
}

// Stats returns a copy of the traffic counters.
func (l *Link) Stats() Stats { return l.stats }

// serialize computes how long size bytes occupy a direction.
func (l *Link) serialize(size int) sim.Time {
	return sim.Time(float64(size) / l.cfg.BytesPerNs * float64(sim.Nanosecond))
}

// ToDevice delivers a message of size bytes to the device, firing done at
// arrival time. Messages queue behind earlier traffic in this direction.
func (l *Link) ToDevice(size int, done func()) {
	start := sim.Max(l.eng.Now(), l.txFree)
	ser := l.serialize(size)
	l.txFree = start + ser
	l.stats.BusyTx += ser
	l.stats.ToDeviceMsgs++
	l.stats.ToDeviceBytes += uint64(size)
	if done != nil {
		l.eng.At(l.txFree+l.cfg.LatencyEachWay, done)
	}
}

// ToHost delivers a message of size bytes to the host.
func (l *Link) ToHost(size int, done func()) {
	start := sim.Max(l.eng.Now(), l.rxFree)
	ser := l.serialize(size)
	l.rxFree = start + ser
	l.stats.BusyRx += ser
	l.stats.ToHostMsgs++
	l.stats.ToHostBytes += uint64(size)
	if done != nil {
		l.eng.At(l.rxFree+l.cfg.LatencyEachWay, done)
	}
}

// TxBacklog returns how far the host→device direction is committed
// beyond instant now — the serialization backlog a message entering
// the link at now would queue behind. Zero when the direction is idle.
func (l *Link) TxBacklog(now sim.Time) sim.Time {
	if l.txFree > now {
		return l.txFree - now
	}
	return 0
}

// RxBacklog is TxBacklog for the device→host direction.
func (l *Link) RxBacklog(now sim.Time) sim.Time {
	if l.rxFree > now {
		return l.rxFree - now
	}
	return 0
}

// RoundTripLatency returns the unloaded protocol round trip.
func (l *Link) RoundTripLatency() sim.Time { return 2 * l.cfg.LatencyEachWay }

// Utilization returns (tx, rx) busy fractions since t=0.
func (l *Link) Utilization() (tx, rx float64) {
	el := l.eng.Now()
	if el == 0 {
		return 0, 0
	}
	return float64(l.stats.BusyTx) / float64(el), float64(l.stats.BusyRx) / float64(el)
}

// DeliveredBytesPerSecond returns the achieved device-to-host goodput,
// the "SSD bandwidth utilization" line of Fig. 15.
func (l *Link) DeliveredBytesPerSecond() float64 {
	el := l.eng.Now().Seconds()
	if el == 0 {
		return 0
	}
	return float64(l.stats.ToHostBytes+l.stats.ToDeviceBytes) / el
}
