// Package arrival is the open-loop traffic engine: it turns the
// simulator's pinned closed loops into arrival-driven request streams.
// A Spec attaches named client cohorts — each with its own workload or
// mix, thread budget, interarrival process, and SLO class — onto
// tenant groups; threads then replay their traces in fixed-size
// requests released at sampled arrival instants (osched.Gate), and the
// Result reports per-class latency percentiles, goodput vs. offered
// load, and queue delay. OpenCXD (PAPERS.md) argues CXL-SSD evaluation
// must be driven by realistic request streams rather than pinned
// microloops; LMB motivates the shared-device, many-client scenario
// where per-class tail latency is the figure of merit.
//
// Everything is deterministic: samplers are pure functions of a seed
// (splitmix-seeded xorshift128+, one stream per thread), so an
// arrival-driven run is byte-identical at any parallelism or sharding.
// This file holds the interarrival samplers and the time-varying
// intensity schedule; spec.go holds the declarative cohort spec and
// its registry.
package arrival

import (
	"fmt"
	"math"

	"skybyte/internal/sim"
	"skybyte/internal/trace"
)

// Interarrival distributions. Every process is specified by its *mean*
// rate (requests/second per thread); the distribution shapes the
// variability around that mean: deterministic is a metronome (CV 0),
// poisson the memoryless M/G reference (CV 1), gamma with shape k<1 is
// burstier than poisson (CV 1/√k) and k>1 smoother, and weibull with
// shape k<1 gives the heavy-tailed gaps of ServeGen-style production
// traces.
const (
	DistPoisson       = "poisson"
	DistGamma         = "gamma"
	DistWeibull       = "weibull"
	DistDeterministic = "deterministic"
)

// Process is one cohort's interarrival distribution.
type Process struct {
	// Dist is one of the Dist* names.
	Dist string `json:"dist"`
	// Rate is the mean request rate per thread, requests/second, at
	// intensity scale 1.
	Rate float64 `json:"rate"`
	// Shape is the gamma/weibull shape parameter k (default 1; must be
	// unset for poisson/deterministic).
	Shape float64 `json:"shape,omitempty"`
}

// shape is the effective shape parameter (0 → 1).
func (p Process) shape() float64 {
	if p.Shape == 0 {
		return 1
	}
	return p.Shape
}

// validate checks the process in the context of cohort at (an error
// prefix like `arrival: "spec": cohort 0 (name)`).
func (p Process) validate(at string) error {
	switch p.Dist {
	case DistPoisson, DistDeterministic:
		if p.Shape != 0 {
			return fmt.Errorf("%s: %s takes no shape parameter", at, p.Dist)
		}
	case DistGamma, DistWeibull:
		if p.Shape < 0 {
			return fmt.Errorf("%s: negative shape", at)
		}
	case "":
		return fmt.Errorf("%s: missing a dist (valid: %s, %s, %s, %s)", at, DistPoisson, DistGamma, DistWeibull, DistDeterministic)
	default:
		return fmt.Errorf("%s: unknown dist %q (valid: %s, %s, %s, %s)", at, p.Dist, DistPoisson, DistGamma, DistWeibull, DistDeterministic)
	}
	if p.Rate <= 0 {
		return fmt.Errorf("%s: rate must be positive (requests/second per thread)", at)
	}
	return nil
}

// CV returns the distribution's analytic coefficient of variation
// (stddev/mean of the interarrival gap) — the statistical test battery
// checks sampled CVs against these closed forms.
func (p Process) CV() float64 {
	switch p.Dist {
	case DistDeterministic:
		return 0
	case DistPoisson:
		return 1
	case DistGamma:
		return 1 / math.Sqrt(p.shape())
	case DistWeibull:
		k := p.shape()
		g1 := math.Gamma(1 + 1/k)
		g2 := math.Gamma(1 + 2/k)
		return math.Sqrt(g2/(g1*g1) - 1)
	}
	return 0
}

// Window is one segment of a time-varying intensity schedule: for
// DurUS microseconds the cohort's rate is multiplied by a scale that
// ramps linearly from Scale to EndScale (flat when EndScale is unset).
// The windows cycle, so one spec expresses bursts, diurnal shifts, and
// warmup→build→query phase sequences alike.
type Window struct {
	DurUS    float64 `json:"dur_us"`
	Scale    float64 `json:"scale"`
	EndScale float64 `json:"end_scale,omitempty"`
}

// endScale is the effective end-of-window scale (0 → flat at Scale).
func (w Window) endScale() float64 {
	if w.EndScale == 0 {
		return w.Scale
	}
	return w.EndScale
}

// validateWindows checks a schedule: every window positive-length and
// non-negative, and the cycle carrying traffic somewhere.
func validateWindows(ws []Window, at string) error {
	if len(ws) == 0 {
		return nil
	}
	area := 0.0
	for i, w := range ws {
		if w.DurUS <= 0 {
			return fmt.Errorf("%s: window %d: dur_us must be positive", at, i)
		}
		if w.Scale < 0 || w.EndScale < 0 {
			return fmt.Errorf("%s: window %d: negative scale", at, i)
		}
		area += (w.Scale + w.endScale()) / 2 * w.DurUS
	}
	if area <= 0 {
		return fmt.Errorf("%s: schedule is silent (every window has scale 0)", at)
	}
	return nil
}

// MeanScale returns the duration-weighted mean intensity scale over
// one cycle of ws (1 for an empty schedule) — the factor relating a
// process's base rate to the schedule's long-run offered rate.
func MeanScale(ws []Window) float64 {
	if len(ws) == 0 {
		return 1
	}
	area, dur := 0.0, 0.0
	for _, w := range ws {
		area += (w.Scale + w.endScale()) / 2 * w.DurUS
		dur += w.DurUS
	}
	if dur == 0 {
		return 1
	}
	return area / dur
}

// Gen samples successive absolute arrival instants for one thread: a
// unit-mean interarrival draw from the process's distribution,
// stretched by the mean gap and inverted through the (piecewise-linear)
// intensity schedule, so high-scale windows pack arrivals densely and
// silent windows pass none. It implements osched.ArrivalSource.
type Gen struct {
	rng  *trace.RNG
	dist string
	// shape and invG1 parameterize gamma/weibull draws (invG1 =
	// 1/Γ(1+1/k) normalizes weibull to unit mean).
	shape float64
	invG1 float64
	// meanPs is the mean interarrival gap in picoseconds at scale 1,
	// rate-scale included.
	meanPs float64

	windows []Window
	t       float64 // absolute instant of the last arrival, ps
	widx    int     // current window
	woff    float64 // offset into it, ps
}

// NewGen builds a sampler for process p under schedule windows, with
// every rate multiplied by rateScale (the campaign's intensity axis),
// seeded independently per seed. The inputs must already validate
// (Spec.Validate does); a non-positive effective rate panics.
func NewGen(p Process, windows []Window, rateScale float64, seed uint64) *Gen {
	if rateScale <= 0 {
		rateScale = 1
	}
	rate := p.Rate * rateScale
	if rate <= 0 {
		panic(fmt.Sprintf("arrival: non-positive rate %v", rate))
	}
	g := &Gen{
		rng:     trace.NewRNG(seed),
		dist:    p.Dist,
		shape:   p.shape(),
		meanPs:  1e12 / rate,
		windows: windows,
	}
	if p.Dist == DistWeibull {
		g.invG1 = 1 / math.Gamma(1+1/g.shape)
	}
	return g
}

// draw samples one unit-mean interarrival gap (dimensionless).
func (g *Gen) draw() float64 {
	switch g.dist {
	case DistDeterministic:
		return 1
	case DistPoisson:
		return expSample(g.rng)
	case DistGamma:
		return gammaSample(g.rng, g.shape) / g.shape
	case DistWeibull:
		return math.Pow(expSample(g.rng), 1/g.shape) * g.invG1
	}
	panic("arrival: unknown dist " + g.dist)
}

// expSample draws a unit-mean exponential via inversion. 1-U lies in
// (0,1], so the log never sees zero.
func expSample(rng *trace.RNG) float64 {
	return -math.Log(1 - rng.Float64())
}

// normSample draws a standard normal via Box-Muller (the cosine half;
// the sine partner is discarded to keep the draw count per sample
// fixed, which golden-seed tests rely on).
func normSample(rng *trace.RNG) float64 {
	u1 := 1 - rng.Float64()
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// gammaSample draws gamma(k, 1) via Marsaglia-Tsang squeeze for k >= 1
// and the U^(1/k) boost for k < 1.
func gammaSample(rng *trace.RNG, k float64) float64 {
	if k < 1 {
		u := 1 - rng.Float64()
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := normSample(rng)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Next returns the next absolute arrival instant. With a schedule, the
// unit draw is converted to a target intensity *area* (draw × mean gap)
// and the cursor advances until the integral of scale(t) covers it:
// flat segments divide, ramps solve the quadratic ∫(s0+slope·u)du =
// area. Silent windows contribute nothing and are skipped whole.
func (g *Gen) Next() sim.Time {
	need := g.draw() * g.meanPs
	if len(g.windows) == 0 {
		g.t += need
		return sim.Time(g.t)
	}
	for {
		w := g.windows[g.widx]
		durPs := w.DurUS * float64(sim.Microsecond)
		remL := durPs - g.woff
		if remL <= 0 {
			g.widx = (g.widx + 1) % len(g.windows)
			g.woff = 0
			continue
		}
		slope := (w.endScale() - w.Scale) / durPs // scale per ps
		s0 := w.Scale + slope*g.woff
		s1 := w.endScale()
		avail := (s0 + s1) / 2 * remL
		if avail <= need {
			need -= avail
			g.t += remL
			g.widx = (g.widx + 1) % len(g.windows)
			g.woff = 0
			continue
		}
		var tau float64
		if slope == 0 {
			tau = need / s0
		} else {
			tau = (math.Sqrt(s0*s0+2*slope*need) - s0) / slope
		}
		g.t += tau
		g.woff += tau
		return sim.Time(g.t)
	}
}
